// Soak-style resource-bound tests: over many trim cycles, version-list
// lengths and the EBR retire backlog must stay bounded — growing with the
// live-snapshot window, never with the total number of commits. This is
// the unit-level half of the service harness's end-of-soak leak
// invariants (server.cpp).
//
// The tight bounds are asserted in a deterministic phase with explicit
// snapshot pins (on a loaded 1-CPU host, a *descheduled* reader can
// legitimately pin thousands of retirements for a scheduling quantum, so
// free-running concurrent bounds would flake); the concurrent phase then
// checks what is scheduling-independent: snapshot stability, exact
// committed values, and full reclamation at quiescence.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "stm/transaction.hpp"
#include "util/epoch.hpp"

namespace {

using txf::stm::StmEnv;
using txf::stm::Transaction;
using txf::stm::VBox;

TEST(ResourceBounds, PinnedWindowReclaimedEveryTrimCycle) {
  StmEnv env;
  env.queue().set_trim_period(1);  // a trim cycle on every commit
  constexpr std::size_t kBoxes = 8;
  constexpr int kRounds = 50;
  constexpr int kCommitsPerRound = 20;  // per box, under a live pin
  std::vector<std::unique_ptr<VBox<long>>> boxes;
  for (std::size_t i = 0; i < kBoxes; ++i)
    boxes.push_back(std::make_unique<VBox<long>>(0));

  std::size_t max_len_pinned = 0;
  std::size_t max_len_released = 0;
  std::size_t max_pending = 0;
  for (int round = 0; round < kRounds; ++round) {
    {
      // A live snapshot pins its window: lists may grow while it is open,
      // but only by the commits inside the window.
      Transaction pin(env);
      const long before = boxes[0]->get(pin);
      for (int j = 0; j < kCommitsPerRound; ++j) {
        for (auto& b : boxes) {
          txf::stm::atomically(env, [&](Transaction& t) {
            b->put(t, b->get(t) + 1);
          });
        }
      }
      EXPECT_EQ(boxes[0]->get(pin), before);  // snapshot unmoved
      for (auto& b : boxes)
        max_len_pinned =
            std::max(max_len_pinned, b->impl().permanent_length());
      EXPECT_TRUE(pin.try_commit());
    }
    // Pin released: the next trim cycle must reclaim the whole window.
    for (auto& b : boxes) {
      txf::stm::atomically(env, [&](Transaction& t) {
        b->put(t, b->get(t) + 1);
      });
      max_len_released =
          std::max(max_len_released, b->impl().permanent_length());
    }
    // Give the (single-threaded, unpinned) epoch domain two advances so
    // everything retired by the trims above becomes freeable.
    env.epochs().try_advance_and_collect();
    env.epochs().try_advance_and_collect();
    env.epochs().try_advance_and_collect();
    max_pending = std::max(max_pending, env.epochs().pending_count());
  }

  for (std::size_t i = 0; i < kBoxes; ++i) {
    EXPECT_EQ(boxes[i]->peek_committed(),
              static_cast<long>(kRounds * (kCommitsPerRound + 1)))
        << "box " << i;
  }
  // While pinned, growth is capped by the window (+ head + pinned tail +
  // trim slack), never by the 8400-commit total.
  EXPECT_LE(max_len_pinned, static_cast<std::size_t>(kCommitsPerRound) + 4);
  // After release, every round collapses back to a constant.
  EXPECT_LE(max_len_released, 4u);
  // ~170 retirements per round, 50 rounds: a backlog that outlives its
  // round would accumulate thousands. A small multiple of one round's
  // volume (collection runs a batch behind) is the steady state.
  EXPECT_LE(max_pending, 1024u);
}

TEST(ResourceBounds, ConcurrentReadersKeepSnapshotsAndQuiescentTrim) {
  StmEnv env;
  env.queue().set_trim_period(1);
  constexpr std::size_t kBoxes = 8;
  constexpr int kCycles = 400;
  std::vector<std::unique_ptr<VBox<long>>> boxes;
  for (std::size_t i = 0; i < kBoxes; ++i)
    boxes.push_back(std::make_unique<VBox<long>>(0));

  std::atomic<bool> stop{false};
  std::atomic<int> snapshot_violations{0};
  auto reader_fn = [&] {
    std::uint64_t iter = 0;
    while (!stop.load(std::memory_order_acquire)) {
      if (++iter % 16 == 0) {
        // Hold an explicit snapshot across writer commits: whatever version
        // it pinned must stay readable and stable until it finishes.
        Transaction pin(env);
        const long first = boxes[0]->get(pin);
        std::this_thread::yield();
        const long again = boxes[0]->get(pin);
        if (first != again) snapshot_violations.fetch_add(1);
        (void)pin.try_commit();
      } else {
        long sum = 0;
        txf::stm::atomically(
            env,
            [&](Transaction& t) {
              for (auto& b : boxes) sum += b->get(t);
              return 0L;
            },
            Transaction::Mode::kReadOnly);
        if (sum < 0) snapshot_violations.fetch_add(1);
      }
    }
  };
  std::thread r1(reader_fn), r2(reader_fn);

  for (int cycle = 0; cycle < kCycles; ++cycle) {
    for (auto& b : boxes) {
      txf::stm::atomically(env, [&](Transaction& t) {
        b->put(t, b->get(t) + 1);
      });
    }
  }
  stop.store(true, std::memory_order_release);
  r1.join();
  r2.join();

  EXPECT_EQ(snapshot_violations.load(), 0);
  for (std::size_t i = 0; i < kBoxes; ++i)
    EXPECT_EQ(boxes[i]->peek_committed(), kCycles) << "box " << i;

  // Quiescent now: a final write per box runs a trim cycle with no live
  // snapshots, after which every chain is minimal and the whole EBR
  // backlog from 3200 churn commits is reclaimable.
  for (auto& b : boxes) {
    txf::stm::atomically(env, [&](Transaction& t) {
      b->put(t, b->get(t) + 1);
    });
  }
  std::size_t final_len = 0;
  for (auto& b : boxes)
    final_len = std::max(final_len, b->impl().permanent_length());
  EXPECT_LE(final_len, 3u);
  env.epochs().drain_for_shutdown();
  EXPECT_EQ(env.epochs().pending_count(), 0u);
}

TEST(ResourceBounds, EbrDrainsToZeroAtShutdown) {
  StmEnv env;
  env.queue().set_trim_period(1);
  VBox<long> box(0);
  for (int i = 0; i < 2000; ++i) {
    txf::stm::atomically(env, [&](Transaction& t) {
      box.put(t, box.get(t) + 1);
    });
  }
  EXPECT_EQ(box.peek_committed(), 2000);
  // Trims retired ~2000 versions; whatever is still deferred must be fully
  // reclaimable once no thread is pinned.
  env.epochs().drain_for_shutdown();
  EXPECT_EQ(env.epochs().pending_count(), 0u);
}

}  // namespace
