// Unit and stress tests for epoch-based reclamation.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/epoch.hpp"

namespace {

using txf::util::EpochDomain;

std::atomic<int> g_freed{0};

struct Tracked {
  ~Tracked() { g_freed.fetch_add(1, std::memory_order_relaxed); }
};

TEST(Epoch, RetireEventuallyFrees) {
  EpochDomain domain;
  g_freed = 0;
  domain.retire(new Tracked());
  // No guards pinned: advances should free it within a few rounds.
  for (int i = 0; i < 5; ++i) domain.try_advance_and_collect();
  EXPECT_EQ(g_freed.load(), 1);
}

TEST(Epoch, PinnedGuardBlocksAdvance) {
  EpochDomain domain;
  g_freed = 0;
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    EpochDomain::Guard guard(domain);
    pinned = true;
    while (!release.load()) std::this_thread::yield();
  });
  while (!pinned.load()) std::this_thread::yield();

  const auto epoch_before = domain.global_epoch();
  domain.retire(new Tracked());
  // A pinned straggler prevents the epoch from advancing by 2, so the node
  // must not be freed yet.
  for (int i = 0; i < 5; ++i) domain.try_advance_and_collect();
  EXPECT_LE(domain.global_epoch(), epoch_before + 1);
  EXPECT_EQ(g_freed.load(), 0);

  release = true;
  reader.join();
  for (int i = 0; i < 5; ++i) domain.try_advance_and_collect();
  EXPECT_EQ(g_freed.load(), 1);
}

TEST(Epoch, NestedGuardsCount) {
  EpochDomain domain;
  g_freed = 0;
  {
    EpochDomain::Guard outer(domain);
    {
      EpochDomain::Guard inner(domain);
    }
    // Still pinned by `outer`: retire + advance must not free.
    domain.retire(new Tracked());
    for (int i = 0; i < 5; ++i) domain.try_advance_and_collect();
    EXPECT_EQ(g_freed.load(), 0);
  }
  for (int i = 0; i < 5; ++i) domain.try_advance_and_collect();
  EXPECT_EQ(g_freed.load(), 1);
}

TEST(Epoch, DrainForShutdownFreesEverything) {
  g_freed = 0;
  {
    EpochDomain domain;
    for (int i = 0; i < 100; ++i) domain.retire(new Tracked());
    // Destructor drains.
  }
  EXPECT_EQ(g_freed.load(), 100);
}

TEST(Epoch, ThreadExitMigratesOrphans) {
  EpochDomain domain;
  g_freed = 0;
  std::thread t([&] { domain.retire(new Tracked()); });
  t.join();
  for (int i = 0; i < 5; ++i) domain.try_advance_and_collect();
  EXPECT_EQ(g_freed.load(), 1);
}

// Stress: concurrent readers traverse a lock-free stack while writers pop
// and retire nodes; ASAN/valgrind-style failures would show as crashes.
TEST(EpochStress, ConcurrentRetireAndRead) {
  struct Node {
    int value;
    std::atomic<Node*> next{nullptr};
  };
  EpochDomain domain;
  std::atomic<Node*> head{nullptr};

  // Pre-fill.
  for (int i = 0; i < 1000; ++i) {
    auto* n = new Node{i, {}};
    n->next.store(head.load());
    head.store(n);
  }

  std::atomic<bool> stop{false};
  std::atomic<long> reads{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      EpochDomain::Guard guard(domain);
      long sum = 0;
      for (Node* n = head.load(std::memory_order_acquire); n != nullptr;
           n = n->next.load(std::memory_order_acquire)) {
        sum += n->value;
      }
      reads.fetch_add(1, std::memory_order_relaxed);
      (void)sum;
    }
  });

  std::thread writer([&] {
    for (int round = 0; round < 200; ++round) {
      // Pop up to 5 nodes, retire them, push 5 new ones.
      for (int i = 0; i < 5; ++i) {
        Node* n = head.load(std::memory_order_acquire);
        if (n == nullptr) break;
        Node* next = n->next.load(std::memory_order_acquire);
        if (head.compare_exchange_strong(n, next)) {
          domain.retire(n);
        }
      }
      for (int i = 0; i < 5; ++i) {
        auto* n = new Node{round * 10 + i, {}};
        Node* h = head.load(std::memory_order_acquire);
        do {
          n->next.store(h, std::memory_order_relaxed);
        } while (!head.compare_exchange_weak(h, n));
      }
    }
    stop.store(true, std::memory_order_release);
  });

  writer.join();
  reader.join();
  EXPECT_GT(reads.load(), 0);

  // Cleanup remaining nodes.
  Node* n = head.load();
  while (n != nullptr) {
    Node* next = n->next.load();
    delete n;
    n = next;
  }
}

}  // namespace
