// Abort-cause taxonomy and the attempt/outcome accounting contract
// (obs/abort_cause.hpp): per-cause counters count once per FAILED ATTEMPT,
// tx.commits / tx.aborted once per FINAL OUTCOME. Companion to
// stm_tl2_test's Tl2.AbortsAreCounted — same deterministic-conflict
// pattern, asserted against the taxonomy counters on both the flat STM
// driver and the tree (futures) driver.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>

#include "core/api.hpp"
#include "obs/abort_cause.hpp"
#include "obs/metrics.hpp"
#include "stm/transaction.hpp"
#include "stm/vbox.hpp"
#include "util/failpoint.hpp"

namespace {

using txf::core::atomically;
using txf::core::Config;
using txf::core::Runtime;
using txf::core::TxCtx;
using txf::obs::AbortAccounting;
using txf::obs::AbortCause;
using txf::stm::VBox;

/// Σ cause == attempt_aborts, except kDeadlineExceeded which marks the
/// escalation event and is deliberately outside the attempt count.
void expect_cause_sum_consistent(const AbortAccounting& acc) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < acc.cause.size(); ++i) {
    if (static_cast<AbortCause>(i) == AbortCause::kDeadlineExceeded) continue;
    sum += acc.cause[i].load();
  }
  EXPECT_EQ(sum, acc.attempt_aborts.load());
}

TEST(AbortTaxonomyFlat, DeterministicConflictCountsOncePerAttempt) {
  txf::stm::StmEnv env;
  const AbortAccounting& acc = env.abort_accounting();
  VBox<long> hot(0);
  bool doomed = true;
  txf::stm::atomically(env, [&](txf::stm::Transaction& tx) {
    const long v = hot.get(tx);
    if (doomed) {
      doomed = false;
      txf::stm::atomically(env, [&](txf::stm::Transaction& inner) {
        hot.put(inner, hot.get(inner) + 100);
      });
    }
    hot.put(tx, hot.get(tx) + v + 1);
  });
  // One failed attempt (read set overtaken), one cause, zero final aborts;
  // the interfering txn and the retried outer txn both committed.
  EXPECT_EQ(acc.attempt_aborts.load(), 1u);
  EXPECT_EQ(acc.of(AbortCause::kReadValidation).load(), 1u);
  EXPECT_EQ(acc.tx_commits.load(), 2u);
  EXPECT_EQ(acc.tx_aborted.load(), 0u);
  EXPECT_EQ(hot.peek_committed(), 100 + 100 + 1);
  expect_cause_sum_consistent(acc);
}

TEST(AbortTaxonomyFlat, ExplicitRetryCause) {
  txf::stm::StmEnv env;
  const AbortAccounting& acc = env.abort_accounting();
  VBox<long> x(0);
  bool doomed = true;
  txf::stm::atomically(env, [&](txf::stm::Transaction& tx) {
    if (doomed) {
      doomed = false;
      throw txf::stm::RetryTransaction{};
    }
    x.put(tx, x.get(tx) + 1);
  });
  EXPECT_EQ(acc.of(AbortCause::kExplicitRetry).load(), 1u);
  EXPECT_EQ(acc.attempt_aborts.load(), 1u);
  EXPECT_EQ(acc.tx_commits.load(), 1u);
  EXPECT_EQ(acc.tx_aborted.load(), 0u);
  expect_cause_sum_consistent(acc);
}

TEST(AbortTaxonomyFlat, UserExceptionIsOneFinalAbort) {
  txf::stm::StmEnv env;
  const AbortAccounting& acc = env.abort_accounting();
  VBox<long> x(0);
  EXPECT_THROW(txf::stm::atomically(env,
                                    [&](txf::stm::Transaction& tx) {
                                      x.put(tx, 1);
                                      throw std::runtime_error("boom");
                                    }),
               std::runtime_error);
  // The double-count fix: exactly one attempt abort AND exactly one final
  // abort — never two final aborts for one propagated exception.
  EXPECT_EQ(acc.of(AbortCause::kUserException).load(), 1u);
  EXPECT_EQ(acc.attempt_aborts.load(), 1u);
  EXPECT_EQ(acc.tx_aborted.load(), 1u);
  EXPECT_EQ(acc.tx_commits.load(), 0u);
  EXPECT_EQ(x.peek_committed(), 0);
  expect_cause_sum_consistent(acc);
}

TEST(AbortTaxonomyTree, DeterministicConflictCountsOncePerAttempt) {
  Config cfg;
  cfg.pool_threads = 2;
  Runtime rt(cfg);
  const AbortAccounting& acc = rt.env().abort_accounting();
  VBox<long> hot(0);
  bool doomed = true;
  atomically(rt, [&](TxCtx& ctx) {
    const long v = hot.get(ctx);
    if (doomed) {
      doomed = false;
      // Conflicting commit from another thread (its own serial-token
      // scope), deterministically inside our read/commit window.
      std::thread interferer([&] {
        atomically(rt, [&](TxCtx& inner) {
          hot.put(inner, hot.get(inner) + 100);
        });
      });
      interferer.join();
    }
    hot.put(ctx, hot.get(ctx) + v + 1);
  });
  EXPECT_EQ(acc.attempt_aborts.load(), 1u);
  EXPECT_EQ(acc.of(AbortCause::kReadValidation).load(), 1u);
  EXPECT_EQ(acc.tx_commits.load(), 2u);
  EXPECT_EQ(acc.tx_aborted.load(), 0u);
  EXPECT_EQ(hot.peek_committed(), 100 + 100 + 1);
  expect_cause_sum_consistent(acc);
}

TEST(AbortTaxonomyTree, UserExceptionFromFutureIsOneFinalAbort) {
  Config cfg;
  cfg.pool_threads = 2;
  Runtime rt(cfg);
  const AbortAccounting& acc = rt.env().abort_accounting();
  VBox<long> x(0);
  EXPECT_THROW(atomically(rt,
                          [&](TxCtx& ctx) {
                            auto f = ctx.submit([&](TxCtx& c) {
                              x.put(c, 1);
                              throw std::runtime_error("future boom");
                              return 0;
                            });
                            f.get(ctx);
                          }),
               std::runtime_error);
  EXPECT_EQ(acc.of(AbortCause::kUserException).load(), 1u);
  EXPECT_EQ(acc.attempt_aborts.load(), 1u);
  EXPECT_EQ(acc.tx_aborted.load(), 1u);
  EXPECT_EQ(acc.tx_commits.load(), 0u);
  EXPECT_EQ(x.peek_committed(), 0);
  expect_cause_sum_consistent(acc);
}

TEST(AbortTaxonomyTree, InjectedFailuresClassifyAsFailpoint) {
  Config cfg;
  cfg.pool_threads = 2;
  // Fail every sub-transaction validation (the old
  // inject_validation_failure_every=1, expressed as the chaos rule it is
  // deprecated in favour of).
  cfg.chaos.add("core.subtxn.validate", txf::util::fp::Action::kFail, 1);
  Runtime rt(cfg);
  const AbortAccounting& acc = rt.env().abort_accounting();
  VBox<long> counter(0);
  constexpr int kIter = 30;
  for (int i = 0; i < kIter; ++i) {
    atomically(rt, [&](TxCtx& ctx) {
      auto f = ctx.submit([&](TxCtx& c) { return counter.get(c) + 1; });
      counter.put(ctx, f.get(ctx));
    });
  }
  EXPECT_EQ(counter.peek_committed(), kIter);
  EXPECT_EQ(acc.tx_commits.load(), static_cast<std::uint64_t>(kIter));
  EXPECT_EQ(acc.tx_aborted.load(), 0u);
  // Single-threaded caller: every failed attempt was chaos-induced, so the
  // whole attempt-abort count lands on kFailpointInjected — injected aborts
  // never pollute the organic cause counters.
  EXPECT_GT(acc.attempt_aborts.load(), 0u);
  EXPECT_EQ(acc.of(AbortCause::kFailpointInjected).load(),
            acc.attempt_aborts.load());
  EXPECT_EQ(acc.of(AbortCause::kTreeOrder).load(), 0u);
  EXPECT_EQ(acc.of(AbortCause::kWriteWrite).load(), 0u);
  expect_cause_sum_consistent(acc);
}

TEST(AbortTaxonomyTree, ContentionProducesConsistentTaxonomy) {
  Config cfg;
  cfg.pool_threads = 4;
  Runtime rt(cfg);
  const AbortAccounting& acc = rt.env().abort_accounting();
  VBox<long> hot(0);
  std::vector<std::thread> threads;
  constexpr int kThreads = 4;
  constexpr int kIter = 300;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIter; ++i) {
        atomically(rt, [&](TxCtx& ctx) { hot.put(ctx, hot.get(ctx) + 1); });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(hot.peek_committed(),
            static_cast<long>(kThreads) * kIter);
  EXPECT_EQ(acc.tx_commits.load(),
            static_cast<std::uint64_t>(kThreads) * kIter);
  EXPECT_EQ(acc.tx_aborted.load(), 0u);
  expect_cause_sum_consistent(acc);
  // While the runtime is alive, the process-wide snapshot must report every
  // abort cause by name plus the commit-pipeline stage histograms.
  const std::string json = txf::metrics::snapshot_json();
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(AbortCause::kCount); ++i) {
    const std::string key = std::string("\"tx.abort.cause.") +
        txf::obs::abort_cause_name(static_cast<AbortCause>(i)) + "\"";
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  for (const char* key :
       {"\"stm.commit.stage.prevalidate_ns\"", "\"stm.commit.stage.assign_ns\"",
        "\"stm.commit.stage.writeback_ns\"", "\"stm.commit.batch_size\"",
        "\"tx.attempt_aborts\"", "\"tx.commits\"", "\"tx.aborted\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

}  // namespace
