// Unit tests for the log-bucketed latency histogram.
#include <gtest/gtest.h>

#include <cstdint>

#include "util/histogram.hpp"
#include "util/xoshiro.hpp"

namespace {

using txf::util::LatencyHistogram;

TEST(Histogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 64; ++v) {
    EXPECT_EQ(LatencyHistogram::index_for(v), v);
    EXPECT_EQ(LatencyHistogram::upper_bound(LatencyHistogram::index_for(v)), v);
  }
}

TEST(Histogram, IndexIsMonotonic) {
  unsigned prev = 0;
  for (std::uint64_t v = 1; v < 1'000'000; v = v * 3 / 2 + 1) {
    const unsigned idx = LatencyHistogram::index_for(v);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
}

TEST(Histogram, UpperBoundContainsValue) {
  txf::util::Xoshiro256 rng(41);
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t v = rng.next() >> (rng.next_bounded(60));
    const unsigned idx = LatencyHistogram::index_for(v);
    EXPECT_GE(LatencyHistogram::upper_bound(idx), v);
    if (idx > 0) EXPECT_LT(LatencyHistogram::upper_bound(idx - 1), v);
  }
}

TEST(Histogram, RelativeErrorBounded) {
  // upper_bound(idx) overestimates v by at most ~1/32 for large values.
  for (std::uint64_t v = 64; v < (1ull << 40); v = v * 5 / 4 + 3) {
    const auto ub = LatencyHistogram::upper_bound(LatencyHistogram::index_for(v));
    EXPECT_LE(static_cast<double>(ub - v) / static_cast<double>(v), 1.0 / 16.0);
  }
}

TEST(Histogram, QuantilesOrdered) {
  LatencyHistogram h;
  txf::util::Xoshiro256 rng(43);
  for (int i = 0; i < 50000; ++i) h.record(rng.next_bounded(1'000'000));
  EXPECT_LE(h.p50(), h.p95());
  EXPECT_LE(h.p95(), h.p99());
  EXPECT_LE(h.p99(), h.max_recorded());
}

TEST(Histogram, UniformMedianNearMiddle) {
  LatencyHistogram h;
  txf::util::Xoshiro256 rng(47);
  for (int i = 0; i < 100000; ++i) h.record(rng.next_bounded(1000));
  EXPECT_NEAR(static_cast<double>(h.p50()), 500.0, 60.0);
  EXPECT_NEAR(h.mean(), 499.5, 15.0);
}

TEST(Histogram, MergeAddsCounts) {
  LatencyHistogram a, b;
  for (int i = 0; i < 100; ++i) a.record(10);
  for (int i = 0; i < 300; ++i) b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 400u);
  EXPECT_EQ(a.p50(), LatencyHistogram::upper_bound(
                         LatencyHistogram::index_for(1000)));
}

TEST(Histogram, EmptyQuantileIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.p99(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max_recorded(), 0u);
}

TEST(Histogram, HandlesHugeValues) {
  LatencyHistogram h;
  h.record(~std::uint64_t{0});
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.max_recorded(), (~std::uint64_t{0}) >> 1);
}

}  // namespace
