// Group-commit pipeline tests (stm/commit_queue.hpp): per-box permanent
// lists must stay strictly version-descending under concurrent batched
// write-back, version assignment must be consecutive and gap-free (clock ==
// committed writers), and the invariants must survive seeded chaos schedules
// that stall the combiner, the helper handoff, and the write-back fan-out.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <deque>
#include <thread>
#include <vector>

#include "stm/transaction.hpp"
#include "util/failpoint.hpp"

namespace {

using txf::stm::CommitQueue;
using txf::stm::CommitRequest;
using txf::stm::PermanentVersion;
using txf::stm::StmEnv;
using txf::stm::Transaction;
using txf::stm::VBox;
using txf::stm::VBoxImpl;
using txf::stm::Version;
using txf::stm::WriteBackEntry;
namespace fp = txf::util::fp;

/// Snapshot a box's permanent version chain (newest first). Quiescent use
/// only. Stops at the end marker trim leaves behind.
std::vector<Version> version_chain(const VBoxImpl& box) {
  std::vector<Version> out;
  const PermanentVersion* p = box.permanent_head();
  while (p != nullptr && p != txf::stm::trimmed_tail()) {
    out.push_back(p->version);
    p = p->next.load(std::memory_order_acquire);
  }
  return out;
}

void expect_strictly_descending(const std::vector<Version>& chain) {
  for (std::size_t i = 1; i < chain.size(); ++i) {
    EXPECT_LT(chain[i], chain[i - 1])
        << "permanent list not strictly descending at index " << i;
  }
}

/// Shared workload: `threads` workers hammer `boxes` with read-modify-write
/// transactions (multi-box writes, overlapping read sets) while one thread
/// flips the trim period — the satellite data-race fix under TSan.
void run_pipeline_storm(StmEnv& env, std::deque<VBox<long>>& boxes,
                        int threads, int txns_per_thread) {
  std::vector<std::thread> workers;
  std::atomic<bool> stop{false};
  std::thread tuner([&] {
    std::uint32_t period = 1;
    while (!stop.load(std::memory_order_acquire)) {
      env.queue().set_trim_period(period);
      period = period % 8 + 1;
      std::this_thread::yield();
    }
  });
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < txns_per_thread; ++i) {
        txf::stm::atomically(env, [&](Transaction& tx) {
          // Overlapping multi-box writes: same-batch conflicts and
          // same-batch same-box writes (shadowing) both get exercised.
          const std::size_t a = static_cast<std::size_t>(i) % boxes.size();
          const std::size_t b =
              static_cast<std::size_t>(i + w + 1) % boxes.size();
          const long va = boxes[a].get(tx);
          const long vb = boxes[b].get(tx);
          boxes[a].put(tx, va + 1);
          boxes[b].put(tx, vb + 1);
        });
      }
    });
  }
  for (auto& t : workers) t.join();
  stop.store(true, std::memory_order_release);
  tuner.join();
}

void expect_pipeline_invariants(StmEnv& env, std::deque<VBox<long>>& boxes) {
  // Gap-free version assignment: every committed writer consumed exactly one
  // version and aborted requests consumed none.
  EXPECT_EQ(env.clock().current(), env.queue().committed_count());
  // Per-box permanent lists strictly descending, bounded by the clock.
  for (auto& b : boxes) {
    const auto chain = version_chain(b.impl());
    ASSERT_FALSE(chain.empty());
    expect_strictly_descending(chain);
    EXPECT_LE(chain.front(), env.clock().current());
  }
  // Batch accounting: histogram buckets sum to the batch count, and batches
  // carried every request that went through the queue.
  std::uint64_t hist_sum = 0;
  for (std::size_t i = 0; i < CommitQueue::kBatchSizeBuckets; ++i)
    hist_sum += env.queue().batch_size_bucket(i);
  EXPECT_EQ(hist_sum, env.queue().batch_count());
  EXPECT_EQ(env.queue().batched_requests() + env.queue().prevalidation_sheds(),
            env.queue().committed_count() + env.queue().aborted_count());
}

TEST(CommitPipeline, PerBoxListsStrictlyDescendingUnderConcurrency) {
  StmEnv env;
  std::deque<VBox<long>> boxes;
  for (int i = 0; i < 8; ++i) boxes.emplace_back(0L);
  run_pipeline_storm(env, boxes, 4, 300);
  expect_pipeline_invariants(env, boxes);
  // The workload is all read-modify-write, so the sum of the boxes equals
  // two increments per committed transaction.
  long total = 0;
  for (auto& b : boxes) total += b.peek_committed();
  EXPECT_EQ(static_cast<std::uint64_t>(total),
            2 * env.queue().committed_count());
}

TEST(CommitPipeline, BatchVersionsConsecutiveAndGapFree) {
  StmEnv env;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::deque<VBoxImpl> boxes;
  for (int i = 0; i < kThreads; ++i) boxes.emplace_back(0);

  std::vector<std::vector<Version>> seen(kThreads);
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      txf::util::EpochDomain::Guard guard(env.epochs());
      for (int i = 0; i < kPerThread; ++i) {
        // Disjoint per-thread boxes and empty read sets: nothing conflicts,
        // so every request must commit and consume exactly one version.
        CommitRequest* req = CommitQueue::acquire_request();
        req->snapshot = env.clock().current();
        req->writes.push_back(WriteBackEntry{
            &boxes[static_cast<std::size_t>(w)],
            CommitQueue::acquire_node(static_cast<txf::stm::Word>(i))});
        ASSERT_TRUE(env.queue().commit(req));
        // Still inside the EBR guard: the request cannot be recycled under
        // us even though the queue has already consumed it.
        seen[static_cast<std::size_t>(w)].push_back(req->commit_version());
      }
    });
  }
  for (auto& t : workers) t.join();

  // All versions across all threads form exactly 1..N: consecutive batch
  // assignment with a single clock jump per batch and no gaps.
  std::vector<Version> all;
  for (auto& v : seen) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i + 1);
  EXPECT_EQ(env.clock().current(), all.size());
  EXPECT_EQ(env.queue().committed_count(), all.size());
  EXPECT_EQ(env.queue().aborted_count(), 0u);
  // Per-thread commit order is monotone (queue order respects enqueue order
  // for a single thread).
  for (auto& v : seen) EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(CommitPipeline, SmallBatchLimitStillGapFree) {
  StmEnv env;
  env.queue().set_batch_limit(1);  // degenerate pipeline: batches of one
  std::deque<VBox<long>> boxes;
  for (int i = 0; i < 4; ++i) boxes.emplace_back(0L);
  run_pipeline_storm(env, boxes, 3, 150);
  expect_pipeline_invariants(env, boxes);
}

TEST(CommitPipelineChaos, SeededCombinerStallsKeepInvariants) {
  // Stall the combiner after batch publication, the helper handoff, the
  // write-back fan-out, and pre-validation: helpers must drive every batch
  // to completion regardless, with the same invariants as the clean run.
  fp::ChaosPlan plan;
  plan.seed = 0xba7c4ULL;
  plan.add_prob("stm.commit.batch.form", fp::Action::kDelayUs, 0.3, 50);
  plan.add_prob("stm.commit.batch.handoff", fp::Action::kYield, 0.3, 0);
  plan.add_prob("stm.commit.writeback", fp::Action::kDelayUs, 0.3, 50);
  plan.add_prob("stm.commit.prevalidate", fp::Action::kDelayUs, 0.2, 20);
  plan.add_prob("stm.commit.enqueue", fp::Action::kDelayUs, 0.2, 20);
  fp::Controller::instance().arm(plan);

  {
    StmEnv env;
    env.queue().set_batch_limit(3);  // force frequent segment boundaries
    std::deque<VBox<long>> boxes;
    for (int i = 0; i < 6; ++i) boxes.emplace_back(0L);
    run_pipeline_storm(env, boxes, 4, 120);
    expect_pipeline_invariants(env, boxes);
    long total = 0;
    for (auto& b : boxes) total += b.peek_committed();
    EXPECT_EQ(static_cast<std::uint64_t>(total),
              2 * env.queue().committed_count());
  }

  EXPECT_GT(fp::Controller::instance().total_fires(), 0u);
  fp::Controller::instance().disarm();
}

}  // namespace
