// Tests for the ordered helping commit queue: version assignment,
// validation, idempotent write-back, concurrent commit storms.
#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <thread>
#include <vector>

#include "stm/transaction.hpp"

namespace {

using txf::stm::CommitRequest;
using txf::stm::PermanentVersion;
using txf::stm::StmEnv;
using txf::stm::VBoxImpl;
using txf::stm::WriteBackEntry;

CommitRequest* make_request(VBoxImpl* box, txf::stm::Word value,
                            txf::stm::Version snapshot,
                            std::vector<VBoxImpl*> reads = {}) {
  auto* req = new CommitRequest();
  req->snapshot = snapshot;
  req->reads = std::move(reads);
  if (box != nullptr) {
    req->writes.push_back(
        WriteBackEntry{box, new PermanentVersion(value, 0, nullptr)});
  }
  return req;
}

TEST(CommitQueue, FirstCommitGetsVersionOne) {
  StmEnv env;
  txf::util::EpochDomain::Guard guard(env.epochs());
  VBoxImpl box(0);
  auto* req = make_request(&box, 7, env.clock().current());
  EXPECT_TRUE(env.queue().commit(req));
  EXPECT_EQ(env.clock().current(), 1u);
  EXPECT_EQ(box.permanent_head()->value, 7u);
  EXPECT_EQ(box.permanent_head()->version, 1u);
}

TEST(CommitQueue, VersionsAreSequential) {
  StmEnv env;
  txf::util::EpochDomain::Guard guard(env.epochs());
  VBoxImpl box(0);
  for (int i = 1; i <= 10; ++i) {
    auto* req = make_request(&box, static_cast<txf::stm::Word>(i),
                             env.clock().current());
    ASSERT_TRUE(env.queue().commit(req));
    EXPECT_EQ(env.clock().current(), static_cast<txf::stm::Version>(i));
  }
  EXPECT_EQ(box.permanent_head()->value, 10u);
}

TEST(CommitQueue, StaleReaderAborts) {
  StmEnv env;
  txf::util::EpochDomain::Guard guard(env.epochs());
  VBoxImpl box(0);
  const auto old_snapshot = env.clock().current();
  // Another commit bumps box past the snapshot.
  ASSERT_TRUE(env.queue().commit(make_request(&box, 1, old_snapshot)));
  // A request that *read* box at the old snapshot must abort.
  auto* req = make_request(&box, 2, old_snapshot, {&box});
  EXPECT_FALSE(env.queue().commit(req));
  EXPECT_EQ(box.permanent_head()->value, 1u);
  EXPECT_EQ(env.queue().aborted_count(), 1u);
}

TEST(CommitQueue, AbortedRequestConsumesNoVersion) {
  // Group-commit pipeline: only valid requests are assigned versions, so an
  // abort leaves no gap — the clock always equals the number of committed
  // writers (the invariant the batch's deterministic pass maintains).
  StmEnv env;
  txf::util::EpochDomain::Guard guard(env.epochs());
  VBoxImpl box(0);
  const auto s0 = env.clock().current();
  ASSERT_TRUE(env.queue().commit(make_request(&box, 1, s0)));           // ver 1
  ASSERT_FALSE(env.queue().commit(make_request(&box, 2, s0, {&box})));  // abort
  ASSERT_TRUE(env.queue().commit(make_request(&box, 3, env.clock().current())));
  EXPECT_EQ(env.clock().current(), 2u);
  EXPECT_EQ(env.clock().current(), env.queue().committed_count());
  EXPECT_EQ(box.permanent_head()->version, 2u);
  EXPECT_EQ(box.permanent_head()->value, 3u);
  // Snapshot 1 sees the first commit; the abort left no trace.
  EXPECT_EQ(box.read_permanent(1)->value, 1u);
  EXPECT_EQ(env.queue().prevalidation_sheds(), 0u);  // abort came from stage 2
}

TEST(CommitQueue, ReadOfUnrelatedBoxDoesNotAbort) {
  StmEnv env;
  txf::util::EpochDomain::Guard guard(env.epochs());
  VBoxImpl x(0), y(0);
  const auto s0 = env.clock().current();
  ASSERT_TRUE(env.queue().commit(make_request(&x, 1, s0)));
  // Read-set contains only y, unchanged since s0.
  EXPECT_TRUE(env.queue().commit(make_request(&y, 2, s0, {&y})));
}

TEST(CommitQueue, MultiBoxWriteBackIsAtomic) {
  StmEnv env;
  VBoxImpl x(0), y(0);
  std::atomic<bool> stop{false};
  std::atomic<int> tearing{0};

  std::thread observer([&] {
    txf::util::EpochDomain::Guard guard(env.epochs());
    const auto slot = env.registry().claim(1);
    while (!stop.load()) {
      txf::stm::Version snap;
      for (;;) {  // publish-verify so the GC can't trim under us
        snap = env.clock().current();
        env.registry().slot(slot).publish(snap);
        if (env.clock().current() == snap) break;
      }
      const auto vx = x.read_permanent(snap)->value;
      const auto vy = y.read_permanent(snap)->value;
      if (vx != vy) tearing.fetch_add(1);
      env.registry().slot(slot).clear();
    }
    env.registry().release(slot);
  });

  {
    txf::util::EpochDomain::Guard guard(env.epochs());
    for (int i = 1; i <= 2000; ++i) {
      auto* req = new CommitRequest();
      req->snapshot = env.clock().current();
      req->writes.push_back(WriteBackEntry{
          &x, new PermanentVersion(static_cast<txf::stm::Word>(i), 0, nullptr)});
      req->writes.push_back(WriteBackEntry{
          &y, new PermanentVersion(static_cast<txf::stm::Word>(i), 0, nullptr)});
      ASSERT_TRUE(env.queue().commit(req));
    }
  }
  stop.store(true);
  observer.join();
  // Snapshot reads must never see x and y out of sync: the clock only
  // advances after both boxes carry the new version.
  EXPECT_EQ(tearing.load(), 0);
}

TEST(CommitQueueStress, ConcurrentCommittersAllAccountedFor) {
  StmEnv env;
  VBoxImpl box(0);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  std::atomic<int> committed{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      txf::util::EpochDomain::Guard guard(env.epochs());
      for (int i = 0; i < kPerThread; ++i) {
        // Blind writes: never abort.
        auto* req = make_request(&box, 1, env.clock().current());
        if (env.queue().commit(req)) committed.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(committed.load(), kThreads * kPerThread);
  EXPECT_EQ(env.clock().current(),
            static_cast<txf::stm::Version>(kThreads * kPerThread));
  EXPECT_EQ(box.permanent_head()->version,
            static_cast<txf::stm::Version>(kThreads * kPerThread));
}

TEST(CommitQueueStress, MixedConflictingCommits) {
  StmEnv env;
  VBoxImpl box(0);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1500;
  std::vector<std::thread> threads;
  std::atomic<long> success{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      txf::util::EpochDomain::Guard guard(env.epochs());
      // Follow the snapshot protocol: publish before reading so the GC
      // never trims a version this thread still needs.
      const auto slot = env.registry().claim(static_cast<std::size_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        txf::stm::Version snap;
        for (;;) {
          snap = env.clock().current();
          env.registry().slot(slot).publish(snap);
          if (env.clock().current() == snap) break;
        }
        const auto before = box.read_permanent(snap)->value;
        auto* req = make_request(&box, before + 1, snap, {&box});
        if (env.queue().commit(req)) success.fetch_add(1);
        env.registry().slot(slot).clear();
      }
      env.registry().release(slot);
    });
  }
  for (auto& t : threads) t.join();
  // The final value equals the number of successful increments: aborted
  // read-modify-writes must have had no effect.
  EXPECT_EQ(box.permanent_head()->value,
            static_cast<txf::stm::Word>(success.load()));
  EXPECT_GT(success.load(), 0);
}

}  // namespace
