// Chaos suite: the engine must keep its invariants under seeded failpoint
// schedules — spurious validation failures, injected commit/steal delays,
// forced tree aborts — and every atomically() call must terminate, by
// escalating to the serial-irrevocable fallback when the retry budget or the
// deadline runs out. Same seed => same per-site fire sequence => identical
// committed results.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/api.hpp"
#include "core/fcc.hpp"
#include "util/failpoint.hpp"

namespace {

using txf::core::atomically;
using txf::core::Config;
using txf::core::RestartPolicy;
using txf::core::Runtime;
using txf::core::TxCtx;
using txf::stm::VBox;
namespace fp = txf::util::fp;

// Deterministic future-chain workload (oracle 1234: strong ordering is the
// pre-order future1, future2, continuation).
long chain_result(Runtime& rt) {
  VBox<long> acc(1);
  atomically(rt, [&](TxCtx& ctx) {
    auto f1 = ctx.submit([&](TxCtx& c) {
      acc.put(c, acc.get(c) * 10 + 2);
      return 0;
    });
    auto f2 = ctx.submit([&](TxCtx& c) {
      acc.put(c, acc.get(c) * 10 + 3);
      return 0;
    });
    f1.get(ctx);
    f2.get(ctx);
    acc.put(ctx, acc.get(ctx) * 10 + 4);
  });
  return acc.peek_committed();
}

// Counter workload: `iters` sequential future-carried increments.
long counter_result(Runtime& rt, int iters) {
  VBox<long> counter(0);
  for (int i = 0; i < iters; ++i) {
    atomically(rt, [&](TxCtx& ctx) {
      auto f = ctx.submit([&](TxCtx& c) { return counter.get(c) + 1; });
      counter.put(ctx, f.get(ctx));
    });
  }
  return counter.peek_committed();
}

// The acceptance schedule: a validation failure roughly every 7th
// validation plus random 0-50us delays on the commit-pipeline stages
// (pre-validation, enqueue, combiner publication, helper handoff,
// write-back) and the steal path.
Config acceptance_schedule(std::uint64_t seed) {
  Config cfg;
  cfg.pool_threads = 2;
  cfg.chaos.seed = seed;
  cfg.chaos.add("core.subtxn.validate", fp::Action::kFail, 7);
  cfg.chaos.add_prob("stm.commit.prevalidate", fp::Action::kDelayUs, 0.3, 30);
  cfg.chaos.add_prob("stm.commit.enqueue", fp::Action::kDelayUs, 0.5, 50);
  cfg.chaos.add_prob("stm.commit.batch.form", fp::Action::kDelayUs, 0.3, 50);
  cfg.chaos.add_prob("stm.commit.batch.handoff", fp::Action::kYield, 0.3);
  cfg.chaos.add_prob("stm.commit.writeback", fp::Action::kDelayUs, 0.5, 50);
  cfg.chaos.add_prob("stm.read.home", fp::Action::kDelayUs, 0.3, 30);
  cfg.chaos.add_prob("sched.steal", fp::Action::kDelayUs, 0.5, 50);
  return cfg;
}

TEST(Chaos, AcceptanceScheduleKeepsInvariants) {
  Runtime rt(acceptance_schedule(0xc4a05ULL));
  EXPECT_EQ(chain_result(rt), 1234L);
  EXPECT_EQ(counter_result(rt, 40), 40L);
  // The schedule must have actually perturbed the run.
  EXPECT_GT(rt.robustness().failpoint_fires.load() +
                fp::Controller::instance().total_fires(),
            0u);
}

TEST(Chaos, SameSeedThreeRunsIdenticalCommittedResults) {
  std::vector<long> chains, counters;
  for (int run = 0; run < 3; ++run) {
    Runtime rt(acceptance_schedule(0xdecafULL));
    chains.push_back(chain_result(rt));
    counters.push_back(counter_result(rt, 25));
  }
  EXPECT_EQ(chains, (std::vector<long>{1234, 1234, 1234}));
  EXPECT_EQ(counters, (std::vector<long>{25, 25, 25}));
}

TEST(Chaos, BothRestartPoliciesSurviveTheSchedule) {
  for (const auto policy :
       {RestartPolicy::kTreeRestart, RestartPolicy::kPartialRollback}) {
    // TSan cannot follow the fiber stack restore (see tests/CMakeLists.txt
    // quarantine note); the tree-restart half still runs sanitized.
    if (policy == RestartPolicy::kPartialRollback &&
        txf::core::kFibersUnsafeUnderTsan) {
      continue;
    }
    Config cfg = acceptance_schedule(0x5eedULL);
    cfg.restart = policy;
    Runtime rt(cfg);
    EXPECT_EQ(chain_result(rt), 1234L);
    EXPECT_EQ(counter_result(rt, 20), 20L);
  }
}

TEST(Chaos, SerialFallbackGuaranteesTermination) {
  // Every non-serial attempt is killed outright (abort-tree on every
  // validation), so only the serial-irrevocable fallback — which runs with
  // chaos suppressed and cannot lose a conflict — can make progress. Each
  // call must still terminate with the exact result.
  Config cfg;
  cfg.pool_threads = 2;
  cfg.max_attempts = 3;
  cfg.backoff_base_us = 1;
  cfg.backoff_cap_us = 50;
  cfg.chaos.seed = 7;
  cfg.chaos.add("core.subtxn.validate", fp::Action::kAbortTree, 1);
  Runtime rt(cfg);
  rt.stats().reset();
  EXPECT_EQ(counter_result(rt, 20), 20L);
  EXPECT_GT(rt.stats().serial_fallbacks.load(), 0u);
  EXPECT_GT(rt.robustness().serial_irrevocable.load(), 0u);
  EXPECT_GT(rt.robustness().retries.load(), 0u);
  EXPECT_GT(rt.robustness().backoff_ns.load(), 0u);
}

TEST(Chaos, DeadlineEscalatesToSerial) {
  // A 1us deadline expires during the first (chaos-doomed) attempt; the
  // contention manager must charge a deadline abort and go serial instead
  // of burning the remaining retry budget.
  Config cfg;
  cfg.pool_threads = 2;
  cfg.max_attempts = 64;
  cfg.backoff_base_us = 1;
  cfg.backoff_cap_us = 50;
  cfg.tx_deadline_us = 1;
  cfg.chaos.seed = 11;
  cfg.chaos.add("core.subtxn.validate", fp::Action::kAbortTree, 1);
  Runtime rt(cfg);
  EXPECT_EQ(chain_result(rt), 1234L);
  EXPECT_GT(rt.robustness().deadline_aborts.load(), 0u);
  EXPECT_GT(rt.robustness().serial_irrevocable.load(), 0u);
}

TEST(Chaos, ValidationFailureRuleDrivesTheFailpointSite) {
  // The chaos-rule spelling of the removed
  // Config::inject_validation_failure_every knob: every 5th validation
  // fails through the core.subtxn.validate site, and the engine still
  // converges to the exact result.
  Config cfg;
  cfg.pool_threads = 2;
  cfg.chaos.seed = 5;
  cfg.chaos.add("core.subtxn.validate", fp::Action::kFail, 5);
  Runtime rt(cfg);
  EXPECT_EQ(counter_result(rt, 30), 30L);
  fp::FailPoint* site =
      fp::Controller::instance().find("core.subtxn.validate");
  ASSERT_NE(site, nullptr);
  EXPECT_GT(site->fires(), 0u);
  EXPECT_GT(rt.robustness().failpoint_fires.load(), 0u);
}

TEST(Chaos, PerturbationOnlyScheduleStaysExactUnderConcurrency) {
  // Delay/yield-only chaos on the scheduler and commit-queue hot paths must
  // never change results, only interleavings.
  Config cfg;
  cfg.pool_threads = 2;
  cfg.chaos.seed = 99;
  cfg.chaos.add_prob("sched.deque.steal", fp::Action::kDelayUs, 0.3, 20);
  cfg.chaos.add_prob("sched.submit", fp::Action::kYield, 0.3);
  cfg.chaos.add_prob("stm.read.version", fp::Action::kDelayUs, 0.2, 10);
  cfg.chaos.add_prob("stm.read.home", fp::Action::kDelayUs, 0.2, 10);
  cfg.chaos.add_prob("stm.commit.writeback", fp::Action::kDelayUs, 0.3, 20);
  Runtime rt(cfg);
  VBox<long> counter(0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        atomically(rt, [&](TxCtx& ctx) {
          auto f = ctx.submit([&](TxCtx& c) {
            counter.put(c, counter.get(c) + 1);
            return 0;
          });
          f.get(ctx);
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.peek_committed(), 50L);
}

}  // namespace
