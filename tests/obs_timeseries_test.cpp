// MetricsTimeline ring + delta math, the drift detectors under injected
// drift (and their silence on steady workloads), and the flight recorder's
// bundle layout. Everything here drives sample_now() by hand — the sampler
// thread is covered by the server harness test.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/drift.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace obs = txf::obs;
namespace fs = std::filesystem;

namespace {

obs::TimelineConfig tl_config(std::uint32_t capacity) {
  obs::TimelineConfig cfg;
  cfg.enabled = true;
  cfg.interval_ms = 1000;  // irrelevant: tests call sample_now() directly
  cfg.capacity = capacity;
  return cfg;
}

}  // namespace

TEST(Timeline, RingWrapKeepsNewestAndSeqStaysGapFree) {
  obs::MetricsTimeline tl(tl_config(4));
  for (int i = 0; i < 10; ++i) tl.sample_now();

  EXPECT_EQ(tl.frame_count(), 4u);
  EXPECT_EQ(tl.total_frames(), 10u);
  EXPECT_EQ(tl.dropped(), 6u);

  const std::vector<obs::TimelineFrame> w = tl.last(4);
  ASSERT_EQ(w.size(), 4u);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(w[i].seq, 6u + i);  // newest 4 of seqs 0..9, oldest first
    if (i != 0) EXPECT_GT(w[i].t_ns, 0u);
  }
  const std::vector<obs::TimelineFrame> w2 = tl.last(2);
  ASSERT_EQ(w2.size(), 2u);
  EXPECT_EQ(w2[0].seq, 8u);
  EXPECT_EQ(w2[1].seq, 9u);
}

TEST(Timeline, CounterDeltasMatchHandComputedIncrements) {
  obs::Counter c;
  obs::Registration reg;
  reg.counter("test.timeline.counter", c);

  obs::MetricsTimeline tl(tl_config(16));
  c.add(5);
  tl.sample_now();  // first observation: baseline, delta must read 0
  c.add(7);
  tl.sample_now();
  tl.sample_now();  // no increments: delta 0
  c.add(2);
  tl.sample_now();

  const int idx = tl.series_index("test.timeline.counter");
  ASSERT_GE(idx, 0);
  const std::vector<obs::TimelineFrame> w = tl.last(4);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_DOUBLE_EQ(obs::MetricsTimeline::value(w[0], idx), 0.0);
  EXPECT_DOUBLE_EQ(obs::MetricsTimeline::value(w[1], idx), 7.0);
  EXPECT_DOUBLE_EQ(obs::MetricsTimeline::value(w[2], idx), 0.0);
  EXPECT_DOUBLE_EQ(obs::MetricsTimeline::value(w[3], idx), 2.0);
}

TEST(Timeline, GaugeLevelsAndHistogramCuts) {
  obs::Gauge g;
  obs::Histogram h;
  obs::Registration reg;
  reg.gauge("test.timeline.gauge", g).histogram("test.timeline.hist", h);

  obs::MetricsTimeline tl(tl_config(16));
  g.add(3);
  for (int i = 0; i < 100; ++i) h.record(8);
  tl.sample_now();
  g.add(-5);
  // 3 outliers in 103 samples: past the 1% tail, so the p99 cut must leave
  // the 8-bucket and land on the outlier bucket's upper bound.
  for (int i = 0; i < 3; ++i) h.record(1u << 20);
  tl.sample_now();

  const std::vector<obs::TimelineFrame> w = tl.last(2);
  ASSERT_EQ(w.size(), 2u);
  const int gi = tl.series_index("test.timeline.gauge");
  const int ci = tl.series_index("test.timeline.hist.count");
  const int p50i = tl.series_index("test.timeline.hist.p50");
  const int p99i = tl.series_index("test.timeline.hist.p99");
  ASSERT_GE(gi, 0);
  ASSERT_GE(ci, 0);
  // Gauges are levels (the value itself), histograms expand to a count
  // delta plus cumulative percentile cuts.
  EXPECT_DOUBLE_EQ(obs::MetricsTimeline::value(w[0], gi), 3.0);
  EXPECT_DOUBLE_EQ(obs::MetricsTimeline::value(w[1], gi), -2.0);
  EXPECT_DOUBLE_EQ(obs::MetricsTimeline::value(w[0], ci), 0.0);  // baseline
  EXPECT_DOUBLE_EQ(obs::MetricsTimeline::value(w[1], ci), 3.0);
  EXPECT_DOUBLE_EQ(obs::MetricsTimeline::value(w[1], p50i), 8.0);
  EXPECT_DOUBLE_EQ(obs::MetricsTimeline::value(w[1], p99i),
                   static_cast<double>(1u << 20));
}

TEST(Timeline, ProvidersSampleAsDeltaOrLevel) {
  obs::MetricsTimeline tl(tl_config(16));
  double cumulative = 100.0, level = 7.0;
  tl.add_provider("test.provider.delta", obs::SeriesKind::kDelta,
                  [&] { return cumulative; });
  tl.add_provider("test.provider.level", obs::SeriesKind::kLevel,
                  [&] { return level; });
  tl.sample_now();
  cumulative += 25.0;
  level = 9.0;
  tl.sample_now();

  const std::vector<obs::TimelineFrame> w = tl.last(2);
  const int di = tl.series_index("test.provider.delta");
  const int li = tl.series_index("test.provider.level");
  EXPECT_DOUBLE_EQ(obs::MetricsTimeline::value(w[0], di), 0.0);
  EXPECT_DOUBLE_EQ(obs::MetricsTimeline::value(w[1], di), 25.0);
  EXPECT_DOUBLE_EQ(obs::MetricsTimeline::value(w[0], li), 7.0);
  EXPECT_DOUBLE_EQ(obs::MetricsTimeline::value(w[1], li), 9.0);
}

TEST(Timeline, JsonShapeIsCoherent) {
  obs::Counter c;
  obs::Registration reg;
  reg.counter("test.timeline.json", c);
  obs::MetricsTimeline tl(tl_config(8));
  for (int i = 0; i < 3; ++i) {
    c.add(static_cast<std::uint64_t>(i));
    tl.sample_now();
  }
  const std::string json = tl.timeline_json();
  EXPECT_NE(json.find("\"interval_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"series\""), std::string::npos);
  EXPECT_NE(json.find("\"frames\""), std::string::npos);
  EXPECT_NE(json.find("test.timeline.json"), std::string::npos);
  // One kind tag per series, one seq per frame.
  EXPECT_EQ(tl.series_names().size(),
            static_cast<std::size_t>(tl.series_index(
                tl.series_names().back())) + 1);
}

// ---- drift detectors --------------------------------------------------

namespace {

/// A synthetic engine: test-owned counters registered under the real series
/// names the detectors read (this file is not scanned by check_docs.py, and
/// no real engine runs in this binary, so the names are exclusively ours).
struct SyntheticEngine {
  obs::Counter promotions, demotions;
  obs::Counter rv_aborts, ww_aborts, order_aborts, commits;
  obs::Counter home_hits, list_walks;
  obs::Registration reg;
  double ebr_pending = 0.0;
  double stripe0 = 0.0, stripe1 = 0.0;

  SyntheticEngine() {
    reg.counter("core.adaptive.promotions", promotions)
        .counter("core.adaptive.demotions", demotions)
        .counter("tx.abort.cause.read_validation", rv_aborts)
        .counter("tx.abort.cause.write_write", ww_aborts)
        .counter("tx.abort.cause.tree_order", order_aborts)
        .counter("tx.commits", commits)
        .counter("stm.read.home_hits", home_hits)
        .counter("stm.read.list_walks", list_walks);
  }

  void attach(obs::MetricsTimeline& tl) {
    tl.add_provider("ebr.pending", obs::SeriesKind::kLevel,
                    [this] { return ebr_pending; });
    tl.add_provider("stm.commit.stripe.0.committed", obs::SeriesKind::kDelta,
                    [this] { return stripe0; });
    tl.add_provider("stm.commit.stripe.1.committed", obs::SeriesKind::kDelta,
                    [this] { return stripe1; });
  }
};

obs::DriftConfig drift_config() {
  obs::DriftConfig cfg;
  cfg.window_frames = 4;
  return cfg;
}

const obs::DriftVerdict& verdict_of(const std::vector<obs::DriftVerdict>& vs,
                                    obs::DriftKind kind) {
  return vs[static_cast<std::size_t>(kind)];
}

}  // namespace

TEST(Drift, SilentOnSteadyWorkload) {
  SyntheticEngine eng;
  obs::MetricsTimeline tl(tl_config(16));
  eng.attach(tl);
  obs::DriftMonitor mon(drift_config(), tl);

  // Healthy steady state: plenty of commits, few conflicts, stable EBR,
  // balanced stripes, high home-hit rate — every tick, for many windows.
  for (int i = 0; i < 12; ++i) {
    eng.commits.add(500);
    eng.rv_aborts.add(3);
    eng.home_hits.add(900);
    eng.list_walks.add(40);
    eng.ebr_pending = 128.0;
    eng.stripe0 += 240.0;
    eng.stripe1 += 260.0;
    tl.sample_now();
    const std::vector<obs::DriftVerdict> vs = mon.evaluate();
    for (const obs::DriftVerdict& v : vs)
      EXPECT_FALSE(v.fired) << obs::drift_kind_name(v.kind) << ": "
                            << v.detail;
  }
  EXPECT_EQ(mon.triggers(), 0u);
  EXPECT_EQ(mon.evaluations(), 12u);
  EXPECT_TRUE(mon.fired_names().empty());
  // Volume was high enough that silence means "measured healthy", not
  // "not enough data".
  const std::vector<obs::DriftVerdict> last = mon.evaluate();
  EXPECT_TRUE(
      verdict_of(last, obs::DriftKind::kConflictTrend).enough_data);
  EXPECT_TRUE(verdict_of(last, obs::DriftKind::kHomeHitRate).enough_data);
  EXPECT_TRUE(verdict_of(last, obs::DriftKind::kStripeSkew).enough_data);
}

TEST(Drift, ConflictShareTriggersOnceAndRearmsAfterQuiet) {
  SyntheticEngine eng;
  obs::MetricsTimeline tl(tl_config(16));
  eng.attach(tl);
  obs::DriftMonitor mon(drift_config(), tl);

  auto run_window = [&](std::uint64_t commits, std::uint64_t conflicts,
                        int ticks) {
    for (int i = 0; i < ticks; ++i) {
      eng.commits.add(commits);
      eng.rv_aborts.add(conflicts / 2);
      eng.ww_aborts.add(conflicts - conflicts / 2);
      tl.sample_now();
      mon.evaluate();
    }
  };

  run_window(/*commits=*/400, /*conflicts=*/4, /*ticks=*/6);  // healthy
  EXPECT_EQ(mon.triggers(), 0u);

  // Conflict storm: 50% of attempts are chargeable conflicts, well past
  // the 0.25 default bar — and the trigger stays edge-counted while the
  // storm persists.
  run_window(/*commits=*/200, /*conflicts=*/200, /*ticks=*/6);
  const std::vector<obs::DriftVerdict> during = mon.evaluate();
  EXPECT_TRUE(verdict_of(during, obs::DriftKind::kConflictTrend).fired);
  EXPECT_EQ(mon.triggers(), 1u);
  EXPECT_EQ(mon.fired_names(), std::vector<std::string>{"conflict_trend"});

  run_window(/*commits=*/400, /*conflicts=*/4, /*ticks=*/6);  // recovers
  EXPECT_TRUE(mon.fired_names().empty());
  run_window(/*commits=*/200, /*conflicts=*/200, /*ticks=*/6);  // again
  EXPECT_EQ(mon.triggers(), 2u);
  EXPECT_EQ(mon.fired_ever_names(),
            std::vector<std::string>{"conflict_trend"});
}

TEST(Drift, EachDetectorFiresOnItsInjectedSignal) {
  SyntheticEngine eng;
  obs::MetricsTimeline tl(tl_config(32));
  eng.attach(tl);
  obs::DriftConfig cfg = drift_config();
  cfg.churn_per_s = 1.0;  // hand-driven sampling is fast; any churn trips it
  // hottest/mean tops out at the stripe count; with 2 synthetic stripes the
  // default bar of 4 (sized for 8 stripes) is unreachable.
  cfg.stripe_skew = 1.5;
  obs::DriftMonitor mon(cfg, tl);

  for (int i = 0; i < 8; ++i) {
    // site churn: the adaptive controller thrashing between lanes
    eng.promotions.add(50);
    eng.demotions.add(50);
    // EBR backlog: pending retirements growing monotonically
    eng.ebr_pending += 100000.0;
    // stripe skew: one stripe takes ~16x the traffic of the other
    eng.stripe0 += 640.0;
    eng.stripe1 += 40.0;
    // home-hit regression: hit rate decays as the window advances
    eng.home_hits.add(i < 4 ? 950 : 200);
    eng.list_walks.add(i < 4 ? 50 : 800);
    tl.sample_now();
    mon.evaluate();
  }
  const std::vector<obs::DriftVerdict> vs = mon.evaluate();
  EXPECT_TRUE(verdict_of(vs, obs::DriftKind::kSiteChurn).fired)
      << verdict_of(vs, obs::DriftKind::kSiteChurn).detail;
  EXPECT_TRUE(verdict_of(vs, obs::DriftKind::kEbrBacklog).fired)
      << verdict_of(vs, obs::DriftKind::kEbrBacklog).detail;
  EXPECT_TRUE(verdict_of(vs, obs::DriftKind::kStripeSkew).fired)
      << verdict_of(vs, obs::DriftKind::kStripeSkew).detail;
  EXPECT_GE(mon.triggers(), 4u);  // home_hit_rate fired somewhere mid-run

  const std::string json = mon.verdicts_json();
  EXPECT_NE(json.find("\"site_churn\""), std::string::npos);
  EXPECT_NE(json.find("\"fired_history\""), std::string::npos);
}

TEST(Drift, InsufficientWindowReportsNotEnoughData) {
  SyntheticEngine eng;
  obs::MetricsTimeline tl(tl_config(16));
  eng.attach(tl);
  obs::DriftMonitor mon(drift_config(), tl);
  tl.sample_now();  // one frame < window_frames=4
  const std::vector<obs::DriftVerdict> vs = mon.evaluate();
  for (const obs::DriftVerdict& v : vs) {
    EXPECT_FALSE(v.fired);
    EXPECT_FALSE(v.enough_data);
  }
}

// ---- flight recorder --------------------------------------------------

TEST(FlightRecorder, DisabledRecorderWritesNothing) {
  obs::FlightRecorder flight("");
  EXPECT_FALSE(flight.enabled());
  flight.note_status_line("ignored");
  EXPECT_EQ(flight.dump("reason", nullptr, nullptr, ""), "");
  EXPECT_EQ(flight.dumps(), 0u);
  EXPECT_TRUE(flight.bundle_paths().empty());
}

TEST(FlightRecorder, ExplicitDumpWritesSelfContainedBundle) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("txf_flight_test_" + std::to_string(::getpid()));
  fs::remove_all(dir);

  SyntheticEngine eng;
  obs::MetricsTimeline tl(tl_config(16));
  eng.attach(tl);
  obs::DriftMonitor mon(drift_config(), tl);
  for (int i = 0; i < 5; ++i) {
    eng.commits.add(100);
    tl.sample_now();
    mon.evaluate();
  }

  obs::FlightRecorder flight(dir.string());
  for (int i = 0; i < 70; ++i)
    flight.note_status_line("status line " + std::to_string(i));

  const std::string bundle =
      flight.dump("Unit Test: explicit request!", &tl, &mon,
                  "{\"unit\": true}\n");
  ASSERT_FALSE(bundle.empty());
  EXPECT_EQ(flight.dumps(), 1u);
  EXPECT_EQ(flight.bundle_paths().size(), 1u);
  // Reason slug is sanitized into the directory name.
  EXPECT_NE(bundle.find("flight-0-unit-test-explicit-request"),
            std::string::npos);

  for (const char* name :
       {"manifest.json", "metrics.json", "trace.json", "timeline.json",
        "verdicts.json", "config.json", "status_tail.txt"}) {
    EXPECT_TRUE(fs::is_regular_file(fs::path(bundle) / name)) << name;
  }
  // The status tail is a ring: line 0..5 rolled off, the last line stayed.
  std::ifstream tail(fs::path(bundle) / "status_tail.txt");
  std::string body((std::istreambuf_iterator<char>(tail)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(body.find("status line 0\n"), std::string::npos);
  EXPECT_NE(body.find("status line 69"), std::string::npos);

  // Second dump gets the next sequence number.
  const std::string second = flight.dump("again", &tl, &mon, "");
  EXPECT_NE(second.find("flight-1-again"), std::string::npos);

  fs::remove_all(dir);
}
