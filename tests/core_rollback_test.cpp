// Tests for RestartPolicy::kPartialRollback — the FCC-based continuation
// rollback of the paper (§III): a continuation that missed its future's
// write is rewound to the submit point and replayed, WITHOUT restarting
// the whole top-level transaction.
//
// Rollback-mode bodies follow the FCC restrictions (DESIGN.md substitution
// 2): locals crossing a submit point are trivially copyable and
// non-transactional side effects on the replayed path are idempotent or
// counted via atomics (which these tests use on purpose, to observe the
// replays).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/api.hpp"

namespace {

using txf::core::atomically;
using txf::core::Config;
using txf::core::RestartPolicy;
using txf::core::Runtime;
using txf::core::TxCtx;
using txf::stm::VBox;

Config rollback_config() {
  Config cfg;
  cfg.pool_threads = 2;
  cfg.restart = RestartPolicy::kPartialRollback;
  return cfg;
}

TEST(PartialRollback, PlainTransactionsStillWork) {
  Runtime rt(rollback_config());
  VBox<int> x(1);
  atomically(rt, [&](TxCtx& ctx) { x.put(ctx, 2); });
  EXPECT_EQ(x.peek_committed(), 2);
}

TEST(PartialRollback, FutureAndContinuationWithoutConflict) {
  Runtime rt(rollback_config());
  VBox<int> x(10);
  const int v = atomically(rt, [&](TxCtx& ctx) {
    auto f = ctx.submit([&](TxCtx& c) { return x.get(c) * 2; });
    return f.get(ctx) + 1;
  });
  EXPECT_EQ(v, 21);
}

TEST(PartialRollback, ContinuationMissRewindsNotRestarts) {
  // The continuation reads x before the future writes it -> intra-tree
  // conflict. With FCC the whole-body execution count stays 1 (no tree
  // restart); only the code after the submit replays.
  Runtime rt(rollback_config());
  rt.stats().reset();
  VBox<int> x(0);
  std::atomic<int> body_entries{0};
  std::atomic<int> continuation_runs{0};
  const int seen = atomically(rt, [&](TxCtx& ctx) {
    body_entries.fetch_add(1);
    auto f = ctx.submit([&](TxCtx& c) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      x.put(c, 42);
      return 0;
    });
    continuation_runs.fetch_add(1);
    const int v = x.get(ctx);  // races ahead of the future
    f.get(ctx);
    return v;
  });
  EXPECT_EQ(seen, 42);               // sequential semantics
  EXPECT_EQ(x.peek_committed(), 42);
  EXPECT_EQ(body_entries.load(), 1);          // never restarted from scratch
  EXPECT_GE(continuation_runs.load(), 2);     // the tail replayed
  EXPECT_GE(rt.stats().partial_rollbacks.load(), 1u);
  EXPECT_EQ(rt.stats().tree_restarts.load(), 0u);
}

TEST(PartialRollback, PrefixEffectsSurviveRollback) {
  // Writes performed before the submit point belong to the parent and must
  // NOT be rolled back when the continuation rewinds.
  Runtime rt(rollback_config());
  VBox<int> x(0);
  VBox<int> y(0);
  std::atomic<int> prefix_runs{0};
  atomically(rt, [&](TxCtx& ctx) {
    prefix_runs.fetch_add(1);
    y.put(ctx, 7);  // parent-prefix write
    auto f = ctx.submit([&](TxCtx& c) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      x.put(c, 1);
      return 0;
    });
    (void)x.get(ctx);  // force the continuation conflict
    f.get(ctx);
  });
  EXPECT_EQ(prefix_runs.load(), 1);
  EXPECT_EQ(y.peek_committed(), 7);
  EXPECT_EQ(x.peek_committed(), 1);
}

TEST(PartialRollback, NestedFutureInsideFutureWithConflict) {
  Runtime rt(rollback_config());
  rt.stats().reset();
  VBox<int> x(0);
  const int v = atomically(rt, [&](TxCtx& ctx) {
    auto outer = ctx.submit([&](TxCtx& mid) {
      auto inner = mid.submit([&](TxCtx& in) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        x.put(in, 5);
        return 0;
      });
      const int seen = x.get(mid);  // may race ahead of `inner`
      inner.get(mid);
      return seen;
    });
    return outer.get(ctx);
  });
  // Strong ordering: the mid-continuation reads AFTER inner's write.
  EXPECT_EQ(v, 5);
  EXPECT_EQ(x.peek_committed(), 5);
}

TEST(PartialRollback, SequentialResultForFutureChains) {
  Runtime rt(rollback_config());
  VBox<long> acc(1);
  atomically(rt, [&](TxCtx& ctx) {
    // Chained read-modify-writes through futures; strong ordering demands
    // digits in submission order regardless of scheduling.
    auto f1 = ctx.submit([&](TxCtx& c) {
      acc.put(c, acc.get(c) * 10 + 2);
      return 0;
    });
    auto f2 = ctx.submit([&](TxCtx& c) {
      acc.put(c, acc.get(c) * 10 + 3);
      return 0;
    });
    f1.get(ctx);
    f2.get(ctx);
    acc.put(ctx, acc.get(ctx) * 10 + 4);
  });
  EXPECT_EQ(acc.peek_committed(), 1234L);
}

TEST(PartialRollback, RepeatedTransactionsReuseCleanly) {
  Runtime rt(rollback_config());
  VBox<long> sum(0);
  for (int i = 0; i < 50; ++i) {
    atomically(rt, [&](TxCtx& ctx) {
      auto f = ctx.submit([&](TxCtx& c) { return sum.get(c) + 1; });
      sum.put(ctx, f.get(ctx));
    });
  }
  EXPECT_EQ(sum.peek_committed(), 50);
}

TEST(PartialRollback, ConcurrentTreesWithRollbacks) {
  Runtime rt(rollback_config());
  VBox<long> counter(0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 40; ++i) {
        atomically(rt, [&](TxCtx& ctx) {
          auto f = ctx.submit([&](TxCtx& c) {
            counter.put(c, counter.get(c) + 1);
            return 0;
          });
          (void)counter.get(ctx);  // likely conflicts with own future
          f.get(ctx);
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.peek_committed(), 80);
}

TEST(PartialRollback, UserExceptionStillPropagates) {
  Runtime rt(rollback_config());
  VBox<int> x(0);
  EXPECT_THROW(atomically(rt, [&](TxCtx& ctx) {
                 auto f = ctx.submit([&](TxCtx&) -> int {
                   throw std::runtime_error("future boom");
                 });
                 f.get(ctx);
               }),
               std::runtime_error);
  EXPECT_EQ(x.peek_committed(), 0);
}

}  // namespace
