// Tests for the Chase-Lev work-stealing deque.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "sched/ws_deque.hpp"

namespace {

using Deque = txf::sched::WsDeque<int*>;

TEST(WsDeque, PushPopLifoOrder) {
  Deque d;
  int a = 1, b = 2, c = 3;
  d.push(&a);
  d.push(&b);
  d.push(&c);
  EXPECT_EQ(d.pop(), &c);
  EXPECT_EQ(d.pop(), &b);
  EXPECT_EQ(d.pop(), &a);
  EXPECT_EQ(d.pop(), nullptr);
}

TEST(WsDeque, StealFifoOrder) {
  Deque d;
  int a = 1, b = 2;
  d.push(&a);
  d.push(&b);
  EXPECT_EQ(d.steal(), &a);
  EXPECT_EQ(d.steal(), &b);
  EXPECT_EQ(d.steal(), nullptr);
}

TEST(WsDeque, EmptyBehaviour) {
  Deque d;
  EXPECT_EQ(d.pop(), nullptr);
  EXPECT_EQ(d.steal(), nullptr);
  EXPECT_TRUE(d.empty_approx());
}

TEST(WsDeque, GrowsPastInitialCapacity) {
  Deque d(4);
  std::vector<int> storage(1000);
  for (int i = 0; i < 1000; ++i) d.push(&storage[i]);
  EXPECT_EQ(d.size_approx(), 1000u);
  for (int i = 999; i >= 0; --i) EXPECT_EQ(d.pop(), &storage[i]);
}

// Every pushed element must be consumed exactly once across the owner and
// multiple thieves.
TEST(WsDequeStress, NoLossNoDuplication) {
  constexpr int kItems = 200000;
  constexpr int kThieves = 3;
  Deque d;
  std::vector<int> storage(kItems);
  std::iota(storage.begin(), storage.end(), 0);
  std::vector<std::atomic<int>> seen(kItems);
  for (auto& s : seen) s.store(0);

  std::atomic<bool> done{false};
  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire) || !d.empty_approx()) {
        if (int* p = d.steal()) {
          seen[static_cast<std::size_t>(p - storage.data())].fetch_add(1);
        }
      }
    });
  }

  // Owner interleaves pushes and pops.
  for (int i = 0; i < kItems; ++i) {
    d.push(&storage[i]);
    if (i % 3 == 0) {
      if (int* p = d.pop()) {
        seen[static_cast<std::size_t>(p - storage.data())].fetch_add(1);
      }
    }
  }
  while (int* p = d.pop()) {
    seen[static_cast<std::size_t>(p - storage.data())].fetch_add(1);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();
  // Final sweep in case thieves exited between empty check and our pops.
  while (int* p = d.steal()) {
    seen[static_cast<std::size_t>(p - storage.data())].fetch_add(1);
  }

  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "item " << i;
  }
}

}  // namespace
