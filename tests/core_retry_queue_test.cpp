// Blocking retry (retry_now) and the transactional ring queue: the classic
// STM bounded-channel composition.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "containers/tx_queue.hpp"
#include "core/api.hpp"

namespace {

using txf::containers::TxQueue;
using txf::core::atomically;
using txf::core::Config;
using txf::core::retry_now;
using txf::core::Runtime;
using txf::core::TxCtx;
using txf::stm::VBox;

TEST(TxQueueTest, PushPopFifo) {
  Runtime rt;
  TxQueue<int> q(4);
  atomically(rt, [&](TxCtx& ctx) {
    EXPECT_TRUE(q.empty(ctx));
    EXPECT_TRUE(q.try_push(ctx, 1));
    EXPECT_TRUE(q.try_push(ctx, 2));
    EXPECT_EQ(q.size(ctx), 2);
    EXPECT_EQ(q.peek(ctx).value(), 1);
    EXPECT_EQ(q.try_pop(ctx).value(), 1);
    EXPECT_EQ(q.try_pop(ctx).value(), 2);
    EXPECT_FALSE(q.try_pop(ctx).has_value());
  });
}

TEST(TxQueueTest, FullQueueRejectsPush) {
  Runtime rt;
  TxQueue<int> q(2);
  atomically(rt, [&](TxCtx& ctx) {
    EXPECT_TRUE(q.try_push(ctx, 1));
    EXPECT_TRUE(q.try_push(ctx, 2));
    EXPECT_TRUE(q.full(ctx));
    EXPECT_FALSE(q.try_push(ctx, 3));
    // Pop one; wrap-around push works.
    EXPECT_EQ(q.try_pop(ctx).value(), 1);
    EXPECT_TRUE(q.try_push(ctx, 3));
  });
}

TEST(TxQueueTest, WrapAroundManyTimes) {
  Runtime rt;
  TxQueue<int> q(3);
  for (int round = 0; round < 50; ++round) {
    atomically(rt, [&](TxCtx& ctx) {
      q.try_push(ctx, round);
      EXPECT_EQ(q.try_pop(ctx).value(), round);
    });
  }
}

TEST(TxQueueTest, AbortRollsBackPush) {
  Runtime rt;
  TxQueue<int> q(4);
  try {
    atomically(rt, [&](TxCtx& ctx) {
      q.try_push(ctx, 9);
      throw std::runtime_error("abort");
    });
  } catch (const std::runtime_error&) {
  }
  atomically(rt, [&](TxCtx& ctx) { EXPECT_TRUE(q.empty(ctx)); });
}

TEST(RetryNow, BlocksUntilConditionEstablished) {
  Runtime rt(Config{.pool_threads = 2});
  VBox<int> flag(0);
  std::atomic<bool> consumer_done{false};

  std::thread consumer([&] {
    const int v = atomically(rt, [&](TxCtx& ctx) {
      const int f = flag.get(ctx);
      if (f == 0) retry_now(ctx);  // wait for the producer
      return f;
    });
    EXPECT_EQ(v, 7);
    consumer_done.store(true);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(consumer_done.load());  // still parked
  atomically(rt, [&](TxCtx& ctx) { flag.put(ctx, 7); });
  consumer.join();
  EXPECT_TRUE(consumer_done.load());
}

TEST(RetryNow, BoundedChannelProducerConsumer) {
  Runtime rt(Config{.pool_threads = 2});
  TxQueue<long> chan(4);
  constexpr long kItems = 200;

  std::thread producer([&] {
    for (long i = 1; i <= kItems; ++i) {
      atomically(rt, [&](TxCtx& ctx) {
        if (!chan.try_push(ctx, i)) retry_now(ctx);  // block while full
      });
    }
  });

  long sum = 0;
  for (long i = 0; i < kItems; ++i) {
    sum += atomically(rt, [&](TxCtx& ctx) {
      auto v = chan.try_pop(ctx);
      if (!v) retry_now(ctx);  // block while empty
      return *v;
    });
  }
  producer.join();
  EXPECT_EQ(sum, kItems * (kItems + 1) / 2);
  atomically(rt, [&](TxCtx& ctx) { EXPECT_TRUE(chan.empty(ctx)); });
}

TEST(RetryNow, WorksFromInsideAFuture) {
  Runtime rt(Config{.pool_threads = 2});
  VBox<int> gate(0);
  std::atomic<bool> waiting{false};
  std::thread opener([&] {
    while (!waiting.load(std::memory_order_acquire))
      std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    atomically(rt, [&](TxCtx& ctx) { gate.put(ctx, 1); });
  });
  const int seen = atomically(rt, [&](TxCtx& ctx) {
    auto f = ctx.submit([&](TxCtx& c) {
      const int g = gate.get(c);
      waiting.store(true, std::memory_order_release);
      if (g == 0) retry_now(c);  // whole transaction waits and re-runs
      return g;
    });
    return f.get(ctx);
  });
  opener.join();
  EXPECT_EQ(seen, 1);
}

}  // namespace
