// Contention-manager behavior under sustained overload: every
// atomically() call must terminate (backoff + bounded retry + serial
// escalation), the deadline cause must be charged exactly once per final
// outcome, and the abort-cause accounting identity
//   sum(causes) - deadline == attempt_aborts
// must survive arbitrary amounts of retry traffic. These are the
// unit-level contracts behind the service harness's taxonomy-driven
// overload controller (src/server/admission.cpp).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/api.hpp"
#include "util/failpoint.hpp"

namespace {

using txf::core::atomically;
using txf::core::Config;
using txf::core::Runtime;
using txf::core::TxCtx;
using txf::obs::AbortAccounting;
using txf::obs::AbortCause;
using txf::stm::VBox;
namespace fp = txf::util::fp;

std::uint64_t cause_sum(const AbortAccounting& acc) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < static_cast<std::size_t>(AbortCause::kCount);
       ++i)
    sum += acc.of(static_cast<AbortCause>(i)).load();
  return sum;
}

void expect_identity(const AbortAccounting& acc) {
  // kDeadlineExceeded marks the escalation event, not a failed attempt, so
  // it is the one cause deliberately outside attempt_aborts.
  EXPECT_EQ(cause_sum(acc) - acc.of(AbortCause::kDeadlineExceeded).load(),
            acc.attempt_aborts.load());
}

TEST(Overload, DeadlineChargedExactlyOncePerCall) {
  // Every parallel attempt is killed outright (abort-tree on each
  // validation — a kFail would recover intra-tree and escalate through the
  // continuation-conflict path instead), and attempt-count escalation is
  // disabled — the deadline is the only route to the serial fallback. Each
  // call must therefore charge kDeadlineExceeded exactly once, then commit
  // serially.
  Config cfg;
  cfg.pool_threads = 2;
  cfg.scheduling = txf::core::SchedulingMode::kAlwaysParallel;
  cfg.max_attempts = 0;  // retry forever; only the deadline can escalate
  cfg.tx_deadline_us = 5000;
  cfg.backoff_base_us = 1;
  cfg.backoff_cap_us = 50;
  cfg.chaos.seed = 21;
  cfg.chaos.add("core.subtxn.validate", fp::Action::kAbortTree, 1);
  Runtime rt(cfg);
  AbortAccounting& acc = rt.env().abort_accounting();

  VBox<long> counter(0);
  constexpr int kCalls = 6;
  for (int i = 0; i < kCalls; ++i) {
    atomically(rt, [&](TxCtx& ctx) {
      auto f = ctx.submit([&](TxCtx& c) { return counter.get(c) + 1; });
      counter.put(ctx, f.get(ctx));
    });
  }

  EXPECT_EQ(counter.peek_committed(), kCalls);
  EXPECT_EQ(acc.of(AbortCause::kDeadlineExceeded).load(),
            static_cast<std::uint64_t>(kCalls));
  EXPECT_EQ(rt.robustness().deadline_aborts.load(),
            static_cast<std::uint64_t>(kCalls));
  EXPECT_EQ(acc.tx_commits.load(), static_cast<std::uint64_t>(kCalls));
  EXPECT_EQ(acc.tx_aborted.load(), 0u);
  EXPECT_EQ(rt.robustness().serial_irrevocable.load(),
            static_cast<std::uint64_t>(kCalls));
  // Every pre-escalation attempt failed and was charged to a cause.
  EXPECT_GT(acc.attempt_aborts.load(), 0u);
  expect_identity(acc);
}

TEST(Overload, AttemptBudgetEscalationLeavesDeadlineUncharged) {
  // Same doomed-attempt schedule, but with a retry budget and no deadline:
  // escalation must come from max_attempts, and the deadline cause stays
  // exactly zero (no spurious charges from the escalation path).
  Config cfg;
  cfg.pool_threads = 2;
  cfg.scheduling = txf::core::SchedulingMode::kAlwaysParallel;
  cfg.max_attempts = 3;
  cfg.tx_deadline_us = 0;
  cfg.backoff_base_us = 1;
  cfg.backoff_cap_us = 50;
  cfg.chaos.seed = 22;
  cfg.chaos.add("core.subtxn.validate", fp::Action::kAbortTree, 1);
  Runtime rt(cfg);
  AbortAccounting& acc = rt.env().abort_accounting();

  VBox<long> counter(0);
  constexpr int kCalls = 5;
  for (int i = 0; i < kCalls; ++i) {
    atomically(rt, [&](TxCtx& ctx) {
      auto f = ctx.submit([&](TxCtx& c) { return counter.get(c) + 1; });
      counter.put(ctx, f.get(ctx));
    });
  }

  EXPECT_EQ(counter.peek_committed(), kCalls);
  EXPECT_EQ(acc.of(AbortCause::kDeadlineExceeded).load(), 0u);
  EXPECT_EQ(acc.tx_commits.load(), static_cast<std::uint64_t>(kCalls));
  // The budget was consumed before each escalation: exactly max_attempts
  // failed attempts per call, all of them charged to a cause.
  EXPECT_EQ(acc.attempt_aborts.load(),
            static_cast<std::uint64_t>(kCalls) * cfg.max_attempts);
  EXPECT_GT(rt.robustness().backoff_ns.load(), 0u);
  expect_identity(acc);
}

TEST(Overload, SustainedContentionTerminatesWithExactAccounting) {
  // Real contention, no chaos: several threads hammer one box through
  // future-carried RMWs with a tight retry budget and a deadline armed.
  // Termination is the headline contract (the test finishing at all);
  // the accounting contracts are the rest: one final outcome per call,
  // deadline charged at most once per call, identity intact.
  Config cfg;
  cfg.pool_threads = 2;
  cfg.max_attempts = 2;
  cfg.tx_deadline_us = 20'000;
  cfg.backoff_base_us = 1;
  cfg.backoff_cap_us = 100;
  Runtime rt(cfg);
  AbortAccounting& acc = rt.env().abort_accounting();

  VBox<long> counter(0);
  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        atomically(rt, [&](TxCtx& ctx) {
          auto f = ctx.submit([&](TxCtx& c) { return counter.get(c) + 1; });
          counter.put(ctx, f.get(ctx));
        });
      }
    });
  }
  for (auto& th : threads) th.join();

  constexpr long kTotal = static_cast<long>(kThreads) * kCallsPerThread;
  EXPECT_EQ(counter.peek_committed(), kTotal);
  EXPECT_EQ(acc.tx_commits.load(), static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(acc.tx_aborted.load(), 0u);
  EXPECT_LE(acc.of(AbortCause::kDeadlineExceeded).load(),
            static_cast<std::uint64_t>(kTotal));
  expect_identity(acc);
}

}  // namespace
