// Tests for transactional containers: TxMap, TxCounter, TxVector — both on
// flat transactions and inside transaction trees with futures.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "containers/tx_counter.hpp"
#include "containers/tx_map.hpp"
#include "containers/tx_vector.hpp"
#include "core/api.hpp"

namespace {

using txf::containers::StripedTxCounter;
using txf::containers::TxCounter;
using txf::containers::TxMap;
using txf::containers::TxVector;
using txf::core::atomically;
using txf::core::Runtime;
using txf::core::TxCtx;

TEST(TxMapTest, PutGetErase) {
  Runtime rt;
  TxMap map(64);
  atomically(rt, [&](TxCtx& ctx) {
    EXPECT_FALSE(map.get(ctx, 1).has_value());
    EXPECT_TRUE(map.put(ctx, 1, 100));
    EXPECT_TRUE(map.put(ctx, 2, 200));
    EXPECT_FALSE(map.put(ctx, 1, 111));  // update, not insert
    EXPECT_EQ(map.get(ctx, 1).value(), 111u);
    EXPECT_EQ(map.get(ctx, 2).value(), 200u);
    EXPECT_TRUE(map.erase(ctx, 1));
    EXPECT_FALSE(map.erase(ctx, 1));
    EXPECT_FALSE(map.get(ctx, 1).has_value());
  });
}

TEST(TxMapTest, KeyZeroWorks) {
  Runtime rt;
  TxMap map(16);
  atomically(rt, [&](TxCtx& ctx) {
    map.put(ctx, 0, 42);
    EXPECT_EQ(map.get(ctx, 0).value(), 42u);
  });
}

TEST(TxMapTest, ReinsertAfterErase) {
  Runtime rt;
  TxMap map(16);
  atomically(rt, [&](TxCtx& ctx) {
    map.put(ctx, 5, 1);
    map.erase(ctx, 5);
    EXPECT_TRUE(map.put(ctx, 5, 2));  // revives the tombstoned slot
    EXPECT_EQ(map.get(ctx, 5).value(), 2u);
  });
}

TEST(TxMapTest, ManyKeysAndScan) {
  Runtime rt;
  TxMap map(1024);
  constexpr std::uint64_t kN = 500;
  atomically(rt, [&](TxCtx& ctx) {
    for (std::uint64_t k = 0; k < kN; ++k) map.put(ctx, k * 7, k);
  });
  atomically(rt, [&](TxCtx& ctx) {
    std::set<std::uint64_t> seen;
    std::uint64_t sum = 0;
    map.for_each(ctx, [&](std::uint64_t k, std::uint64_t v) {
      seen.insert(k);
      sum += v;
    });
    EXPECT_EQ(seen.size(), kN);
    EXPECT_EQ(sum, kN * (kN - 1) / 2);
    EXPECT_EQ(map.size(ctx), kN);
  });
}

TEST(TxMapTest, CapacityOverflowThrows) {
  Runtime rt;
  TxMap map(4);  // rounds up small; fill beyond max load
  EXPECT_THROW(atomically(rt, [&](TxCtx& ctx) {
                 for (std::uint64_t k = 0; k < 100; ++k)
                   map.put(ctx, k, k);
               }),
               TxMap::TxMapFull);
}

TEST(TxMapTest, IsolationBetweenTransactions) {
  Runtime rt;
  TxMap map(64);
  atomically(rt, [&](TxCtx& ctx) { map.put(ctx, 9, 1); });
  std::atomic<bool> committed{false};
  std::thread writer([&] {
    atomically(rt, [&](TxCtx& ctx) { map.put(ctx, 9, 2); });
    committed.store(true);
  });
  writer.join();
  atomically(rt, [&](TxCtx& ctx) {
    EXPECT_EQ(map.get(ctx, 9).value(), 2u);
  });
}

TEST(TxMapTest, ConcurrentInsertersDontLoseKeys) {
  Runtime rt;
  TxMap map(4096);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPer = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPer; ++i) {
        atomically(rt, [&](TxCtx& ctx) {
          map.put(ctx, static_cast<std::uint64_t>(t) * 10000 + i, i);
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  atomically(rt, [&](TxCtx& ctx) {
    EXPECT_EQ(map.size(ctx), kThreads * kPer);
  });
}

TEST(TxMapTest, ParallelScanWithFuturesMatchesSerial) {
  Runtime rt;
  TxMap map(512);
  constexpr std::uint64_t kN = 300;
  atomically(rt, [&](TxCtx& ctx) {
    for (std::uint64_t k = 0; k < kN; ++k) map.put(ctx, k, k * 2);
  });
  const auto total = atomically(rt, [&](TxCtx& ctx) {
    const std::size_t half = map.capacity() / 2;
    auto lo = ctx.submit([&, half](TxCtx& c) {
      std::uint64_t s = 0;
      map.scan_range(c, 0, half, [&](std::uint64_t, std::uint64_t v) { s += v; });
      return s;
    });
    std::uint64_t hi = 0;
    map.scan_range(ctx, half, map.capacity(),
                   [&](std::uint64_t, std::uint64_t v) { hi += v; });
    return lo.get(ctx) + hi;
  });
  EXPECT_EQ(total, kN * (kN - 1));  // sum of 2k for k in [0, kN)
}

TEST(TxCounterTest, FetchAddSequence) {
  Runtime rt;
  TxCounter c(10);
  atomically(rt, [&](TxCtx& ctx) {
    EXPECT_EQ(c.fetch_add(ctx, 5), 10);
    EXPECT_EQ(c.get(ctx), 15);
    c.add(ctx, -3);
    EXPECT_EQ(c.get(ctx), 12);
  });
  EXPECT_EQ(c.peek(), 12);
}

TEST(TxCounterTest, ConcurrentIncrementsExact) {
  Runtime rt;
  TxCounter c(0);
  constexpr int kThreads = 4, kIter = 300;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIter; ++i)
        atomically(rt, [&](TxCtx& ctx) { c.add(ctx, 1); });
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.peek(), kThreads * kIter);
}

TEST(StripedCounterTest, SumsAcrossStripes) {
  Runtime rt;
  StripedTxCounter c(8);
  constexpr int kThreads = 4, kIter = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIter; ++i) {
        atomically(rt, [&](TxCtx& ctx) {
          c.add(ctx, 1, static_cast<std::size_t>(t));
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.peek(), kThreads * kIter);
}

TEST(TxVectorTest, PushPopSetAt) {
  Runtime rt;
  TxVector<int> v(8);
  atomically(rt, [&](TxCtx& ctx) {
    v.push_back(ctx, 1);
    v.push_back(ctx, 2);
    EXPECT_EQ(v.size(ctx), 2);
    EXPECT_EQ(v.at(ctx, 0), 1);
    v.set(ctx, 0, 9);
    EXPECT_EQ(v.at(ctx, 0), 9);
    EXPECT_EQ(v.pop_back(ctx), 2);
    EXPECT_EQ(v.size(ctx), 1);
  });
  EXPECT_EQ(v.peek_size(), 1);
  EXPECT_EQ(v.peek(0), 9);
}

TEST(TxVectorTest, OverflowThrows) {
  Runtime rt;
  TxVector<int> v(2);
  EXPECT_THROW(atomically(rt, [&](TxCtx& ctx) {
                 v.push_back(ctx, 1);
                 v.push_back(ctx, 2);
                 v.push_back(ctx, 3);
               }),
               TxVector<int>::TxVectorFull);
}

TEST(TxVectorTest, AbortRollsBackPush) {
  Runtime rt;
  TxVector<int> v(8);
  try {
    atomically(rt, [&](TxCtx& ctx) {
      v.push_back(ctx, 1);
      throw std::runtime_error("abort");
    });
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(v.peek_size(), 0);
}

}  // namespace
