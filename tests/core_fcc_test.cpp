// Tests for the FCC substrate: fibers, stack checkpoints, restores —
// including restore from a different thread and repeated restores.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/fcc.hpp"

namespace {

using txf::core::Checkpoint;
using txf::core::Fiber;

TEST(Fiber, RunsToCompletion) {
  Fiber fiber;
  int x = 0;
  fiber.run([&] { x = 42; });
  EXPECT_EQ(x, 42);
  EXPECT_TRUE(fiber.finished());
}

TEST(Fiber, RunsOnItsOwnStack) {
  Fiber fiber;
  char* frame_addr = nullptr;
  fiber.run([&] {
    char probe;
    frame_addr = &probe;
  });
  EXPECT_GE(frame_addr, fiber.stack_base());
  EXPECT_LT(frame_addr, fiber.stack_top());
}

TEST(Fiber, SequentialRunsReuseStack) {
  Fiber fiber;
  int total = 0;
  for (int i = 0; i < 10; ++i) {
    fiber.run([&, i] { total += i; });
  }
  EXPECT_EQ(total, 45);
}

TEST(Checkpoint, CaptureThenRestoreReplaysSuffix) {
  Fiber fiber;
  Checkpoint cp;
  int phase_a = 0;
  int phase_b = 0;
  fiber.run([&] {
    phase_a += 1;                       // before the checkpoint: runs once
    const auto r = cp.capture(fiber);
    (void)r;
    phase_b += 1;                       // after: runs once per (re)entry
  });
  EXPECT_EQ(phase_a, 1);
  EXPECT_EQ(phase_b, 1);

  fiber.restore(cp);
  EXPECT_EQ(phase_a, 1);  // prefix not replayed
  EXPECT_EQ(phase_b, 2);  // suffix replayed

  fiber.restore(cp);
  EXPECT_EQ(phase_b, 3);
}

TEST(Checkpoint, CaptureReportsRestoredPass) {
  Fiber fiber;
  Checkpoint cp;
  std::vector<Checkpoint::CaptureResult> results;
  fiber.run([&] { results.push_back(cp.capture(fiber)); });
  fiber.restore(cp);
  fiber.restore(cp);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0], Checkpoint::CaptureResult::kCaptured);
  EXPECT_EQ(results[1], Checkpoint::CaptureResult::kRestored);
  EXPECT_EQ(results[2], Checkpoint::CaptureResult::kRestored);
}

TEST(Checkpoint, LocalsRestoredBitwise) {
  Fiber fiber;
  Checkpoint cp;
  long observed_first = -1;
  long observed_restored = -1;
  bool first = true;
  fiber.run([&] {
    long local = 100;  // trivially copyable: safe across checkpoints
    const auto r = cp.capture(fiber);
    if (r == Checkpoint::CaptureResult::kCaptured) {
      observed_first = local;
      local = 999;  // mutation after the checkpoint...
      (void)local;
    } else {
      observed_restored = local;  // ...must be undone by the restore
    }
  });
  EXPECT_EQ(observed_first, 100);
  fiber.restore(cp);
  EXPECT_EQ(observed_restored, 100);
}

TEST(Checkpoint, DeepCallChainSurvivesRestore) {
  Fiber fiber;
  Checkpoint cp;
  int runs = 0;
  // Capture several frames deep; the restore must bring the whole chain
  // back so the returns unwind correctly.
  std::function<int(int)> deep = [&](int depth) -> int {
    if (depth == 0) {
      cp.capture(fiber);
      ++runs;
      return 1;
    }
    return deep(depth - 1) + depth;
  };
  int result = 0;
  fiber.run([&] { result = deep(6); });
  EXPECT_EQ(result, 1 + 6 + 5 + 4 + 3 + 2 + 1);
  EXPECT_EQ(runs, 1);
  fiber.restore(cp);
  EXPECT_EQ(result, 22);
  EXPECT_EQ(runs, 2);
}

TEST(Checkpoint, RestoreFromAnotherThread) {
  Fiber fiber;
  Checkpoint cp;
  std::atomic<int> entries{0};
  std::thread::id first_tid;
  std::thread::id second_tid;
  fiber.run([&] {
    cp.capture(fiber);
    if (entries.fetch_add(1) == 0) {
      first_tid = std::this_thread::get_id();
    } else {
      second_tid = std::this_thread::get_id();
    }
  });
  // A different thread re-enters the fiber at the checkpoint.
  std::thread other([&] { fiber.restore(cp); });
  other.join();
  EXPECT_EQ(entries.load(), 2);
  EXPECT_NE(first_tid, second_tid);
}

TEST(Checkpoint, MultipleCheckpointsRestoreToTheRightOne) {
  Fiber fiber;
  Checkpoint early, late;
  std::vector<int> trace;
  fiber.run([&] {
    trace.push_back(1);
    if (early.capture(fiber) == Checkpoint::CaptureResult::kCaptured) {
      trace.push_back(2);
    } else {
      trace.push_back(20);
    }
    if (late.capture(fiber) == Checkpoint::CaptureResult::kCaptured) {
      trace.push_back(3);
    } else {
      trace.push_back(30);
    }
  });
  fiber.restore(late);   // replays only the tail
  fiber.restore(early);  // replays from the earlier point
  // Initial: 1,2,3. Restore(late): 30. Restore(early): 20, and the replay
  // then REACHES late.capture as a fresh call, re-capturing it -> 3.
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 30, 20, 3}));
}

}  // namespace
