// Conflict handling: future re-execution, continuation conflicts with the
// tree-restart policy, inter-tree write-write conflicts (eager lock +
// fallback), and top-level validation conflicts between trees.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <thread>

#include "core/api.hpp"

namespace {

using txf::core::atomically;
using txf::core::Config;
using txf::core::InterTreePolicy;
using txf::core::Runtime;
using txf::core::TxCtx;
using txf::core::WriteMode;
using txf::stm::VBox;

TEST(Conflict, FutureMissingPredecessorWriteReexecutes) {
  // f2 reads what f1 wrote; f2 is serialized after f1 but may run first.
  // Force that race: f2 runs to completion before f1 commits, so f2 must
  // be re-executed (not the whole tree).
  Runtime rt(Config{.pool_threads = 2});
  rt.stats().reset();
  VBox<int> x(1);
  std::atomic<bool> f2_done{false};
  const int result = atomically(rt, [&](TxCtx& ctx) {
    auto f1 = ctx.submit([&](TxCtx& c) {
      // Wait until f2 finished executing once with the stale value.
      int spins = 0;
      while (!f2_done.load(std::memory_order_acquire) && spins++ < 100000)
        std::this_thread::yield();
      x.put(c, 10);
      return 0;
    });
    auto f2 = ctx.submit([&](TxCtx& c) {
      const int v = x.get(c);
      f2_done.store(true, std::memory_order_release);
      return v * 2;
    });
    f1.get(ctx);
    return f2.get(ctx);
  });
  // Strong ordering: f2 sees f1's write no matter the physical schedule.
  EXPECT_EQ(result, 20);
  EXPECT_EQ(x.peek_committed(), 10);
  EXPECT_GE(rt.stats().future_reexecutions.load() +
                rt.stats().tree_restarts.load() +
                rt.stats().serial_fallbacks.load(),
            1u);
}

TEST(Conflict, ContinuationMissReRunsToSequentialResult) {
  // The continuation reads x before its future writes it: intra-tree
  // conflict on the continuation -> tree restart (no FCC) -> eventually the
  // sequential result.
  Runtime rt(Config{.pool_threads = 2});
  rt.stats().reset();
  VBox<int> x(0);
  std::atomic<int> executions{0};
  const int seen = atomically(rt, [&](TxCtx& ctx) {
    executions.fetch_add(1);
    auto f = ctx.submit([&](TxCtx& c) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      x.put(c, 42);
      return 0;
    });
    const int v = x.get(ctx);  // races ahead of the future
    f.get(ctx);
    return v;
  });
  // Sequential semantics: the continuation's read follows the future.
  EXPECT_EQ(seen, 42);
  EXPECT_EQ(x.peek_committed(), 42);
  EXPECT_GT(executions.load(), 1);  // at least one restart happened
}

TEST(Conflict, InterTreeWriteWriteEagerlyDetected) {
  // Two trees write the same box from sub-transactions; the second one to
  // arrive finds the tentative head locked and restarts in fallback mode.
  Runtime rt(Config{.pool_threads = 2});
  rt.stats().reset();
  VBox<int> hot(0);
  std::barrier sync(2);
  auto worker = [&](int id) {
    atomically(rt, [&](TxCtx& ctx) {
      auto f = ctx.submit([&, id](TxCtx& c) {
        // Rendezvous first (only on the eager attempt), then race to take
        // the tentative-head lock; the loser restarts in fallback mode and
        // skips the barrier.
        if (!c.tree().in_fallback()) sync.arrive_and_wait();
        hot.put(c, id);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        return 0;
      });
      f.get(ctx);
    });
  };
  std::thread t1(worker, 1);
  std::thread t2(worker, 2);
  t1.join();
  t2.join();
  // Both eventually commit; a loser (if the race materialized) went
  // through the fallback path.
  EXPECT_EQ(rt.stats().top_commits.load(), 2u);
  const int final_val = hot.peek_committed();
  EXPECT_TRUE(final_val == 1 || final_val == 2);
}

TEST(Conflict, SwitchToPrivatePolicyAvoidsRestart) {
  Config cfg;
  cfg.pool_threads = 2;
  cfg.inter_tree = InterTreePolicy::kSwitchToPrivate;
  Runtime rt(cfg);
  rt.stats().reset();
  VBox<int> hot(0);
  std::barrier sync(2);
  auto worker = [&](int id) {
    atomically(rt, [&](TxCtx& ctx) {
      auto f = ctx.submit([&, id](TxCtx& c) {
        hot.put(c, id);
        static std::atomic<int> first{0};
        int expected = 0;
        if (first.compare_exchange_strong(expected, 1)) {
          sync.arrive_and_wait();  // hold the lock while the peer writes
        } else {
          sync.arrive_and_wait();
        }
        return 0;
      });
      f.get(ctx);
    });
  };
  std::thread t1(worker, 1);
  std::thread t2(worker, 2);
  t1.join();
  t2.join();
  EXPECT_EQ(rt.stats().top_commits.load(), 2u);
  EXPECT_EQ(rt.stats().fallback_restarts.load(), 0u);
}

TEST(Conflict, LazyWriteModeCommitsBothBlindWriters) {
  Config cfg;
  cfg.pool_threads = 2;
  cfg.write_mode = WriteMode::kLazy;
  Runtime rt(cfg);
  VBox<int> hot(0);
  std::thread t1([&] {
    atomically(rt, [&](TxCtx& ctx) {
      auto f = ctx.submit([&](TxCtx& c) {
        hot.put(c, 1);
        return 0;
      });
      f.get(ctx);
    });
  });
  std::thread t2([&] {
    atomically(rt, [&](TxCtx& ctx) {
      auto f = ctx.submit([&](TxCtx& c) {
        hot.put(c, 2);
        return 0;
      });
      f.get(ctx);
    });
  });
  t1.join();
  t2.join();
  const int v = hot.peek_committed();
  EXPECT_TRUE(v == 1 || v == 2);
  EXPECT_EQ(rt.stats().top_commits.load(), 2u);
}

TEST(Conflict, TopLevelReadWriteConflictRetries) {
  // Tree A reads x (in a future), tree B commits a new x before A's top
  // commit: A must abort at the commit queue and retry.
  Runtime rt(Config{.pool_threads = 2});
  rt.stats().reset();
  VBox<int> x(0);
  VBox<int> y(0);
  std::atomic<bool> a_read{false};
  std::atomic<bool> b_committed{false};

  std::thread b([&] {
    while (!a_read.load(std::memory_order_acquire)) std::this_thread::yield();
    atomically(rt, [&](TxCtx& ctx) { x.put(ctx, 99); });
    b_committed.store(true, std::memory_order_release);
  });

  atomically(rt, [&](TxCtx& ctx) {
    auto f = ctx.submit([&](TxCtx& c) {
      const int v = x.get(c);
      a_read.store(true, std::memory_order_release);
      // Stall until B committed so our top-level validation must fail the
      // first time around.
      int spins = 0;
      while (!b_committed.load(std::memory_order_acquire) &&
             spins++ < 1000000)
        std::this_thread::yield();
      return v;
    });
    y.put(ctx, f.get(ctx) + 1);
  });
  b.join();
  EXPECT_GE(rt.stats().top_aborts.load(), 1u);
  // After retry, A read the committed 99.
  EXPECT_EQ(y.peek_committed(), 100);
}

TEST(Conflict, CascadeAbortDiscardsFutureWrites) {
  // A tree that aborts at top level must leave no trace of its futures'
  // writes.
  Runtime rt(Config{.pool_threads = 2});
  VBox<int> x(0);
  VBox<int> observed(0);
  std::atomic<bool> first_attempt{true};
  std::atomic<bool> reader_done{false};

  std::thread noise([&] {
    // Wait for A's future to have written tentatively, then commit a
    // conflicting x to force A's top-level abort.
    while (!reader_done.load(std::memory_order_acquire))
      std::this_thread::yield();
    atomically(rt, [&](TxCtx& ctx) { x.put(ctx, 7); });
  });

  atomically(rt, [&](TxCtx& ctx) {
    auto f = ctx.submit([&](TxCtx& c) {
      const int v = x.get(c);
      observed.put(c, v + 1);  // tentative write, discarded on abort
      if (first_attempt.exchange(false)) {
        reader_done.store(true, std::memory_order_release);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      return v;
    });
    f.get(ctx);
  });
  noise.join();
  // Final state is consistent with some serial order; the key property is
  // the tentative write from the aborted attempt never leaked a stale +1.
  const int xv = x.peek_committed();
  const int ov = observed.peek_committed();
  EXPECT_TRUE(ov == xv + 1 || (ov == 1 && xv == 7) || ov == 0)
      << "x=" << xv << " observed=" << ov;
}

}  // namespace
