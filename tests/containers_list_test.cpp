// Tests for TxList (the sorted transactional IntSet list).
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "containers/tx_list.hpp"
#include "core/api.hpp"
#include "util/xoshiro.hpp"

namespace {

using txf::containers::TxList;
using txf::core::atomically;
using txf::core::Config;
using txf::core::Runtime;
using txf::core::TxCtx;

TEST(TxListTest, InsertContainsErase) {
  Runtime rt;
  TxList list;
  atomically(rt, [&](TxCtx& ctx) {
    EXPECT_TRUE(list.insert(ctx, 5));
    EXPECT_TRUE(list.insert(ctx, 3));
    EXPECT_TRUE(list.insert(ctx, 9));
    EXPECT_FALSE(list.insert(ctx, 5));  // duplicate
    EXPECT_TRUE(list.contains(ctx, 3));
    EXPECT_FALSE(list.contains(ctx, 4));
    EXPECT_EQ(list.size(ctx), 3);
    EXPECT_TRUE(list.erase(ctx, 3));
    EXPECT_FALSE(list.erase(ctx, 3));
    EXPECT_FALSE(list.contains(ctx, 3));
    EXPECT_EQ(list.size(ctx), 2);
    EXPECT_TRUE(list.is_sorted(ctx));
  });
}

TEST(TxListTest, SumMatchesContents) {
  Runtime rt;
  TxList list;
  atomically(rt, [&](TxCtx& ctx) {
    for (long k : {10, 20, 30, 40}) list.insert(ctx, k);
  });
  const long total =
      atomically(rt, [&](TxCtx& ctx) { return list.sum(ctx); });
  EXPECT_EQ(total, 100);
}

TEST(TxListTest, NegativeAndBoundaryKeys) {
  Runtime rt;
  TxList list;
  atomically(rt, [&](TxCtx& ctx) {
    EXPECT_TRUE(list.insert(ctx, -100));
    EXPECT_TRUE(list.insert(ctx, 0));
    EXPECT_TRUE(list.insert(ctx, 100));
    EXPECT_TRUE(list.contains(ctx, -100));
    EXPECT_TRUE(list.is_sorted(ctx));
  });
}

TEST(TxListTest, AbortRollsBackSplices) {
  Runtime rt;
  TxList list;
  atomically(rt, [&](TxCtx& ctx) { list.insert(ctx, 1); });
  try {
    atomically(rt, [&](TxCtx& ctx) {
      list.insert(ctx, 2);
      list.erase(ctx, 1);
      throw std::runtime_error("abort");
    });
  } catch (const std::runtime_error&) {
  }
  atomically(rt, [&](TxCtx& ctx) {
    EXPECT_TRUE(list.contains(ctx, 1));
    EXPECT_FALSE(list.contains(ctx, 2));
    EXPECT_EQ(list.size(ctx), 1);
  });
}

TEST(TxListTest, ConcurrentDisjointInsertsAllLand) {
  Runtime rt(Config{.pool_threads = 2});
  TxList list;
  constexpr int kThreads = 4;
  constexpr long kPer = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (long i = 0; i < kPer; ++i) {
        atomically(rt, [&](TxCtx& ctx) {
          list.insert(ctx, static_cast<long>(t) * 1000 + i);
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  atomically(rt, [&](TxCtx& ctx) {
    EXPECT_EQ(list.size(ctx), kThreads * kPer);
    EXPECT_TRUE(list.is_sorted(ctx));
  });
}

TEST(TxListTest, ConcurrentMixedOpsKeepInvariants) {
  Runtime rt(Config{.pool_threads = 2});
  TxList list;
  atomically(rt, [&](TxCtx& ctx) {
    for (long k = 0; k < 64; k += 2) list.insert(ctx, k);
  });
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      txf::util::Xoshiro256 rng(40 + t);
      for (int i = 0; i < 200; ++i) {
        const long key = static_cast<long>(rng.next_bounded(64));
        const auto op = rng.next_bounded(3);
        atomically(rt, [&](TxCtx& ctx) {
          if (op == 0) {
            list.insert(ctx, key);
          } else if (op == 1) {
            list.erase(ctx, key);
          } else {
            (void)list.contains(ctx, key);
          }
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  atomically(rt, [&](TxCtx& ctx) { EXPECT_TRUE(list.is_sorted(ctx)); });
}

TEST(TxListTest, SizeTracksMutations) {
  // Size is itself transactional: a concurrent auditor summing size deltas
  // must never see a torn intermediate.
  Runtime rt(Config{.pool_threads = 2});
  TxList list;
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::thread auditor([&] {
    while (!stop.load()) {
      atomically(rt, [&](TxCtx& ctx) {
        const long reported = list.size(ctx);
        // Count manually within the same snapshot (all keys are < 128).
        long count = 0;
        for (long k = 0; k < 128; ++k)
          if (list.contains(ctx, k)) ++count;
        if (count != reported) bad.fetch_add(1);
      });
    }
  });
  txf::util::Xoshiro256 rng(99);
  for (int i = 0; i < 300; ++i) {
    const long key = static_cast<long>(rng.next_bounded(128));
    atomically(rt, [&](TxCtx& ctx) {
      if (rng.next_bounded(2) == 0) {
        list.insert(ctx, key);
      } else {
        list.erase(ctx, key);
      }
    });
  }
  stop.store(true);
  auditor.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(TxListTest, ParallelSumWithFuture) {
  // The whole-list sum inside a future must be consistent with a
  // continuation mutating the list (strong ordering: the sum excludes the
  // continuation's insert).
  Runtime rt(Config{.pool_threads = 2});
  TxList list;
  atomically(rt, [&](TxCtx& ctx) {
    for (long k : {1, 2, 3}) list.insert(ctx, k);
  });
  const long summed = atomically(rt, [&](TxCtx& ctx) {
    auto f = ctx.submit([&](TxCtx& c) { return list.sum(c); });
    list.insert(ctx, 100);  // continuation mutates after the future
    return f.get(ctx);
  });
  EXPECT_EQ(summed, 6);
  atomically(rt, [&](TxCtx& ctx) { EXPECT_TRUE(list.contains(ctx, 100)); });
}

}  // namespace
