// TxBTree tests: ordered iteration and range boundaries, leaf-centric write
// buffering (spill across leaves, flush-size accounting), splits and merges
// under concurrent writers, scan-vs-put serializability, abort reclamation,
// and a chaos schedule arming the core.btree.* failpoints.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <thread>
#include <vector>

#include "containers/tx_btree.hpp"
#include "core/api.hpp"
#include "obs/metrics.hpp"
#include "util/failpoint.hpp"

namespace {

using txf::containers::TxBTree;
using txf::core::atomically;
using txf::core::Config;
using txf::core::Runtime;
using txf::core::SchedulingMode;
using txf::core::TxCtx;
namespace fp = txf::util::fp;

std::uint64_t metric(const char* name) {
  return txf::obs::MetricsRegistry::instance().counter_value(name);
}

// Histogram (count, sum) by registry name; (0, 0) when absent.
std::pair<std::uint64_t, std::uint64_t> histogram(const std::string& name) {
  for (const txf::obs::SampledMetric& m :
       txf::obs::MetricsRegistry::instance().snapshot_values()) {
    if (m.name == name)
      return {static_cast<std::uint64_t>(m.value), m.sum};
  }
  return {0, 0};
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> scan_all(
    Runtime& rt, const TxBTree& tree) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  atomically(rt, [&](TxCtx& ctx) {
    out.clear();
    tree.scan(ctx, 0, ~0ULL,
              [&](std::uint64_t k, std::uint64_t v) { out.emplace_back(k, v); });
  });
  return out;
}

TEST(TxBTreeTest, PutGetErase) {
  Runtime rt;
  TxBTree tree;
  atomically(rt, [&](TxCtx& ctx) {
    std::uint64_t v = 0;
    EXPECT_FALSE(tree.get(ctx, 7, v));
    tree.put(ctx, 7, 70);
    tree.put(ctx, 3, 30);
    tree.put(ctx, 7, 71);  // overwrite
    EXPECT_TRUE(tree.get(ctx, 7, v));
    EXPECT_EQ(v, 71u);
    EXPECT_TRUE(tree.get(ctx, 3, v));
    EXPECT_EQ(v, 30u);
    EXPECT_TRUE(tree.erase(ctx, 3));
    EXPECT_FALSE(tree.erase(ctx, 3));
    EXPECT_FALSE(tree.get(ctx, 3, v));
  });
  // Committed state visible to a fresh transaction.
  atomically(rt, [&](TxCtx& ctx) {
    std::uint64_t v = 0;
    EXPECT_TRUE(tree.get(ctx, 7, v));
    EXPECT_EQ(v, 71u);
  });
}

TEST(TxBTreeTest, OrderedScanWithExactBoundaries) {
  Runtime rt;
  TxBTree tree;
  constexpr std::uint64_t kN = 400;
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < kN; ++i) keys.push_back(i * 3 + 1);
  std::mt19937_64 rng(42);
  std::shuffle(keys.begin(), keys.end(), rng);
  for (std::uint64_t k : keys) {
    atomically(rt, [&](TxCtx& ctx) { tree.put(ctx, k, k * 10); });
  }
  atomically(rt, [&](TxCtx& ctx) {
    // [lo, hi): lo inclusive, hi exclusive, ascending order.
    std::vector<std::uint64_t> seen;
    const std::size_t n = tree.scan(ctx, 4, 3 * 10 + 1,
                                    [&](std::uint64_t k, std::uint64_t v) {
                                      EXPECT_EQ(v, k * 10);
                                      seen.push_back(k);
                                    });
    EXPECT_EQ(n, seen.size());
    std::vector<std::uint64_t> expect;
    for (std::uint64_t k = 4; k < 31; ++k)
      if ((k - 1) % 3 == 0) expect.push_back(k);
    EXPECT_EQ(seen, expect);
    EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
    // Empty and inverted ranges.
    EXPECT_EQ(tree.scan(ctx, 5, 5, [](std::uint64_t, std::uint64_t) {}), 0u);
    EXPECT_EQ(tree.scan(ctx, 9, 5, [](std::uint64_t, std::uint64_t) {}), 0u);
  });
  // Full scan sees every key once, in order.
  const auto all = scan_all(rt, tree);
  EXPECT_EQ(all.size(), kN);
  std::sort(keys.begin(), keys.end());
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(all[i].first, keys[i]);
}

TEST(TxBTreeTest, LeafBufferCoalescesAndSpillsAcrossSplits) {
  Runtime rt;
  TxBTree tree;
  const std::uint64_t splits0 = metric("core.btree.splits");
  const auto flush0 = histogram("core.btree.leaf_flush.size");
  // One transaction inserts far more than a leaf holds: the buffer must
  // spill across split leaves and every key must still be visible inside
  // the same transaction and after commit.
  constexpr std::uint64_t kN = 5 * TxBTree::kLeafCap;
  atomically(rt, [&](TxCtx& ctx) {
    for (std::uint64_t k = 0; k < kN; ++k) tree.put(ctx, k, k + 1);
    std::uint64_t v = 0;
    for (std::uint64_t k = 0; k < kN; ++k) {
      ASSERT_TRUE(tree.get(ctx, k, v)) << k;
      EXPECT_EQ(v, k + 1);
    }
  });
  EXPECT_GT(metric("core.btree.splits"), splits0);
  // The committed leaves carried coalesced buffers: flush sizes were
  // recorded, and they sum to >= kN buffered operations (each put bumps
  // exactly one leaf buffer).
  const auto flush1 = histogram("core.btree.leaf_flush.size");
  EXPECT_GT(flush1.first, flush0.first);
  EXPECT_GE(flush1.second - flush0.second, kN);
  const auto all = scan_all(rt, tree);
  ASSERT_EQ(all.size(), kN);
  for (std::uint64_t k = 0; k < kN; ++k) EXPECT_EQ(all[k].second, k + 1);
}

TEST(TxBTreeTest, SplitAndMergeUnderConcurrentWriters) {
  Runtime rt;
  TxBTree tree;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPer = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::uint64_t base = static_cast<std::uint64_t>(t) << 32;
      for (std::uint64_t i = 0; i < kPer; ++i) {
        atomically(rt, [&](TxCtx& ctx) { tree.put(ctx, base + i, i); });
      }
      // Erase every other key again, concurrently with other writers.
      for (std::uint64_t i = 0; i < kPer; i += 2) {
        atomically(rt, [&](TxCtx& ctx) { tree.erase(ctx, base + i); });
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto all = scan_all(rt, tree);
  EXPECT_EQ(all.size(), kThreads * (kPer / 2));
  for (std::size_t i = 1; i < all.size(); ++i)
    EXPECT_LT(all[i - 1].first, all[i].first);
  for (const auto& [k, v] : all) EXPECT_EQ(k & 1, 1u);
}

TEST(TxBTreeTest, ScanVersusPutKeepsSumInvariant) {
  // Writers move value between key pairs (sum-preserving); scanners must
  // never observe a partially applied transfer, sequential or parallel.
  Runtime rt;
  TxBTree tree;
  constexpr std::uint64_t kKeys = 256;
  constexpr std::uint64_t kUnit = 1000;
  atomically(rt, [&](TxCtx& ctx) {
    for (std::uint64_t k = 0; k < kKeys; ++k) tree.put(ctx, k, kUnit);
  });
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::thread writer([&] {
    std::mt19937_64 rng(7);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t a = rng() % kKeys;
      const std::uint64_t b = rng() % kKeys;
      if (a == b) continue;
      atomically(rt, [&](TxCtx& ctx) {
        std::uint64_t va = 0, vb = 0;
        ASSERT_TRUE(tree.get(ctx, a, va));
        ASSERT_TRUE(tree.get(ctx, b, vb));
        if (va == 0) return;
        tree.put(ctx, a, va - 1);
        tree.put(ctx, b, vb + 1);
      });
    }
  });
  std::thread scanner([&] {
    for (int i = 0; i < 200; ++i) {
      std::uint64_t sum = 0;
      atomically(rt, [&](TxCtx& ctx) {
        sum = 0;
        tree.scan(ctx, 0, kKeys,
                  [&](std::uint64_t, std::uint64_t v) { sum += v; });
      });
      if (sum != kKeys * kUnit) bad.fetch_add(1);
    }
    stop.store(true);
  });
  scanner.join();
  writer.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(TxBTreeTest, ParallelScanModesAgree) {
  // The same populated tree scanned under every scheduling mode must
  // produce the identical ordered result (scan fans out one future per
  // root subtree; the mode only changes where those futures run).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> reference;
  for (SchedulingMode mode :
       {SchedulingMode::kAlwaysInline, SchedulingMode::kAlwaysParallel,
        SchedulingMode::kAdaptive}) {
    Config cfg;
    cfg.scheduling = mode;
    cfg.pool_threads = 2;
    Runtime rt(cfg);
    TxBTree tree;
    constexpr std::uint64_t kN = 2000;
    for (std::uint64_t k = 0; k < kN; k += 100) {
      atomically(rt, [&](TxCtx& ctx) {
        for (std::uint64_t i = k; i < k + 100; ++i)
          tree.put(ctx, i * 2, i);
      });
    }
    const std::uint64_t scans0 = metric("core.btree.scans");
    const auto all = scan_all(rt, tree);
    EXPECT_GT(metric("core.btree.scans"), scans0);
    ASSERT_EQ(all.size(), kN);
    if (reference.empty()) {
      reference = all;
    } else {
      EXPECT_EQ(all, reference);
    }
  }
  // A multi-subtree scan recorded its fanout.
  const auto fan = histogram("core.btree.scan.fanout");
  EXPECT_GT(fan.first, 0u);
  EXPECT_GT(fan.second, fan.first);  // mean fanout > 1 somewhere
}

TEST(TxBTreeTest, AbortReclaimsAttemptAllocations) {
  Runtime rt;
  TxBTree tree;
  atomically(rt, [&](TxCtx& ctx) {
    for (std::uint64_t k = 0; k < 100; ++k) tree.put(ctx, k, k);
  });
  const std::uint64_t nodes0 = metric("core.btree.nodes_live");
  const std::uint64_t boxes0 = metric("core.btree.boxes_live");
  struct Cancel {};
  for (int round = 0; round < 5; ++round) {
    try {
      atomically(rt, [&](TxCtx& ctx) {
        // Buffers, splits, and new boxes — all attempt-private, all thrown
        // away by the user abort below.
        for (std::uint64_t k = 1000; k < 1000 + 3 * TxBTree::kLeafCap; ++k)
          tree.put(ctx, k, k);
        tree.erase(ctx, 5);
        throw Cancel{};
      });
      FAIL() << "expected Cancel to propagate";
    } catch (const Cancel&) {
    }
  }
  EXPECT_EQ(metric("core.btree.nodes_live"), nodes0);
  EXPECT_EQ(metric("core.btree.boxes_live"), boxes0);
  // And the aborted writes are invisible.
  atomically(rt, [&](TxCtx& ctx) {
    std::uint64_t v = 0;
    EXPECT_TRUE(tree.get(ctx, 5, v));
    EXPECT_FALSE(tree.get(ctx, 1000, v));
  });
}

TEST(TxBTreeTest, EraseMergesEmptyLeavesAndGcReclaimsBoxes) {
  Runtime rt;
  TxBTree tree;
  constexpr std::uint64_t kN = 10 * TxBTree::kLeafCap;
  atomically(rt, [&](TxCtx& ctx) {
    for (std::uint64_t k = 0; k < kN; ++k) tree.put(ctx, k, k);
  });
  const std::size_t boxes_full = tree.box_count();
  const std::uint64_t merges0 = metric("core.btree.merges");
  // Erase everything; leaves empty out and unlink from their parents.
  for (std::uint64_t k = 0; k < kN; ++k) {
    atomically(rt, [&](TxCtx& ctx) { tree.erase(ctx, k); });
  }
  EXPECT_GT(metric("core.btree.merges"), merges0);
  EXPECT_EQ(scan_all(rt, tree).size(), 0u);
  // Quiescent GC: no active snapshots, so every retired box's fence has
  // passed and its memory is reclaimable.
  const std::uint64_t gc0 = metric("core.btree.box_gc");
  tree.gc_retired_boxes(rt.env());
  EXPECT_GT(metric("core.btree.box_gc"), gc0);
  EXPECT_LT(tree.box_count(), boxes_full);
  // The tree still works after heavy structural churn.
  atomically(rt, [&](TxCtx& ctx) {
    for (std::uint64_t k = 0; k < 50; ++k) tree.put(ctx, k * 7, k);
  });
  EXPECT_EQ(scan_all(rt, tree).size(), 50u);
}

TEST(TxBTreeTest, ChaosScheduleOnBtreeFailpoints) {
  // Perturb the btree structural sites (plus the engine's validation and
  // commit sites) and hammer the tree from writers + scanners: every
  // invariant must hold and every atomically() call must terminate.
  Config cfg;
  cfg.pool_threads = 2;
  cfg.chaos.seed = 0xb7ee5ULL;
  cfg.chaos.add_prob("core.btree.split", fp::Action::kDelayUs, 0.5, 40);
  cfg.chaos.add_prob("core.btree.merge", fp::Action::kYield, 0.5);
  cfg.chaos.add_prob("core.btree.leaf.publish", fp::Action::kDelayUs, 0.4, 30);
  cfg.chaos.add_prob("core.btree.scan.subtree", fp::Action::kDelayUs, 0.4, 30);
  cfg.chaos.add("core.subtxn.validate", fp::Action::kFail, 9);
  cfg.chaos.add_prob("stm.commit.writeback", fp::Action::kDelayUs, 0.3, 30);
  Runtime rt(cfg);
  TxBTree tree;
  constexpr int kThreads = 3;
  constexpr std::uint64_t kPer = 150;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::uint64_t base = static_cast<std::uint64_t>(t) * 100000;
      for (std::uint64_t i = 0; i < kPer; ++i) {
        atomically(rt, [&](TxCtx& ctx) { tree.put(ctx, base + i, i); });
        if (i % 3 == 0) {
          atomically(rt, [&](TxCtx& ctx) { tree.erase(ctx, base + i); });
        }
      }
    });
  }
  std::thread scanner([&] {
    for (int i = 0; i < 60; ++i) {
      atomically(rt, [&](TxCtx& ctx) {
        std::uint64_t last = 0;
        bool first = true;
        tree.scan(ctx, 0, ~0ULL, [&](std::uint64_t k, std::uint64_t) {
          if (!first) {
            EXPECT_LT(last, k);
          }
          first = false;
          last = k;
        });
      });
    }
  });
  for (auto& th : threads) th.join();
  scanner.join();
  const auto all = scan_all(rt, tree);
  std::size_t expect = 0;
  for (std::uint64_t i = 0; i < kPer; ++i) expect += (i % 3 == 0) ? 0 : 1;
  EXPECT_EQ(all.size(), kThreads * expect);
}

}  // namespace
