// Cross-transaction future channels (paper Fig. 2) — including the failure
// semantics: what evaluators observe when the producing transaction
// restarts or aborts before the future commits.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/api.hpp"

namespace {

using txf::core::atomically;
using txf::core::Config;
using txf::core::Runtime;
using txf::core::StaleFuture;
using txf::core::TxCtx;
using txf::core::TxFuture;
using txf::stm::VBox;

TEST(Channel, HandleOutlivesTransaction) {
  Runtime rt(Config{.pool_threads = 2});
  TxFuture<int> handle;
  atomically(rt, [&](TxCtx& ctx) {
    handle = ctx.submit([](TxCtx&) { return 5; });
    handle.get(ctx);
  });
  EXPECT_EQ(handle.get(), 5);
  EXPECT_EQ(handle.get(), 5);  // repeatable
}

TEST(Channel, ManyConsumersOneFuture) {
  Runtime rt(Config{.pool_threads = 2});
  VBox<int> data(21);
  TxFuture<int> shared;
  std::atomic<bool> published{false};

  std::vector<std::thread> consumers;
  std::atomic<int> sum{0};
  for (int i = 0; i < 4; ++i) {
    consumers.emplace_back([&] {
      while (!published.load(std::memory_order_acquire))
        std::this_thread::yield();
      sum.fetch_add(shared.get());
    });
  }
  atomically(rt, [&](TxCtx& ctx) {
    shared = ctx.submit([&](TxCtx& c) { return data.get(c) * 2; });
    published.store(true, std::memory_order_release);
    shared.get(ctx);
  });
  for (auto& c : consumers) c.join();
  EXPECT_EQ(sum.load(), 4 * 42);
}

TEST(Channel, InvalidHandleThrowsLogicError) {
  TxFuture<int> empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_THROW(empty.get(), std::logic_error);
  EXPECT_THROW((void)empty.ready(), std::logic_error);
}

TEST(Channel, AbandonedFutureReportsStale) {
  // The producing transaction aborts (user exception) before the future's
  // handle ever publishes a value visible outside: an external evaluator
  // must get StaleFuture, not a hang.
  Runtime rt(Config{.pool_threads = 2});
  TxFuture<int> leaked;
  std::atomic<bool> got_handle{false};
  std::atomic<int> verdict{0};  // 1 = stale, 2 = value

  std::thread consumer([&] {
    while (!got_handle.load(std::memory_order_acquire))
      std::this_thread::yield();
    try {
      (void)leaked.get();
      verdict.store(2);
    } catch (const StaleFuture&) {
      verdict.store(1);
    }
  });

  std::atomic<bool> blocker{true};
  try {
    atomically(rt, [&](TxCtx& ctx) {
      leaked = ctx.submit([&](TxCtx& c) {
        // Keep the future un-committed until the transaction dies; poll so
        // the abort can cancel this task (abort_tree drains it).
        while (blocker.load(std::memory_order_acquire)) {
          c.poll();
          std::this_thread::yield();
        }
        return 1;
      });
      got_handle.store(true, std::memory_order_release);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      throw std::runtime_error("producer dies");
    });
  } catch (const std::runtime_error&) {
  }
  blocker.store(false, std::memory_order_release);
  consumer.join();
  EXPECT_EQ(verdict.load(), 1);  // stale, not a hang and not a value
}

TEST(Channel, ValueSurvivesProducerRetry) {
  // If the producer's top-level commit conflicts and the body re-runs, the
  // re-executed future publishes again; an external consumer that waited
  // gets a (possibly newer) committed value, never garbage.
  Runtime rt(Config{.pool_threads = 2});
  VBox<int> src(1);
  VBox<int> out(0);
  std::atomic<bool> first_pass{true};
  std::atomic<bool> reader_ready{false};
  TxFuture<int> chan;

  std::thread noise;
  atomically(rt, [&](TxCtx& ctx) {
    chan = ctx.submit([&](TxCtx& c) { return src.get(c); });
    reader_ready.store(true, std::memory_order_release);
    const int v = chan.get(ctx);
    if (first_pass.exchange(false)) {
      // Force a top-level conflict: bump src from another transaction
      // after we've read it.
      noise = std::thread([&] {
        atomically(rt, [&](TxCtx& c2) { src.put(c2, 2); });
      });
      noise.join();
    }
    out.put(ctx, v + 100);
  });
  EXPECT_TRUE(chan.ready());
  const int final_out = out.peek_committed();
  EXPECT_TRUE(final_out == 101 || final_out == 102) << final_out;
  // The channel's committed value matches what the committed run read.
  EXPECT_EQ(chan.get() + 100, final_out);
}

}  // namespace
