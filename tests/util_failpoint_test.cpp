// Failpoint framework unit tests: site registration, zero-cost disabled
// path, every-N determinism, seeded replayability (same seed => same fire
// sequence), action bit semantics, and disarm semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "util/failpoint.hpp"

namespace {

using txf::util::fp::Action;
using txf::util::fp::ChaosPlan;
using txf::util::fp::Controller;
using txf::util::fp::FailPoint;
using txf::util::fp::kAbortTreeBit;
using txf::util::fp::kFailBit;

// Each TXF_FP_* expansion owns a function-local static site, so every test
// uses its own unique site name to stay independent of suite ordering.

TEST(FailPointTest, DisabledSitesNeverFireAndSkipEvaluation) {
  Controller::instance().disarm();
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(TXF_FP_MASK("test.fp.disabled"), 0u);
  FailPoint* site = Controller::instance().find("test.fp.disabled");
  ASSERT_NE(site, nullptr);
  // The disarmed fast path returns before evaluate(), so even the passage
  // counter stays untouched — the site is genuinely zero-cost when off.
  EXPECT_EQ(site->passes(), 0u);
  EXPECT_EQ(site->fires(), 0u);
}

TEST(FailPointTest, SitesRegisterOnFirstPassage) {
  (void)TXF_FP_MASK("test.fp.registered");
  EXPECT_NE(Controller::instance().find("test.fp.registered"), nullptr);
  const auto names = Controller::instance().site_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "test.fp.registered"),
            names.end());
}

TEST(FailPointTest, EveryNthPassageFiresExactly) {
  ChaosPlan plan;
  plan.seed = 42;
  plan.add("test.fp.everyn", Action::kFail, 3);
  Controller::instance().arm(plan);
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i)
    fired.push_back(TXF_FP_FIRES("test.fp.everyn") != 0);
  FailPoint* site = Controller::instance().find("test.fp.everyn");
  ASSERT_NE(site, nullptr);
  EXPECT_EQ(site->passes(), 9u);
  EXPECT_EQ(site->fires(), 3u);
  Controller::instance().disarm();
  const std::vector<bool> expect = {false, false, true, false, false,
                                    true,  false, false, true};
  EXPECT_EQ(fired, expect);
}

TEST(FailPointTest, SameSeedReplaysIdenticalFireSequence) {
  ChaosPlan plan;
  plan.seed = 0xfeedbeefULL;
  plan.add_prob("test.fp.prob", Action::kFail, 0.5);

  const auto record = [] {
    std::vector<bool> seq;
    for (int i = 0; i < 256; ++i)
      seq.push_back(TXF_FP_FIRES("test.fp.prob") != 0);
    return seq;
  };

  Controller::instance().arm(plan);
  const auto run1 = record();
  Controller::instance().arm(plan);  // re-arm resets the per-site stream
  const auto run2 = record();

  plan.seed = 0x12345678ULL;
  Controller::instance().arm(plan);
  const auto run3 = record();
  Controller::instance().disarm();

  EXPECT_EQ(run1, run2) << "same seed must replay the same decisions";
  EXPECT_NE(run1, run3) << "different seed must diverge";
  // Sanity: a 0.5-probability rule over 256 draws fires some but not all.
  const auto fired = std::count(run1.begin(), run1.end(), true);
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 256);
}

TEST(FailPointTest, ActionBitsReachTheCaller) {
  ChaosPlan plan;
  plan.add("test.fp.aborttree", Action::kAbortTree, 1);
  plan.add("test.fp.yield", Action::kYield, 1);
  plan.add("test.fp.delay", Action::kDelayUs, 1, 5);
  Controller::instance().arm(plan);
  EXPECT_EQ(TXF_FP_MASK("test.fp.aborttree"), kAbortTreeBit);
  // Perturbation actions are applied internally and never surface a bit.
  EXPECT_EQ(TXF_FP_MASK("test.fp.yield"), 0u);
  EXPECT_EQ(TXF_FP_MASK("test.fp.delay"), 0u);
  FailPoint* yield_site = Controller::instance().find("test.fp.yield");
  ASSERT_NE(yield_site, nullptr);
  EXPECT_EQ(yield_site->fires(), 1u);
  Controller::instance().disarm();
}

TEST(FailPointTest, MultipleRulesOnOneSiteCompose) {
  ChaosPlan plan;
  plan.add("test.fp.multi", Action::kFail, 2);
  plan.add("test.fp.multi", Action::kAbortTree, 3);
  Controller::instance().arm(plan);
  std::vector<unsigned> masks;
  for (int i = 0; i < 6; ++i) masks.push_back(TXF_FP_MASK("test.fp.multi"));
  Controller::instance().disarm();
  const std::vector<unsigned> expect = {
      0, kFailBit, kAbortTreeBit, kFailBit, 0, kFailBit | kAbortTreeBit};
  EXPECT_EQ(masks, expect);
}

TEST(FailPointTest, DisarmRestoresDisabledPath) {
  ChaosPlan plan;
  plan.add("test.fp.disarm", Action::kFail, 1);
  Controller::instance().arm(plan);
  EXPECT_TRUE(TXF_FP_FIRES("test.fp.disarm"));
  // Grab the site now: the loop below is a second lexical expansion of the
  // same name, and find() returns the most recently registered match.
  FailPoint* site = Controller::instance().find("test.fp.disarm");
  ASSERT_NE(site, nullptr);
  EXPECT_EQ(site->fires(), 1u);
  Controller::instance().disarm();
  EXPECT_FALSE(txf::util::fp::enabled());
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(TXF_FP_MASK("test.fp.disarm"), 0u);
  EXPECT_EQ(site->fires(), 1u);  // frozen at the pre-disarm count
}

TEST(FailPointTest, ArmingIgnoresRulesForUnknownSites) {
  ChaosPlan plan;
  plan.add("test.fp.never-executed-site", Action::kFail, 1);
  plan.add("test.fp.known", Action::kFail, 1);
  Controller::instance().arm(plan);  // must not crash or misroute
  EXPECT_TRUE(TXF_FP_FIRES("test.fp.known"));
  EXPECT_GE(Controller::instance().total_fires(), 1u);
  Controller::instance().disarm();
}

}  // namespace
