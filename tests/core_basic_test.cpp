// Basic transactional-future behaviour: flat trees, submit/get, strong
// ordering of a single future/continuation pair, nested submission.
#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "core/api.hpp"

namespace {

using txf::core::atomically;
using txf::core::Config;
using txf::core::Runtime;
using txf::core::TxCtx;
using txf::stm::VBox;

TEST(CoreFlat, ReadAndCommit) {
  Runtime rt;
  VBox<int> x(7);
  const int v = atomically(rt, [&](TxCtx& ctx) { return x.get(ctx); });
  EXPECT_EQ(v, 7);
  EXPECT_EQ(rt.stats().top_commits.load(), 1u);
}

TEST(CoreFlat, WriteCommitsToPermanent) {
  Runtime rt;
  VBox<int> x(1);
  atomically(rt, [&](TxCtx& ctx) { x.put(ctx, 42); });
  EXPECT_EQ(x.peek_committed(), 42);
}

TEST(CoreFlat, RootReadsOwnWrites) {
  Runtime rt;
  VBox<int> x(1);
  const int v = atomically(rt, [&](TxCtx& ctx) {
    x.put(ctx, 10);
    return x.get(ctx);
  });
  EXPECT_EQ(v, 10);
}

TEST(CoreFlat, VoidBodyWorks) {
  Runtime rt;
  VBox<int> x(0);
  atomically(rt, [&](TxCtx& ctx) { x.put(ctx, 5); });
  EXPECT_EQ(x.peek_committed(), 5);
}

TEST(CoreFuture, FutureReturnsValue) {
  Runtime rt;
  VBox<int> x(21);
  const int v = atomically(rt, [&](TxCtx& ctx) {
    auto f = ctx.submit([&](TxCtx& inner) { return x.get(inner) * 2; });
    return f.get(ctx);
  });
  EXPECT_EQ(v, 42);
  EXPECT_EQ(rt.stats().futures_submitted.load(), 1u);
}

TEST(CoreFuture, FutureSeesParentPrefixWrites) {
  Runtime rt;
  VBox<int> x(0);
  const int v = atomically(rt, [&](TxCtx& ctx) {
    x.put(ctx, 9);  // root prefix write, before the submit
    auto f = ctx.submit([&](TxCtx& inner) { return x.get(inner); });
    return f.get(ctx);
  });
  EXPECT_EQ(v, 9);
}

TEST(CoreFuture, ContinuationSeesFutureWriteAfterEvaluation) {
  Runtime rt;
  VBox<int> x(0);
  const int v = atomically(rt, [&](TxCtx& ctx) {
    auto f = ctx.submit([&](TxCtx& inner) {
      x.put(inner, 5);
      return 0;
    });
    f.get(ctx);  // future committed: its write is now visible here...
    return x.get(ctx);
  });
  // ...unless this continuation started before the future committed and
  // therefore ran against the old snapshot — in which case it must have
  // been re-executed. Either way the final answer is the sequential one.
  EXPECT_EQ(v, 5);
}

TEST(CoreFuture, FutureWritePropagatesToTopLevelCommit) {
  Runtime rt;
  VBox<int> x(0);
  atomically(rt, [&](TxCtx& ctx) {
    auto f = ctx.submit([&](TxCtx& inner) {
      x.put(inner, 123);
      return 0;
    });
    f.get(ctx);
  });
  EXPECT_EQ(x.peek_committed(), 123);
}

TEST(CoreFuture, ContinuationWriteWins) {
  // Sequential semantics: continuation code runs after the future, so its
  // write to the same box is the newer one.
  Runtime rt;
  VBox<int> x(0);
  atomically(rt, [&](TxCtx& ctx) {
    auto f = ctx.submit([&](TxCtx& inner) {
      x.put(inner, 1);
      return 0;
    });
    x.put(ctx, 2);  // continuation write — serialized after the future's
    f.get(ctx);
  });
  EXPECT_EQ(x.peek_committed(), 2);
}

TEST(CoreFuture, MultipleFuturesAccumulate) {
  Runtime rt;
  constexpr int kN = 8;
  VBox<long> sum(0);
  const long total = atomically(rt, [&](TxCtx& ctx) {
    std::vector<txf::core::TxFuture<long>> futs;
    for (int i = 1; i <= kN; ++i) {
      futs.push_back(ctx.submit([i](TxCtx&) { return static_cast<long>(i); }));
    }
    long acc = 0;
    for (auto& f : futs) acc += f.get(ctx);
    return acc;
  });
  EXPECT_EQ(total, kN * (kN + 1) / 2);
}

TEST(CoreFuture, NestedFutureInsideFuture) {
  Runtime rt;
  VBox<int> x(1);
  const int v = atomically(rt, [&](TxCtx& ctx) {
    auto outer = ctx.submit([&](TxCtx& mid) {
      auto inner = mid.submit([&](TxCtx& in) { return x.get(in) + 10; });
      return inner.get(mid) + 100;
    });
    return outer.get(ctx);
  });
  EXPECT_EQ(v, 111);
}

TEST(CoreFuture, VoidFuture) {
  Runtime rt;
  VBox<int> x(0);
  atomically(rt, [&](TxCtx& ctx) {
    auto f = ctx.submit([&](TxCtx& inner) { x.put(inner, 3); });
    f.get(ctx);
  });
  EXPECT_EQ(x.peek_committed(), 3);
}

TEST(CoreFuture, GetOutsideTransactionAfterCommit) {
  Runtime rt;
  txf::core::TxFuture<int> handle;
  atomically(rt, [&](TxCtx& ctx) {
    handle = ctx.submit([](TxCtx&) { return 77; });
    handle.get(ctx);
  });
  // Fig. 2-style: the handle remains usable outside the transaction.
  EXPECT_TRUE(handle.valid());
  EXPECT_EQ(handle.get(), 77);
  EXPECT_TRUE(handle.ready());
}

TEST(CoreFuture, UserExceptionPropagates) {
  Runtime rt;
  VBox<int> x(0);
  EXPECT_THROW(atomically(rt, [&](TxCtx& ctx) {
                 x.put(ctx, 1);
                 throw std::runtime_error("boom");
               }),
               std::runtime_error);
  // The aborted transaction must not have published its write.
  EXPECT_EQ(x.peek_committed(), 0);
}

TEST(CoreFuture, FutureWithoutEvaluationStillCommits) {
  // Evaluating is optional; the tree must still wait for the future before
  // the top-level commit.
  Runtime rt;
  VBox<int> x(0);
  atomically(rt, [&](TxCtx& ctx) {
    ctx.submit([&](TxCtx& inner) {
      x.put(inner, 8);
      return 0;
    });
  });
  EXPECT_EQ(x.peek_committed(), 8);
}

}  // namespace
