// Unit tests for the service harness's admission control: token-bucket
// gate semantics, the class-shedding priority order, and the overload
// controller's escalate/hold/relax policy (driven tick-by-tick with
// synthetic signals — the controller is deliberately threadless).
#include <gtest/gtest.h>

#include "server/admission.hpp"

namespace {

using txf::server::AdmissionConfig;
using txf::server::AdmissionGate;
using txf::server::kRequestClassCount;
using txf::server::OverloadController;
using txf::server::OverloadSignals;
using txf::server::RequestClass;

constexpr std::uint64_t kMs = 1'000'000;

TEST(AdmissionGate, DisabledGateAdmitsEverything) {
  AdmissionConfig cfg;
  cfg.enabled = false;
  AdmissionGate gate(cfg);
  gate.set_shed_level(5);  // even a full shed mask is ignored when disabled
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(gate.admit(RequestClass::kMulti, 1));
  }
}

TEST(AdmissionGate, TokenBucketPacesAdmissionToTheRate) {
  AdmissionConfig cfg;
  cfg.initial_rate = 1000.0;  // 1 token per ms
  AdmissionGate gate(cfg);
  EXPECT_TRUE(gate.admit(RequestClass::kRead, 1));  // first arrival is free
  // Immediately after, the bucket is empty.
  EXPECT_FALSE(gate.admit(RequestClass::kRead, 2));
  // One millisecond later exactly one token has accrued.
  EXPECT_TRUE(gate.admit(RequestClass::kRead, 1 + kMs));
  EXPECT_FALSE(gate.admit(RequestClass::kRead, 1 + kMs));
  // Over a 100 ms window, ~100 of 1000 offered arrivals get through.
  std::uint64_t admitted = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t t = 1 + kMs + static_cast<std::uint64_t>(i) * 100'000;
    if (gate.admit(RequestClass::kRead, t)) ++admitted;
  }
  EXPECT_GE(admitted, 95u);
  EXPECT_LE(admitted, 105u);
}

TEST(AdmissionGate, BurstIsCapped) {
  AdmissionConfig cfg;
  cfg.initial_rate = 1000.0;
  cfg.burst_s = 0.05;  // at most 50 tokens bank up
  AdmissionGate gate(cfg);
  EXPECT_TRUE(gate.admit(RequestClass::kRead, 1));
  // A long idle gap banks only burst_s worth of tokens, not ten seconds.
  std::uint64_t admitted = 0;
  for (int i = 0; i < 500; ++i) {
    if (gate.admit(RequestClass::kRead, 10'000 * kMs + i)) ++admitted;
  }
  EXPECT_LE(admitted, 51u);
  EXPECT_GE(admitted, 40u);
}

TEST(AdmissionGate, ShedOrderDropsLowestPriorityClassFirst) {
  // Level L sheds the L highest-numbered classes: scans first, reads last.
  EXPECT_FALSE(AdmissionGate::class_shed_at(RequestClass::kScan, 0));
  EXPECT_TRUE(AdmissionGate::class_shed_at(RequestClass::kScan, 1));
  EXPECT_FALSE(AdmissionGate::class_shed_at(RequestClass::kMulti, 1));
  EXPECT_TRUE(AdmissionGate::class_shed_at(RequestClass::kMulti, 2));
  EXPECT_FALSE(AdmissionGate::class_shed_at(RequestClass::kRmw, 2));
  EXPECT_TRUE(AdmissionGate::class_shed_at(RequestClass::kRmw, 3));
  EXPECT_FALSE(AdmissionGate::class_shed_at(RequestClass::kWrite, 3));
  EXPECT_TRUE(AdmissionGate::class_shed_at(RequestClass::kWrite, 4));
  EXPECT_FALSE(AdmissionGate::class_shed_at(RequestClass::kRead, 4));
  EXPECT_TRUE(AdmissionGate::class_shed_at(RequestClass::kRead, 5));
}

TEST(AdmissionGate, ShedClassRejectedEvenWithTokens) {
  AdmissionConfig cfg;
  cfg.initial_rate = 1e6;
  AdmissionGate gate(cfg);
  gate.set_shed_level(2);
  EXPECT_FALSE(gate.admit(RequestClass::kScan, 1));
  EXPECT_FALSE(gate.admit(RequestClass::kMulti, 1));
  EXPECT_TRUE(gate.admit(RequestClass::kRmw, 1));
  EXPECT_TRUE(gate.admit(RequestClass::kRead, 2001));  // 2 us = 2 tokens
}

// ---- controller policy ----------------------------------------------------

AdmissionConfig controller_config() {
  AdmissionConfig cfg;
  cfg.initial_rate = 10'000.0;
  cfg.min_rate = 100.0;
  cfg.max_rate = 20'000.0;
  cfg.slo_p99_ns = 100 * kMs;
  cfg.escalate_after = 2;
  cfg.relax_after = 3;
  return cfg;
}

OverloadSignals healthy_window() {
  OverloadSignals s;
  s.window_p99_ns = 10 * kMs;  // far inside the SLO
  s.completed = 500;
  s.window_s = 0.1;
  s.attempts = 500;
  return s;
}

OverloadSignals overloaded_window() {
  OverloadSignals s;
  s.window_p99_ns = 400 * kMs;  // 4x the SLO
  s.completed = 200;
  s.window_s = 0.1;
  s.attempts = 400;
  s.conflict_aborts = 150;
  s.backlog = 1000;
  return s;
}

TEST(OverloadController, EscalatesShedLevelAfterSustainedOverload) {
  const AdmissionConfig cfg = controller_config();
  AdmissionGate gate(cfg);
  OverloadController ctl(cfg, gate);
  EXPECT_TRUE(ctl.tick(overloaded_window()));
  EXPECT_EQ(gate.shed_level(), 0u);  // one hot tick is not yet a regime
  EXPECT_TRUE(ctl.tick(overloaded_window()));
  EXPECT_EQ(gate.shed_level(), 1u);
  ctl.tick(overloaded_window());
  ctl.tick(overloaded_window());
  EXPECT_EQ(gate.shed_level(), 2u);
  EXPECT_EQ(ctl.overload_ticks(), 4u);
}

TEST(OverloadController, ClampsRateTowardObservedServiceRate) {
  const AdmissionConfig cfg = controller_config();
  AdmissionGate gate(cfg);
  OverloadController ctl(cfg, gate);
  // The window completed 200 requests in 0.1 s => service rate 2000/s; one
  // overloaded tick must clamp the 10k token rate to at most 0.9 * 2000.
  ctl.tick(overloaded_window());
  EXPECT_LE(gate.rate(), 1800.0 + 1.0);
  EXPECT_GE(gate.rate(), cfg.min_rate);
}

TEST(OverloadController, RateNeverDropsBelowFloor) {
  const AdmissionConfig cfg = controller_config();
  AdmissionGate gate(cfg);
  OverloadController ctl(cfg, gate);
  OverloadSignals stall = overloaded_window();
  stall.completed = 0;  // full stall: no service-rate evidence
  for (int i = 0; i < 50; ++i) ctl.tick(stall);
  EXPECT_GE(gate.rate(), cfg.min_rate);
}

TEST(OverloadController, RelaxesShedLevelAndProbesRateAfterRecovery) {
  const AdmissionConfig cfg = controller_config();
  AdmissionGate gate(cfg);
  OverloadController ctl(cfg, gate);
  ctl.tick(overloaded_window());
  ctl.tick(overloaded_window());
  ASSERT_EQ(gate.shed_level(), 1u);
  const double depressed = gate.rate();
  // relax_after consecutive healthy windows lower the level one step and
  // grow the rate multiplicatively.
  ctl.tick(healthy_window());
  ctl.tick(healthy_window());
  EXPECT_EQ(gate.shed_level(), 1u);  // not yet
  ctl.tick(healthy_window());
  EXPECT_EQ(gate.shed_level(), 0u);
  EXPECT_GT(gate.rate(), depressed);
  EXPECT_GT(ctl.healthy_ticks(), 0u);
}

TEST(OverloadController, BorderlineWindowHoldsTheLine) {
  const AdmissionConfig cfg = controller_config();
  AdmissionGate gate(cfg);
  OverloadController ctl(cfg, gate);
  ctl.tick(overloaded_window());
  ctl.tick(overloaded_window());
  ASSERT_EQ(gate.shed_level(), 1u);
  const double rate = gate.rate();
  // p99 back under the SLO but not under half of it: neither overloaded
  // nor provably recovered — rate and shed level must not move.
  OverloadSignals borderline = healthy_window();
  borderline.window_p99_ns = 80 * kMs;
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(ctl.tick(borderline));
  EXPECT_EQ(gate.shed_level(), 1u);
  EXPECT_DOUBLE_EQ(gate.rate(), rate);
}

TEST(OverloadController, TaxonomyAloneCanDeclareOverload) {
  const AdmissionConfig cfg = controller_config();
  AdmissionGate gate(cfg);
  OverloadController ctl(cfg, gate);
  // p99 fine, queue fine — but more than half of all attempts are dying of
  // conflicts: abort-retry livelock territory, the taxonomy's overload.
  OverloadSignals s = healthy_window();
  s.attempts = 1000;
  s.conflict_aborts = 550;
  s.deadline_aborts = 60;
  EXPECT_TRUE(ctl.tick(s));
}

}  // namespace
