// Unit tests for StreamingStats (Welford + parallel merge).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/stats.hpp"
#include "util/xoshiro.hpp"

namespace {

using txf::util::StreamingStats;

TEST(StreamingStats, EmptyIsZeroCount) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(StreamingStats, SingleValue) {
  StreamingStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(StreamingStats, KnownMoments) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, MergeMatchesSequential) {
  txf::util::Xoshiro256 rng(31);
  StreamingStats all, a, b;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double() * 100.0;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStats, MergeWithEmptyIsIdentity) {
  StreamingStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), mean);

  StreamingStats b;
  b.merge(a);  // merge into empty
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

}  // namespace
