// Tests for the work-stealing thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>

#include "sched/thread_pool.hpp"

namespace {

using txf::sched::Task;
using txf::sched::ThreadPool;

TEST(Task, MoveOnlyCallableWorks) {
  auto p = std::make_unique<int>(41);
  Task t([q = std::move(p)] { ++*q; });
  EXPECT_TRUE(static_cast<bool>(t));
  t();  // must not crash; the unique_ptr is owned by the task
}

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  constexpr int kTasks = 1000;
  std::promise<void> all_done;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&] {
      if (count.fetch_add(1) + 1 == kTasks) all_done.set_value();
    });
  }
  all_done.get_future().wait();
  EXPECT_EQ(count.load(), kTasks);
}

TEST(ThreadPool, NestedSubmissionFromWorkers) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  std::promise<void> done;
  pool.submit([&] {
    for (int i = 0; i < 100; ++i) {
      pool.submit([&] {
        if (count.fetch_add(1) + 1 == 100) done.set_value();
      });
    }
  });
  done.get_future().wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, TryRunOneHelpsFromExternalThread) {
  ThreadPool pool(1);
  // Occupy the single worker so the queue backs up.
  std::promise<void> release;
  auto release_future = release.get_future().share();
  std::atomic<bool> worker_busy{false};
  pool.submit([&, release_future] {
    worker_busy = true;
    release_future.wait();
  });
  while (!worker_busy.load()) std::this_thread::yield();

  std::atomic<int> ran{0};
  pool.submit([&] { ran.fetch_add(1); });

  // The external thread can steal and run the pending task itself.
  while (ran.load() == 0) {
    pool.try_run_one();
  }
  EXPECT_EQ(ran.load(), 1);
  release.set_value();
}

TEST(ThreadPool, TryRunOneReturnsFalseWhenIdle) {
  ThreadPool pool(2);
  // Give workers a moment to drain anything.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(pool.try_run_one());
}

TEST(ThreadPool, WorkerCountDefaultsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ThreadPool, DestructionWithPendingTasksDoesNotLeakOrCrash) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    std::promise<void> release;
    auto rf = release.get_future().share();
    std::atomic<bool> busy{false};
    pool.submit([&, rf] {
      busy = true;
      rf.wait();
    });
    while (!busy.load()) std::this_thread::yield();
    for (int i = 0; i < 50; ++i) pool.submit([&] { ran.fetch_add(1); });
    release.set_value();
    // Pool destructor joins; some tasks may run, the rest are destroyed.
  }
  EXPECT_LE(ran.load(), 50);
}

TEST(ThreadPool, ManyProducersManyTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i)
        pool.submit([&] { count.fetch_add(1); });
    });
  }
  for (auto& t : producers) t.join();
  while (count.load() < kProducers * kPerProducer) {
    pool.try_run_one();
  }
  EXPECT_EQ(count.load(), kProducers * kPerProducer);
}

}  // namespace
