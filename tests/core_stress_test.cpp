// Concurrency stress and property tests for transaction trees: invariants
// under many concurrent trees, randomized tree shapes versus a sequential
// oracle (parameterized sweeps), opacity with read-only observers.
#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <thread>
#include <vector>

#include "core/api.hpp"
#include "util/xoshiro.hpp"

namespace {

using txf::core::atomically;
using txf::core::Config;
using txf::core::Runtime;
using txf::core::TxCtx;
using txf::core::TxFuture;
using txf::core::WriteMode;
using txf::stm::VBox;

TEST(CoreStress, CounterWithFuturesUnderConcurrency) {
  Runtime rt(Config{.pool_threads = 2});
  VBox<long> counter(0);
  constexpr int kThreads = 3;
  constexpr int kIter = 120;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIter; ++i) {
        atomically(rt, [&](TxCtx& ctx) {
          auto f = ctx.submit(
              [&](TxCtx& c) { return counter.get(c) + 1; });
          counter.put(ctx, f.get(ctx));
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.peek_committed(), static_cast<long>(kThreads) * kIter);
}

TEST(CoreStress, BankTransferInvariantWithFutures) {
  Runtime rt(Config{.pool_threads = 2});
  constexpr int kAccounts = 10;
  constexpr long kInitial = 1000;
  std::deque<VBox<long>> accounts;
  for (int i = 0; i < kAccounts; ++i) accounts.emplace_back(kInitial);

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::thread auditor([&] {
    while (!stop.load()) {
      const long total = atomically(rt, [&](TxCtx& ctx) {
        // Audit with two parallel futures summing halves of the accounts.
        auto lo = ctx.submit([&](TxCtx& c) {
          long s = 0;
          for (int i = 0; i < kAccounts / 2; ++i) s += accounts[i].get(c);
          return s;
        });
        long hi = 0;
        for (int i = kAccounts / 2; i < kAccounts; ++i)
          hi += accounts[i].get(ctx);
        return lo.get(ctx) + hi;
      });
      if (total != kAccounts * kInitial) violations.fetch_add(1);
    }
  });

  std::vector<std::thread> movers;
  for (int m = 0; m < 2; ++m) {
    movers.emplace_back([&, m] {
      txf::util::Xoshiro256 rng(7 + m);
      for (int k = 0; k < 400; ++k) {
        const auto from = rng.next_bounded(kAccounts);
        const auto to = rng.next_bounded(kAccounts);
        if (from == to) continue;
        atomically(rt, [&](TxCtx& ctx) {
          const long amount = 1 + static_cast<long>(k % 7);
          accounts[from].put(ctx, accounts[from].get(ctx) - amount);
          accounts[to].put(ctx, accounts[to].get(ctx) + amount);
        });
      }
    });
  }
  for (auto& t : movers) t.join();
  stop.store(true);
  auditor.join();

  EXPECT_EQ(violations.load(), 0);
  long total = 0;
  for (auto& a : accounts) total += a.peek_committed();
  EXPECT_EQ(total, kAccounts * kInitial);
}

// ---------------------------------------------------------------------
// Property sweep: random programs with nested futures must produce exactly
// the state the sequential oracle produces, across write modes and seeds.
// ---------------------------------------------------------------------

struct SweepParam {
  std::uint64_t seed;
  WriteMode mode;
};

class RandomTreeProperty : public ::testing::TestWithParam<SweepParam> {};

// A small deterministic "program" built from the rng: a sequence of ops
// over kBoxes boxes with probabilistic future spawns (depth-limited).
constexpr int kBoxes = 8;

void run_ops(TxCtx& ctx, std::deque<VBox<long>>& boxes,
             txf::util::Xoshiro256 rng, int depth, int ops) {
  std::vector<TxFuture<long>> pending;
  for (int i = 0; i < ops; ++i) {
    const auto choice = rng.next_bounded(10);
    const auto b1 = rng.next_bounded(kBoxes);
    const auto b2 = rng.next_bounded(kBoxes);
    if (choice < 4) {
      boxes[b1].put(ctx, boxes[b2].get(ctx) + static_cast<long>(i) + 1);
    } else if (choice < 7) {
      boxes[b1].put(ctx, boxes[b1].get(ctx) * 3 + 1);
    } else if (depth < 2) {
      // Spawn a future running a smaller random program.
      const std::uint64_t sub_seed = rng.next();
      pending.push_back(ctx.submit([&boxes, sub_seed, depth](TxCtx& c) {
        txf::util::Xoshiro256 sub_rng(sub_seed);
        run_ops(c, boxes, sub_rng, depth + 1, 3);
        return 0L;
      }));
    } else {
      boxes[b1].put(ctx, boxes[b1].get(ctx) - 1);
    }
  }
  for (auto& f : pending) f.get(ctx);
}

// Sequential oracle: same program, futures replaced by inline calls. We get
// it by running the engine in serial mode, which by construction executes
// futures synchronously at their submit points.
TEST_P(RandomTreeProperty, MatchesSequentialOracle) {
  const SweepParam param = GetParam();

  auto run = [&](bool serial) {
    Config cfg;
    cfg.pool_threads = 2;
    cfg.write_mode = param.mode;
    Runtime rt(cfg);
    std::deque<VBox<long>> boxes;
    for (int i = 0; i < kBoxes; ++i) boxes.emplace_back(100 + i);
    atomically(rt, [&](TxCtx& ctx) {
      if (serial) ctx.tree().set_serial();
      txf::util::Xoshiro256 rng(param.seed);
      run_ops(ctx, boxes, rng, 0, 10);
    });
    std::vector<long> out;
    for (auto& b : boxes) out.push_back(b.peek_committed());
    return out;
  };

  const std::vector<long> parallel = run(false);
  const std::vector<long> sequential = run(true);
  EXPECT_EQ(parallel, sequential) << "seed=" << param.seed;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomTreeProperty,
    ::testing::Values(
        SweepParam{1, WriteMode::kEager}, SweepParam{2, WriteMode::kEager},
        SweepParam{3, WriteMode::kEager}, SweepParam{4, WriteMode::kEager},
        SweepParam{5, WriteMode::kEager}, SweepParam{6, WriteMode::kEager},
        SweepParam{7, WriteMode::kEager}, SweepParam{8, WriteMode::kEager},
        SweepParam{1, WriteMode::kLazy}, SweepParam{2, WriteMode::kLazy},
        SweepParam{3, WriteMode::kLazy}, SweepParam{4, WriteMode::kLazy},
        SweepParam{5, WriteMode::kLazy}, SweepParam{6, WriteMode::kLazy},
        SweepParam{7, WriteMode::kLazy}, SweepParam{8, WriteMode::kLazy}));

TEST(CoreStress, ManyConcurrentTreesDisjointData) {
  // Scalability smoke: disjoint working sets never conflict.
  Runtime rt(Config{.pool_threads = 2});
  rt.stats().reset();
  constexpr int kThreads = 4;
  std::deque<VBox<long>> boxes;
  for (int i = 0; i < kThreads; ++i) boxes.emplace_back(0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        atomically(rt, [&](TxCtx& ctx) {
          auto f = ctx.submit([&, t](TxCtx& c) {
            boxes[t].put(c, boxes[t].get(c) + 1);
            return 0;
          });
          f.get(ctx);
          boxes[t].put(ctx, boxes[t].get(ctx) + 1);
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(boxes[t].peek_committed(), 100);
  EXPECT_EQ(rt.stats().top_aborts.load(), 0u);
  EXPECT_EQ(rt.stats().fallback_restarts.load(), 0u);
}

}  // namespace
