// Integration tests for the long-lived service harness (Server::run):
// steady load, chaos soak, overload shedding, the no-shed ablation, and
// the watchdog. Runs are kept to a couple of seconds each; the minutes-
// long soak lives in CI's soak-smoke job and scripts/bench_server.sh.
#include <gtest/gtest.h>

#include "server/server.hpp"

namespace {

using txf::server::Report;
using txf::server::RequestClass;
using txf::server::Server;
using txf::server::ServerConfig;

ServerConfig base_config() {
  ServerConfig cfg;
  cfg.load.keyspace = 4096;
  cfg.load.seed = 1234;
  cfg.status_interval_s = 0.0;  // keep test logs quiet
  cfg.tx_deadline_us = 100'000;
  return cfg;
}

std::uint64_t completed_sum(const Report& rep) {
  std::uint64_t sum = 0;
  for (const auto& c : rep.per_class) sum += c.completed;
  return sum;
}

/// The sharded gap-free identity: every stripe's clock component equals its
/// committed writers, and the component sum matches. (A multi-stripe commit
/// counts once per write stripe on both sides, so the flat
/// clock == committed_count identity holds only at stripes == 1.)
void expect_gap_free_stripes(const Report& rep) {
  ASSERT_EQ(rep.stripe_clock.size(), rep.stripe_committed.size());
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < rep.stripe_clock.size(); ++s) {
    EXPECT_EQ(rep.stripe_clock[s], rep.stripe_committed[s])
        << "stripe " << s << " out of step\n" << rep.to_json();
    sum += rep.stripe_committed[s];
  }
  EXPECT_EQ(rep.clock, sum);
  EXPECT_GE(rep.clock, rep.committed_count);
}

TEST(ServerHarness, SteadyLoadRunsCleanAndDrainsEverything) {
  ServerConfig cfg = base_config();
  cfg.duration_s = 1.5;
  cfg.load.rate_hz = 400.0;
  Server server(cfg);
  const Report rep = server.run();

  EXPECT_TRUE(rep.ok) << rep.failure << "\n" << rep.to_json();
  EXPECT_GT(rep.completed, 100u);
  // Nothing shed at this trivial load, and the drain completed every
  // admitted request.
  EXPECT_EQ(rep.shed, 0u);
  EXPECT_EQ(rep.admitted, rep.completed);
  EXPECT_EQ(completed_sum(rep), rep.completed);
  EXPECT_EQ(rep.watchdog_stalls, 0u);
  EXPECT_EQ(rep.max_shed_level, 0u);
  // End-of-soak evidence is reported even on clean runs.
  expect_gap_free_stripes(rep);
  EXPECT_EQ(rep.cause_sum_minus_deadline, rep.attempt_aborts);
  EXPECT_LE(rep.max_version_list_trimmed, 2u);
}

TEST(ServerHarness, OverloadShedsAndStaysUp) {
  ServerConfig cfg = base_config();
  // Size each request so the offered rate is well past the machine's
  // capacity: the gate must clamp + shed rather than let the backlog and
  // p99 run away. backlog_high is lowered so the controller sees the
  // overload within a couple of ticks regardless of machine speed.
  cfg.duration_s = 4.0;
  cfg.load.rate_hz = 2000.0;
  cfg.op_span = 8192;
  cfg.admission.backlog_high = 64;
  Server server(cfg);
  const Report rep = server.run();

  EXPECT_TRUE(rep.ok) << rep.failure << "\n" << rep.to_json();
  EXPECT_GT(rep.overload_ticks, 0u);
  EXPECT_GT(rep.shed, 0u);
  EXPECT_GE(rep.max_shed_level, 1u);
  EXPECT_GT(rep.completed, 0u);
  // The clamp converged on something below the offered rate.
  EXPECT_LT(rep.final_rate_limit, cfg.load.rate_hz);
  // Shedding is by priority: reads are the last class to go, so they must
  // never shed more aggressively than multi-key requests (rates are per
  // class share of the mix — compare against admitted+shed totals).
  const auto& read =
      rep.per_class[static_cast<std::size_t>(RequestClass::kRead)];
  const auto& multi =
      rep.per_class[static_cast<std::size_t>(RequestClass::kMulti)];
  const double read_shed_share =
      static_cast<double>(read.shed) /
      static_cast<double>(read.admitted + read.shed + 1);
  const double multi_shed_share =
      static_cast<double>(multi.shed) /
      static_cast<double>(multi.admitted + multi.shed + 1);
  EXPECT_LE(read_shed_share, multi_shed_share + 0.05);
}

TEST(ServerHarness, NoShedAblationNeverDropsAdmittedWork) {
  ServerConfig cfg = base_config();
  cfg.duration_s = 2.0;
  cfg.load.rate_hz = 1200.0;
  cfg.op_span = 4096;
  cfg.admission.enabled = false;
  Server server(cfg);
  const Report rep = server.run();

  EXPECT_TRUE(rep.ok) << rep.failure << "\n" << rep.to_json();
  // With the gate disabled the controller must stay silent: no token
  // shedding, no escalation, no backlog revocation — every admitted
  // request is eventually completed even though the SLO is toast.
  EXPECT_EQ(rep.max_shed_level, 0u);
  EXPECT_EQ(rep.overload_ticks, 0u);
  EXPECT_EQ(rep.admitted, rep.completed);
  // The only permissible shedding is the hard max_backlog door cap.
  EXPECT_EQ(rep.shed + rep.admitted, rep.offered);
}

TEST(ServerHarness, ChaosSoakFiresInjectionsAndKeepsInvariants) {
  ServerConfig cfg = base_config();
  cfg.duration_s = 2.5;
  cfg.load.rate_hz = 250.0;
  // Weight the mix toward multi-key future transactions so the subtxn
  // chaos sites (validate failures, tree aborts) actually run.
  cfg.load.mix_read = 35;
  cfg.load.mix_write = 20;
  cfg.load.mix_rmw = 15;
  cfg.load.mix_multi = 30;
  cfg.chaos = true;
  cfg.chaos_seed = 7;
  Server server(cfg);
  const Report rep = server.run();

  EXPECT_TRUE(rep.ok) << rep.failure << "\n" << rep.to_json();
  EXPECT_GT(rep.chaos_fires, 0u);
  EXPECT_GT(rep.completed, 0u);
  // The taxonomy identity and the gap-free per-stripe clocks survived the
  // injections (run() fails the report otherwise; assert the evidence
  // anyway).
  expect_gap_free_stripes(rep);
  EXPECT_EQ(rep.cause_sum_minus_deadline, rep.attempt_aborts);
  EXPECT_LE(rep.max_version_list_trimmed, 2u);
  EXPECT_EQ(rep.watchdog_stalls, 0u);
}

TEST(ServerHarness, WatchdogDeclaresStallWhenNothingCompletes) {
  ServerConfig cfg = base_config();
  // No workers: admitted requests sit in the backlog forever. The watchdog
  // must notice within ~watchdog_stall_ms and fail the run rather than
  // letting the drain loop hang.
  cfg.workers = 0;
  cfg.duration_s = 30.0;  // would hang far past the test budget if missed
  cfg.load.rate_hz = 100.0;
  cfg.watchdog_stall_ms = 300;
  Server server(cfg);
  const Report rep = server.run();

  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.failure, "watchdog stall");
  EXPECT_EQ(rep.watchdog_stalls, 1u);
  EXPECT_EQ(rep.completed, 0u);
  // The stall cut the run far short of the configured duration.
  EXPECT_LT(rep.duration_s, 10.0);
}

}  // namespace
