// Integration tests for the long-lived service harness (Server::run):
// steady load, chaos soak, overload shedding, the no-shed ablation, and
// the watchdog. Runs are kept to a couple of seconds each; the minutes-
// long soak lives in CI's soak-smoke job and scripts/bench_server.sh.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>

#include "server/server.hpp"

namespace {

namespace fs = std::filesystem;

using txf::server::Report;
using txf::server::RequestClass;
using txf::server::Server;
using txf::server::ServerConfig;

ServerConfig base_config() {
  ServerConfig cfg;
  cfg.load.keyspace = 4096;
  cfg.load.seed = 1234;
  cfg.status_interval_s = 0.0;  // keep test logs quiet
  cfg.tx_deadline_us = 100'000;
  return cfg;
}

std::uint64_t completed_sum(const Report& rep) {
  std::uint64_t sum = 0;
  for (const auto& c : rep.per_class) sum += c.completed;
  return sum;
}

/// The sharded gap-free identity: every stripe's clock component equals its
/// committed writers, and the component sum matches. (A multi-stripe commit
/// counts once per write stripe on both sides, so the flat
/// clock == committed_count identity holds only at stripes == 1.)
void expect_gap_free_stripes(const Report& rep) {
  ASSERT_EQ(rep.stripe_clock.size(), rep.stripe_committed.size());
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < rep.stripe_clock.size(); ++s) {
    EXPECT_EQ(rep.stripe_clock[s], rep.stripe_committed[s])
        << "stripe " << s << " out of step\n" << rep.to_json();
    sum += rep.stripe_committed[s];
  }
  EXPECT_EQ(rep.clock, sum);
  EXPECT_GE(rep.clock, rep.committed_count);
}

TEST(ServerHarness, SteadyLoadRunsCleanAndDrainsEverything) {
  ServerConfig cfg = base_config();
  cfg.duration_s = 1.5;
  cfg.load.rate_hz = 400.0;
  Server server(cfg);
  const Report rep = server.run();

  EXPECT_TRUE(rep.ok) << rep.failure << "\n" << rep.to_json();
  EXPECT_GT(rep.completed, 100u);
  // Nothing shed at this trivial load, and the drain completed every
  // admitted request.
  EXPECT_EQ(rep.shed, 0u);
  EXPECT_EQ(rep.admitted, rep.completed);
  EXPECT_EQ(completed_sum(rep), rep.completed);
  EXPECT_EQ(rep.watchdog_stalls, 0u);
  EXPECT_EQ(rep.max_shed_level, 0u);
  // End-of-soak evidence is reported even on clean runs.
  expect_gap_free_stripes(rep);
  EXPECT_EQ(rep.cause_sum_minus_deadline, rep.attempt_aborts);
  EXPECT_LE(rep.max_version_list_trimmed, 2u);
}

TEST(ServerHarness, OverloadShedsAndStaysUp) {
  ServerConfig cfg = base_config();
  // Size each request so the offered rate is well past the machine's
  // capacity: the gate must clamp + shed rather than let the backlog and
  // p99 run away. backlog_high is lowered so the controller sees the
  // overload within a couple of ticks regardless of machine speed.
  cfg.duration_s = 4.0;
  cfg.load.rate_hz = 2000.0;
  cfg.op_span = 8192;
  cfg.admission.backlog_high = 64;
  Server server(cfg);
  const Report rep = server.run();

  EXPECT_TRUE(rep.ok) << rep.failure << "\n" << rep.to_json();
  EXPECT_GT(rep.overload_ticks, 0u);
  EXPECT_GT(rep.shed, 0u);
  EXPECT_GE(rep.max_shed_level, 1u);
  EXPECT_GT(rep.completed, 0u);
  // The clamp converged on something below the offered rate.
  EXPECT_LT(rep.final_rate_limit, cfg.load.rate_hz);
  // Shedding is by priority: reads are the last class to go, so they must
  // never shed more aggressively than multi-key requests (rates are per
  // class share of the mix — compare against admitted+shed totals).
  const auto& read =
      rep.per_class[static_cast<std::size_t>(RequestClass::kRead)];
  const auto& multi =
      rep.per_class[static_cast<std::size_t>(RequestClass::kMulti)];
  const double read_shed_share =
      static_cast<double>(read.shed) /
      static_cast<double>(read.admitted + read.shed + 1);
  const double multi_shed_share =
      static_cast<double>(multi.shed) /
      static_cast<double>(multi.admitted + multi.shed + 1);
  EXPECT_LE(read_shed_share, multi_shed_share + 0.05);
}

TEST(ServerHarness, NoShedAblationNeverDropsAdmittedWork) {
  ServerConfig cfg = base_config();
  cfg.duration_s = 2.0;
  cfg.load.rate_hz = 1200.0;
  cfg.op_span = 4096;
  cfg.admission.enabled = false;
  Server server(cfg);
  const Report rep = server.run();

  EXPECT_TRUE(rep.ok) << rep.failure << "\n" << rep.to_json();
  // With the gate disabled the controller must stay silent: no token
  // shedding, no escalation, no backlog revocation — every admitted
  // request is eventually completed even though the SLO is toast.
  EXPECT_EQ(rep.max_shed_level, 0u);
  EXPECT_EQ(rep.overload_ticks, 0u);
  EXPECT_EQ(rep.admitted, rep.completed);
  // The only permissible shedding is the hard max_backlog door cap.
  EXPECT_EQ(rep.shed + rep.admitted, rep.offered);
}

TEST(ServerHarness, ChaosSoakFiresInjectionsAndKeepsInvariants) {
  ServerConfig cfg = base_config();
  cfg.duration_s = 2.5;
  cfg.load.rate_hz = 250.0;
  // Weight the mix toward multi-key future transactions so the subtxn
  // chaos sites (validate failures, tree aborts) actually run.
  cfg.load.mix_read = 35;
  cfg.load.mix_write = 20;
  cfg.load.mix_rmw = 15;
  cfg.load.mix_multi = 30;
  cfg.chaos = true;
  cfg.chaos_seed = 7;
  Server server(cfg);
  const Report rep = server.run();

  EXPECT_TRUE(rep.ok) << rep.failure << "\n" << rep.to_json();
  EXPECT_GT(rep.chaos_fires, 0u);
  EXPECT_GT(rep.completed, 0u);
  // The taxonomy identity and the gap-free per-stripe clocks survived the
  // injections (run() fails the report otherwise; assert the evidence
  // anyway).
  expect_gap_free_stripes(rep);
  EXPECT_EQ(rep.cause_sum_minus_deadline, rep.attempt_aborts);
  EXPECT_LE(rep.max_version_list_trimmed, 2u);
  EXPECT_EQ(rep.watchdog_stalls, 0u);
}

TEST(ServerHarness, InjectedInvariantFailureTriggersFlightBundle) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("txf_harness_flight_" + std::to_string(::getpid()));
  fs::remove_all(dir);

  ServerConfig cfg = base_config();
  cfg.duration_s = 1.5;
  cfg.load.rate_hz = 400.0;
  // The armed failpoint fails the end-of-soak invariant block exactly once,
  // exercising the failure -> flight-bundle path without corrupting any
  // real engine state.
  cfg.inject_invariant_failure = true;
  cfg.flight_dir = dir.string();
  cfg.timeline.enabled = true;
  cfg.timeline.interval_ms = 100;
  Server server(cfg);
  const Report rep = server.run();

  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.failure, "injected invariant violation (failpoint)");
  // The timeline ran and the detectors evaluated (a healthy short run must
  // not fire any of them — the injected failure is not drift).
  EXPECT_GT(rep.drift_evaluations, 0u);
  EXPECT_EQ(rep.drift_triggers, 0u) << rep.to_json();
  // The bundle exists and is self-contained.
  ASSERT_EQ(rep.flight_bundles.size(), 1u);
  const fs::path bundle(rep.flight_bundles.front());
  for (const char* name :
       {"manifest.json", "metrics.json", "trace.json", "timeline.json",
        "verdicts.json", "config.json", "status_tail.txt"}) {
    EXPECT_TRUE(fs::is_regular_file(bundle / name)) << name;
  }
  fs::remove_all(dir);
}

TEST(ServerHarness, PassingRunWithDumpAtEndLeavesBaselineBundle) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("txf_harness_flight_ok_" + std::to_string(::getpid()));
  fs::remove_all(dir);

  ServerConfig cfg = base_config();
  cfg.duration_s = 1.0;
  cfg.load.rate_hz = 300.0;
  cfg.flight_dir = dir.string();
  cfg.flight_dump_at_end = true;
  cfg.timeline.enabled = true;
  cfg.timeline.interval_ms = 100;
  Server server(cfg);
  const Report rep = server.run();

  EXPECT_TRUE(rep.ok) << rep.failure << "\n" << rep.to_json();
  ASSERT_EQ(rep.flight_bundles.size(), 1u);
  EXPECT_NE(rep.flight_bundles.front().find("end-of-soak"),
            std::string::npos);
  fs::remove_all(dir);
}

TEST(ServerHarness, WatchdogDeclaresStallWhenNothingCompletes) {
  ServerConfig cfg = base_config();
  // No workers: admitted requests sit in the backlog forever. The watchdog
  // must notice within ~watchdog_stall_ms and fail the run rather than
  // letting the drain loop hang.
  cfg.workers = 0;
  cfg.duration_s = 30.0;  // would hang far past the test budget if missed
  cfg.load.rate_hz = 100.0;
  cfg.watchdog_stall_ms = 300;
  Server server(cfg);
  const Report rep = server.run();

  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.failure, "watchdog stall");
  EXPECT_EQ(rep.watchdog_stalls, 1u);
  EXPECT_EQ(rep.completed, 0u);
  // The stall cut the run far short of the configured duration.
  EXPECT_LT(rep.duration_s, 10.0);
}

}  // namespace
