// Unit tests for xoshiro256**, SplitMix64, Zipf and NURand generators.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

#include "util/xoshiro.hpp"
#include "util/zipf.hpp"

namespace {

using txf::util::NuRand;
using txf::util::SplitMix64;
using txf::util::Xoshiro256;
using txf::util::ZipfGenerator;

TEST(SplitMix64, IsDeterministicPerSeed) {
  SplitMix64 a(42), b(42), c(43);
  const auto x = a.next();
  EXPECT_EQ(x, b.next());
  EXPECT_NE(x, c.next());
}

TEST(Xoshiro256, DeterministicStreamPerSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro256, BoundedStaysInBounds) {
  Xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_bounded(17), 17u);
    const auto v = rng.next_range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Xoshiro256, BoundedZeroIsZero) {
  Xoshiro256 rng(9);
  EXPECT_EQ(rng.next_bounded(0), 0u);
  EXPECT_EQ(rng.next_bounded(1), 0u);
}

TEST(Xoshiro256, DoubleInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256, BoundedIsRoughlyUniform) {
  Xoshiro256 rng(77);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 160000;
  std::array<int, kBuckets> hist{};
  for (int i = 0; i < kDraws; ++i) ++hist[rng.next_bounded(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int count : hist) {
    EXPECT_NEAR(count, expected, expected * 0.1);
  }
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~std::uint64_t{0});
  Xoshiro256 rng(3);
  std::uniform_int_distribution<int> dist(0, 9);
  for (int i = 0; i < 100; ++i) {
    const int v = dist(rng);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 9);
  }
}

TEST(Zipf, StaysInRange) {
  Xoshiro256 rng(11);
  ZipfGenerator zipf(1000, 0.99);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.next(rng), 1000u);
}

TEST(Zipf, SkewsTowardLowIndices) {
  Xoshiro256 rng(13);
  ZipfGenerator zipf(1000, 0.99);
  int low = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) low += (zipf.next(rng) < 10);
  // Zipf(0.99) concentrates far more than 10/1000 of mass on the first 10.
  EXPECT_GT(low, kDraws / 5);
}

TEST(Zipf, LowThetaApproachesUniform) {
  Xoshiro256 rng(17);
  ZipfGenerator zipf(100, 0.01);
  std::array<int, 10> decile{};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++decile[zipf.next(rng) / 10];
  for (int count : decile) {
    EXPECT_NEAR(count, kDraws / 10, kDraws / 10 * 0.25);
  }
}

TEST(NuRand, RespectsRange) {
  Xoshiro256 rng(19);
  NuRand nu(255, 91);
  for (int i = 0; i < 10000; ++i) {
    const auto v = nu.next(rng, 1, 3000);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 3000u);
  }
}

TEST(NuRand, CoversWholeRangeEventually) {
  Xoshiro256 rng(23);
  NuRand nu(255, 0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 20000; ++i) seen.insert(nu.next(rng, 1, 100));
  EXPECT_EQ(seen.size(), 100u);
}

}  // namespace
