// Tests for VBox packing, permanent version lists, and trimming.
#include <gtest/gtest.h>

#include <cstdint>

#include "stm/vbox.hpp"
#include "util/epoch.hpp"

namespace {

using txf::stm::PermanentVersion;
using txf::stm::VBox;
using txf::stm::VBoxImpl;
using txf::stm::Word;

TEST(WordPacking, RoundTripsCommonTypes) {
  EXPECT_EQ(txf::stm::unpack_word<int>(txf::stm::pack_word(int{-7})), -7);
  EXPECT_EQ(txf::stm::unpack_word<std::uint64_t>(
                txf::stm::pack_word(std::uint64_t{1} << 63)),
            std::uint64_t{1} << 63);
  EXPECT_DOUBLE_EQ(txf::stm::unpack_word<double>(txf::stm::pack_word(3.25)),
                   3.25);
  EXPECT_EQ(txf::stm::unpack_word<bool>(txf::stm::pack_word(true)), true);
  int x = 9;
  EXPECT_EQ(txf::stm::unpack_word<int*>(txf::stm::pack_word(&x)), &x);
}

TEST(VBoxImpl, InitialValueVisibleAtVersionZero) {
  VBoxImpl box(42);
  const PermanentVersion* v = box.read_permanent(0);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->value, 42u);
  EXPECT_EQ(v->version, 0u);
}

TEST(VBoxImpl, SnapshotSelectsNewestNotExceeding) {
  VBoxImpl box(1);
  // Manually link versions 5 and 9 (commit queue does this in production).
  auto* head0 = const_cast<PermanentVersion*>(box.permanent_head());
  auto* v5 = new PermanentVersion(50, 5, head0);
  ASSERT_TRUE(box.cas_permanent_head(head0, v5));
  auto* v9 = new PermanentVersion(90, 9, v5);
  ASSERT_TRUE(box.cas_permanent_head(v5, v9));

  EXPECT_EQ(box.read_permanent(0)->value, 1u);
  EXPECT_EQ(box.read_permanent(4)->value, 1u);
  EXPECT_EQ(box.read_permanent(5)->value, 50u);
  EXPECT_EQ(box.read_permanent(8)->value, 50u);
  EXPECT_EQ(box.read_permanent(9)->value, 90u);
  EXPECT_EQ(box.read_permanent(100)->value, 90u);
}

TEST(VBoxImpl, CasHeadFailsOnStaleExpected) {
  VBoxImpl box(1);
  auto* head0 = const_cast<PermanentVersion*>(box.permanent_head());
  auto* v1 = new PermanentVersion(10, 1, head0);
  ASSERT_TRUE(box.cas_permanent_head(head0, v1));
  auto* v2 = new PermanentVersion(20, 2, head0);
  EXPECT_FALSE(box.cas_permanent_head(head0, v2));
  delete v2;
}

TEST(VBoxImpl, TrimDropsUnreachableVersions) {
  txf::util::EpochDomain domain;
  VBoxImpl box(1);
  auto* head0 = const_cast<PermanentVersion*>(box.permanent_head());
  auto* v5 = new PermanentVersion(50, 5, head0);
  ASSERT_TRUE(box.cas_permanent_head(head0, v5));
  auto* v9 = new PermanentVersion(90, 9, v5);
  ASSERT_TRUE(box.cas_permanent_head(v5, v9));

  // Oldest live snapshot is 6: version 5 must survive (it is the visible
  // version at snapshot 6), version 0 may go.
  box.trim(6, domain);
  EXPECT_EQ(box.read_permanent(6)->value, 50u);
  EXPECT_EQ(box.read_permanent(100)->value, 90u);
  // Version 0 is gone: a (hypothetical) snapshot-0 reader finds nothing.
  EXPECT_EQ(box.read_permanent(4), nullptr);
}

TEST(VBoxImpl, TrimKeepsEverythingWhenMinSnapshotOld) {
  txf::util::EpochDomain domain;
  VBoxImpl box(7);
  box.trim(0, domain);
  EXPECT_EQ(box.read_permanent(0)->value, 7u);
}

TEST(VBoxTyped, GetPutThroughContext) {
  // Minimal fake context: direct read/write against the permanent head.
  struct FakeCtx {
    Word read(VBoxImpl& b) { return b.permanent_head()->value; }
    void write(VBoxImpl& b, Word w) {
      auto* head = const_cast<PermanentVersion*>(b.permanent_head());
      auto* node = new PermanentVersion(w, head->version + 1, head);
      ASSERT_TRUE(b.cas_permanent_head(head, node));
    }
  };
  VBox<int> box(5);
  FakeCtx ctx;
  EXPECT_EQ(box.get(ctx), 5);
  box.put(ctx, -17);
  EXPECT_EQ(box.get(ctx), -17);
  EXPECT_EQ(box.peek_committed(), -17);
}

TEST(VBoxTyped, PeekCommittedSeesInitial) {
  VBox<double> box(2.5);
  EXPECT_DOUBLE_EQ(box.peek_committed(), 2.5);
}

}  // namespace
