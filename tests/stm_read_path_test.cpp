// Read-path tests: the VBox home slot (seqlock mirror of the newest
// committed version), its interaction with write-back publication and
// version trimming, the graceful abort-and-retry when a snapshot loses a
// race with trimming, and the read-set inline fast path as used by
// Transaction. Run under TSan via -DTXF_SANITIZE=thread (the seqlock is
// Boehm-style: all data accesses are atomic, so TSan sees no race).
#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <thread>
#include <vector>

#include "stm/transaction.hpp"
#include "stm/vbox.hpp"
#include "util/failpoint.hpp"

namespace {

using txf::stm::StmEnv;
using txf::stm::Transaction;
using txf::stm::VBox;
using txf::stm::VBoxImpl;
using txf::stm::Version;
using txf::stm::Word;
namespace fp = txf::util::fp;

// --- home-slot unit behaviour --------------------------------------------

TEST(HomeSlot, FreshBoxServesVersionZero) {
  VBoxImpl box(42);
  Word value = 0;
  Version version = 99;
  ASSERT_TRUE(box.try_read_home(0, value, version));
  EXPECT_EQ(value, 42u);
  EXPECT_EQ(version, 0u);
}

TEST(HomeSlot, PublishAdvancesAndOldSnapshotFallsBack) {
  VBoxImpl box(1);
  box.publish_home(5, 55);
  EXPECT_EQ(box.home_version(), 5u);
  Word value = 0;
  Version version = 0;
  // New-enough snapshot: served from the slot.
  ASSERT_TRUE(box.try_read_home(7, value, version));
  EXPECT_EQ(value, 55u);
  EXPECT_EQ(version, 5u);
  // Snapshot older than the mirrored version: the slot must refuse (the
  // caller walks the permanent list for the older version).
  EXPECT_FALSE(box.try_read_home(4, value, version));
}

TEST(HomeSlot, StaleHelperCannotRegressTheSlot) {
  VBoxImpl box(1);
  box.publish_home(9, 90);
  // A write-back helper that stalled across a whole batch cycle wakes up
  // and replays an older publication: the slot must keep the newer pair.
  box.publish_home(3, 30);
  EXPECT_EQ(box.home_version(), 9u);
  Word value = 0;
  Version version = 0;
  ASSERT_TRUE(box.try_read_home(10, value, version));
  EXPECT_EQ(value, 90u);
  EXPECT_EQ(version, 9u);
}

TEST(HomeSlot, ConcurrentPublishersAndReadersStayConsistent) {
  // Publishers race monotonically increasing (version, version * 10) pairs;
  // readers must only ever observe matching pairs at stable seq.
  VBoxImpl box(0);
  std::atomic<bool> stop{false};
  std::atomic<Version> next{1};
  std::vector<std::thread> threads;
  for (int p = 0; p < 2; ++p) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const Version v = next.fetch_add(1, std::memory_order_relaxed);
        box.publish_home(v, static_cast<Word>(v) * 10);
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        Word value = 0;
        Version version = 0;
        if (box.try_read_home(txf::stm::kNoVersion - 1, value, version)) {
          ASSERT_EQ(value, static_cast<Word>(version) * 10)
              << "torn home-slot read at version " << version;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
}

// --- transaction read path -----------------------------------------------

TEST(ReadPath, ReadOnlyWorkloadHitsHomeSlot) {
  StmEnv env;
  std::deque<VBox<long>> boxes;
  for (int i = 0; i < 8; ++i) boxes.emplace_back(static_cast<long>(i));
  long sum = txf::stm::atomically(
      env,
      [&](Transaction& tx) {
        long s = 0;
        for (auto& b : boxes) s += b.get(tx);
        return s;
      },
      Transaction::Mode::kReadOnly);
  EXPECT_EQ(sum, 0 + 1 + 2 + 3 + 4 + 5 + 6 + 7);
  EXPECT_EQ(env.read_stats().home_hits.load(), 8u);
  EXPECT_EQ(env.read_stats().list_walks.load(), 0u);
  EXPECT_EQ(env.read_stats().hit_rate(), 1.0);
}

TEST(ReadPath, OvertakenSnapshotWalksTheList) {
  StmEnv env;
  VBox<long> a(1);
  VBox<long> b(0);
  Transaction reader(env, Transaction::Mode::kReadOnly);  // snapshot now
  // A commit lands after the reader's snapshot: the home slot advances past
  // it, so the reader must fall back to the version-list walk — and still
  // see its snapshot's value.
  txf::stm::atomically(env, [&](Transaction& tx) { a.put(tx, 100); });
  EXPECT_GT(a.impl().home_version(), reader.snapshot());
  EXPECT_EQ(txf::stm::unpack_word<long>(reader.read(a.impl())), 1L);
  // The untouched box still serves from its (version-0) home slot.
  EXPECT_EQ(txf::stm::unpack_word<long>(reader.read(b.impl())), 0L);
  reader.park();
  EXPECT_EQ(env.read_stats().list_walks.load(), 1u);
  EXPECT_EQ(env.read_stats().home_hits.load(), 1u);
  EXPECT_GE(env.read_stats().walk_hist[1].load(), 1u);  // 1-hop walk
}

TEST(ReadPath, TrimmedSnapshotAbortsGracefully) {
  // Regression: a reader whose snapshot lost the race with version trimming
  // used to die on assert(v != nullptr); it must now abort-and-retry.
  StmEnv env;
  VBox<long> box(1);
  Transaction reader(env, Transaction::Mode::kReadOnly);
  const Version stale = reader.snapshot();
  for (long i = 0; i < 3; ++i)
    txf::stm::atomically(env, [&](Transaction& tx) { box.put(tx, 100 + i); });
  // Trim directly past the reader's snapshot, simulating a GC that could
  // not see it (slot-less overflow transaction). Everything visible at
  // `stale` is retired; the home slot is too new for the reader.
  {
    txf::util::EpochDomain::Guard guard(env.epochs());
    box.impl().trim(stale + 3, env.epochs());
  }
  EXPECT_THROW((void)reader.read(box.impl()), txf::stm::RetryTransaction);
  reader.park();
  reader.reset();  // fresh snapshot: the retry succeeds
  EXPECT_EQ(box.get(reader), 102L);
}

TEST(ReadPath, DuplicateReadsDedupInReadSet) {
  StmEnv env;
  VBox<long> a(7);
  VBox<long> b(8);
  txf::stm::atomically(env, [&](Transaction& tx) {
    for (int i = 0; i < 5; ++i) {
      (void)a.get(tx);
      (void)b.get(tx);
    }
    EXPECT_EQ(tx.read_count(), 2u);  // one read-set entry per distinct box
    a.put(tx, 9);
  });
  EXPECT_EQ(a.peek_committed(), 9L);
}

TEST(ReadPath, ReadSetSpillsAndSurvivesParkReset) {
  StmEnv env;
  std::deque<VBox<long>> boxes;
  for (int i = 0; i < 20; ++i) boxes.emplace_back(static_cast<long>(i));
  Transaction tx(env);
  // Cross the inline->heap spill boundary (8 inline entries) twice, with a
  // park()/reset() cycle in between: capacity is reused, contents are not.
  for (int round = 0; round < 2; ++round) {
    for (auto& b : boxes) (void)b.get(tx);
    for (auto& b : boxes) (void)b.get(tx);  // duplicates must not grow it
    EXPECT_EQ(tx.read_count(), boxes.size());
    boxes[0].put(tx, 100 + round);
    ASSERT_TRUE(tx.try_commit());
    tx.park();
    tx.reset();
    EXPECT_EQ(tx.read_count(), 0u);
  }
  EXPECT_EQ(boxes[0].peek_committed(), 101L);
}

// --- chaos: home-slot reads vs concurrent write-back and trimming --------

TEST(ReadPathChaos, HomeSlotRacesWritebackAndTrim) {
  // Perturbation-only chaos stretches the seqlock read window
  // (stm.read.home sits between the two seq loads), write-back publication
  // and the version-list walk, while writers continuously commit (which
  // also drives version trimming through the commit queue). Readers check a
  // transfer invariant: any torn or stale home-slot read breaks it.
  fp::ChaosPlan plan;
  plan.seed = 0xbeadULL;
  plan.add_prob("stm.read.home", fp::Action::kDelayUs, 0.4, 20);
  plan.add_prob("stm.read.home", fp::Action::kYield, 0.3);
  plan.add_prob("stm.read.version", fp::Action::kDelayUs, 0.3, 10);
  plan.add_prob("stm.commit.writeback", fp::Action::kDelayUs, 0.4, 20);
  fp::Controller::instance().arm(plan);

  {
    StmEnv env;
    constexpr int kBoxes = 4;
    std::deque<VBox<long>> boxes;
    for (int i = 0; i < kBoxes; ++i) boxes.emplace_back(0L);
    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;
    for (int w = 0; w < 2; ++w) {
      threads.emplace_back([&, w] {
        long d = 1 + w;
        while (!stop.load(std::memory_order_acquire)) {
          txf::stm::atomically(env, [&](Transaction& tx) {
            // Transfer d between two boxes: the total stays 0.
            boxes[0].put(tx, boxes[0].get(tx) + d);
            boxes[1 + (w % (kBoxes - 1))].put(
                tx, boxes[1 + (w % (kBoxes - 1))].get(tx) - d);
          });
        }
      });
    }
    for (int r = 0; r < 2; ++r) {
      threads.emplace_back([&] {
        while (!stop.load(std::memory_order_acquire)) {
          const long total = txf::stm::atomically(
              env,
              [&](Transaction& tx) {
                long s = 0;
                for (auto& b : boxes) s += b.get(tx);
                return s;
              },
              Transaction::Mode::kReadOnly);
          ASSERT_EQ(total, 0L) << "snapshot violated under read-path chaos";
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    stop.store(true, std::memory_order_release);
    for (auto& t : threads) t.join();

    fp::FailPoint* site = fp::Controller::instance().find("stm.read.home");
    ASSERT_NE(site, nullptr);
    EXPECT_GT(site->passes(), 0u);
    const auto& stats = env.read_stats();
    EXPECT_GT(stats.home_hits.load() + stats.list_walks.load(), 0u);
  }
  fp::Controller::instance().disarm();
}

}  // namespace
