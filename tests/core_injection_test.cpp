// Failure injection: spurious sub-transaction validation failures must be
// absorbed by the recovery machinery (future re-execution, continuation
// rollback / tree restart) without ever changing results.
#include <gtest/gtest.h>

#include <deque>
#include <thread>

#include "core/api.hpp"
#include "core/fcc.hpp"
#include "util/failpoint.hpp"
#include "util/xoshiro.hpp"

namespace {

using txf::core::atomically;
using txf::core::Config;
using txf::core::RestartPolicy;
using txf::core::Runtime;
using txf::core::TxCtx;
using txf::stm::VBox;

Config inject_config(std::uint32_t every, RestartPolicy policy) {
  Config cfg;
  cfg.pool_threads = 2;
  cfg.restart = policy;
  if (every != 0) {
    cfg.chaos.add("core.subtxn.validate", txf::util::fp::Action::kFail, every);
  }
  return cfg;
}

class InjectionSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 RestartPolicy>> {
 protected:
  // TSan cannot follow the fiber stack restore that kPartialRollback runs
  // on (see the quarantine note in tests/CMakeLists.txt); the tree-restart
  // half of the sweep still runs sanitized.
  void SetUp() override {
    if (std::get<1>(GetParam()) == RestartPolicy::kPartialRollback &&
        txf::core::kFibersUnsafeUnderTsan) {
      GTEST_SKIP() << "fiber restore is incompatible with TSan";
    }
  }
};

TEST_P(InjectionSweep, FutureChainStillSequential) {
  const auto [every, policy] = GetParam();
  Runtime rt(inject_config(every, policy));
  rt.stats().reset();
  VBox<long> acc(1);
  atomically(rt, [&](TxCtx& ctx) {
    auto f1 = ctx.submit([&](TxCtx& c) {
      acc.put(c, acc.get(c) * 10 + 2);
      return 0;
    });
    auto f2 = ctx.submit([&](TxCtx& c) {
      acc.put(c, acc.get(c) * 10 + 3);
      return 0;
    });
    f1.get(ctx);
    f2.get(ctx);
    acc.put(ctx, acc.get(ctx) * 10 + 4);
  });
  EXPECT_EQ(acc.peek_committed(), 1234L);
}

TEST_P(InjectionSweep, CountersExactUnderInjection) {
  const auto [every, policy] = GetParam();
  Runtime rt(inject_config(every, policy));
  VBox<long> counter(0);
  constexpr int kIter = 60;
  for (int i = 0; i < kIter; ++i) {
    atomically(rt, [&](TxCtx& ctx) {
      auto f = ctx.submit([&](TxCtx& c) { return counter.get(c) + 1; });
      counter.put(ctx, f.get(ctx));
    });
  }
  EXPECT_EQ(counter.peek_committed(), kIter);
}

TEST_P(InjectionSweep, RecoveryPathsActuallyFired) {
  const auto [every, policy] = GetParam();
  Runtime rt(inject_config(every, policy));
  rt.stats().reset();
  VBox<long> x(0);
  for (int i = 0; i < 40; ++i) {
    atomically(rt, [&](TxCtx& ctx) {
      auto f = ctx.submit([&](TxCtx& c) {
        x.put(c, x.get(c) + 1);
        return 0;
      });
      f.get(ctx);
      x.put(ctx, x.get(ctx) + 1);
    });
  }
  EXPECT_EQ(x.peek_committed(), 80);
  // With injection on, at least one recovery mechanism must have fired.
  const auto recoveries = rt.stats().future_reexecutions.load() +
                          rt.stats().tree_restarts.load() +
                          rt.stats().partial_rollbacks.load() +
                          rt.stats().serial_fallbacks.load();
  EXPECT_GT(recoveries, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Rates, InjectionSweep,
    ::testing::Values(
        std::make_tuple(3u, RestartPolicy::kTreeRestart),
        std::make_tuple(7u, RestartPolicy::kTreeRestart),
        std::make_tuple(13u, RestartPolicy::kTreeRestart),
        std::make_tuple(3u, RestartPolicy::kPartialRollback),
        std::make_tuple(7u, RestartPolicy::kPartialRollback),
        std::make_tuple(13u, RestartPolicy::kPartialRollback)));

TEST(Injection, ConcurrentTreesSurviveInjection) {
  Runtime rt(inject_config(5, RestartPolicy::kTreeRestart));
  VBox<long> counter(0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 30; ++i) {
        atomically(rt, [&](TxCtx& ctx) {
          auto f = ctx.submit([&](TxCtx& c) {
            counter.put(c, counter.get(c) + 1);
            return 0;
          });
          f.get(ctx);
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.peek_committed(), 60);
}

TEST(Injection, OffByDefault) {
  Runtime rt(Config{.pool_threads = 2});
  rt.stats().reset();
  VBox<long> x(0);
  for (int i = 0; i < 20; ++i) {
    atomically(rt, [&](TxCtx& ctx) {
      auto f = ctx.submit([&](TxCtx& c) { return x.get(c); });
      x.put(ctx, f.get(ctx) + 1);
    });
  }
  EXPECT_EQ(x.peek_committed(), 20);
  // Uncontended single-threaded run: nothing should have failed.
  EXPECT_EQ(rt.stats().tree_restarts.load(), 0u);
}

}  // namespace
