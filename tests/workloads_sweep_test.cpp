// Parameterized consistency sweeps: the Vacation and TPC-C workloads must
// pass their audits under every engine configuration (write mode,
// inter-tree policy, restart policy, futures fan-out) and concurrency.
#include <gtest/gtest.h>

#include <thread>

#include "core/fcc.hpp"
#include "workloads/tpcc/tpcc.hpp"
#include "workloads/vacation/vacation.hpp"

namespace {

using txf::core::Config;
using txf::core::InterTreePolicy;
using txf::core::RestartPolicy;
using txf::core::Runtime;
using txf::core::WriteMode;
using txf::util::Xoshiro256;
namespace vac = txf::workloads::vacation;
namespace tpcc = txf::workloads::tpcc;

struct EngineParam {
  WriteMode write_mode;
  InterTreePolicy inter_tree;
  RestartPolicy restart;
  std::size_t jobs;
};

std::string param_name(const ::testing::TestParamInfo<EngineParam>& info) {
  const EngineParam& p = info.param;
  std::string s;
  s += p.write_mode == WriteMode::kEager ? "Eager" : "Lazy";
  s += p.inter_tree == InterTreePolicy::kAbortToRoot ? "Abort" : "Private";
  s += p.restart == RestartPolicy::kTreeRestart ? "Restart" : "Fcc";
  s += "J" + std::to_string(p.jobs);
  return s;
}

Config make_config(const EngineParam& p) {
  Config cfg;
  cfg.pool_threads = 3;
  cfg.write_mode = p.write_mode;
  cfg.inter_tree = p.inter_tree;
  cfg.restart = p.restart;
  return cfg;
}

// TSan cannot follow the fiber stack restore that kPartialRollback runs on
// (see the quarantine note in tests/CMakeLists.txt); the tree-restart rows
// of the sweep still run sanitized.
class EngineSweep : public ::testing::TestWithParam<EngineParam> {
 protected:
  void SetUp() override {
    if (GetParam().restart == RestartPolicy::kPartialRollback &&
        txf::core::kFibersUnsafeUnderTsan) {
      GTEST_SKIP() << "fiber restore is incompatible with TSan";
    }
  }
};

class VacationSweep : public EngineSweep {};

TEST_P(VacationSweep, ConcurrentMixPassesAudit) {
  Runtime rt(make_config(GetParam()));
  vac::VacationParams p;
  p.relations = 128;
  p.customers = 64;
  p.query_window = 24;
  p.jobs = GetParam().jobs;
  vac::VacationDB db(p);
  Xoshiro256 seed(1);
  db.populate(rt, seed);
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(30 + t);
      for (int i = 0; i < 15; ++i) {
        const auto roll = rng.next_bounded(10);
        if (roll < 8) {
          db.make_reservation(rt, rng);
        } else if (roll < 9) {
          db.delete_customer(rt, rng);
        } else {
          db.update_tables(rt, rng);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(db.audit(rt));
}

class TpccSweep : public EngineSweep {};

TEST_P(TpccSweep, ConcurrentMixPassesAudit) {
  Runtime rt(make_config(GetParam()));
  tpcc::TpccParams p;
  p.customers_per_district = 16;
  p.items = 128;
  p.jobs = GetParam().jobs;
  p.analytics_pct = 20;
  tpcc::TpccDB db(p);
  Xoshiro256 seed(2);
  db.populate(rt, seed);
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(60 + t);
      for (int i = 0; i < 15; ++i) db.run_mix(rt, rng);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(db.audit(rt));
}

const EngineParam kParams[] = {
    {WriteMode::kEager, InterTreePolicy::kAbortToRoot,
     RestartPolicy::kTreeRestart, 1},
    {WriteMode::kEager, InterTreePolicy::kAbortToRoot,
     RestartPolicy::kTreeRestart, 3},
    {WriteMode::kEager, InterTreePolicy::kSwitchToPrivate,
     RestartPolicy::kTreeRestart, 3},
    {WriteMode::kLazy, InterTreePolicy::kAbortToRoot,
     RestartPolicy::kTreeRestart, 3},
    {WriteMode::kEager, InterTreePolicy::kAbortToRoot,
     RestartPolicy::kPartialRollback, 1},
    {WriteMode::kEager, InterTreePolicy::kAbortToRoot,
     RestartPolicy::kPartialRollback, 3},
    {WriteMode::kLazy, InterTreePolicy::kSwitchToPrivate,
     RestartPolicy::kPartialRollback, 3},
};

INSTANTIATE_TEST_SUITE_P(Engine, VacationSweep, ::testing::ValuesIn(kParams),
                         param_name);
INSTANTIATE_TEST_SUITE_P(Engine, TpccSweep, ::testing::ValuesIn(kParams),
                         param_name);

}  // namespace
