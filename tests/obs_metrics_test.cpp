// MetricsRegistry: named registration/deregistration, same-name summation,
// histogram bucketing, and the snapshot_json exporter.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace obs = txf::obs;

TEST(Metrics, CounterAccumulatesAcrossThreads) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.load(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(c.value(), c.load());
}

TEST(Metrics, HistogramBuckets) {
  obs::Histogram h;
  // bucket 0 covers {0, 1}; bucket i covers (2^(i-1), 2^i].
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(5), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(1ull << 40), obs::Histogram::kBuckets - 1);

  h.record(1);
  h.record(4);
  h.record(4);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 9u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h[2].load(), 2u);  // atomic-view compatibility

  h.add_to_bucket(5, 7, 100);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.sum(), 109u);
  EXPECT_EQ(h.bucket_count(5), 7u);
}

TEST(Metrics, RegistrationSumsSameNameAndDeregisters) {
  auto& reg = obs::MetricsRegistry::instance();
  const std::string name = "test.metrics.same_name";
  EXPECT_EQ(reg.counter_value(name), 0u);
  {
    obs::Counter a;
    obs::Counter b;
    obs::Registration ra;
    obs::Registration rb;
    ra.counter(name, a);
    rb.counter(name, b);
    a.add(3);
    b.add(39);
    EXPECT_EQ(reg.counter_value(name), 42u);
  }
  // Both instances deregistered on destruction.
  EXPECT_EQ(reg.counter_value(name), 0u);
}

TEST(Metrics, PlainAtomicRegistration) {
  std::atomic<std::uint64_t> raw{7};
  {
    obs::Registration r;
    r.atomic("test.metrics.raw_atomic", raw);
    raw.fetch_add(2);
    EXPECT_EQ(obs::MetricsRegistry::instance().counter_value(
                  "test.metrics.raw_atomic"),
              9u);
  }
  EXPECT_EQ(obs::MetricsRegistry::instance().counter_value(
                "test.metrics.raw_atomic"),
            0u);
}

TEST(Metrics, SnapshotJsonContainsRegisteredMetrics) {
  obs::Counter c;
  obs::Gauge g;
  obs::Histogram h;
  obs::Registration r;
  r.counter("test.metrics.json_counter", c)
      .gauge("test.metrics.json_gauge", g)
      .histogram("test.metrics.json_hist", h);
  c.add(5);
  g.set(-3);
  h.record(2);

  const std::string json = txf::metrics::snapshot_json();
  EXPECT_NE(json.find("\"test.metrics.json_counter\": 5"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"test.metrics.json_gauge\": -3"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"test.metrics.json_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  // Crude structural sanity: one top-level object.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
}

TEST(Metrics, ConcurrentRegistrationAndSnapshot) {
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load()) (void)txf::metrics::snapshot_json();
  });
  std::vector<std::thread> churners;
  for (int t = 0; t < 4; ++t) {
    churners.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        obs::Counter c;
        obs::Registration r;
        r.counter("test.metrics.churn." + std::to_string(t), c);
        c.add(1);
      }
    });
  }
  for (auto& th : churners) th.join();
  stop.store(true);
  snapshotter.join();
  SUCCEED();  // no crash/race under TSan is the assertion
}
