// Integration tests for the benchmark workloads: populate + transaction
// profiles + consistency audits, with and without futures, under
// concurrency.
#include <gtest/gtest.h>

#include <thread>

#include "util/timing.hpp"
#include "workloads/common/driver.hpp"
#include "workloads/synthetic/synthetic.hpp"
#include "workloads/tpcc/tpcc.hpp"
#include "workloads/vacation/vacation.hpp"

namespace {

using txf::core::Config;
using txf::core::Runtime;
using txf::util::Xoshiro256;
namespace synth = txf::workloads::synthetic;
namespace vac = txf::workloads::vacation;
namespace tpcc = txf::workloads::tpcc;

TEST(Synthetic, CpuWorkDependsOnIters) {
  const auto a = synth::cpu_work(10, 1);
  const auto b = synth::cpu_work(11, 1);
  EXPECT_NE(a, b);
  EXPECT_EQ(synth::cpu_work(10, 1), a);  // deterministic
}

TEST(Synthetic, ReadOnlyVariantsAgreeOnFreshArray) {
  // On an unmodified array the transactional, plain-future and sequential
  // variants compute the same checksum for the same seed.
  Runtime rt(Config{.pool_threads = 2});
  synth::SyntheticArray array(1000);
  synth::ReadOnlyParams p{.txlen = 200, .iter = 10, .jobs = 1};
  Xoshiro256 r1(42), r2(42), r3(42);
  const auto tx = synth::run_readonly_tx(rt, array, r1, p);
  const auto plain = synth::run_readonly_plain(rt.pool(), array, r2, p);
  const auto seq = synth::run_readonly_seq(array, r3, p);
  EXPECT_EQ(tx, plain);
  EXPECT_EQ(plain, seq);
}

TEST(Synthetic, ParallelJobsMatchSerialChecksum) {
  Runtime rt(Config{.pool_threads = 2});
  synth::SyntheticArray array(1000);
  Xoshiro256 rng(7);
  synth::ReadOnlyParams serial{.txlen = 300, .iter = 0, .jobs = 1};
  synth::ReadOnlyParams parallel{.txlen = 300, .iter = 0, .jobs = 3};
  // Same seeds feed different slicing, so checksums differ; what must hold
  // is that both commit and read consistent values (smoke test).
  Xoshiro256 r1(7), r2(7);
  (void)synth::run_readonly_tx(rt, array, r1, serial);
  (void)synth::run_readonly_tx(rt, array, r2, parallel);
  EXPECT_GE(rt.stats().top_commits.load(), 2u);
}

TEST(Synthetic, UpdateTxTouchesHotSpots) {
  Runtime rt(Config{.pool_threads = 2});
  synth::SyntheticArray array(1000);
  Xoshiro256 rng(9);
  synth::UpdateParams p{.prefix_len = 50, .iter = 0, .jobs = 2};
  for (int i = 0; i < 5; ++i) synth::run_update_tx(rt, array, rng, p);
  // At least one hot item changed from its initial value.
  bool changed = false;
  for (std::size_t i = 0; i < p.hot_items; ++i)
    if (array.box(i).peek_committed() != i) changed = true;
  EXPECT_TRUE(changed);
}

TEST(Synthetic, ConcurrentUpdatersStayConsistent) {
  Runtime rt(Config{.pool_threads = 2});
  synth::SyntheticArray array(500);
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(100 + t);
      synth::UpdateParams p{.prefix_len = 20, .iter = 0, .jobs = 2};
      for (int i = 0; i < 20; ++i) synth::run_update_tx(rt, array, rng, p);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(rt.stats().top_commits.load(),
            rt.stats().top_commits.load());  // no crash/hang is the test
}

TEST(Vacation, PopulateAndReserve) {
  Runtime rt(Config{.pool_threads = 2});
  vac::VacationParams p;
  p.relations = 128;
  p.customers = 64;
  p.query_window = 16;
  p.jobs = 1;
  vac::VacationDB db(p);
  Xoshiro256 rng(1);
  db.populate(rt, rng);
  int reserved = 0;
  for (int i = 0; i < 20; ++i) reserved += db.make_reservation(rt, rng);
  EXPECT_GT(reserved, 0);
  EXPECT_TRUE(db.audit(rt));
}

TEST(Vacation, ReserveWithFuturesKeepsConsistency) {
  Runtime rt(Config{.pool_threads = 2});
  vac::VacationParams p;
  p.relations = 128;
  p.customers = 64;
  p.query_window = 32;
  p.jobs = 3;
  vac::VacationDB db(p);
  Xoshiro256 rng(2);
  db.populate(rt, rng);
  for (int i = 0; i < 20; ++i) db.make_reservation(rt, rng);
  EXPECT_TRUE(db.audit(rt));
}

TEST(Vacation, FullMixUnderConcurrency) {
  Runtime rt(Config{.pool_threads = 2});
  vac::VacationParams p;
  p.relations = 256;
  p.customers = 128;
  p.query_window = 16;
  p.jobs = 2;
  vac::VacationDB db(p);
  Xoshiro256 seed_rng(3);
  db.populate(rt, seed_rng);
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(10 + t);
      for (int i = 0; i < 30; ++i) {
        const auto roll = rng.next_bounded(100);
        if (roll < 80) {
          db.make_reservation(rt, rng);
        } else if (roll < 90) {
          db.delete_customer(rt, rng);
        } else {
          db.update_tables(rt, rng);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(db.audit(rt));
}

TEST(Tpcc, PopulateAndNewOrder) {
  Runtime rt(Config{.pool_threads = 2});
  tpcc::TpccParams p;
  p.customers_per_district = 32;
  p.items = 128;
  tpcc::TpccDB db(p);
  Xoshiro256 rng(1);
  db.populate(rt, rng);
  for (int i = 0; i < 10; ++i) db.new_order(rt, rng);
  EXPECT_EQ(db.committed_orders(), 10);
  EXPECT_TRUE(db.audit(rt));
}

TEST(Tpcc, PaymentMaintainsYtdInvariant) {
  Runtime rt(Config{.pool_threads = 2});
  tpcc::TpccParams p;
  p.customers_per_district = 32;
  p.items = 128;
  tpcc::TpccDB db(p);
  Xoshiro256 rng(2);
  db.populate(rt, rng);
  for (int i = 0; i < 25; ++i) db.payment(rt, rng);
  EXPECT_TRUE(db.audit(rt));
}

TEST(Tpcc, AnalyticsWithFuturesMatchesSerial) {
  tpcc::TpccParams base;
  base.customers_per_district = 64;
  base.items = 128;

  auto run = [&](std::size_t jobs) {
    Runtime rt(Config{.pool_threads = 2});
    tpcc::TpccParams p = base;
    p.jobs = jobs;
    tpcc::TpccDB db(p);
    Xoshiro256 rng(3);
    db.populate(rt, rng);
    for (int i = 0; i < 10; ++i) db.payment(rt, rng);
    Xoshiro256 qrng(5);
    return db.warehouse_analytics(rt, qrng);
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(Tpcc, FullMixUnderConcurrency) {
  Runtime rt(Config{.pool_threads = 2});
  tpcc::TpccParams p;
  p.customers_per_district = 32;
  p.items = 256;
  p.jobs = 2;
  p.analytics_pct = 20;
  tpcc::TpccDB db(p);
  Xoshiro256 seed(4);
  db.populate(rt, seed);
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(20 + t);
      for (int i = 0; i < 25; ++i) db.run_mix(rt, rng);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(db.audit(rt));
}

TEST(Tpcc, StockLevelRunsWithFutures) {
  Runtime rt(Config{.pool_threads = 2});
  tpcc::TpccParams p;
  p.customers_per_district = 16;
  p.items = 200;
  p.jobs = 3;
  tpcc::TpccDB db(p);
  Xoshiro256 rng(6);
  db.populate(rt, rng);
  for (int i = 0; i < 30; ++i) db.new_order(rt, rng);
  const long low = db.stock_level(rt, rng);
  EXPECT_GE(low, 0);
  EXPECT_LE(low, 200);
}

TEST(Tpcc, StockLevelScanMatchesSequentialReference) {
  // The B+-tree ordered district/stock join must produce exactly the
  // result of the point-get oracle, for every district and under both
  // scheduling extremes.
  for (txf::core::SchedulingMode mode :
       {txf::core::SchedulingMode::kAlwaysInline,
        txf::core::SchedulingMode::kAlwaysParallel}) {
    Config cfg;
    cfg.pool_threads = 2;
    cfg.scheduling = mode;
    Runtime rt(cfg);
    tpcc::TpccParams p;
    p.customers_per_district = 16;
    p.items = 200;
    tpcc::TpccDB db(p);
    Xoshiro256 rng(7);
    db.populate(rt, rng);
    for (int i = 0; i < 120; ++i) db.new_order(rt, rng);
    for (int i = 0; i < 10; ++i) db.delivery(rt, rng);
    for (int d = 0; d < p.districts; ++d) {
      for (int threshold : {5, 12, 20, 100}) {
        EXPECT_EQ(db.stock_level_at(rt, 0, d, threshold),
                  db.stock_level_reference(rt, 0, d, threshold))
            << "district " << d << " threshold " << threshold;
      }
    }
  }
}

TEST(Driver, ArgsParsing) {
  const char* argv[] = {"prog", "--threads=4", "--duration", "250",
                        "--flag"};
  txf::workloads::Args args(5, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("threads", 1), 4);
  EXPECT_EQ(args.get_int("duration", 1), 250);
  EXPECT_TRUE(args.has("flag"));
  EXPECT_FALSE(args.has("missing"));
  EXPECT_EQ(args.get_int("missing", 9), 9);
}

TEST(Driver, RunForAggregates) {
  Runtime rt(Config{.pool_threads = 2});
  txf::stm::VBox<long> counter(0);
  const auto result = txf::workloads::run_for(
      rt, 2, 100,
      [&](std::size_t, const std::function<bool()>& keep,
          txf::workloads::WorkerMetrics& m) {
        while (keep()) {
          const auto t0 = txf::util::now_ns();
          txf::core::atomically(rt, [&](txf::core::TxCtx& ctx) {
            counter.put(ctx, counter.get(ctx) + 1);
          });
          m.latency.record(txf::util::now_ns() - t0);
          ++m.transactions;
        }
      });
  EXPECT_GT(result.metrics.transactions, 0u);
  EXPECT_GT(result.seconds, 0.05);
  EXPECT_EQ(static_cast<long>(result.metrics.transactions),
            counter.peek_committed());
  EXPECT_GT(result.throughput(), 0.0);
}

}  // namespace
