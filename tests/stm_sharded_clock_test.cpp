// Sharded commit spine tests (stm/commit_spine.hpp, stm/global_clock.hpp):
// per-stripe sequences must stay gap-free (each clock component == the
// committed writers that advanced it) including under chaos on the
// multi-stripe reserve/publish sites; coherent snapshots must observe a
// multi-stripe transaction atomically (never stripe B's write without
// stripe A's same-transaction write); and a deterministic program must
// produce the identical final state at stripes 1 and 4 (strong-ordering
// equivalence of the sharded engine). Also covers the Config validation
// satellite: Runtime rejects malformed stripe counts loudly.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <deque>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/runtime.hpp"
#include "stm/transaction.hpp"
#include "util/failpoint.hpp"

namespace {

using txf::stm::SnapshotVec;
using txf::stm::StmEnv;
using txf::stm::stripe_of;
using txf::stm::Transaction;
using txf::stm::VBox;
namespace fp = txf::util::fp;

/// Allocate boxes until every one of `stripes` stripes owns at least
/// `per_stripe` of them. The pool is a deque so addresses are stable.
struct StripedBoxes {
  std::deque<VBox<long>> pool;
  std::vector<std::vector<VBox<long>*>> by_stripe;

  StripedBoxes(unsigned stripes, std::size_t per_stripe)
      : by_stripe(stripes) {
    const unsigned mask = stripes - 1;
    for (;;) {
      bool done = true;
      for (auto& v : by_stripe) done = done && v.size() >= per_stripe;
      if (done) break;
      pool.emplace_back(0L);
      by_stripe[stripe_of(&pool.back().impl(), mask)].push_back(&pool.back());
    }
  }
};

/// Each clock component must equal the committed writers that advanced it:
/// single-stripe batch commits plus multi-stripe commits touching the
/// stripe. Aborts on either path must consume no sequence number.
void expect_gap_free_per_stripe(StmEnv& env) {
  for (unsigned s = 0; s < env.stripes(); ++s) {
    EXPECT_EQ(env.clock().current(s), env.queue().stripe_committed(s))
        << "stripe " << s << " clock component out of step";
  }
  std::uint64_t total = 0;
  for (unsigned s = 0; s < env.stripes(); ++s)
    total += env.queue().stripe_committed(s);
  EXPECT_EQ(env.clock().total(), total);
}

TEST(ShardedClock, SingleStripeFootprintsAdvanceOnlyTheirComponent) {
  StmEnv env(4);
  ASSERT_EQ(env.stripes(), 4u);
  StripedBoxes boxes(4, 1);

  // One transaction per stripe, each writing only that stripe's box.
  for (unsigned s = 0; s < 4; ++s) {
    txf::stm::atomically(env, [&](Transaction& tx) {
      boxes.by_stripe[s][0]->put(tx, static_cast<long>(s) + 1);
    });
    for (unsigned t = 0; t < 4; ++t) {
      EXPECT_EQ(env.clock().current(t), t <= s ? 1u : 0u)
          << "stripe " << t << " after committing into stripe " << s;
    }
  }
  EXPECT_EQ(env.queue().multi_commits(), 0u);
  expect_gap_free_per_stripe(env);
}

TEST(ShardedClock, MultiStripeCommitAdvancesEveryWriteStripe) {
  StmEnv env(4);
  StripedBoxes boxes(4, 1);

  txf::stm::atomically(env, [&](Transaction& tx) {
    for (unsigned s = 0; s < 4; ++s) boxes.by_stripe[s][0]->put(tx, 7);
  });
  EXPECT_EQ(env.queue().multi_commits(), 1u);
  for (unsigned s = 0; s < 4; ++s) {
    EXPECT_EQ(env.clock().current(s), 1u);
    EXPECT_EQ(boxes.by_stripe[s][0]->peek_committed(), 7L);
  }
  expect_gap_free_per_stripe(env);
}

TEST(ShardedClock, SnapshotNeverObservesTornMultiStripeCommit) {
  // A writer keeps both counters equal inside one transaction; the boxes
  // live in different stripes, so every commit takes the multi-stripe
  // two-phase path. Readers snapshot both: any coherent cut must see the
  // counters equal — observing stripe B's write without stripe A's from the
  // same transaction is exactly the epoch seqlock's job to prevent.
  StmEnv env(4);
  StripedBoxes boxes(4, 1);
  VBox<long>& a = *boxes.by_stripe[0][0];
  VBox<long>& b = *boxes.by_stripe[3][0];

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        long va = 0, vb = 0;
        txf::stm::atomically(env, [&](Transaction& tx) {
          va = a.get(tx);
          vb = b.get(tx);
        });
        if (va != vb) torn.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int i = 0; i < 400; ++i) {
    txf::stm::atomically(env, [&](Transaction& tx) {
      const long v = a.get(tx);
      a.put(tx, v + 1);
      b.put(tx, v + 1);
    });
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u) << "snapshot observed a torn multi-stripe commit";
  EXPECT_EQ(a.peek_committed(), 400L);
  EXPECT_EQ(b.peek_committed(), 400L);
  EXPECT_GE(env.queue().multi_commits(), 400u);
  expect_gap_free_per_stripe(env);
}

/// Mixed storm: single-stripe RMWs plus cross-stripe RMWs, all increments.
/// Returns the number of committed increments (atomically() retries until
/// one attempt commits, so each iteration lands exactly once).
std::uint64_t run_sharded_storm(StmEnv& env, StripedBoxes& boxes, int threads,
                                int txns_per_thread) {
  const unsigned n = env.stripes();
  std::atomic<std::uint64_t> increments{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < txns_per_thread; ++i) {
        const unsigned s1 = static_cast<unsigned>(i) % n;
        const unsigned s2 = static_cast<unsigned>(i + w + 1) % n;
        VBox<long>& x = *boxes.by_stripe[s1][static_cast<std::size_t>(w) %
                                             boxes.by_stripe[s1].size()];
        VBox<long>& y = *boxes.by_stripe[s2][static_cast<std::size_t>(i) %
                                             boxes.by_stripe[s2].size()];
        txf::stm::atomically(env, [&](Transaction& tx) {
          const long vx = x.get(tx);
          const long vy = y.get(tx);
          x.put(tx, vx + 1);
          if (&x != &y) y.put(tx, vy + 1);
        });
        increments.fetch_add(&x != &y ? 2 : 1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : workers) t.join();
  return increments.load();
}

TEST(ShardedClockChaos, GapFreeUnderReserveFailuresAndPublishStalls) {
  // Inject hard failures at the multi-stripe reserve point (the freeze is
  // held, nothing irreversible has happened: the commit must abort cleanly
  // and consume no sequence number on any stripe) and stalls at the publish
  // point (stretching the window in which readers must not observe a
  // partial component advance), plus the pre-existing pipeline sites.
  fp::ChaosPlan plan;
  plan.seed = 0x5a7dedULL;
  plan.add_prob("stm.commit.multi.reserve", fp::Action::kFail, 0.15, 0);
  plan.add_prob("stm.commit.multi.publish", fp::Action::kDelayUs, 0.3, 50);
  plan.add_prob("stm.commit.multi.publish", fp::Action::kYield, 0.3, 0);
  plan.add_prob("stm.commit.batch.form", fp::Action::kDelayUs, 0.2, 30);
  plan.add_prob("stm.commit.writeback", fp::Action::kDelayUs, 0.2, 30);
  fp::Controller::instance().arm(plan);

  {
    StmEnv env(4);
    StripedBoxes boxes(4, 2);
    const std::uint64_t increments = run_sharded_storm(env, boxes, 4, 150);
    expect_gap_free_per_stripe(env);
    EXPECT_GT(env.queue().multi_commits(), 0u);
    EXPECT_GT(env.queue().multi_aborts(), 0u)
        << "chaos on stm.commit.multi.reserve never fired an abort";
    // Conservation: the boxes carry exactly the committed increments —
    // aborted attempts (including the injected reserve failures) left no
    // partial writes behind and lost none of the retried work.
    long total = 0;
    for (auto& b : boxes.pool) total += b.peek_committed();
    EXPECT_EQ(static_cast<std::uint64_t>(total), increments);
  }

  EXPECT_GT(fp::Controller::instance().total_fires(), 0u);
  fp::Controller::instance().disarm();
}

TEST(ShardedClock, DeterministicProgramEquivalentAtOneAndFourStripes) {
  // Strong-ordering equivalence: the same single-threaded program (no
  // aborts, fully deterministic) must leave the identical final state
  // whether the spine is unsharded or sharded — sharding may only change
  // the schedule, never the result.
  auto run = [](unsigned stripes) {
    StmEnv env(stripes);
    StripedBoxes boxes(4, 1);  // stripe ids computed at mask 3 either way
    for (int i = 0; i < 64; ++i) {
      const unsigned s1 = static_cast<unsigned>(i) % 4;
      const unsigned s2 = static_cast<unsigned>(i / 4) % 4;
      txf::stm::atomically(env, [&](Transaction& tx) {
        VBox<long>& x = *boxes.by_stripe[s1][0];
        VBox<long>& y = *boxes.by_stripe[s2][0];
        x.put(tx, x.get(tx) + i);
        y.put(tx, y.get(tx) * 2 + 1);
      });
    }
    std::array<long, 4> out{};
    for (unsigned s = 0; s < 4; ++s)
      out[s] = boxes.by_stripe[s][0]->peek_committed();
    return out;
  };
  const auto one = run(1);
  const auto four = run(4);
  EXPECT_EQ(one, four);
}

TEST(ShardedClock, RuntimeRejectsMalformedStripeCounts) {
  using txf::core::Config;
  using txf::core::Runtime;
  auto with_stripes = [](unsigned n) {
    Config c;
    c.pool_threads = 1;
    c.commit_stripes = n;
    return c;
  };
  EXPECT_THROW(Runtime rt(with_stripes(0)), std::invalid_argument);
  EXPECT_THROW(Runtime rt(with_stripes(3)), std::invalid_argument);
  EXPECT_THROW(Runtime rt(with_stripes(12)), std::invalid_argument);
  EXPECT_THROW(Runtime rt(with_stripes(64)), std::invalid_argument);
  // Valid power-of-two counts construct (and the env reports them).
  for (unsigned n : {1u, 2u, 8u, 32u}) {
    Runtime rt(with_stripes(n));
    EXPECT_EQ(rt.env().stripes(), n);
  }
}

}  // namespace
