// Tests for flat top-level transactions: snapshot isolation, commit
// validation, read-only fast path, atomically() retry loop.
#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <thread>
#include <vector>

#include "stm/transaction.hpp"
#include "util/xoshiro.hpp"

namespace {

using txf::stm::StmEnv;
using txf::stm::Transaction;
using txf::stm::VBox;

TEST(Txn, ReadsInitialValue) {
  StmEnv env;
  VBox<int> x(10);
  Transaction tx(env);
  EXPECT_EQ(x.get(tx), 10);
  EXPECT_TRUE(tx.try_commit());
}

TEST(Txn, ReadYourOwnWrites) {
  StmEnv env;
  VBox<int> x(1);
  Transaction tx(env);
  x.put(tx, 5);
  EXPECT_EQ(x.get(tx), 5);
  EXPECT_TRUE(tx.try_commit());
  EXPECT_EQ(x.peek_committed(), 5);
}

TEST(Txn, WritesInvisibleUntilCommit) {
  StmEnv env;
  VBox<int> x(1);
  Transaction writer(env);
  x.put(writer, 2);
  {
    Transaction reader(env);
    EXPECT_EQ(x.get(reader), 1);
    EXPECT_TRUE(reader.try_commit());
  }
  EXPECT_TRUE(writer.try_commit());
  {
    Transaction reader(env);
    EXPECT_EQ(x.get(reader), 2);
    EXPECT_TRUE(reader.try_commit());
  }
}

TEST(Txn, SnapshotIgnoresLaterCommits) {
  StmEnv env;
  VBox<int> x(1);
  Transaction early(env);          // snapshot taken now
  {
    Transaction w(env);
    x.put(w, 99);
    ASSERT_TRUE(w.try_commit());
  }
  // `early` still sees the old value: multi-version snapshot.
  EXPECT_EQ(x.get(early), 1);
  EXPECT_TRUE(early.try_commit());  // read-only: commits fine
}

TEST(Txn, ReadWriteConflictAborts) {
  StmEnv env;
  VBox<int> x(0);
  Transaction t1(env);
  (void)x.get(t1);  // t1 reads x
  {
    Transaction t2(env);
    x.put(t2, 7);
    ASSERT_TRUE(t2.try_commit());  // t2 commits a newer version of x
  }
  x.put(t1, 100);  // t1 writes based on its stale read
  EXPECT_FALSE(t1.try_commit());
  EXPECT_EQ(x.peek_committed(), 7);
}

TEST(Txn, BlindWritesBothCommit) {
  StmEnv env;
  VBox<int> x(0);
  Transaction t1(env), t2(env);
  x.put(t1, 1);
  x.put(t2, 2);
  EXPECT_TRUE(t1.try_commit());
  EXPECT_TRUE(t2.try_commit());
  EXPECT_EQ(x.peek_committed(), 2);  // queue order: t1 then t2
}

TEST(Txn, WriteSkewAllowedBySnapshotValidation) {
  // JVSTM-style validation checks the read set only; two transactions that
  // read nothing and write different boxes always commit.
  StmEnv env;
  VBox<int> x(0), y(0);
  Transaction t1(env), t2(env);
  x.put(t1, 1);
  y.put(t2, 1);
  EXPECT_TRUE(t1.try_commit());
  EXPECT_TRUE(t2.try_commit());
}

TEST(Txn, ReadOnlyModeSkipsTracking) {
  StmEnv env;
  VBox<int> x(3);
  Transaction tx(env, Transaction::Mode::kReadOnly);
  EXPECT_EQ(x.get(tx), 3);
  EXPECT_EQ(tx.read_count(), 0u);
  EXPECT_TRUE(tx.try_commit());
}

TEST(Txn, AtomicallyRetriesUntilSuccess) {
  StmEnv env;
  VBox<int> x(0);
  // Seed a conflict: a competing thread keeps bumping x while we try to
  // read-modify-write it; atomically() must eventually win.
  std::atomic<bool> stop{false};
  std::thread noise([&] {
    while (!stop.load()) {
      txf::stm::atomically(env, [&](Transaction& t) {
        x.put(t, x.get(t) + 1);
      });
    }
  });
  for (int i = 0; i < 100; ++i) {
    txf::stm::atomically(env, [&](Transaction& t) {
      x.put(t, x.get(t) + 1);
    });
  }
  stop.store(true);
  noise.join();
  EXPECT_GE(x.peek_committed(), 100);
}

TEST(Txn, AtomicallyReturnsValue) {
  StmEnv env;
  VBox<int> x(21);
  const int doubled = txf::stm::atomically(env, [&](Transaction& t) {
    return x.get(t) * 2;
  });
  EXPECT_EQ(doubled, 42);
}

TEST(Txn, RetryTransactionExceptionRetries) {
  StmEnv env;
  VBox<int> x(0);
  int attempts = 0;
  txf::stm::atomically(env, [&](Transaction& t) {
    x.put(t, x.get(t) + 1);
    if (++attempts < 3) throw txf::stm::RetryTransaction{};
  });
  EXPECT_EQ(attempts, 3);
  // Aborted attempts must not have committed their writes.
  EXPECT_EQ(x.peek_committed(), 1);
}

TEST(Txn, CounterInvariantUnderConcurrency) {
  StmEnv env;
  VBox<long> counter(0);
  constexpr int kThreads = 4;
  constexpr int kIncrements = 2000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int k = 0; k < kIncrements; ++k) {
        txf::stm::atomically(env, [&](Transaction& t) {
          counter.put(t, counter.get(t) + 1);
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.peek_committed(),
            static_cast<long>(kThreads) * kIncrements);
}

TEST(Txn, TransferPreservesTotal) {
  // Opacity stress: concurrent transfers keep the sum invariant; concurrent
  // read-only transactions must always observe the invariant sum.
  StmEnv env;
  constexpr int kAccounts = 8;
  constexpr long kInitial = 100;
  std::deque<VBox<long>> accounts;
  for (int i = 0; i < kAccounts; ++i) accounts.emplace_back(kInitial);

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::thread auditor([&] {
    while (!stop.load()) {
      const long total = txf::stm::atomically(
          env,
          [&](Transaction& t) {
            long sum = 0;
            for (auto& a : accounts) sum += a.get(t);
            return sum;
          },
          Transaction::Mode::kReadOnly);
      if (total != kAccounts * kInitial) violations.fetch_add(1);
    }
  });

  std::vector<std::thread> movers;
  for (int m = 0; m < 3; ++m) {
    movers.emplace_back([&, m] {
      txf::util::Xoshiro256 rng(100 + m);
      for (int k = 0; k < 3000; ++k) {
        const auto from = rng.next_bounded(kAccounts);
        const auto to = rng.next_bounded(kAccounts);
        if (from == to) continue;
        txf::stm::atomically(env, [&](Transaction& t) {
          const long amount = 1 + static_cast<long>(k % 5);
          accounts[from].put(t, accounts[from].get(t) - amount);
          accounts[to].put(t, accounts[to].get(t) + amount);
        });
      }
    });
  }
  for (auto& t : movers) t.join();
  stop.store(true);
  auditor.join();

  EXPECT_EQ(violations.load(), 0);
  long total = 0;
  for (auto& a : accounts) total += a.peek_committed();
  EXPECT_EQ(total, kAccounts * kInitial);
}

}  // namespace
