// Directed tests encoding the paper's semantics discussion: the executions
// of Fig. 1 (nested future evaluated by the top level), Fig. 2 (future as a
// cross-transaction channel), Fig. 3a (the example tree), and the Fig. 4
// visibility rules, plus equivalence-to-sequential properties.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/api.hpp"

namespace {

using txf::core::atomically;
using txf::core::Runtime;
using txf::core::TxCtx;
using txf::core::TxFuture;
using txf::stm::VBox;

// Fig. 1: T0 writes y, submits TF1; TF1 writes x and submits TF2; T0
// evaluates TF2. Under strong ordering TF2 is serialized at its submission
// point (inside TF1, after w(x)), so it must see both w(y, y0) by T0 and
// w(x, x1) by TF1 regardless of when it is evaluated.
TEST(PaperFig1, NestedFutureSeesBothAncestorsWrites) {
  Runtime rt;
  VBox<int> x(0), y(0);
  const std::pair<int, int> seen = atomically(rt, [&](TxCtx& ctx) {
    y.put(ctx, 7);  // w(y, y0) by T0
    auto tf1 = ctx.submit([&](TxCtx& c1) {
      x.put(c1, 5);  // w(x, x1) by TF1
      auto tf2 = c1.submit([&](TxCtx& c2) {
        return std::make_pair(x.get(c2), y.get(c2));
      });
      return tf2;
    });
    TxFuture<std::pair<int, int>> tf2 = tf1.get(ctx);
    return tf2.get(ctx);  // evaluated by T0, far from the submission point
  });
  EXPECT_EQ(seen.first, 5);
  EXPECT_EQ(seen.second, 7);
}

// Fig. 2: T1 submits TF and passes the reference out; T2 (a different
// top-level transaction / thread) evaluates it. Evaluation blocks until the
// future commits and yields the value produced in T1's context.
TEST(PaperFig2, FutureAsCrossTransactionChannel) {
  Runtime rt;
  VBox<int> data(11);
  std::atomic<TxFuture<int>*> channel{nullptr};
  TxFuture<int> slot;

  std::thread t2([&] {
    while (channel.load(std::memory_order_acquire) == nullptr)
      std::this_thread::yield();
    TxFuture<int> f = *channel.load(std::memory_order_acquire);
    const int got = atomically(rt, [&](TxCtx& ctx) {
      (void)ctx;
      return f.get();  // evaluate inside T2 (non-transactional evaluation)
    });
    EXPECT_EQ(got, 11);
  });

  atomically(rt, [&](TxCtx& ctx) {
    slot = ctx.submit([&](TxCtx& inner) { return data.get(inner); });
    channel.store(&slot, std::memory_order_release);
    slot.get(ctx);
  });
  t2.join();
}

// Fig. 3a: T0 submits TF1 (which submits TF2), then TC4 submits TF5, TC6
// runs last. The appends to a log box must come out in the pre-order
// serialization: T0, TF1, TF2, TC3, TC4-prefix, TF5, TC6.
TEST(PaperFig3a, ExampleTreeSerializesInPreOrder) {
  Runtime rt;
  // Encode the visit order as digits of a base-10 number.
  VBox<long> log(0);
  auto append = [&](TxCtx& c, long digit) {
    log.put(c, log.get(c) * 10 + digit);
  };
  atomically(rt, [&](TxCtx& ctx) {
    append(ctx, 1);  // T0 prefix
    auto tf1 = ctx.submit([&](TxCtx& c1) {
      append(c1, 2);  // TF1 prefix
      auto tf2 = c1.submit([&](TxCtx& c2) {
        append(c2, 3);  // TF2
        return 0;
      });
      append(c1, 4);  // TC3 (continuation of TF1)
      tf2.get(c1);
      return 0;
    });
    append(ctx, 5);  // TC4 prefix
    auto tf5 = ctx.submit([&](TxCtx& c5) {
      append(c5, 6);  // TF5
      return 0;
    });
    append(ctx, 7);  // TC6
    tf1.get(ctx);
    tf5.get(ctx);
  });
  EXPECT_EQ(log.peek_committed(), 1234567L);
}

// The decisive strong-ordering property: the parallel execution with
// futures must equal the program run with every future called
// synchronously at its submission point.
TEST(StrongOrdering, EquivalentToSequentialExecution) {
  Runtime rt;
  constexpr int kBoxes = 6;
  std::deque<VBox<long>> boxes;
  for (int i = 0; i < kBoxes; ++i) boxes.emplace_back(i);

  // A little program mixing reads and writes across futures.
  auto program = [&](TxCtx& ctx) {
    boxes[0].put(ctx, boxes[1].get(ctx) + 100);
    auto f1 = ctx.submit([&](TxCtx& c) {
      boxes[2].put(c, boxes[0].get(c) * 2);
      return boxes[2].get(c);
    });
    auto f2 = ctx.submit([&](TxCtx& c) {
      boxes[3].put(c, boxes[1].get(c) + boxes[4].get(c));
      return boxes[3].get(c);
    });
    const long a = f1.get(ctx);
    const long b = f2.get(ctx);
    boxes[5].put(ctx, a + b);
  };

  atomically(rt, program);
  std::vector<long> with_futures;
  for (auto& b : boxes) with_futures.push_back(b.peek_committed());

  // Sequential oracle computed by hand from initial state {0,1,2,3,4,5}:
  // boxes[0] = 1+100 = 101; f1: boxes[2] = 202, returns 202;
  // f2: boxes[3] = 1+4 = 5, returns 5; boxes[5] = 207.
  EXPECT_EQ(with_futures, (std::vector<long>{101, 1, 202, 5, 4, 207}));
}

TEST(StrongOrdering, FutureChainMatchesLoopOrder) {
  // Futures submitted in a loop must apply their increments in submission
  // order; each future multiplies then adds, making order observable.
  Runtime rt;
  VBox<long> acc(1);
  atomically(rt, [&](TxCtx& ctx) {
    std::vector<TxFuture<int>> fs;
    for (int i = 2; i <= 5; ++i) {
      fs.push_back(ctx.submit([&, i](TxCtx& c) {
        acc.put(c, acc.get(c) * 10 + i);
        return 0;
      }));
    }
    for (auto& f : fs) f.get(ctx);
  });
  EXPECT_EQ(acc.peek_committed(), 12345L);
}

// Fig. 4 visibility: TC6 (continuation started before its sibling future
// TF5 committed) must not see TF5's tentative writes during execution; it
// reads the pre-state. Here we avoid evaluating TF5 in the continuation so
// the continuation genuinely races — we force determinism by delaying TF5.
TEST(PaperFig4, SiblingWritesInvisibleUntilWitnessedCommit) {
  Runtime rt;
  VBox<int> x(1);
  std::atomic<bool> cont_read_done{false};
  int seen_by_continuation = -1;
  atomically(rt, [&](TxCtx& ctx) {
    auto tf = ctx.submit([&](TxCtx& inner) {
      // Hold the future until the continuation has read.
      while (!cont_read_done.load(std::memory_order_acquire))
        std::this_thread::yield();
      x.put(inner, 2);
      return 0;
    });
    // Touch data immediately so the lazy ancVer refresh freezes before the
    // future commits (mirrors "TC6 started before TF5 committed").
    seen_by_continuation = x.get(ctx);
    cont_read_done.store(true, std::memory_order_release);
    tf.get(ctx);
  });
  // The continuation raced ahead of the future: it read the old value, and
  // because the future *wrote* x afterwards, the continuation must have
  // been rolled back and re-run (seeing 2) — or, if its first read already
  // came after the commit, it saw 2 directly. Commit state is sequential:
  EXPECT_EQ(x.peek_committed(), 2);
}

TEST(ReadOnly, PureReadTreeSkipsCommitQueue) {
  Runtime rt;
  VBox<int> x(5);
  const auto before = rt.env().queue().committed_count();
  const int v = atomically(rt, [&](TxCtx& ctx) {
    auto f = ctx.submit([&](TxCtx& inner) { return x.get(inner); });
    return f.get(ctx) + x.get(ctx);
  });
  EXPECT_EQ(v, 10);
  // No write: nothing went through the commit queue.
  EXPECT_EQ(rt.env().queue().committed_count(), before);
}

TEST(ReadOnly, ValidationSkipCounted) {
  Runtime rt;
  VBox<int> x(5);
  rt.stats().reset();
  atomically(rt, [&](TxCtx& ctx) {
    auto f = ctx.submit([&](TxCtx& inner) { return x.get(inner); });
    return f.get(ctx);
  });
  // The read-only future (and the read-only continuation) may skip
  // validation per §IV-E.
  EXPECT_GE(rt.stats().ro_validation_skips.load(), 1u);
}

}  // namespace
