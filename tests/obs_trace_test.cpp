// txtrace: ring wrap-around, drain-while-writing, per-thread emit-order
// monotonicity, and a transaction run asserting every tx attempt span
// carries exactly one matching commit/abort instant.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "stm/transaction.hpp"
#include "stm/vbox.hpp"

namespace trace = txf::obs::trace;

#if defined(TXF_TRACE_ENABLED)

namespace {

std::vector<trace::DrainedRecord> drain_for(std::uint32_t tid) {
  std::vector<trace::DrainedRecord> out;
  for (const auto& r : trace::drain_records()) {
    if (r.tid == tid) out.push_back(r);
  }
  return out;
}

/// Timestamp at which a record was *written* (spans are emitted at end).
std::uint64_t emit_time(const trace::DrainedRecord& r) {
  return r.tsc + r.dur_ticks;
}

}  // namespace

TEST(TxTrace, RingWrapKeepsNewestRecords) {
  trace::set_enabled(true);
  constexpr std::size_t kExtra = 1000;
  constexpr std::size_t kTotal = trace::kRingCapacity + kExtra;
  std::uint32_t tid = 0;
  std::thread writer([&] {
    tid = trace::current_tid();
    for (std::size_t i = 0; i < kTotal; ++i) {
      trace::instant(trace::Ev::kTest, static_cast<std::uint32_t>(i));
    }
  });
  writer.join();

  const auto records = drain_for(tid);
  // The drain protocol withholds one slot on a wrapped ring: the slot the
  // writer may be mid-overwriting before its position bump is inside the
  // copied window, so only kRingCapacity - 1 records are provably intact.
  ASSERT_EQ(records.size(), trace::kRingCapacity - 1);
  // Exactly the newest records survive, in write order.
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].ev, trace::Ev::kTest);
    EXPECT_FALSE(records[i].span);
    EXPECT_EQ(records[i].arg, static_cast<std::uint32_t>(kExtra + 1 + i));
  }
}

TEST(TxTrace, EmitOrderIsMonotonePerThread) {
  trace::set_enabled(true);
  std::uint32_t tid = 0;
  std::thread writer([&] {
    tid = trace::current_tid();
    for (int i = 0; i < 2000; ++i) {
      if (i % 3 == 0) {
        trace::Span span(trace::Ev::kTest, 1);
        trace::instant(trace::Ev::kTest, 2);  // nested instant inside a span
      } else {
        trace::instant(trace::Ev::kTest, 3);
      }
    }
  });
  writer.join();

  const auto records = drain_for(tid);
  ASSERT_FALSE(records.empty());
  for (std::size_t i = 1; i < records.size(); ++i) {
    // Records are written at emit time (span end), so write order implies
    // non-decreasing emit timestamps; a span's start may precede earlier
    // instants, its end may not.
    EXPECT_LE(emit_time(records[i - 1]), emit_time(records[i]))
        << "at record " << i;
  }
}

TEST(TxTrace, DrainWhileWriting) {
  trace::set_enabled(true);
  std::atomic<std::uint32_t> tid{0xFFFFFFFFu};
  std::atomic<bool> done{false};
  std::thread writer([&] {
    tid.store(trace::current_tid());
    for (std::uint32_t i = 0; i < 100000; ++i) {
      trace::instant(trace::Ev::kTest, i & 0xFFFFFFu);
    }
    done.store(true);
  });
  while (tid.load() == 0xFFFFFFFFu) std::this_thread::yield();

  int drains = 0;
  while (!done.load() || drains == 0) {
    const auto records = drain_for(tid.load());
    ++drains;
    // Every drained record is intact (never a torn/partial slot) and the
    // retained window is contiguous in write order: args strictly increase.
    for (std::size_t i = 0; i < records.size(); ++i) {
      ASSERT_EQ(records[i].ev, trace::Ev::kTest);
      ASSERT_FALSE(records[i].span);
      if (i > 0) {
        ASSERT_GT(records[i].arg, records[i - 1].arg);
      }
    }
  }
  writer.join();
  EXPECT_GE(drains, 1);
}

TEST(TxTrace, EveryTxSpanHasExactlyOneOutcomeInstant) {
  trace::set_enabled(true);
  txf::stm::StmEnv env;
  constexpr int kThreads = 4;
  constexpr int kTxPerThread = 200;
  txf::stm::VBox<long> boxes[4];
  std::vector<std::uint32_t> tids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      tids[t] = trace::current_tid();
      for (int i = 0; i < kTxPerThread; ++i) {
        txf::stm::atomically(env, [&](txf::stm::Transaction& tx) {
          const int k = (t + i) % 4;
          boxes[k].put(tx, boxes[k].get(tx) + 1);
          boxes[(k + 1) % 4].get(tx);
        });
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto all = trace::drain_records();
  for (int t = 0; t < kThreads; ++t) {
    std::vector<trace::DrainedRecord> records;
    for (const auto& r : all)
      if (r.tid == tids[t]) records.push_back(r);
    int spans = 0;
    int outcomes = 0;
    for (std::size_t i = 0; i < records.size(); ++i) {
      const auto& r = records[i];
      if (r.ev == trace::Ev::kTxCommit || r.ev == trace::Ev::kTxAbort) {
        ++outcomes;
        continue;
      }
      if (r.ev != trace::Ev::kTx) continue;
      ++spans;
      // The outcome instant is emitted inside the attempt span, immediately
      // before the span record itself; it must be the preceding record and
      // fall within the span's [start, end] window.
      ASSERT_GT(i, 0u) << "tx span with no preceding record";
      const auto& prev = records[i - 1];
      ASSERT_TRUE(prev.ev == trace::Ev::kTxCommit ||
                  prev.ev == trace::Ev::kTxAbort)
          << "record before tx span is " << trace::ev_name(prev.ev);
      EXPECT_GE(prev.tsc, r.tsc);
      EXPECT_LE(prev.tsc, r.tsc + r.dur_ticks);
    }
    // One outcome per attempt span — commits on the last attempt, aborts on
    // the failed ones (kTxPerThread transactions => >= kTxPerThread spans;
    // the ring did not wrap at this volume).
    EXPECT_EQ(spans, outcomes);
    EXPECT_GE(spans, kTxPerThread);
  }
  // All committed increments arrived despite retries.
  txf::stm::atomically(env, [&](txf::stm::Transaction& tx) {
    long total = 0;
    for (auto& b : boxes) total += b.get(tx);
    EXPECT_EQ(total, static_cast<long>(kThreads) * kTxPerThread);
  });
}

TEST(TxTrace, DrainJsonIsWellFormedChromeTrace) {
  trace::set_enabled(true);
  {
    trace::Span span(trace::Ev::kTest, 5);
  }
  const std::string json = trace::drain_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\": \"B\""), std::string::npos)
      << "spans must be self-contained complete events";
}

#else  // !TXF_TRACE_ENABLED

TEST(TxTrace, CompiledOutIsInert) {
  EXPECT_FALSE(trace::enabled());
  trace::instant(trace::Ev::kTest);
  { trace::Span span(trace::Ev::kTest); }
  EXPECT_TRUE(trace::drain_records().empty());
  EXPECT_NE(trace::drain_json().find("\"traceEvents\": []"),
            std::string::npos);
}

#endif  // TXF_TRACE_ENABLED
