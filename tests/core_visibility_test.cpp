// Directed visibility and mode tests: ancVer freezing vs lazy refresh,
// serial execution mode, tree introspection accessors, and the
// read-your-writes rules within sub-transactions.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/api.hpp"

namespace {

using txf::core::atomically;
using txf::core::Config;
using txf::core::Runtime;
using txf::core::TxCtx;
using txf::stm::VBox;

TEST(Visibility, AncVerFreezesAtFirstTouch) {
  // Once the continuation reads ANY box, its visibility snapshot freezes:
  // a later commit by its future sibling must stay invisible during this
  // execution (it surfaces via validation instead).
  Runtime rt(Config{.pool_threads = 2});
  VBox<int> x(1);
  VBox<int> y(10);
  std::atomic<bool> cont_touched{false};
  std::atomic<int> x_seen_mid{-1};
  atomically(rt, [&](TxCtx& ctx) {
    auto f = ctx.submit([&](TxCtx& c) {
      while (!cont_touched.load(std::memory_order_acquire))
        std::this_thread::yield();
      x.put(c, 2);
      return 0;
    });
    (void)y.get(ctx);  // freeze the continuation's ancVer
    cont_touched.store(true, std::memory_order_release);
    f.get(ctx);  // future committed now...
    // ...but this execution's snapshot is frozen: stale read expected,
    // then validation repair. Record what we saw mid-flight.
    x_seen_mid.store(x.get(ctx));
    return 0;
  });
  // Whatever the path (restart or direct), the committed state is the
  // sequential one.
  EXPECT_EQ(x.peek_committed(), 2);
  // On the *final, successful* execution the read returned 2; a stale 1
  // could only have been observed by an execution that was then aborted.
  EXPECT_EQ(x_seen_mid.load(), 2);
}

TEST(Visibility, SubTxnReadsOwnWriteNotPredecessors) {
  Runtime rt(Config{.pool_threads = 2});
  VBox<int> x(0);
  const int seen = atomically(rt, [&](TxCtx& ctx) {
    auto f = ctx.submit([&](TxCtx& c) {
      x.put(c, 7);
      return x.get(c);  // read-your-own-write inside the future
    });
    return f.get(ctx);
  });
  EXPECT_EQ(seen, 7);
}

TEST(Visibility, ContinuationSeesRootPrefixThroughWriteSet) {
  // Root prefix writes live in the top-level write set (paper Alg. 2 lines
  // 21-22); both children must see them.
  Runtime rt(Config{.pool_threads = 2});
  VBox<int> x(0);
  const std::pair<int, int> seen = atomically(rt, [&](TxCtx& ctx) {
    x.put(ctx, 3);  // root prefix
    auto f = ctx.submit([&](TxCtx& c) { return x.get(c); });
    const int cont_view = x.get(ctx);
    return std::make_pair(f.get(ctx), cont_view);
  });
  EXPECT_EQ(seen.first, 3);
  EXPECT_EQ(seen.second, 3);
}

TEST(SerialMode, ProducesSequentialResultsWithoutThreads) {
  Runtime rt(Config{.pool_threads = 2});
  VBox<long> log(0);
  const auto executed_before = rt.pool().executed_count();
  atomically(rt, [&](TxCtx& ctx) {
    ctx.tree().set_serial();
    auto f1 = ctx.submit([&](TxCtx& c) {
      log.put(c, log.get(c) * 10 + 1);
      return 0;
    });
    log.put(ctx, log.get(ctx) * 10 + 2);
    auto f2 = ctx.submit([&](TxCtx& c) {
      log.put(c, log.get(c) * 10 + 3);
      return 0;
    });
    f1.get(ctx);
    f2.get(ctx);
  });
  EXPECT_EQ(log.peek_committed(), 123L);
  // Serial mode ran the futures inline: nothing was scheduled on the pool.
  EXPECT_EQ(rt.pool().executed_count(), executed_before);
}

TEST(SerialMode, FuturesAreImmediatelyReady) {
  Runtime rt(Config{.pool_threads = 2});
  VBox<int> x(5);
  atomically(rt, [&](TxCtx& ctx) {
    ctx.tree().set_serial();
    auto f = ctx.submit([&](TxCtx& c) { return x.get(c); });
    EXPECT_TRUE(f.ready());  // published at the submit point
    EXPECT_EQ(f.get(ctx), 5);
  });
}

TEST(Introspection, NodeCountGrowsPerSubmit) {
  Runtime rt(Config{.pool_threads = 2});
  VBox<int> x(0);
  std::size_t nodes_mid = 0;
  atomically(rt, [&](TxCtx& ctx) {
    auto f = ctx.submit([&](TxCtx& c) { return x.get(c); });
    f.get(ctx);
    nodes_mid = ctx.tree().node_count();
  });
  // Root + one future + one continuation.
  EXPECT_EQ(nodes_mid, 3u);
}

TEST(Introspection, CommittedRwCountTracksWriters) {
  Runtime rt(Config{.pool_threads = 2});
  VBox<int> x(0);
  std::uint32_t rw_after = 99;
  atomically(rt, [&](TxCtx& ctx) {
    auto writer = ctx.submit([&](TxCtx& c) {
      x.put(c, 1);
      return 0;
    });
    auto reader = ctx.submit([&](TxCtx& c) { return x.get(c); });
    writer.get(ctx);
    reader.get(ctx);
    rw_after = ctx.tree().committed_rw_subtxns();
  });
  // Exactly the writing future committed as read-write by then (readers
  // don't count; the continuations hadn't committed yet at observation).
  EXPECT_GE(rw_after, 1u);
}

TEST(Visibility, IndependentTreesDontShareTentativeState) {
  // A box locked tentatively by one tree must read as its committed value
  // for a different tree.
  Runtime rt(Config{.pool_threads = 2});
  VBox<int> x(42);
  std::atomic<bool> holding{false};
  std::atomic<bool> checked{false};
  std::thread holder([&] {
    atomically(rt, [&](TxCtx& ctx) {
      auto f = ctx.submit([&](TxCtx& c) {
        x.put(c, 99);  // tentative write: takes the in-box tree lock
        holding.store(true, std::memory_order_release);
        while (!checked.load(std::memory_order_acquire))
          std::this_thread::yield();
        return 0;
      });
      f.get(ctx);
    });
  });
  while (!holding.load(std::memory_order_acquire)) std::this_thread::yield();
  const int other_view = atomically(rt, [&](TxCtx& ctx) {
    return x.get(ctx);  // different tree: must see committed 42
  });
  checked.store(true, std::memory_order_release);
  holder.join();
  EXPECT_EQ(other_view, 42);
  EXPECT_EQ(x.peek_committed(), 99);
}

}  // namespace
