// Adaptive future scheduling (core/adaptive.hpp): hysteresis transitions
// driven through synthetic SiteStats, inline-elision correctness (results,
// strong ordering and exception propagation identical across every
// SchedulingMode x RestartPolicy combination), end-to-end demotion of
// unprofitable sites, and chaos runs with the core.adaptive.decide
// failpoint flipping decisions.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/adaptive.hpp"
#include "core/api.hpp"
#include "core/fcc.hpp"
#include "util/failpoint.hpp"

namespace {

using txf::core::atomically;
using txf::core::Config;
using txf::core::RestartPolicy;
using txf::core::Runtime;
using txf::core::SchedulingMode;
using txf::core::TxCtx;
using txf::core::adaptive::AdaptiveScheduler;
using txf::core::adaptive::DecideResult;
using txf::core::adaptive::Outcome;
using txf::core::adaptive::Params;
using txf::core::adaptive::RunKind;
using txf::core::adaptive::SiteState;
using txf::core::adaptive::SiteStats;
using txf::obs::AbortCause;
using txf::stm::VBox;
namespace fp = txf::util::fp;

// Small synthetic parameters: transitions happen within a handful of
// samples so the state machine can be walked exhaustively.
Params test_params() {
  Params p;
  p.inline_threshold_ns = 1000;
  p.min_samples = 4;
  p.demote_after = 3;
  p.harden_after = 4;
  p.promote_after = 2;
  p.reprobe_period = 8;
  p.conflict_demote_x1024 = 154;  // ~15% conflict rate
  p.conflict_promote_x1024 = 61;  // ~6%
  p.ordered_reprobe_period = 4;
  p.ordered_harden_after = 3;
  return p;
}

// ---------------------------------------------------------------------------
// Hysteresis state machine (synthetic SiteStats, no Runtime)
// ---------------------------------------------------------------------------

TEST(AdaptiveHysteresis, FreshSiteRunsParallel) {
  SiteStats s;
  const Params p = test_params();
  EXPECT_EQ(s.site_state(), SiteState::kParallel);
  const DecideResult d = s.decide(p);
  EXPECT_FALSE(d.run_inline);
  EXPECT_FALSE(d.probe);
}

TEST(AdaptiveHysteresis, MinSamplesGateBlocksEarlyDemotion) {
  SiteStats s;
  const Params p = test_params();
  // Unprofitable (below-threshold) samples, but fewer than min_samples:
  // the site must stay parallel even though the score is already past the
  // demotion bar — one-shot sites may *need* real concurrency.
  for (std::uint32_t i = 0; i < p.min_samples - 1; ++i) {
    s.note_body_sample(p, 10, RunKind::kParallel, p.inline_threshold_ns);
    EXPECT_EQ(s.site_state(), SiteState::kParallel);
  }
  // The gate lifts with the min_samples-th sample.
  const Outcome out =
      s.note_body_sample(p, 10, RunKind::kParallel, p.inline_threshold_ns);
  EXPECT_TRUE(out.demoted);
  EXPECT_EQ(s.site_state(), SiteState::kProbation);
}

void drive_to_probation(SiteStats& s, const Params& p) {
  for (std::uint32_t i = 0; i < p.min_samples + p.demote_after; ++i) {
    s.note_body_sample(p, 10, RunKind::kParallel, p.inline_threshold_ns);
    if (s.site_state() == SiteState::kProbation) return;
  }
  FAIL() << "site never demoted to probation";
}

TEST(AdaptiveHysteresis, ProbationHardensToInline) {
  SiteStats s;
  const Params p = test_params();
  drive_to_probation(s, p);
  for (std::uint32_t i = 0; i < p.harden_after; ++i) {
    EXPECT_EQ(s.site_state(), SiteState::kProbation);
    s.note_body_sample(p, 10, RunKind::kInline, p.inline_threshold_ns);
  }
  EXPECT_EQ(s.site_state(), SiteState::kInline);
}

TEST(AdaptiveHysteresis, ProbationPromotesOnProfitableSamples) {
  SiteStats s;
  const Params p = test_params();
  drive_to_probation(s, p);
  for (std::uint32_t i = 0; i < p.promote_after; ++i) {
    s.note_body_sample(p, 10 * p.inline_threshold_ns, RunKind::kInline,
                       p.inline_threshold_ns);
  }
  EXPECT_EQ(s.site_state(), SiteState::kParallel);
}

TEST(AdaptiveHysteresis, InlineSiteReprobesPeriodically) {
  SiteStats s;
  const Params p = test_params();
  s.state.store(static_cast<std::uint8_t>(SiteState::kInline));
  for (std::uint32_t i = 1; i < p.reprobe_period; ++i) {
    const DecideResult d = s.decide(p);
    EXPECT_TRUE(d.run_inline) << "decision " << i;
    EXPECT_FALSE(d.probe);
  }
  const DecideResult probe = s.decide(p);
  EXPECT_FALSE(probe.run_inline);
  EXPECT_TRUE(probe.probe);
  // A probe that proves itself profitable promotes the site to probation.
  const Outcome out = s.note_body_sample(p, 10 * p.inline_threshold_ns,
                                         RunKind::kParallel,
                                         p.inline_threshold_ns);
  EXPECT_TRUE(out.promoted);
  EXPECT_EQ(s.site_state(), SiteState::kProbation);
}

// The fig5b regression (ISSUE 8 satellite 1): a site whose bodies look
// thoroughly profitable — every sample lands a +1, keeping the score
// pinned at its ceiling where conflict "-2"s can never drag it to the
// demotion bar — must STILL demote when its parallel runs keep dying to
// conflicts. The conflict EWMA is an independent input: chargeable aborts
// pump it past the demote bar within a handful of windows, and the site
// moves to the ordered lane regardless of the score.
TEST(AdaptiveHysteresis, ConflictChargesDemoteProfitableSiteToOrdered) {
  SiteStats s;
  const Params p = test_params();
  // Profitable parallel samples: score saturates at +promote_after and
  // conflict_obs clears the min_samples gate (each clean run is an
  // observation of "parallel did NOT conflict").
  for (std::uint32_t i = 0; i < p.min_samples; ++i)
    s.note_body_sample(p, 10 * p.inline_threshold_ns, RunKind::kParallel,
                       p.inline_threshold_ns);
  EXPECT_EQ(s.site_state(), SiteState::kParallel);
  // Non-conflict aborts are recorded but carry no scheduling signal.
  s.note_abort(p, AbortCause::kStalled);
  EXPECT_EQ(s.site_state(), SiteState::kParallel);
  EXPECT_EQ(s.conflict_rate_x1024(), 0u);
  // Chargeable conflicts pump the EWMA ~alpha=1/8 toward 1024: from zero,
  // the second charge (e = 240) crosses the ~15% demote bar. N = 2 windows,
  // far inside the "within N windows" regression bound.
  Outcome out = s.note_abort(p, AbortCause::kTreeOrder);
  EXPECT_FALSE(out.demoted);
  EXPECT_EQ(s.site_state(), SiteState::kParallel);
  out = s.note_abort(p, AbortCause::kWriteWrite);
  EXPECT_TRUE(out.demoted);
  EXPECT_TRUE(out.conflict);
  EXPECT_EQ(s.site_state(), SiteState::kOrdered);
  EXPECT_TRUE(s.conflict_demoted.load());
  EXPECT_GE(s.conflict_rate_x1024(), p.conflict_demote_x1024);
  EXPECT_EQ(s.aborts[static_cast<std::size_t>(AbortCause::kTreeOrder)].load(),
            1u);
  EXPECT_EQ(s.abort_total.load(), 3u);
}

void drive_to_ordered(SiteStats& s, const Params& p) {
  for (std::uint32_t i = 0; i < p.min_samples; ++i)
    s.note_body_sample(p, 10 * p.inline_threshold_ns, RunKind::kParallel,
                       p.inline_threshold_ns);
  for (std::uint32_t i = 0; i < p.min_samples; ++i) {
    s.note_abort(p, AbortCause::kTreeOrder);
    if (s.site_state() == SiteState::kOrdered) return;
  }
  FAIL() << "site never demoted to ordered";
}

TEST(AdaptiveHysteresis, OrderedLaneDecidesOrderedWithSparseProbes) {
  SiteStats s;
  const Params p = test_params();
  drive_to_ordered(s, p);
  // Ordered decisions until the (denser) re-probe cadence fires a real
  // parallel probe to re-measure the conflict rate.
  for (std::uint32_t i = 1; i < p.ordered_reprobe_period; ++i) {
    const DecideResult d = s.decide(p);
    EXPECT_FALSE(d.run_inline);
    EXPECT_TRUE(d.ordered) << "decision " << i;
    EXPECT_FALSE(d.probe);
  }
  const DecideResult probe = s.decide(p);
  EXPECT_FALSE(probe.run_inline);
  EXPECT_FALSE(probe.ordered);
  EXPECT_TRUE(probe.probe);
}

TEST(AdaptiveHysteresis, OrderedHardensToInlineOnPersistentConflicts) {
  SiteStats s;
  const Params p = test_params();
  drive_to_ordered(s, p);
  // Conflicts that survive sibling serialization are inter-tree; after
  // ordered_harden_after of them the ordered lane buys nothing and the
  // site hardens to fully-inline co-location.
  Outcome out;
  for (std::uint32_t i = 0; i < p.ordered_harden_after; ++i) {
    EXPECT_EQ(s.site_state(), SiteState::kOrdered);
    out = s.note_abort(p, AbortCause::kReadValidation);
  }
  EXPECT_TRUE(out.demoted);
  EXPECT_TRUE(out.conflict);
  EXPECT_EQ(s.site_state(), SiteState::kInline);
  // Still conflict-demoted: the denser re-probe cadence applies.
  EXPECT_TRUE(s.conflict_demoted.load());
}

TEST(AdaptiveHysteresis, OrderedRecoversToParallelAfterCleanProbes) {
  SiteStats s;
  const Params p = test_params();
  drive_to_ordered(s, p);
  // Clean parallel probes decay the conflict EWMA ~12% per probe; once it
  // falls to the promote bar the burst is declared over and the site gets
  // its parallelism back. Bursty contention is not a permanent blacklist.
  Outcome out;
  for (int i = 0; i < 64 && s.site_state() == SiteState::kOrdered; ++i) {
    out = s.note_body_sample(p, 10 * p.inline_threshold_ns, RunKind::kParallel,
                             p.inline_threshold_ns);
  }
  EXPECT_TRUE(out.promoted);
  EXPECT_TRUE(out.conflict);
  EXPECT_EQ(s.site_state(), SiteState::kParallel);
  EXPECT_FALSE(s.conflict_demoted.load());
  EXPECT_LE(s.conflict_rate_x1024(), p.conflict_promote_x1024);
}

TEST(AdaptiveHysteresis, OrderedRunsNeverMoveTheConflictEwma) {
  SiteStats s;
  const Params p = test_params();
  drive_to_ordered(s, p);
  const std::uint32_t e = s.conflict_rate_x1024();
  // Ordered (and inline) completions are sibling-conflict-free by
  // construction; only parallel-lane evidence may decay the estimate,
  // else the ordered lane would insta-promote itself.
  for (int i = 0; i < 32; ++i)
    s.note_body_sample(p, 10 * p.inline_threshold_ns, RunKind::kOrdered,
                       p.inline_threshold_ns);
  EXPECT_EQ(s.conflict_rate_x1024(), e);
  EXPECT_EQ(s.site_state(), SiteState::kOrdered);
  EXPECT_EQ(s.ordered_runs.load(), 32u);
}

TEST(AdaptiveHysteresis, InlinePromotionGatedOnConflictDecay) {
  SiteStats s;
  const Params p = test_params();
  drive_to_ordered(s, p);
  while (s.site_state() == SiteState::kOrdered)
    s.note_abort(p, AbortCause::kTreeOrder);
  EXPECT_EQ(s.site_state(), SiteState::kInline);
  // A profitable probe alone must NOT promote while the conflict estimate
  // still sits above the demote bar — re-promoting would just re-enter the
  // demote-on-first-charge cycle.
  s.note_body_sample(p, 10 * p.inline_threshold_ns, RunKind::kParallel,
                     p.inline_threshold_ns);
  if (s.conflict_rate_x1024() >= p.conflict_demote_x1024) {
    EXPECT_EQ(s.site_state(), SiteState::kInline);
  }
  // Once enough clean probes decay the estimate under the bar, the next
  // profitable probe promotes.
  for (int i = 0; i < 64 && s.site_state() == SiteState::kInline; ++i)
    s.note_body_sample(p, 10 * p.inline_threshold_ns, RunKind::kParallel,
                       p.inline_threshold_ns);
  EXPECT_EQ(s.site_state(), SiteState::kProbation);
}

// ---------------------------------------------------------------------------
// AdaptiveScheduler (site table, fixed modes)
// ---------------------------------------------------------------------------

TEST(AdaptiveScheduler_, SiteTableSeparatesKeys) {
  txf::sched::ThreadPool pool(1);
  Config cfg;
  cfg.scheduling = SchedulingMode::kAdaptive;
  AdaptiveScheduler sched(cfg, pool);
  static const char a = 0, b = 0;
  SiteStats* sa = sched.site_for(&a);
  SiteStats* sb = sched.site_for(&b);
  ASSERT_NE(sa, nullptr);
  ASSERT_NE(sb, nullptr);
  EXPECT_NE(sa, sb);
  EXPECT_EQ(sched.site_for(&a), sa);  // stable on re-lookup
  EXPECT_EQ(sched.site_count(), 2u);
}

TEST(AdaptiveScheduler_, FixedModesShortCircuit) {
  txf::sched::ThreadPool pool(1);
  static const char key = 0;
  {
    Config cfg;
    cfg.scheduling = SchedulingMode::kAlwaysParallel;
    AdaptiveScheduler sched(cfg, pool);
    const AdaptiveScheduler::Decision d = sched.decide(&key);
    EXPECT_FALSE(d.run_inline);
    EXPECT_EQ(d.site, nullptr);
    EXPECT_EQ(sched.site_count(), 0u);
  }
  {
    Config cfg;
    cfg.scheduling = SchedulingMode::kAlwaysInline;
    AdaptiveScheduler sched(cfg, pool);
    const AdaptiveScheduler::Decision d = sched.decide(&key);
    EXPECT_TRUE(d.run_inline);
    EXPECT_EQ(d.site, nullptr);
  }
  {
    Config cfg;
    cfg.scheduling = SchedulingMode::kAlwaysOrdered;
    AdaptiveScheduler sched(cfg, pool);
    const AdaptiveScheduler::Decision d = sched.decide(&key);
    EXPECT_FALSE(d.run_inline);
    EXPECT_TRUE(d.ordered);
    EXPECT_EQ(d.site, nullptr);
  }
}

TEST(AdaptiveScheduler_, FootprintBiasScalesThreshold) {
  txf::sched::ThreadPool pool(1);
  Config cfg;
  cfg.scheduling = SchedulingMode::kAdaptive;
  AdaptiveScheduler sched(cfg, pool);
  static const char key = 0;
  SiteStats* site = sched.site_for(&key);
  const std::uint64_t base = sched.effective_threshold_for(site);
  EXPECT_EQ(base, sched.effective_threshold());  // no footprint yet
  // Steady 4-stripe commits converge the width EWMA to 4 and scale the
  // profitability bar 4x (the cap): wide-footprint sites must prove much
  // bigger bodies before parallel speculation pays.
  for (int i = 0; i < 64; ++i) sched.note_commit_footprint({site}, 4);
  EXPECT_EQ(sched.effective_threshold_for(site), 4 * base);
  EXPECT_EQ(sched.footprint_commits(), 64u);
  EXPECT_EQ(sched.footprint_multi(), 64u);
  EXPECT_EQ(sched.footprint_single(), 0u);
  // A single-stripe site keeps the unscaled bar.
  static const char key2 = 0;
  SiteStats* narrow = sched.site_for(&key2);
  sched.note_commit_footprint({narrow}, 1);
  EXPECT_EQ(sched.effective_threshold_for(narrow), base);
  EXPECT_EQ(sched.footprint_single(), 1u);
}

// ---------------------------------------------------------------------------
// Elision correctness: all modes produce the sequential execution
// ---------------------------------------------------------------------------

// Strong-ordering oracle (pre-order future1, future2, continuation = 1234),
// with a nested submit inside the first future (oracle digit order 1-2-5-3-4:
// f1 runs, its nested future runs before f1's continuation tail).
long chain_result(Runtime& rt) {
  VBox<long> acc(1);
  return atomically(rt, [&](TxCtx& ctx) {
    auto f1 = ctx.submit([&](TxCtx& c) {
      acc.put(c, acc.get(c) * 10 + 2);
      auto nested = c.submit([&](TxCtx& cc) {
        acc.put(cc, acc.get(cc) * 10 + 5);
        return 0;
      });
      nested.get(c);
      return 0;
    });
    auto f2 = ctx.submit([&](TxCtx& c) {
      acc.put(c, acc.get(c) * 10 + 3);
      return 0;
    });
    f1.get(ctx);
    f2.get(ctx);
    acc.put(ctx, acc.get(ctx) * 10 + 4);
    return acc.get(ctx);
  });
}

constexpr long kChainOracle = 12534;

class SchedulingMatrix
    : public ::testing::TestWithParam<std::tuple<SchedulingMode,
                                                 RestartPolicy>> {
 protected:
  // TSan cannot follow the fiber stack restore that kPartialRollback runs
  // on (see the quarantine note in tests/CMakeLists.txt); the tree-restart
  // half of the matrix still runs sanitized.
  void SetUp() override {
    if (std::get<1>(GetParam()) == RestartPolicy::kPartialRollback &&
        txf::core::kFibersUnsafeUnderTsan) {
      GTEST_SKIP() << "fiber restore is incompatible with TSan";
    }
  }
};

TEST_P(SchedulingMatrix, OrderingSemanticsHold) {
  Config cfg;
  cfg.pool_threads = 2;
  cfg.scheduling = std::get<0>(GetParam());
  cfg.restart = std::get<1>(GetParam());
  Runtime rt(cfg);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(chain_result(rt), kChainOracle);
  // Every submit counts, however it was scheduled: 3 per transaction.
  EXPECT_EQ(rt.stats().futures_submitted.load(), 30u);
}

TEST_P(SchedulingMatrix, ExceptionPropagationIdentical) {
  Config cfg;
  cfg.pool_threads = 2;
  cfg.scheduling = std::get<0>(GetParam());
  cfg.restart = std::get<1>(GetParam());
  Runtime rt(cfg);
  VBox<long> x(0);
  try {
    atomically(rt, [&](TxCtx& ctx) {
      auto f = ctx.submit([&](TxCtx& c) {
        x.put(c, 99);
        throw std::runtime_error("future body failed");
        return 0;  // unreachable
      });
      return f.get(ctx);
    });
    FAIL() << "exception did not propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "future body failed");
  }
  // The aborted transaction left no trace.
  EXPECT_EQ(x.peek_committed(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, SchedulingMatrix,
    ::testing::Combine(::testing::Values(SchedulingMode::kAlwaysParallel,
                                         SchedulingMode::kAlwaysInline,
                                         SchedulingMode::kAlwaysOrdered,
                                         SchedulingMode::kAdaptive),
                       ::testing::Values(RestartPolicy::kTreeRestart,
                                         RestartPolicy::kPartialRollback)));

TEST(AdaptiveElision, InlineModeStillSerializesCrossTreeConflicts) {
  // Elision changes scheduling, not isolation: concurrent top-level
  // transactions with all-inline futures still serialize their increments.
  Config cfg;
  cfg.pool_threads = 2;
  cfg.scheduling = SchedulingMode::kAlwaysInline;
  Runtime rt(cfg);
  VBox<long> counter(0);
  constexpr int kPerThread = 100;
  auto worker = [&] {
    for (int i = 0; i < kPerThread; ++i) {
      atomically(rt, [&](TxCtx& ctx) {
        auto f = ctx.submit([&](TxCtx& c) { return counter.get(c) + 1; });
        counter.put(ctx, f.get(ctx));
      });
    }
  };
  std::thread t1(worker), t2(worker);
  t1.join();
  t2.join();
  EXPECT_EQ(counter.peek_committed(), 2L * kPerThread);
}

TEST(AdaptiveElision, OrderedModeStillSerializesCrossTreeConflicts) {
  // The ordered lane changes scheduling, not isolation: a real split whose
  // body runs synchronously still conflicts (and serializes) against
  // concurrent top-level trees exactly like the parallel lane.
  Config cfg;
  cfg.pool_threads = 2;
  cfg.scheduling = SchedulingMode::kAlwaysOrdered;
  Runtime rt(cfg);
  VBox<long> counter(0);
  constexpr int kPerThread = 100;
  auto worker = [&] {
    for (int i = 0; i < kPerThread; ++i) {
      atomically(rt, [&](TxCtx& ctx) {
        auto f = ctx.submit([&](TxCtx& c) { return counter.get(c) + 1; });
        counter.put(ctx, f.get(ctx));
      });
    }
  };
  std::thread t1(worker), t2(worker);
  t1.join();
  t2.join();
  EXPECT_EQ(counter.peek_committed(), 2L * kPerThread);
}

// ---------------------------------------------------------------------------
// End-to-end adaptation
// ---------------------------------------------------------------------------

TEST(AdaptiveElision, UnprofitableSiteDemotesAndStaysCorrect) {
  Config cfg;
  cfg.pool_threads = 2;
  cfg.scheduling = SchedulingMode::kAdaptive;
  // Profitability bar far above anything a trivial body can reach, so
  // demotion is deterministic regardless of machine speed.
  cfg.adaptive_inline_threshold_ns = 100'000'000;
  Runtime rt(cfg);
  VBox<long> sum(0);
  static const char site_tag = 0;
  constexpr int kIter = 100;
  for (int i = 0; i < kIter; ++i) {
    atomically(rt, [&](TxCtx& ctx) {
      auto f = ctx.submit_at(&site_tag,
                             [&](TxCtx& c) { return sum.get(c) + 1; });
      sum.put(ctx, f.get(ctx));
    });
  }
  EXPECT_EQ(sum.peek_committed(), kIter);
  SiteStats* site = rt.adaptive().site_for(&site_tag);
  ASSERT_NE(site, nullptr);
  EXPECT_NE(site->site_state(), SiteState::kParallel);
  EXPECT_GT(site->inline_runs.load(), 0u);
  EXPECT_GT(site->parallel_runs.load(), 0u);  // the pre-demotion samples
  EXPECT_EQ(site->submits.load(), static_cast<std::uint64_t>(kIter));
}

TEST(AdaptiveElision, ChaosDecisionFlipsAreHarmless) {
  // Strong ordering makes every decision sequence semantically valid; a
  // chaos schedule that flips every other verdict (parallel and ordered ->
  // inline, inline -> parallel) must be undetectable in results —
  // whichever mode the flip perturbs.
  for (const SchedulingMode mode :
       {SchedulingMode::kAdaptive, SchedulingMode::kAlwaysOrdered}) {
    Config cfg;
    cfg.pool_threads = 2;
    cfg.scheduling = mode;
    cfg.chaos.add("core.adaptive.decide", fp::Action::kFail, 2);
    Runtime rt(cfg);
    for (int i = 0; i < 25; ++i) EXPECT_EQ(chain_result(rt), kChainOracle);
    fp::FailPoint* site =
        fp::Controller::instance().find("core.adaptive.decide");
    ASSERT_NE(site, nullptr);
    EXPECT_GT(site->fires(), 0u);
  }
}

TEST(AdaptiveElision, ContendedSiteDemotesEndToEnd) {
  // End-to-end version of the fig5b regression: two threads hammer
  // transactions whose sibling futures read-modify-write the same boxes
  // through one submit site. The site's parallel runs keep dying to
  // conflicts, so the conflict EWMA must demote it (kOrdered or beyond)
  // even though the controller's profitability bar is set to zero — i.e.
  // every body "looks profitable" and the score alone would never demote.
  Config cfg;
  cfg.pool_threads = 4;
  cfg.scheduling = SchedulingMode::kAdaptive;
  cfg.adaptive_inline_threshold_ns = 0;  // profitability signal: all +1
  cfg.adaptive_min_samples = 4;
  Runtime rt(cfg);
  VBox<long> hot_a(0);
  VBox<long> hot_b(0);
  static const char site_tag = 0;
  constexpr int kPerThread = 150;
  auto worker = [&] {
    for (int i = 0; i < kPerThread; ++i) {
      atomically(rt, [&](TxCtx& ctx) {
        auto f = ctx.submit_at(&site_tag, [&](TxCtx& c) {
          hot_a.put(c, hot_a.get(c) + 1);
          return 0;
        });
        // The continuation races the sibling on the same hot boxes.
        hot_b.put(ctx, hot_a.get(ctx) + hot_b.get(ctx));
        f.get(ctx);
      });
    }
  };
  std::thread t1(worker), t2(worker);
  t1.join();
  t2.join();
  EXPECT_EQ(hot_a.peek_committed(), 2L * kPerThread);
  SiteStats* site = rt.adaptive().site_for(&site_tag);
  ASSERT_NE(site, nullptr);
  // The site must have left pure-parallel on the conflict signal. (It may
  // sit in kOrdered, or have hardened further, or be mid-recovery in
  // kProbation — what it must NOT be is "still kParallel with a pinned
  // profitable score", the fig5b failure mode.)
  EXPECT_GT(site->conflict_rate_x1024(), 0u);
  EXPECT_GT(site->abort_total.load(), 0u);
}

}  // namespace
