// Adaptive future scheduling (core/adaptive.hpp): hysteresis transitions
// driven through synthetic SiteStats, inline-elision correctness (results,
// strong ordering and exception propagation identical across every
// SchedulingMode x RestartPolicy combination), end-to-end demotion of
// unprofitable sites, and chaos runs with the core.adaptive.decide
// failpoint flipping decisions.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/adaptive.hpp"
#include "core/api.hpp"
#include "core/fcc.hpp"
#include "util/failpoint.hpp"

namespace {

using txf::core::atomically;
using txf::core::Config;
using txf::core::RestartPolicy;
using txf::core::Runtime;
using txf::core::SchedulingMode;
using txf::core::TxCtx;
using txf::core::adaptive::AdaptiveScheduler;
using txf::core::adaptive::DecideResult;
using txf::core::adaptive::Outcome;
using txf::core::adaptive::Params;
using txf::core::adaptive::SiteState;
using txf::core::adaptive::SiteStats;
using txf::obs::AbortCause;
using txf::stm::VBox;
namespace fp = txf::util::fp;

// Small synthetic parameters: transitions happen within a handful of
// samples so the state machine can be walked exhaustively.
Params test_params() {
  Params p;
  p.inline_threshold_ns = 1000;
  p.min_samples = 4;
  p.demote_after = 3;
  p.harden_after = 4;
  p.promote_after = 2;
  p.reprobe_period = 8;
  return p;
}

// ---------------------------------------------------------------------------
// Hysteresis state machine (synthetic SiteStats, no Runtime)
// ---------------------------------------------------------------------------

TEST(AdaptiveHysteresis, FreshSiteRunsParallel) {
  SiteStats s;
  const Params p = test_params();
  EXPECT_EQ(s.site_state(), SiteState::kParallel);
  const DecideResult d = s.decide(p);
  EXPECT_FALSE(d.run_inline);
  EXPECT_FALSE(d.probe);
}

TEST(AdaptiveHysteresis, MinSamplesGateBlocksEarlyDemotion) {
  SiteStats s;
  const Params p = test_params();
  // Unprofitable (below-threshold) samples, but fewer than min_samples:
  // the site must stay parallel even though the score is already past the
  // demotion bar — one-shot sites may *need* real concurrency.
  for (std::uint32_t i = 0; i < p.min_samples - 1; ++i) {
    s.note_body_sample(p, 10, /*parallel=*/true, p.inline_threshold_ns);
    EXPECT_EQ(s.site_state(), SiteState::kParallel);
  }
  // The gate lifts with the min_samples-th sample.
  const Outcome out =
      s.note_body_sample(p, 10, /*parallel=*/true, p.inline_threshold_ns);
  EXPECT_TRUE(out.demoted);
  EXPECT_EQ(s.site_state(), SiteState::kProbation);
}

void drive_to_probation(SiteStats& s, const Params& p) {
  for (std::uint32_t i = 0; i < p.min_samples + p.demote_after; ++i) {
    s.note_body_sample(p, 10, true, p.inline_threshold_ns);
    if (s.site_state() == SiteState::kProbation) return;
  }
  FAIL() << "site never demoted to probation";
}

TEST(AdaptiveHysteresis, ProbationHardensToInline) {
  SiteStats s;
  const Params p = test_params();
  drive_to_probation(s, p);
  for (std::uint32_t i = 0; i < p.harden_after; ++i) {
    EXPECT_EQ(s.site_state(), SiteState::kProbation);
    s.note_body_sample(p, 10, /*parallel=*/false, p.inline_threshold_ns);
  }
  EXPECT_EQ(s.site_state(), SiteState::kInline);
}

TEST(AdaptiveHysteresis, ProbationPromotesOnProfitableSamples) {
  SiteStats s;
  const Params p = test_params();
  drive_to_probation(s, p);
  for (std::uint32_t i = 0; i < p.promote_after; ++i) {
    s.note_body_sample(p, 10 * p.inline_threshold_ns, /*parallel=*/false,
                       p.inline_threshold_ns);
  }
  EXPECT_EQ(s.site_state(), SiteState::kParallel);
}

TEST(AdaptiveHysteresis, InlineSiteReprobesPeriodically) {
  SiteStats s;
  const Params p = test_params();
  s.state.store(static_cast<std::uint8_t>(SiteState::kInline));
  for (std::uint32_t i = 1; i < p.reprobe_period; ++i) {
    const DecideResult d = s.decide(p);
    EXPECT_TRUE(d.run_inline) << "decision " << i;
    EXPECT_FALSE(d.probe);
  }
  const DecideResult probe = s.decide(p);
  EXPECT_FALSE(probe.run_inline);
  EXPECT_TRUE(probe.probe);
  // A probe that proves itself profitable promotes the site to probation.
  const Outcome out = s.note_body_sample(p, 10 * p.inline_threshold_ns,
                                         /*parallel=*/true,
                                         p.inline_threshold_ns);
  EXPECT_TRUE(out.promoted);
  EXPECT_EQ(s.site_state(), SiteState::kProbation);
}

TEST(AdaptiveHysteresis, OrderConflictAbortsCarryDoublePenalty) {
  SiteStats s;
  const Params p = test_params();
  // Saturate the score upward with profitable samples (clamped at
  // +promote_after; the site is parallel so no promotion happens).
  for (std::uint32_t i = 0; i < p.min_samples; ++i)
    s.note_body_sample(p, 10 * p.inline_threshold_ns, true,
                       p.inline_threshold_ns);
  EXPECT_EQ(s.site_state(), SiteState::kParallel);
  // Non-order aborts are recorded but carry no scheduling signal.
  s.note_abort(p, AbortCause::kWriteWrite);
  EXPECT_EQ(s.site_state(), SiteState::kParallel);
  // Order conflicts count -2 each: from the +2 ceiling, three of them
  // cross the -3 demotion bar.
  s.note_abort(p, AbortCause::kTreeOrder);
  s.note_abort(p, AbortCause::kReadValidation);
  const Outcome out = s.note_abort(p, AbortCause::kTreeOrder);
  EXPECT_TRUE(out.demoted);
  EXPECT_EQ(s.site_state(), SiteState::kProbation);
  EXPECT_EQ(s.aborts[static_cast<std::size_t>(AbortCause::kTreeOrder)].load(),
            2u);
  EXPECT_EQ(s.abort_total.load(), 4u);
}

// ---------------------------------------------------------------------------
// AdaptiveScheduler (site table, fixed modes)
// ---------------------------------------------------------------------------

TEST(AdaptiveScheduler_, SiteTableSeparatesKeys) {
  txf::sched::ThreadPool pool(1);
  Config cfg;
  cfg.scheduling = SchedulingMode::kAdaptive;
  AdaptiveScheduler sched(cfg, pool);
  static const char a = 0, b = 0;
  SiteStats* sa = sched.site_for(&a);
  SiteStats* sb = sched.site_for(&b);
  ASSERT_NE(sa, nullptr);
  ASSERT_NE(sb, nullptr);
  EXPECT_NE(sa, sb);
  EXPECT_EQ(sched.site_for(&a), sa);  // stable on re-lookup
  EXPECT_EQ(sched.site_count(), 2u);
}

TEST(AdaptiveScheduler_, FixedModesShortCircuit) {
  txf::sched::ThreadPool pool(1);
  static const char key = 0;
  {
    Config cfg;
    cfg.scheduling = SchedulingMode::kAlwaysParallel;
    AdaptiveScheduler sched(cfg, pool);
    const AdaptiveScheduler::Decision d = sched.decide(&key);
    EXPECT_FALSE(d.run_inline);
    EXPECT_EQ(d.site, nullptr);
    EXPECT_EQ(sched.site_count(), 0u);
  }
  {
    Config cfg;
    cfg.scheduling = SchedulingMode::kAlwaysInline;
    AdaptiveScheduler sched(cfg, pool);
    const AdaptiveScheduler::Decision d = sched.decide(&key);
    EXPECT_TRUE(d.run_inline);
    EXPECT_EQ(d.site, nullptr);
  }
}

// ---------------------------------------------------------------------------
// Elision correctness: all modes produce the sequential execution
// ---------------------------------------------------------------------------

// Strong-ordering oracle (pre-order future1, future2, continuation = 1234),
// with a nested submit inside the first future (oracle digit order 1-2-5-3-4:
// f1 runs, its nested future runs before f1's continuation tail).
long chain_result(Runtime& rt) {
  VBox<long> acc(1);
  return atomically(rt, [&](TxCtx& ctx) {
    auto f1 = ctx.submit([&](TxCtx& c) {
      acc.put(c, acc.get(c) * 10 + 2);
      auto nested = c.submit([&](TxCtx& cc) {
        acc.put(cc, acc.get(cc) * 10 + 5);
        return 0;
      });
      nested.get(c);
      return 0;
    });
    auto f2 = ctx.submit([&](TxCtx& c) {
      acc.put(c, acc.get(c) * 10 + 3);
      return 0;
    });
    f1.get(ctx);
    f2.get(ctx);
    acc.put(ctx, acc.get(ctx) * 10 + 4);
    return acc.get(ctx);
  });
}

constexpr long kChainOracle = 12534;

class SchedulingMatrix
    : public ::testing::TestWithParam<std::tuple<SchedulingMode,
                                                 RestartPolicy>> {
 protected:
  // TSan cannot follow the fiber stack restore that kPartialRollback runs
  // on (see the quarantine note in tests/CMakeLists.txt); the tree-restart
  // half of the matrix still runs sanitized.
  void SetUp() override {
    if (std::get<1>(GetParam()) == RestartPolicy::kPartialRollback &&
        txf::core::kFibersUnsafeUnderTsan) {
      GTEST_SKIP() << "fiber restore is incompatible with TSan";
    }
  }
};

TEST_P(SchedulingMatrix, OrderingSemanticsHold) {
  Config cfg;
  cfg.pool_threads = 2;
  cfg.scheduling = std::get<0>(GetParam());
  cfg.restart = std::get<1>(GetParam());
  Runtime rt(cfg);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(chain_result(rt), kChainOracle);
  // Every submit counts, however it was scheduled: 3 per transaction.
  EXPECT_EQ(rt.stats().futures_submitted.load(), 30u);
}

TEST_P(SchedulingMatrix, ExceptionPropagationIdentical) {
  Config cfg;
  cfg.pool_threads = 2;
  cfg.scheduling = std::get<0>(GetParam());
  cfg.restart = std::get<1>(GetParam());
  Runtime rt(cfg);
  VBox<long> x(0);
  try {
    atomically(rt, [&](TxCtx& ctx) {
      auto f = ctx.submit([&](TxCtx& c) {
        x.put(c, 99);
        throw std::runtime_error("future body failed");
        return 0;  // unreachable
      });
      return f.get(ctx);
    });
    FAIL() << "exception did not propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "future body failed");
  }
  // The aborted transaction left no trace.
  EXPECT_EQ(x.peek_committed(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, SchedulingMatrix,
    ::testing::Combine(::testing::Values(SchedulingMode::kAlwaysParallel,
                                         SchedulingMode::kAlwaysInline,
                                         SchedulingMode::kAdaptive),
                       ::testing::Values(RestartPolicy::kTreeRestart,
                                         RestartPolicy::kPartialRollback)));

TEST(AdaptiveElision, InlineModeStillSerializesCrossTreeConflicts) {
  // Elision changes scheduling, not isolation: concurrent top-level
  // transactions with all-inline futures still serialize their increments.
  Config cfg;
  cfg.pool_threads = 2;
  cfg.scheduling = SchedulingMode::kAlwaysInline;
  Runtime rt(cfg);
  VBox<long> counter(0);
  constexpr int kPerThread = 100;
  auto worker = [&] {
    for (int i = 0; i < kPerThread; ++i) {
      atomically(rt, [&](TxCtx& ctx) {
        auto f = ctx.submit([&](TxCtx& c) { return counter.get(c) + 1; });
        counter.put(ctx, f.get(ctx));
      });
    }
  };
  std::thread t1(worker), t2(worker);
  t1.join();
  t2.join();
  EXPECT_EQ(counter.peek_committed(), 2L * kPerThread);
}

// ---------------------------------------------------------------------------
// End-to-end adaptation
// ---------------------------------------------------------------------------

TEST(AdaptiveElision, UnprofitableSiteDemotesAndStaysCorrect) {
  Config cfg;
  cfg.pool_threads = 2;
  cfg.scheduling = SchedulingMode::kAdaptive;
  // Profitability bar far above anything a trivial body can reach, so
  // demotion is deterministic regardless of machine speed.
  cfg.adaptive_inline_threshold_ns = 100'000'000;
  Runtime rt(cfg);
  VBox<long> sum(0);
  static const char site_tag = 0;
  constexpr int kIter = 100;
  for (int i = 0; i < kIter; ++i) {
    atomically(rt, [&](TxCtx& ctx) {
      auto f = ctx.submit_at(&site_tag,
                             [&](TxCtx& c) { return sum.get(c) + 1; });
      sum.put(ctx, f.get(ctx));
    });
  }
  EXPECT_EQ(sum.peek_committed(), kIter);
  SiteStats* site = rt.adaptive().site_for(&site_tag);
  ASSERT_NE(site, nullptr);
  EXPECT_NE(site->site_state(), SiteState::kParallel);
  EXPECT_GT(site->inline_runs.load(), 0u);
  EXPECT_GT(site->parallel_runs.load(), 0u);  // the pre-demotion samples
  EXPECT_EQ(site->submits.load(), static_cast<std::uint64_t>(kIter));
}

TEST(AdaptiveElision, ChaosDecisionFlipsAreHarmless) {
  // Strong ordering makes every decision sequence semantically valid; a
  // chaos schedule that flips every other verdict must be undetectable in
  // results.
  Config cfg;
  cfg.pool_threads = 2;
  cfg.scheduling = SchedulingMode::kAdaptive;
  cfg.chaos.add("core.adaptive.decide", fp::Action::kFail, 2);
  Runtime rt(cfg);
  for (int i = 0; i < 25; ++i) EXPECT_EQ(chain_result(rt), kChainOracle);
  fp::FailPoint* site = fp::Controller::instance().find("core.adaptive.decide");
  ASSERT_NE(site, nullptr);
  EXPECT_GT(site->fires(), 0u);
}

}  // namespace
