// Tests for old-version garbage collection: the registry's min-active
// tracking plus trim-on-commit keeps permanent lists short without ever
// cutting a version a live snapshot still needs.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "stm/transaction.hpp"

namespace {

using txf::stm::ActiveTxnRegistry;
using txf::stm::StmEnv;
using txf::stm::Transaction;
using txf::stm::VBox;
using txf::stm::VBoxImpl;

std::size_t permanent_list_length(const VBoxImpl& box) {
  std::size_t n = 0;
  for (const auto* v = box.permanent_head(); v != nullptr;
       v = v->next.load(std::memory_order_acquire))
    ++n;
  return n;
}

TEST(Registry, MinActiveWithNoTxnsIsUpper) {
  ActiveTxnRegistry reg;
  EXPECT_EQ(reg.min_active(42), 42u);
}

TEST(Registry, MinActiveTracksOldestSnapshot) {
  ActiveTxnRegistry reg;
  const auto s1 = reg.claim(0);
  const auto s2 = reg.claim(7);
  ASSERT_NE(s1, ActiveTxnRegistry::kNoSlot);
  ASSERT_NE(s2, ActiveTxnRegistry::kNoSlot);
  reg.slot(s1).publish(5);
  reg.slot(s2).publish(9);
  EXPECT_EQ(reg.min_active(100), 5u);
  reg.release(s1);
  EXPECT_EQ(reg.min_active(100), 9u);
  reg.release(s2);
  EXPECT_EQ(reg.min_active(100), 100u);
}

TEST(Registry, ClaimHintAvoidsCollision) {
  ActiveTxnRegistry reg;
  const auto a = reg.claim(3);
  const auto b = reg.claim(3);
  EXPECT_NE(a, b);
  reg.release(a);
  reg.release(b);
}

TEST(Gc, VersionListStaysBoundedUnderChurn) {
  StmEnv env;
  env.queue().set_trim_period(1);  // trim on every commit
  VBox<long> box(0);
  for (int i = 0; i < 500; ++i) {
    txf::stm::atomically(env, [&](Transaction& t) {
      box.put(t, box.get(t) + 1);
    });
  }
  // With no live snapshots, everything but the newest version (and at most
  // a straggler kept by the conservative min) is trimmable.
  EXPECT_LE(permanent_list_length(box.impl()), 3u);
  EXPECT_EQ(box.peek_committed(), 500);
}

TEST(Gc, LiveSnapshotPinsItsVersion) {
  StmEnv env;
  env.queue().set_trim_period(1);
  VBox<long> box(100);

  Transaction old_reader(env);  // snapshot 0 stays live
  for (int i = 0; i < 200; ++i) {
    txf::stm::atomically(env, [&](Transaction& t) {
      box.put(t, box.get(t) + 1);
    });
  }
  // The old reader must still see the initial value: its version cannot
  // have been trimmed while its snapshot is registered.
  EXPECT_EQ(box.get(old_reader), 100);
  EXPECT_TRUE(old_reader.try_commit());
}

TEST(Gc, TrimResumesAfterReaderFinishes) {
  StmEnv env;
  env.queue().set_trim_period(1);
  VBox<long> box(0);
  {
    Transaction old_reader(env);
    for (int i = 0; i < 100; ++i) {
      txf::stm::atomically(env, [&](Transaction& t) {
        box.put(t, box.get(t) + 1);
      });
    }
    EXPECT_GE(permanent_list_length(box.impl()), 2u);
    EXPECT_EQ(box.get(old_reader), 0);
    EXPECT_TRUE(old_reader.try_commit());
  }
  // After the reader is gone, further commits trim the backlog.
  for (int i = 0; i < 10; ++i) {
    txf::stm::atomically(env, [&](Transaction& t) {
      box.put(t, box.get(t) + 1);
    });
  }
  EXPECT_LE(permanent_list_length(box.impl()), 3u);
}

TEST(Gc, ConcurrentReadersNeverSeeFreedVersions) {
  StmEnv env;
  env.queue().set_trim_period(1);
  VBox<long> box(0);
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};

  std::thread reader([&] {
    while (!stop.load()) {
      const long v = txf::stm::atomically(
          env, [&](Transaction& t) { return box.get(t); },
          Transaction::Mode::kReadOnly);
      if (v < 0) bad.fetch_add(1);
    }
  });

  for (int i = 0; i < 5000; ++i) {
    txf::stm::atomically(env, [&](Transaction& t) {
      box.put(t, box.get(t) + 1);
    });
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(box.peek_committed(), 5000);
}

}  // namespace
