// Tests for the TL2-style baseline STM.
#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <thread>
#include <vector>

#include "stm/tl2.hpp"
#include "util/xoshiro.hpp"

namespace {

using txf::stm::tl2::atomically_tl2;
using txf::stm::tl2::Tl2Env;
using txf::stm::tl2::Tl2Txn;
using txf::stm::tl2::Tl2Var;
using txf::stm::tl2::VersionedLock;

TEST(VersionedLockTest, LockUnlockCycle) {
  VersionedLock lock;
  const auto v0 = lock.load();
  EXPECT_FALSE(VersionedLock::is_locked(v0));
  EXPECT_EQ(VersionedLock::version_of(v0), 0u);
  EXPECT_TRUE(lock.try_lock(v0));
  EXPECT_TRUE(VersionedLock::is_locked(lock.load()));
  EXPECT_FALSE(lock.try_lock(lock.load()));  // already locked
  lock.unlock_with_version(7);
  EXPECT_EQ(VersionedLock::version_of(lock.load()), 7u);
  EXPECT_FALSE(VersionedLock::is_locked(lock.load()));
}

TEST(VersionedLockTest, RestorePreservesVersion) {
  VersionedLock lock;
  lock.unlock_with_version(5);
  const auto v = lock.load();
  ASSERT_TRUE(lock.try_lock(v));
  lock.unlock_restore(v);
  EXPECT_EQ(VersionedLock::version_of(lock.load()), 5u);
}

TEST(Tl2, ReadInitialValue) {
  Tl2Env env;
  Tl2Var<int> x(11);
  const int v = atomically_tl2(env, [&](Tl2Txn& tx) { return tx.read(x); });
  EXPECT_EQ(v, 11);
}

TEST(Tl2, WriteThenReadBack) {
  Tl2Env env;
  Tl2Var<int> x(0);
  atomically_tl2(env, [&](Tl2Txn& tx) {
    tx.write(x, 9);
    EXPECT_EQ(tx.read(x), 9);  // read-your-writes
  });
  EXPECT_EQ(x.peek(), 9);
}

TEST(Tl2, ReadOnlyCommitsWithoutClockAdvance) {
  Tl2Env env;
  Tl2Var<int> x(1);
  const auto before = env.clock();
  atomically_tl2(env, [&](Tl2Txn& tx) { (void)tx.read(x); });
  EXPECT_EQ(env.clock(), before);
}

TEST(Tl2, CounterUnderConcurrency) {
  Tl2Env env;
  Tl2Var<long> counter(0);
  constexpr int kThreads = 4, kIter = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIter; ++i) {
        atomically_tl2(env, [&](Tl2Txn& tx) {
          tx.write(counter, tx.read(counter) + 1);
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.peek(), static_cast<long>(kThreads) * kIter);
  EXPECT_GT(env.commits(), 0u);
}

TEST(Tl2, TransferInvariantWithConcurrentReaders) {
  Tl2Env env;
  constexpr int kAccounts = 8;
  constexpr long kInitial = 100;
  std::deque<Tl2Var<long>> accounts;
  for (int i = 0; i < kAccounts; ++i) accounts.emplace_back(kInitial);

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::thread auditor([&] {
    while (!stop.load()) {
      const long total = atomically_tl2(env, [&](Tl2Txn& tx) {
        long sum = 0;
        for (auto& a : accounts) sum += tx.read(a);
        return sum;
      });
      if (total != kAccounts * kInitial) violations.fetch_add(1);
    }
  });

  std::vector<std::thread> movers;
  for (int m = 0; m < 2; ++m) {
    movers.emplace_back([&, m] {
      txf::util::Xoshiro256 rng(50 + m);
      for (int k = 0; k < 3000; ++k) {
        const auto from = rng.next_bounded(kAccounts);
        const auto to = rng.next_bounded(kAccounts);
        if (from == to) continue;
        atomically_tl2(env, [&](Tl2Txn& tx) {
          const long amount = 1 + static_cast<long>(k % 5);
          tx.write(accounts[from], tx.read(accounts[from]) - amount);
          tx.write(accounts[to], tx.read(accounts[to]) + amount);
        });
      }
    });
  }
  for (auto& th : movers) th.join();
  stop.store(true);
  auditor.join();
  EXPECT_EQ(violations.load(), 0);
  long total = 0;
  for (auto& a : accounts) total += a.peek();
  EXPECT_EQ(total, kAccounts * kInitial);
}

TEST(Tl2, AbortsAreCounted) {
  // Deterministic conflict, independent of scheduling and core count: the
  // outer transaction reads `hot`, a conflicting transaction commits a
  // newer version mid-flight, and the outer transaction's next read must
  // observe the version advance past its read version and abort — counted
  // exactly once. The retry (with `doomed` cleared) then commits.
  Tl2Env env;
  Tl2Var<long> hot(0);
  bool doomed = true;
  atomically_tl2(env, [&](Tl2Txn& tx) {
    const long v = tx.read(hot);
    if (doomed) {
      doomed = false;
      atomically_tl2(env, [&](Tl2Txn& inner) {
        inner.write(hot, inner.read(hot) + 100);
      });
    }
    tx.write(hot, tx.read(hot) + v + 1);
  });
  EXPECT_EQ(env.aborts(), 1u);
  EXPECT_EQ(env.commits(), 2u);  // the interfering txn + the retried outer
  EXPECT_EQ(hot.peek(), 100 + 100 + 1);

  // And the original scenario: contended increments stay exact, with the
  // abort counter only ever growing.
  const auto aborts_before = env.aborts();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1500; ++i) {
        atomically_tl2(env, [&](Tl2Txn& tx) {
          tx.write(hot, tx.read(hot) + 1);
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GE(env.aborts(), aborts_before);
  EXPECT_EQ(hot.peek(), 201 + 4 * 1500);
}

TEST(Tl2, WriteManyVariablesAtomically) {
  Tl2Env env;
  constexpr int kVars = 64;
  std::deque<Tl2Var<long>> vars;
  for (int i = 0; i < kVars; ++i) vars.emplace_back(0L);
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::thread reader([&] {
    while (!stop.load()) {
      const auto snapshot = atomically_tl2(env, [&](Tl2Txn& tx) {
        std::vector<long> out;
        out.reserve(kVars);
        for (auto& v : vars) out.push_back(tx.read(v));
        return out;
      });
      for (int i = 1; i < kVars; ++i) {
        if (snapshot[static_cast<std::size_t>(i)] != snapshot[0]) {
          torn.fetch_add(1);
          break;
        }
      }
    }
  });
  for (int round = 1; round <= 300; ++round) {
    atomically_tl2(env, [&](Tl2Txn& tx) {
      for (auto& v : vars) tx.write(v, static_cast<long>(round));
    });
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(torn.load(), 0);
}

TEST(Tl2, DoubleTypeRoundTrip) {
  Tl2Env env;
  Tl2Var<double> d(1.5);
  atomically_tl2(env, [&](Tl2Txn& tx) { tx.write(d, tx.read(d) * 2.0); });
  EXPECT_DOUBLE_EQ(d.peek(), 3.0);
}

}  // namespace
