// Tests for the open-addressing write-set map.
#include <gtest/gtest.h>

#include <vector>

#include "stm/vbox.hpp"
#include "stm/write_set.hpp"

namespace {

using txf::stm::VBoxImpl;
using txf::stm::WriteSetMap;

TEST(WriteSetMap, EmptyFindsNothing) {
  WriteSetMap ws;
  VBoxImpl box(0);
  EXPECT_TRUE(ws.empty());
  EXPECT_EQ(ws.find(&box), nullptr);
}

TEST(WriteSetMap, PutThenFind) {
  WriteSetMap ws;
  VBoxImpl a(0), b(0);
  ws.put(&a, 11);
  ws.put(&b, 22);
  ASSERT_NE(ws.find(&a), nullptr);
  EXPECT_EQ(*ws.find(&a), 11u);
  EXPECT_EQ(*ws.find(&b), 22u);
  EXPECT_EQ(ws.size(), 2u);
}

TEST(WriteSetMap, OverwriteKeepsSingleEntry) {
  WriteSetMap ws;
  VBoxImpl a(0);
  ws.put(&a, 1);
  ws.put(&a, 2);
  ws.put(&a, 3);
  EXPECT_EQ(ws.size(), 1u);
  EXPECT_EQ(*ws.find(&a), 3u);
  EXPECT_EQ(ws.boxes().size(), 1u);
}

TEST(WriteSetMap, PreservesFirstWriteOrder) {
  WriteSetMap ws;
  std::vector<std::unique_ptr<VBoxImpl>> boxes;
  for (int i = 0; i < 10; ++i) boxes.push_back(std::make_unique<VBoxImpl>(0));
  for (int i = 0; i < 10; ++i) ws.put(boxes[i].get(), i);
  ws.put(boxes[0].get(), 99);  // overwrite must not reorder
  ASSERT_EQ(ws.boxes().size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ws.boxes()[i], boxes[i].get());
}

TEST(WriteSetMap, GrowsBeyondInitialCapacity) {
  WriteSetMap ws;
  std::vector<std::unique_ptr<VBoxImpl>> boxes;
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    boxes.push_back(std::make_unique<VBoxImpl>(0));
    ws.put(boxes.back().get(), static_cast<txf::stm::Word>(i));
  }
  EXPECT_EQ(ws.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    ASSERT_NE(ws.find(boxes[i].get()), nullptr);
    EXPECT_EQ(*ws.find(boxes[i].get()), static_cast<txf::stm::Word>(i));
  }
}

TEST(WriteSetMap, InlineSpillBoundary) {
  // The 9th distinct box crosses from the inline array to the heap table;
  // lookups, duplicate detection and insertion order must be seamless
  // across the boundary.
  WriteSetMap ws;
  std::vector<std::unique_ptr<VBoxImpl>> boxes;
  for (std::size_t i = 0; i < WriteSetMap::kInline + 1; ++i)
    boxes.push_back(std::make_unique<VBoxImpl>(0));
  for (std::size_t i = 0; i < WriteSetMap::kInline; ++i)
    ws.put(boxes[i].get(), static_cast<txf::stm::Word>(i));
  EXPECT_EQ(ws.size(), WriteSetMap::kInline);
  ws.put(boxes[WriteSetMap::kInline].get(), 999);  // first spilled entry
  EXPECT_EQ(ws.size(), WriteSetMap::kInline + 1);
  for (std::size_t i = 0; i < WriteSetMap::kInline; ++i) {
    ASSERT_NE(ws.find(boxes[i].get()), nullptr) << i;
    EXPECT_EQ(*ws.find(boxes[i].get()), static_cast<txf::stm::Word>(i));
  }
  EXPECT_EQ(*ws.find(boxes[WriteSetMap::kInline].get()), 999u);
  // Overwrites on both sides of the boundary keep size stable.
  ws.put(boxes[0].get(), 100);
  ws.put(boxes[WriteSetMap::kInline].get(), 1000);
  EXPECT_EQ(ws.size(), WriteSetMap::kInline + 1);
  EXPECT_EQ(*ws.find(boxes[0].get()), 100u);
  EXPECT_EQ(*ws.find(boxes[WriteSetMap::kInline].get()), 1000u);
  ASSERT_EQ(ws.boxes().size(), WriteSetMap::kInline + 1);
  for (std::size_t i = 0; i < ws.boxes().size(); ++i)
    EXPECT_EQ(ws.boxes()[i], boxes[i].get());
}

TEST(WriteSetMap, ContainsDedupAcrossBoundary) {
  // contains() backs the read-set duplicate check; it must agree with
  // put()'s dedup both inline and spilled.
  WriteSetMap ws;
  std::vector<std::unique_ptr<VBoxImpl>> boxes;
  for (int i = 0; i < 12; ++i) boxes.push_back(std::make_unique<VBoxImpl>(0));
  for (int round = 0; round < 3; ++round) {
    for (auto& b : boxes) ws.put(b.get(), static_cast<txf::stm::Word>(round));
  }
  EXPECT_EQ(ws.size(), 12u);
  for (auto& b : boxes) EXPECT_TRUE(ws.contains(b.get()));
  VBoxImpl stranger(0);
  EXPECT_FALSE(ws.contains(&stranger));
}

TEST(WriteSetMap, ClearReuseAcrossSpill) {
  // A reused map (the park()/reset() pattern) must fully forget spilled
  // entries and re-fill cleanly, shrinking back under the inline capacity.
  WriteSetMap ws;
  std::vector<std::unique_ptr<VBoxImpl>> boxes;
  for (int i = 0; i < 32; ++i) boxes.push_back(std::make_unique<VBoxImpl>(0));
  for (auto& b : boxes) ws.put(b.get(), 7);
  EXPECT_EQ(ws.size(), 32u);
  ws.clear();
  EXPECT_TRUE(ws.empty());
  for (auto& b : boxes) EXPECT_FALSE(ws.contains(b.get()));
  // Refill with a small set: stays inline-only on the fast path.
  for (int i = 0; i < 3; ++i) ws.put(boxes[i].get(), static_cast<txf::stm::Word>(i));
  EXPECT_EQ(ws.size(), 3u);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(*ws.find(boxes[i].get()), static_cast<txf::stm::Word>(i));
  for (int i = 3; i < 32; ++i) EXPECT_FALSE(ws.contains(boxes[i].get()));
  // And spill again after the clear, exercising the lazily-kept table.
  for (auto& b : boxes) ws.put(b.get(), 9);
  EXPECT_EQ(ws.size(), 32u);
  EXPECT_EQ(*ws.find(boxes[31].get()), 9u);
}

TEST(WriteSetMap, ClearResets) {
  WriteSetMap ws;
  VBoxImpl a(0), b(0);
  ws.put(&a, 1);
  ws.put(&b, 2);
  ws.clear();
  EXPECT_TRUE(ws.empty());
  EXPECT_EQ(ws.find(&a), nullptr);
  EXPECT_TRUE(ws.boxes().empty());
  ws.put(&a, 5);
  EXPECT_EQ(*ws.find(&a), 5u);
}

TEST(WriteSetMap, ValueOfMissingIsZero) {
  WriteSetMap ws;
  VBoxImpl a(0);
  EXPECT_EQ(ws.value_of(&a), 0u);
}

}  // namespace
