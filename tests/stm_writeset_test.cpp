// Tests for the open-addressing write-set map.
#include <gtest/gtest.h>

#include <vector>

#include "stm/vbox.hpp"
#include "stm/write_set.hpp"

namespace {

using txf::stm::VBoxImpl;
using txf::stm::WriteSetMap;

TEST(WriteSetMap, EmptyFindsNothing) {
  WriteSetMap ws;
  VBoxImpl box(0);
  EXPECT_TRUE(ws.empty());
  EXPECT_EQ(ws.find(&box), nullptr);
}

TEST(WriteSetMap, PutThenFind) {
  WriteSetMap ws;
  VBoxImpl a(0), b(0);
  ws.put(&a, 11);
  ws.put(&b, 22);
  ASSERT_NE(ws.find(&a), nullptr);
  EXPECT_EQ(*ws.find(&a), 11u);
  EXPECT_EQ(*ws.find(&b), 22u);
  EXPECT_EQ(ws.size(), 2u);
}

TEST(WriteSetMap, OverwriteKeepsSingleEntry) {
  WriteSetMap ws;
  VBoxImpl a(0);
  ws.put(&a, 1);
  ws.put(&a, 2);
  ws.put(&a, 3);
  EXPECT_EQ(ws.size(), 1u);
  EXPECT_EQ(*ws.find(&a), 3u);
  EXPECT_EQ(ws.boxes().size(), 1u);
}

TEST(WriteSetMap, PreservesFirstWriteOrder) {
  WriteSetMap ws;
  std::vector<std::unique_ptr<VBoxImpl>> boxes;
  for (int i = 0; i < 10; ++i) boxes.push_back(std::make_unique<VBoxImpl>(0));
  for (int i = 0; i < 10; ++i) ws.put(boxes[i].get(), i);
  ws.put(boxes[0].get(), 99);  // overwrite must not reorder
  ASSERT_EQ(ws.boxes().size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ws.boxes()[i], boxes[i].get());
}

TEST(WriteSetMap, GrowsBeyondInitialCapacity) {
  WriteSetMap ws;
  std::vector<std::unique_ptr<VBoxImpl>> boxes;
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    boxes.push_back(std::make_unique<VBoxImpl>(0));
    ws.put(boxes.back().get(), static_cast<txf::stm::Word>(i));
  }
  EXPECT_EQ(ws.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    ASSERT_NE(ws.find(boxes[i].get()), nullptr);
    EXPECT_EQ(*ws.find(boxes[i].get()), static_cast<txf::stm::Word>(i));
  }
}

TEST(WriteSetMap, ClearResets) {
  WriteSetMap ws;
  VBoxImpl a(0), b(0);
  ws.put(&a, 1);
  ws.put(&b, 2);
  ws.clear();
  EXPECT_TRUE(ws.empty());
  EXPECT_EQ(ws.find(&a), nullptr);
  EXPECT_TRUE(ws.boxes().empty());
  ws.put(&a, 5);
  EXPECT_EQ(*ws.find(&a), 5u);
}

TEST(WriteSetMap, ValueOfMissingIsZero) {
  WriteSetMap ws;
  VBoxImpl a(0);
  EXPECT_EQ(ws.value_of(&a), 0u);
}

}  // namespace
