// Tests for SpinLock and Backoff.
#include <gtest/gtest.h>

#include <mutex>
#include <thread>
#include <vector>

#include "util/backoff.hpp"
#include "util/spin_lock.hpp"

namespace {

using txf::util::Backoff;
using txf::util::SpinLock;

TEST(SpinLock, BasicLockUnlock) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SpinLock, WorksWithScopedLock) {
  SpinLock lock;
  {
    std::scoped_lock guard(lock);
    EXPECT_FALSE(lock.try_lock());
  }
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SpinLock, MutualExclusionCounter) {
  SpinLock lock;
  long counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::scoped_lock guard(lock);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(Backoff, StepsAdvanceAndReset) {
  Backoff b;
  EXPECT_EQ(b.step(), 0u);
  b.pause();
  b.pause();
  EXPECT_EQ(b.step(), 2u);
  b.reset();
  EXPECT_EQ(b.step(), 0u);
}

TEST(Backoff, SurvivesManyPauses) {
  Backoff b(2, 2);  // reaches the sleep regime quickly
  for (int i = 0; i < 8; ++i) b.pause();
  EXPECT_GE(b.step(), 8u);
}

}  // namespace
