#!/usr/bin/env bash
# Service-harness overload gate: run the same load spike twice — once with
# the admission controller on, once with the gate disabled (the ablation) —
# and record both reports in one JSON. The gate then asserts the headline
# robustness claim: under a spike well past the service capacity, the
# shedding run keeps the admitted-traffic p99 inside the SLO (by dropping
# low-priority classes, visibly, in `shed`), while the no-shed run lets the
# open-loop backlog destroy its p99. BENCH_server.json in the repo root
# records the curated measurement for the service-harness PR.
#
# Usage: scripts/bench_server.sh <build-dir> [out.json]
set -euo pipefail

build_dir=${1:?usage: $0 <build-dir> [out.json]}
out=${2:-BENCH_server.ci.json}

# A 20 s run at 800 req/s with a 5x spike through the middle (seconds
# 4-14). op-span sizes per-request work so that the spike is genuinely past
# this machine's capacity; slo 100 ms. The spike is long (10 s) on purpose:
# the controller needs a few 100 ms ticks of late completions before it can
# react, and a sustained spike amortizes that reaction transient so the
# full-run percentiles reflect the shedding equilibrium, not the onset.
common=(--duration 20 --rate 800 --spike-factor 5 --spike-start 4
        --spike-end 14 --op-span 4096 --slo-ms 100 --quiet-status)

echo "--- shed run ---"
shed_json=$("${build_dir}/src/txf_server" "${common[@]}")
echo "${shed_json}"

echo "--- no-shed run (ablation) ---"
# The ablation deliberately violates its SLO; invariant checks still run.
noshed_json=$("${build_dir}/src/txf_server" "${common[@]}" --no-shed)
echo "${noshed_json}"

python3 - "${out}" <<EOF
import json, sys

shed = json.loads('''${shed_json}''')
noshed = json.loads('''${noshed_json}''')
out = {"scenario": "20s @800/s, 5x spike s4-14, op_span 4096, SLO p99 100ms",
       "shed": shed, "noshed": noshed}
json.dump(out, open(sys.argv[1], "w"), indent=1)

slo_ns = 100e6
assert shed["ok"], f"shed run failed: {shed['failure']}"
assert noshed["watchdog_stalls"] == 0, "no-shed run stalled outright"
# The controller must have actually worked for a living...
assert shed["overload_ticks"] > 0, "spike never registered as overload"
assert shed["shed"] > 0, "overload handled without shedding anything?"
assert shed["max_shed_level"] >= 1, "shed level never rose"
# ...and bounded the tail. The controller is a p99 feedback loop — it
# relaxes whenever the windowed p99 dips under the SLO and escalates when
# it rises over — so under sustained overload it *rides the SLO boundary*
# and the full-run p99 lands near (typically within ~1.7x of) the SLO.
# The ablation, with nothing bounding the open-loop backlog, blows past it
# by 4x+ and keeps growing for as long as the spike lasts. Gate on that
# contrast with headroom for 1-CPU CI noise rather than on an exact-SLO
# equality the feedback design never promises.
shed_miss = shed["slo_misses"] / max(1, shed["completed"])
noshed_miss = noshed["slo_misses"] / max(1, noshed["completed"])
assert shed["p99_ns"] <= 2.5 * slo_ns, (
    f"shed p99 {shed['p99_ns']/1e6:.1f}ms — controller lost the boundary")
assert shed_miss < 0.12, f"shed run missed SLO on {shed_miss:.1%} of requests"
assert noshed_miss > 0.50, (
    f"no-shed miss rate only {noshed_miss:.1%} — spike too gentle to gate on")
assert noshed["p99_ns"] > 4 * slo_ns, (
    f"no-shed p99 {noshed['p99_ns']/1e6:.1f}ms — spike too gentle to gate on")
assert noshed["p99_ns"] > 2.5 * shed["p99_ns"], "shed/no-shed contrast too weak"
# Priority order. The token bucket sheds class-blind, so absolute counts
# track traffic share (reads are ~half the mix); the class-priority levels
# show up in the shed *fraction* of each class's offered load, which must
# be no gentler on multi (shed first) than on read (shed last).
sc = shed["classes"]
frac = lambda c: sc[c]["shed"] / max(1, sc[c]["admitted"] + sc[c]["shed"])
assert frac("read") <= frac("multi"), (
    f"shed order inverted: read {frac('read'):.1%} vs multi {frac('multi'):.1%}")
print(f"bench_server: OK  shed p99 {shed['p99_ns']/1e6:.1f}ms "
      f"miss {shed_miss:.1%} (shed {shed['shed']} of {shed['offered']}) vs "
      f"no-shed p99 {noshed['p99_ns']/1e6:.1f}ms miss {noshed_miss:.1%}")
EOF

echo "wrote ${out}"
