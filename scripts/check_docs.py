#!/usr/bin/env python3
"""Docs lint: keep docs/OBSERVABILITY.md and markdown links honest.

Two checks, both fast and dependency-free:

1. Metric inventory (bidirectional). Every metric name registered in src/
   must appear in the table rows between the `<!-- metrics:begin -->` and
   `<!-- metrics:end -->` markers of docs/OBSERVABILITY.md, and every name
   documented there must still be registered in the source. Names are
   extracted from `.counter("x", ...)` / `.gauge(...)` / `.histogram(...)`
   / `.atomic(...)` registration calls, plus two families registered via
   string concatenation and therefore invisible to the literal scan:
   `tx.abort.cause.*` composed from the abort_cause_name() switch and
   `obs.drift.*` per-detector counters composed from drift_kind_name().

2. B+-tree failpoint sites (bidirectional). Every `TXF_FP_POINT`/
   `TXF_FP_FIRES` literal in src/ matching `core.btree.*` must appear in
   the table between the `<!-- btree-failpoints:begin -->` and
   `<!-- btree-failpoints:end -->` markers of docs/OBSERVABILITY.md, and
   every site documented there must still exist in the source.

3. Markdown links. Every relative link target in the repo's *.md files
   must exist on disk (anchors are stripped; http/mailto links skipped).

Exit 0 = clean, 1 = drift. Run from anywhere; paths resolve from the repo
root (parent of this script's directory).
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
OBS_DOC = ROOT / "docs" / "OBSERVABILITY.md"
ABORT_CAUSE_HPP = ROOT / "src" / "obs" / "abort_cause.hpp"
DRIFT_CPP = ROOT / "src" / "obs" / "drift.cpp"

REGISTER_RE = re.compile(r'\.(?:counter|gauge|histogram|atomic)\(\s*"([^"]+)"')
FP_SITE_RE = re.compile(r'TXF_FP_(?:POINT|FIRES)\(\s*"(core\.btree\.[^"]+)"')
CAUSE_RE = re.compile(r'case AbortCause::\w+:\s*return "([a-z_]+)";')
DRIFT_RE = re.compile(r'case DriftKind::\w+:\s*return "([a-z_]+)";')
DOC_ROW_RE = re.compile(r"^\|\s*`([^`]+)`\s*\|")
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def registered_names():
    names = set()
    for path in sorted((ROOT / "src").rglob("*")):
        if path.suffix not in (".hpp", ".cpp"):
            continue
        names.update(REGISTER_RE.findall(path.read_text(encoding="utf-8")))
    # tx.abort.cause.* counters are registered through a loop over the
    # AbortCause enum; recover them from the name switch instead.
    causes = CAUSE_RE.findall(ABORT_CAUSE_HPP.read_text(encoding="utf-8"))
    if not causes:
        sys.exit(f"error: no abort causes parsed from {ABORT_CAUSE_HPP}")
    names.update(f"tx.abort.cause.{c}" for c in causes)
    # obs.drift.<detector> counters are likewise registered through a loop
    # over the DriftKind enum.
    drifts = DRIFT_RE.findall(DRIFT_CPP.read_text(encoding="utf-8"))
    if not drifts:
        sys.exit(f"error: no drift detectors parsed from {DRIFT_CPP}")
    names.update(f"obs.drift.{d}" for d in drifts)
    return names


def documented_names():
    text = OBS_DOC.read_text(encoding="utf-8")
    begin = text.find("<!-- metrics:begin")
    end = text.find("<!-- metrics:end")
    if begin < 0 or end < 0 or end < begin:
        sys.exit(f"error: metrics:begin/end markers missing in {OBS_DOC}")
    names = set()
    for line in text[begin:end].splitlines():
        m = DOC_ROW_RE.match(line.strip())
        if m and m.group(1) not in ("name", "---"):
            names.add(m.group(1))
    return names


def check_metrics():
    src = registered_names()
    doc = documented_names()
    problems = []
    for name in sorted(src - doc):
        problems.append(f"registered in src/ but undocumented: {name}")
    for name in sorted(doc - src):
        problems.append(f"documented but no longer registered: {name}")
    return problems


def btree_failpoint_sites():
    sites = set()
    for path in sorted((ROOT / "src").rglob("*")):
        if path.suffix in (".hpp", ".cpp"):
            sites.update(FP_SITE_RE.findall(path.read_text(encoding="utf-8")))
    return sites


def documented_failpoints():
    text = OBS_DOC.read_text(encoding="utf-8")
    begin = text.find("<!-- btree-failpoints:begin")
    end = text.find("<!-- btree-failpoints:end")
    if begin < 0 or end < 0 or end < begin:
        sys.exit(f"error: btree-failpoints markers missing in {OBS_DOC}")
    names = set()
    for line in text[begin:end].splitlines():
        m = DOC_ROW_RE.match(line.strip())
        if m and m.group(1) not in ("site", "---"):
            names.add(m.group(1))
    return names


def check_btree_failpoints():
    src = btree_failpoint_sites()
    if not src:
        return ["no core.btree.* failpoint sites found in src/ "
                "(regex drift in check_docs.py?)"]
    doc = documented_failpoints()
    problems = []
    for name in sorted(src - doc):
        problems.append(f"failpoint in src/ but undocumented: {name}")
    for name in sorted(doc - src):
        problems.append(f"failpoint documented but gone from src/: {name}")
    return problems


def check_links():
    problems = []
    # PAPERS.md / SNIPPETS.md are generated retrieval artifacts with
    # dangling asset links; lint only the maintained docs.
    skip = {"PAPERS.md", "SNIPPETS.md"}
    for md in sorted(ROOT.rglob("*.md")):
        if any(part in (".git", "build") for part in md.parts):
            continue
        if md.name in skip:
            continue
        for target in LINK_RE.findall(md.read_text(encoding="utf-8")):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target) or target.startswith("#"):
                continue  # http:, https:, mailto:, in-page anchor
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            resolved = (md.parent / rel).resolve()
            if not resolved.exists():
                problems.append(
                    f"{md.relative_to(ROOT)}: broken link -> {target}")
    return problems


def main():
    problems = check_metrics() + check_btree_failpoints() + check_links()
    for p in problems:
        print(f"check_docs: {p}", file=sys.stderr)
    if problems:
        print(f"check_docs: FAILED ({len(problems)} problem(s))",
              file=sys.stderr)
        return 1
    print("check_docs: OK (metric inventory + btree failpoints + markdown links)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
