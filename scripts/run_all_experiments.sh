#!/usr/bin/env bash
# Regenerate every paper figure and ablation. Results stream to stdout;
# EXPERIMENTS.md records a captured run. Pass QUICK=1 for a fast smoke
# sweep, FULL=1 for the paper-scale grids (hours on a small machine).
set -euo pipefail
cd "$(dirname "$0")/.."
BENCH=build/bench

if [[ "${QUICK:-0}" == 1 ]]; then
  MS=150; THREADS="2,4"; FUTS="0,1,3"; LENS="100,1000"; TXLENS="100,1000"; ITERS="0,100"
elif [[ "${FULL:-0}" == 1 ]]; then
  MS=2000; THREADS="1,2,4,8,16,32,48"; FUTS="0,1,3,5,7"
  LENS="100,1000,10000"; TXLENS="10,100,1000,10000,100000"; ITERS="0,100,1000,10000"
else
  MS=600; THREADS="1,2,4,8"; FUTS="0,1,3,5,7"
  LENS="100,1000,10000"; TXLENS="10,100,1000,10000"; ITERS="0,100,1000"
fi

run() { echo; echo "===== $* ====="; "$@"; }

run $BENCH/bench_fig5a_readonly   --ms $MS --txlens $TXLENS --iters $ITERS
run $BENCH/bench_fig5b_contention --ms $MS --lens $LENS
run $BENCH/bench_fig5c_latency    --ms $MS
run $BENCH/bench_fig6_vacation    --ms $MS --threads $THREADS --futures $FUTS
run $BENCH/bench_fig6_tpcc        --ms $MS --threads $THREADS --futures $FUTS
run $BENCH/bench_ablation_eager_lazy --ms $MS
run $BENCH/bench_ablation_intertree  --ms $MS
run $BENCH/bench_ablation_rollback   --ms $MS
run $BENCH/bench_ablation_ro_futures --ms $MS
run $BENCH/bench_stm_comparison      --ms $MS
run $BENCH/bench_intset              --ms $MS
run $BENCH/bench_micro_stm --benchmark_min_time=0.1
