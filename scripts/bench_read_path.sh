#!/usr/bin/env bash
# Short read-path bench smoke: runs the Fig. 5a read-only synthetic (which
# now reports VBox home-slot hits vs permanent-list walks as JSON) and a
# read-only window of the substrate comparison. This is a smoke check that
# the read-path counters wire up, throughput is non-zero, and the home slot
# actually serves a read-only workload (>90% hit rate) — not a performance
# gate; BENCH_read_path.json in the repo root records the curated
# before/after measurement for the home-slot PR.
#
# Usage: scripts/bench_read_path.sh <build-dir> [out.json]
set -euo pipefail

build_dir=${1:?usage: $0 <build-dir> [out.json]}
out=${2:-BENCH_read_path.ci.json}

"${build_dir}/bench/bench_fig5a_readonly" \
  --trees 4 --jobs 1 --ms 150 --txlens 100 --iters 0 --json "${out}"

"${build_dir}/bench/bench_stm_comparison" \
  --threads 4 --ms 150 --read-pct 100 --json "${out}.cmp"

echo "--- ${out} ---"
cat "${out}"

# Both JSONs must parse, carry the read-path counters, and show the home
# slot serving a read-only workload.
python3 - "${out}" "${out}.cmp" <<'EOF'
import json, sys

fig = json.load(open(sys.argv[1]))
rows = fig["rows"]
assert rows, "no fig5a rows emitted"
for row in rows:
    assert row["base_tput"] > 0, row
    rp = row["read_path"]
    for key in ("home_hits", "list_walks", "hit_rate"):
        assert key in rp, (key, row)
total = fig["read_path_total"]
assert total["home_hits"] > 0, total
assert total["hit_rate"] > 0.90, f"home-slot hit rate too low: {total}"

cmp_ = json.load(open(sys.argv[2]))
for row in cmp_["rows"]:
    rp = row["read_path"]
    assert rp["home_hits"] > 0, row
    assert rp["hit_rate"] > 0.90, row
    assert len(rp["walk_hist"]) == 8, row
print("read-path bench smoke OK:", len(rows), "fig5a rows,",
      f"hit_rate={total['hit_rate']}")
EOF
