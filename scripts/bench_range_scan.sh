#!/usr/bin/env bash
# Range-scan bench gate (ISSUE 10): runs bench_range_scan — TxBTree scans
# over a width x threads x scheduling-mode grid plus the leaf-buffering
# footprint ablation — and asserts the acceptance bars on its JSON:
#
#   * Non-regression vs sequential: kAdaptive >= 0.9x kAlwaysInline at
#     every grid cell. On the 1-CPU CI host the multicore speedup claim is
#     hardware-gated (as with the PR 2/7 scaling rows); what must hold
#     everywhere is that the future-parallelized scan path never loses to
#     a sequential scan — the per-tree scan gate converges to sequential
#     collection when splitting cannot pay.
#   * kAdaptive >= 0.95x the best fixed mode at every cell (the ISSUE bar).
#   * Footprint ablation: clustered batch puts through the TxBTree must
#     carry a measurably narrower commit-stripe footprint than the same
#     traffic through TxMap (mean width <= 0.85x, strictly smaller), the
#     leaf-buffer single-publication argument made observable.
#   * Every scan row carries the abort-cause breakdown object.
#
# The ratio gates are capability gates, checked per grid cell against the
# BEST of ${TXF_BENCH_ATTEMPTS:-3} full runs: the CI host has 1 CPU and a
# noisy neighbourhood (single-run cell throughput flaps by ~10%), and the
# bars assert what the controller can reach, not a distribution. The
# curated BENCH_range_scan.json in the repo root records a quiet-host
# measurement.
#
# Usage: scripts/bench_range_scan.sh <build-dir> [out.json]
set -euo pipefail

build_dir=${1:?usage: $0 <build-dir> [out.json]}
out=${2:-BENCH_range_scan.ci.json}
attempts=${TXF_BENCH_ATTEMPTS:-3}

for attempt in $(seq 1 "${attempts}"); do
  echo "=== bench_range_scan attempt ${attempt}/${attempts} ==="
  "${build_dir}/bench/bench_range_scan" \
    --widths 64,1024,8192 --threads 1,2 --ms 150 --keys 65536 \
    --put-every 8 --batch 64 --footprint-txns 500 \
    --json "${out}.${attempt}"
done

cp "${out}.${attempts}" "${out}"
echo "--- ${out} (last attempt) ---"
cat "${out}"

python3 - "${out}" "${attempts}" <<'EOF'
import json, sys

out, attempts = sys.argv[1], int(sys.argv[2])
docs = [json.load(open(f"{out}.{i}")) for i in range(1, attempts + 1)]

best_vs_inline = {}
best_vs_fixed = {}
for doc in docs:
    cells = {}
    for row in doc["rows"]:
        assert row["scans_per_s"] > 0 and row["commits"] > 0, row
        assert "causes" in row, row
        cells.setdefault((row["width"], row["threads"]), {})[row["mode"]] = row
    for cell, modes in cells.items():
        for mode in ("inline", "parallel", "adaptive"):
            assert mode in modes, f"missing mode {mode} at {cell}"
        ad = modes["adaptive"]["scans_per_s"]
        inl = modes["inline"]["scans_per_s"]
        best = max(m["scans_per_s"] for m in modes.values())
        best_vs_inline[cell] = max(best_vs_inline.get(cell, 0), ad / inl)
        best_vs_fixed[cell] = max(best_vs_fixed.get(cell, 0), ad / best)

for cell in sorted(best_vs_inline):
    r_inl, r_fix = best_vs_inline[cell], best_vs_fixed[cell]
    assert r_inl >= 0.9, (
        f"width,threads={cell}: best adaptive/inline {r_inl:.3f} < 0.9 "
        f"over {attempts} attempts")
    assert r_fix >= 0.95, (
        f"width,threads={cell}: best adaptive/best-fixed {r_fix:.3f} < "
        f"0.95 over {attempts} attempts")

# The footprint ablation is deterministic traffic; every run must pass.
for doc in docs:
    fp = {f["container"]: f for f in doc["footprint"]}
    tree, tmap = fp["tx_btree"], fp["tx_map"]
    assert tree["commits"] > 0 and tmap["commits"] > 0, fp
    assert tree["mean_width"] < tmap["mean_width"], fp
    assert tree["mean_width"] <= 0.85 * tmap["mean_width"], (
        f"leaf buffering did not narrow the footprint: tree "
        f"{tree['mean_width']:.2f} vs map {tmap['mean_width']:.2f}")

fp = {f["container"]: f for f in docs[-1]["footprint"]}
print(f"bench_range_scan OK: {len(best_vs_inline)} cells; worst best-of-"
      f"{attempts} adaptive/inline {min(best_vs_inline.values()):.3f}, "
      f"adaptive/best-fixed {min(best_vs_fixed.values()):.3f}; footprint "
      f"tx_btree {fp['tx_btree']['mean_width']:.2f} vs tx_map "
      f"{fp['tx_map']['mean_width']:.2f} stripes")
EOF
