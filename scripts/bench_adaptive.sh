#!/usr/bin/env bash
# Adaptive-scheduling acceptance gate: runs bench_ablation_adaptive (the
# four SchedulingModes over fig5a / fig5b / siblings-collide / tiny-future
# shapes) and asserts the ISSUE acceptance bars on its JSON:
#
#   * tiny_futures: kAdaptive >= 0.9x kAlwaysInline throughput — the
#     controller must claw back (nearly) all of the activation cost that
#     kAlwaysParallel pays for sub-threshold bodies.
#   * fig5a_readonly: kAdaptive >= 0.95x kAlwaysParallel — profitable
#     sites must not demote, so adaptive tracks the parallel mode. The
#     gate is one-sided: on small CI machines (1-2 CPUs) parallel mode
#     can itself lose to inline, and adaptive is allowed to beat it.
#   * fig5b_update: kAdaptive >= 0.95x kAlwaysInline with demotions > 0 —
#     the conflict-aware demotion gate (ISSUE 8): under the contended
#     shape the controller must move hot sites off pure-parallel instead
#     of losing to inline on abort-retry churn.
#   * The adaptive run on tiny_futures must actually demote (the counters
#     prove the controller acted rather than throughput luck).
#
# Each gated ratio is checked against the BEST of ${TXF_BENCH_ATTEMPTS:-3}
# full bench runs: the CI host has 1 CPU and a noisy neighbourhood, and
# the gates assert capability ("the controller can reach the bar"), not a
# distribution. The bench itself already medians --reps windows per cell.
#
# Usage: scripts/bench_adaptive.sh <build-dir> [out.json]
set -euo pipefail

build_dir=${1:?usage: $0 <build-dir> [out.json]}
out=${2:-BENCH_adaptive.ci.json}
attempts=${TXF_BENCH_ATTEMPTS:-3}

rc=1
for attempt in $(seq 1 "${attempts}"); do
  echo "=== bench_adaptive attempt ${attempt}/${attempts} ==="
  "${build_dir}/bench/bench_ablation_adaptive" \
    --trees 2 --jobs 4 --ms 250 --txlen 1000 --iter 200 --json "${out}"

  echo "--- ${out} ---"
  cat "${out}"

  if python3 - "${out}" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
wl = {w["name"]: w["modes"] for w in doc["workloads"]}
for name in ("fig5a_readonly", "fig5b_update", "siblings_collide",
             "tiny_futures"):
    assert name in wl, f"missing workload {name}"
    for mode in ("parallel", "inline", "ordered", "adaptive"):
        assert wl[name][mode]["tput"] > 0, (name, mode, wl[name][mode])

tiny = wl["tiny_futures"]
ratio_tiny = tiny["adaptive"]["tput"] / tiny["inline"]["tput"]
assert ratio_tiny >= 0.9, (
    f"tiny_futures: adaptive {tiny['adaptive']['tput']} < "
    f"0.9x inline {tiny['inline']['tput']} (ratio {ratio_tiny:.3f})")

fig5a = wl["fig5a_readonly"]
ratio_5a = fig5a["adaptive"]["tput"] / fig5a["parallel"]["tput"]
assert ratio_5a >= 0.95, (
    f"fig5a_readonly: adaptive {fig5a['adaptive']['tput']} < "
    f"0.95x parallel {fig5a['parallel']['tput']} (ratio {ratio_5a:.3f})")

# ISSUE 8 conflict gate: adaptive must track inline on the contended fig5b
# shape AND the trace must show conflict-driven demotions (the controller
# moved hot sites off pure-parallel; it did not just get lucky).
fig5b = wl["fig5b_update"]
ratio_5b = fig5b["adaptive"]["tput"] / fig5b["inline"]["tput"]
assert ratio_5b >= 0.95, (
    f"fig5b_update: adaptive {fig5b['adaptive']['tput']} < "
    f"0.95x inline {fig5b['inline']['tput']} (ratio {ratio_5b:.3f})")
ad_5b = fig5b["adaptive"]["adaptive"]
assert ad_5b["demotions"] > 0, (
    f"fig5b_update adaptive run never demoted: {ad_5b}")

ad = tiny["adaptive"]["adaptive"]
assert ad["demotions"] > 0, f"tiny_futures adaptive run never demoted: {ad}"
assert ad["inline_decisions"] > 0, ad
# Fixed modes still count their decisions, but must never probe or move
# the hysteresis machine (they short-circuit the site table).
for name in ("fig5a_readonly", "tiny_futures"):
    for mode in ("parallel", "inline", "ordered"):
        fixed = wl[name][mode]["adaptive"]
        for key in ("probes", "demotions", "promotions"):
            assert fixed[key] == 0, (
                f"{name}/{mode}: fixed mode touched the controller: {fixed}")

print(f"adaptive bench gate OK: tiny adaptive/inline={ratio_tiny:.3f}, "
      f"fig5a adaptive/parallel={ratio_5a:.3f}, "
      f"fig5b adaptive/inline={ratio_5b:.3f}, "
      f"fig5b conflict demotions={ad_5b['conflict_demotions']}, "
      f"tiny demotions={ad['demotions']}")
EOF
  then
    rc=0
    break
  fi
  echo "=== attempt ${attempt} missed a gate ==="
done

exit "${rc}"
