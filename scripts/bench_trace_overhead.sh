#!/usr/bin/env bash
# txtrace overhead A/B on the Fig. 5a read-only synthetic (base_tput column).
#
# Four configurations of the same workload:
#   runtime_off  — default build, TXF_TRACE=0  (tracing compiled in, gated off)
#   runtime_on   — default build, TXF_TRACE=1  (ring writes on every event)
#   timeline_on  — default build, TXF_TRACE=0 TXF_TIMELINE=1 (tracing off, the
#                  250 ms metrics-timeline sampler thread running; measures the
#                  cost of the drift-observability plane on the hot path)
#   compiled_off — a -DTXF_TRACE=OFF build dir, if one is supplied
#                  (trace calls are inline no-ops; measures the compiled cost
#                  of carrying the instrumentation at all)
#
# Interleaved reps; the gate compares best-of-N (peak throughput reflects
# capability, and transient noise on shared runners only ever pushes runs
# down — medians of few reps flap by >10% on a 1-CPU container), medians are
# recorded alongside. Gates:
#   runtime_on  must keep >= ON_GATE (default 0.90) of runtime_off throughput
#   timeline_on must keep >= ON_GATE of runtime_off throughput (same bar:
#   a registry snapshot every 250 ms must be invisible at this granularity)
#   compiled_off vs runtime_off must be within OFF_TOL (default 0.02) — only
#   enforced when STRICT=1, because +/-2% is below run-to-run noise on shared
#   CI runners; the curated measurement lives in BENCH_trace_overhead.json.
#
# Usage: scripts/bench_trace_overhead.sh <trace-on-build> [trace-off-build] [out.json]
set -euo pipefail

on_build=${1:?usage: $0 <trace-on-build> [trace-off-build] [out.json]}
off_build=${2:-}
out=${3:-BENCH_trace_overhead.ci.json}
reps=${REPS:-3}
on_gate=${ON_GATE:-0.90}
off_tol=${OFF_TOL:-0.02}
strict=${STRICT:-0}

bench_args=(--trees 4 --jobs 1 --ms "${MS:-500}" --txlens 100 --iters 0)

run_one() {  # $1 = build dir, $2 = TXF_TRACE value, $3 = TXF_TIMELINE value
  local tmp
  tmp=$(mktemp)
  TXF_TRACE=$2 TXF_TRACE_OUT= TXF_TIMELINE=${3:-0} \
    "$1/bench/bench_fig5a_readonly" \
    "${bench_args[@]}" --json "${tmp}" >/dev/null
  python3 -c "import json,sys; print(json.load(open(sys.argv[1]))['rows'][0]['base_tput'])" "${tmp}"
  rm -f "${tmp}"
}

declare -a off_runs on_runs tl_runs coff_runs
for ((i = 0; i < reps; ++i)); do
  off_runs+=("$(run_one "${on_build}" 0 0)")
  on_runs+=("$(run_one "${on_build}" 1 0)")
  tl_runs+=("$(run_one "${on_build}" 0 1)")
  if [[ -n "${off_build}" ]]; then
    coff_runs+=("$(run_one "${off_build}" 0 0)")
  fi
done

python3 - "${out}" "${on_gate}" "${off_tol}" "${strict}" \
  "${off_runs[*]}" "${on_runs[*]}" "${tl_runs[*]}" "${coff_runs[*]:-}" <<'EOF'
import json
import statistics
import sys

out, on_gate, off_tol, strict = sys.argv[1], float(sys.argv[2]), float(sys.argv[3]), sys.argv[4] == "1"
runs = [sorted(float(x) for x in arg.split()) for arg in sys.argv[5:9]]
off, on, tl = runs[0], runs[1], runs[2]
coff = runs[3] if len(runs) > 3 and runs[3] else None

on_ratio = max(on) / max(off)
tl_ratio = max(tl) / max(off)
doc = {
    "bench": "trace_overhead_fig5a",
    "workload": "bench_fig5a_readonly --trees 4 --jobs 1 --txlens 100 --iters 0 (base_tx/s)",
    "protocol": {"reps": len(off), "interleaved": True,
                 "statistic": "best-of-N (medians recorded for reference)"},
    "runtime_off_tx_per_s": off,
    "runtime_on_tx_per_s": on,
    "timeline_on_tx_per_s": tl,
    "runtime_off_best": max(off),
    "runtime_on_best": max(on),
    "timeline_on_best": max(tl),
    "runtime_off_median": statistics.median(off),
    "runtime_on_median": statistics.median(on),
    "timeline_on_median": statistics.median(tl),
    "on_over_off_ratio": round(on_ratio, 4),
    "timeline_over_off_ratio": round(tl_ratio, 4),
    "on_gate": f">= {on_gate} (tracing-on and timeline-on each keep >= {100 * on_gate:.0f}% of gated-off throughput)",
}
if coff:
    doc["compiled_off_tx_per_s"] = coff
    doc["compiled_off_best"] = max(coff)
    doc["compiled_off_median"] = statistics.median(coff)
    doc["compiled_off_over_runtime_off_ratio"] = round(max(coff) / max(off), 4)
    doc["compiled_off_gate"] = f"within +/- {100 * off_tol:.0f}% (strict={strict})"
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(json.dumps(doc, indent=2))

assert on_ratio >= on_gate, (
    f"tracing-on overhead too high: on/off = {on_ratio:.3f} < {on_gate}")
assert tl_ratio >= on_gate, (
    f"timeline-on overhead too high: timeline/off = {tl_ratio:.3f} < {on_gate}")
if coff and strict:
    r = max(coff) / max(off)
    assert abs(r - 1.0) <= off_tol, (
        f"compiled-off build outside +/-{off_tol:.0%} of default build: {r:.4f}")
print(f"trace overhead OK: on/off = {on_ratio:.3f}, "
      f"timeline/off = {tl_ratio:.3f}")
EOF
