#!/usr/bin/env bash
# Commit-sharding bench smoke: sweeps the commit spine over a stripes x
# threads grid and sanity-checks the output — counters wired, per-stripe
# sequences gap-free (the bench binary exits nonzero on a gap), the
# multi-stripe path actually exercised, and the stripes=1 row present for
# the parity comparison. This is a smoke check, not a performance gate;
# BENCH_commit_sharding.json in the repo root records the curated
# measurement (including the stripes=1 ±5% parity row against the pre-PR
# pipeline).
#
# Usage: scripts/bench_commit_sharding.sh <build-dir> [out.json]
set -euo pipefail

build_dir=${1:?usage: $0 <build-dir> [out.json]}
out=${2:-BENCH_commit_sharding.ci.json}

"${build_dir}/bench/bench_commit_sharding" \
  --threads 1,2,4 --stripes 1,4,8 --ms 120 --multi-pct 10 --json "${out}"

echo "--- ${out} ---"
cat "${out}"

python3 - "${out}" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
rows = data["rows"]
assert rows, "no bench rows emitted"
by_stripes = {}
for row in rows:
    assert row["tput"] > 0, row
    assert len(row["stripe_committed"]) == row["stripes"], row
    by_stripes.setdefault(row["stripes"], []).append(row)
assert 1 in by_stripes, "stripes=1 parity row missing"
# The sharded sweep must exercise the multi-stripe two-phase path.
sharded = [r for r in rows if r["stripes"] > 1]
assert sharded and any(r["multi_commits"] > 0 for r in sharded), \
    "multi-stripe commit path never ran"
# And single-stripe spines must never take it.
assert all(r["multi_commits"] == 0 for r in by_stripes[1])
print("bench smoke OK:", len(rows), "rows,",
      sum(r["multi_commits"] for r in sharded), "multi-stripe commits")
EOF
