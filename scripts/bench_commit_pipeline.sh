#!/usr/bin/env bash
# Short commit-pipeline bench smoke: runs the substrate comparison (which
# emits throughput + abort rate + pipeline breakdown as JSON) and a short
# window of the commit-path microbench. Keeps CI fast — this is a smoke
# check that the counters wire up and throughput is in a sane range, not a
# performance gate; BENCH_commit_pipeline.json in the repo root records the
# curated before/after measurement for the group-commit PR.
#
# Usage: scripts/bench_commit_pipeline.sh <build-dir> [out.json]
set -euo pipefail

build_dir=${1:?usage: $0 <build-dir> [out.json]}
out=${2:-BENCH_commit_pipeline.ci.json}

"${build_dir}/bench/bench_stm_comparison" \
  --threads 4 --ms 150 --read-pct 0,90,100 --json "${out}"

"${build_dir}/bench/bench_micro_stm" \
  --benchmark_filter='CommitQueueThroughput' --benchmark_min_time=0.1

echo "--- ${out} ---"
cat "${out}"

# The JSON must parse and carry the pipeline counters.
python3 - "${out}" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
rows = data["rows"]
assert rows, "no bench rows emitted"
for row in rows:
    assert row["mvcc_tput"] > 0, row
    pipe = row["pipeline"]
    for key in ("sheds", "batches", "batched_requests", "avg_batch",
                "avg_dwell_ns"):
        assert key in pipe, (key, row)
    if row["read_pct"] < 100:
        assert pipe["batches"] > 0, row
print("bench smoke OK:", len(rows), "rows")
EOF
