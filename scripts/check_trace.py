#!/usr/bin/env python3
"""Validate a txtrace Chrome trace_event JSON file (obs/trace.hpp), or a
whole flight-recorder bundle (obs/flight_recorder.hpp).

Trace checks, beyond "it parses":
  - top-level object with a `traceEvents` list
  - every event is a complete span ("X", with numeric dur) or a thread-scoped
    instant ("i") -- the writer never emits paired B/E events
  - event names come from the known Ev set
  - tx.abort instants carry args.cause from the known AbortCause taxonomy
  - timestamps are non-negative numbers
  - at least one transaction event is present (the smoke benches always run
    transactions, so an empty trace means the runtime gate ate everything)

Bundle mode (--bundle DIR) validates one flight-<seq>-<reason> directory:
  - manifest.json names the reason and inventories the bundle's files,
    and every inventoried file exists
  - trace.json passes all of the trace checks above
  - timeline.json has a coherent series table (known kinds) and frames with
    monotonically increasing, gap-free seq, strictly increasing t_ns, and
    value rows no wider than the series table
  - verdicts.json carries one verdict per known drift detector with the
    expected field types
  - metrics.json and config.json parse as objects

Usage: check_trace.py TRACE.json [--require-tx]
       check_trace.py --bundle DIR [--require-tx] [--require-fired]
Exit code 0 on success; 1 with a message on the first violation.
"""

import json
import os
import sys

# Keep in sync with ev_name() in src/obs/trace.hpp.
KNOWN_EVENTS = {
    "tx", "tx.commit", "tx.abort",
    "future.submit", "future.eval", "future.join",
    "tree.resolve", "read.walk",
    "commit.prevalidate", "commit.assign", "commit.writeback",
    "sched.run", "sched.steal", "sched.park",
    "adaptive.decide", "drift.trigger",
    "test",
}

# Keep in sync with abort_cause_name() in src/obs/abort_cause.hpp.
KNOWN_CAUSES = {
    "read_validation", "write_write", "stale_snapshot", "tree_order",
    "failpoint_injected", "deadline", "serial_preempt", "stalled",
    "explicit_retry", "user_exception",
}

# Keep in sync with drift_kind_name() in src/obs/drift.cpp.
KNOWN_DETECTORS = {
    "site_churn", "conflict_trend", "ebr_backlog", "stripe_skew",
    "home_hit_rate",
}

TX_EVENTS = {"tx", "tx.commit", "tx.abort"}


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")


def check_trace(path, require_tx):
    doc = load_json(path)

    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        fail("top level must be an object with a traceEvents list")
    events = doc["traceEvents"]

    counts = {}
    tx_events = 0
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(f"{where}: not an object")
        name = ev.get("name")
        if name not in KNOWN_EVENTS:
            fail(f"{where}: unknown event name {name!r}")
        ph = ev.get("ph")
        if ph not in ("X", "i"):
            fail(f"{where} ({name}): ph must be X or i, got {ph!r}")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{where} ({name}): bad ts {ts!r}")
        if not isinstance(ev.get("pid"), int) or not isinstance(ev.get("tid"), int):
            fail(f"{where} ({name}): pid/tid must be integers")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"{where} ({name}): span without numeric dur: {dur!r}")
        if name == "tx.abort":
            cause = ev.get("args", {}).get("cause")
            if cause not in KNOWN_CAUSES:
                fail(f"{where}: tx.abort with unknown cause {cause!r}")
        counts[name] = counts.get(name, 0) + 1
        if name in TX_EVENTS:
            tx_events += 1

    if require_tx and tx_events == 0:
        fail("no transaction events (tx / tx.commit / tx.abort) in trace")

    return events, counts


def check_timeline(path):
    doc = load_json(path)
    if not isinstance(doc, dict):
        fail(f"{path}: top level must be an object")
    for key in ("interval_ms", "capacity", "dropped"):
        if not isinstance(doc.get(key), int) or doc[key] < 0:
            fail(f"{path}: bad {key}: {doc.get(key)!r}")
    series = doc.get("series")
    if not isinstance(series, list):
        fail(f"{path}: series must be a list")
    for i, s in enumerate(series):
        if not isinstance(s, dict) or not isinstance(s.get("name"), str):
            fail(f"{path}: series[{i}]: missing name")
        if s.get("kind") not in ("delta", "level"):
            fail(f"{path}: series[{i}] ({s.get('name')}): bad kind "
                 f"{s.get('kind')!r}")
    frames = doc.get("frames")
    if not isinstance(frames, list):
        fail(f"{path}: frames must be a list")
    prev_seq = prev_t = None
    for i, fr in enumerate(frames):
        where = f"{path}: frames[{i}]"
        if not isinstance(fr, dict):
            fail(f"{where}: not an object")
        seq, t_ns, values = fr.get("seq"), fr.get("t_ns"), fr.get("values")
        if not isinstance(seq, int) or seq < 0:
            fail(f"{where}: bad seq {seq!r}")
        if prev_seq is not None and seq != prev_seq + 1:
            fail(f"{where}: seq gap: {prev_seq} -> {seq} "
                 "(retained frames must be contiguous)")
        if not isinstance(t_ns, int) or (prev_t is not None and t_ns <= prev_t):
            fail(f"{where}: t_ns not strictly increasing: {prev_t} -> {t_ns}")
        if not isinstance(values, list) or len(values) > len(series):
            fail(f"{where}: values row wider than the series table "
                 f"({len(values) if isinstance(values, list) else '?'} > "
                 f"{len(series)})")
        for v in values:
            if v is not None and not isinstance(v, (int, float)):
                fail(f"{where}: non-numeric value {v!r}")
        prev_seq, prev_t = seq, t_ns
    return len(frames), len(series)


def check_verdicts(path):
    doc = load_json(path)
    if not isinstance(doc, dict):
        fail(f"{path}: top level must be an object")
    for key in ("evaluations", "triggers", "window_frames"):
        if not isinstance(doc.get(key), int) or doc[key] < 0:
            fail(f"{path}: bad {key}: {doc.get(key)!r}")
    verdicts = doc.get("verdicts")
    if not isinstance(verdicts, list):
        fail(f"{path}: verdicts must be a list")
    seen = set()
    for group in ("verdicts", "fired_history"):
        entries = doc.get(group)
        if not isinstance(entries, list):
            fail(f"{path}: {group} must be a list")
        for i, v in enumerate(entries):
            where = f"{path}: {group}[{i}]"
            if not isinstance(v, dict):
                fail(f"{where}: not an object")
            name = v.get("name")
            if name not in KNOWN_DETECTORS:
                fail(f"{where}: unknown detector {name!r}")
            for flag in ("fired", "enough_data"):
                if not isinstance(v.get(flag), bool):
                    fail(f"{where} ({name}): {flag} must be a bool")
            for num in ("value", "threshold"):
                if not isinstance(v.get(num), (int, float)):
                    fail(f"{where} ({name}): {num} must be numeric")
            for seq_key in ("first_seq", "last_seq"):
                if not isinstance(v.get(seq_key), int) or v[seq_key] < 0:
                    fail(f"{where} ({name}): bad {seq_key}")
            if not isinstance(v.get("detail"), str):
                fail(f"{where} ({name}): detail must be a string")
            if group == "verdicts":
                seen.add(name)
            if group == "fired_history" and not v.get("fired"):
                fail(f"{where} ({name}): history entry with fired=false")
    missing = KNOWN_DETECTORS - seen
    if verdicts and missing:
        fail(f"{path}: verdicts missing detectors: {sorted(missing)}")
    return doc["triggers"]


def check_bundle(bundle, require_tx, require_fired):
    manifest_path = os.path.join(bundle, "manifest.json")
    manifest = load_json(manifest_path)
    if not isinstance(manifest, dict):
        fail(f"{manifest_path}: top level must be an object")
    if not isinstance(manifest.get("reason"), str) or not manifest["reason"]:
        fail(f"{manifest_path}: missing reason")
    files = manifest.get("files")
    if not isinstance(files, list) or not files:
        fail(f"{manifest_path}: missing files inventory")
    for name in files:
        if not os.path.isfile(os.path.join(bundle, name)):
            fail(f"{bundle}: manifest lists {name} but it does not exist")

    for required in ("metrics.json", "trace.json"):
        if required not in files:
            fail(f"{bundle}: bundle without {required}")

    metrics = load_json(os.path.join(bundle, "metrics.json"))
    if not isinstance(metrics, dict):
        fail(f"{bundle}/metrics.json: top level must be an object")
    if "config.json" in files:
        config = load_json(os.path.join(bundle, "config.json"))
        if not isinstance(config, dict):
            fail(f"{bundle}/config.json: top level must be an object")

    _, counts = check_trace(os.path.join(bundle, "trace.json"), require_tx)

    frames = n_series = 0
    if "timeline.json" in files:
        frames, n_series = check_timeline(os.path.join(bundle, "timeline.json"))

    triggers = 0
    if "verdicts.json" in files:
        triggers = check_verdicts(os.path.join(bundle, "verdicts.json"))
    if require_fired and triggers == 0:
        fail(f"{bundle}: --require-fired but no drift detector ever triggered")

    print(f"check_trace: OK: bundle {bundle} (reason={manifest['reason']!r}, "
          f"{sum(counts.values())} trace events, {frames} timeline frames x "
          f"{n_series} series, {triggers} drift triggers)")


def main():
    args = sys.argv[1:]
    if not args:
        fail("usage: check_trace.py TRACE.json [--require-tx] | "
             "check_trace.py --bundle DIR [--require-tx] [--require-fired]")
    require_tx = "--require-tx" in args
    require_fired = "--require-fired" in args

    if "--bundle" in args:
        idx = args.index("--bundle")
        if idx + 1 >= len(args):
            fail("--bundle needs a directory")
        check_bundle(args[idx + 1], require_tx, require_fired)
        return

    path = args[0]
    events, counts = check_trace(path, require_tx)
    total = len(events)
    top = ", ".join(f"{n}={c}" for n, c in
                    sorted(counts.items(), key=lambda kv: -kv[1])[:6])
    print(f"check_trace: OK: {total} events ({top})")


if __name__ == "__main__":
    main()
