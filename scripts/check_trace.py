#!/usr/bin/env python3
"""Validate a txtrace Chrome trace_event JSON file (obs/trace.hpp).

Checks, beyond "it parses":
  - top-level object with a `traceEvents` list
  - every event is a complete span ("X", with numeric dur) or a thread-scoped
    instant ("i") -- the writer never emits paired B/E events
  - event names come from the known Ev set
  - tx.abort instants carry args.cause from the known AbortCause taxonomy
  - timestamps are non-negative numbers
  - at least one transaction event is present (the smoke benches always run
    transactions, so an empty trace means the runtime gate ate everything)

Usage: check_trace.py TRACE.json [--require-tx]
Exit code 0 on success; 1 with a message on the first violation.
"""

import json
import sys

# Keep in sync with ev_name() in src/obs/trace.hpp.
KNOWN_EVENTS = {
    "tx", "tx.commit", "tx.abort",
    "future.submit", "future.eval", "future.join",
    "tree.resolve", "read.walk",
    "commit.prevalidate", "commit.assign", "commit.writeback",
    "sched.run", "sched.steal", "sched.park",
    "adaptive.decide",
    "test",
}

# Keep in sync with abort_cause_name() in src/obs/abort_cause.hpp.
KNOWN_CAUSES = {
    "read_validation", "write_write", "stale_snapshot", "tree_order",
    "failpoint_injected", "deadline", "serial_preempt", "stalled",
    "explicit_retry", "user_exception",
}

TX_EVENTS = {"tx", "tx.commit", "tx.abort"}


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) < 2:
        fail("usage: check_trace.py TRACE.json [--require-tx]")
    path = sys.argv[1]
    require_tx = "--require-tx" in sys.argv[2:]

    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")

    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        fail("top level must be an object with a traceEvents list")
    events = doc["traceEvents"]

    counts = {}
    tx_events = 0
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(f"{where}: not an object")
        name = ev.get("name")
        if name not in KNOWN_EVENTS:
            fail(f"{where}: unknown event name {name!r}")
        ph = ev.get("ph")
        if ph not in ("X", "i"):
            fail(f"{where} ({name}): ph must be X or i, got {ph!r}")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{where} ({name}): bad ts {ts!r}")
        if not isinstance(ev.get("pid"), int) or not isinstance(ev.get("tid"), int):
            fail(f"{where} ({name}): pid/tid must be integers")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"{where} ({name}): span without numeric dur: {dur!r}")
        if name == "tx.abort":
            cause = ev.get("args", {}).get("cause")
            if cause not in KNOWN_CAUSES:
                fail(f"{where}: tx.abort with unknown cause {cause!r}")
        counts[name] = counts.get(name, 0) + 1
        if name in TX_EVENTS:
            tx_events += 1

    if require_tx and tx_events == 0:
        fail("no transaction events (tx / tx.commit / tx.abort) in trace")

    total = len(events)
    top = ", ".join(f"{n}={c}" for n, c in
                    sorted(counts.items(), key=lambda kv: -kv[1])[:6])
    print(f"check_trace: OK: {total} events ({top})")


if __name__ == "__main__":
    main()
