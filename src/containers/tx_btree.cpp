// TxBTree implementation. The interesting protocols — leaf-centric write
// buffering, attempt-log finalization, and leaf-local GC — are documented
// in tx_btree.hpp and DESIGN.md §5g; comments here cover the invariants
// each function maintains.

#include "containers/tx_btree.hpp"

#include <algorithm>

#include "core/adaptive.hpp"
#include "core/subtxn.hpp"
#include "core/tx_tree.hpp"
#include "core/runtime.hpp"
#include "stm/transaction.hpp"
#include "util/epoch.hpp"
#include "util/timing.hpp"

namespace txf::containers {

namespace {

/// Process-wide core.btree.* metrics. Shared across tree instances (the
/// registry sums same-name registrations anyway) and constructed lazily so
/// registration order is independent of static-init order.
struct BtreeMetrics {
  obs::Counter splits;
  obs::Counter merges;
  obs::Counter scans;
  obs::Counter scan_splits;
  obs::Counter leaf_trims;
  obs::Counter box_gc;
  obs::Histogram scan_fanout;
  obs::Histogram leaf_flush;
  std::atomic<std::uint64_t> nodes_live{0};
  std::atomic<std::uint64_t> boxes_live{0};
  obs::Registration reg;

  BtreeMetrics() {
    reg.counter("core.btree.splits", splits)
        .counter("core.btree.merges", merges)
        .counter("core.btree.scans", scans)
        .counter("core.btree.scan.splits", scan_splits)
        .counter("core.btree.leaf_local_trims", leaf_trims)
        .counter("core.btree.box_gc", box_gc)
        .histogram("core.btree.scan.fanout", scan_fanout)
        .histogram("core.btree.leaf_flush.size", leaf_flush)
        .atomic("core.btree.nodes_live", nodes_live)
        .atomic("core.btree.boxes_live", boxes_live);
  }
};

BtreeMetrics& metrics() {
  static BtreeMetrics m;
  return m;
}

}  // namespace

/// Attempt-private allocation log: one per (TxTree, TxBTree), parked on the
/// tree via ensure_attempt_state and reconciled once by finalize_log.
/// Futures of one tree append concurrently (mu); finalization runs
/// single-threaded after the tree drained its tasks.
struct TxBTree::TxnLog {
  TxBTree* owner;
  core::Runtime* rt;
  util::SpinLock mu;

  struct NodeAlloc {
    stm::VBoxImpl* box;  // the box this node was written into
    NodeBase* node;
  };
  std::vector<NodeAlloc> nodes;
  // New boxes, in creation order. No useful topological order exists
  // between boxes and the inners referencing them (in-place buffer inserts
  // and split-time child migration both cross creation order), so commit
  // liveness runs as a reachability fixpoint (finalize_log pass 2).
  std::vector<NodeBox*> boxes;
  // Boxes this attempt unlinked from the structure (leaf merges): physically
  // retired at commit, forgotten on abort.
  std::vector<NodeBox*> removed;

  void add_node(stm::VBoxImpl* box, NodeBase* node) {
    std::scoped_lock lock(mu);
    nodes.push_back(NodeAlloc{box, node});
  }
  void add_box(NodeBox* box) {
    std::scoped_lock lock(mu);
    boxes.push_back(box);
  }
  void add_removed(NodeBox* box) {
    std::scoped_lock lock(mu);
    removed.push_back(box);
  }
};

// --- construction / destruction -----------------------------------------

TxBTree::TxBTree() : root_(0) {
  LeafNode* l = new LeafNode();
  l->h.is_leaf = 1;
  root_.unsafe_init(word_of(l));
  root_.impl().set_value_reclaimer(&TxBTree::reclaim_node);
  metrics().nodes_live.fetch_add(1, std::memory_order_relaxed);
}

TxBTree::~TxBTree() {
  // Quiescence contract: every box destructor reclaims the node payloads
  // its version list still owns (set_value_reclaimer in the box factory).
  for (NodeBox* b : all_boxes_) {
    delete b;
    metrics().boxes_live.fetch_sub(1, std::memory_order_relaxed);
  }
  // root_ is destroyed as a member, reclaiming its payloads the same way.
}

void TxBTree::reclaim_node(void* p) {
  NodeBase* n = static_cast<NodeBase*>(p);
  metrics().nodes_live.fetch_sub(1, std::memory_order_relaxed);
  if (n->h.is_leaf)
    delete static_cast<LeafNode*>(n);
  else
    delete static_cast<InnerNode*>(n);
}

// --- small helpers -------------------------------------------------------

TxBTree::NodeBase* TxBTree::read_node(core::TxCtx& ctx,
                                      const NodeBox& box) const {
  return node_of(box.get(ctx));
}

int TxBTree::child_index(const InnerNode* in, Key key) {
  // First separator strictly greater than key names the child; count - 1
  // separators guard count children.
  const int nsep = in->h.count - 1;
  const Key* end = in->seps + nsep;
  return static_cast<int>(std::upper_bound(in->seps, end, key) - in->seps);
}

int TxBTree::leaf_lower_bound(const LeafNode* leaf, Key key) {
  const Key* end = leaf->keys + leaf->h.count;
  return static_cast<int>(std::lower_bound(leaf->keys, end, key) -
                          leaf->keys);
}

TxBTree::TxnLog& TxBTree::log_for(core::TxCtx& ctx) {
  void* state = ctx.tree().ensure_attempt_state(
      this,
      [](void* arg) -> void* {
        return new TxnLog{static_cast<TxBTree*>(arg), nullptr, {}, {}, {}, {}};
      },
      this, &TxBTree::finalize_attempt);
  TxnLog* log = static_cast<TxnLog*>(state);
  log->rt = &ctx.runtime();
  return *log;
}

void TxBTree::trim_local(core::TxCtx& ctx, NodeBox& box) const {
  // Leaf-local GC: the structural operation already owns this box's cache
  // lines, so retire its stale versions now instead of waiting for a global
  // sweep. min_active per the box's own stripe; we are inside the
  // attempt's EBR guard (core::atomically holds one).
  stm::StmEnv& env = ctx.runtime().env();
  const unsigned stripe = env.queue().stripe_of_box(&box.impl());
  const stm::Version min =
      env.registry().min_active(stripe, env.clock().current(stripe));
  box.impl().trim(min, env.epochs());
  metrics().leaf_trims.add();
}

// --- write buffering -----------------------------------------------------

TxBTree::LeafNode* TxBTree::writable_leaf(core::TxCtx& ctx, TxnLog& log,
                                          NodeBox& box, const LeafNode* cur) {
  if (cur->h.owner_tree == ctx.tree().id() &&
      cur->h.owner_node == ctx.node()->idx) {
    // Leaf-centric buffering hit: this sub-transaction already owns the
    // buffer; mutate in place, publish nothing new.
    return const_cast<LeafNode*>(cur);
  }
  LeafNode* w = new LeafNode(*cur);
  w->h.owner_tree = ctx.tree().id();
  w->h.owner_node = ctx.node()->idx;
  w->h.buffered = 0;
  metrics().nodes_live.fetch_add(1, std::memory_order_relaxed);
  log.add_node(&box.impl(), w);
  TXF_FP_POINT("core.btree.leaf.publish");
  box.put(ctx, word_of(w));
  return w;
}

TxBTree::InnerNode* TxBTree::writable_inner(core::TxCtx& ctx, TxnLog& log,
                                            NodeBox& box,
                                            const InnerNode* cur) {
  if (cur->h.owner_tree == ctx.tree().id() &&
      cur->h.owner_node == ctx.node()->idx) {
    return const_cast<InnerNode*>(cur);
  }
  InnerNode* w = new InnerNode(*cur);
  w->h.owner_tree = ctx.tree().id();
  w->h.owner_node = ctx.node()->idx;
  metrics().nodes_live.fetch_add(1, std::memory_order_relaxed);
  log.add_node(&box.impl(), w);
  box.put(ctx, word_of(w));
  return w;
}

// --- point operations ----------------------------------------------------

bool TxBTree::get(core::TxCtx& ctx, Key key, Value& out) const {
  const NodeBase* n = read_node(ctx, root_);
  while (!n->h.is_leaf) {
    const InnerNode* in = static_cast<const InnerNode*>(n);
    n = read_node(ctx, *in->child[child_index(in, key)]);
  }
  const LeafNode* leaf = static_cast<const LeafNode*>(n);
  const int pos = leaf_lower_bound(leaf, key);
  if (pos >= leaf->h.count || leaf->keys[pos] != key) return false;
  out = leaf->vals[pos];
  return true;
}

void TxBTree::put(core::TxCtx& ctx, Key key, Value value) {
  TxnLog& log = log_for(ctx);
  std::vector<PathEnt> path;
  NodeBox* box = &root_;
  NodeBase* n = read_node(ctx, *box);
  while (!n->h.is_leaf) {
    InnerNode* in = static_cast<InnerNode*>(n);
    const int ci = child_index(in, key);
    path.push_back(PathEnt{box, in, ci});
    box = in->child[ci];
    n = read_node(ctx, *box);
  }
  LeafNode* leaf = static_cast<LeafNode*>(n);
  const int pos = leaf_lower_bound(leaf, key);
  if (pos < leaf->h.count && leaf->keys[pos] == key) {
    LeafNode* w = writable_leaf(ctx, log, *box, leaf);
    w->vals[pos] = value;
    ++w->h.buffered;
    return;
  }
  if (leaf->h.count < kLeafCap) {
    LeafNode* w = writable_leaf(ctx, log, *box, leaf);
    const int cnt = w->h.count;
    std::memmove(w->keys + pos + 1, w->keys + pos,
                 sizeof(Key) * static_cast<std::size_t>(cnt - pos));
    std::memmove(w->vals + pos + 1, w->vals + pos,
                 sizeof(Value) * static_cast<std::size_t>(cnt - pos));
    w->keys[pos] = key;
    w->vals[pos] = value;
    ++w->h.count;
    ++w->h.buffered;
    return;
  }
  split_and_insert(ctx, log, path, box, leaf, key, value);
}

namespace {
/// Box factory: every tree box carries the node reclaimer so version trims
/// and box destruction free the payloads they own.
txf::stm::VBox<txf::stm::Word>* make_node_box(txf::stm::Word initial,
                                              void (*reclaimer)(void*)) {
  auto* b = new txf::stm::VBox<txf::stm::Word>(initial);
  b->impl().set_value_reclaimer(reclaimer);
  return b;
}
}  // namespace

void TxBTree::split_and_insert(core::TxCtx& ctx, TxnLog& log,
                               std::vector<PathEnt>& path, NodeBox* box,
                               const LeafNode* leaf, Key key, Value value) {
  TXF_FP_POINT("core.btree.split");
  metrics().splits.add();
  // The split is about to supersede several versions of this box at once;
  // trim its list while its lines are hot (leaf-local GC).
  trim_local(ctx, *box);

  // Build both halves fresh (owned by this sub-transaction), inserting the
  // new key into the correct half.
  LeafNode* left = new LeafNode();
  LeafNode* right = new LeafNode();
  for (LeafNode* h : {left, right}) {
    h->h.is_leaf = 1;
    h->h.owner_tree = ctx.tree().id();
    h->h.owner_node = ctx.node()->idx;
  }
  const int mid = kLeafCap / 2;
  left->h.count = mid;
  std::memcpy(left->keys, leaf->keys, sizeof(Key) * mid);
  std::memcpy(left->vals, leaf->vals, sizeof(Value) * mid);
  right->h.count = kLeafCap - mid;
  std::memcpy(right->keys, leaf->keys + mid, sizeof(Key) * (kLeafCap - mid));
  std::memcpy(right->vals, leaf->vals + mid, sizeof(Value) * (kLeafCap - mid));
  // When the split leaf is this attempt's own buffer its coalesced-op count
  // has not been accounted yet — carry it into the halves so the
  // leaf_flush.size histogram still sees every buffered operation.
  // Published leaves' counts were recorded by the attempt that committed
  // them and must not be double counted.
  const std::uint32_t carried =
      leaf->h.owner_tree == ctx.tree().id() ? leaf->h.buffered : 0;
  left->h.buffered = carried * static_cast<std::uint32_t>(mid) / kLeafCap;
  right->h.buffered = carried - left->h.buffered;
  metrics().nodes_live.fetch_add(2, std::memory_order_relaxed);

  LeafNode* target = key < right->keys[0] ? left : right;
  const int pos = leaf_lower_bound(target, key);
  const int cnt = target->h.count;
  std::memmove(target->keys + pos + 1, target->keys + pos,
               sizeof(Key) * static_cast<std::size_t>(cnt - pos));
  std::memmove(target->vals + pos + 1, target->vals + pos,
               sizeof(Value) * static_cast<std::size_t>(cnt - pos));
  target->keys[pos] = key;
  target->vals[pos] = value;
  ++target->h.count;
  ++target->h.buffered;

  const Key sep = right->keys[0];
  if (path.empty()) {
    // Root leaf split: the root box becomes an inner over two new boxes.
    NodeBox* lbox = make_node_box(word_of(left), &TxBTree::reclaim_node);
    NodeBox* rbox = make_node_box(word_of(right), &TxBTree::reclaim_node);
    log.add_node(&lbox->impl(), left);
    log.add_node(&rbox->impl(), right);
    log.add_box(lbox);
    log.add_box(rbox);
    InnerNode* root = new InnerNode();
    root->h.owner_tree = ctx.tree().id();
    root->h.owner_node = ctx.node()->idx;
    root->h.count = 2;
    root->seps[0] = sep;
    root->child[0] = lbox;
    root->child[1] = rbox;
    metrics().nodes_live.fetch_add(1, std::memory_order_relaxed);
    log.add_node(&root_.impl(), root);
    root_.put(ctx, word_of(root));
  } else {
    // Left half replaces the split leaf in its existing box; the right half
    // gets a fresh box linked into the parent.
    log.add_node(&box->impl(), left);
    box->put(ctx, word_of(left));
    NodeBox* rbox = make_node_box(word_of(right), &TxBTree::reclaim_node);
    log.add_node(&rbox->impl(), right);
    log.add_box(rbox);
    insert_child(ctx, log, path, static_cast<int>(path.size()) - 1, sep,
                 rbox);
  }
  gc_retired_boxes(ctx.runtime().env());
}

void TxBTree::insert_child(core::TxCtx& ctx, TxnLog& log,
                           std::vector<PathEnt>& path, int level, Key sep,
                           NodeBox* rbox) {
  PathEnt& pe = path[static_cast<std::size_t>(level)];
  const InnerNode* in = pe.node;
  if (in->h.count < kInnerCap) {
    InnerNode* w = writable_inner(ctx, log, *pe.box, in);
    const int ci = pe.child;
    const int nch = w->h.count;
    std::memmove(w->seps + ci + 1, w->seps + ci,
                 sizeof(Key) * static_cast<std::size_t>(nch - 1 - ci));
    std::memmove(w->child + ci + 2, w->child + ci + 1,
                 sizeof(NodeBox*) * static_cast<std::size_t>(nch - 1 - ci));
    w->seps[ci] = sep;
    w->child[ci + 1] = rbox;
    ++w->h.count;
    return;
  }

  // Inner split: distribute children across two fresh inners, insert the
  // new (sep, rbox) pair into the correct half, then push the middle
  // separator up a level.
  metrics().splits.add();
  trim_local(ctx, *pe.box);
  const int nch = in->h.count;           // == kInnerCap
  const int lcnt = nch / 2;              // children kept left
  InnerNode* left = new InnerNode();
  InnerNode* right = new InnerNode();
  for (InnerNode* h : {left, right}) {
    h->h.owner_tree = ctx.tree().id();
    h->h.owner_node = ctx.node()->idx;
  }
  left->h.count = static_cast<std::uint16_t>(lcnt);
  std::memcpy(left->seps, in->seps, sizeof(Key) * (lcnt - 1));
  std::memcpy(left->child, in->child, sizeof(NodeBox*) * lcnt);
  right->h.count = static_cast<std::uint16_t>(nch - lcnt);
  std::memcpy(right->seps, in->seps + lcnt, sizeof(Key) * (nch - lcnt - 1));
  std::memcpy(right->child, in->child + lcnt, sizeof(NodeBox*) * (nch - lcnt));
  const Key up_sep = in->seps[lcnt - 1];  // smallest key under right
  metrics().nodes_live.fetch_add(2, std::memory_order_relaxed);

  // Insert (sep, rbox) after child pe.child in whichever half holds it.
  InnerNode* target = pe.child < lcnt ? left : right;
  const int ci = pe.child < lcnt ? pe.child : pe.child - lcnt;
  const int tch = target->h.count;
  std::memmove(target->seps + ci + 1, target->seps + ci,
               sizeof(Key) * static_cast<std::size_t>(tch - 1 - ci));
  std::memmove(target->child + ci + 2, target->child + ci + 1,
               sizeof(NodeBox*) * static_cast<std::size_t>(tch - 1 - ci));
  target->seps[ci] = sep;
  target->child[ci + 1] = rbox;
  ++target->h.count;

  if (level == 0) {
    // Root inner split: root box becomes a 2-way inner over two new boxes.
    NodeBox* lbox = make_node_box(word_of(left), &TxBTree::reclaim_node);
    NodeBox* rrbox = make_node_box(word_of(right), &TxBTree::reclaim_node);
    log.add_node(&lbox->impl(), left);
    log.add_node(&rrbox->impl(), right);
    log.add_box(lbox);
    log.add_box(rrbox);
    InnerNode* root = new InnerNode();
    root->h.owner_tree = ctx.tree().id();
    root->h.owner_node = ctx.node()->idx;
    root->h.count = 2;
    root->seps[0] = up_sep;
    root->child[0] = lbox;
    root->child[1] = rrbox;
    metrics().nodes_live.fetch_add(1, std::memory_order_relaxed);
    log.add_node(&root_.impl(), root);
    root_.put(ctx, word_of(root));
    return;
  }
  // Non-root: left half replaces the split inner in its box; right half
  // gets a fresh box pushed into the parent level.
  log.add_node(&pe.box->impl(), left);
  pe.box->put(ctx, word_of(left));
  NodeBox* rrbox = make_node_box(word_of(right), &TxBTree::reclaim_node);
  log.add_node(&rrbox->impl(), right);
  log.add_box(rrbox);
  insert_child(ctx, log, path, level - 1, up_sep, rrbox);
}

bool TxBTree::erase(core::TxCtx& ctx, Key key) {
  TxnLog& log = log_for(ctx);
  std::vector<PathEnt> path;
  NodeBox* box = &root_;
  NodeBase* n = read_node(ctx, *box);
  while (!n->h.is_leaf) {
    InnerNode* in = static_cast<InnerNode*>(n);
    const int ci = child_index(in, key);
    path.push_back(PathEnt{box, in, ci});
    box = in->child[ci];
    n = read_node(ctx, *box);
  }
  LeafNode* leaf = static_cast<LeafNode*>(n);
  const int pos = leaf_lower_bound(leaf, key);
  if (pos >= leaf->h.count || leaf->keys[pos] != key) return false;

  if (leaf->h.count > 1 || path.empty() ||
      path.back().node->h.count < 2) {
    // Plain removal (also the root-leaf and degenerate-parent cases: an
    // empty leaf is a valid descent target and refills on the next put).
    LeafNode* w = writable_leaf(ctx, log, *box, leaf);
    const int cnt = w->h.count;
    std::memmove(w->keys + pos, w->keys + pos + 1,
                 sizeof(Key) * static_cast<std::size_t>(cnt - pos - 1));
    std::memmove(w->vals + pos, w->vals + pos + 1,
                 sizeof(Value) * static_cast<std::size_t>(cnt - pos - 1));
    --w->h.count;
    ++w->h.buffered;
    return true;
  }

  // Last key of a non-root leaf whose parent keeps other children: unlink
  // the leaf (merge) and retire its box once no snapshot can reach it.
  TXF_FP_POINT("core.btree.merge");
  metrics().merges.add();
  trim_local(ctx, *box);
  PathEnt& pe = path.back();
  InnerNode* w = writable_inner(ctx, log, *pe.box, pe.node);
  const int ci = pe.child;
  const int nch = w->h.count;
  // Dropping child ci removes separator ci (or ci-1 for the last child).
  const int si = ci < nch - 1 ? ci : ci - 1;
  std::memmove(w->seps + si, w->seps + si + 1,
               sizeof(Key) * static_cast<std::size_t>(nch - 2 - si));
  std::memmove(w->child + ci, w->child + ci + 1,
               sizeof(NodeBox*) * static_cast<std::size_t>(nch - 1 - ci));
  --w->h.count;
  log.add_removed(box);
  gc_retired_boxes(ctx.runtime().env());
  return true;
}

// --- range scans ---------------------------------------------------------

void TxBTree::collect(core::TxCtx& ctx, const NodeBox& box, Key lo, Key hi,
                      std::vector<Entry>& out) const {
  const NodeBase* n = read_node(ctx, box);
  if (n->h.is_leaf) {
    const LeafNode* leaf = static_cast<const LeafNode*>(n);
    for (int i = leaf_lower_bound(leaf, lo);
         i < leaf->h.count && leaf->keys[i] < hi; ++i) {
      out.push_back(Entry{leaf->keys[i], leaf->vals[i]});
    }
    return;
  }
  const InnerNode* in = static_cast<const InnerNode*>(n);
  const int a = child_index(in, lo);
  const int b = child_index(in, hi - 1);
  for (int ci = a; ci <= b; ++ci) collect(ctx, *in->child[ci], lo, hi, out);
}

bool TxBTree::ScanGate::choose_split() noexcept {
  const std::uint64_t seq =
      seq_ns_per_key_x16.load(std::memory_order_relaxed);
  const std::uint64_t par =
      split_ns_per_key_x16.load(std::memory_order_relaxed);
  if (seq == 0) return false;  // sample the cheap, safe arm first
  if (par == 0) return true;   // then the split arm once
  const std::uint32_t t = tick.fetch_add(1, std::memory_order_relaxed) + 1;
  // Split must win by a 1/8 margin: preemption noise on a loaded host can
  // hand the split arm a lucky sample, and flapping into fan-out costs far
  // more than staying sequential a beat too long. Real multicore speedups
  // clear the margin by construction.
  const bool split_wins = par + par / 8 < seq;
  return (t & 63u) == 0 ? !split_wins : split_wins;
}

void TxBTree::ScanGate::note(bool split, std::uint64_t ns,
                             std::size_t keys) noexcept {
  const std::uint64_t v = ns * 16 / (keys == 0 ? 1 : keys);
  auto& ewma = split ? split_ns_per_key_x16 : seq_ns_per_key_x16;
  const std::uint64_t prev = ewma.load(std::memory_order_relaxed);
  ewma.store(prev == 0 ? v : (prev * 7 + v) / 8, std::memory_order_relaxed);
}

std::size_t TxBTree::scan_collect(core::TxCtx& ctx, Key lo, Key hi,
                                  std::vector<Entry>& out,
                                  const void* site) const {
  metrics().scans.add();
  if (lo >= hi) return 0;
  const NodeBase* n = read_node(ctx, root_);
  if (n->h.is_leaf) {
    metrics().scan_fanout.record(1);
    const LeafNode* leaf = static_cast<const LeafNode*>(n);
    for (int i = leaf_lower_bound(leaf, lo);
         i < leaf->h.count && leaf->keys[i] < hi; ++i) {
      out.push_back(Entry{leaf->keys[i], leaf->vals[i]});
    }
    return out.size();
  }
  const InnerNode* in = static_cast<const InnerNode*>(n);
  const int a = child_index(in, lo);
  const int b = child_index(in, hi - 1);
  metrics().scan_fanout.record(static_cast<std::uint64_t>(b - a + 1));
  if (b == a) {
    collect(ctx, *in->child[a], lo, hi, out);
    return out.size();
  }
  // Two strategies for a multi-subtree range, decided in two layers: this
  // gate picks split-vs-sequential by realized per-key cost (the price of
  // the submit machinery itself), and when it splits, the core adaptive
  // scheduler still prices each subtree body per site (eliding bodies too
  // small to ship to a pool thread). Fixed modes pin the strategy:
  // kAlwaysInline scans collect sequentially outright — the submits would
  // all be elided anyway — while kAlwaysParallel/kAlwaysOrdered always
  // split (the ablation benches need the unconditional fan-out).
  const core::SchedulingMode mode = ctx.runtime().config().scheduling;
  const bool adaptive = mode == core::SchedulingMode::kAdaptive;
  const bool split =
      mode == core::SchedulingMode::kAlwaysParallel ||
      mode == core::SchedulingMode::kAlwaysOrdered ||
      (adaptive && scan_gate_.choose_split());
  const std::uint64_t t0 = adaptive ? util::now_ns() : 0;
  if (!split) {
    for (int ci = a; ci <= b; ++ci) collect(ctx, *in->child[ci], lo, hi, out);
    if (adaptive) scan_gate_.note(false, util::now_ns() - t0, out.size());
    return out.size();
  }
  metrics().scan_splits.add();
  // Fanout: one future per covered subtree except the last, which the
  // continuation collects itself; join preserves submission (= key) order,
  // so fn observes exactly the sequential execution. The adaptive
  // scheduler may elide any or all of these inline — semantics identical.
  if (site == nullptr) site = TXF_SUBMIT_SITE;
  std::vector<core::TxFuture<std::vector<Entry>>> parts;
  parts.reserve(static_cast<std::size_t>(b - a));
  for (int ci = a; ci < b; ++ci) {
    NodeBox* cb = in->child[ci];
    parts.push_back(ctx.submit_at(site, [this, cb, lo, hi](core::TxCtx& c) {
      TXF_FP_POINT("core.btree.scan.subtree");
      std::vector<Entry> part;
      collect(c, *cb, lo, hi, part);
      return part;
    }));
  }
  std::vector<Entry> tail;
  collect(ctx, *in->child[b], lo, hi, tail);
  for (core::TxFuture<std::vector<Entry>>& f : parts) {
    std::vector<Entry> part = f.get(ctx);
    out.insert(out.end(), part.begin(), part.end());
  }
  out.insert(out.end(), tail.begin(), tail.end());
  if (adaptive) scan_gate_.note(true, util::now_ns() - t0, out.size());
  return out.size();
}

// --- attempt finalization ------------------------------------------------

void TxBTree::finalize_attempt(void* state, bool committed) {
  TxnLog* log = static_cast<TxnLog*>(state);
  log->owner->finalize_log(*log, committed);
  delete log;
}

namespace {
/// Does this box's permanent list hold `word` as a value? Caller must hold
/// an EBR guard (chains may be concurrently trimmed) unless the box is
/// attempt-private.
bool chain_holds(const txf::stm::VBoxImpl& box, txf::stm::Word word) {
  const txf::stm::PermanentVersion* p = box.permanent_head();
  while (p != nullptr && p != txf::stm::trimmed_tail()) {
    if (p->value == word) return true;
    p = p->next.load(std::memory_order_acquire);
  }
  return false;
}
}  // namespace

void TxBTree::finalize_log(TxnLog& log, bool committed) {
  BtreeMetrics& m = metrics();
  auto logged_box_index = [&](const stm::VBoxImpl* impl) -> int {
    for (std::size_t i = 0; i < log.boxes.size(); ++i)
      if (&log.boxes[i]->impl() == impl) return static_cast<int>(i);
    return -1;
  };

  if (!committed) {
    // Nothing was published: every allocation is attempt-private garbage.
    // A node parked as a logged box's initial version is freed by that
    // box's destructor (value reclaimer); everything else is freed here.
    for (const TxnLog::NodeAlloc& na : log.nodes) {
      if (logged_box_index(na.box) >= 0 &&
          chain_holds(*na.box, word_of(na.node))) {
        continue;
      }
      reclaim_node(na.node);
    }
    for (NodeBox* b : log.boxes) delete b;
    return;
  }

  // Committed: our registry snapshot is still published (TxTree runs
  // finalizers before release_registry), so the versions this attempt just
  // committed cannot be trimmed out from under these walks.
  stm::StmEnv& env = log.rt->env();
  util::EpochDomain::Guard guard(env.epochs());

  // Pass 1: which logged allocations were actually published? A node is
  // published iff its box's permanent list holds it (dead incarnations and
  // superseded in-attempt buffers are not).
  std::vector<char> node_published(log.nodes.size(), 0);
  for (std::size_t i = 0; i < log.nodes.size(); ++i) {
    node_published[i] =
        chain_holds(*log.nodes[i].box, word_of(log.nodes[i].node)) ? 1 : 0;
  }

  // Pass 2: box liveness as a reachability fixpoint. A new box is live iff
  // a published inner residing in a pre-existing or live box references
  // it. No single visiting order works here — an inner buffer logged early
  // can absorb (in place) a child box logged after it, and a split can
  // migrate early children into late boxes — so iterate to fixpoint
  // (bounded by the log size; attempt logs are small).
  std::vector<char> box_live(log.boxes.size(), 0);
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t ni = 0; ni < log.nodes.size(); ++ni) {
      if (!node_published[ni]) continue;
      const NodeBase* n = log.nodes[ni].node;
      if (n->h.is_leaf) continue;
      const int owner = logged_box_index(log.nodes[ni].box);
      if (owner >= 0 && !box_live[static_cast<std::size_t>(owner)]) continue;
      const InnerNode* in = static_cast<const InnerNode*>(n);
      for (int c = 0; c < in->h.count; ++c) {
        const int ci = logged_box_index(&in->child[c]->impl());
        if (ci >= 0 && !box_live[static_cast<std::size_t>(ci)]) {
          box_live[static_cast<std::size_t>(ci)] = 1;
          changed = true;
        }
      }
    }
  }

  // Pass 3: free unpublished nodes; account published leaf buffers.
  for (std::size_t i = 0; i < log.nodes.size(); ++i) {
    const TxnLog::NodeAlloc& na = log.nodes[i];
    if (node_published[i]) {
      if (na.node->h.is_leaf && na.node->h.buffered > 0)
        m.leaf_flush.record(na.node->h.buffered);
      continue;  // owned by the version list (trim / box dtor reclaims)
    }
    if (logged_box_index(na.box) >= 0 &&
        chain_holds(*na.box, word_of(na.node))) {
      continue;  // a garbage box's initial version: freed with the box
    }
    reclaim_node(na.node);
  }

  // Pass 4: live boxes join the structure; garbage boxes are destroyed
  // (their destructors reclaim the versions they still own).
  for (std::size_t i = 0; i < log.boxes.size(); ++i) {
    if (box_live[i]) {
      std::scoped_lock lock(boxes_mu_);
      all_boxes_.push_back(log.boxes[i]);
      m.boxes_live.fetch_add(1, std::memory_order_relaxed);
    } else {
      delete log.boxes[i];
    }
  }

  // Pass 5: boxes this attempt unlinked from the structure retire behind a
  // per-stripe clock fence; gc_retired_boxes frees them once every live
  // snapshot is past it. Same-attempt creations were decided in pass 4.
  for (NodeBox* rb : log.removed) {
    if (logged_box_index(&rb->impl()) >= 0) continue;
    RetiredBox r;
    r.box = rb;
    r.fence.resize(env.stripes());
    for (unsigned s = 0; s < env.stripes(); ++s)
      r.fence[s] = env.clock().current(s);
    std::scoped_lock lock(boxes_mu_);
    retired_.push_back(std::move(r));
  }
}

void TxBTree::gc_retired_boxes(stm::StmEnv& env) {
  std::vector<NodeBox*> reclaim;
  {
    std::scoped_lock lock(boxes_mu_);
    if (retired_.empty()) return;
    for (std::size_t i = 0; i < retired_.size();) {
      bool safe = true;
      for (unsigned s = 0; s < env.stripes() && safe; ++s) {
        if (env.registry().min_active(s, env.clock().current(s)) <
            retired_[i].fence[s]) {
          safe = false;
        }
      }
      if (!safe) {
        ++i;
        continue;
      }
      NodeBox* b = retired_[i].box;
      retired_[i] = std::move(retired_.back());
      retired_.pop_back();
      auto it = std::find(all_boxes_.begin(), all_boxes_.end(), b);
      if (it != all_boxes_.end()) {
        *it = all_boxes_.back();
        all_boxes_.pop_back();
      }
      reclaim.push_back(b);
    }
  }
  for (NodeBox* b : reclaim) {
    // EBR, not direct delete: a reader pinned before the fence passed may
    // still be traversing the box's version list.
    metrics().boxes_live.fetch_sub(1, std::memory_order_relaxed);
    metrics().box_gc.add();
    env.epochs().retire(b);
  }
}

}  // namespace txf::containers
