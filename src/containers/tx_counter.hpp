// TxCounter: a transactional counter plus a striped variant.
//
// The plain counter is a single VBox<long> — every read-modify-write
// serializes, which is exactly the contention hot spot used by the paper's
// conflict-prone workloads. The striped variant spreads increments over N
// cells (readers sum them), trading read cost for write scalability; it is
// what a real application would use for an ID generator.
#pragma once

#include <cstddef>
#include <deque>

#include "stm/vbox.hpp"

namespace txf::containers {

class TxCounter {
 public:
  explicit TxCounter(long initial = 0) : box_(initial) {}

  template <typename Ctx>
  long get(Ctx& ctx) const {
    return box_.get(ctx);
  }

  template <typename Ctx>
  void add(Ctx& ctx, long delta) {
    box_.put(ctx, box_.get(ctx) + delta);
  }

  /// Post-increment: returns the pre-add value (useful as an ID source).
  template <typename Ctx>
  long fetch_add(Ctx& ctx, long delta) {
    const long v = box_.get(ctx);
    box_.put(ctx, v + delta);
    return v;
  }

  long peek() const { return box_.peek_committed(); }

 private:
  stm::VBox<long> box_;
};

class StripedTxCounter {
 public:
  explicit StripedTxCounter(std::size_t stripes = 16) {
    for (std::size_t i = 0; i < stripes; ++i) cells_.emplace_back(0L);
  }

  /// Add to the stripe selected by `hint` (pass a thread id hash).
  template <typename Ctx>
  void add(Ctx& ctx, long delta, std::size_t hint) {
    auto& cell = cells_[hint % cells_.size()];
    cell.put(ctx, cell.get(ctx) + delta);
  }

  template <typename Ctx>
  long get(Ctx& ctx) const {
    long sum = 0;
    for (auto& c : cells_) sum += c.get(ctx);
    return sum;
  }

  long peek() const {
    long sum = 0;
    for (auto& c : cells_) sum += c.peek_committed();
    return sum;
  }

  std::size_t stripes() const noexcept { return cells_.size(); }

 private:
  mutable std::deque<stm::VBox<long>> cells_;
};

}  // namespace txf::containers
