// TxVector: fixed-capacity transactional array of small values, plus a
// transactional size for stack/append usage.
//
// Element type T must satisfy the VBox constraints (trivially copyable,
// <= 8 bytes). Like TxMap, capacity is fixed at construction (DESIGN.md §6).
#pragma once

#include <cassert>
#include <cstddef>
#include <deque>
#include <stdexcept>

#include "stm/vbox.hpp"

namespace txf::containers {

template <typename T>
class TxVector {
 public:
  explicit TxVector(std::size_t capacity, const T& fill = T{}) : size_(0L) {
    for (std::size_t i = 0; i < capacity; ++i) cells_.emplace_back(fill);
  }

  struct TxVectorFull : std::runtime_error {
    TxVectorFull() : std::runtime_error("TxVector capacity exceeded") {}
  };

  std::size_t capacity() const noexcept { return cells_.size(); }

  template <typename Ctx>
  T at(Ctx& ctx, std::size_t i) const {
    assert(i < cells_.size());
    return cells_[i].get(ctx);
  }

  template <typename Ctx>
  void set(Ctx& ctx, std::size_t i, const T& v) {
    assert(i < cells_.size());
    cells_[i].put(ctx, v);
  }

  template <typename Ctx>
  long size(Ctx& ctx) const {
    return size_.get(ctx);
  }

  template <typename Ctx>
  void push_back(Ctx& ctx, const T& v) {
    const long n = size_.get(ctx);
    if (static_cast<std::size_t>(n) >= cells_.size()) throw TxVectorFull{};
    cells_[static_cast<std::size_t>(n)].put(ctx, v);
    size_.put(ctx, n + 1);
  }

  template <typename Ctx>
  T pop_back(Ctx& ctx) {
    const long n = size_.get(ctx);
    assert(n > 0);
    const T v = cells_[static_cast<std::size_t>(n - 1)].get(ctx);
    size_.put(ctx, n - 1);
    return v;
  }

  /// Non-transactional: committed element (tests / post-run inspection).
  T peek(std::size_t i) const { return cells_[i].peek_committed(); }
  long peek_size() const { return size_.peek_committed(); }

 private:
  mutable std::deque<stm::VBox<T>> cells_;
  mutable stm::VBox<long> size_;
};

}  // namespace txf::containers
