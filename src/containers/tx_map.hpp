// TxMap: a fixed-capacity transactional hash map over VBoxes.
//
// Open addressing with linear probing; each slot is a (key, value) pair of
// versioned boxes, so lookups, inserts, updates and removals are plain
// transactional reads/writes — the STM provides isolation, and racing
// inserts to the same slot are resolved by read-set validation (the claimer
// read the slot as empty; a concurrent claim invalidates that read).
//
// Design notes (DESIGN.md §6): capacity is fixed at construction like a
// database heap — the paper's workloads (Vacation tables, TPC-C relations)
// size their tables up front and rows are never physically reclaimed while
// the table lives, which avoids unbounded version-chain garbage without a
// tracing GC. Values are 64-bit words: either scalars or pointers to rows
// whose mutable fields are themselves VBoxes.
//
// All methods are usable from any transactional context type `Ctx` that
// provides `Word read(VBoxImpl&)` / `void write(VBoxImpl&, Word)` — both
// flat stm::Transaction and core::TxCtx qualify.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "stm/vbox.hpp"

namespace txf::containers {

class TxMap {
 public:
  using Key = std::uint64_t;
  using Value = stm::Word;

  /// `capacity_hint` is rounded up to a power of two; the map holds at most
  /// ~85% of that many keys (throws TxMapFull beyond).
  explicit TxMap(std::size_t capacity_hint) {
    std::size_t cap = 16;
    while (cap < capacity_hint + capacity_hint / 4) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
    max_load_ = cap - cap / 8;
  }

  struct TxMapFull : std::runtime_error {
    TxMapFull() : std::runtime_error("TxMap capacity exceeded") {}
  };

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Look up `key`; returns the value or nullopt.
  template <typename Ctx>
  std::optional<Value> get(Ctx& ctx, Key key) const {
    const Key stored = encode(key);
    for (std::size_t i = index_of(key);; i = (i + 1) & mask_) {
      const Key k = ctx.read(slots_[i].key.impl());
      if (k == kEmpty) return std::nullopt;
      if (k == stored) {
        const Value v = ctx.read(slots_[i].value.impl());
        if (v == kTombstone) return std::nullopt;
        return v;
      }
    }
  }

  template <typename Ctx>
  bool contains(Ctx& ctx, Key key) const {
    return get(ctx, key).has_value();
  }

  /// Insert or update. Returns true if the key was newly inserted.
  template <typename Ctx>
  bool put(Ctx& ctx, Key key, Value value) {
    assert(value != kTombstone && "reserved sentinel value");
    const Key stored = encode(key);
    std::size_t probes = 0;
    for (std::size_t i = index_of(key);; i = (i + 1) & mask_) {
      if (++probes > max_load_) throw TxMapFull{};
      const Key k = ctx.read(slots_[i].key.impl());
      if (k == kEmpty) {
        // Claim the slot. The read above is in the read set, so two
        // transactions claiming the same slot conflict and one retries.
        ctx.write(slots_[i].key.impl(), stored);
        ctx.write(slots_[i].value.impl(), value);
        return true;
      }
      if (k == stored) {
        const bool was_dead = ctx.read(slots_[i].value.impl()) == kTombstone;
        ctx.write(slots_[i].value.impl(), value);
        return was_dead;
      }
    }
  }

  /// Remove a key. Returns true if it was present. The slot's key stays
  /// claimed (standard tombstone scheme for open addressing).
  template <typename Ctx>
  bool erase(Ctx& ctx, Key key) {
    const Key stored = encode(key);
    for (std::size_t i = index_of(key);; i = (i + 1) & mask_) {
      const Key k = ctx.read(slots_[i].key.impl());
      if (k == kEmpty) return false;
      if (k == stored) {
        if (ctx.read(slots_[i].value.impl()) == kTombstone) return false;
        ctx.write(slots_[i].value.impl(), kTombstone);
        return true;
      }
    }
  }

  /// Visit every live (key, value) pair in slot order. This is the "long
  /// read cycle" primitive the paper parallelizes via futures; use
  /// scan_range to split the table across futures.
  template <typename Ctx, typename Fn>
  void for_each(Ctx& ctx, Fn&& fn) const {
    scan_range(ctx, 0, capacity(), std::forward<Fn>(fn));
  }

  /// Visit live pairs with slot index in [begin, end).
  template <typename Ctx, typename Fn>
  void scan_range(Ctx& ctx, std::size_t begin, std::size_t end,
                  Fn&& fn) const {
    for (std::size_t i = begin; i < end && i < capacity(); ++i) {
      const Key k = ctx.read(slots_[i].key.impl());
      if (k == kEmpty) continue;
      const Value v = ctx.read(slots_[i].value.impl());
      if (v == kTombstone) continue;
      fn(decode(k), v);
    }
  }

  /// Number of live keys (transactional full scan — O(capacity)).
  template <typename Ctx>
  std::size_t size(Ctx& ctx) const {
    std::size_t n = 0;
    for_each(ctx, [&](Key, Value) { ++n; });
    return n;
  }

  /// NON-transactional visit of every slot's underlying boxes (key box,
  /// value box), in slot order. Diagnostics/GC only: the soak harness walks
  /// the keyspace this way to check version-list resource bounds. Caller
  /// must hold an EBR guard or have quiesced the env.
  template <typename Fn>
  void for_each_box(Fn&& fn) const {
    for (std::size_t i = 0; i <= mask_; ++i) {
      fn(slots_[i].key.impl());
      fn(slots_[i].value.impl());
    }
  }

 private:
  static constexpr Key kEmpty = 0;
  static constexpr Value kTombstone = ~Value{0};

  struct Slot {
    stm::VBox<Key> key{kEmpty};
    stm::VBox<Value> value{0};
  };

  static Key encode(Key key) {
    assert(key != ~Key{0} && "key sentinel reserved");
    return key + 1;  // shift so 0 can mean "empty"
  }
  static Key decode(Key stored) { return stored - 1; }

  std::size_t index_of(Key key) const noexcept {
    std::uint64_t h = key + 1;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h) & mask_;
  }

  std::size_t mask_;
  std::size_t max_load_;
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace txf::containers
