// TxList: a sorted transactional linked list (the classic STM "IntSet"
// structure used since DSTM/TL2 to benchmark transactional data access).
//
// Nodes are arena-owned; links are VBoxes, so traversal reads and splice
// writes are plain transactional operations and conflict detection falls
// out of read-set validation (a racing insert/remove at the splice point
// invalidates the traversal read). Removed nodes stay in the arena — their
// versions may still be readable by older snapshots — mirroring the table
// containers' no-physical-reclaim policy (DESIGN.md §6).
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>

#include "stm/vbox.hpp"

namespace txf::containers {

class TxList {
 public:
  using Key = std::int64_t;

  TxList() {
    // Sentinels simplify the splice logic: head < everything < tail.
    head_ = alloc_node(std::numeric_limits<Key>::min());
    Node* tail = alloc_node(std::numeric_limits<Key>::max());
    head_->next.unsafe_init(tail);
  }

  TxList(const TxList&) = delete;
  TxList& operator=(const TxList&) = delete;

  /// Insert `key`; returns false if already present.
  template <typename Ctx>
  bool insert(Ctx& ctx, Key key) {
    auto [prev, curr] = locate(ctx, key);
    if (curr->key == key) return false;
    Node* node = alloc_node(key);
    node->next.put(ctx, curr);
    prev->next.put(ctx, node);
    size_.put(ctx, size_.get(ctx) + 1);
    return true;
  }

  /// Remove `key`; returns false if absent.
  template <typename Ctx>
  bool erase(Ctx& ctx, Key key) {
    auto [prev, curr] = locate(ctx, key);
    if (curr->key != key) return false;
    prev->next.put(ctx, curr->next.get(ctx));
    size_.put(ctx, size_.get(ctx) - 1);
    return true;
  }

  template <typename Ctx>
  bool contains(Ctx& ctx, Key key) const {
    auto [prev, curr] = locate(ctx, key);
    (void)prev;
    return curr->key == key;
  }

  template <typename Ctx>
  long size(Ctx& ctx) const {
    return size_.get(ctx);
  }

  /// Sum of all keys (a long read transaction over the whole list).
  template <typename Ctx>
  long sum(Ctx& ctx) const {
    long total = 0;
    Node* curr = head_->next.get(ctx);
    while (curr->key != std::numeric_limits<Key>::max()) {
      total += curr->key;
      curr = curr->next.get(ctx);
    }
    return total;
  }

  /// Sorted-order check (test invariant; transactional full scan).
  template <typename Ctx>
  bool is_sorted(Ctx& ctx) const {
    Key last = std::numeric_limits<Key>::min();
    Node* curr = head_->next.get(ctx);
    while (curr->key != std::numeric_limits<Key>::max()) {
      if (curr->key <= last) return false;
      last = curr->key;
      curr = curr->next.get(ctx);
    }
    return true;
  }

 private:
  struct Node {
    Key key = 0;
    stm::VBox<Node*> next{nullptr};
  };

  Node* alloc_node(Key key) {
    std::lock_guard<std::mutex> lock(arena_mutex_);
    arena_.emplace_back();
    Node& n = arena_.back();
    n.key = key;
    return &n;
  }

  /// Find (prev, curr) with prev->key < key <= curr->key.
  template <typename Ctx>
  std::pair<Node*, Node*> locate(Ctx& ctx, Key key) const {
    Node* prev = head_;
    Node* curr = head_->next.get(ctx);
    while (curr->key < key) {
      prev = curr;
      curr = curr->next.get(ctx);
    }
    return {prev, curr};
  }

  Node* head_;
  mutable stm::VBox<long> size_{0L};
  mutable std::mutex arena_mutex_;
  std::deque<Node> arena_;
};

}  // namespace txf::containers
