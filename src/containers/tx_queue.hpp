// TxQueue: a fixed-capacity transactional FIFO ring buffer.
//
// push/pop are plain transactional operations, so a producer's push and a
// consumer's pop compose with arbitrary other transactional work and
// commit atomically with it. Combined with blocking retry
// (core::retry_now / atomically's wait-on-conflict), this gives the
// classic STM bounded channel.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>

#include "stm/vbox.hpp"

namespace txf::containers {

template <typename T>
class TxQueue {
 public:
  explicit TxQueue(std::size_t capacity) : capacity_(capacity) {
    for (std::size_t i = 0; i < capacity; ++i) cells_.emplace_back(T{});
  }

  std::size_t capacity() const noexcept { return capacity_; }

  template <typename Ctx>
  long size(Ctx& ctx) const {
    return tail_.get(ctx) - head_.get(ctx);
  }

  template <typename Ctx>
  bool empty(Ctx& ctx) const {
    return size(ctx) == 0;
  }

  template <typename Ctx>
  bool full(Ctx& ctx) const {
    return static_cast<std::size_t>(size(ctx)) == capacity_;
  }

  /// Append; returns false when full (use try-push + retry for blocking).
  template <typename Ctx>
  bool try_push(Ctx& ctx, const T& value) {
    const long t = tail_.get(ctx);
    if (static_cast<std::size_t>(t - head_.get(ctx)) == capacity_)
      return false;
    cells_[static_cast<std::size_t>(t) % capacity_].put(ctx, value);
    tail_.put(ctx, t + 1);
    return true;
  }

  /// Pop the oldest element, or nullopt when empty.
  template <typename Ctx>
  std::optional<T> try_pop(Ctx& ctx) {
    const long h = head_.get(ctx);
    if (tail_.get(ctx) == h) return std::nullopt;
    const T v = cells_[static_cast<std::size_t>(h) % capacity_].get(ctx);
    head_.put(ctx, h + 1);
    return v;
  }

  /// Read the oldest element without consuming it.
  template <typename Ctx>
  std::optional<T> peek(Ctx& ctx) const {
    const long h = head_.get(ctx);
    if (tail_.get(ctx) == h) return std::nullopt;
    return cells_[static_cast<std::size_t>(h) % capacity_].get(ctx);
  }

 private:
  std::size_t capacity_;
  mutable std::deque<stm::VBox<T>> cells_;
  mutable stm::VBox<long> head_{0L};
  mutable stm::VBox<long> tail_{0L};
};

}  // namespace txf::containers
