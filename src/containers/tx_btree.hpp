// TxBTree: a transactional B+-tree with leaf-centric write buffering and
// future-parallelized range scans (DESIGN.md §5g, ROADMAP item 1).
//
// Layout. Every tree position is a VBox whose Word is a pointer to an
// immutable-once-published node (LeafNode or InnerNode, vbpt-style
// copy-on-write). Inner nodes hold *box* pointers to their children, so a
// leaf update rewrites exactly one box — the leaf's — and never touches the
// path to the root. Adjacent keys share a leaf, so a transaction that puts
// k clustered keys publishes ONE versioned leaf buffer instead of k
// independent boxes: its commit footprint is a single box, which hashes to
// a single stripe of the sharded commit spine (DESIGN.md §5f) and takes the
// zero-coordination single-stripe path.
//
// Leaf-centric write buffering. The first put into a leaf copies the
// visible node into an attempt-private buffer, stamps it with an ownership
// token (TxTree::id(), SubTxn idx), and issues one STM write of the buffer
// pointer. Further puts by the SAME sub-transaction mutate the buffer in
// place — no extra STM writes, no extra allocations. The token makes this
// safe against every replay mechanism in the engine: a different node of
// the same tree (a future vs its continuation), a reincarnated node, or a
// later tree reusing this tree's address all fail the exact (tree id, node
// idx) match and fall back to copy-on-write, so a buffer is only ever
// mutated by the sub-transaction that created it, while it is running, on
// its own thread. Everyone else sees it — if at all — only after that
// node's commit, through the engine's release/acquire publication.
//
// Version GC is leaf-local: each box carries a value reclaimer
// (stm::VBoxImpl::set_value_reclaimer), so trimming a box's version list
// also retires the node payloads those versions own, and structural
// operations (split/merge) trim the box they are touching right there —
// the versions most likely to be stale are the ones whose cache lines the
// split just pulled in. Boxes merged out of the structure are parked on a
// retired list with a per-stripe clock fence and physically reclaimed by
// later structural operations once no live snapshot can reach them.
//
// Attempt-private allocations (buffers, split nodes, new boxes) are logged
// per (tree, container) via TxTree::ensure_attempt_state and reconciled
// exactly once when the attempt's fate is known: on abort everything
// unpublished is freed; on commit, reachability against the just-committed
// version lists decides ownership (see finalize_log in tx_btree.cpp).
//
// Scans: scan(lo, hi, fn) splits the key range at the root's fanout
// boundaries and submits one future per covered subtree through
// TxCtx::submit_at, so the adaptive scheduler (core/adaptive.hpp) decides
// parallel-vs-inline per scan site; results join in key order before `fn`
// runs, and strong ordering semantics makes the parallel and sequential
// executions indistinguishable (DESIGN.md §5g has the serializability
// argument).
//
// Concurrency contract: all transactional methods require a core::TxCtx
// (the tree driver holds the EBR guard node dereferences rely on, and scan
// needs TxCtx::submit). Construction, destruction, and for_each_box follow
// the usual container rules (quiescence; see TxMap).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/api.hpp"
#include "obs/metrics.hpp"
#include "stm/vbox.hpp"
#include "util/failpoint.hpp"
#include "util/spin_lock.hpp"

namespace txf::containers {

class TxBTree {
 public:
  using Key = std::uint64_t;
  using Value = stm::Word;

  /// Fanout. Leaves are deliberately wide: one leaf read covers up to
  /// kLeafCap entries with a single read-set entry, and one leaf buffer
  /// coalesces up to kLeafCap puts into a single write-set entry.
  static constexpr int kLeafCap = 32;
  static constexpr int kInnerCap = 16;

  TxBTree();
  /// Destruction requires quiescence. Frees every node version still
  /// reachable from any box, then the boxes themselves.
  ~TxBTree();

  TxBTree(const TxBTree&) = delete;
  TxBTree& operator=(const TxBTree&) = delete;

  /// Point lookup; false if absent.
  bool get(core::TxCtx& ctx, Key key, Value& out) const;
  bool contains(core::TxCtx& ctx, Key key) const {
    Value v;
    return get(ctx, key, v);
  }

  /// Insert or overwrite.
  void put(core::TxCtx& ctx, Key key, Value value);

  /// Remove; false if absent. Emptying a leaf removes it from its parent
  /// (when the parent keeps >= 1 other child) and retires its box.
  bool erase(core::TxCtx& ctx, Key key);

  /// Ordered range scan over [lo, hi): applies fn(key, value) in ascending
  /// key order and returns the number of entries visited. When the range
  /// spans several root-level subtrees the per-subtree collections run as
  /// transactional futures (parallel or inline per the adaptive
  /// scheduler); `site`, when non-null, keys the scheduler's per-site
  /// statistics (pass TXF_SUBMIT_SITE at the call site) — distinct call
  /// sites then learn independent parallel-vs-inline decisions.
  template <typename Fn>
  std::size_t scan(core::TxCtx& ctx, Key lo, Key hi, Fn&& fn,
                   const void* site = nullptr) const {
    std::vector<Entry> out;
    scan_collect(ctx, lo, hi, out, site);
    for (const Entry& e : out) fn(e.key, e.value);
    return out.size();
  }

  /// Non-transactional diagnostics walk over every box of the tree (root
  /// included). Same contract as TxMap::for_each_box: concurrent use is
  /// racy-by-nature; call quiescent for exact answers.
  template <typename Fn>
  void for_each_box(Fn&& fn) const {
    fn(root_.impl());
    std::scoped_lock lock(boxes_mu_);
    for (stm::VBox<stm::Word>* b : all_boxes_) fn(b->impl());
  }

  /// Number of boxes currently backing the tree (diagnostics).
  std::size_t box_count() const {
    std::scoped_lock lock(boxes_mu_);
    return all_boxes_.size() + 1;
  }

  /// Reclaim retired (merged-away) boxes whose clock fence has passed.
  /// Called opportunistically by structural operations; exposed for tests
  /// and shutdown paths.
  void gc_retired_boxes(stm::StmEnv& env);

 private:
  using NodeBox = stm::VBox<stm::Word>;

  struct NodeHeader {
    // Ownership token for in-place buffer mutation: the (TxTree::id(),
    // SubTxn idx) pair that created this node. Stale after publication by
    // design — tree ids are never reused, so a stale token can never match
    // a live attempt.
    std::uint64_t owner_tree = 0;
    std::uint32_t owner_node = 0xffffffffu;
    std::uint16_t is_leaf = 0;
    std::uint16_t count = 0;
    // Buffered operations (puts/erases) coalesced into this buffer; feeds
    // the core.btree.leaf_flush.size histogram at commit.
    std::uint32_t buffered = 0;
  };

  struct NodeBase {
    NodeHeader h;
  };
  struct LeafNode : NodeBase {
    Key keys[kLeafCap];
    Value vals[kLeafCap];
  };
  struct InnerNode : NodeBase {
    // child[i] covers [seps[i-1], seps[i]); seps has h.count - 1 entries.
    Key seps[kInnerCap - 1];
    NodeBox* child[kInnerCap];
  };

  struct Entry {
    Key key;
    Value value;
  };

  struct PathEnt {
    NodeBox* box;
    InnerNode* node;
    int child;
  };

  struct TxnLog;  // attempt-private allocation log (tx_btree.cpp)

  /// Split-vs-sequential scan controller, one per tree. The core adaptive
  /// scheduler prices each *subtree body* (elide small ones inline); this
  /// gate prices the *submit machinery itself*: EWMAs of realized
  /// nanoseconds per collected key for split (future-per-subtree) and
  /// sequential executions, x16 fixed point, winner takes the next scan,
  /// loser is re-probed 1-in-64 so a hardware or load change can flip the
  /// verdict. On a single-core host every probe re-proves that splitting
  /// only adds overhead and scans stay sequential; with real cores the
  /// split arm's cost drops below sequential and wins. Only consulted
  /// under SchedulingMode::kAdaptive — fixed modes force their strategy.
  struct ScanGate {
    std::atomic<std::uint64_t> seq_ns_per_key_x16{0};
    std::atomic<std::uint64_t> split_ns_per_key_x16{0};
    std::atomic<std::uint32_t> tick{0};

    bool choose_split() noexcept;
    void note(bool split, std::uint64_t ns, std::size_t keys) noexcept;
  };

  // Data path helpers (tx_btree.cpp).
  NodeBase* read_node(core::TxCtx& ctx, const NodeBox& box) const;
  static int child_index(const InnerNode* in, Key key);
  static int leaf_lower_bound(const LeafNode* leaf, Key key);
  TxnLog& log_for(core::TxCtx& ctx);
  LeafNode* writable_leaf(core::TxCtx& ctx, TxnLog& log, NodeBox& box,
                          const LeafNode* cur);
  InnerNode* writable_inner(core::TxCtx& ctx, TxnLog& log, NodeBox& box,
                            const InnerNode* cur);
  void split_and_insert(core::TxCtx& ctx, TxnLog& log,
                        std::vector<PathEnt>& path, NodeBox* box,
                        const LeafNode* leaf, Key key, Value value);
  void insert_child(core::TxCtx& ctx, TxnLog& log, std::vector<PathEnt>& path,
                    int level, Key sep, NodeBox* rbox);
  void collect(core::TxCtx& ctx, const NodeBox& box, Key lo, Key hi,
               std::vector<Entry>& out) const;
  std::size_t scan_collect(core::TxCtx& ctx, Key lo, Key hi,
                           std::vector<Entry>& out, const void* site) const;
  void trim_local(core::TxCtx& ctx, NodeBox& box) const;

  // Attempt finalization (tx_btree.cpp).
  static void finalize_attempt(void* state, bool committed);
  void finalize_log(TxnLog& log, bool committed);
  static void reclaim_node(void* p);
  static NodeBase* node_of(stm::Word w) {
    return reinterpret_cast<NodeBase*>(w);
  }
  static stm::Word word_of(const NodeBase* n) {
    return reinterpret_cast<stm::Word>(n);
  }

  // Tree-structure bookkeeping. Mutated only at commit finalization and by
  // gc/destruction, under boxes_mu_.
  struct RetiredBox {
    NodeBox* box;
    std::vector<stm::Version> fence;  // per-stripe clock at retirement
  };

  mutable NodeBox root_;
  mutable ScanGate scan_gate_;
  mutable util::SpinLock boxes_mu_;
  std::vector<NodeBox*> all_boxes_;
  std::vector<RetiredBox> retired_;
};

}  // namespace txf::containers
