// Skewed-access distributions for workload generation.
//
// ZipfGenerator: classic Zipf(θ) over [0, n) using the Gray et al. (SIGMOD'94)
// constant-time rejection-free method. NuRand: the TPC-C non-uniform random
// function (clause 2.1.6), needed by the TPC-C workload (S7).
#pragma once

#include <cmath>
#include <cstdint>

#include "util/xoshiro.hpp"

namespace txf::util {

/// Zipf-distributed integers in [0, n). theta = 0 is uniform; the classic
/// "80/20" skew is around theta = 0.99 (YCSB's default).
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta)
      : n_(n), theta_(theta), alpha_(1.0 / (1.0 - theta)) {
    zetan_ = zeta(n, theta);
    zeta2_ = zeta(2, theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zetan_);
  }

  std::uint64_t next(Xoshiro256& rng) const noexcept {
    const double u = rng.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto idx = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return idx >= n_ ? n_ - 1 : idx;
  }

  std::uint64_t n() const noexcept { return n_; }
  double theta() const noexcept { return theta_; }

 private:
  static double zeta(std::uint64_t n, double theta) {
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
  }

  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double zeta2_;
  double eta_;
};

/// TPC-C NURand(A, x, y): non-uniform random over [x, y].
/// C is the per-field run constant required by the spec.
class NuRand {
 public:
  NuRand(std::uint64_t a, std::uint64_t c) noexcept : a_(a), c_(c) {}

  std::uint64_t next(Xoshiro256& rng, std::uint64_t x,
                     std::uint64_t y) const noexcept {
    const std::uint64_t lhs = rng.next_range(0, a_);
    const std::uint64_t rhs = rng.next_range(x, y);
    return (((lhs | rhs) + c_) % (y - x + 1)) + x;
  }

 private:
  std::uint64_t a_;
  std::uint64_t c_;
};

}  // namespace txf::util
