#include "util/failpoint.hpp"

#include <chrono>
#include <thread>

namespace txf::util::fp {

std::atomic<bool> g_armed{false};

namespace {

/// Fold the master seed with the site name and rule index so each rule of
/// each site draws an independent, reproducible xoshiro stream.
std::uint64_t mix_name(std::uint64_t seed, const char* name,
                       std::size_t rule_index) {
  // FNV-1a over the site name folded into the master seed.
  std::uint64_t h = 1469598103934665603ULL ^ seed;
  for (const char* p = name; *p != '\0'; ++p) {
    h ^= static_cast<unsigned char>(*p);
    h *= 1099511628211ULL;
  }
  h ^= rule_index * 0x9e3779b97f4a7c15ULL;
  return h;
}

}  // namespace

FailPoint::FailPoint(const char* name) : name_(name) {
  Controller::instance().register_site(this);
}

unsigned FailPoint::evaluate() {
  if (!has_rules_.load(std::memory_order_acquire)) return 0;
  passes_.fetch_add(1, std::memory_order_relaxed);
  unsigned mask = 0;
  std::uint32_t delay_us = 0;
  bool yield = false;
  {
    std::lock_guard<std::mutex> lock(eval_mutex_);
    for (ArmedRule& r : armed_) {
      const bool fire = r.every != 0
                            ? (r.counter++ % r.every) == r.every - 1
                            : r.rng.next_double() < r.probability;
      if (!fire) continue;
      switch (r.action) {
        case Action::kFail:
          mask |= kFailBit;
          break;
        case Action::kAbortTree:
          mask |= kAbortTreeBit;
          break;
        case Action::kDelayUs:
          delay_us = r.param != 0 ? static_cast<std::uint32_t>(
                                        r.rng.next_bounded(r.param + 1))
                                  : 0;
          break;
        case Action::kYield:
          yield = true;
          break;
      }
    }
    if (mask != 0 || delay_us != 0 || yield)
      fires_.fetch_add(1, std::memory_order_relaxed);
  }
  // Perturbations happen outside the site mutex so concurrent passages keep
  // drawing deterministically while one thread sleeps.
  if (delay_us != 0)
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  if (yield) std::this_thread::yield();
  return mask;
}

Controller& Controller::instance() {
  static Controller c;
  return c;
}

void Controller::register_site(FailPoint* site) {
  // Lock-free push; arming may race with a site's first passage, so fold the
  // current plan in under the mutex when armed.
  FailPoint* head = sites_.load(std::memory_order_acquire);
  do {
    site->next_ = head;
  } while (!sites_.compare_exchange_weak(head, site,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire));
  if (armed_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(mutex_);
    apply_plan_locked(site);
  }
}

void Controller::apply_plan_locked(FailPoint* site) {
  std::lock_guard<std::mutex> eval_lock(site->eval_mutex_);
  site->armed_.clear();
  std::size_t rule_index = 0;
  for (const Rule& r : plan_.rules) {
    if (r.site == site->name_) {
      FailPoint::ArmedRule ar;
      ar.action = r.action;
      ar.every = r.every;
      ar.probability = r.probability;
      ar.param = r.param;
      ar.counter = 0;
      ar.rng = Xoshiro256(mix_name(plan_.seed, site->name_, rule_index));
      site->armed_.push_back(ar);
    }
    ++rule_index;
  }
  site->passes_.store(0, std::memory_order_relaxed);
  site->fires_.store(0, std::memory_order_relaxed);
  site->has_rules_.store(!site->armed_.empty(), std::memory_order_release);
}

void Controller::arm(const ChaosPlan& plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  plan_ = plan;
  for (FailPoint* s = sites_.load(std::memory_order_acquire); s != nullptr;
       s = s->next_) {
    apply_plan_locked(s);
  }
  armed_.store(true, std::memory_order_release);
  g_armed.store(true, std::memory_order_release);
}

void Controller::disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  g_armed.store(false, std::memory_order_release);
  armed_.store(false, std::memory_order_release);
  plan_ = ChaosPlan{};
  for (FailPoint* s = sites_.load(std::memory_order_acquire); s != nullptr;
       s = s->next_) {
    std::lock_guard<std::mutex> eval_lock(s->eval_mutex_);
    s->armed_.clear();
    s->has_rules_.store(false, std::memory_order_release);
  }
}

FailPoint* Controller::find(const std::string& name) {
  for (FailPoint* s = sites_.load(std::memory_order_acquire); s != nullptr;
       s = s->next_) {
    if (name == s->name_) return s;
  }
  return nullptr;
}

std::uint64_t Controller::total_fires() {
  std::uint64_t total = 0;
  for (FailPoint* s = sites_.load(std::memory_order_acquire); s != nullptr;
       s = s->next_) {
    total += s->fires();
  }
  return total;
}

std::vector<std::string> Controller::site_names() {
  std::vector<std::string> names;
  for (FailPoint* s = sites_.load(std::memory_order_acquire); s != nullptr;
       s = s->next_) {
    names.emplace_back(s->name_);
  }
  return names;
}

}  // namespace txf::util::fp
