// Epoch-based memory reclamation (EBR).
//
// The STM's permanent version lists and stolen tentative nodes are unlinked
// by one thread while other threads may still be traversing them. The JVM
// paper implementation leans on Java's GC; this domain is the C++
// substitute (see DESIGN.md substitution 1).
//
// Protocol (classic 3-epoch EBR):
//  * Readers wrap traversals in a Guard, which pins the thread to the
//    current global epoch.
//  * `retire(p, deleter)` stamps the node with the current epoch.
//  * The global epoch may advance from E to E+1 only when every pinned
//    thread has observed E; a node retired in epoch E is freed once the
//    global epoch reaches E+2, at which point no reader can still hold a
//    reference to it.
//
// Threads register implicitly on first use; on thread exit their pending
// retirements migrate to a shared orphan list so nothing leaks.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "util/cache_line.hpp"

namespace txf::util {

class EpochDomain {
 public:
  static constexpr std::size_t kMaxThreads = 256;
  /// Local retirements accumulated before attempting an epoch advance.
  static constexpr std::size_t kAdvanceThreshold = 64;

  EpochDomain();
  ~EpochDomain();

  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  /// RAII pin: while alive, nodes retired under this domain in the pinned
  /// epoch (or later) will not be freed.
  class Guard {
   public:
    explicit Guard(EpochDomain& domain);
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard();

   private:
    EpochDomain& domain_;
  };

  /// Defer `deleter(p)` until no pinned reader can reach `p`. May be called
  /// with or without a Guard held.
  void retire(void* p, void (*deleter)(void*));

  /// Convenience: retire with `delete static_cast<T*>(p)`.
  template <typename T>
  void retire(T* p) {
    retire(static_cast<void*>(p),
           [](void* q) { delete static_cast<T*>(q); });
  }

  /// Attempt one epoch advance and free what became safe. Called
  /// automatically from retire(); exposed for tests and shutdown paths.
  void try_advance_and_collect();

  /// Free everything unconditionally. Only safe when no thread is pinned
  /// (e.g. single-threaded shutdown). Returns the number freed.
  std::size_t drain_for_shutdown();

  std::uint64_t global_epoch() const noexcept {
    return global_epoch_->load(std::memory_order_acquire);
  }

  /// Per-thread bookkeeping; public only because it lives in a
  /// thread_local defined in the implementation file.
  struct ThreadState;

  /// Number of retired-but-not-yet-freed nodes (approximate; for tests).
  std::size_t pending_count() const;

 private:
  friend struct ThreadState;

  struct Retired {
    void* ptr;
    void (*deleter)(void*);
    std::uint64_t epoch;
  };

  struct Slot {
    // 0 = quiescent; otherwise the epoch the thread is pinned at.
    std::atomic<std::uint64_t> pinned_epoch{0};
    std::atomic<bool> in_use{false};
    std::uint32_t pin_depth = 0;  // only touched by the owning thread
  };

  ThreadState& local_state();
  void pin();
  void unpin();
  bool try_advance();
  void collect(std::vector<Retired>& bag, std::uint64_t safe_before);

  CacheAligned<std::atomic<std::uint64_t>> global_epoch_;
  CacheAligned<Slot> slots_[kMaxThreads];

  std::mutex orphan_mutex_;
  std::vector<Retired> orphans_;

  friend class Guard;
};

/// Process-wide domain used by the STM runtime.
EpochDomain& global_epoch_domain();

}  // namespace txf::util
