// Deterministic, seeded failpoint framework for chaos testing.
//
// Engine hot paths declare *named* failpoints:
//
//   if (TXF_FP_FIRES("stm.validate")) return false;   // fail-action sites
//   TXF_FP_POINT("sched.steal");                      // delay/yield-only sites
//
// A site costs one relaxed atomic load and a predicted-not-taken branch when
// no chaos plan is armed (the site object itself is a function-local static,
// registered once on first passage). Tests arm a ChaosPlan — a list of
// (site-name, action, every-N / probability, delay bound) rules — through
// `Controller::arm()`, normally via `core::Config::chaos` at Runtime
// construction.
//
// Determinism: every site draws from its own xoshiro256** stream seeded from
// (master seed, site name). Decisions at one site form a fixed sequence per
// seed regardless of which threads pass through it, so any chaotic run is
// replayable from its seed: same seed => same per-site fire sequence, and
// the engine's recovery machinery must converge to identical committed
// results (asserted by core_chaos_test).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/xoshiro.hpp"

namespace txf::util::fp {

/// What an armed rule does to its site.
enum class Action : std::uint8_t {
  kFail,      // site's TXF_FP_FIRES(...) returns true (caller interprets)
  kDelayUs,   // sleep a random 0..param microseconds, then continue
  kYield,     // std::this_thread::yield(), then continue
  kAbortTree, // like kFail, reported via fires_abort (core sites abort the
              // whole transaction tree instead of one validation)
};

/// One chaos rule: applies `action` to the site named `site`.
/// `every` != 0: fire on every Nth passage (deterministic modulo schedule).
/// `every` == 0: fire with probability `probability` per passage, drawn from
/// the site's seeded stream.
struct Rule {
  std::string site;
  Action action = Action::kFail;
  std::uint32_t every = 0;
  double probability = 0.0;
  std::uint32_t param = 0;  // kDelayUs: max microseconds of injected delay
};

/// A chaos schedule: the rules plus the master seed of the run.
struct ChaosPlan {
  std::uint64_t seed = 0;
  std::vector<Rule> rules;

  ChaosPlan& add(std::string site, Action action, std::uint32_t every,
                 std::uint32_t param = 0) {
    rules.push_back(Rule{std::move(site), action, every, 0.0, param});
    return *this;
  }
  ChaosPlan& add_prob(std::string site, Action action, double probability,
                      std::uint32_t param = 0) {
    rules.push_back(Rule{std::move(site), action, 0, probability, param});
    return *this;
  }
};

/// Per-site state. Sites are function-local statics that live forever;
/// arming/disarming only flips their armed state and resets their streams.
class FailPoint {
 public:
  explicit FailPoint(const char* name);

  FailPoint(const FailPoint&) = delete;
  FailPoint& operator=(const FailPoint&) = delete;

  const char* name() const noexcept { return name_; }

  /// Total passages while armed (approximate under concurrency: relaxed).
  std::uint64_t passes() const noexcept {
    return passes_.load(std::memory_order_relaxed);
  }
  /// Times the site fired any action.
  std::uint64_t fires() const noexcept {
    return fires_.load(std::memory_order_relaxed);
  }

  /// Slow path, called only while the global chaos plan is armed. Applies
  /// delay/yield actions internally; returns a bit mask of caller-visible
  /// actions (kFail -> 1, kAbortTree -> 2).
  unsigned evaluate();

 private:
  friend class Controller;

  struct ArmedRule {
    Action action;
    std::uint32_t every;
    double probability;
    std::uint32_t param;
    std::uint64_t counter = 0;  // passage counter for every-N rules
    Xoshiro256 rng;             // per-rule stream (probability/delay draws)
  };

  const char* name_;
  std::atomic<std::uint64_t> passes_{0};
  std::atomic<std::uint64_t> fires_{0};
  // Armed rules for this site. Written while arming, mutated (counters, rng
  // draws) under eval_mutex_ in evaluate() — armed paths are test-only, so
  // a mutex per passage is acceptable there.
  std::mutex eval_mutex_;
  std::vector<ArmedRule> armed_;
  std::atomic<bool> has_rules_{false};
  FailPoint* next_ = nullptr;  // registry chain
};

/// Process-wide failpoint controller. All sites register here on first
/// passage; tests arm/disarm chaos plans and read fire counters.
class Controller {
 public:
  static Controller& instance();

  /// Arm `plan` process-wide. Resets all per-site streams/counters so the
  /// fire sequence restarts from the seed (replayability).
  void arm(const ChaosPlan& plan);

  /// Disarm: all sites revert to the zero-cost disabled path.
  void disarm();

  bool armed() const noexcept {
    return armed_.load(std::memory_order_acquire);
  }

  /// Find a registered site by name (nullptr if it never executed).
  FailPoint* find(const std::string& name);

  /// Sum of fires across all sites (the chaos run's activity counter).
  std::uint64_t total_fires();

  /// All registered site names (diagnostics / documentation tests).
  std::vector<std::string> site_names();

  // Internal: called from FailPoint's constructor.
  void register_site(FailPoint* site);

 private:
  Controller() = default;
  void apply_plan_locked(FailPoint* site);

  std::atomic<bool> armed_{false};
  std::atomic<FailPoint*> sites_{nullptr};  // lock-free registration chain
  // Guards arming and per-site armed_ vectors (cold path only).
  std::mutex mutex_;
  ChaosPlan plan_;
};

/// Global "any plan armed" flag, read on every site passage.
extern std::atomic<bool> g_armed;

inline bool enabled() noexcept {
  return g_armed.load(std::memory_order_relaxed);
}

namespace detail {
/// Returns the action mask for this passage (0 almost always).
inline unsigned passage(FailPoint& site) {
  if (!enabled()) return 0;
  return site.evaluate();
}
}  // namespace detail

/// Caller-visible action bits returned by TXF_FP_MASK.
inline constexpr unsigned kFailBit = 1u;
inline constexpr unsigned kAbortTreeBit = 2u;

}  // namespace txf::util::fp

/// Declare-and-evaluate a failpoint site. Yields the action mask (0 when
/// disarmed/not firing; kFailBit / kAbortTreeBit otherwise). Delay and yield
/// actions are applied internally before returning.
#define TXF_FP_MASK(name_literal)                                      \
  ([]() -> unsigned {                                                  \
    static ::txf::util::fp::FailPoint txf_fp_site_(name_literal);      \
    return ::txf::util::fp::detail::passage(txf_fp_site_);             \
  }())

/// Failpoint that only asks "should I inject a failure here?".
#define TXF_FP_FIRES(name_literal) \
  (TXF_FP_MASK(name_literal) & ::txf::util::fp::kFailBit)

/// Pure perturbation site (delay / yield); fail actions are ignored.
#define TXF_FP_POINT(name_literal) ((void)TXF_FP_MASK(name_literal))
