// Log-bucketed latency histogram (HdrHistogram-style).
//
// Records values (nanoseconds, retry counts, ...) into buckets whose relative
// width is bounded by 1/32 (~3%), with a fixed, allocation-free footprint
// covering the full uint64 range. Mergeable like StreamingStats so each
// worker records privately and the driver combines results.
//
// Scheme: values < 64 get exact buckets. Larger values are bucketed by
// (octave = msb-5, top 5 bits below the leading one), i.e. 32 buckets per
// power of two.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "obs/percentile.hpp"

namespace txf::util {

class LatencyHistogram {
 public:
  static constexpr unsigned kExactBuckets = 64;   // values 0..63 exact
  static constexpr unsigned kPerOctave = 32;      // buckets per power of two
  static constexpr unsigned kOctaves = 58;        // msb 6..63
  static constexpr unsigned kBucketCount = kExactBuckets + kPerOctave * kOctaves;

  void record(std::uint64_t value) noexcept {
    ++counts_[index_for(value)];
    ++total_;
    sum_ += value;
  }

  void merge(const LatencyHistogram& other) noexcept {
    for (unsigned i = 0; i < kBucketCount; ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
    sum_ += other.sum_;
  }

  std::uint64_t count() const noexcept { return total_; }
  double mean() const noexcept {
    return total_ ? static_cast<double>(sum_) / static_cast<double>(total_)
                  : 0.0;
  }

  /// Value at quantile q in [0, 1] (upper bound of the containing bucket).
  /// The rank scan itself is the shared bucketed-percentile helper
  /// (obs/percentile.hpp) — obs::Histogram::quantile walks the same way
  /// over its own bucket mapping.
  std::uint64_t quantile(double q) const noexcept {
    return obs::quantile_from_buckets(
        kBucketCount, total_, q,
        [this](std::size_t i) { return counts_[i]; },
        [](std::size_t i) { return upper_bound(static_cast<unsigned>(i)); });
  }

  std::uint64_t p50() const noexcept { return quantile(0.50); }
  std::uint64_t p95() const noexcept { return quantile(0.95); }
  std::uint64_t p99() const noexcept { return quantile(0.99); }
  std::uint64_t max_recorded() const noexcept {
    for (unsigned i = kBucketCount; i-- > 0;)
      if (counts_[i]) return upper_bound(i);
    return 0;
  }

  static unsigned index_for(std::uint64_t value) noexcept {
    if (value < kExactBuckets) return static_cast<unsigned>(value);
    const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(value));
    const unsigned octave = msb - 5;  // >= 1
    // (value >> octave) is in [32, 64); subtract 32 for the sub index.
    const unsigned sub = static_cast<unsigned>(value >> octave) - kPerOctave;
    return kExactBuckets + (octave - 1) * kPerOctave + sub;
  }

  /// Largest value mapping to `index` (inclusive).
  static std::uint64_t upper_bound(unsigned index) noexcept {
    if (index < kExactBuckets) return index;
    const unsigned j = index - kExactBuckets;
    const unsigned octave = j / kPerOctave + 1;
    const unsigned sub = j % kPerOctave + kPerOctave;  // in [32, 64)
    return ((static_cast<std::uint64_t>(sub) + 1) << octave) - 1;
  }

 private:
  std::array<std::uint64_t, kBucketCount> counts_{};
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
};

}  // namespace txf::util
