// Cache-line geometry helpers.
//
// Shared mutable state in txfutures is laid out so that independently
// written words never share a cache line (C++ Core Guidelines CP.*: avoid
// false sharing between threads). `CacheAligned<T>` pads a value to a full
// line; `kCacheLineSize` is the constant used across the project.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace txf::util {

// Fixed at 64 rather than std::hardware_destructive_interference_size: the
// value is part of our layout ABI and must not drift with -mtune flags
// (this is also what -Winterference-size recommends).
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps a value so it occupies (at least) one whole cache line.
///
/// Use for per-thread counters, queue heads/tails, and any atomic that is
/// written by one thread while neighbours are written by others.
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  static_assert(alignof(T) <= kCacheLineSize,
                "T is over-aligned beyond a cache line");

  T value;

  CacheAligned() = default;
  template <typename... Args>
  explicit CacheAligned(Args&&... args) : value(std::forward<Args>(args)...) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }

 private:
  // Pad the tail so arrays of CacheAligned<T> do not share lines either.
  [[maybe_unused]] char pad_[kCacheLineSize > sizeof(T)
                                 ? kCacheLineSize - sizeof(T)
                                 : 1] = {};
};

}  // namespace txf::util
