// Bounded exponential backoff for contended atomic retry loops.
//
// Spin loops that retry a CAS under contention must yield progressively to
// avoid memory-bus saturation (the paper's workloads hammer a small set of
// hot VBoxes, so the write path relies on this). The policy is: a few pause
// instructions first, then `std::this_thread::yield()`, then short sleeps.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace txf::util {

/// Hint the CPU that we are in a spin-wait loop.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // Fallback: a compiler barrier only.
  asm volatile("" ::: "memory");
#endif
}

/// Exponential backoff helper. Create one per retry loop; call `pause()`
/// after each failed attempt and `reset()` after a success.
class Backoff {
 public:
  explicit Backoff(std::uint32_t spin_limit = 6,
                   std::uint32_t yield_limit = 10) noexcept
      : spin_limit_(spin_limit), yield_limit_(yield_limit) {}

  void pause() noexcept {
    if (step_ < spin_limit_) {
      // 2^step pause instructions.
      for (std::uint32_t i = 0; i < (1u << step_); ++i) cpu_relax();
    } else if (step_ < spin_limit_ + yield_limit_) {
      std::this_thread::yield();
    } else {
      // Cap the sleep: latency of a commit wait should stay microseconds.
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    ++step_;
  }

  void reset() noexcept { step_ = 0; }

  std::uint32_t step() const noexcept { return step_; }

 private:
  std::uint32_t spin_limit_;
  std::uint32_t yield_limit_;
  std::uint32_t step_ = 0;
};

}  // namespace txf::util
