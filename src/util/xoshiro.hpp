// Fast per-thread pseudo-random number generation for workload drivers.
//
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64. Benchmarks need
// a generator that is (a) cheap enough not to perturb transaction timing and
// (b) deterministic per seed so runs are reproducible. Satisfies
// UniformRandomBitGenerator, so it also plugs into <random> distributions.
#pragma once

#include <cstdint>
#include <limits>

namespace txf::util {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the project-wide workload PRNG.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_bounded(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    unsigned __int128 product =
        static_cast<unsigned __int128>(next()) * bound;
    return static_cast<std::uint64_t>(product >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + next_bounded(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace txf::util
