// Test-and-test-and-set spin lock with exponential backoff.
//
// Used only for short critical sections (tree bookkeeping); satisfies the
// Lockable concept so it composes with std::scoped_lock / std::unique_lock
// (Core Guidelines CP.20: RAII, never plain lock()/unlock()).
#pragma once

#include <atomic>

#include "util/backoff.hpp"
#include "util/cache_line.hpp"

namespace txf::util {

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() noexcept {
    Backoff backoff;
    for (;;) {
      // Test first: spin on a read to keep the line shared until it is free.
      while (locked_.load(std::memory_order_relaxed)) backoff.pause();
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      backoff.pause();
    }
  }

  bool try_lock() noexcept {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace txf::util
