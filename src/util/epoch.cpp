#include "util/epoch.hpp"

#include <cassert>

namespace txf::util {

// Per-(thread, domain) state. A thread may use several domains (tests create
// private ones), so the thread-local holds a small registry keyed by domain.
namespace {
// Trivially-destructible flag that outlives the thread_local ThreadState:
// static-duration destructors (e.g. the global domain at process exit) must
// not touch a ThreadState that was already destroyed.
thread_local bool t_state_alive = false;
}  // namespace

struct EpochDomain::ThreadState {
  ThreadState() { t_state_alive = true; }

  struct Entry {
    EpochDomain* domain = nullptr;
    std::size_t slot_index = 0;
    std::vector<Retired> bag;
    std::size_t since_advance = 0;
  };

  std::vector<Entry> entries;

  Entry& entry_for(EpochDomain& domain) {
    for (auto& e : entries)
      if (e.domain == &domain) return e;
    // First use of this domain on this thread: claim a slot.
    Entry e;
    e.domain = &domain;
    e.slot_index = EpochDomain::kMaxThreads;
    for (std::size_t i = 0; i < EpochDomain::kMaxThreads; ++i) {
      bool expected = false;
      if (domain.slots_[i]->in_use.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel)) {
        e.slot_index = i;
        break;
      }
    }
    assert(e.slot_index < EpochDomain::kMaxThreads &&
           "EpochDomain: more than kMaxThreads concurrent threads");
    entries.push_back(std::move(e));
    return entries.back();
  }

  ~ThreadState() {
    t_state_alive = false;
    // Hand pending retirements to each domain's orphan list and free slots.
    for (auto& e : entries) {
      if (e.domain == nullptr) continue;
      if (!e.bag.empty()) {
        std::lock_guard<std::mutex> lock(e.domain->orphan_mutex_);
        for (auto& r : e.bag) e.domain->orphans_.push_back(r);
        e.bag.clear();
      }
      auto& slot = *e.domain->slots_[e.slot_index];
      slot.pinned_epoch.store(0, std::memory_order_release);
      slot.in_use.store(false, std::memory_order_release);
    }
  }
};

namespace {
thread_local EpochDomain::ThreadState t_state;
}  // namespace

EpochDomain::EpochDomain() { global_epoch_->store(1, std::memory_order_relaxed); }

EpochDomain::~EpochDomain() {
  // The owner must guarantee quiescence before destruction.
  drain_for_shutdown();
  // Detach this domain from any live thread-local registries. Threads that
  // already exited removed themselves via ~ThreadState; the destroying
  // thread's own registry may still reference us — unless it was destroyed
  // already (process exit tears thread_locals down before statics).
  if (t_state_alive) {
    for (auto& e : t_state.entries)
      if (e.domain == this) e.domain = nullptr;
  }
}

EpochDomain::ThreadState& EpochDomain::local_state() { return t_state; }

void EpochDomain::pin() {
  auto& entry = local_state().entry_for(*this);
  auto& slot = *slots_[entry.slot_index];
  if (slot.pin_depth++ > 0) return;  // nested guard: already pinned
  // Publish the epoch we observe; loop in case the epoch moves while we
  // publish (keeps the pinned value current, bounding reclamation lag).
  std::uint64_t e = global_epoch_->load(std::memory_order_acquire);
  for (;;) {
    slot.pinned_epoch.store(e, std::memory_order_seq_cst);
    const std::uint64_t now = global_epoch_->load(std::memory_order_seq_cst);
    if (now == e) break;
    e = now;
  }
}

void EpochDomain::unpin() {
  auto& entry = local_state().entry_for(*this);
  auto& slot = *slots_[entry.slot_index];
  assert(slot.pin_depth > 0);
  if (--slot.pin_depth == 0)
    slot.pinned_epoch.store(0, std::memory_order_release);
}

EpochDomain::Guard::Guard(EpochDomain& domain) : domain_(domain) {
  domain_.pin();  // pin() handles nesting via the slot's pin depth
}

EpochDomain::Guard::~Guard() { domain_.unpin(); }

void EpochDomain::retire(void* p, void (*deleter)(void*)) {
  auto& entry = local_state().entry_for(*this);
  entry.bag.push_back(
      Retired{p, deleter, global_epoch_->load(std::memory_order_acquire)});
  if (++entry.since_advance >= kAdvanceThreshold) {
    entry.since_advance = 0;
    try_advance_and_collect();
  }
}

bool EpochDomain::try_advance() {
  const std::uint64_t e = global_epoch_->load(std::memory_order_seq_cst);
  for (std::size_t i = 0; i < kMaxThreads; ++i) {
    const auto& slot = *slots_[i];
    if (!slot.in_use.load(std::memory_order_acquire)) continue;
    const std::uint64_t pinned =
        slot.pinned_epoch.load(std::memory_order_seq_cst);
    if (pinned != 0 && pinned != e) return false;  // straggler
  }
  std::uint64_t expected = e;
  return global_epoch_->compare_exchange_strong(expected, e + 1,
                                                std::memory_order_seq_cst);
}

void EpochDomain::collect(std::vector<Retired>& bag,
                          std::uint64_t safe_before) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < bag.size(); ++i) {
    if (bag[i].epoch < safe_before) {
      bag[i].deleter(bag[i].ptr);
    } else {
      bag[kept++] = bag[i];
    }
  }
  bag.resize(kept);
}

void EpochDomain::try_advance_and_collect() {
  try_advance();
  const std::uint64_t e = global_epoch_->load(std::memory_order_acquire);
  // Nodes retired at epoch x are safe once e >= x + 2, i.e. x < e - 1.
  if (e < 2) return;
  const std::uint64_t safe_before = e - 1;
  auto& entry = local_state().entry_for(*this);
  collect(entry.bag, safe_before);
  // Also help with orphans left behind by exited threads.
  std::vector<Retired> grabbed;
  {
    std::lock_guard<std::mutex> lock(orphan_mutex_);
    grabbed.swap(orphans_);
  }
  if (!grabbed.empty()) {
    collect(grabbed, safe_before);
    if (!grabbed.empty()) {
      std::lock_guard<std::mutex> lock(orphan_mutex_);
      for (auto& r : grabbed) orphans_.push_back(r);
    }
  }
}

std::size_t EpochDomain::drain_for_shutdown() {
  std::size_t freed = 0;
  if (t_state_alive) {
    auto& entry = local_state().entry_for(*this);
    for (auto& r : entry.bag) {
      r.deleter(r.ptr);
      ++freed;
    }
    entry.bag.clear();
  }
  std::lock_guard<std::mutex> lock(orphan_mutex_);
  for (auto& r : orphans_) {
    r.deleter(r.ptr);
    ++freed;
  }
  orphans_.clear();
  return freed;
}

std::size_t EpochDomain::pending_count() const {
  std::size_t n = 0;
  {
    std::lock_guard<std::mutex> lock(
        const_cast<EpochDomain*>(this)->orphan_mutex_);
    n += orphans_.size();
  }
  // Only the calling thread's own bag is visible without racing.
  if (t_state_alive) {
    for (const auto& e : t_state.entries)
      if (e.domain == this) n += e.bag.size();
  }
  return n;
}

EpochDomain& global_epoch_domain() {
  static EpochDomain domain;
  return domain;
}

}  // namespace txf::util
