// Streaming statistics for benchmark metrics.
//
// Welford's online algorithm for mean/variance plus min/max; mergeable so
// per-thread accumulators combine without synchronization during the run
// (each worker owns its accumulator, the driver merges at the end).
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>

#include "obs/metrics.hpp"

namespace txf::util {

/// Robustness counters exported by the contention manager and the failpoint
/// framework (relaxed atomics; benches and the chaos tests assert on them).
/// One instance lives in core::Runtime next to the engine's TxStats.
struct RobustnessCounters {
  std::atomic<std::uint64_t> retries{0};            // re-run attempts
  std::atomic<std::uint64_t> backoff_ns{0};         // time spent backing off
  std::atomic<std::uint64_t> stall_aborts{0};       // stall detector fired
  std::atomic<std::uint64_t> deadline_aborts{0};    // Config::tx_deadline hit
  std::atomic<std::uint64_t> serial_irrevocable{0}; // token escalations
  std::atomic<std::uint64_t> failpoint_fires{0};    // chaos actions observed

  RobustnessCounters() {
    reg_.atomic("cm.retries", retries)
        .atomic("cm.backoff_ns", backoff_ns)
        .atomic("cm.stall_aborts", stall_aborts)
        .atomic("cm.deadline_aborts", deadline_aborts)
        .atomic("cm.serial_irrevocable", serial_irrevocable)
        .atomic("cm.failpoint_fires", failpoint_fires);
  }

  void reset() noexcept {
    retries = 0;
    backoff_ns = 0;
    stall_aborts = 0;
    deadline_aborts = 0;
    serial_irrevocable = 0;
    failpoint_fires = 0;
  }

  void print(std::FILE* out) const {
    std::fprintf(
        out,
        "robustness: retries=%llu backoff_ns=%llu stall_aborts=%llu "
        "deadline_aborts=%llu serial_irrevocable=%llu failpoint_fires=%llu\n",
        static_cast<unsigned long long>(retries.load()),
        static_cast<unsigned long long>(backoff_ns.load()),
        static_cast<unsigned long long>(stall_aborts.load()),
        static_cast<unsigned long long>(deadline_aborts.load()),
        static_cast<unsigned long long>(serial_irrevocable.load()),
        static_cast<unsigned long long>(failpoint_fires.load()));
  }

 private:
  obs::Registration reg_;  // "cm.*" in the MetricsRegistry
};

class StreamingStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  /// Merge another accumulator (Chan et al. parallel variance formula).
  void merge(const StreamingStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double nt = na + nb;
    mean_ += delta * nb / nt;
    m2_ += other.m2_ + delta * delta * na * nb / nt;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
  }

  std::uint64_t count() const noexcept { return n_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  double max() const noexcept {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace txf::util
