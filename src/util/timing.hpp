// Wall-clock helpers for benchmark drivers.
#pragma once

#include <chrono>
#include <cstdint>

namespace txf::util {

/// Monotonic nanosecond timestamp.
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Scoped stopwatch: accumulates elapsed ns into a caller-owned slot.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::uint64_t& sink) noexcept
      : sink_(sink), start_(now_ns()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { sink_ += now_ns() - start_; }

 private:
  std::uint64_t& sink_;
  std::uint64_t start_;
};

/// Simple stopwatch with explicit start/elapsed.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(now_ns()) {}
  void restart() noexcept { start_ = now_ns(); }
  std::uint64_t elapsed_ns() const noexcept { return now_ns() - start_; }
  double elapsed_s() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  std::uint64_t start_;
};

}  // namespace txf::util
