// The sharded commit spine: N per-stripe commit pipelines behind one
// routing facade.
//
// Every VBox belongs to exactly one stripe (stripe_of() in
// global_clock.hpp); each stripe owns a full CommitQueue pipeline —
// pre-validation, flat-combining version assignment, write-back fan-out —
// and one clock component of the env's StripedClock. The spine routes a
// commit by the stripe footprint of its read ∪ write set:
//
//  * SINGLE-STRIPE footprint (the common case when boxes are spread and
//    transactions are small): the request drops into that stripe's queue
//    with the matching snapshot component, and the whole commit — batching,
//    helping, clock advance — touches no other stripe's state. Zero
//    cross-shard coordination; disjoint-footprint committers on different
//    stripes proceed fully in parallel.
//
//  * MULTI-STRIPE footprint: a synchronous two-phase protocol. Phase one
//    RESERVES: freeze every footprint stripe in canonical (ascending) order
//    — freezing drains the stripe's in-flight batch and blocks formation,
//    giving this committer exclusive ownership of the stripe's heads and
//    clock component — then validate the read set against the frozen heads
//    and reserve sequence number `component+1` per write stripe (a read,
//    not a fetch_add: an aborted commit must consume no sequence number, so
//    per-stripe sequences stay gap-free). Phase two PUBLISHES: link the
//    write-back nodes and home-slot mirrors, then advance all write-stripe
//    components inside one StripedClock::publish_multi epoch section, so
//    snapshot readers observe the whole transaction or none of it; finally
//    unfreeze. The freeze order is total, so overlapping multi-stripe
//    committers cannot deadlock; single-stripe committers never hold one
//    stripe while waiting on another.
//
// NOTE the footprint is reads ∪ writes, not writes alone: freezing only the
// write stripes would let a concurrent commit overtake this transaction's
// *read* stripes between validation and publication — the classic
// write-skew interleaving (t1 reads A writes B, t2 reads B writes A; both
// validate stale reads "concurrently" if A and B live in different stripes).
//
// Why a single stripe reproduces the old pipeline exactly: with N == 1
// every footprint is single-stripe, routing collapses to a direct call into
// queue 0, and SnapshotVec degenerates to the scalar clock — the ±5% parity
// requirement in BENCH_commit_sharding.json is checked against exactly this
// path.
//
// Observability: every stripe's CommitQueue registers the same literal
// "stm.commit.*" metric names — the MetricsRegistry sums same-name
// instances, so the aggregate counters keep their pre-sharding meaning.
// Spine-level "stm.shard.*" metrics cover the multi-stripe path; per-stripe
// resolution is exposed programmatically (stripe_queue(), stripe_committed())
// to the server report and benches rather than through dynamic metric names
// (scripts/check_docs.py audits literal names only).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/metrics.hpp"
#include "stm/commit_queue.hpp"
#include "stm/global_clock.hpp"
#include "util/epoch.hpp"

namespace txf::stm {

class CommitSpine {
 public:
  CommitSpine(StripedClock& clock, ActiveTxnRegistry& registry,
              util::EpochDomain& epochs);

  CommitSpine(const CommitSpine&) = delete;
  CommitSpine& operator=(const CommitSpine&) = delete;

  unsigned stripes() const noexcept { return n_; }
  unsigned stripe_mask() const noexcept { return n_ - 1; }
  CommitQueue& stripe_queue(unsigned s) noexcept { return *queues_[s]; }
  const CommitQueue& stripe_queue(unsigned s) const noexcept {
    return *queues_[s];
  }

  /// Stripe of a box under this spine's configuration.
  unsigned stripe_of_box(const VBoxImpl* box) const noexcept {
    return stripe_of(box, n_ - 1);
  }

  /// Width (stripe count) of the footprint a commit with these reads and
  /// writes would route on — the same reads ∪ writes mask commit() builds.
  /// 1 means the zero-coordination single-stripe path; >1 means the
  /// serializing multi-stripe protocol. Used by the adaptive scheduler's
  /// footprint-narrowing bias (core/adaptive.hpp); pure function of the
  /// box addresses, no stripe state touched.
  unsigned footprint_width(const std::vector<VBoxImpl*>& reads,
                           const std::vector<VBoxImpl*>& writes) const noexcept;

  /// Stage-1 pre-validation against a snapshot vector: each read box is
  /// checked against its own stripe's component. Sheds are attributed to
  /// the failing box's stripe queue.
  bool prevalidate(const std::vector<VBoxImpl*>& reads,
                   const SnapshotVec& snap);

  /// Single-stripe compatibility overload (tests and single-stripe envs).
  bool prevalidate(const std::vector<VBoxImpl*>& reads, Version snapshot) {
    return queues_[0]->prevalidate(reads, snapshot);
  }

  /// Route and execute a commit. Takes ownership of `req` (and of its nodes
  /// on abort) exactly like CommitQueue::commit. Caller must hold an EBR
  /// guard on the domain passed at construction.
  bool commit(CommitRequest* req, const SnapshotVec& snap);

  /// Single-stripe compatibility overload: `req->snapshot` is already the
  /// scalar snapshot. Only valid when stripes() == 1.
  bool commit(CommitRequest* req);

  // --- aggregates (the pre-sharding CommitQueue accessors, summed) ---

  std::uint64_t committed_count() const noexcept {
    std::uint64_t t = multi_commits_.load(std::memory_order_relaxed);
    for (unsigned s = 0; s < n_; ++s) t += queues_[s]->committed_count();
    return t;
  }
  std::uint64_t aborted_count() const noexcept {
    std::uint64_t t = multi_aborts_.load(std::memory_order_relaxed);
    for (unsigned s = 0; s < n_; ++s) t += queues_[s]->aborted_count();
    return t;
  }
  std::uint64_t prevalidation_sheds() const noexcept {
    std::uint64_t t = 0;
    for (unsigned s = 0; s < n_; ++s) t += queues_[s]->prevalidation_sheds();
    return t;
  }
  std::uint64_t batch_count() const noexcept {
    std::uint64_t t = 0;
    for (unsigned s = 0; s < n_; ++s) t += queues_[s]->batch_count();
    return t;
  }
  std::uint64_t batched_requests() const noexcept {
    std::uint64_t t = 0;
    for (unsigned s = 0; s < n_; ++s) t += queues_[s]->batched_requests();
    return t;
  }
  std::uint64_t batch_size_bucket(std::size_t i) const noexcept {
    std::uint64_t t = 0;
    for (unsigned s = 0; s < n_; ++s) t += queues_[s]->batch_size_bucket(i);
    return t;
  }
  std::uint64_t queue_dwell_ns() const noexcept {
    std::uint64_t t = 0;
    for (unsigned s = 0; s < n_; ++s) t += queues_[s]->queue_dwell_ns();
    return t;
  }
  std::uint64_t queue_dwell_samples() const noexcept {
    std::uint64_t t = 0;
    for (unsigned s = 0; s < n_; ++s) t += queues_[s]->queue_dwell_samples();
    return t;
  }
  /// Sum of per-stripe depths: total requests in flight across the spine.
  std::int64_t queue_depth() const noexcept {
    std::int64_t t = 0;
    for (unsigned s = 0; s < n_; ++s) t += queues_[s]->queue_depth();
    return t;
  }
  /// Hottest single stripe. The admission controller reads BOTH: a hot
  /// stripe at depth 60 is overload even when the other seven are idle and
  /// the sum looks comfortable (src/server/admission.cpp).
  std::int64_t queue_depth_max() const noexcept {
    std::int64_t m = 0;
    for (unsigned s = 0; s < n_; ++s) {
      const std::int64_t d = queues_[s]->queue_depth();
      if (d > m) m = d;
    }
    return m;
  }

  void set_trim_period(std::uint32_t period) noexcept {
    for (unsigned s = 0; s < n_; ++s) queues_[s]->set_trim_period(period);
  }
  void set_batch_limit(std::uint32_t limit) noexcept {
    for (unsigned s = 0; s < n_; ++s) queues_[s]->set_batch_limit(limit);
  }

  // --- sharded-path accounting ---

  /// Multi-stripe transactions committed / aborted by the synchronous path.
  std::uint64_t multi_commits() const noexcept {
    return multi_commits_.load(std::memory_order_relaxed);
  }
  std::uint64_t multi_aborts() const noexcept {
    return multi_aborts_.load(std::memory_order_relaxed);
  }
  /// Multi-stripe commits that advanced stripe `s` (each counts once per
  /// write stripe it touched).
  std::uint64_t multi_committed(unsigned s) const noexcept {
    return multi_committed_[s].load(std::memory_order_relaxed);
  }
  /// Committed writers whose commit advanced stripe `s`'s clock component:
  /// the end-of-soak invariant is component(s) == stripe_committed(s).
  std::uint64_t stripe_committed(unsigned s) const noexcept {
    return queues_[s]->committed_count() +
           multi_committed_[s].load(std::memory_order_relaxed);
  }

 private:
  bool multi_commit(CommitRequest* req, const SnapshotVec& snap,
                    std::uint32_t mask);

  StripedClock& clock_;
  util::EpochDomain& epochs_;
  unsigned n_;
  std::vector<std::unique_ptr<CommitQueue>> queues_;

  std::atomic<std::uint64_t> multi_commits_{0};
  std::atomic<std::uint64_t> multi_aborts_{0};
  std::array<std::atomic<std::uint64_t>, kMaxStripes> multi_committed_{};
  obs::Histogram multi_footprint_;  // stripes per multi-stripe commit
  obs::Registration reg_;           // "stm.shard.*" (see constructor)
};

}  // namespace txf::stm
