// TL2-style word-based STM (Dice, Shalev, Shavit, DISC'06) — the classic
// lock-based design of TinySTM/TL2, implemented as a baseline comparator
// for the multi-version STM underneath txfutures.
//
// Why it exists in this repo: the paper builds on a JVSTM-like
// multi-version STM; a single-version, versioned-lock STM is the standard
// alternative. bench_stm_comparison contrasts them (read-only transactions
// never abort under MVCC; under TL2 they must race the writers), which
// backs the paper's design choice empirically.
//
// Design: a global version clock plus a striped table of versioned write
// locks (orecs) indexed by address hash. Transactions buffer writes,
// post-validate every read against its orec, and commit by locking the
// write set, re-validating the read set, writing back and stamping the
// orecs with a new clock value.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "stm/write_set.hpp"
#include "util/backoff.hpp"
#include "util/cache_line.hpp"
#include "util/failpoint.hpp"

namespace txf::stm::tl2 {

using Word = std::uint64_t;

/// A versioned lock: LSB = locked, upper bits = commit version.
class VersionedLock {
 public:
  static constexpr std::uint64_t kLockedBit = 1;

  std::uint64_t load() const noexcept {
    return state_.load(std::memory_order_acquire);
  }
  static bool is_locked(std::uint64_t v) noexcept { return v & kLockedBit; }
  static std::uint64_t version_of(std::uint64_t v) noexcept {
    return v >> 1;
  }

  bool try_lock(std::uint64_t observed) noexcept {
    if (is_locked(observed)) return false;
    return state_.compare_exchange_strong(observed, observed | kLockedBit,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed);
  }
  void unlock_with_version(std::uint64_t version) noexcept {
    state_.store(version << 1, std::memory_order_release);
  }
  void unlock_restore(std::uint64_t observed) noexcept {
    state_.store(observed, std::memory_order_release);
  }

 private:
  std::atomic<std::uint64_t> state_{0};
};

/// Shared state of one TL2 instance.
class Tl2Env {
 public:
  static constexpr std::size_t kOrecCount = 1 << 20;

  Tl2Env() : orecs_(std::make_unique<VersionedLock[]>(kOrecCount)) {}

  Tl2Env(const Tl2Env&) = delete;
  Tl2Env& operator=(const Tl2Env&) = delete;

  std::uint64_t clock() const noexcept {
    return clock_->load(std::memory_order_acquire);
  }
  std::uint64_t advance_clock() noexcept {
    return clock_->fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  VersionedLock& orec_for(const void* addr) noexcept {
    auto h = reinterpret_cast<std::uintptr_t>(addr);
    h ^= h >> 16;
    h *= 0x85ebca6bU;
    h ^= h >> 13;
    return orecs_[h & (kOrecCount - 1)];
  }

  std::uint64_t commits() const noexcept {
    return commits_.load(std::memory_order_relaxed);
  }
  std::uint64_t aborts() const noexcept {
    return aborts_.load(std::memory_order_relaxed);
  }
  void count_commit() noexcept {
    commits_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_abort() noexcept {
    aborts_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  util::CacheAligned<std::atomic<std::uint64_t>> clock_{0};
  // Striped versioned locks (heap: ~8 MiB); default state = version 0,
  // unlocked.
  std::unique_ptr<VersionedLock[]> orecs_;
  std::atomic<std::uint64_t> commits_{0};
  std::atomic<std::uint64_t> aborts_{0};
};

/// A transactional variable: one shared word plus its lock-table slot.
template <typename T>
class Tl2Var {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= sizeof(Word),
                "Tl2Var<T> requires a small trivially copyable T");

 public:
  explicit Tl2Var(const T& initial = T{}) {
    Word w = 0;
    std::memcpy(&w, &initial, sizeof(T));
    value_.store(w, std::memory_order_relaxed);
  }

  T peek() const noexcept {
    const Word w = value_.load(std::memory_order_acquire);
    T v;
    std::memcpy(&v, &w, sizeof(T));
    return v;
  }

  std::atomic<Word>& cell() noexcept { return value_; }
  const std::atomic<Word>& cell() const noexcept { return value_; }

 private:
  std::atomic<Word> value_{0};
};

/// Conflict signal: aborts the current attempt (caught by atomically_tl2).
struct Tl2Conflict {};

class Tl2Txn {
 public:
  explicit Tl2Txn(Tl2Env& env)
      : env_(env), rv_(env.clock()) {}

  template <typename T>
  T read(const Tl2Var<T>& var) {
    auto* cell = const_cast<std::atomic<Word>*>(&var.cell());
    if (const Word* w = writes_.find(key_of(cell))) return from_word<T>(*w);
    VersionedLock& orec = env_.orec_for(cell);
    // TL2 post-validated read.
    const std::uint64_t pre = orec.load();
    const Word w = cell->load(std::memory_order_acquire);
    const std::uint64_t post = orec.load();
    if (VersionedLock::is_locked(post) || pre != post ||
        VersionedLock::version_of(post) > rv_ ||
        TXF_FP_FIRES("stm.validate")) {
      env_.count_abort();  // exactly one abort per failed attempt
      throw Tl2Conflict{};
    }
    reads_.push_back(ReadRec{&orec});
    return from_word<T>(w);
  }

  template <typename T>
  void write(Tl2Var<T>& var, const T& value) {
    Word w = 0;
    std::memcpy(&w, &value, sizeof(T));
    writes_.put(key_of(&var.cell()), w);
    write_cells_.push_back(&var.cell());
  }

  /// Commit (or fail) the attempt. Owns the env's commit/abort accounting:
  /// exactly one commit is counted per successful attempt and one abort per
  /// failed one, wherever the failure is detected (here or in read()).
  bool try_commit() {
    if (writes_.empty()) {
      env_.count_commit();
      return true;  // read-only: rv-validated already
    }
    // Phase 1: lock the write set (encounter order; abort on busy —
    // TinySTM's write-through variant spins, TL2 aborts; we abort).
    std::vector<VersionedLock*> locks;
    std::vector<std::uint64_t> observed;
    locks.reserve(write_cells_.size());
    observed.reserve(write_cells_.size());
    const auto& cells = write_cells_;
    const auto release_all = [&] {
      for (std::size_t i = 0; i < locks.size(); ++i)
        locks[i]->unlock_restore(observed[i]);
    };
    for (std::atomic<Word>* cell : cells) {
      VersionedLock& orec = env_.orec_for(cell);
      // The same orec may guard several cells (hash striping): skip dups.
      bool dup = false;
      for (VersionedLock* held : locks) {
        if (held == &orec) {
          dup = true;
          break;
        }
      }
      if (dup) continue;
      const std::uint64_t v = orec.load();
      // Failpoint first: once try_lock succeeds the orec must be recorded,
      // so a chaos-induced failure has to precede the acquisition.
      if (TXF_FP_FIRES("stm.commit.wlock") ||
          VersionedLock::version_of(v) > rv_ || !orec.try_lock(v)) {
        release_all();
        env_.count_abort();
        return false;
      }
      locks.push_back(&orec);
      observed.push_back(v);
    }
    // Phase 2: new version.
    const std::uint64_t wv = env_.advance_clock();
    // Phase 3: validate the read set (unless rv+1 == wv: nothing committed
    // in between — the classic TL2 short-circuit).
    if (wv != rv_ + 1) {
      for (const ReadRec& r : reads_) {
        const std::uint64_t v = r.orec->load();
        const bool locked_by_us = [&] {
          for (VersionedLock* held : locks)
            if (held == r.orec) return true;
          return false;
        }();
        if ((VersionedLock::is_locked(v) && !locked_by_us) ||
            VersionedLock::version_of(v) > rv_ ||
            TXF_FP_FIRES("stm.validate")) {
          release_all();
          env_.count_abort();
          return false;
        }
      }
    }
    // Phase 4: write back and release with wv.
    for (std::atomic<Word>* cell : cells) {
      cell->store(writes_.value_of(key_of(cell)), std::memory_order_release);
    }
    for (VersionedLock* held : locks) held->unlock_with_version(wv);
    env_.count_commit();
    return true;
  }

  std::size_t read_count() const noexcept { return reads_.size(); }
  std::size_t write_count() const noexcept { return write_cells_.size(); }

 private:
  struct ReadRec {
    VersionedLock* orec;
  };
  // WriteSetMap keys are VBoxImpl*; reuse it with the cell address as key.
  static VBoxImpl* key_of(const std::atomic<Word>* cell) noexcept {
    return reinterpret_cast<VBoxImpl*>(
        const_cast<std::atomic<Word>*>(cell));
  }

  template <typename T>
  static T from_word(Word w) noexcept {
    T v;
    std::memcpy(&v, &w, sizeof(T));
    return v;
  }

  Tl2Env& env_;
  std::uint64_t rv_;
  std::vector<ReadRec> reads_;
  WriteSetMap writes_;
  std::vector<std::atomic<Word>*> write_cells_;
};

/// Retry loop for TL2 transactions. Commit/abort accounting lives inside
/// Tl2Txn (read() and try_commit()) so every outcome is counted exactly
/// once at the point of detection, independent of the retry-loop shape.
template <typename F>
auto atomically_tl2(Tl2Env& env, F&& fn) {
  using R = std::invoke_result_t<F&, Tl2Txn&>;
  util::Backoff backoff;
  for (;;) {
    Tl2Txn txn(env);
    try {
      if constexpr (std::is_void_v<R>) {
        fn(txn);
        if (txn.try_commit()) return;
      } else {
        R result = fn(txn);
        if (txn.try_commit()) return result;
      }
    } catch (const Tl2Conflict&) {
      // fall through to retry
    }
    backoff.pause();
  }
}

}  // namespace txf::stm::tl2
