// Versioned boxes (paper §III): the unit of transactional shared state.
//
// VBoxImpl is the untyped concurrency-layer cell holding the two lists of
// Fig. 3b: the permanent (committed) version list and the tentative list
// used by sub-transactions of a transaction tree. VBox<T> is the typed
// user-facing wrapper.
#pragma once

#include <atomic>
#include <bit>
#include <cstring>
#include <type_traits>

#include "stm/versions.hpp"
#include "util/epoch.hpp"

namespace txf::core {
struct TentativeVersion;  // defined in core/tentative.hpp
}

namespace txf::stm {

// LIFETIME CONTRACT: a VBox's version numbers come from one StmEnv's global
// clock, and its old versions are reclaimed against that env's registry. A
// box must therefore be used with a single StmEnv for its whole life;
// sharing boxes across envs (or reusing them after the env's clock reset)
// makes committed versions unreachable.
class VBoxImpl {
 public:
  /// The initial value is committed at version 0, so it is visible to every
  /// transaction from the start.
  explicit VBoxImpl(Word initial)
      : permanent_(new PermanentVersion(initial, 0, nullptr)) {}

  /// Destruction requires quiescence (no transaction may touch this box).
  ~VBoxImpl() {
    PermanentVersion* p = permanent_.load(std::memory_order_relaxed);
    while (p != nullptr && p != trimmed_tail()) {
      PermanentVersion* next = p->next.load(std::memory_order_relaxed);
      delete p;
      p = next;
    }
  }

  VBoxImpl(const VBoxImpl&) = delete;
  VBoxImpl& operator=(const VBoxImpl&) = delete;

  // --- permanent list ---

  const PermanentVersion* permanent_head() const noexcept {
    return permanent_.load(std::memory_order_acquire);
  }

  /// Newest committed version visible at `snapshot`.
  const PermanentVersion* read_permanent(Version snapshot) const noexcept {
    return find_visible(permanent_head(), snapshot);
  }

  /// Commit write-back: link `node` in front of `expected`. Idempotence for
  /// helped commits comes from helpers sharing one pre-allocated node: the
  /// first CAS wins and later helpers observe head->version >= node->version.
  bool cas_permanent_head(PermanentVersion* expected,
                          PermanentVersion* node) noexcept {
    return permanent_.compare_exchange_strong(expected, node,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire);
  }

  /// Retire versions strictly older than the newest one visible at
  /// `min_snapshot` (they can never be read again). Caller must be inside an
  /// EBR guard of `domain`.
  ///
  /// The whole operation — including the search for the cut point — runs
  /// under the `trimming_` flag: a racing trimmer whose `keep` search
  /// overlapped another trimmer's cut could otherwise land inside the
  /// already-detached (and retired) segment and retire the same nodes a
  /// second time.
  void trim(Version min_snapshot, util::EpochDomain& domain) {
    bool expected = false;
    if (!trimming_.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
      return;  // another thread is trimming this box
    }
    PermanentVersion* keep = permanent_.load(std::memory_order_acquire);
    while (keep != nullptr &&
           keep->version.load(std::memory_order_acquire) > min_snapshot)
      keep = keep->next.load(std::memory_order_acquire);
    // Cut with the trimmed_tail() sentinel, not nullptr: write-back installs
    // a node's `next` via CAS-from-nullptr, so the non-null sentinel keeps a
    // stalled helper from re-pointing `keep->next` at the retired segment.
    PermanentVersion* old =
        keep != nullptr ? keep->next.exchange(trimmed_tail(),
                                              std::memory_order_acq_rel)
                        : nullptr;
    trimming_.store(false, std::memory_order_release);
    while (old != nullptr && old != trimmed_tail()) {
      PermanentVersion* next = old->next.load(std::memory_order_relaxed);
      retire_node(old, domain);
      old = next;
    }
  }

  /// Retire a version node through `domain`, recycling it into the
  /// commit-path node pool once the grace period expires (defined in
  /// commit_queue.cpp next to the pool).
  static void retire_node(PermanentVersion* node, util::EpochDomain& domain);

  // --- tentative list (head doubles as the per-tree lock, §IV-A) ---

  core::TentativeVersion* tentative_head() const noexcept {
    return tentative_.load(std::memory_order_acquire);
  }

  bool cas_tentative_head(core::TentativeVersion* expected,
                          core::TentativeVersion* desired) noexcept {
    return tentative_.compare_exchange_strong(expected, desired,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire);
  }

  void store_tentative_head(core::TentativeVersion* v) noexcept {
    tentative_.store(v, std::memory_order_release);
  }

 private:
  std::atomic<PermanentVersion*> permanent_;
  std::atomic<core::TentativeVersion*> tentative_{nullptr};
  std::atomic<bool> trimming_{false};
};

// --- typed wrapper -------------------------------------------------------

/// Pack a small trivially-copyable value into the STM word.
template <typename T>
Word pack_word(const T& v) noexcept {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= sizeof(Word),
                "VBox<T> requires trivially copyable T of at most 8 bytes; "
                "store larger objects behind a pointer to an immutable "
                "record (see containers/)");
  Word w = 0;
  std::memcpy(&w, &v, sizeof(T));
  return w;
}

template <typename T>
T unpack_word(Word w) noexcept {
  T v;
  std::memcpy(&v, &w, sizeof(T));
  return v;
}

/// Typed versioned box. All access goes through a transactional context
/// (`Ctx` is any type exposing `Word read(VBoxImpl&)` and
/// `void write(VBoxImpl&, Word)` — flat transactions and sub-transactions
/// both qualify).
template <typename T>
class VBox {
 public:
  explicit VBox(const T& initial = T{}) : impl_(pack_word(initial)) {}

  template <typename Ctx>
  T get(Ctx& ctx) const {
    return unpack_word<T>(ctx.read(impl_));
  }

  template <typename Ctx>
  void put(Ctx& ctx, const T& value) {
    ctx.write(impl_, pack_word(value));
  }

  /// Non-transactional peek at the latest committed value. For tests,
  /// initialization, and post-quiescence inspection only.
  T peek_committed() const noexcept {
    return unpack_word<T>(impl_.permanent_head()->value);
  }

  /// Overwrite the initial committed value in place. Only safe while the
  /// box is still private to the constructing thread (e.g. wiring up
  /// container sentinels before publication).
  void unsafe_init(const T& value) noexcept {
    const_cast<PermanentVersion*>(impl_.permanent_head())->value =
        pack_word(value);
  }

  VBoxImpl& impl() noexcept { return impl_; }
  const VBoxImpl& impl() const noexcept { return impl_; }

 private:
  mutable VBoxImpl impl_;
};

}  // namespace txf::stm
