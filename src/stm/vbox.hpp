// Versioned boxes (paper §III): the unit of transactional shared state.
//
// VBoxImpl is the untyped concurrency-layer cell holding the two lists of
// Fig. 3b: the permanent (committed) version list and the tentative list
// used by sub-transactions of a transaction tree. VBox<T> is the typed
// user-facing wrapper.
#pragma once

#include <atomic>
#include <bit>
#include <cstring>
#include <type_traits>

#include "stm/versions.hpp"
#include "util/epoch.hpp"

namespace txf::core {
struct TentativeVersion;  // defined in core/tentative.hpp
}

namespace txf::stm {

// LIFETIME CONTRACT: a VBox's version numbers come from one StmEnv's global
// clock, and its old versions are reclaimed against that env's registry. A
// box must therefore be used with a single StmEnv for its whole life;
// sharing boxes across envs (or reusing them after the env's clock reset)
// makes committed versions unreachable.
//
// HOME SLOT (read fast path): the newest committed (version, value) pair is
// mirrored inline, in the box's own cache line, behind a seqlock. A reader
// whose snapshot covers the mirrored version completes with zero pointer
// chases — no permanent-list traversal at all. Publication protocol and the
// proof that a stable `home.version <= snapshot` slot is always the correct
// visible version live in DESIGN.md ("Read path"); the short form:
// publish_home() for version V runs (idempotently, by every write-back
// helper) *before* the batch's single clock advance to >= V, so any reader
// whose snapshot admits V has already synchronized with the slot store and
// can never observe a staler pair as stable.
class VBoxImpl {
 public:
  /// Deleter for the heap object a Word points at, installed with
  /// set_value_reclaimer(). Receives the Word reinterpreted as a pointer.
  using ValueReclaimer = void (*)(void*);

  /// The initial value is committed at version 0, so it is visible to every
  /// transaction from the start.
  explicit VBoxImpl(Word initial)
      : home_value_(initial),
        permanent_(new PermanentVersion(initial, 0, nullptr)) {}

  /// Destruction requires quiescence (no transaction may touch this box).
  /// With a value reclaimer installed, every value still reachable from the
  /// permanent list is reclaimed along with its version node.
  ~VBoxImpl() {
    PermanentVersion* p = permanent_.load(std::memory_order_relaxed);
    while (p != nullptr && p != trimmed_tail()) {
      PermanentVersion* next = p->next.load(std::memory_order_relaxed);
      if (value_reclaimer_ != nullptr && p->value != 0)
        value_reclaimer_(reinterpret_cast<void*>(p->value));
      delete p;
      p = next;
    }
  }

  VBoxImpl(const VBoxImpl&) = delete;
  VBoxImpl& operator=(const VBoxImpl&) = delete;

  // --- home slot (seqlock mirror of the newest committed version) ---

  /// Read fast path: if the seqlock is stable and the mirrored version is
  /// visible at `snapshot`, deposit the pair and return true — zero pointer
  /// chases. Returns false (caller walks the permanent list) when the slot
  /// is mid-publication, torn, or holds a version newer than the snapshot.
  bool try_read_home(Version snapshot, Word& value_out,
                     Version& version_out) const noexcept {
    const std::uint64_t s1 = home_seq_.load(std::memory_order_acquire);
    if (s1 & 1) return false;  // publication in flight
    // Chaos perturbation only (delay/yield): stretches the window between
    // the two seq loads against concurrent write-back publication and trim.
    TXF_FP_POINT("stm.read.home");
    const Version ver = home_version_.load(std::memory_order_relaxed);
    const Word val = home_value_.load(std::memory_order_relaxed);
    // The fence orders the data loads before the re-read of the sequence:
    // if seq is unchanged, the (version, value) pair is the one published
    // together (Boehm-style seqlock; data is atomic so TSan sees no race).
    std::atomic_thread_fence(std::memory_order_acquire);
    if (home_seq_.load(std::memory_order_relaxed) != s1) return false;
    if (ver > snapshot) return false;  // too new for this snapshot
    value_out = val;
    version_out = ver;
    return true;
  }

  /// Publish the newest committed version into the home slot. Idempotent
  /// and safe for concurrent helpers: all racers for one box carry the SAME
  /// (version, value) pair — write-back partitions hold one node per box
  /// per batch and batches are serialized — so the seq CAS only arbitrates
  /// who performs the (tiny) two-store critical section. MUST complete, on
  /// at least one helper, before the batch's clock advance: every helper
  /// calls this from its idempotent write-back sweep, so the helper that
  /// advances the clock has itself ensured home_version_ >= version.
  void publish_home(Version version, Word value) noexcept {
    std::uint64_t s = home_seq_.load(std::memory_order_acquire);
    for (;;) {
      if (home_version_.load(std::memory_order_relaxed) >= version) return;
      if (s & 1) {
        // A racer is mid-publication of the same (or a newer) pair; once it
        // lands, the version check above terminates the loop.
        s = home_seq_.load(std::memory_order_acquire);
        continue;
      }
      if (home_seq_.compare_exchange_weak(s, s + 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
        break;
      }
    }
    // Inside the critical section nothing else can write the slot, and the
    // successful acq_rel CAS synchronized with the previous publication's
    // closing release — so THIS version check is authoritative. It guards
    // against a helper that stalled across an entire batch cycle waking up
    // and regressing the slot to its old batch's (older) version.
    if (home_version_.load(std::memory_order_relaxed) < version) {
      home_version_.store(version, std::memory_order_relaxed);
      home_value_.store(value, std::memory_order_relaxed);
    }
    home_seq_.fetch_add(1, std::memory_order_release);
  }

  /// Mirrored newest-committed version (tests/diagnostics; racy by nature).
  Version home_version() const noexcept {
    return home_version_.load(std::memory_order_relaxed);
  }

  /// Pre-publication re-initialization of the version-0 mirror (see
  /// VBox::unsafe_init): box must still be private to one thread.
  void unsafe_set_home(Word value) noexcept {
    home_value_.store(value, std::memory_order_relaxed);
  }

  // --- permanent list ---

  /// Newest committed version node (acquire; safe to traverse inside an
  /// EBR guard or while the env is quiescent).
  const PermanentVersion* permanent_head() const noexcept {
    return permanent_.load(std::memory_order_acquire);
  }

  /// Newest committed version visible at `snapshot`. `steps`, when
  /// non-null, receives the walk length (for the read-path histogram).
  const PermanentVersion* read_permanent(
      Version snapshot, std::size_t* steps = nullptr) const noexcept {
    return find_visible(permanent_head(), snapshot, steps);
  }

  /// Number of committed versions currently reachable from the head
  /// (diagnostics: the resource-bound invariant the soak harness checks).
  /// Racy against concurrent write-back/trim by nature; call inside an EBR
  /// guard, or while the env is quiescent for an exact answer. The
  /// trimmed_tail() sentinel is not counted.
  std::size_t permanent_length() const noexcept {
    std::size_t n = 0;
    const PermanentVersion* p = permanent_head();
    while (p != nullptr && p != trimmed_tail()) {
      ++n;
      p = p->next.load(std::memory_order_acquire);
    }
    return n;
  }

  /// Commit write-back: link `node` in front of `expected`. Idempotence for
  /// helped commits comes from helpers sharing one pre-allocated node: the
  /// first CAS wins and later helpers observe head->version >= node->version.
  bool cas_permanent_head(PermanentVersion* expected,
                          PermanentVersion* node) noexcept {
    return permanent_.compare_exchange_strong(expected, node,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire);
  }

  /// Retire versions strictly older than the newest one visible at
  /// `min_snapshot` (they can never be read again). Caller must be inside an
  /// EBR guard of `domain`.
  ///
  /// The whole operation — including the search for the cut point — runs
  /// under the `trimming_` flag: a racing trimmer whose `keep` search
  /// overlapped another trimmer's cut could otherwise land inside the
  /// already-detached (and retired) segment and retire the same nodes a
  /// second time.
  void trim(Version min_snapshot, util::EpochDomain& domain) {
    bool expected = false;
    if (!trimming_.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
      return;  // another thread is trimming this box
    }
    PermanentVersion* keep = permanent_.load(std::memory_order_acquire);
    while (keep != nullptr &&
           keep->version.load(std::memory_order_acquire) > min_snapshot)
      keep = keep->next.load(std::memory_order_acquire);
    // Cut with the trimmed_tail() sentinel, not nullptr: write-back installs
    // a node's `next` via CAS-from-nullptr, so the non-null sentinel keeps a
    // stalled helper from re-pointing `keep->next` at the retired segment.
    PermanentVersion* old =
        keep != nullptr ? keep->next.exchange(trimmed_tail(),
                                              std::memory_order_acq_rel)
                        : nullptr;
    trimming_.store(false, std::memory_order_release);
    while (old != nullptr && old != trimmed_tail()) {
      PermanentVersion* next = old->next.load(std::memory_order_relaxed);
      // Leaf-version publication contract (containers/tx_btree.hpp): when a
      // box stores an owning pointer, retiring the version node also retires
      // the heap object it points at — through the same grace period, so a
      // reader that resolved this version inside its EBR guard can still
      // dereference the payload.
      if (value_reclaimer_ != nullptr && old->value != 0)
        domain.retire(reinterpret_cast<void*>(old->value), value_reclaimer_);
      retire_node(old, domain);
      old = next;
    }
  }

  /// Install an owning-pointer deleter for this box's Words. Must be called
  /// while the box is still private to the constructing thread (same window
  /// as VBox::unsafe_init): trimmers read the pointer unsynchronized.
  /// Once installed, committed values are owned by the version list — trim
  /// and the destructor reclaim superseded values; writers must never
  /// publish the same pointer twice.
  void set_value_reclaimer(ValueReclaimer r) noexcept { value_reclaimer_ = r; }
  ValueReclaimer value_reclaimer() const noexcept { return value_reclaimer_; }

  /// Retire a version node through `domain`, recycling it into the
  /// commit-path node pool once the grace period expires (defined in
  /// commit_queue.cpp next to the pool).
  static void retire_node(PermanentVersion* node, util::EpochDomain& domain);

  // --- tentative list (head doubles as the per-tree lock, §IV-A) ---

  /// Head of the tentative (uncommitted, tree-owned) version list; a
  /// non-null head from another tree is the eager write-write conflict
  /// signal under WriteMode::kEager (Alg. 1, ownedbyAnotherTree).
  core::TentativeVersion* tentative_head() const noexcept {
    return tentative_.load(std::memory_order_acquire);
  }

  /// Claim/extend the tentative list; failure means another tree owns the
  /// box (caller applies Config::inter_tree policy).
  bool cas_tentative_head(core::TentativeVersion* expected,
                          core::TentativeVersion* desired) noexcept {
    return tentative_.compare_exchange_strong(expected, desired,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire);
  }

  /// Unconditional head store — only valid for the tree that already owns
  /// the list (abort cleanup, top-commit detach).
  void store_tentative_head(core::TentativeVersion* v) noexcept {
    tentative_.store(v, std::memory_order_release);
  }

 private:
  // Home slot first: the dominant read touches only these three words (plus
  // tentative_ on the tree path), all in the box's first cache line.
  std::atomic<std::uint64_t> home_seq_{0};   // even = stable, odd = publishing
  std::atomic<Version> home_version_{0};
  std::atomic<Word> home_value_;
  std::atomic<PermanentVersion*> permanent_;
  std::atomic<core::TentativeVersion*> tentative_{nullptr};
  std::atomic<bool> trimming_{false};
  // Plain pointer by design: written once pre-publication (see setter).
  ValueReclaimer value_reclaimer_ = nullptr;
};

// --- typed wrapper -------------------------------------------------------

/// Pack a small trivially-copyable value into the STM word.
template <typename T>
Word pack_word(const T& v) noexcept {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= sizeof(Word),
                "VBox<T> requires trivially copyable T of at most 8 bytes; "
                "store larger objects behind a pointer to an immutable "
                "record (see containers/)");
  Word w = 0;
  std::memcpy(&w, &v, sizeof(T));
  return w;
}

template <typename T>
T unpack_word(Word w) noexcept {
  T v;
  std::memcpy(&v, &w, sizeof(T));
  return v;
}

/// Typed versioned box. All access goes through a transactional context
/// (`Ctx` is any type exposing `Word read(VBoxImpl&)` and
/// `void write(VBoxImpl&, Word)` — flat transactions and sub-transactions
/// both qualify).
template <typename T>
class VBox {
 public:
  /// The initial value is committed at version 0 — visible to every
  /// transaction from the box's first publication. See the LIFETIME
  /// CONTRACT above: one StmEnv/Runtime per box, for its whole life.
  explicit VBox(const T& initial = T{}) : impl_(pack_word(initial)) {}

  /// Transactional read. Thread-safe from any number of concurrent
  /// transactions. May abort the calling attempt (by throwing the
  /// engine's internal abort exception) when the snapshot is no longer
  /// serializable — user code must let such exceptions propagate so
  /// atomically() can retry.
  template <typename Ctx>
  T get(Ctx& ctx) const {
    return unpack_word<T>(ctx.read(impl_));
  }

  /// Transactional write (buffered; nothing is visible outside the
  /// transaction until its top-level commit). Under WriteMode::kEager a
  /// write may hit a box owned by another tree and abort/fall back per
  /// Config::inter_tree; same abort-propagation rule as get().
  template <typename Ctx>
  void put(Ctx& ctx, const T& value) {
    ctx.write(impl_, pack_word(value));
  }

  /// Non-transactional peek at the latest committed value. For tests,
  /// initialization, and post-quiescence inspection only.
  T peek_committed() const noexcept {
    return unpack_word<T>(impl_.permanent_head()->value);
  }

  /// Overwrite the initial committed value in place. Only safe while the
  /// box is still private to the constructing thread (e.g. wiring up
  /// container sentinels before publication). Keeps the home-slot mirror in
  /// sync with the version-0 node it shadows.
  void unsafe_init(const T& value) noexcept {
    const Word w = pack_word(value);
    const_cast<PermanentVersion*>(impl_.permanent_head())->value = w;
    impl_.unsafe_set_home(w);
  }

  VBoxImpl& impl() noexcept { return impl_; }
  const VBoxImpl& impl() const noexcept { return impl_; }

 private:
  mutable VBoxImpl impl_;
};

}  // namespace txf::stm
