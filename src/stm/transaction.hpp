// Flat (future-free) top-level transactions and the STM environment.
//
// This is the conventional JVSTM-style MVCC transaction of paper §III-A:
// snapshot reads against the permanent version lists, a private write set,
// and commit through the ordered helping queue. Transaction trees (futures)
// build on top of this in core/.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>

#include "obs/abort_cause.hpp"
#include "obs/trace.hpp"
#include "stm/commit_queue.hpp"
#include "stm/commit_spine.hpp"
#include "stm/global_clock.hpp"
#include "stm/read_stats.hpp"
#include "stm/vbox.hpp"
#include "stm/write_set.hpp"
#include "util/backoff.hpp"
#include "util/epoch.hpp"

namespace txf::stm {

/// Shared state of one STM instance: the striped clock, the live-snapshot
/// registry, the sharded commit spine and the reclamation domain. Library
/// users normally hold exactly one (via core::Runtime, which passes
/// Config::commit_stripes); tests create private ones freely — the default
/// single stripe reproduces the pre-sharding pipeline exactly.
class StmEnv {
 public:
  explicit StmEnv(unsigned stripes = 1)
      : clock_(stripes),
        epochs_(&util::global_epoch_domain()),
        queue_(clock_, registry_, *epochs_) {
    registry_.set_stripes(clock_.stripes());
  }
  explicit StmEnv(util::EpochDomain& domain, unsigned stripes = 1)
      : clock_(stripes), epochs_(&domain), queue_(clock_, registry_, domain) {
    registry_.set_stripes(clock_.stripes());
  }

  StmEnv(const StmEnv&) = delete;
  StmEnv& operator=(const StmEnv&) = delete;

  unsigned stripes() const noexcept { return clock_.stripes(); }
  StripedClock& clock() noexcept { return clock_; }
  const StripedClock& clock() const noexcept { return clock_; }
  ActiveTxnRegistry& registry() noexcept { return registry_; }
  CommitSpine& queue() noexcept { return queue_; }
  const CommitSpine& queue() const noexcept { return queue_; }
  util::EpochDomain& epochs() noexcept { return *epochs_; }
  ReadPathStats& read_stats() noexcept { return read_stats_; }
  const ReadPathStats& read_stats() const noexcept { return read_stats_; }
  obs::AbortAccounting& abort_accounting() noexcept { return aborts_; }
  const obs::AbortAccounting& abort_accounting() const noexcept {
    return aborts_;
  }

 private:
  StripedClock clock_;
  ActiveTxnRegistry registry_;
  util::EpochDomain* epochs_;
  CommitSpine queue_;
  ReadPathStats read_stats_;
  obs::AbortAccounting aborts_;
};

/// Thrown by user code to force an abort-and-retry of the current attempt.
struct RetryTransaction {};

class Transaction {
 public:
  enum class Mode { kReadWrite, kReadOnly };

  explicit Transaction(StmEnv& env, Mode mode = Mode::kReadWrite)
      : env_(env),
        nstripes_(env.stripes()),
        stripe_mask_(env.stripes() - 1),
        mode_(mode) {
    guard_.emplace(env.epochs());
    const std::size_t hint =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    slot_ = env_.registry().claim(hint);
    begin_snapshot();
  }

  ~Transaction() {
    read_path_.flush_into(env_.read_stats());
    if (slot_ != ActiveTxnRegistry::kNoSlot) {
      env_.registry().release(slot_);
    } else {
      env_.registry().release_unregistered();
    }
  }

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  /// Snapshot component for stripe 0 (exact scalar snapshot on
  /// single-stripe envs; tests and diagnostics).
  Version snapshot() const noexcept { return snapshot_.seq[0]; }
  /// The full per-stripe snapshot vector.
  const SnapshotVec& snapshot_vec() const noexcept { return snapshot_; }
  /// Snapshot component governing `box`.
  Version snapshot_of(const VBoxImpl& box) const noexcept {
    return snapshot_.seq[stripe_of(&box, stripe_mask_)];
  }
  Mode mode() const noexcept { return mode_; }
  StmEnv& env() noexcept { return env_; }

  /// Transactional read (paper §III-A: write-set lookup, then the newest
  /// permanent version committed before this transaction began). The home
  /// slot serves the dominant case — newest committed version visible at
  /// this snapshot — with zero pointer chases; only readers overtaken by a
  /// newer commit (or racing a publication) walk the version list.
  Word read(VBoxImpl& box) {
    if (mode_ == Mode::kReadWrite) {
      if (const Word* w = writes_.find(&box)) return *w;
    }
    // Versions are stripe-local: compare only against the component of this
    // box's stripe (global_clock.hpp).
    const Version snap = snapshot_.seq[stripe_of(&box, stripe_mask_)];
    Word value;
    Version version;
    if (box.try_read_home(snap, value, version)) {
      read_path_.note_home();
      if (mode_ == Mode::kReadWrite) reads_.put(&box, 0);
      return value;
    }
    std::size_t steps = 0;
    const PermanentVersion* v = box.read_permanent(snap, &steps);
    if (v == nullptr) {
      // Our snapshot lost a race with trimming (e.g. a slot-less overflow
      // transaction whose snapshot the GC could not see). Not a programming
      // error: abort this attempt and let atomically() retry at a fresh
      // snapshot instead of crashing a release build.
      pending_cause_ = obs::AbortCause::kStaleSnapshot;
      throw RetryTransaction{};
    }
    read_path_.note_walk(steps);
    obs::trace::instant(obs::trace::Ev::kReadWalk,
                        static_cast<std::uint32_t>(steps));
    if (mode_ == Mode::kReadWrite) reads_.put(&box, 0);
    return v->value;
  }

  /// Transactional write: buffered privately until commit.
  void write(VBoxImpl& box, Word value) {
    assert(mode_ == Mode::kReadWrite && "write inside a read-only transaction");
    writes_.put(&box, value);
  }

  bool wrote_anything() const noexcept { return !writes_.empty(); }
  std::size_t read_count() const noexcept { return reads_.size(); }
  std::size_t write_count() const noexcept { return writes_.size(); }

  /// Attempt to commit. Read-only executions commit immediately (their
  /// snapshot is consistent by construction, §IV-E); writers go through the
  /// helped commit queue. Returns false on conflict — caller retries with a
  /// fresh Transaction.
  bool try_commit() {
    if (writes_.empty()) return true;
    // Stage-1 pre-validation (commit_queue.hpp): a doomed read set is shed
    // here, before the queue is touched or any write-back state allocated.
    if (!env_.queue().prevalidate(reads_.boxes(), snapshot_)) return false;
    CommitRequest* req = CommitQueue::acquire_request();
    req->reads = reads_.boxes();
    req->writes.reserve(writes_.size());
    for (VBoxImpl* box : writes_.boxes()) {
      req->writes.push_back(
          WriteBackEntry{box, CommitQueue::acquire_node(writes_.value_of(box))});
    }
    // The spine routes by stripe footprint and fills req->snapshot with the
    // right component on the single-stripe path (commit_spine.hpp).
    return env_.queue().commit(req, snapshot_);
  }

  /// Make this transaction invisible between retry attempts: unpin the EBR
  /// guard (so reclamation keeps flowing while we back off) and clear the
  /// published snapshot (so the version GC is not held back by a doomed
  /// attempt). The transaction must not be used again until reset().
  void park() {
    read_path_.flush_into(env_.read_stats());
    guard_.reset();
    if (slot_ != ActiveTxnRegistry::kNoSlot) {
      env_.registry().slot(slot_).clear(nstripes_);
    }
  }

  /// Re-arm a parked transaction for the next attempt. Keeps the registry
  /// slot and both set maps (their capacity is the point of reusing the
  /// object) but drops their contents and takes a fresh snapshot.
  void reset() {
    guard_.emplace(env_.epochs());
    writes_.clear();
    reads_.clear();
    begin_snapshot();
  }

  /// reset(), switching the execution mode for the next attempt.
  void reset(Mode mode) {
    mode_ = mode;
    reset();
  }

  /// Cause recorded by the engine for the current attempt's failure
  /// (consumed by atomically(); defaults to `fallback` when the attempt
  /// failed for a reason the engine did not classify).
  obs::AbortCause take_abort_cause(obs::AbortCause fallback) noexcept {
    const obs::AbortCause c = pending_cause_;
    pending_cause_ = obs::AbortCause::kCount;
    return c != obs::AbortCause::kCount ? c : fallback;
  }

 private:
  void begin_snapshot() {
    // Publish-then-verify, per component, so the version GC can never trim
    // a version this snapshot still needs (see ActiveTxnRegistry): if a
    // component is unchanged after we published it, any trimmer that missed
    // our slot used an upper bound no newer than our component.
    StripedClock& clock = env_.clock();
    if (slot_ == ActiveTxnRegistry::kNoSlot) {
      clock.snapshot(snapshot_);
      return;
    }
    ActiveTxnRegistry::Slot& sl = env_.registry().slot(slot_);
    for (;;) {
      clock.snapshot(snapshot_);
      for (unsigned s = 0; s < nstripes_; ++s) sl.publish(s, snapshot_.seq[s]);
      bool stable = true;
      for (unsigned s = 0; s < nstripes_; ++s) {
        if (clock.current(s) != snapshot_.seq[s]) {
          stable = false;
          break;
        }
      }
      if (stable) return;
    }
  }

  StmEnv& env_;
  std::optional<util::EpochDomain::Guard> guard_;
  std::size_t slot_ = ActiveTxnRegistry::kNoSlot;
  SnapshotVec snapshot_{};
  unsigned nstripes_;
  unsigned stripe_mask_;
  WriteSetMap writes_;
  WriteSetMap reads_;  // keys only: the read set
  ReadPathCounters read_path_;  // flushed into env on park()/destruction
  obs::AbortCause pending_cause_ = obs::AbortCause::kCount;  // kCount = none
  Mode mode_;
};

/// Run `fn(Transaction&)` atomically, retrying on conflict with bounded
/// exponential backoff. Returns fn's result. One Transaction object is
/// reused across attempts (park()/reset()), so a long retry fight costs no
/// per-attempt allocations and never pins the reclamation epoch through a
/// backoff sleep.
template <typename F>
auto atomically(StmEnv& env, F&& fn,
                Transaction::Mode mode = Transaction::Mode::kReadWrite) {
  using R = std::invoke_result_t<F&, Transaction&>;
  util::Backoff backoff;
  Transaction tx(env, mode);
  obs::AbortAccounting& acc = env.abort_accounting();
  for (;;) {
    // Per-attempt accounting (see obs/abort_cause.hpp): every failed
    // attempt counts its cause once; tx.commits / tx.aborted reflect only
    // the call's final outcome. The trace span covers one attempt and
    // always contains exactly one tx.commit or tx.abort instant.
    obs::AbortCause cause = obs::AbortCause::kReadValidation;
    {
      obs::trace::Span attempt(obs::trace::Ev::kTx);
      try {
        if constexpr (std::is_void_v<R>) {
          fn(tx);
          if (tx.try_commit()) {
            obs::trace::instant(obs::trace::Ev::kTxCommit);
            acc.tx_commits.add();
            return;
          }
        } else {
          R result = fn(tx);
          if (tx.try_commit()) {
            obs::trace::instant(obs::trace::Ev::kTxCommit);
            acc.tx_commits.add();
            return result;
          }
        }
        // try_commit() refused: the read set was overtaken (stage-1 shed or
        // batch validation); `cause` keeps its kReadValidation default.
      } catch (const RetryTransaction&) {
        cause = tx.take_abort_cause(obs::AbortCause::kExplicitRetry);
      } catch (...) {
        // User exception: the call's final outcome is an abort.
        acc.on_attempt_abort(obs::AbortCause::kUserException);
        acc.tx_aborted.add();
        obs::trace::instant(
            obs::trace::Ev::kTxAbort,
            static_cast<std::uint32_t>(obs::AbortCause::kUserException));
        throw;
      }
      acc.on_attempt_abort(cause);
      obs::trace::instant(obs::trace::Ev::kTxAbort,
                          static_cast<std::uint32_t>(cause));
    }
    tx.park();
    backoff.pause();
    tx.reset();
  }
}

}  // namespace txf::stm
