// Private write set: open-addressing hash map from VBox to written word.
//
// Top-level (flat) transactions buffer writes here (paper §III-A); the same
// structure backs the tree-private rootWriteSet used by the inter-tree
// conflict fallback (§IV-A, ownedByAnotherTree). Hot path is
// lookup-on-every-read, so this is a flat, allocation-light linear-probing
// table rather than std::unordered_map.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "stm/versions.hpp"

namespace txf::stm {

class VBoxImpl;

class WriteSetMap {
 public:
  struct Entry {
    VBoxImpl* box = nullptr;
    Word value = 0;
  };

  WriteSetMap() { reset_table(16); }

  /// O(size), not O(capacity): the table never shrinks after grow(), so a
  /// pooled/reused map must not pay a full-table fill to drop a tiny write
  /// set. Each inserted box is walked to its slot and cleared individually;
  /// the probe loop cannot use empty-slot termination (earlier clears punch
  /// holes into probe chains) but every box in order_ is guaranteed present,
  /// so scanning until found always terminates.
  void clear() {
    if (size_ == 0) return;
    if (size_ * 4 >= table_.size()) {
      std::fill(table_.begin(), table_.end(), Entry{});
    } else {
      for (VBoxImpl* box : order_) {
        std::size_t i = probe_start(box);
        while (table_[i].box != box) i = (i + 1) & mask_;
        table_[i] = Entry{};
      }
    }
    order_.clear();
    size_ = 0;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Insert or overwrite.
  void put(VBoxImpl* box, Word value) {
    if ((size_ + 1) * 10 >= table_.size() * 7) grow();
    std::size_t i = probe_start(box);
    for (;;) {
      Entry& e = table_[i];
      if (e.box == box) {
        e.value = value;
        return;
      }
      if (e.box == nullptr) {
        e.box = box;
        e.value = value;
        order_.push_back(box);
        ++size_;
        return;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Returns pointer to the stored value or nullptr.
  const Word* find(const VBoxImpl* box) const noexcept {
    std::size_t i = probe_start(box);
    for (;;) {
      const Entry& e = table_[i];
      if (e.box == box) return &e.value;
      if (e.box == nullptr) return nullptr;
      i = (i + 1) & mask_;
    }
  }

  /// Boxes in first-write order (stable iteration for write-back).
  const std::vector<VBoxImpl*>& boxes() const noexcept { return order_; }

  Word value_of(const VBoxImpl* box) const noexcept {
    const Word* w = find(box);
    return w != nullptr ? *w : 0;
  }

 private:
  std::size_t probe_start(const VBoxImpl* box) const noexcept {
    auto h = reinterpret_cast<std::uintptr_t>(box);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h) & mask_;
  }

  void reset_table(std::size_t cap) {
    table_.assign(cap, Entry{});
    mask_ = cap - 1;
  }

  void grow() {
    std::vector<Entry> old;
    old.swap(table_);
    reset_table(old.size() * 2);
    for (const Entry& e : old) {
      if (e.box == nullptr) continue;
      std::size_t i = probe_start(e.box);
      while (table_[i].box != nullptr) i = (i + 1) & mask_;
      table_[i] = e;
    }
  }

  std::vector<Entry> table_;
  std::vector<VBoxImpl*> order_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace txf::stm
