// Private write set: open-addressing hash map from VBox to written word.
//
// Top-level (flat) transactions buffer writes here (paper §III-A); the same
// structure backs the tree-private rootWriteSet used by the inter-tree
// conflict fallback (§IV-A, ownedByAnotherTree) and read-set tracking. Hot
// path is lookup-on-every-read, so this is a flat, allocation-light table
// rather than std::unordered_map — with an inline fast path in front:
//
//   * The first kInline (8) distinct boxes live in a fixed in-object array
//     scanned linearly — no hashing, no heap. Short transactions (the
//     common case in Vacation and the synthetic read-only workload) never
//     touch the heap table at all; a fresh map performs ZERO allocations
//     until the 9th distinct box spills.
//   * The heap table is allocated lazily on first spill and backs entries
//     9..n with the original linear-probing scheme. Inline entries never
//     migrate: insertion order guarantees order_[0..inline_count_) are
//     exactly the inline residents, which clear() exploits.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "stm/versions.hpp"

namespace txf::stm {

class VBoxImpl;

class WriteSetMap {
 public:
  /// Inline capacity: one cache line of Entry{box, value} pairs.
  static constexpr std::size_t kInline = 8;

  struct Entry {
    VBoxImpl* box = nullptr;
    Word value = 0;
  };

  WriteSetMap() = default;

  /// O(size), not O(capacity): the table never shrinks after grow(), so a
  /// pooled/reused map must not pay a full-table fill to drop a tiny write
  /// set. Each spilled box is walked to its slot and cleared individually;
  /// the probe loop cannot use empty-slot termination (earlier clears punch
  /// holes into probe chains) but every box in order_ is guaranteed present,
  /// so scanning until found always terminates.
  void clear() {
    if (size_ == 0) return;
    for (std::size_t i = 0; i < inline_count_; ++i) inline_[i] = Entry{};
    const std::size_t spilled = size_ - inline_count_;
    if (spilled > 0) {
      if (spilled * 4 >= table_.size()) {
        std::fill(table_.begin(), table_.end(), Entry{});
      } else {
        for (std::size_t k = inline_count_; k < order_.size(); ++k) {
          VBoxImpl* box = order_[k];
          std::size_t i = probe_start(box);
          while (table_[i].box != box) i = (i + 1) & mask_;
          table_[i] = Entry{};
        }
      }
    }
    order_.clear();
    inline_count_ = 0;
    size_ = 0;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Insert or overwrite.
  void put(VBoxImpl* box, Word value) {
    for (std::size_t i = 0; i < inline_count_; ++i) {
      if (inline_[i].box == box) {
        inline_[i].value = value;
        return;
      }
    }
    if (inline_count_ < kInline && size_ == inline_count_) {
      inline_[inline_count_].box = box;
      inline_[inline_count_].value = value;
      ++inline_count_;
      order_.push_back(box);
      ++size_;
      return;
    }
    put_spilled(box, value);
  }

  /// True iff `box` is already tracked — the read path's duplicate-read
  /// check; for short transactions it is a ≤8-entry linear scan that never
  /// touches the heap.
  bool contains(const VBoxImpl* box) const noexcept {
    return find(box) != nullptr;
  }

  /// Returns pointer to the stored value or nullptr.
  const Word* find(const VBoxImpl* box) const noexcept {
    for (std::size_t i = 0; i < inline_count_; ++i) {
      if (inline_[i].box == box) return &inline_[i].value;
    }
    if (size_ == inline_count_) return nullptr;  // nothing spilled
    std::size_t i = probe_start(box);
    for (;;) {
      const Entry& e = table_[i];
      if (e.box == box) return &e.value;
      if (e.box == nullptr) return nullptr;
      i = (i + 1) & mask_;
    }
  }

  /// Boxes in first-write order (stable iteration for write-back).
  const std::vector<VBoxImpl*>& boxes() const noexcept { return order_; }

  Word value_of(const VBoxImpl* box) const noexcept {
    const Word* w = find(box);
    return w != nullptr ? *w : 0;
  }

 private:
  void put_spilled(VBoxImpl* box, Word value) {
    const std::size_t spilled = size_ - inline_count_;
    if (table_.empty()) {
      reset_table(16);
    } else if ((spilled + 1) * 10 >= table_.size() * 7) {
      grow();
    }
    std::size_t i = probe_start(box);
    for (;;) {
      Entry& e = table_[i];
      if (e.box == box) {
        e.value = value;
        return;
      }
      if (e.box == nullptr) {
        e.box = box;
        e.value = value;
        order_.push_back(box);
        ++size_;
        return;
      }
      i = (i + 1) & mask_;
    }
  }

  std::size_t probe_start(const VBoxImpl* box) const noexcept {
    auto h = reinterpret_cast<std::uintptr_t>(box);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h) & mask_;
  }

  void reset_table(std::size_t cap) {
    table_.assign(cap, Entry{});
    mask_ = cap - 1;
  }

  void grow() {
    std::vector<Entry> old;
    old.swap(table_);
    reset_table(old.size() * 2);
    for (const Entry& e : old) {
      if (e.box == nullptr) continue;
      std::size_t i = probe_start(e.box);
      while (table_[i].box != nullptr) i = (i + 1) & mask_;
      table_[i] = e;
    }
  }

  std::array<Entry, kInline> inline_{};
  std::size_t inline_count_ = 0;
  std::vector<Entry> table_;
  std::vector<VBoxImpl*> order_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace txf::stm
