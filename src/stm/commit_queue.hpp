// Group-commit pipeline — the ordered commit path of the JVSTM-style
// substrate (paper §III-A), refactored from "every helper processes every
// request end-to-end in order" into three stages:
//
//   1. PRE-VALIDATION (parallel, queue-free). A committer checks its read
//      set against the permanent lists at the current clock *before*
//      enqueueing. A box whose committed head already exceeds the snapshot
//      dooms the request no matter where it would land in the queue
//      (versions only grow), so it is shed without ever touching the queue
//      or allocating write-back nodes. See prevalidate().
//
//   2. BATCHED VERSION ASSIGNMENT (combiner + helpers). A combiner claims
//      the whole current queue segment as an immutable Batch
//      (flat-combining style), then every thread waiting on the queue
//      replays one deterministic pass over it: final-validate each request
//      against the frozen permanent state AND against the write sets of
//      earlier valid requests of the same batch, merge verdicts through
//      first-wins CASes, and assign *consecutive* versions base+1..base+k
//      to the valid requests — aborted requests consume no version, so the
//      clock stays gap-free and equal to the committed-writer count.
//
//   3. PARALLEL WRITE-BACK (fan-out). The deterministic pass also yields a
//      per-box partition plan (boxes are disjoint across partitions, nodes
//      within a partition ascend in version). Helpers claim partitions via
//      fetch_add and link them; every helper then runs a cheap idempotent
//      sweep over all partitions, so a stalled helper can never strand a
//      box. The global clock is published ONCE per batch, only after the
//      sweep proves every box linked — snapshots observe a batch atomically.
//
// Idempotence / helping argument (the part that must survive review):
//  * The Batch is fully formed (request array, base version) before it is
//    published by a single CAS; helpers only ever see complete batches.
//  * The deterministic pass is a pure function of (batch contents, stored
//    verdicts, permanent state frozen at batch start). Verdict CASes are
//    first-wins; write-back cannot start until every verdict is decided, so
//    any verdict computed from mutating state necessarily loses its CAS and
//    the stored (pre-write-back) value is used instead. Version stamps and
//    commit_version_ stores are therefore always the same value from every
//    helper, which is why those fields are atomics written with plain
//    stores.
//  * Per-box linking reuses the PR-0 idempotent CAS: helpers share the one
//    pre-allocated node per (request, box); `head->version >= node->version`
//    means someone else already linked it. Nodes of one box are attempted
//    in ascending version order by every helper, so the permanent list
//    stays strictly version-descending.
//  * Completion (clock advance, done flags, head swing, slot clear) is a
//    sequence of idempotent or CAS-once steps any helper can execute; a
//    combiner that stalls at any point — including immediately after
//    publishing its batch — is simply overtaken.
//
// A batch whose boundary no longer equals head_ is stale (its requests were
// already retired by a completed batch); staleness is stable because head_
// is monotone, and every helper checks it before acting.
//
// Requests and version nodes are pooled: EBR retirement funnels them into
// thread-local free lists (vector capacity preserved) instead of the
// allocator. See commit_queue.cpp.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "stm/global_clock.hpp"
#include "stm/versions.hpp"
#include "util/epoch.hpp"

namespace txf::stm {

class VBoxImpl;

/// One pre-allocated permanent node per written box; helpers link exactly
/// this node, which is what makes concurrent write-back idempotent.
struct WriteBackEntry {
  VBoxImpl* box;
  PermanentVersion* node;
};

class CommitRequest {
 public:
  enum class Verdict : std::uint8_t { kUnknown, kValid, kAborted };

  std::vector<WriteBackEntry> writes;
  std::vector<VBoxImpl*> reads;
  Version snapshot = 0;

  Version commit_version() const noexcept {
    return commit_version_.load(std::memory_order_acquire);
  }
  Verdict verdict() const noexcept {
    return verdict_.load(std::memory_order_acquire);
  }
  bool done() const noexcept { return done_.load(std::memory_order_acquire); }

 private:
  friend class CommitQueue;
  friend class CommitSpine;  // multi-stripe path stores the verdict itself
  std::atomic<Version> commit_version_{0};
  std::atomic<Verdict> verdict_{Verdict::kUnknown};
  std::atomic<bool> done_{false};
  std::atomic<CommitRequest*> next_{nullptr};
};

class CommitQueue {
 public:
  /// Upper bound on requests claimed into one batch (also the clock's
  /// maximum jump); tests can lower it to force specific schedules.
  static constexpr std::uint32_t kDefaultBatchLimit = 128;
  /// Power-of-two batch-size histogram buckets: 1, 2, 3-4, 5-8, ..., 65+.
  static constexpr std::size_t kBatchSizeBuckets = 8;

  /// `stripe` is this pipeline's index in the commit spine (0 for the
  /// single-stripe configuration): it selects the registry component the
  /// version GC consults and tags this queue's trace spans.
  CommitQueue(GlobalClock& clock, ActiveTxnRegistry& registry,
              util::EpochDomain& epochs, unsigned stripe = 0);
  ~CommitQueue();

  CommitQueue(const CommitQueue&) = delete;
  CommitQueue& operator=(const CommitQueue&) = delete;

  /// Stage 1: shed a doomed read set without touching the queue. Returns
  /// false (and counts the shed as an abort) iff some read box already has a
  /// committed version newer than `snapshot`. Callers use this *before*
  /// allocating a CommitRequest; passing it does not guarantee the final
  /// (stage 2) validation will pass.
  bool prevalidate(const std::vector<VBoxImpl*>& reads, Version snapshot);

  /// Stages 2+3: enqueue `req`, help batches until it is done, and return
  /// whether it committed. On success the write-back has been applied and
  /// the global clock covers the batch; on failure the caller owns retry.
  /// The queue takes ownership of `req` and of the nodes of an aborted
  /// request's write set. Caller must hold an EBR guard on the domain passed
  /// at construction.
  bool commit(CommitRequest* req);

  /// Acquire a request from the thread-local pool (fields reset, vector
  /// capacity preserved). Ownership passes back to the queue via commit().
  static CommitRequest* acquire_request();

  /// Acquire a write-back node from the thread-local pool.
  static PermanentVersion* acquire_node(Word value);

  /// Retire a request back into the pools through EBR (the multi-stripe
  /// commit path owns its request end-to-end instead of handing it to a
  /// queue, so it needs the recycler the head-swing winner normally runs).
  static void retire_request(CommitRequest* req, util::EpochDomain& epochs);

  /// Account a stage-1 shed decided outside this queue (the commit spine
  /// prevalidates sharded read sets box-by-box and attributes the shed to
  /// the failing box's stripe).
  void note_shed() noexcept {
    sheds_.fetch_add(1, std::memory_order_relaxed);
    aborted_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- stripe freeze (multi-stripe commit protocol; see commit_spine.hpp) --

  /// Block batch formation on this stripe and drain the in-flight batch.
  /// On return the caller exclusively owns this stripe's clock component and
  /// permanent-list heads: no batch is active, none can form, and any other
  /// multi-stripe committer is excluded until unfreeze(). The freezer helps
  /// the current batch to completion rather than waiting on it (liveness on
  /// oversubscribed hosts). Committers meanwhile keep enqueueing; their
  /// requests wait for unfreeze().
  void freeze();
  void unfreeze();

  std::uint64_t committed_count() const noexcept {
    return committed_.load(std::memory_order_relaxed);
  }
  std::uint64_t aborted_count() const noexcept {
    return aborted_.load(std::memory_order_relaxed);
  }

  // --- pipeline observability (bench/CI attribution) ---

  /// Requests shed by stage-1 pre-validation (included in aborted_count).
  std::uint64_t prevalidation_sheds() const noexcept {
    return sheds_.load(std::memory_order_relaxed);
  }
  /// Batches processed (stage 2 combiner claims).
  std::uint64_t batch_count() const noexcept {
    return batches_.load(std::memory_order_relaxed);
  }
  /// Requests that went through a batch (committed + queue-aborted).
  std::uint64_t batched_requests() const noexcept {
    return batched_requests_.load(std::memory_order_relaxed);
  }
  /// Batch-size histogram bucket `i` covers sizes (2^(i-1), 2^i].
  std::uint64_t batch_size_bucket(std::size_t i) const noexcept {
    return batch_size_hist_[i < kBatchSizeBuckets ? i : kBatchSizeBuckets - 1]
        .load(std::memory_order_relaxed);
  }
  /// Requests currently between enqueue and completion (instantaneous,
  /// relaxed — a load-shedding signal, not an exact census). Also the
  /// "stm.commit.queue_depth" gauge.
  std::int64_t queue_depth() const noexcept {
    const std::int64_t d = queue_depth_.load();
    return d < 0 ? 0 : d;
  }
  /// Total nanoseconds requests spent between enqueue and done, and the
  /// number of requests measured (dwell = queue latency of stage 2+3).
  std::uint64_t queue_dwell_ns() const noexcept {
    return dwell_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t queue_dwell_samples() const noexcept {
    return dwell_samples_.load(std::memory_order_relaxed);
  }
  /// Per-stage duration histograms (sampled, nanoseconds): stage 1
  /// pre-validation, stage 2 deterministic pass, stage 3 write-back fan-out.
  /// Registered as "stm.commit.stage.{prevalidate,assign,writeback}_ns".
  const obs::Histogram& stage_prevalidate_ns() const noexcept {
    return prevalidate_ns_;
  }
  const obs::Histogram& stage_assign_ns() const noexcept { return assign_ns_; }
  const obs::Histogram& stage_writeback_ns() const noexcept {
    return writeback_ns_;
  }
  /// Registry-backed batch-size distribution ("stm.commit.batch_size",
  /// full 32-bucket resolution; batch_size_bucket() keeps the coarse view).
  const obs::Histogram& batch_size_hist() const noexcept {
    return batch_size_h_;
  }

  /// How often (in committed requests) to trim written boxes. Exposed for
  /// tests; default keeps GC overhead negligible. Atomic: helpers read it
  /// concurrently with test threads reconfiguring it.
  void set_trim_period(std::uint32_t period) noexcept {
    trim_period_.store(period, std::memory_order_relaxed);
  }

  /// Cap on requests per batch (tests force 1 to serialize, or small values
  /// to exercise segment boundaries).
  void set_batch_limit(std::uint32_t limit) noexcept {
    batch_limit_.store(limit == 0 ? 1 : limit, std::memory_order_relaxed);
  }

 private:
  friend class VBoxImpl;  // retire_node feeds the node pool's recycler

  /// An immutable segment claim plus the batch's shared merge state. The
  /// request array and base version are frozen before publication; only the
  /// claim/stat atomics mutate afterwards.
  struct Batch {
    CommitRequest* boundary = nullptr;       // head_ value the batch extends
    std::vector<CommitRequest*> reqs;        // segment, in queue order
    Version base = 0;                        // clock before this batch
    std::atomic<std::uint32_t> next_partition{0};
    // Set once the clock and all done flags are published: late helpers skip
    // the deterministic pass and write-back and jump to the cleanup steps.
    std::atomic<bool> completed{false};
    std::atomic<bool> stats_done{false};
  };

  /// Thread-local scratch for the deterministic pass (see commit_queue.cpp);
  /// all helpers independently compute identical plans from it.
  struct Plan;

  static Plan& local_plan();
  /// Sentinel stored in batch_ while the stripe is frozen: batch formation
  /// already refuses when the slot is occupied, so freezing is just keeping
  /// it occupied by a batch nobody can help.
  static Batch* frozen_sentinel();
  /// Trace span argument: stripe id in the high byte, size capped below it.
  std::uint32_t span_arg(std::size_t n) const noexcept {
    const auto capped =
        n > 0xffffffu ? 0xffffffu : static_cast<std::uint32_t>(n);
    return (static_cast<std::uint32_t>(stripe_) << 24) | capped;
  }
  /// EBR deleters that recycle into the thread-local pools backing
  /// acquire_request()/acquire_node() (overflow falls back to delete).
  static void recycle_request(void* p);
  static void recycle_node(void* p);
  static Batch* acquire_batch();
  static void recycle_batch(void* p);

  void enqueue(CommitRequest* req);
  void help_until_done(CommitRequest* target);
  /// Form a batch from the current head_ segment and publish it; no-op if a
  /// batch is already active or the segment is empty.
  void try_form_batch();
  /// Drive `b` to completion (or bail if it is stale). Safe for any helper.
  void help_batch(Batch* b);
  /// The deterministic verdict/version/partition pass (stage 2).
  void build_plan(Batch& b, Plan& plan);
  /// Link one partition's nodes in ascending version order (idempotent).
  static void link_partition(const Plan& plan, std::size_t part);
  void record_batch_stats(Batch& b);
  void maybe_trim(CommitRequest& req);

  GlobalClock& clock_;
  ActiveTxnRegistry& registry_;
  util::EpochDomain& epochs_;
  unsigned stripe_;

  // head_ = boundary: the last retired-or-sentinel request; its successors
  // are the unclaimed segment. tail_ = last enqueued (MS-queue style).
  util::CacheAligned<std::atomic<CommitRequest*>> head_;
  util::CacheAligned<std::atomic<CommitRequest*>> tail_;
  // The single active batch (nullptr between batches). Serializes stage 2/3
  // at batch granularity; within a batch all threads cooperate.
  util::CacheAligned<std::atomic<Batch*>> batch_{nullptr};

  std::atomic<std::uint64_t> committed_{0};
  std::atomic<std::uint64_t> aborted_{0};
  std::atomic<std::uint64_t> sheds_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_requests_{0};
  std::array<std::atomic<std::uint64_t>, kBatchSizeBuckets> batch_size_hist_{};
  std::atomic<std::uint64_t> dwell_ns_{0};
  std::atomic<std::uint64_t> dwell_samples_{0};
  obs::Gauge queue_depth_;  // enqueued minus completed (see queue_depth())
  std::atomic<std::uint64_t> trim_tick_{0};
  std::atomic<std::uint32_t> trim_period_{32};
  std::atomic<std::uint32_t> batch_limit_{kDefaultBatchLimit};

  obs::Histogram prevalidate_ns_;
  obs::Histogram assign_ns_;
  obs::Histogram writeback_ns_;
  obs::Histogram batch_size_h_;
  obs::Registration reg_;  // "stm.commit.*" (see constructor)
};

}  // namespace txf::stm
