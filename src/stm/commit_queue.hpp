// Ordered commit queue with helping — the JVSTM-style lock-free commit
// (paper §III-A: "increasing the global counter and writing-back the values
// ... in a non-blocking, yet atomic, fashion" via a helping mechanism).
//
// Committing read-write transactions enqueue a CommitRequest; commit
// versions are assigned by queue position (predecessor's version + 1).
// Every committer then *helps* process the queue strictly in order:
//
//   validate(head) -> write back (if valid) -> advance global clock -> done
//
// All steps are idempotent, so any number of helpers can execute them
// concurrently and a stalled committer never blocks the system. Validation
// is the classic multi-version read-set check: a request aborts iff some
// box it read has a committed version newer than its snapshot.
//
// Requests are heap-allocated and reclaimed through EBR once the queue head
// has moved past them (stale tail/predecessor pointers may still be
// dereferenced by concurrent enqueuers).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "stm/global_clock.hpp"
#include "stm/versions.hpp"
#include "util/epoch.hpp"

namespace txf::stm {

class VBoxImpl;

/// One pre-allocated permanent node per written box; helpers link exactly
/// this node, which is what makes concurrent write-back idempotent.
struct WriteBackEntry {
  VBoxImpl* box;
  PermanentVersion* node;
};

class CommitRequest {
 public:
  enum class Verdict : std::uint8_t { kUnknown, kValid, kAborted };

  std::vector<WriteBackEntry> writes;
  std::vector<VBoxImpl*> reads;
  Version snapshot = 0;

  Version commit_version() const noexcept {
    return commit_version_.load(std::memory_order_acquire);
  }
  Verdict verdict() const noexcept {
    return verdict_.load(std::memory_order_acquire);
  }
  bool done() const noexcept { return done_.load(std::memory_order_acquire); }

 private:
  friend class CommitQueue;
  std::atomic<Version> commit_version_{0};
  std::atomic<Verdict> verdict_{Verdict::kUnknown};
  std::atomic<bool> done_{false};
  std::atomic<CommitRequest*> next_{nullptr};
};

class CommitQueue {
 public:
  CommitQueue(GlobalClock& clock, ActiveTxnRegistry& registry,
              util::EpochDomain& epochs);
  ~CommitQueue();

  CommitQueue(const CommitQueue&) = delete;
  CommitQueue& operator=(const CommitQueue&) = delete;

  /// Enqueue `req`, help until it is done, and return whether it committed.
  /// On success the write-back has been applied and the global clock covers
  /// the new version; on failure the caller owns retry. The queue takes
  /// ownership of `req` and of the nodes of an aborted request's write set.
  /// Caller must hold an EBR guard on the domain passed at construction.
  bool commit(CommitRequest* req);

  /// Commits that skipped the queue (read-only); for metrics only.
  std::uint64_t committed_count() const noexcept {
    return committed_.load(std::memory_order_relaxed);
  }
  std::uint64_t aborted_count() const noexcept {
    return aborted_.load(std::memory_order_relaxed);
  }

  /// How often (in committed requests) to trim written boxes. Exposed for
  /// tests; default keeps GC overhead negligible.
  void set_trim_period(std::uint32_t period) noexcept { trim_period_ = period; }

 private:
  void enqueue(CommitRequest* req);
  void help_until_done(CommitRequest* target);
  void process(CommitRequest* req);
  static bool validate(const CommitRequest& req);
  static void write_back(CommitRequest& req);
  void maybe_trim(CommitRequest& req);

  GlobalClock& clock_;
  ActiveTxnRegistry& registry_;
  util::EpochDomain& epochs_;

  // head_ = oldest request that may not be done; tail_ = last enqueued.
  util::CacheAligned<std::atomic<CommitRequest*>> head_;
  util::CacheAligned<std::atomic<CommitRequest*>> tail_;

  std::atomic<std::uint64_t> committed_{0};
  std::atomic<std::uint64_t> aborted_{0};
  std::atomic<std::uint64_t> trim_tick_{0};
  std::uint32_t trim_period_ = 32;
};

}  // namespace txf::stm
