// Read-path observability: how often transactional reads complete through
// the VBox home slot (zero pointer chases) versus falling back to the
// permanent version-list walk, and how long those walks are.
//
// Backed by the unified MetricsRegistry (obs/metrics.hpp) since the obs
// layer landed: ReadPathStats is a bundle of registered Counter/Histogram
// metrics ("stm.read.*"), one instance per StmEnv; `metrics::snapshot_json()`
// sums every live instance. Two layers keep the hot path cheap:
//   * ReadPathStats — shared registry metrics, one per StmEnv. Benches and
//     tests read it; nothing on the per-read path writes it directly.
//   * ReadPathCounters — plain per-owner shard (one per Transaction / per
//     SubTxn, both single-threaded by construction), flushed into the env's
//     ReadPathStats at cold points (park, commit cascade, teardown).
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "obs/metrics.hpp"

namespace txf::stm {

struct ReadPathStats {
  /// Walk-length histogram buckets: 0 hops, 1, 2, 3-4, 5-8, ..., 65+.
  static constexpr std::size_t kWalkBuckets = 8;

  obs::Counter home_hits;
  obs::Counter list_walks;
  obs::Counter walk_steps;
  obs::Histogram walk_hist;  // only the first kWalkBuckets are populated

  ReadPathStats() {
    reg_.counter("stm.read.home_hits", home_hits)
        .counter("stm.read.list_walks", list_walks)
        .counter("stm.read.walk_steps", walk_steps)
        .histogram("stm.read.walk_hist", walk_hist);
  }

  /// Bucket index for a walk of `len` next-pointer hops.
  static std::size_t bucket(std::size_t len) noexcept {
    if (len == 0) return 0;
    const std::size_t b = static_cast<std::size_t>(std::bit_width(len - 1)) + 1;
    return b < kWalkBuckets ? b : kWalkBuckets - 1;
  }

  /// Fraction of permanent reads served by the home slot (0 when idle).
  double hit_rate() const noexcept {
    const double h = static_cast<double>(home_hits.load());
    const double w = static_cast<double>(list_walks.load());
    return h + w > 0 ? h / (h + w) : 0.0;
  }

 private:
  obs::Registration reg_;
};

struct ReadPathCounters {
  std::uint64_t home_hits = 0;
  std::uint64_t list_walks = 0;
  std::uint64_t walk_steps = 0;
  std::array<std::uint64_t, ReadPathStats::kWalkBuckets> walk_hist{};

  void note_home() noexcept { ++home_hits; }
  void note_walk(std::size_t len) noexcept {
    ++list_walks;
    walk_steps += len;
    ++walk_hist[ReadPathStats::bucket(len)];
  }

  /// Add everything into the env's registry-backed `stats` and zero this
  /// shard. Cheap when nothing accumulated (one branch), so callers can
  /// flush eagerly.
  void flush_into(ReadPathStats& stats) noexcept {
    if (home_hits == 0 && list_walks == 0) return;
    stats.home_hits.add(home_hits);
    stats.list_walks.add(list_walks);
    stats.walk_steps.add(walk_steps);
    for (std::size_t i = 0; i < walk_hist.size(); ++i) {
      if (walk_hist[i] != 0) stats.walk_hist.add_to_bucket(i, walk_hist[i]);
    }
    *this = ReadPathCounters{};
  }
};

}  // namespace txf::stm
