// Read-path observability: how often transactional reads complete through
// the VBox home slot (zero pointer chases) versus falling back to the
// permanent version-list walk, and how long those walks are.
//
// Two layers keep the hot path cheap:
//   * ReadPathStats — shared, atomic, one per StmEnv. Benches and tests
//     read it; nothing on the per-read path writes it directly.
//   * ReadPathCounters — plain per-owner accumulator (one per Transaction /
//     per SubTxn, both single-threaded by construction), flushed into the
//     env's ReadPathStats at cold points (park, commit cascade, teardown).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace txf::stm {

struct ReadPathStats {
  /// Walk-length histogram buckets: 0 hops, 1, 2, 3-4, 5-8, ..., 65+.
  static constexpr std::size_t kWalkBuckets = 8;

  std::atomic<std::uint64_t> home_hits{0};
  std::atomic<std::uint64_t> list_walks{0};
  std::atomic<std::uint64_t> walk_steps{0};
  std::array<std::atomic<std::uint64_t>, kWalkBuckets> walk_hist{};

  /// Bucket index for a walk of `len` next-pointer hops.
  static std::size_t bucket(std::size_t len) noexcept {
    if (len == 0) return 0;
    const std::size_t b = static_cast<std::size_t>(std::bit_width(len - 1)) + 1;
    return b < kWalkBuckets ? b : kWalkBuckets - 1;
  }

  /// Fraction of permanent reads served by the home slot (0 when idle).
  double hit_rate() const noexcept {
    const double h = static_cast<double>(home_hits.load(std::memory_order_relaxed));
    const double w = static_cast<double>(list_walks.load(std::memory_order_relaxed));
    return h + w > 0 ? h / (h + w) : 0.0;
  }
};

struct ReadPathCounters {
  std::uint64_t home_hits = 0;
  std::uint64_t list_walks = 0;
  std::uint64_t walk_steps = 0;
  std::array<std::uint64_t, ReadPathStats::kWalkBuckets> walk_hist{};

  void note_home() noexcept { ++home_hits; }
  void note_walk(std::size_t len) noexcept {
    ++list_walks;
    walk_steps += len;
    ++walk_hist[ReadPathStats::bucket(len)];
  }

  /// Add everything into `stats` and zero this accumulator. Cheap when
  /// nothing accumulated (one branch), so callers can flush eagerly.
  void flush_into(ReadPathStats& stats) noexcept {
    if (home_hits == 0 && list_walks == 0) return;
    stats.home_hits.fetch_add(home_hits, std::memory_order_relaxed);
    stats.list_walks.fetch_add(list_walks, std::memory_order_relaxed);
    stats.walk_steps.fetch_add(walk_steps, std::memory_order_relaxed);
    for (std::size_t i = 0; i < walk_hist.size(); ++i) {
      if (walk_hist[i] != 0)
        stats.walk_hist[i].fetch_add(walk_hist[i], std::memory_order_relaxed);
    }
    *this = ReadPathCounters{};
  }
};

}  // namespace txf::stm
