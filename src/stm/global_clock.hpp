// Version clocks and the active-transaction registry.
//
// The clock is the JVSTM-style "version number of the latest read-write
// transaction that successfully committed" (paper §III-A) — sharded. The
// commit spine partitions VBoxes into power-of-two *stripes* (hash of box
// address, see stripe_of()) and gives every stripe its own clock component
// (`GlobalClock`, unchanged from the single-spine design) driven by its own
// commit pipeline. A transaction's snapshot is the *vector* of components
// (`SnapshotVec`), and each box's versions are compared only against the
// component of the box's own stripe — versions are stripe-local sequence
// numbers, not globally ordered.
//
// Hybrid-epoch snapshot protocol (StripedClock::snapshot):
//  * Single-stripe commits advance only their own component, with zero
//    cross-stripe coordination. A snapshot that straddles such an advance is
//    still a valid serialization point: the two transactions are
//    independent, and each component read is individually monotone.
//  * Multi-stripe commits must appear in a snapshot all-or-nothing (a
//    snapshot must never observe stripe B's write without stripe A's write
//    from the same transaction). They publish all their component advances
//    inside one epoch-seqlock critical section: epoch goes odd, components
//    advance, epoch goes even. Snapshot readers retry while the epoch is odd
//    or changed across their component reads, so every snapshot is a
//    consistent cut with respect to multi-stripe publication instants.
//  * What is deliberately NOT guaranteed: real-time order between two
//    *independent* single-stripe commits in different stripes. A snapshot
//    may include the later one and miss the earlier one; since no
//    transaction (and no happens-before edge through the STM) connects
//    them, this is serializable — see DESIGN.md "Sharded commit spine".
//
// The registry tracks the snapshot vector of every live transaction so the
// version GC can compute, per stripe, the oldest component still in use and
// trim permanent version lists behind it.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "util/cache_line.hpp"
#include "util/spin_lock.hpp"

namespace txf::stm {

using Version = std::uint64_t;
inline constexpr Version kNoVersion = std::numeric_limits<Version>::max();

/// Hard cap on commit stripes (Config::commit_stripes); keeps SnapshotVec a
/// fixed-size value type and the registry slots statically sized.
inline constexpr unsigned kMaxStripes = 32;

/// Stripe of a VBox: a multiplicative hash of the box address (low 6 bits
/// dropped — boxes are at least a cache line apart in arrays) masked to the
/// power-of-two stripe count. `mask` is stripe_count - 1; callers with one
/// stripe pass 0 and pay nothing.
inline unsigned stripe_of(const void* box, unsigned mask) noexcept {
  if (mask == 0) return 0;
  const auto p = reinterpret_cast<std::uintptr_t>(box);
  const std::uint64_t h =
      static_cast<std::uint64_t>(p >> 6) * 0x9e3779b97f4a7c15ULL;
  return static_cast<unsigned>(h >> 58) & mask;
}

class GlobalClock {
 public:
  /// Snapshot component for a starting transaction.
  Version current() const noexcept {
    return clock_->load(std::memory_order_acquire);
  }

  /// Monotonically raise the clock to at least `v` (helpers may race; the
  /// max wins).
  ///
  /// Group-commit contract (see commit_queue.hpp): the clock advances once
  /// per *batch*, only after every box written by the batch carries its new
  /// version. Snapshots therefore observe a batch atomically — either all of
  /// its versions (snapshot >= batch tail) or none (snapshot <= batch base);
  /// no snapshot can ever fall between two versions assigned by the same
  /// batch, which is what licenses skipping the write-back of same-batch
  /// shadowed nodes.
  void advance_to(Version v) noexcept {
    Version cur = clock_->load(std::memory_order_relaxed);
    while (cur < v && !clock_->compare_exchange_weak(
                          cur, v, std::memory_order_release,
                          std::memory_order_relaxed)) {
    }
  }

 private:
  util::CacheAligned<std::atomic<Version>> clock_{0};
};

/// A transaction's snapshot: one component per stripe. Only the first
/// `stripes()` entries of the env's StripedClock are meaningful; helpers
/// take the count explicitly so the type stays a trivial value.
struct SnapshotVec {
  std::array<Version, kMaxStripes> seq;

  Version operator[](unsigned s) const noexcept { return seq[s]; }
  Version& operator[](unsigned s) noexcept { return seq[s]; }

  bool equals(const SnapshotVec& other, unsigned n) const noexcept {
    for (unsigned s = 0; s < n; ++s) {
      if (seq[s] != other.seq[s]) return false;
    }
    return true;
  }
  Version total(unsigned n) const noexcept {
    Version t = 0;
    for (unsigned s = 0; s < n; ++s) t += seq[s];
    return t;
  }
};

/// The sharded clock: N independent GlobalClock components plus the epoch
/// seqlock that makes multi-stripe publication atomic to snapshot readers.
class StripedClock {
 public:
  explicit StripedClock(unsigned stripes = 1) noexcept
      : n_(stripes == 0 ? 1 : (stripes > kMaxStripes ? kMaxStripes : stripes)) {}

  StripedClock(const StripedClock&) = delete;
  StripedClock& operator=(const StripedClock&) = delete;

  unsigned stripes() const noexcept { return n_; }
  unsigned stripe_mask() const noexcept { return n_ - 1; }

  GlobalClock& component(unsigned s) noexcept { return comps_[s]; }
  const GlobalClock& component(unsigned s) const noexcept { return comps_[s]; }

  /// Component value (the per-stripe sequence). Single-stripe callers use
  /// current(0), which is exactly the old scalar clock.
  Version current(unsigned s = 0) const noexcept {
    return comps_[s].current();
  }

  /// Sum of all components: a cheap monotone progress indicator ("has any
  /// commit happened anywhere since I looked?"), NOT a serialization point.
  Version total() const noexcept {
    Version t = 0;
    for (unsigned s = 0; s < n_; ++s) t += comps_[s].current();
    return t;
  }

  /// Acquire a consistent snapshot cut (see file header for what
  /// "consistent" means here). Retries while a multi-stripe publication is
  /// in flight or completed mid-read.
  void snapshot(SnapshotVec& out) const noexcept {
    if (n_ == 1) {
      out.seq[0] = comps_[0].current();
      return;
    }
    for (;;) {
      const std::uint64_t e0 = epoch_->load(std::memory_order_acquire);
      if (e0 & 1u) continue;  // multi-stripe publish in flight
      for (unsigned s = 0; s < n_; ++s) out.seq[s] = comps_[s].current();
      if (epoch_->load(std::memory_order_acquire) == e0) return;
    }
  }

  /// Publish a multi-stripe commit's component advances atomically with
  /// respect to snapshot(). `apply` runs with the epoch odd and the publish
  /// lock held; it must only call component(s).advance_to(...). The spin
  /// lock serializes concurrent multi-stripe publishers (two disjoint multi
  /// commits would otherwise interleave their epoch flips and break the
  /// odd/even parity the readers rely on).
  template <typename Fn>
  void publish_multi(Fn&& apply) noexcept {
    publish_lock_.lock();
    epoch_->fetch_add(1, std::memory_order_acq_rel);  // odd: publish begins
    apply();
    epoch_->fetch_add(1, std::memory_order_acq_rel);  // even: cut complete
    publish_lock_.unlock();
  }

 private:
  unsigned n_;
  std::array<GlobalClock, kMaxStripes> comps_;
  util::CacheAligned<std::atomic<std::uint64_t>> epoch_{0};
  util::SpinLock publish_lock_;
};

/// Lock-free registry of snapshot vectors held by live transactions. Each
/// thread claims a slot on first use and publishes its current snapshot
/// there, one component per stripe; `min_active(stripe, upper)` is the
/// conservative per-stripe lower bound used by the version GC. The scalar
/// publish/get/min_active overloads operate on component 0 and keep the
/// single-stripe call sites (and tests) unchanged.
class ActiveTxnRegistry {
 public:
  static constexpr std::size_t kMaxSlots = 256;

  class Slot {
   public:
    Slot() noexcept {
      // All components start at kNoVersion ("not reading anything").
      for (auto& v : value_) v.store(kNoVersion, std::memory_order_relaxed);
    }

    void publish(unsigned stripe, Version snapshot) noexcept {
      value_[stripe].store(snapshot, std::memory_order_seq_cst);
    }
    void publish(Version snapshot) noexcept { publish(0, snapshot); }
    void clear(unsigned stripes) noexcept {
      for (unsigned s = 0; s < stripes; ++s) {
        value_[s].store(kNoVersion, std::memory_order_release);
      }
    }
    void clear() noexcept { clear(1); }
    Version get(unsigned stripe = 0) const noexcept {
      return value_[stripe].load(std::memory_order_seq_cst);
    }

   private:
    std::atomic<Version> value_[kMaxStripes];
  };

  static constexpr std::size_t kNoSlot = ~std::size_t{0};

  /// Number of clock stripes whose components get published into slots.
  /// Set once by the owning StmEnv before any transaction runs; release()
  /// uses it to clear every published component.
  void set_stripes(unsigned stripes) noexcept {
    stripes_ = stripes == 0 ? 1 : stripes;
  }
  unsigned stripes() const noexcept { return stripes_; }

  /// Claim a slot, scanning from `hint` (pass a per-thread hash so threads
  /// keep re-claiming "their" slot without contention). Returns the slot
  /// index, or kNoSlot when all slots are taken (more than kMaxSlots
  /// concurrent transactions). An unclaimed transaction's snapshot would be
  /// invisible to min_active(), so overflowing claimers are counted and
  /// min_active() degrades to "trim nothing" until they finish.
  std::size_t claim(std::size_t hint) noexcept {
    for (std::size_t k = 0; k < kMaxSlots; ++k) {
      const std::size_t i = (hint + k) % kMaxSlots;
      bool expected = false;
      if (claimed_[i]->compare_exchange_strong(expected, true,
                                               std::memory_order_acq_rel)) {
        return i;
      }
    }
    unregistered_->fetch_add(1, std::memory_order_seq_cst);
    return kNoSlot;
  }

  /// Release for a claim() that returned kNoSlot.
  void release_unregistered() noexcept {
    unregistered_->fetch_sub(1, std::memory_order_seq_cst);
  }

  Slot& slot(std::size_t index) noexcept { return *slots_[index]; }

  void release(std::size_t index) noexcept {
    if (index == kNoSlot) return;
    slots_[index]->clear(stripes_);
    claimed_[index]->store(false, std::memory_order_release);
  }

  /// Oldest component of `stripe` any live transaction may be using, bounded
  /// by `upper` (pass the stripe's current clock component). Conservative:
  /// empty registry returns `upper`; any slotless transaction in flight
  /// forces 0 (no trimming).
  Version min_active(unsigned stripe, Version upper) const noexcept {
    if (unregistered_->load(std::memory_order_seq_cst) != 0) return 0;
    Version min = upper;
    for (std::size_t i = 0; i < kMaxSlots; ++i) {
      if (!claimed_[i]->load(std::memory_order_acquire)) continue;
      const Version v = slots_[i]->get(stripe);
      if (v < min) min = v;
    }
    return min;
  }
  Version min_active(Version upper) const noexcept {
    return min_active(0, upper);
  }

 private:
  util::CacheAligned<Slot> slots_[kMaxSlots];
  util::CacheAligned<std::atomic<bool>> claimed_[kMaxSlots];
  util::CacheAligned<std::atomic<std::uint64_t>> unregistered_{0};
  unsigned stripes_ = 1;
};

}  // namespace txf::stm
