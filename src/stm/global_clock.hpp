// Global version clock and active-transaction registry.
//
// The clock is the JVSTM-style "version number of the latest read-write
// transaction that successfully committed" (paper §III-A). The registry
// tracks the snapshot of every live transaction so the version GC can
// compute the oldest snapshot still in use and trim permanent version lists
// behind it.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>

#include "util/cache_line.hpp"

namespace txf::stm {

using Version = std::uint64_t;
inline constexpr Version kNoVersion = std::numeric_limits<Version>::max();

class GlobalClock {
 public:
  /// Snapshot for a starting transaction.
  Version current() const noexcept {
    return clock_->load(std::memory_order_acquire);
  }

  /// Monotonically raise the clock to at least `v` (helpers may race; the
  /// max wins).
  ///
  /// Group-commit contract (see commit_queue.hpp): the clock advances once
  /// per *batch*, only after every box written by the batch carries its new
  /// version. Snapshots therefore observe a batch atomically — either all of
  /// its versions (snapshot >= batch tail) or none (snapshot <= batch base);
  /// no snapshot can ever fall between two versions assigned by the same
  /// batch, which is what licenses skipping the write-back of same-batch
  /// shadowed nodes.
  void advance_to(Version v) noexcept {
    Version cur = clock_->load(std::memory_order_relaxed);
    while (cur < v && !clock_->compare_exchange_weak(
                          cur, v, std::memory_order_release,
                          std::memory_order_relaxed)) {
    }
  }

 private:
  util::CacheAligned<std::atomic<Version>> clock_{0};
};

/// Lock-free registry of snapshots held by live transactions. Each thread
/// claims a slot on first use and publishes its current snapshot there;
/// `min_active()` is a conservative lower bound used by the version GC.
class ActiveTxnRegistry {
 public:
  static constexpr std::size_t kMaxSlots = 256;

  class Slot {
   public:
    void publish(Version snapshot) noexcept {
      value_.store(snapshot, std::memory_order_seq_cst);
    }
    void clear() noexcept {
      value_.store(kNoVersion, std::memory_order_release);
    }
    Version get() const noexcept {
      return value_.load(std::memory_order_seq_cst);
    }

   private:
    std::atomic<Version> value_{kNoVersion};
  };

  static constexpr std::size_t kNoSlot = ~std::size_t{0};

  /// Claim a slot, scanning from `hint` (pass a per-thread hash so threads
  /// keep re-claiming "their" slot without contention). Returns the slot
  /// index, or kNoSlot when all slots are taken (more than kMaxSlots
  /// concurrent transactions). An unclaimed transaction's snapshot would be
  /// invisible to min_active(), so overflowing claimers are counted and
  /// min_active() degrades to "trim nothing" until they finish.
  std::size_t claim(std::size_t hint) noexcept {
    for (std::size_t k = 0; k < kMaxSlots; ++k) {
      const std::size_t i = (hint + k) % kMaxSlots;
      bool expected = false;
      if (claimed_[i]->compare_exchange_strong(expected, true,
                                               std::memory_order_acq_rel)) {
        return i;
      }
    }
    unregistered_->fetch_add(1, std::memory_order_seq_cst);
    return kNoSlot;
  }

  /// Release for a claim() that returned kNoSlot.
  void release_unregistered() noexcept {
    unregistered_->fetch_sub(1, std::memory_order_seq_cst);
  }

  Slot& slot(std::size_t index) noexcept { return *slots_[index]; }

  void release(std::size_t index) noexcept {
    if (index == kNoSlot) return;
    slots_[index]->clear();
    claimed_[index]->store(false, std::memory_order_release);
  }

  /// Oldest snapshot any live transaction may be using, bounded by `upper`
  /// (pass the current clock). Conservative: empty registry returns
  /// `upper`; any slotless transaction in flight forces 0 (no trimming).
  Version min_active(Version upper) const noexcept {
    if (unregistered_->load(std::memory_order_seq_cst) != 0) return 0;
    Version min = upper;
    for (std::size_t i = 0; i < kMaxSlots; ++i) {
      if (!claimed_[i]->load(std::memory_order_acquire)) continue;
      const Version v = slots_[i]->get();
      if (v < min) min = v;
    }
    return min;
  }

 private:
  util::CacheAligned<Slot> slots_[kMaxSlots];
  util::CacheAligned<std::atomic<bool>> claimed_[kMaxSlots];
  util::CacheAligned<std::atomic<std::uint64_t>> unregistered_{0};
};

}  // namespace txf::stm
