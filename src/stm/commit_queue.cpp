#include "stm/commit_queue.hpp"

#include <bit>
#include <cassert>
#include <chrono>
#include <cstddef>

#include "obs/trace.hpp"
#include "stm/vbox.hpp"
#include "stm/write_set.hpp"
#include "util/backoff.hpp"
#include "util/failpoint.hpp"

namespace txf::stm {

namespace {

/// Sampled stage timer: cheap thread-local tick decides (1-in-16) whether
/// this execution pays two steady_clock reads; the histogram reports the
/// sampled distribution. The txtrace span is independent (TSC, own gate).
struct SampledTimer {
  std::chrono::steady_clock::time_point t0;
  bool armed = false;

  static bool sample() noexcept {
    thread_local std::uint32_t tick = 0;
    return (++tick & 15u) == 0;
  }
  explicit SampledTimer(bool on) : armed(on) {
    if (armed) t0 = std::chrono::steady_clock::now();
  }
  void finish(obs::Histogram& h) const {
    if (!armed) return;
    h.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Thread-local object pools.
//
// The commit fast path used to pay one heap allocation per request plus one
// per written box; in steady state every one of those objects comes back
// through EBR retirement, so the deleters feed thread-local free lists
// instead of the allocator and acquire_* pops from them. Pools are reached
// through a trivially-destructible raw pointer that the owner nulls at
// thread exit, so a deleter running during another thread's EBR collection
// (or during teardown) safely degrades to plain delete.
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kPoolCap = 64;

struct LocalPools {
  std::vector<CommitRequest*> requests;
  std::vector<PermanentVersion*> nodes;
  std::vector<void*> batches;  // stored untyped; Batch is private to the queue
  void (*delete_batch)(void*) = nullptr;

  ~LocalPools();
};

thread_local LocalPools* tl_pools = nullptr;

thread_local struct PoolOwner {
  LocalPools pools;
  PoolOwner() { tl_pools = &pools; }
  ~PoolOwner() { tl_pools = nullptr; }
} tl_pool_owner;

LocalPools* pools_for_acquire() {
  // Odr-use the owner so first use on this thread constructs the pool.
  return &tl_pool_owner.pools;
}

}  // namespace

// ---------------------------------------------------------------------------
// CommitQueue: construction / destruction
// ---------------------------------------------------------------------------

CommitQueue::CommitQueue(GlobalClock& clock, ActiveTxnRegistry& registry,
                         util::EpochDomain& epochs, unsigned stripe)
    : clock_(clock), registry_(registry), epochs_(epochs), stripe_(stripe) {
  // Sentinel: a done request at version 0 so the boundary (head_) always
  // points at a processed request and the first batch starts after it.
  auto* sentinel = new CommitRequest();
  sentinel->commit_version_.store(0, std::memory_order_relaxed);
  sentinel->verdict_.store(CommitRequest::Verdict::kValid,
                           std::memory_order_relaxed);
  sentinel->done_.store(true, std::memory_order_relaxed);
  head_->store(sentinel, std::memory_order_relaxed);
  tail_->store(sentinel, std::memory_order_relaxed);
  reg_.atomic("stm.commit.committed", committed_)
      .atomic("stm.commit.aborted", aborted_)
      .atomic("stm.commit.prevalidation_sheds", sheds_)
      .atomic("stm.commit.batches", batches_)
      .atomic("stm.commit.batched_requests", batched_requests_)
      .atomic("stm.commit.dwell_ns", dwell_ns_)
      .atomic("stm.commit.dwell_samples", dwell_samples_)
      .histogram("stm.commit.batch_size", batch_size_h_)
      .histogram("stm.commit.stage.prevalidate_ns", prevalidate_ns_)
      .histogram("stm.commit.stage.assign_ns", assign_ns_)
      .histogram("stm.commit.stage.writeback_ns", writeback_ns_)
      .gauge("stm.commit.queue_depth", queue_depth_);
}

CommitQueue::~CommitQueue() {
  // Quiescent at destruction: every consumed request except the current
  // boundary has been retired through EBR already, and the batch slot was
  // cleared by whichever helper completed the last batch.
  assert(batch_->load(std::memory_order_relaxed) == nullptr);
  CommitRequest* h = head_->load(std::memory_order_relaxed);
  while (h != nullptr) {
    CommitRequest* next = h->next_.load(std::memory_order_relaxed);
    for (auto& wb : h->writes) {
      // Nodes of valid requests were linked into boxes (owned there);
      // aborted/unprocessed ones are still ours.
      if (h->verdict() != CommitRequest::Verdict::kValid) delete wb.node;
    }
    delete h;
    h = next;
  }
}

// ---------------------------------------------------------------------------
// Pools
// ---------------------------------------------------------------------------

CommitRequest* CommitQueue::acquire_request() {
  if (LocalPools* p = pools_for_acquire(); p != nullptr && !p->requests.empty()) {
    CommitRequest* r = p->requests.back();
    p->requests.pop_back();
    return r;
  }
  return new CommitRequest();
}

PermanentVersion* CommitQueue::acquire_node(Word value) {
  if (LocalPools* p = pools_for_acquire(); p != nullptr && !p->nodes.empty()) {
    PermanentVersion* n = p->nodes.back();
    p->nodes.pop_back();
    n->value = value;
    return n;
  }
  return new PermanentVersion(value, 0, nullptr);
}

void CommitQueue::recycle_request(void* ptr) {
  auto* r = static_cast<CommitRequest*>(ptr);
  LocalPools* p = tl_pools;
  if (p == nullptr || p->requests.size() >= kPoolCap) {
    delete r;
    return;
  }
  // Keep the vectors' capacity — that is the point of the pool.
  r->writes.clear();
  r->reads.clear();
  r->snapshot = 0;
  r->commit_version_.store(0, std::memory_order_relaxed);
  r->verdict_.store(CommitRequest::Verdict::kUnknown, std::memory_order_relaxed);
  r->done_.store(false, std::memory_order_relaxed);
  r->next_.store(nullptr, std::memory_order_relaxed);
  p->requests.push_back(r);
}

void CommitQueue::recycle_node(void* ptr) {
  auto* n = static_cast<PermanentVersion*>(ptr);
  LocalPools* p = tl_pools;
  if (p == nullptr || p->nodes.size() >= kPoolCap) {
    delete n;
    return;
  }
  n->version.store(0, std::memory_order_relaxed);
  n->next.store(nullptr, std::memory_order_relaxed);
  p->nodes.push_back(n);
}

void VBoxImpl::retire_node(PermanentVersion* node, util::EpochDomain& domain) {
  domain.retire(static_cast<void*>(node), &CommitQueue::recycle_node);
}

void CommitQueue::retire_request(CommitRequest* req,
                                 util::EpochDomain& epochs) {
  epochs.retire(static_cast<void*>(req), &CommitQueue::recycle_request);
}

CommitQueue::Batch* CommitQueue::acquire_batch() {
  if (LocalPools* p = pools_for_acquire(); p != nullptr && !p->batches.empty()) {
    auto* b = static_cast<Batch*>(p->batches.back());
    p->batches.pop_back();
    return b;
  }
  return new Batch();
}

void CommitQueue::recycle_batch(void* ptr) {
  auto* b = static_cast<Batch*>(ptr);
  LocalPools* p = tl_pools;
  if (p == nullptr || p->batches.size() >= kPoolCap) {
    delete b;
    return;
  }
  b->boundary = nullptr;
  b->reqs.clear();
  b->base = 0;
  b->next_partition.store(0, std::memory_order_relaxed);
  // A stale completed flag on a reused batch would make every helper skip
  // stage 2/3 (and the done flags) for a brand-new segment — livelock.
  b->completed.store(false, std::memory_order_relaxed);
  b->stats_done.store(false, std::memory_order_relaxed);
  if (p->delete_batch == nullptr) {
    p->delete_batch = [](void* q) { delete static_cast<Batch*>(q); };
  }
  p->batches.push_back(b);
}

LocalPools::~LocalPools() {
  for (CommitRequest* r : requests) delete r;
  for (PermanentVersion* n : nodes) delete n;
  for (void* b : batches) delete_batch(b);
}

// ---------------------------------------------------------------------------
// Stage 1: pre-validation
// ---------------------------------------------------------------------------

bool CommitQueue::prevalidate(const std::vector<VBoxImpl*>& reads,
                              Version snapshot) {
  // Chaos perturbation only (delay/yield): widens the window between the
  // shed decision and enqueue, so a shed raced by a committing writer and a
  // pass raced into a doomed batch slot both get exercised.
  TXF_FP_POINT("stm.commit.prevalidate");
  obs::trace::Span span(obs::trace::Ev::kCommitPrevalidate,
                        span_arg(reads.size()));
  SampledTimer timer(SampledTimer::sample());
  struct Finish {
    const SampledTimer& t;
    obs::Histogram& h;
    ~Finish() { t.finish(h); }
  } finish{timer, prevalidate_ns_};
  for (const VBoxImpl* box : reads) {
    // Committed versions only grow, so a head past our snapshot dooms the
    // final validation no matter when this request would reach a batch.
    if (box->permanent_head()->version.load(std::memory_order_acquire) >
        snapshot) {
      sheds_.fetch_add(1, std::memory_order_relaxed);
      aborted_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Queue linkage (MS-queue; versions are no longer assigned here — that
// moved into the batch's deterministic pass)
// ---------------------------------------------------------------------------

void CommitQueue::enqueue(CommitRequest* req) {
  // Chaos perturbation only (delay/yield): stretches the window between
  // linking and batching so combiner/helper interleavings get exercised.
  TXF_FP_POINT("stm.commit.enqueue");
  queue_depth_.add(1);
  util::Backoff backoff;
  for (;;) {
    CommitRequest* t = tail_->load(std::memory_order_acquire);
    CommitRequest* n = t->next_.load(std::memory_order_acquire);
    if (n != nullptr) {
      // Tail is lagging: help swing it.
      tail_->compare_exchange_strong(t, n, std::memory_order_acq_rel,
                                     std::memory_order_relaxed);
      continue;
    }
    if (t->next_.compare_exchange_strong(n, req, std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
      tail_->compare_exchange_strong(t, req, std::memory_order_acq_rel,
                                     std::memory_order_relaxed);
      return;
    }
    backoff.pause();
  }
}

// ---------------------------------------------------------------------------
// Stage 2: batch formation + the deterministic pass
// ---------------------------------------------------------------------------

struct CommitQueue::Plan {
  struct Partition {
    VBoxImpl* box;
    PermanentVersion* node;  // the batch's newest version of `box`
  };

  std::vector<Partition> partitions;
  // box -> index into `partitions`; doubles as "written by an earlier valid
  // request of this batch" for the in-batch conflict check.
  WriteSetMap written;
  std::size_t valid_count = 0;

  void reset() {
    partitions.clear();
    written.clear();
    valid_count = 0;
  }
};

CommitQueue::Plan& CommitQueue::local_plan() {
  thread_local Plan plan;
  return plan;
}

void CommitQueue::try_form_batch() {
  CommitRequest* boundary = head_->load(std::memory_order_acquire);
  CommitRequest* first = boundary->next_.load(std::memory_order_acquire);
  if (first == nullptr) return;  // nothing pending
  if (batch_->load(std::memory_order_acquire) != nullptr) return;

  Batch* b = acquire_batch();
  b->boundary = boundary;
  const std::uint32_t limit = batch_limit_.load(std::memory_order_relaxed);
  for (CommitRequest* cur = first;
       cur != nullptr && b->reqs.size() < limit;
       cur = cur->next_.load(std::memory_order_acquire)) {
    b->reqs.push_back(cur);
  }
  // base must be read *after* boundary: a completed batch advances the clock
  // before swinging head_, so if head_ still equals `boundary` when helpers
  // run the stale check, `base` is exactly the clock at publication and
  // versions base+1..base+k are collision-free. If a batch completed in
  // between, head_ moved and this batch is discarded as stale.
  b->base = clock_.current();

  Batch* expected = nullptr;
  if (!batch_->compare_exchange_strong(expected, b, std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
    recycle_batch(b);  // never published; no reader can hold it
    return;
  }
  // Chaos: stall the combiner right after publication — helpers must drive
  // the batch to completion without it.
  TXF_FP_POINT("stm.commit.batch.form");
  help_batch(b);
}

void CommitQueue::build_plan(Batch& b, Plan& plan) {
  plan.reset();
  Version next = b.base;
  for (CommitRequest* req : b.reqs) {
    if (req->verdict_.load(std::memory_order_acquire) ==
        CommitRequest::Verdict::kUnknown) {
      // Validate against (a) the permanent state frozen at batch start and
      // (b) boxes written by earlier *valid* members of this batch (their
      // versions exceed any member's snapshot but are not linked yet).
      // (a) is only deterministic before write-back starts; a helper that
      // reads mutating heads computes a verdict that loses the CAS below,
      // because write-back implies some helper already stored every verdict.
      bool ok = true;
      for (VBoxImpl* box : req->reads) {
        if (box->permanent_head()->version.load(std::memory_order_acquire) >
                req->snapshot ||
            plan.written.find(box) != nullptr) {
          ok = false;
          break;
        }
      }
      auto expected = CommitRequest::Verdict::kUnknown;
      req->verdict_.compare_exchange_strong(
          expected,
          ok ? CommitRequest::Verdict::kValid
             : CommitRequest::Verdict::kAborted,
          std::memory_order_acq_rel, std::memory_order_acquire);
    }
    // Everything below derives from the STORED verdict only, so every
    // helper computes the same versions, partitions, and shadow set.
    if (req->verdict_.load(std::memory_order_acquire) !=
        CommitRequest::Verdict::kValid) {
      continue;
    }
    ++next;  // only valid requests consume a version: the clock is gap-free
    req->commit_version_.store(next, std::memory_order_release);
    ++plan.valid_count;
    for (auto& wb : req->writes) {
      // Racing helpers store the same value (deterministic pass).
      wb.node->version.store(next, std::memory_order_relaxed);
      if (const Word* idx = plan.written.find(wb.box)) {
        auto& part = plan.partitions[static_cast<std::size_t>(*idx)];
        // The older same-batch write is shadowed: it is stamped but never
        // linked — the clock jumps base -> base+k atomically, so no snapshot
        // can fall on an intermediate version (GlobalClock::advance_to).
        // Its owner retires it after commit (it is the node whose `next` was
        // never installed).
        part.node = wb.node;
      } else {
        plan.written.put(wb.box, static_cast<Word>(plan.partitions.size()));
        plan.partitions.push_back(Plan::Partition{wb.box, wb.node});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Stage 3: parallel write-back
// ---------------------------------------------------------------------------

void CommitQueue::link_partition(const Plan& plan, std::size_t part) {
  // Chaos perturbation only: a stalled linker forces the other helpers'
  // idempotent sweep to carry the partition (the helping invariant under
  // test).
  TXF_FP_POINT("stm.commit.writeback");
  const Plan::Partition& p = plan.partitions[part];
  PermanentVersion* node = p.node;
  const Version ver = node->version.load(std::memory_order_relaxed);
  util::Backoff backoff;
  for (;;) {
    auto* head = const_cast<PermanentVersion*>(p.box->permanent_head());
    if (head->version.load(std::memory_order_acquire) >= ver) {
      break;  // another helper already linked it (or a later batch did)
    }
    // All helpers that get here observe the same pre-batch head (older
    // batches are fully linked, newer ones cannot start), so this CAS either
    // installs that unique predecessor or fails because it is already
    // installed — and once the node has been linked and trimmed behind, the
    // slot holds trimmed_tail(), so a stalled helper cannot resurrect a
    // retired segment.
    PermanentVersion* expected_next = nullptr;
    node->next.compare_exchange_strong(expected_next, head,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire);
    if (p.box->cas_permanent_head(head, node)) break;
    backoff.pause();
  }
  // Mirror the batch's newest version of this box into its seqlock home
  // slot (the zero-chase read fast path). Runs on every helper's sweep
  // pass, so the helper that later advances the clock has personally
  // ensured the mirror is current — the fast path's safety invariant is
  // "home published before the clock covers the version" (DESIGN.md).
  p.box->publish_home(ver, node->value);
}

void CommitQueue::record_batch_stats(Batch& b) {
  if (b.stats_done.exchange(true, std::memory_order_relaxed)) return;
  batches_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t n = b.reqs.size();
  batched_requests_.fetch_add(n, std::memory_order_relaxed);
  batch_size_h_.record(n);
  // Bucket i covers sizes (2^(i-1), 2^i]: 1, 2, 3-4, 5-8, ..., 65+.
  std::size_t bucket =
      n <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(n - 1));
  if (bucket >= kBatchSizeBuckets) bucket = kBatchSizeBuckets - 1;
  batch_size_hist_[bucket].fetch_add(1, std::memory_order_relaxed);
}

void CommitQueue::help_batch(Batch* b) {
  // Stale check: head_ moves only when a batch completes, so a batch whose
  // boundary is behind head_ was formed from an already-consumed segment.
  // head_ is monotone, hence staleness is permanent and every helper agrees;
  // whoever wins the slot CAS discards the batch before anyone processes it.
  if (head_->load(std::memory_order_acquire) != b->boundary) {
    Batch* cur = b;
    if (batch_->compare_exchange_strong(cur, nullptr,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
      epochs_.retire(static_cast<void*>(b), &CommitQueue::recycle_batch);
    }
    return;
  }
  // Chaos: delay a helper right after it committed to working on this batch.
  TXF_FP_POINT("stm.commit.batch.handoff");

  if (!b->completed.load(std::memory_order_acquire)) {
    // Stage 2: every helper replays the same deterministic pass; verdict
    // CASes are first-wins and everything else derives from stored verdicts.
    // After this returns, *all* verdicts of the batch are decided (the
    // write-back gate the validation determinism argument relies on).
    Plan& plan = local_plan();
    {
      obs::trace::Span span(obs::trace::Ev::kCommitAssign,
                            span_arg(b->reqs.size()));
      SampledTimer timer(SampledTimer::sample());
      build_plan(*b, plan);
      timer.finish(assign_ns_);
    }

    {
      // Stage 3: claim distinct partitions first (parallel fan-out)...
      obs::trace::Span span(obs::trace::Ev::kCommitWriteback,
                            span_arg(plan.partitions.size()));
      SampledTimer timer(SampledTimer::sample());
      const std::size_t nparts = plan.partitions.size();
      for (;;) {
        const std::uint32_t i =
            b->next_partition.fetch_add(1, std::memory_order_relaxed);
        if (i >= nparts) break;
        link_partition(plan, i);
      }
      // ...then sweep them all (idempotent), so this helper has personally
      // verified every box is linked before it publishes the clock. A
      // claimer that stalled cannot strand its partition.
      for (std::size_t i = 0; i < nparts; ++i) link_partition(plan, i);
      timer.finish(writeback_ns_);
    }

    // Completion — each step idempotent or CAS-once, any helper can run it:
    // (1) publish the whole batch atomically,
    clock_.advance_to(b->base + plan.valid_count);
    // (2) release the committers,
    for (CommitRequest* r : b->reqs)
      r->done_.store(true, std::memory_order_release);
    // (3) let late helpers skip straight to the cleanup below.
    b->completed.store(true, std::memory_order_release);
  }
  // Cleanup — plan-free, so helpers arriving after completion stay cheap:
  // (4) account the batch exactly once,
  record_batch_stats(*b);
  // (5) swing the boundary past the consumed segment. The winner retires the
  // consumed requests (all but the new boundary) back into the pools; the
  // owners retire their own shadowed write-back nodes (see commit()).
  CommitRequest* expected = b->boundary;
  CommitRequest* last = b->reqs.back();
  if (head_->compare_exchange_strong(expected, last,
                                     std::memory_order_acq_rel,
                                     std::memory_order_relaxed)) {
    epochs_.retire(static_cast<void*>(b->boundary),
                   &CommitQueue::recycle_request);
    for (std::size_t i = 0; i + 1 < b->reqs.size(); ++i) {
      epochs_.retire(static_cast<void*>(b->reqs[i]),
                     &CommitQueue::recycle_request);
    }
  }
  // (5) clear the slot so the next batch can form. Exactly one clearer wins
  // and retires the Batch object (a helper stalled before this point finds
  // the batch stale on re-entry and races the same CAS harmlessly).
  Batch* cur = b;
  if (batch_->compare_exchange_strong(cur, nullptr, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
    epochs_.retire(static_cast<void*>(b), &CommitQueue::recycle_batch);
  }
}

void CommitQueue::help_until_done(CommitRequest* target) {
  while (!target->done()) {
    Batch* b = batch_->load(std::memory_order_acquire);
    if (b == frozen_sentinel()) {
      // A multi-stripe committer owns the stripe; nothing to help — its
      // critical section is short, but on an oversubscribed host it may
      // need our core to finish.
      std::this_thread::yield();
    } else if (b != nullptr) {
      help_batch(b);
    } else {
      try_form_batch();
    }
  }
}

// ---------------------------------------------------------------------------
// Stripe freeze (multi-stripe commit protocol; see commit_spine.cpp)
// ---------------------------------------------------------------------------

CommitQueue::Batch* CommitQueue::frozen_sentinel() {
  static Batch sentinel;
  return &sentinel;
}

void CommitQueue::freeze() {
  // Occupying the batch slot with a batch nobody helps IS the freeze:
  // try_form_batch refuses while the slot is non-null, so winning the CAS
  // from nullptr means no batch is in flight and none can form. Competing
  // multi-stripe committers serialize on the same CAS.
  util::Backoff backoff;
  for (;;) {
    Batch* cur = batch_->load(std::memory_order_acquire);
    if (cur == nullptr) {
      if (batch_->compare_exchange_weak(cur, frozen_sentinel(),
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        return;
      }
    } else if (cur == frozen_sentinel()) {
      backoff.pause();  // another multi-stripe committer owns the stripe
    } else {
      help_batch(cur);  // drain the in-flight batch instead of waiting on it
    }
  }
}

void CommitQueue::unfreeze() {
  Batch* cur = frozen_sentinel();
  const bool released = batch_->compare_exchange_strong(
      cur, nullptr, std::memory_order_acq_rel, std::memory_order_relaxed);
  assert(released && "unfreeze without owning the freeze");
  (void)released;
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

void CommitQueue::maybe_trim(CommitRequest& req) {
  const std::uint64_t tick = trim_tick_.fetch_add(1, std::memory_order_relaxed);
  const std::uint32_t period = trim_period_.load(std::memory_order_relaxed);
  if (period == 0 || tick % period != 0) return;
  const Version min = registry_.min_active(stripe_, clock_.current());
  for (auto& wb : req.writes) wb.box->trim(min, epochs_);
}

bool CommitQueue::commit(CommitRequest* req) {
  // Dwell is sampled 1-in-64: two clock reads per commit are measurable on
  // the single-thread fast path, and the mean is what the breakdown reports.
  thread_local std::uint32_t dwell_tick = 0;
  const bool timed = (++dwell_tick & 63u) == 0;
  const auto t0 = timed ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{};
  enqueue(req);
  help_until_done(req);
  queue_depth_.add(-1);
  if (timed) {
    dwell_ns_.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()),
        std::memory_order_relaxed);
    dwell_samples_.fetch_add(1, std::memory_order_relaxed);
  }

  const bool ok = req->verdict() == CommitRequest::Verdict::kValid;
  if (ok) {
    committed_.fetch_add(1, std::memory_order_relaxed);
    // Retire this request's *shadowed* nodes: versions overwritten by a
    // newer same-batch write of the same box. A shadowed node is exactly one
    // whose `next` was never installed (linking CASes it from nullptr before
    // the batch's done flags; trim only ever reaches linked nodes), so the
    // check is race-free here, after done.
    for (auto& wb : req->writes) {
      if (wb.node->next.load(std::memory_order_acquire) == nullptr)
        VBoxImpl::retire_node(wb.node, epochs_);
    }
    maybe_trim(*req);
  } else {
    aborted_.fetch_add(1, std::memory_order_relaxed);
    // The write-back nodes were never linked; recycle them. (Through EBR,
    // because a lagging helper's deterministic pass may still read the
    // request; the verdict it sees is kAborted, so it skips these nodes,
    // but the vector itself must stay intact until the grace period — hence
    // clear() only after retiring, and the request itself is EBR-retired by
    // the head-swing winner.)
    for (auto& wb : req->writes) VBoxImpl::retire_node(wb.node, epochs_);
    req->writes.clear();
  }
  return ok;
}

}  // namespace txf::stm
