#include "stm/commit_queue.hpp"

#include <cassert>

#include "stm/vbox.hpp"
#include "util/backoff.hpp"
#include "util/failpoint.hpp"

namespace txf::stm {

CommitQueue::CommitQueue(GlobalClock& clock, ActiveTxnRegistry& registry,
                         util::EpochDomain& epochs)
    : clock_(clock), registry_(registry), epochs_(epochs) {
  // Sentinel: a done request at version 0 so the first real request gets
  // version 1 and help_until_done always has a head to look at.
  auto* sentinel = new CommitRequest();
  sentinel->commit_version_.store(0, std::memory_order_relaxed);
  sentinel->verdict_.store(CommitRequest::Verdict::kValid,
                           std::memory_order_relaxed);
  sentinel->done_.store(true, std::memory_order_relaxed);
  head_->store(sentinel, std::memory_order_relaxed);
  tail_->store(sentinel, std::memory_order_relaxed);
}

CommitQueue::~CommitQueue() {
  // Quiescent at destruction: every request except the final sentinel-like
  // head has been retired through EBR already.
  CommitRequest* h = head_->load(std::memory_order_relaxed);
  while (h != nullptr) {
    CommitRequest* next = h->next_.load(std::memory_order_relaxed);
    for (auto& wb : h->writes) {
      // Nodes of valid requests were linked into boxes (owned there);
      // aborted/unprocessed ones are still ours.
      if (h->verdict() != CommitRequest::Verdict::kValid) delete wb.node;
    }
    delete h;
    h = next;
  }
}

void CommitQueue::enqueue(CommitRequest* req) {
  // Chaos perturbation only (delay/yield): stretches the window between
  // linking and processing so helper interleavings get exercised.
  TXF_FP_POINT("stm.commit.enqueue");
  util::Backoff backoff;
  for (;;) {
    CommitRequest* t = tail_->load(std::memory_order_acquire);
    CommitRequest* n = t->next_.load(std::memory_order_acquire);
    if (n != nullptr) {
      // Tail is lagging: help swing it.
      tail_->compare_exchange_strong(t, n, std::memory_order_acq_rel,
                                     std::memory_order_relaxed);
      continue;
    }
    // Tentatively take the slot after t: version = t's version + 1. Both
    // the version and the write-back node stamps must be published before
    // the link succeeds — helpers may start processing the request the
    // moment it becomes reachable.
    const Version ver = t->commit_version() + 1;
    req->commit_version_.store(ver, std::memory_order_release);
    for (auto& wb : req->writes) wb.node->version = ver;
    if (t->next_.compare_exchange_strong(n, req, std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
      tail_->compare_exchange_strong(t, req, std::memory_order_acq_rel,
                                     std::memory_order_relaxed);
      return;
    }
    backoff.pause();
  }
}

bool CommitQueue::validate(const CommitRequest& req) {
  for (const VBoxImpl* box : req.reads) {
    const PermanentVersion* head = box->permanent_head();
    if (head->version > req.snapshot) return false;
  }
  return true;
}

void CommitQueue::write_back(CommitRequest& req) {
  // Chaos perturbation only: a stalled writer-backer forces other commits
  // to help this request through (the helped-queue invariant under test).
  TXF_FP_POINT("stm.commit.writeback");
  const Version ver = req.commit_version();
  for (auto& wb : req.writes) {
    util::Backoff backoff;
    for (;;) {
      auto* head = const_cast<PermanentVersion*>(wb.box->permanent_head());
      if (head->version >= ver) break;  // another helper already linked it
      // All helpers compute the same `head` here (older requests are done
      // and nothing newer can write back yet), so racing stores of `next`
      // write the same value.
      wb.node->next.store(head, std::memory_order_release);
      if (wb.box->cas_permanent_head(head, wb.node)) break;
      backoff.pause();
    }
  }
}

void CommitQueue::maybe_trim(CommitRequest& req) {
  const std::uint64_t tick =
      trim_tick_.fetch_add(1, std::memory_order_relaxed);
  if (trim_period_ == 0 || tick % trim_period_ != 0) return;
  const Version min = registry_.min_active(clock_.current());
  for (auto& wb : req.writes) wb.box->trim(min, epochs_);
}

void CommitQueue::process(CommitRequest* req) {
  // 1. Decide the verdict (idempotent: first CAS wins, both helpers compute
  //    the same answer because the committed state is frozen while this
  //    request is at the head).
  if (req->verdict() == CommitRequest::Verdict::kUnknown) {
    const bool ok = validate(*req);
    CommitRequest::Verdict expected = CommitRequest::Verdict::kUnknown;
    req->verdict_.compare_exchange_strong(
        expected,
        ok ? CommitRequest::Verdict::kValid : CommitRequest::Verdict::kAborted,
        std::memory_order_acq_rel, std::memory_order_acquire);
  }
  // 2. Apply.
  if (req->verdict() == CommitRequest::Verdict::kValid) write_back(*req);
  // 3. Cover the version (aborted requests leave a harmless gap).
  clock_.advance_to(req->commit_version());
  // 4. Publish completion.
  req->done_.store(true, std::memory_order_release);
}

void CommitQueue::help_until_done(CommitRequest* target) {
  while (!target->done()) {
    CommitRequest* h = head_->load(std::memory_order_acquire);
    if (h->done()) {
      CommitRequest* n = h->next_.load(std::memory_order_acquire);
      if (n == nullptr) continue;  // target not linked yet? (cannot happen
                                   // for our own target, but be safe)
      if (head_->compare_exchange_strong(h, n, std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
        // h is now unreachable from head_; stale enqueuer references are
        // protected by the caller-held EBR guard.
        epochs_.retire(h);
      }
      continue;
    }
    process(h);
  }
}

bool CommitQueue::commit(CommitRequest* req) {
  enqueue(req);
  help_until_done(req);
  const bool ok = req->verdict() == CommitRequest::Verdict::kValid;
  if (ok) {
    committed_.fetch_add(1, std::memory_order_relaxed);
    maybe_trim(*req);
  } else {
    aborted_.fetch_add(1, std::memory_order_relaxed);
    // The write-back nodes were never linked; free them with the request.
    // (Retire, because helpers may still be reading them.)
    for (auto& wb : req->writes) epochs_.retire(wb.node);
    req->writes.clear();
  }
  // The request itself is retired when the head moves past it (see
  // help_until_done); nothing more to do here.
  return ok;
}

}  // namespace txf::stm
