// Committed ("permanent") version list nodes (paper Fig. 3b, left list).
//
// Each VBox keeps a singly linked list of committed versions in descending
// version order. The head is CASed by commit write-back; readers traverse to
// the newest version not exceeding their snapshot. Old nodes are retired via
// EBR once no live snapshot can reach them. `next` is atomic because helped
// commits may store it concurrently (always with the same value) and the
// trimmer cuts it while readers traverse.
#pragma once

#include <atomic>
#include <cstdint>

#include "stm/global_clock.hpp"
#include "util/failpoint.hpp"

namespace txf::stm {

/// Payload word. The concurrency layer is word-based: VBox<T> packs small
/// trivially-copyable T into this, larger T go through pointers to immutable
/// records (DESIGN.md §6).
using Word = std::uint64_t;

struct PermanentVersion {
  Word value;
  Version version;
  std::atomic<PermanentVersion*> next;  // older version, or nullptr

  PermanentVersion(Word v, Version ver, PermanentVersion* nxt) noexcept
      : value(v), version(ver), next(nxt) {}
};

/// Newest version with version <= snapshot, or nullptr if the list has no
/// version old enough (boxes are seeded with a version-0 value, so nullptr
/// means "snapshot predates the box" and is a programming error).
inline const PermanentVersion* find_visible(const PermanentVersion* head,
                                            Version snapshot) noexcept {
  // Chaos perturbation only (delay/yield): stretches version-list traversal
  // against concurrent write-back and trimming.
  TXF_FP_POINT("stm.read.version");
  while (head != nullptr && head->version > snapshot)
    head = head->next.load(std::memory_order_acquire);
  return head;
}

}  // namespace txf::stm
