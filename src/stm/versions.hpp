// Committed ("permanent") version list nodes (paper Fig. 3b, left list).
//
// Each VBox keeps a singly linked list of committed versions in descending
// version order. The head is CASed by commit write-back; readers traverse to
// the newest version not exceeding their snapshot. Old nodes are retired via
// EBR once no live snapshot can reach them. `next` is atomic because helped
// commits may store it concurrently (always with the same value) and the
// trimmer cuts it while readers traverse. `version` is atomic because the
// group-commit pipeline stamps it from any helper replaying the batch's
// deterministic version assignment (all stores carry the same value); the
// implicit conversion keeps `node->version` reads working everywhere.
#pragma once

#include <atomic>
#include <cstdint>

#include "stm/global_clock.hpp"
#include "util/failpoint.hpp"

namespace txf::stm {

/// Payload word. The concurrency layer is word-based: VBox<T> packs small
/// trivially-copyable T into this, larger T go through pointers to immutable
/// records (DESIGN.md §6).
using Word = std::uint64_t;

struct PermanentVersion {
  Word value;
  std::atomic<Version> version;
  std::atomic<PermanentVersion*> next;  // older version, or nullptr

  PermanentVersion(Word v, Version ver, PermanentVersion* nxt) noexcept
      : value(v), version(ver), next(nxt) {}
};

/// Distinguished end-of-list marker installed by VBoxImpl::trim in place of
/// nullptr when it cuts a list. Write-back sets a fresh node's `next` with a
/// single CAS-from-nullptr, so a helper that stalled across an entire
/// batch + trim cycle can no longer resurrect the retired segment: by the
/// time it wakes, `next` is either the linked predecessor or this sentinel,
/// and its CAS fails. The sentinel's version is kNoVersion and its `next` is
/// nullptr, so every traversal (find_visible, trim's keep-walk) steps past
/// it to nullptr without special-casing; only code that frees nodes must
/// stop at it.
inline PermanentVersion* trimmed_tail() noexcept {
  static PermanentVersion tail{0, kNoVersion, nullptr};
  return &tail;
}

/// Newest version with version <= snapshot, or nullptr if the list has no
/// version old enough (boxes are seeded with a version-0 value, so nullptr
/// means the snapshot lost a race with trimming — readers abort-and-retry
/// with a fresh snapshot rather than crash; see Transaction::read).
/// `steps`, when non-null, receives the number of next-pointer hops taken
/// (0 = the head itself was visible) for the read-path walk histogram.
inline const PermanentVersion* find_visible(const PermanentVersion* head,
                                            Version snapshot,
                                            std::size_t* steps = nullptr) noexcept {
  // Chaos perturbation only (delay/yield): stretches version-list traversal
  // against concurrent write-back and trimming.
  TXF_FP_POINT("stm.read.version");
  std::size_t hops = 0;
  while (head != nullptr &&
         head->version.load(std::memory_order_acquire) > snapshot) {
    head = head->next.load(std::memory_order_acquire);
    ++hops;
  }
  if (steps != nullptr) *steps = hops;
  return head;
}

}  // namespace txf::stm
