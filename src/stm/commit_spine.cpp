#include "stm/commit_spine.hpp"

#include <bit>
#include <cassert>

#include "obs/trace.hpp"
#include "stm/vbox.hpp"
#include "util/backoff.hpp"
#include "util/failpoint.hpp"

namespace txf::stm {

namespace {

/// Stripe id stamped into trace-span args by the multi-stripe path (real
/// stripes are < kMaxStripes; 0xff marks "spans multiple stripes").
constexpr std::uint32_t kMultiStripeTag = 0xffu;

/// Link one multi-stripe write-back node. Same protocol as the batch
/// pipeline's link_partition: install the unique predecessor via
/// CAS-from-nullptr (trim's trimmed_tail() sentinel keeps a stalled caller
/// from resurrecting a retired segment), then swing the head. The caller
/// owns the stripe frozen, so the loop resolves on the first iteration
/// unless a trim raced just before the freeze.
void link_node(VBoxImpl* box, PermanentVersion* node) {
  const Version ver = node->version.load(std::memory_order_relaxed);
  util::Backoff backoff;
  for (;;) {
    auto* head = const_cast<PermanentVersion*>(box->permanent_head());
    if (head->version.load(std::memory_order_acquire) >= ver) break;
    PermanentVersion* expected_next = nullptr;
    node->next.compare_exchange_strong(expected_next, head,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire);
    if (box->cas_permanent_head(head, node)) break;
    backoff.pause();
  }
}

}  // namespace

CommitSpine::CommitSpine(StripedClock& clock, ActiveTxnRegistry& registry,
                         util::EpochDomain& epochs)
    : clock_(clock), epochs_(epochs), n_(clock.stripes()) {
  queues_.reserve(n_);
  for (unsigned s = 0; s < n_; ++s) {
    queues_.push_back(std::make_unique<CommitQueue>(clock.component(s),
                                                    registry, epochs, s));
  }
  reg_.atomic("stm.shard.multi_commits", multi_commits_)
      .atomic("stm.shard.multi_aborts", multi_aborts_)
      .histogram("stm.shard.multi_footprint", multi_footprint_);
}

bool CommitSpine::prevalidate(const std::vector<VBoxImpl*>& reads,
                              const SnapshotVec& snap) {
  if (n_ == 1) return queues_[0]->prevalidate(reads, snap.seq[0]);
  // Chaos perturbation only, same site as the per-stripe stage 1 (the shed
  // decision window under test is identical).
  TXF_FP_POINT("stm.commit.prevalidate");
  obs::trace::Span span(
      obs::trace::Ev::kCommitPrevalidate,
      (kMultiStripeTag << 24) |
          static_cast<std::uint32_t>(
              reads.size() > 0xffffffu ? 0xffffffu : reads.size()));
  for (VBoxImpl* box : reads) {
    const unsigned s = stripe_of(box, n_ - 1);
    if (box->permanent_head()->version.load(std::memory_order_acquire) >
        snap.seq[s]) {
      queues_[s]->note_shed();
      return false;
    }
  }
  return true;
}

unsigned CommitSpine::footprint_width(
    const std::vector<VBoxImpl*>& reads,
    const std::vector<VBoxImpl*>& writes) const noexcept {
  if (n_ == 1) return 1;
  std::uint32_t mask = 0;
  for (const VBoxImpl* box : writes) mask |= 1u << stripe_of(box, n_ - 1);
  for (const VBoxImpl* box : reads) mask |= 1u << stripe_of(box, n_ - 1);
  const int w = std::popcount(mask);
  return w > 0 ? static_cast<unsigned>(w) : 1u;
}

bool CommitSpine::commit(CommitRequest* req) {
  assert(n_ == 1 &&
         "scalar commit() is only valid on a single-stripe spine; use "
         "commit(req, SnapshotVec)");
  return queues_[0]->commit(req);
}

bool CommitSpine::commit(CommitRequest* req, const SnapshotVec& snap) {
  if (n_ == 1) {
    req->snapshot = snap.seq[0];
    return queues_[0]->commit(req);
  }
  std::uint32_t mask = 0;
  for (const auto& wb : req->writes) {
    mask |= 1u << stripe_of(wb.box, n_ - 1);
  }
  // Footprint = reads ∪ writes (see file header: write-skew).
  for (const VBoxImpl* box : req->reads) {
    mask |= 1u << stripe_of(box, n_ - 1);
  }
  if (std::popcount(mask) == 1) {
    const auto s = static_cast<unsigned>(std::countr_zero(mask));
    req->snapshot = snap.seq[s];
    return queues_[s]->commit(req);
  }
  return multi_commit(req, snap, mask);
}

bool CommitSpine::multi_commit(CommitRequest* req, const SnapshotVec& snap,
                               std::uint32_t mask) {
  obs::trace::Span span(
      obs::trace::Ev::kCommitAssign,
      (kMultiStripeTag << 24) |
          static_cast<std::uint32_t>(std::popcount(mask)));

  // --- phase one: reserve -------------------------------------------------
  // Freeze the whole footprint in ascending stripe order (total order =>
  // no deadlock between overlapping multi-stripe committers). After the
  // loop this thread exclusively owns every footprint stripe's permanent
  // heads and clock components.
  for (unsigned s = 0; s < n_; ++s) {
    if (mask >> s & 1u) queues_[s]->freeze();
  }

  // Chaos: an injected failure here exercises the abort path while the
  // footprint is frozen but before anything irreversible happened.
  bool ok = !TXF_FP_FIRES("stm.commit.multi.reserve");

  if (ok) {
    // Validate reads against the frozen heads, each box against its own
    // stripe's snapshot component.
    for (const VBoxImpl* box : req->reads) {
      const unsigned s = stripe_of(box, n_ - 1);
      if (box->permanent_head()->version.load(std::memory_order_acquire) >
          snap.seq[s]) {
        ok = false;
        break;
      }
    }
  }

  std::uint32_t wmask = 0;
  if (ok) {
    // Reserve one sequence number per write stripe by READING component+1
    // under the freeze (not fetch_add: an aborted attempt must consume
    // nothing, so each component stays equal to its committed-writer count).
    std::array<Version, kMaxStripes> ver;
    for (const auto& wb : req->writes) {
      const unsigned s = stripe_of(wb.box, n_ - 1);
      if (!(wmask >> s & 1u)) {
        wmask |= 1u << s;
        ver[s] = clock_.current(s) + 1;
      }
    }

    // --- phase two: publish ----------------------------------------------
    // Stamp and link every write, mirroring each into its home slot BEFORE
    // any clock component covers the new version (the home-slot fast-path
    // invariant, vbox.hpp). The write set is duplicate-free (WriteSetMap),
    // so no shadowing pass is needed.
    for (const auto& wb : req->writes) {
      const unsigned s = stripe_of(wb.box, n_ - 1);
      wb.node->version.store(ver[s], std::memory_order_relaxed);
      link_node(wb.box, wb.node);
      wb.box->publish_home(ver[s], wb.node->value);
    }
    // Chaos perturbation only: the transaction is past its point of no
    // return (nodes linked); delay/yield here stretches the window in which
    // readers must NOT yet observe any component advance.
    TXF_FP_POINT("stm.commit.multi.publish");
    // Advance all write-stripe components inside one epoch section:
    // snapshot readers see all of them or none (StripedClock::snapshot).
    clock_.publish_multi([&] {
      for (unsigned s = 0; s < n_; ++s) {
        if (wmask >> s & 1u) clock_.component(s).advance_to(ver[s]);
      }
    });
    for (unsigned s = 0; s < n_; ++s) {
      if (wmask >> s & 1u) {
        multi_committed_[s].fetch_add(1, std::memory_order_relaxed);
      }
    }
    multi_commits_.fetch_add(1, std::memory_order_relaxed);
    multi_footprint_.record(static_cast<std::uint64_t>(std::popcount(mask)));
  }

  for (unsigned s = 0; s < n_; ++s) {
    if (mask >> s & 1u) queues_[s]->unfreeze();
  }

  req->verdict_.store(ok ? CommitRequest::Verdict::kValid
                         : CommitRequest::Verdict::kAborted,
                      std::memory_order_release);
  if (!ok) {
    multi_aborts_.fetch_add(1, std::memory_order_relaxed);
    // Nothing was linked; recycle the nodes, then the request itself.
    for (const auto& wb : req->writes) {
      VBoxImpl::retire_node(wb.node, epochs_);
    }
    req->writes.clear();
  }
  // Unlike the queue path (head-swing winner retires consumed requests),
  // the synchronous path owns its request end-to-end.
  CommitQueue::retire_request(req, epochs_);
  return ok;
}

}  // namespace txf::stm
