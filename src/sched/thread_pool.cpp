#include "sched/thread_pool.hpp"

#include <cassert>

#include "obs/trace.hpp"
#include "util/failpoint.hpp"

namespace txf::sched {

thread_local ThreadPool::Worker* ThreadPool::current_worker_ = nullptr;
thread_local ThreadPool* ThreadPool::current_pool_ = nullptr;

ThreadPool::ThreadPool(std::size_t worker_count) {
  if (worker_count == 0) {
    worker_count = std::thread::hardware_concurrency();
    if (worker_count == 0) worker_count = 2;
  }
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    auto w = std::make_unique<Worker>();
    w->index = i;
    w->rng = util::Xoshiro256(0x9e3779b9u * (i + 1));
    workers_.push_back(std::move(w));
  }
  reg_.counter("sched.steals", steals_)
      .counter("sched.parks", parks_)
      .atomic("sched.executed", executed_)
      .gauge("sched.workers", workers_gauge_)
      .gauge("sched.queue_depth", queue_depth_);
  workers_gauge_.set(static_cast<std::int64_t>(worker_count));
  threads_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    threads_.emplace_back([this, i] { worker_loop(*workers_[i]); });
  }
}

ThreadPool::~ThreadPool() {
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    work_epoch_.fetch_add(1, std::memory_order_release);
  }
  sleep_cv_.notify_all();
  for (auto& t : threads_) t.join();
  // Drain anything left unexecuted (tasks own their state; dropping them on
  // the floor would leak, so destroy them explicitly).
  for (auto& w : workers_) {
    while (Task* t = w->deque.pop()) delete t;
  }
  std::lock_guard<std::mutex> lock(inject_mutex_);
  for (Task* t : injected_) delete t;
  injected_.clear();
}

void ThreadPool::submit(Task task) {
  TXF_FP_POINT("sched.submit");
  auto* heap_task = new Task(std::move(task));
  queue_depth_.add(1);
  if (current_pool_ == this && current_worker_ != nullptr) {
    current_worker_->deque.push(heap_task);
  } else {
    std::lock_guard<std::mutex> lock(inject_mutex_);
    injected_.push_back(heap_task);
  }
  notify_one();
}

void ThreadPool::notify_one() {
  // Publish new work first; a worker deciding to park re-checks the epoch
  // under the mutex after registering as a sleeper, so the order
  // (bump, then check sleepers) cannot lose a wakeup. Skipping the mutex
  // when nobody sleeps keeps the hot submit path lock-free.
  work_epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_seq_cst) == 0) return;
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  sleep_cv_.notify_one();
}

Task* ThreadPool::pop_injected() {
  std::lock_guard<std::mutex> lock(inject_mutex_);
  if (injected_.empty()) return nullptr;
  Task* t = injected_.front();
  injected_.pop_front();
  return t;
}

Task* ThreadPool::steal_from_others(Worker* self) {
  // Chaos perturbation only (delay/yield): shifts which worker wins a steal
  // race without changing the protocol.
  TXF_FP_POINT("sched.steal");
  const std::size_t n = workers_.size();
  if (n <= 1 && self != nullptr) return nullptr;
  // Start at a random victim to avoid stampedes (CP: minimize contention).
  std::size_t start;
  if (self != nullptr) {
    start = static_cast<std::size_t>(self->rng.next_bounded(n));
  } else {
    static std::atomic<std::size_t> rr{0};
    start = rr.fetch_add(1, std::memory_order_relaxed) % n;
  }
  for (std::size_t k = 0; k < n; ++k) {
    Worker* victim = workers_[(start + k) % n].get();
    if (victim == self) continue;
    if (Task* t = victim->deque.steal()) {
      steals_.add();
      obs::trace::instant(obs::trace::Ev::kSchedSteal,
                          static_cast<std::uint32_t>(victim->index));
      return t;
    }
  }
  return nullptr;
}

Task* ThreadPool::find_task(Worker* self) {
  if (self != nullptr) {
    if (Task* t = self->deque.pop()) return t;
  }
  if (Task* t = pop_injected()) return t;
  return steal_from_others(self);
}

bool ThreadPool::try_run_one() {
  Task* t = find_task(current_pool_ == this ? current_worker_ : nullptr);
  if (t == nullptr) return false;
  queue_depth_.add(-1);
  {
    // Run with worker identity if we have one; helpers keep their own.
    obs::trace::Span run_span(obs::trace::Ev::kSchedRun);
    (*t)();
  }
  delete t;
  executed_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ThreadPool::worker_loop(Worker& self) {
  current_worker_ = &self;
  current_pool_ = this;
  while (!stopping_.load(std::memory_order_acquire)) {
    // The park baseline must be read BEFORE the work search: a submit that
    // lands between the two is then guaranteed to either be found by
    // find_task (push precedes the epoch bump) or flip the wait predicate
    // (its bump lands after `seen`). Sampling the epoch after an empty
    // search instead would let that submit's bump be absorbed into `seen`
    // while its task went unseen — and with its sleepers_ check racing
    // ahead of our registration, the worker would sleep on a non-empty
    // queue.
    const std::uint64_t seen = work_epoch_.load(std::memory_order_seq_cst);
    Task* t = find_task(&self);
    if (t != nullptr) {
      queue_depth_.add(-1);
      {
        obs::trace::Span run_span(obs::trace::Ev::kSchedRun);
        (*t)();
      }
      delete t;
      executed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Nothing runnable: park until the work epoch changes (CP.42 — never
    // wait without a condition).
    parks_.add();
    obs::trace::instant(obs::trace::Ev::kSchedPark,
                        static_cast<std::uint32_t>(self.index));
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    sleep_cv_.wait(lock, [&] {
      return stopping_.load(std::memory_order_acquire) ||
             work_epoch_.load(std::memory_order_seq_cst) != seen;
    });
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
  }
  current_worker_ = nullptr;
  current_pool_ = nullptr;
}

}  // namespace txf::sched
