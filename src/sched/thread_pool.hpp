// Fixed-size work-stealing thread pool.
//
// Each worker owns a Chase-Lev deque; external submissions go through a
// shared injection queue. Threads blocked inside the TM runtime (e.g. a
// continuation waiting on a future's result) can call `try_run_one()` to
// help drain pending work — essential on machines with few cores, where a
// naive blocking wait would starve the future it is waiting for
// (DESIGN.md §6, scheduler knob).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "sched/task.hpp"
#include "sched/ws_deque.hpp"
#include "util/cache_line.hpp"
#include "util/xoshiro.hpp"

namespace txf::sched {

class ThreadPool {
 public:
  /// Spawns `worker_count` threads (defaults to hardware concurrency).
  explicit ThreadPool(std::size_t worker_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedule a task. Safe from any thread, including workers (a worker
  /// pushes to its own deque, giving LIFO locality for nested futures).
  void submit(Task task);

  /// Execute one pending task on the calling thread if any is available.
  /// Returns false when nothing was runnable right now.
  bool try_run_one();

  std::size_t worker_count() const noexcept { return workers_.size(); }

  /// True if called from one of this pool's worker threads.
  bool on_worker_thread() const noexcept { return current_worker_ != nullptr; }

  /// Tasks executed so far (for tests / metrics).
  std::uint64_t executed_count() const noexcept {
    return executed_.load(std::memory_order_relaxed);
  }
  /// Successful steals / park episodes (also "sched.steals"/"sched.parks"
  /// in the MetricsRegistry).
  std::uint64_t steal_count() const noexcept { return steals_.load(); }
  std::uint64_t park_count() const noexcept { return parks_.load(); }

  /// Load signals consumed by the adaptive future scheduler
  /// (core/adaptive.hpp). Both are instantaneous relaxed reads — racy by
  /// nature, which is fine for a scheduling heuristic.
  ///
  /// Tasks submitted but not yet picked up by any thread (also the
  /// "sched.queue_depth" gauge). May transiently read negative during a
  /// submit/execute race; clamped to 0.
  std::int64_t queue_depth() const noexcept {
    const std::int64_t d = queue_depth_.load();
    return d < 0 ? 0 : d;
  }
  /// Workers currently parked waiting for work.
  std::size_t parked_workers() const noexcept {
    return sleepers_.load(std::memory_order_relaxed);
  }

  /// Consolidated load signal for scheduling heuristics: whole
  /// worker-multiples of backlog, capped at `cap`. 0 means the pool keeps
  /// up (spawning is cheap); k means every worker already has ~k queued
  /// tasks ahead of any new submission. Same racy-relaxed contract as
  /// queue_depth().
  std::uint64_t backlog_factor(std::uint64_t cap = 4) const noexcept {
    const std::int64_t d = queue_depth();
    const std::size_t w = worker_count();
    if (d <= 0 || w == 0) return 0;
    std::uint64_t f =
        static_cast<std::uint64_t>(d) / static_cast<std::uint64_t>(w);
    if (f > cap) f = cap;
    return f;
  }

 private:
  struct Worker {
    WsDeque<Task*> deque;
    util::Xoshiro256 rng;
    std::size_t index = 0;
  };

  void worker_loop(Worker& self);
  Task* find_task(Worker* self);
  Task* steal_from_others(Worker* self);
  Task* pop_injected();
  void notify_one();

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex inject_mutex_;
  std::deque<Task*> injected_;

  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<std::uint64_t> work_epoch_{0};
  std::atomic<std::uint32_t> sleepers_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> executed_{0};
  obs::Counter steals_;
  obs::Counter parks_;
  obs::Gauge workers_gauge_;
  obs::Gauge queue_depth_;  // submitted minus picked-up (see queue_depth())
  obs::Registration reg_;  // "sched.*" (see constructor)

  static thread_local Worker* current_worker_;
  static thread_local ThreadPool* current_pool_;
};

}  // namespace txf::sched
