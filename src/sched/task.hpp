// Move-only callable wrapper (std::move_only_function is C++23; we target
// C++20). Futures capture promises and other move-only state, so
// std::function does not fit.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace txf::sched {

/// Type-erased `void()` callable with unique ownership.
class Task {
 public:
  Task() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Task> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Task(F&& f)  // NOLINT(google-explicit-constructor): mirrors std::function
      : impl_(std::make_unique<Model<std::decay_t<F>>>(std::forward<F>(f))) {}

  Task(Task&&) noexcept = default;
  Task& operator=(Task&&) noexcept = default;
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  explicit operator bool() const noexcept { return impl_ != nullptr; }

  void operator()() {
    impl_->invoke();
  }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual void invoke() = 0;
  };

  template <typename F>
  struct Model final : Concept {
    explicit Model(F&& f) : fn(std::move(f)) {}
    explicit Model(const F& f) : fn(f) {}
    void invoke() override { fn(); }
    F fn;
  };

  std::unique_ptr<Concept> impl_;
};

}  // namespace txf::sched
