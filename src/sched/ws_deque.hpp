// Chase-Lev work-stealing deque (Chase & Lev, SPAA'05; memory orderings
// follow the sequentially-consistent variant of Lê et al., PPoPP'13 —
// chosen over the fence-based one because ThreadSanitizer does not model
// std::atomic_thread_fence, and a TSAN-verifiable scheduler is worth the
// few extra ordered accesses).
//
// The owner thread pushes/pops at the bottom without contention; thieves
// steal from the top with a CAS. Elements are raw pointers (the pool owns
// heap-allocated Task objects), which keeps the buffer trivially copyable.
// Growth allocates a bigger ring; old rings are kept until destruction so a
// concurrent thief can still read from a stale buffer safely (the standard
// Chase-Lev retirement strategy — rings are small and growth is rare).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/cache_line.hpp"
#include "util/failpoint.hpp"

namespace txf::sched {

template <typename T>
class WsDeque {
  static_assert(std::is_pointer_v<T>, "WsDeque stores raw pointers");

 public:
  explicit WsDeque(std::size_t initial_capacity = 64) {
    buffer_.store(new Ring(round_up(initial_capacity)),
                  std::memory_order_relaxed);
  }

  ~WsDeque() {
    delete buffer_.load(std::memory_order_relaxed);
    for (Ring* r : retired_) delete r;
  }

  WsDeque(const WsDeque&) = delete;
  WsDeque& operator=(const WsDeque&) = delete;

  /// Owner-only: push an element at the bottom.
  void push(T item) {
    const std::int64_t b = bottom_->load(std::memory_order_relaxed);
    const std::int64_t t = top_->load(std::memory_order_acquire);
    Ring* ring = buffer_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(ring->capacity)) {
      ring = grow(ring, t, b);
    }
    ring->put(b, item);
    // Publish the element: thieves acquire `bottom_`, so the cell write
    // above happens-before any steal that observes b+1.
    bottom_->store(b + 1, std::memory_order_release);
  }

  /// Owner-only: pop from the bottom. Returns nullptr when empty.
  T pop() {
    const std::int64_t b = bottom_->load(std::memory_order_relaxed) - 1;
    Ring* ring = buffer_.load(std::memory_order_relaxed);
    bottom_->store(b, std::memory_order_seq_cst);
    std::int64_t t = top_->load(std::memory_order_seq_cst);
    if (t > b) {
      // Deque was empty; restore.
      bottom_->store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T item = ring->get(b);
    if (t == b) {
      // Last element: race with thieves for it.
      if (!top_->compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                         std::memory_order_relaxed)) {
        item = nullptr;  // a thief won
      }
      bottom_->store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Thief: steal from the top. Returns nullptr when empty or lost a race.
  T steal() {
    std::int64_t t = top_->load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_->load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Ring* ring = buffer_.load(std::memory_order_acquire);
    T item = ring->get(t);
    // Chaos perturbation only (delay/yield): widens the classic Chase-Lev
    // race window between reading the cell and claiming it with the CAS.
    TXF_FP_POINT("sched.deque.steal");
    if (!top_->compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                       std::memory_order_relaxed)) {
      return nullptr;
    }
    return item;
  }

  /// Approximate size (safe from any thread; may be stale).
  std::size_t size_approx() const noexcept {
    const std::int64_t b = bottom_->load(std::memory_order_acquire);
    const std::int64_t t = top_->load(std::memory_order_acquire);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty_approx() const noexcept { return size_approx() == 0; }

 private:
  struct Ring {
    explicit Ring(std::size_t cap)
        : capacity(cap), mask(cap - 1),
          cells(std::make_unique<std::atomic<T>[]>(cap)) {}

    T get(std::int64_t i) const noexcept {
      return cells[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, T v) noexcept {
      cells[static_cast<std::size_t>(i) & mask].store(
          v, std::memory_order_relaxed);
    }

    std::size_t capacity;
    std::size_t mask;
    std::unique_ptr<std::atomic<T>[]> cells;
  };

  static std::size_t round_up(std::size_t n) {
    std::size_t c = 1;
    while (c < n) c <<= 1;
    return c;
  }

  Ring* grow(Ring* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new Ring(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    buffer_.store(bigger, std::memory_order_release);
    retired_.push_back(old);  // thieves may still read it; free at dtor
    return bigger;
  }

  util::CacheAligned<std::atomic<std::int64_t>> top_{0};
  util::CacheAligned<std::atomic<std::int64_t>> bottom_{0};
  std::atomic<Ring*> buffer_{nullptr};
  std::vector<Ring*> retired_;  // owner-only
};

}  // namespace txf::sched
