// Umbrella header: everything a txfutures application needs.
//
//   #include "txf.hpp"
//
//   txf::core::Runtime rt;
//   txf::stm::VBox<long> x(0);
//   txf::core::atomically(rt, [&](txf::core::TxCtx& ctx) {
//     auto f = ctx.submit([&](txf::core::TxCtx& c) { return x.get(c); });
//     x.put(ctx, f.get(ctx) + 1);
//   });
#pragma once

#include "containers/tx_counter.hpp"
#include "containers/tx_list.hpp"
#include "containers/tx_map.hpp"
#include "containers/tx_queue.hpp"
#include "containers/tx_vector.hpp"
#include "core/api.hpp"
#include "core/config.hpp"
#include "core/runtime.hpp"
#include "stm/transaction.hpp"
#include "stm/vbox.hpp"
