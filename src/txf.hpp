// Umbrella header: everything a txfutures application needs.
//
//   #include "txf.hpp"
//
//   txf::core::Runtime rt;
//   txf::stm::VBox<long> x(0);
//   txf::core::atomically(rt, [&](txf::core::TxCtx& ctx) {
//     auto f = ctx.submit([&](txf::core::TxCtx& c) { return x.get(c); });
//     x.put(ctx, f.get(ctx) + 1);
//   });
//
// Where to look:
//   core/config.hpp   every engine knob (scheduling modes, write modes,
//                     restart policies, contention manager, chaos plans)
//   core/api.hpp      atomically / TxCtx::submit / TxFuture / retry_now
//   core/runtime.hpp  Runtime: pool + STM env + stats, one per process
//                     region of shared state
//   stm/vbox.hpp      VBox<T> and its lifetime contract (one Runtime per
//                     box, trivially-copyable payloads <= 8 bytes)
//   containers/       TxMap, TxVector, TxList, TxQueue, TxCounter
//
// docs/ARCHITECTURE.md is the module tour; DESIGN.md the algorithm spec;
// docs/OBSERVABILITY.md the metric/trace inventory.
#pragma once

#include "containers/tx_counter.hpp"
#include "containers/tx_list.hpp"
#include "containers/tx_map.hpp"
#include "containers/tx_queue.hpp"
#include "containers/tx_vector.hpp"
#include "core/api.hpp"
#include "core/config.hpp"
#include "core/runtime.hpp"
#include "stm/transaction.hpp"
#include "stm/vbox.hpp"
