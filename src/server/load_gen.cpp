#include "server/load_gen.hpp"

#include <cmath>

namespace txf::server {

RequestClass LoadGenerator::pick_class() {
  const std::uint64_t roll = rng_.next_bounded(100);
  std::uint64_t edge = cfg_.mix_read;
  if (roll < edge) return RequestClass::kRead;
  if (roll < (edge += cfg_.mix_write)) return RequestClass::kWrite;
  if (roll < (edge += cfg_.mix_rmw)) return RequestClass::kRmw;
  if (roll < (edge += cfg_.mix_multi)) return RequestClass::kMulti;
  return RequestClass::kScan;
}

Request LoadGenerator::next(std::uint64_t start_ns) {
  if (next_arrival_ns_ == 0) next_arrival_ns_ = start_ns;
  const double elapsed_s =
      static_cast<double>(next_arrival_ns_ - start_ns) / 1e9;
  const double rate = rate_at(elapsed_s);
  // Exponential inter-arrival: dt = -ln(U) / rate, U in (0, 1].
  const double u = 1.0 - rng_.next_double();  // avoid log(0)
  const double dt_ns = -std::log(u) / rate * 1e9;
  next_arrival_ns_ += static_cast<std::uint64_t>(dt_ns) + 1;  // strictly after

  Request req;
  req.scheduled_ns = next_arrival_ns_;
  req.cls = pick_class();
  req.key = zipf_.next(rng_);
  req.aux = req.cls == RequestClass::kScan
                ? 1 + rng_.next_bounded(2 * cfg_.scan_span)
                : rng_.next();
  return req;
}

}  // namespace txf::server
