#include "server/admission.hpp"

namespace txf::server {

bool AdmissionGate::admit(RequestClass cls, std::uint64_t now_ns) {
  if (!cfg_.enabled) return true;
  if (class_shed_at(cls, shed_level())) return false;
  const double per_ns =
      static_cast<double>(rate_mhz_.load(std::memory_order_relaxed)) / 1e15;
  if (last_refill_ns_ == 0) {
    last_refill_ns_ = now_ns;
    tokens_ = 1.0;  // the first arrival is always admissible
  } else if (now_ns > last_refill_ns_) {
    tokens_ += static_cast<double>(now_ns - last_refill_ns_) * per_ns;
    last_refill_ns_ = now_ns;
  }
  const double burst =
      std::max(8.0, per_ns * 1e9 * cfg_.burst_s);  // >= 8 tokens of burst
  if (tokens_ > burst) tokens_ = burst;
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

OverloadController::OverloadController(const AdmissionConfig& cfg,
                                       AdmissionGate& gate)
    : cfg_(cfg), gate_(gate) {
  reg_.counter("server.controller.overload_ticks", overload_ticks_)
      .counter("server.controller.healthy_ticks", healthy_ticks_)
      .gauge("server.rate_limit", rate_gauge_)
      .gauge("server.shed_level", shed_level_gauge_);
  rate_gauge_.set(static_cast<std::int64_t>(gate_.rate()));
}

bool OverloadController::tick(const OverloadSignals& s) {
  // --- classify the window -------------------------------------------------
  const double share =
      s.attempts != 0
          ? static_cast<double>(s.conflict_aborts + s.deadline_aborts) /
                static_cast<double>(s.attempts)
          : 0.0;
  const bool taxonomy_hot = share > cfg_.abort_share_high;
  const bool queue_hot =
      s.commit_queue_depth > cfg_.commit_depth_high ||
      s.commit_queue_depth_max > cfg_.commit_stripe_depth_high;
  const bool backlog_hot = s.backlog > cfg_.backlog_high;
  const bool slo_hot = s.window_p99_ns > cfg_.slo_p99_ns;
  const bool overloaded = taxonomy_hot || queue_hot || backlog_hot || slo_hot;

  const bool recovered =
      !overloaded && s.window_p99_ns < cfg_.slo_p99_ns / 2 &&
      s.backlog < cfg_.backlog_high / 4 && share < cfg_.abort_share_high / 2;

  // --- adapt ---------------------------------------------------------------
  if (overloaded) {
    healthy_streak_ = 0;
    ++overload_streak_;
    overload_ticks_.add();
    // Clamp toward the service rate the window actually sustained: one tick
    // of evidence beats many blind multiplicative steps. The plain decrease
    // still applies when the window completed nothing (a full stall).
    double next = gate_.rate() * cfg_.decrease;
    if (s.completed != 0 && s.window_s > 0.0) {
      const double service_rate =
          static_cast<double>(s.completed) / s.window_s;
      next = std::min(next, service_rate * 0.9);
    }
    gate_.set_rate(std::max(next, cfg_.min_rate));
    if (overload_streak_ >= cfg_.escalate_after &&
        gate_.shed_level() < static_cast<std::uint32_t>(kRequestClassCount)) {
      gate_.set_shed_level(gate_.shed_level() + 1);
      overload_streak_ = 0;
    }
  } else {
    overload_streak_ = 0;
    if (recovered) {
      healthy_ticks_.add();
      ++healthy_streak_;
      gate_.set_rate(
          std::min(gate_.rate() * cfg_.increase, cfg_.max_rate));
      if (healthy_streak_ >= cfg_.relax_after && gate_.shed_level() > 0) {
        gate_.set_shed_level(gate_.shed_level() - 1);
        healthy_streak_ = 0;
      }
    } else {
      // Neither hot nor provably recovered: hold the line (no rate growth
      // while the p99 is still digesting a backlog).
      healthy_streak_ = 0;
    }
  }
  rate_gauge_.set(static_cast<std::int64_t>(gate_.rate()));
  shed_level_gauge_.set(static_cast<std::int64_t>(gate_.shed_level()));
  return overloaded;
}

}  // namespace txf::server
