// txf_server: the long-lived service harness driver.
//
// Examples:
//   txf_server --duration 10 --rate 3000                       # steady load
//   txf_server --duration 20 --rate 2000 --spike-factor 4
//              --spike-start 5 --spike-end 12                  # load spike
//   txf_server --duration 30 --chaos --status-interval 2       # chaos soak
//   txf_server --no-shed ...   # ablation: admission gate wide open
//
// Prints a one-line JSON report to stdout (always); --quiet-status turns
// off the periodic stderr status lines. Exit code 0 iff the run passed —
// no watchdog stall and all end-of-soak invariants held.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "server/server.hpp"

namespace {

double parse_double(const char* v, const char* flag) {
  char* end = nullptr;
  const double d = std::strtod(v, &end);
  if (end == v || *end != '\0') {
    std::fprintf(stderr, "txf_server: bad value '%s' for %s\n", v, flag);
    std::exit(2);
  }
  return d;
}

std::uint64_t parse_u64(const char* v, const char* flag) {
  char* end = nullptr;
  const unsigned long long u = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0') {
    std::fprintf(stderr, "txf_server: bad value '%s' for %s\n", v, flag);
    std::exit(2);
  }
  return static_cast<std::uint64_t>(u);
}

void usage() {
  std::fputs(
      "usage: txf_server [options]\n"
      "  --duration S         run length in seconds (default 5)\n"
      "  --rate HZ            base offered load (default 3000)\n"
      "  --spike-factor X     rate multiplier inside the spike window\n"
      "  --spike-start S      spike window start (seconds from run start)\n"
      "  --spike-end S        spike window end\n"
      "  --keyspace N         number of preloaded keys (default 16384)\n"
      "  --theta T            Zipf skew (default 0.9)\n"
      "  --mix R,W,M,X[,S]    class mix percent read,write,rmw,multi\n"
      "                       (optional 5th: range scans; sum 100)\n"
      "  --scan-span N        mean scan width in keys (default 256)\n"
      "  --op-span N          keys touched per point request (default 1)\n"
      "  --multi-span N       keys per multi-key transaction (default 4)\n"
      "  --workers N          executor threads (default 2)\n"
      "  --pool-threads N     runtime future pool threads (default 2)\n"
      "  --stripes N          commit-spine stripes, power of two (default 8)\n"
      "  --slo-ms MS          p99 SLO in milliseconds (default 100)\n"
      "  --no-shed            disable admission control (ablation)\n"
      "  --chaos              arm the soak chaos plan\n"
      "  --chaos-seed N       chaos determinism seed (default 42)\n"
      "  --seed N             load-generator seed\n"
      "  --deadline-us N      per-transaction deadline (default 100000)\n"
      "  --watchdog-ms N      stall threshold (default 3000)\n"
      "  --status-interval S  status line period (0 = off, default 1)\n"
      "  --quiet-status       alias for --status-interval 0\n"
      "  --timeline           enable the periodic metrics timeline + drift\n"
      "                       detectors (see docs/OBSERVABILITY.md)\n"
      "  --timeline-interval-ms N  timeline sample period (default 250)\n"
      "  --timeline-capacity N     frames retained in the ring (default 480)\n"
      "  --drift-window N     frames per drift-detector window (default 16)\n"
      "  --drift-churn X      site-churn bar, transitions/s (default 50)\n"
      "  --drift-conflict-share X  conflict share bar in [0,1] (default 0.25)\n"
      "  --drift-ebr-slope X  EBR backlog growth bar, nodes/s (default 4000)\n"
      "  --drift-stripe-skew X     hottest/mean stripe bar (default 4)\n"
      "  --drift-home-drop X  home-slot hit-rate drop bar (default 0.2)\n"
      "  --flight-dir DIR     write flight-recorder bundles under DIR\n"
      "  --flight-dump        also dump one bundle at end of a passing run\n"
      "  --slo-breach-windows N    consecutive overloaded ticks before a\n"
      "                       flight dump (0 = off, default 20)\n"
      "  --fail-invariant     inject a deterministic end-of-soak invariant\n"
      "                       failure (tests the failure -> bundle path)\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  txf::server::ServerConfig cfg;
  cfg.load.keyspace = 16384;
  cfg.tx_deadline_us = 100000;  // bounded retry by default: degrade, not hang

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "txf_server: %s needs a value\n", a);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--duration") == 0) {
      cfg.duration_s = parse_double(next(), a);
    } else if (std::strcmp(a, "--rate") == 0) {
      cfg.load.rate_hz = parse_double(next(), a);
    } else if (std::strcmp(a, "--spike-factor") == 0) {
      cfg.load.spike_factor = parse_double(next(), a);
    } else if (std::strcmp(a, "--spike-start") == 0) {
      cfg.load.spike_start_s = parse_double(next(), a);
    } else if (std::strcmp(a, "--spike-end") == 0) {
      cfg.load.spike_end_s = parse_double(next(), a);
    } else if (std::strcmp(a, "--keyspace") == 0) {
      cfg.load.keyspace = parse_u64(next(), a);
    } else if (std::strcmp(a, "--theta") == 0) {
      cfg.load.zipf_theta = parse_double(next(), a);
    } else if (std::strcmp(a, "--mix") == 0) {
      unsigned r, w, m, x, s = 0;
      const int got = std::sscanf(next(), "%u,%u,%u,%u,%u", &r, &w, &m, &x, &s);
      if ((got != 4 && got != 5) || r + w + m + x + s != 100) {
        std::fprintf(stderr,
                     "txf_server: --mix wants R,W,M,X[,S] summing 100\n");
        return 2;
      }
      cfg.load.mix_read = r;
      cfg.load.mix_write = w;
      cfg.load.mix_rmw = m;
      cfg.load.mix_multi = x;
      cfg.load.mix_scan = s;
    } else if (std::strcmp(a, "--scan-span") == 0) {
      cfg.load.scan_span = parse_u64(next(), a);
    } else if (std::strcmp(a, "--op-span") == 0) {
      cfg.op_span = static_cast<std::uint32_t>(parse_u64(next(), a));
    } else if (std::strcmp(a, "--multi-span") == 0) {
      cfg.multi_span = static_cast<std::uint32_t>(parse_u64(next(), a));
    } else if (std::strcmp(a, "--workers") == 0) {
      cfg.workers = static_cast<std::uint32_t>(parse_u64(next(), a));
    } else if (std::strcmp(a, "--pool-threads") == 0) {
      cfg.pool_threads = static_cast<std::uint32_t>(parse_u64(next(), a));
    } else if (std::strcmp(a, "--stripes") == 0) {
      cfg.commit_stripes = static_cast<unsigned>(parse_u64(next(), a));
    } else if (std::strcmp(a, "--slo-ms") == 0) {
      cfg.admission.slo_p99_ns = parse_u64(next(), a) * 1'000'000ULL;
    } else if (std::strcmp(a, "--no-shed") == 0) {
      cfg.admission.enabled = false;
    } else if (std::strcmp(a, "--chaos") == 0) {
      cfg.chaos = true;
    } else if (std::strcmp(a, "--chaos-seed") == 0) {
      cfg.chaos_seed = parse_u64(next(), a);
    } else if (std::strcmp(a, "--seed") == 0) {
      cfg.load.seed = parse_u64(next(), a);
    } else if (std::strcmp(a, "--deadline-us") == 0) {
      cfg.tx_deadline_us = parse_u64(next(), a);
    } else if (std::strcmp(a, "--watchdog-ms") == 0) {
      cfg.watchdog_stall_ms = parse_u64(next(), a);
    } else if (std::strcmp(a, "--status-interval") == 0) {
      cfg.status_interval_s = parse_double(next(), a);
    } else if (std::strcmp(a, "--quiet-status") == 0) {
      cfg.status_interval_s = 0.0;
    } else if (std::strcmp(a, "--timeline") == 0) {
      cfg.timeline.enabled = true;
    } else if (std::strcmp(a, "--timeline-interval-ms") == 0) {
      cfg.timeline.interval_ms =
          static_cast<std::uint32_t>(parse_u64(next(), a));
    } else if (std::strcmp(a, "--timeline-capacity") == 0) {
      cfg.timeline.capacity = static_cast<std::uint32_t>(parse_u64(next(), a));
    } else if (std::strcmp(a, "--drift-window") == 0) {
      cfg.drift.window_frames =
          static_cast<std::uint32_t>(parse_u64(next(), a));
    } else if (std::strcmp(a, "--drift-churn") == 0) {
      cfg.drift.churn_per_s = parse_double(next(), a);
    } else if (std::strcmp(a, "--drift-conflict-share") == 0) {
      cfg.drift.conflict_share = parse_double(next(), a);
    } else if (std::strcmp(a, "--drift-ebr-slope") == 0) {
      cfg.drift.ebr_slope_per_s = parse_double(next(), a);
    } else if (std::strcmp(a, "--drift-stripe-skew") == 0) {
      cfg.drift.stripe_skew = parse_double(next(), a);
    } else if (std::strcmp(a, "--drift-home-drop") == 0) {
      cfg.drift.home_hit_drop = parse_double(next(), a);
    } else if (std::strcmp(a, "--flight-dir") == 0) {
      cfg.flight_dir = next();
    } else if (std::strcmp(a, "--flight-dump") == 0) {
      cfg.flight_dump_at_end = true;
    } else if (std::strcmp(a, "--slo-breach-windows") == 0) {
      cfg.slo_breach_windows =
          static_cast<std::uint32_t>(parse_u64(next(), a));
    } else if (std::strcmp(a, "--fail-invariant") == 0) {
      cfg.inject_invariant_failure = true;
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "txf_server: unknown option %s\n", a);
      usage();
      return 2;
    }
  }

  txf::server::Server server(cfg);
  txf::server::Report rep;
  try {
    rep = server.run();
  } catch (const std::invalid_argument& e) {
    // e.g. --stripes 3: Runtime validates Config::commit_stripes.
    std::fprintf(stderr, "txf_server: %s\n", e.what());
    return 2;
  }
  std::printf("%s\n", rep.to_json().c_str());
  if (!rep.ok) {
    std::fprintf(stderr, "txf_server: FAILED: %s\n", rep.failure.c_str());
    return 1;
  }
  return 0;
}
