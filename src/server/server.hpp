// Long-lived KV/OLTP service harness (ROADMAP item: robustness under
// sustained load).
//
// One Server fronts a TxMap keyspace (plus a TxBTree ordered index for the
// kScan class) on one Runtime and is driven by an
// open-loop Poisson/Zipf load (load_gen.hpp) through a token-bucket
// admission gate adapted by the abort-taxonomy-driven overload controller
// (admission.hpp). The harness exists to answer the operational question
// the micro-benches cannot: does the engine *stay up* — p99 inside the
// SLO, no stalls, no resource leaks — over minutes of mixed traffic,
// load spikes, and injected chaos?
//
// Threads while running:
//   caller        — arrival loop: generates the open-loop schedule, admits
//                   or sheds each arrival, enqueues admitted requests
//   workers (N)   — dequeue requests, execute them transactionally,
//                   record per-class latency from the *scheduled* time
//   controller    — periodic tick: drains the latency window, samples
//                   taxonomy/queue-depth deltas, adapts the gate, revokes
//                   shed-class backlog on overload, emits a JSON status line
//   watchdog      — declares a stall when no request completes for
//                   `watchdog_stall_ms` while backlog is pending; dumps the
//                   metrics snapshot and the trace ring before failing
//
// After the run the harness checks the end-of-soak invariants (clock ==
// committed count, abort-cause accounting identity, version-list trim
// bound, EBR backlog drained, chaos actually fired when armed) and folds
// everything into a Report. docs/ROBUSTNESS.md documents the policies.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/drift.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "server/admission.hpp"
#include "server/load_gen.hpp"
#include "server/request.hpp"

namespace txf::server {

struct ServerConfig {
  LoadGenConfig load;
  AdmissionConfig admission;
  double duration_s = 5.0;
  std::uint32_t workers = 2;
  std::uint32_t pool_threads = 2;  // Runtime future-execution pool
  /// Multi-key transactions touch this many keys via futures.
  std::uint32_t multi_span = 4;
  /// Every kScan-th completed scan writes back one refreshed key, so scans
  /// are not pure readers and conflict realistically with writers.
  std::uint32_t scan_writeback_every = 8;
  /// Point requests (read/write/rmw) touch this many consecutive keys —
  /// the per-request work knob that sizes the workload to the machine
  /// (real OLTP requests touch rows, not words).
  std::uint32_t op_span = 1;
  /// Per-call transaction deadline handed to the contention manager
  /// (0 = none). Soak mode sets one so livelocks degrade, not hang.
  std::uint64_t tx_deadline_us = 0;

  /// Arm the chaos plan (soak mode): probabilistic failures on validation
  /// plus delays/yields across the commit pipeline, read path and
  /// scheduler. Deterministic per chaos_seed.
  bool chaos = false;
  std::uint64_t chaos_seed = 42;

  double controller_interval_s = 0.10;
  double status_interval_s = 1.0;  // 0 = no status lines
  std::uint64_t watchdog_stall_ms = 3000;
  /// Absolute dispatch-queue cap: arrivals beyond it are shed outright
  /// (the gate's job is to keep the queue far below this).
  std::uint64_t max_backlog = 8192;

  /// End-of-run invariant checks (disable only for micro-runs that tear
  /// down mid-traffic on purpose).
  bool check_invariants = true;

  /// Commit-spine stripes handed to the engine (Config::commit_stripes;
  /// power of two, validated by the Runtime constructor).
  unsigned commit_stripes = 8;

  // --- drift observability + flight recorder (PR: observability) ---

  /// Metrics timeline sampled by the Runtime (Config::timeline). Soak runs
  /// enable it so the drift detectors and flight bundles have history.
  obs::TimelineConfig timeline;
  /// Drift-detector thresholds, evaluated on the controller tick whenever
  /// the timeline is enabled.
  obs::DriftConfig drift;
  /// Flight-recorder bundle parent directory; empty = recorder disabled.
  std::string flight_dir;
  /// Also dump one bundle at the end of a *passing* run (baseline capture;
  /// failures always dump when the recorder is enabled).
  bool flight_dump_at_end = false;
  /// Consecutive overloaded controller ticks that constitute an SLO-breach
  /// streak worth a flight dump (0 = never dump on breach streaks).
  std::uint32_t slo_breach_windows = 20;
  /// Test/CI hook: arm a failpoint that deterministically fails the
  /// end-of-soak invariant check, proving the failure -> bundle path end to
  /// end without corrupting real engine state.
  bool inject_invariant_failure = false;
};

/// Everything a run learned, one struct. `ok` is the soak verdict:
/// no watchdog stall and every invariant held.
struct Report {
  bool ok = false;
  std::string failure;  // first failed check, empty when ok

  double duration_s = 0.0;
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::uint64_t slo_misses = 0;
  std::uint64_t watchdog_stalls = 0;

  struct ClassStats {
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t completed = 0;
    std::uint64_t p50_ns = 0;
    std::uint64_t p99_ns = 0;
    std::uint64_t p999_ns = 0;
  };
  std::array<ClassStats, kRequestClassCount> per_class{};
  std::uint64_t p50_ns = 0;   // all admitted traffic
  std::uint64_t p99_ns = 0;
  std::uint64_t p999_ns = 0;

  std::uint64_t overload_ticks = 0;
  std::uint64_t healthy_ticks = 0;
  std::uint32_t max_shed_level = 0;
  double final_rate_limit = 0.0;

  // End-of-soak invariant evidence. `clock` is the striped clock's
  // component sum; the per-stripe vectors pin the sharded identity
  // component(s) == committed-writers(s) stripe by stripe.
  std::uint64_t clock = 0;
  std::uint64_t committed_count = 0;
  std::vector<std::uint64_t> stripe_clock;
  std::vector<std::uint64_t> stripe_committed;
  std::uint64_t multi_commits = 0;
  std::uint64_t cause_sum_minus_deadline = 0;
  std::uint64_t attempt_aborts = 0;
  std::uint64_t max_version_list = 0;       // before the final trim
  std::uint64_t max_version_list_trimmed = 0;  // after quiescent trim
  std::uint64_t ebr_pending_final = 0;
  std::uint64_t chaos_fires = 0;

  // Drift/flight evidence (zero/empty when the timeline was off).
  std::uint64_t drift_evaluations = 0;
  std::uint64_t drift_triggers = 0;
  std::vector<std::string> drift_fired;     // detectors that ever triggered
  std::vector<std::string> flight_bundles;  // bundle dirs written this run

  std::string to_json() const;
};

class Server {
 public:
  explicit Server(ServerConfig cfg) : cfg_(std::move(cfg)) {}

  /// Run the full lifecycle (preload, traffic, drain, invariant checks) and
  /// return the report. Blocking; the calling thread runs the arrival loop.
  Report run();

 private:
  ServerConfig cfg_;
};

/// The server's metric surface (names documented in docs/OBSERVABILITY.md;
/// scripts/check_docs.py cross-checks them).
struct ServerMetrics {
  obs::Counter admitted;
  obs::Counter shed;
  std::array<obs::Counter, kRequestClassCount> shed_by_class{};
  obs::Counter completed;
  obs::Counter slo_misses;
  obs::Counter watchdog_stalls;
  obs::Gauge backlog;
  std::array<obs::Histogram, kRequestClassCount> latency{};
  obs::Registration reg;

  ServerMetrics() {
    reg.counter("server.admitted", admitted)
        .counter("server.shed", shed)
        .counter("server.completed", completed)
        .counter("server.slo_misses", slo_misses)
        .counter("server.watchdog.stalls", watchdog_stalls)
        .gauge("server.backlog", backlog)
        .counter("server.shed.read",
                 shed_by_class[static_cast<std::size_t>(RequestClass::kRead)])
        .counter("server.shed.write",
                 shed_by_class[static_cast<std::size_t>(RequestClass::kWrite)])
        .counter("server.shed.rmw",
                 shed_by_class[static_cast<std::size_t>(RequestClass::kRmw)])
        .counter("server.shed.multi",
                 shed_by_class[static_cast<std::size_t>(RequestClass::kMulti)])
        .counter("server.shed.scan",
                 shed_by_class[static_cast<std::size_t>(RequestClass::kScan)])
        .histogram("server.latency.read",
                   latency[static_cast<std::size_t>(RequestClass::kRead)])
        .histogram("server.latency.write",
                   latency[static_cast<std::size_t>(RequestClass::kWrite)])
        .histogram("server.latency.rmw",
                   latency[static_cast<std::size_t>(RequestClass::kRmw)])
        .histogram("server.latency.multi",
                   latency[static_cast<std::size_t>(RequestClass::kMulti)])
        .histogram("server.latency.scan",
                   latency[static_cast<std::size_t>(RequestClass::kScan)]);
  }
};

}  // namespace txf::server
