#include "server/server.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include <optional>

#include "containers/tx_btree.hpp"
#include "containers/tx_map.hpp"
#include "core/api.hpp"
#include "obs/drift.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "server/latency.hpp"
#include "util/timing.hpp"

namespace txf::server {
namespace {

/// Values stay clear of TxMap's tombstone sentinel (~0).
constexpr stm::Word kValueMask = 0x00ff'ffff'ffff'ffffULL;

core::Config make_engine_config(const ServerConfig& cfg) {
  core::Config ec;
  ec.pool_threads = cfg.pool_threads;
  ec.commit_stripes = cfg.commit_stripes;
  ec.tx_deadline_us = cfg.tx_deadline_us;
  ec.timeline = cfg.timeline;
  ec.drift = cfg.drift;
  if (cfg.inject_invariant_failure) {
    // Deterministic end-to-end proof of the failure -> flight-bundle path:
    // the end-of-soak invariant block passes this site once and fails.
    ec.chaos.add("server.soak.invariant", util::fp::Action::kFail, 1);
  }
  if (cfg.chaos) {
    using util::fp::Action;
    // The soak chaos diet: rare hard failures on tree validation (forcing
    // the full abort/retry/escalation machinery), plus delays and yields
    // sprinkled across the commit pipeline, read path and scheduler to
    // shake out interleavings. Deterministic per seed (failpoint.hpp).
    // Keep futures genuinely parallel under chaos: adaptive elision would
    // otherwise demote every site inline (especially on small machines) and
    // the subtxn validate/start sites would never be exercised.
    ec.scheduling = core::SchedulingMode::kAlwaysParallel;
    ec.chaos.seed = cfg.chaos_seed;
    ec.chaos.add_prob("core.subtxn.validate", Action::kFail, 0.02)
        .add_prob("core.subtxn.start", Action::kAbortTree, 0.005)
        .add_prob("core.subtxn.start", Action::kDelayUs, 0.01, 50)
        .add_prob("stm.commit.prevalidate", Action::kDelayUs, 0.01, 100)
        .add_prob("stm.commit.batch.form", Action::kYield, 0.02)
        .add_prob("stm.commit.batch.handoff", Action::kYield, 0.02)
        .add_prob("stm.commit.writeback", Action::kDelayUs, 0.005, 100)
        .add_prob("stm.read.version", Action::kDelayUs, 0.002, 20)
        .add_prob("sched.submit", Action::kYield, 0.01)
        .add_prob("sched.steal", Action::kYield, 0.01);
  }
  return ec;
}

/// Conflict-shaped abort causes: the taxonomy entries that signal
/// contention (as opposed to injected chaos, user exceptions or explicit
/// retries). The controller's "abort share" is these plus deadline
/// escalations, over all attempts.
std::uint64_t conflict_cause_total(const obs::AbortAccounting& acc) {
  using obs::AbortCause;
  return acc.of(AbortCause::kReadValidation).load() +
         acc.of(AbortCause::kWriteWrite).load() +
         acc.of(AbortCause::kStaleSnapshot).load() +
         acc.of(AbortCause::kTreeOrder).load() +
         acc.of(AbortCause::kSerialPreempt).load() +
         acc.of(AbortCause::kStalled).load();
}

/// The effective configuration as the flight bundle's config.json: the
/// knobs an operator needs to reproduce or interpret the run.
std::string effective_config_json(const ServerConfig& cfg) {
  std::ostringstream os;
  os << "{\"duration_s\": " << cfg.duration_s
     << ", \"rate_hz\": " << cfg.load.rate_hz
     << ", \"keyspace\": " << cfg.load.keyspace
     << ", \"zipf_theta\": " << cfg.load.zipf_theta
     << ", \"workers\": " << cfg.workers
     << ", \"pool_threads\": " << cfg.pool_threads
     << ", \"commit_stripes\": " << cfg.commit_stripes
     << ", \"op_span\": " << cfg.op_span
     << ", \"multi_span\": " << cfg.multi_span
     << ", \"tx_deadline_us\": " << cfg.tx_deadline_us
     << ", \"chaos\": " << (cfg.chaos ? "true" : "false")
     << ", \"chaos_seed\": " << cfg.chaos_seed
     << ", \"admission_enabled\": "
     << (cfg.admission.enabled ? "true" : "false")
     << ", \"slo_p99_ns\": " << cfg.admission.slo_p99_ns
     << ", \"watchdog_stall_ms\": " << cfg.watchdog_stall_ms
     << ", \"slo_breach_windows\": " << cfg.slo_breach_windows
     << ", \"inject_invariant_failure\": "
     << (cfg.inject_invariant_failure ? "true" : "false")
     << ", \"timeline\": {\"enabled\": "
     << (cfg.timeline.enabled ? "true" : "false")
     << ", \"interval_ms\": " << cfg.timeline.interval_ms
     << ", \"capacity\": " << cfg.timeline.capacity << "}"
     << ", \"drift\": {\"window_frames\": " << cfg.drift.window_frames
     << ", \"churn_per_s\": " << cfg.drift.churn_per_s
     << ", \"conflict_share\": " << cfg.drift.conflict_share
     << ", \"ebr_slope_per_s\": " << cfg.drift.ebr_slope_per_s
     << ", \"stripe_skew\": " << cfg.drift.stripe_skew
     << ", \"home_hit_drop\": " << cfg.drift.home_hit_drop << "}}\n";
  return os.str();
}

}  // namespace

std::string Report::to_json() const {
  std::ostringstream os;
  os << "{\"ok\": " << (ok ? "true" : "false") << ", \"failure\": \""
     << failure << "\"";
  os << ", \"duration_s\": " << duration_s;
  os << ", \"offered\": " << offered << ", \"admitted\": " << admitted
     << ", \"shed\": " << shed << ", \"completed\": " << completed
     << ", \"slo_misses\": " << slo_misses
     << ", \"watchdog_stalls\": " << watchdog_stalls;
  os << ", \"p50_ns\": " << p50_ns << ", \"p99_ns\": " << p99_ns
     << ", \"p999_ns\": " << p999_ns;
  os << ", \"classes\": {";
  for (std::size_t i = 0; i < kRequestClassCount; ++i) {
    const ClassStats& c = per_class[i];
    if (i != 0) os << ", ";
    os << "\"" << request_class_name(static_cast<RequestClass>(i))
       << "\": {\"admitted\": " << c.admitted << ", \"shed\": " << c.shed
       << ", \"completed\": " << c.completed << ", \"p50_ns\": " << c.p50_ns
       << ", \"p99_ns\": " << c.p99_ns << ", \"p999_ns\": " << c.p999_ns
       << "}";
  }
  os << "}";
  os << ", \"overload_ticks\": " << overload_ticks
     << ", \"healthy_ticks\": " << healthy_ticks
     << ", \"max_shed_level\": " << max_shed_level
     << ", \"final_rate_limit\": " << final_rate_limit;
  os << ", \"clock\": " << clock
     << ", \"committed_count\": " << committed_count
     << ", \"multi_commits\": " << multi_commits;
  os << ", \"stripe_clock\": [";
  for (std::size_t s = 0; s < stripe_clock.size(); ++s)
    os << (s != 0 ? ", " : "") << stripe_clock[s];
  os << "], \"stripe_committed\": [";
  for (std::size_t s = 0; s < stripe_committed.size(); ++s)
    os << (s != 0 ? ", " : "") << stripe_committed[s];
  os << "]"
     << ", \"cause_sum_minus_deadline\": " << cause_sum_minus_deadline
     << ", \"attempt_aborts\": " << attempt_aborts
     << ", \"max_version_list\": " << max_version_list
     << ", \"max_version_list_trimmed\": " << max_version_list_trimmed
     << ", \"ebr_pending_final\": " << ebr_pending_final
     << ", \"chaos_fires\": " << chaos_fires;
  os << ", \"drift_evaluations\": " << drift_evaluations
     << ", \"drift_triggers\": " << drift_triggers << ", \"drift_fired\": [";
  for (std::size_t i = 0; i < drift_fired.size(); ++i)
    os << (i != 0 ? ", " : "") << "\"" << drift_fired[i] << "\"";
  os << "], \"flight_bundles\": [";
  for (std::size_t i = 0; i < flight_bundles.size(); ++i)
    os << (i != 0 ? ", " : "") << "\"" << flight_bundles[i] << "\"";
  os << "]";
  os << "}";
  return os.str();
}

Report Server::run() {
  Report rep;
  ServerMetrics sm;
  LatencyTracker tracker;
  AdmissionGate gate(cfg_.admission);
  OverloadController controller(cfg_.admission, gate);

  core::Runtime rt(make_engine_config(cfg_));
  obs::AbortAccounting& acc = rt.env().abort_accounting();
  containers::TxMap map(cfg_.load.keyspace);
  // Ordered index over the same keyspace: the kScan class range-scans it
  // (and occasionally refreshes a key, so scans conflict with writers).
  containers::TxBTree index;

  // Drift observability: the Runtime owns the timeline sampler; the monitor
  // and recorder live here because triggering policy (breach streaks,
  // invariant failures) is the harness's business, not the engine's.
  obs::FlightRecorder flight(cfg_.flight_dir);
  std::optional<obs::DriftMonitor> drift;
  if (rt.timeline() != nullptr) drift.emplace(cfg_.drift, *rt.timeline());
  const std::string config_json = effective_config_json(cfg_);
  auto flight_dump = [&](const std::string& reason) {
    const std::string bundle = flight.dump(
        reason, rt.timeline(), drift ? &*drift : nullptr, config_json);
    if (!bundle.empty())
      std::fprintf(stderr, "flight recorder: wrote %s (%s)\n",
                   bundle.c_str(), reason.c_str());
    return bundle;
  };

  // Preload every key so steady-state traffic only reads/updates — the map
  // is a fixed-capacity heap (tx_map.hpp) and must never fill mid-run.
  for (std::uint64_t base = 0; base < cfg_.load.keyspace; base += 512) {
    const std::uint64_t hi = std::min<std::uint64_t>(base + 512,
                                                     cfg_.load.keyspace);
    core::atomically(rt, [&](core::TxCtx& ctx) {
      for (std::uint64_t k = base; k < hi; ++k) {
        map.put(ctx, k, k + 1);
        index.put(ctx, k, k + 1);
      }
    });
  }

  // ---- shared run state -----------------------------------------------
  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Request> queue;
    bool stop_workers = false;
    std::atomic<std::uint64_t> inflight{0};
    std::atomic<std::uint64_t> exec_errors{0};
    std::atomic<bool> failed{false};
    std::atomic<bool> done{false};  // controller/watchdog shutdown flag
  } sh;

  const std::uint32_t span =
      cfg_.multi_span < 2 ? 2 : cfg_.multi_span;  // >= 1 future
  const std::uint64_t keyspace = cfg_.load.keyspace;

  const std::uint32_t op_span = cfg_.op_span < 1 ? 1 : cfg_.op_span;
  auto execute = [&](const Request& req) {
    switch (req.cls) {
      case RequestClass::kRead:
        core::atomically(rt, [&](core::TxCtx& ctx) {
          stm::Word sum = 0;
          for (std::uint32_t j = 0; j < op_span; ++j)
            sum += map.get(ctx, (req.key + j) % keyspace).value_or(0);
          return sum;
        });
        break;
      case RequestClass::kWrite:
        core::atomically(rt, [&](core::TxCtx& ctx) {
          // Read-mostly span with one blind write at the head: a write
          // request still carries the request's row-touch weight.
          stm::Word sum = 0;
          for (std::uint32_t j = 1; j < op_span; ++j)
            sum += map.get(ctx, (req.key + j) % keyspace).value_or(0);
          map.put(ctx, req.key, ((req.aux + sum) | 1) & kValueMask);
        });
        break;
      case RequestClass::kRmw:
        core::atomically(rt, [&](core::TxCtx& ctx) {
          stm::Word sum = 0;
          for (std::uint32_t j = 0; j < op_span; ++j)
            sum += map.get(ctx, (req.key + j) % keyspace).value_or(0);
          map.put(ctx, req.key, (sum + 1) & kValueMask);
        });
        break;
      case RequestClass::kMulti:
        // The paper's workload shape: sibling reads as transactional
        // futures, joined by the continuation, one summarizing write.
        core::atomically(rt, [&](core::TxCtx& ctx) {
          std::vector<core::TxFuture<stm::Word>> reads;
          reads.reserve(span - 1);
          for (std::uint32_t i = 1; i < span; ++i) {
            const std::uint64_t ki =
                (req.key + 1 + ((req.aux >> (8 * (i & 7))) & 0xff) + i) %
                keyspace;
            reads.push_back(ctx.submit([&map, ki](core::TxCtx& c) {
              return map.get(c, ki).value_or(0);
            }));
          }
          stm::Word sum = map.get(ctx, req.key).value_or(0);
          for (auto& f : reads) sum += f.get(ctx);
          map.put(ctx, req.key, sum & kValueMask);
          return sum;
        });
        break;
      case RequestClass::kScan: {
        // Ordered range scan over the B+-tree index; the width rides in
        // req.aux (load_gen draws it around scan_span). The per-call-site
        // submit tag lets the adaptive scheduler learn one decision for
        // this scan site. Every scan_writeback_every-th scan refreshes its
        // first key so the class is not invisible to conflict detection.
        const std::uint64_t width = std::max<std::uint64_t>(req.aux, 1);
        const bool writeback =
            cfg_.scan_writeback_every != 0 &&
            req.key % cfg_.scan_writeback_every == 0;
        core::atomically(rt, [&](core::TxCtx& ctx) {
          stm::Word sum = 0;
          const std::uint64_t lo = req.key % keyspace;
          const std::uint64_t hi =
              std::min<std::uint64_t>(lo + width, keyspace);
          index.scan(
              ctx, lo, hi,
              [&](std::uint64_t, std::uint64_t v) { sum += v; },
              TXF_SUBMIT_SITE);
          if (writeback) index.put(ctx, lo, (sum | 1) & kValueMask);
          return sum;
        });
        break;
      }
      case RequestClass::kCount:
        break;
    }
  };

  auto worker_fn = [&] {
    for (;;) {
      Request req;
      {
        std::unique_lock<std::mutex> lk(sh.mu);
        sh.cv.wait(lk, [&] { return sh.stop_workers || !sh.queue.empty(); });
        if (sh.queue.empty()) {
          if (sh.stop_workers) return;
          continue;
        }
        req = sh.queue.front();
        sh.queue.pop_front();
      }
      sm.backlog.add(-1);
      sh.inflight.fetch_add(1, std::memory_order_relaxed);
      try {
        execute(req);
      } catch (...) {
        sh.exec_errors.fetch_add(1, std::memory_order_relaxed);
      }
      const std::uint64_t now = util::now_ns();
      const std::uint64_t lat =
          now > req.scheduled_ns ? now - req.scheduled_ns : 0;
      tracker.record(req.cls, lat);
      sm.latency[static_cast<std::size_t>(req.cls)].record(lat);
      sm.completed.add();
      if (lat > cfg_.admission.slo_p99_ns) sm.slo_misses.add();
      sh.inflight.fetch_sub(1, std::memory_order_relaxed);
    }
  };

  // Revoke queued requests of currently-shed classes: admission decisions
  // are made at arrival time, so a spike's worth of low-priority work can
  // already be sitting in the backlog when the shed level rises — dropping
  // it there is what actually rescues the p99 (every queued request is
  // latency already accruing against its scheduled time).
  auto revoke_backlog = [&] {
    const std::uint32_t level = gate.shed_level();
    if (level == 0) return;
    std::uint64_t dropped_by_class[kRequestClassCount] = {};
    {
      std::lock_guard<std::mutex> lk(sh.mu);
      auto keep_end = std::remove_if(
          sh.queue.begin(), sh.queue.end(), [&](const Request& r) {
            if (!AdmissionGate::class_shed_at(r.cls, level)) return false;
            ++dropped_by_class[static_cast<std::size_t>(r.cls)];
            return true;
          });
      sh.queue.erase(keep_end, sh.queue.end());
    }
    std::uint64_t dropped = 0;
    for (std::size_t i = 0; i < kRequestClassCount; ++i) {
      if (dropped_by_class[i] == 0) continue;
      dropped += dropped_by_class[i];
      sm.shed_by_class[i].add(dropped_by_class[i]);
    }
    if (dropped != 0) {
      sm.shed.add(dropped);
      sm.backlog.add(-static_cast<std::int64_t>(dropped));
    }
  };

  const std::uint64_t start_ns = util::now_ns();

  auto controller_fn = [&] {
    std::uint64_t prev_commits = acc.tx_commits.load();
    std::uint64_t prev_attempt_aborts = acc.attempt_aborts.load();
    std::uint64_t prev_conflict = conflict_cause_total(acc);
    std::uint64_t prev_deadline =
        acc.of(obs::AbortCause::kDeadlineExceeded).load();
    std::uint32_t slo_breach_streak = 0;
    bool slo_breach_dumped = false;
    std::uint64_t last_tick_ns = util::now_ns();
    std::uint64_t last_status_ns = last_tick_ns;
    const auto interval =
        std::chrono::duration<double>(cfg_.controller_interval_s);
    while (!sh.done.load(std::memory_order_acquire)) {
      // Sleep in small slices so shutdown is prompt.
      const auto wake = std::chrono::steady_clock::now() + interval;
      while (std::chrono::steady_clock::now() < wake &&
             !sh.done.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      const std::uint64_t now = util::now_ns();
      const double window_s =
          static_cast<double>(now - last_tick_ns) / 1e9;
      last_tick_ns = now;

      const std::uint64_t commits = acc.tx_commits.load();
      const std::uint64_t attempt_aborts = acc.attempt_aborts.load();
      const std::uint64_t conflict = conflict_cause_total(acc);
      const std::uint64_t deadline =
          acc.of(obs::AbortCause::kDeadlineExceeded).load();

      OverloadSignals sig;
      const util::LatencyHistogram window = tracker.drain_window();
      sig.window_p99_ns = window.count() != 0 ? window.p99() : 0;
      sig.completed = window.count();
      sig.window_s = window_s;
      sig.attempts =
          (commits - prev_commits) + (attempt_aborts - prev_attempt_aborts);
      sig.conflict_aborts = conflict - prev_conflict;
      sig.deadline_aborts = deadline - prev_deadline;
      sig.commit_queue_depth = rt.env().queue().queue_depth();
      sig.commit_queue_depth_max = rt.env().queue().queue_depth_max();
      {
        std::lock_guard<std::mutex> lk(sh.mu);
        sig.backlog = sh.queue.size();
      }
      prev_commits = commits;
      prev_attempt_aborts = attempt_aborts;
      prev_conflict = conflict;
      prev_deadline = deadline;

      // The ablation (--no-shed) keeps the controller silent: no rate
      // adaptation, no shed-level escalation, no backlog revocation.
      bool overloaded = false;
      if (cfg_.admission.enabled) {
        overloaded = controller.tick(sig);
        if (overloaded) revoke_backlog();
        rep.max_shed_level = std::max(rep.max_shed_level, gate.shed_level());
      }

      if (drift) drift->evaluate();

      // An overload tick is normal during a spike; a long unbroken streak
      // of them is the service failing its SLO in slow motion — capture
      // the evidence while the breach is still in the timeline window.
      if (overloaded) {
        ++slo_breach_streak;
        if (cfg_.slo_breach_windows != 0 && !slo_breach_dumped &&
            slo_breach_streak >= cfg_.slo_breach_windows) {
          slo_breach_dumped = true;
          flight_dump("slo-breach-streak");
        }
      } else {
        slo_breach_streak = 0;
      }

      if (cfg_.status_interval_s > 0.0 &&
          static_cast<double>(now - last_status_ns) / 1e9 >=
              cfg_.status_interval_s) {
        last_status_ns = now;
        // Commit-footprint drift (ISSUE 8): stripe widths attributed to
        // submit sites since start. Buckets are power-of-two width bins
        // (1, 2, 3-4, 5-8, 9-16, 17-32) — enough for any stripe count the
        // sharded spine supports. Soak runs diff consecutive lines to see
        // whether hot sites are narrowing toward the single-stripe path.
        const core::adaptive::AdaptiveScheduler& ad = rt.adaptive();
        const std::uint64_t fp_commits = ad.footprint_commits();
        const double fp_mean =
            fp_commits != 0 ? static_cast<double>(ad.footprint_width_sum()) /
                                  static_cast<double>(fp_commits)
                            : 0.0;
        // Built as a string (not fprintf'd piecemeal) because the line is
        // also the flight recorder's status tail: the last N of these are
        // the "what was the service saying" page of a postmortem bundle.
        std::ostringstream line;
        char t_buf[32], p99_buf[32], rate_buf[32], mean_buf[32];
        std::snprintf(t_buf, sizeof t_buf, "%.1f",
                      static_cast<double>(now - start_ns) / 1e9);
        std::snprintf(p99_buf, sizeof p99_buf, "%.2f",
                      static_cast<double>(sig.window_p99_ns) / 1e6);
        std::snprintf(rate_buf, sizeof rate_buf, "%.0f", gate.rate());
        std::snprintf(mean_buf, sizeof mean_buf, "%.2f", fp_mean);
        line << "{\"server_status\": {\"t_s\": " << t_buf
             << ", \"admitted\": " << sm.admitted.load()
             << ", \"shed\": " << sm.shed.load()
             << ", \"completed\": " << sm.completed.load()
             << ", \"backlog\": " << sig.backlog
             << ", \"window_p99_ms\": " << p99_buf
             << ", \"rate_limit\": " << rate_buf
             << ", \"shed_level\": " << gate.shed_level()
             << ", \"overloaded\": " << (overloaded ? "true" : "false")
             << ", \"footprint\": {\"commits\": " << fp_commits
             << ", \"mean_width\": " << mean_buf
             << ", \"single_stripe\": " << ad.footprint_single()
             << ", \"multi_stripe\": " << ad.footprint_multi()
             << ", \"width_hist\": [";
        for (std::size_t b = 0; b < 6; ++b)
          line << (b ? ", " : "") << ad.footprint_width_bucket(b);
        line << "]}";
        if (drift) {
          line << ", \"drift\": {\"evaluations\": " << drift->evaluations()
               << ", \"triggers\": " << drift->triggers() << ", \"fired\": [";
          const std::vector<std::string> fired = drift->fired_names();
          for (std::size_t f = 0; f < fired.size(); ++f)
            line << (f ? ", " : "") << "\"" << fired[f] << "\"";
          line << "]}";
        }
        line << "}}";
        std::fprintf(stderr, "%s\n", line.str().c_str());
        flight.note_status_line(line.str());
      }
    }
  };

  auto watchdog_fn = [&] {
    std::uint64_t last_completed = sm.completed.load();
    std::uint64_t last_progress_ns = util::now_ns();
    const std::uint64_t stall_ns = cfg_.watchdog_stall_ms * 1'000'000ULL;
    while (!sh.done.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      const std::uint64_t completed = sm.completed.load();
      const std::uint64_t now = util::now_ns();
      std::uint64_t pending = sh.inflight.load(std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lk(sh.mu);
        pending += sh.queue.size();
      }
      if (completed != last_completed || pending == 0) {
        // Progress, or legitimately idle (an idle server is not stalled).
        last_completed = completed;
        last_progress_ns = now;
        continue;
      }
      if (now - last_progress_ns >= stall_ns) {
        sm.watchdog_stalls.add();
        sh.failed.store(true, std::memory_order_release);
        std::fprintf(stderr,
                     "server watchdog: NO COMPLETIONS for %llu ms with %llu "
                     "requests pending — dumping metrics and trace ring\n",
                     static_cast<unsigned long long>(cfg_.watchdog_stall_ms),
                     static_cast<unsigned long long>(pending));
        std::fputs(metrics::snapshot_json().c_str(), stderr);
        std::fputs("\n", stderr);
        std::fputs(obs::trace::drain_json().c_str(), stderr);
        std::fputs("\n", stderr);
        flight_dump("watchdog-stall");
        return;
      }
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(cfg_.workers);
  for (std::uint32_t i = 0; i < cfg_.workers; ++i)
    workers.emplace_back(worker_fn);
  std::thread controller_thread(controller_fn);
  std::thread watchdog_thread(watchdog_fn);

  // ---- arrival loop (open loop: this thread) --------------------------
  LoadGenerator gen(cfg_.load);
  const std::uint64_t end_ns =
      start_ns + static_cast<std::uint64_t>(cfg_.duration_s * 1e9);
  std::uint64_t offered = 0;
  std::uint64_t admitted_by_class[kRequestClassCount] = {};
  while (!sh.failed.load(std::memory_order_acquire)) {
    Request req = gen.next(start_ns);
    if (req.scheduled_ns >= end_ns) break;
    const std::uint64_t now = util::now_ns();
    if (req.scheduled_ns > now + 50'000) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(req.scheduled_ns - now));
    }
    ++offered;
    bool admit = gate.admit(req.cls, req.scheduled_ns);
    if (admit) {
      std::size_t backlog;
      {
        std::lock_guard<std::mutex> lk(sh.mu);
        backlog = sh.queue.size();
        if (backlog < cfg_.max_backlog) sh.queue.push_back(req);
      }
      if (backlog >= cfg_.max_backlog) {
        admit = false;  // hard cap: shed at the door
      } else {
        sm.backlog.add(1);
        sm.admitted.add();
        ++admitted_by_class[static_cast<std::size_t>(req.cls)];
        sh.cv.notify_one();
      }
    }
    if (!admit) {
      sm.shed.add();
      sm.shed_by_class[static_cast<std::size_t>(req.cls)].add();
    }
  }

  // ---- drain and shutdown ---------------------------------------------
  while (!sh.failed.load(std::memory_order_acquire)) {
    std::size_t backlog;
    {
      std::lock_guard<std::mutex> lk(sh.mu);
      backlog = sh.queue.size();
    }
    if (backlog == 0 && sh.inflight.load(std::memory_order_relaxed) == 0)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  {
    std::lock_guard<std::mutex> lk(sh.mu);
    sh.stop_workers = true;
    if (sh.failed.load(std::memory_order_acquire)) sh.queue.clear();
  }
  sh.cv.notify_all();
  for (auto& w : workers) w.join();
  sh.done.store(true, std::memory_order_release);
  controller_thread.join();
  watchdog_thread.join();

  // ---- report ----------------------------------------------------------
  rep.duration_s = static_cast<double>(util::now_ns() - start_ns) / 1e9;
  rep.offered = offered;
  rep.admitted = sm.admitted.load();
  rep.shed = sm.shed.load();
  rep.completed = sm.completed.load();
  rep.slo_misses = sm.slo_misses.load();
  rep.watchdog_stalls = sm.watchdog_stalls.load();
  rep.overload_ticks = controller.overload_ticks();
  rep.healthy_ticks = controller.healthy_ticks();
  rep.final_rate_limit = gate.rate();
  {
    const util::LatencyHistogram all = tracker.total_all();
    rep.p50_ns = all.p50();
    rep.p99_ns = all.p99();
    rep.p999_ns = all.quantile(0.999);
  }
  for (std::size_t i = 0; i < kRequestClassCount; ++i) {
    const util::LatencyHistogram h =
        tracker.total(static_cast<RequestClass>(i));
    Report::ClassStats& c = rep.per_class[i];
    c.admitted = admitted_by_class[i];
    c.shed = sm.shed_by_class[i].load();
    c.completed = h.count();
    c.p50_ns = h.p50();
    c.p99_ns = h.p99();
    c.p999_ns = h.quantile(0.999);
  }

  // ---- end-of-soak invariants -----------------------------------------
  stm::StmEnv& env = rt.env();
  rep.clock = env.clock().total();
  rep.committed_count = env.queue().committed_count();
  rep.multi_commits = env.queue().multi_commits();
  for (unsigned s = 0; s < env.stripes(); ++s) {
    rep.stripe_clock.push_back(env.clock().current(s));
    rep.stripe_committed.push_back(env.queue().stripe_committed(s));
  }
  {
    std::uint64_t sum = 0;
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(obs::AbortCause::kCount); ++i) {
      sum += acc.of(static_cast<obs::AbortCause>(i)).load();
    }
    rep.cause_sum_minus_deadline =
        sum - acc.of(obs::AbortCause::kDeadlineExceeded).load();
  }
  rep.attempt_aborts = acc.attempt_aborts.load();
  {
    util::EpochDomain::Guard guard(env.epochs());
    auto note_len = [&](stm::VBoxImpl& b) {
      rep.max_version_list =
          std::max<std::uint64_t>(rep.max_version_list, b.permanent_length());
    };
    map.for_each_box(note_len);
    index.for_each_box(note_len);
  }
  // Quiescent trim: all traffic has stopped, so min_active == clock per
  // stripe and every box must compress to a single permanent version.
  // Versions are stripe-local, so each box trims against its own stripe's
  // bound. The B+-tree index trims the same way (its boxes carry a value
  // reclaimer, so trimming also frees superseded tree nodes), and its
  // merged-away boxes are reclaimable now that no snapshot is live.
  std::array<stm::Version, stm::kMaxStripes> min_snapshot;
  for (unsigned s = 0; s < env.stripes(); ++s)
    min_snapshot[s] = env.registry().min_active(s, env.clock().current(s));
  auto trim_box = [&](stm::VBoxImpl& b) {
    b.trim(min_snapshot[env.queue().stripe_of_box(&b)], env.epochs());
  };
  map.for_each_box(trim_box);
  index.for_each_box(trim_box);
  index.gc_retired_boxes(env);
  {
    util::EpochDomain::Guard guard(env.epochs());
    auto note_trimmed = [&](stm::VBoxImpl& b) {
      rep.max_version_list_trimmed = std::max<std::uint64_t>(
          rep.max_version_list_trimmed, b.permanent_length());
    };
    map.for_each_box(note_trimmed);
    index.for_each_box(note_trimmed);
  }
  env.epochs().drain_for_shutdown();
  rep.ebr_pending_final = env.epochs().pending_count();
  rep.chaos_fires =
      cfg_.chaos ? util::fp::Controller::instance().total_fires() : 0;

  auto fail = [&](const char* what) {
    if (rep.failure.empty()) rep.failure = what;
  };
  if (rep.watchdog_stalls != 0) fail("watchdog stall");
  if (sh.exec_errors.load() != 0) fail("request execution threw");
  if (cfg_.check_invariants) {
    // Armed only via ServerConfig::inject_invariant_failure: the
    // deterministic trigger for the failure -> flight-bundle path.
    if (TXF_FP_FIRES("server.soak.invariant"))
      fail("injected invariant violation (failpoint)");
    // Per-stripe sequences are gap-free: every clock component equals the
    // number of committed writers that advanced it (single-stripe batches
    // plus multi-stripe commits touching the stripe). The component sum
    // equals the same identity in aggregate — a multi-stripe commit counts
    // once per write stripe on both sides.
    std::uint64_t stripe_sum = 0;
    for (unsigned s = 0; s < rep.stripe_clock.size(); ++s) {
      stripe_sum += rep.stripe_committed[s];
      if (rep.stripe_clock[s] != rep.stripe_committed[s])
        fail("stripe clock != stripe committed count (gap in stripe "
             "sequence)");
    }
    if (rep.clock != stripe_sum)
      fail("clock != committed count (gap in version assignment)");
    if (rep.cause_sum_minus_deadline != rep.attempt_aborts)
      fail("abort-cause accounting identity violated");
    if (rep.max_version_list > 1024)
      fail("version-list leak: untrimmed chain beyond bound");
    if (rep.max_version_list_trimmed > 2)
      fail("version-list leak: chain survived quiescent trim");
    if (rep.ebr_pending_final > 256) fail("EBR backlog not drained");
    if (cfg_.chaos && rep.chaos_fires == 0)
      fail("chaos armed but no failpoint ever fired");
  }
  rep.ok = rep.failure.empty();

  if (drift) {
    rep.drift_evaluations = drift->evaluations();
    rep.drift_triggers = drift->triggers();
    rep.drift_fired = drift->fired_ever_names();
  }
  // A failed soak always leaves a bundle (watchdog stalls leave two: the
  // mid-flight capture from the watchdog thread plus this post-drain one).
  if (!rep.ok) {
    flight_dump(rep.failure);
  } else if (cfg_.flight_dump_at_end) {
    flight_dump("end-of-soak");
  }
  rep.flight_bundles = flight.bundle_paths();
  return rep;
}

}  // namespace txf::server
