// Open-loop load generation: Poisson arrivals over Zipf-distributed keys
// with a mixed request-class profile and an optional rate spike window.
//
// The schedule is a pure function of (seed, config, elapsed time) — the
// generator owns no thread. The server's arrival loop asks for the next
// arrival, sleeps until its timestamp, and stamps the request with the
// *scheduled* time, so latency includes any lag the arrival loop itself
// accumulates (open-loop honesty; see request.hpp).
#pragma once

#include <cstdint>

#include "server/request.hpp"
#include "util/xoshiro.hpp"
#include "util/zipf.hpp"

namespace txf::server {

struct LoadGenConfig {
  double rate_hz = 3000.0;   // base offered load
  double spike_factor = 1.0; // rate multiplier inside the spike window
  double spike_start_s = -1.0;
  double spike_end_s = -1.0;
  std::uint64_t keyspace = 1u << 16;
  double zipf_theta = 0.9;   // YCSB-ish skew
  // Class mix in percent (must sum to 100).
  std::uint32_t mix_read = 60;
  std::uint32_t mix_write = 20;
  std::uint32_t mix_rmw = 15;
  std::uint32_t mix_multi = 5;
  std::uint32_t mix_scan = 0;   // range scans over the B+-tree index
  std::uint64_t scan_span = 256;  // mean scan width in keys
  std::uint64_t seed = 0x5eedul;
};

class LoadGenerator {
 public:
  explicit LoadGenerator(const LoadGenConfig& cfg)
      : cfg_(cfg), rng_(cfg.seed), zipf_(cfg.keyspace, cfg.zipf_theta) {}

  /// Offered rate at `elapsed_s` (the spike window multiplies the base).
  double rate_at(double elapsed_s) const noexcept {
    const bool in_spike = cfg_.spike_factor > 1.0 &&
                          elapsed_s >= cfg_.spike_start_s &&
                          elapsed_s < cfg_.spike_end_s;
    return in_spike ? cfg_.rate_hz * cfg_.spike_factor : cfg_.rate_hz;
  }

  /// Advance the schedule: returns the next arrival, whose scheduled_ns is
  /// strictly after the previous one (exponential inter-arrival at the
  /// rate in force when it was drawn — a Poisson process with a piecewise
  /// constant rate). `start_ns` anchors elapsed time for the spike window.
  Request next(std::uint64_t start_ns);

 private:
  RequestClass pick_class();

  LoadGenConfig cfg_;
  util::Xoshiro256 rng_;
  util::ZipfGenerator zipf_;
  std::uint64_t next_arrival_ns_ = 0;  // 0 = schedule not started
};

}  // namespace txf::server
