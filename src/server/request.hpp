// Request model of the long-lived KV/OLTP service harness (src/server/).
//
// The server fronts one Runtime + TxMap keyspace (plus an ordered TxBTree
// index for range scans) with five request classes of increasing weight.
// Classes double as *shedding priorities*: under overload the admission
// controller sheds the heaviest/least-critical class first (kScan), then
// kMulti, then kRmw, then kWrite; point reads are the last traffic
// standing. See admission.hpp for the policy.
#pragma once

#include <cstdint>

namespace txf::server {

/// Request classes, ordered by shedding priority: higher enum value =
/// shed earlier. (kRead is shed only at the maximum shed level.)
enum class RequestClass : std::uint8_t {
  kRead = 0,   // point read of one key
  kWrite,      // blind point write
  kRmw,        // read-modify-write of one key
  kMulti,      // multi-key transaction using transactional futures
  kScan,       // ordered range scan over the B+-tree index (heaviest)
  kCount
};

inline constexpr std::size_t kRequestClassCount =
    static_cast<std::size_t>(RequestClass::kCount);

inline const char* request_class_name(RequestClass c) noexcept {
  switch (c) {
    case RequestClass::kRead: return "read";
    case RequestClass::kWrite: return "write";
    case RequestClass::kRmw: return "rmw";
    case RequestClass::kMulti: return "multi";
    case RequestClass::kScan: return "scan";
    case RequestClass::kCount: break;
  }
  return "unknown";
}

/// One open-loop request. `scheduled_ns` is the Poisson arrival time on the
/// driver's monotonic clock: service latency is measured from here, so time
/// spent queued behind an overloaded server counts against the SLO — the
/// property that makes open-loop load honest about overload (closed-loop
/// generators self-throttle and hide it).
struct Request {
  std::uint64_t scheduled_ns = 0;
  std::uint64_t key = 0;
  std::uint64_t aux = 0;  // kMulti: second key base; kScan: scan width;
                          // value salt otherwise
  RequestClass cls = RequestClass::kRead;
};

}  // namespace txf::server
