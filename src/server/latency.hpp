// Windowed per-class latency tracking for the service harness.
//
// Two horizons per class: a cumulative histogram (the end-of-run report:
// p50/p99/p99.9 over all admitted traffic) and a *window* histogram the
// admission controller drains every tick — "recovering p99" is a statement
// about the last few hundred milliseconds, not the whole run.
//
// A mutex per record keeps this trivially correct; the harness completes at
// most a few hundred thousand requests per second, so an uncontended lock
// (~20 ns) is noise against a transactional request (microseconds).
#pragma once

#include <array>
#include <cstdint>
#include <mutex>

#include "server/request.hpp"
#include "util/histogram.hpp"

namespace txf::server {

class LatencyTracker {
 public:
  void record(RequestClass cls, std::uint64_t ns) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = per_class_[static_cast<std::size_t>(cls)];
    slot.total.record(ns);
    slot.window.record(ns);
  }

  /// Merge-and-reset the controller's tick window across all classes.
  util::LatencyHistogram drain_window() {
    std::lock_guard<std::mutex> lock(mu_);
    util::LatencyHistogram merged;
    for (auto& slot : per_class_) {
      merged.merge(slot.window);
      slot.window = util::LatencyHistogram{};
    }
    return merged;
  }

  util::LatencyHistogram total(RequestClass cls) const {
    std::lock_guard<std::mutex> lock(mu_);
    return per_class_[static_cast<std::size_t>(cls)].total;
  }

  /// All classes merged (the admitted-traffic SLO statistic).
  util::LatencyHistogram total_all() const {
    std::lock_guard<std::mutex> lock(mu_);
    util::LatencyHistogram merged;
    for (const auto& slot : per_class_) merged.merge(slot.total);
    return merged;
  }

 private:
  struct Slot {
    util::LatencyHistogram total;
    util::LatencyHistogram window;
  };

  mutable std::mutex mu_;
  std::array<Slot, kRequestClassCount> per_class_{};
};

}  // namespace txf::server
