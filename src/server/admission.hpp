// Admission control and overload shedding for the service harness.
//
// Two cooperating pieces:
//
//  * AdmissionGate — a token bucket consulted by the load generator for
//    every arrival. Its rate and the current shed level are atomics
//    written by the controller; the bucket state itself is touched only by
//    the (single) arrival thread, so admission costs no locks.
//
//  * OverloadController — the policy loop (pure logic, threadless: the
//    server calls tick() periodically, tests drive it directly). It reads
//    the abort-cause taxonomy (conflict/deadline share of attempts), the
//    commit-queue depth, the server's dispatch backlog and the windowed
//    p99, and adapts the gate:
//
//      overloaded  => clamp the token rate toward the observed service
//                     rate (multiplicative decrease, never below the
//                     floor) and — if overload persists — raise the shed
//                     level so the lowest-priority class is dropped first
//                     (kMulti, then kRmw, then kWrite; reads only at the
//                     extreme).
//      recovering  => after a streak of healthy ticks (window p99 back
//                     inside the SLO, backlog drained, abort share low)
//                     lower the shed level one step and grow the rate
//                     multiplicatively (AIMD-style probing for capacity).
//
//    The rationale is the PAPERS.md line on concurrency cost: past the
//    contention knee, *adding* offered load only converts throughput into
//    aborts and queueing — a rising conflict/deadline share is the
//    taxonomy's way of saying the knee is behind us, and the only winning
//    move is to admit less, not retry more.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "obs/metrics.hpp"
#include "server/request.hpp"

namespace txf::server {

struct AdmissionConfig {
  /// Master switch: disabled, the gate admits everything (the ablation the
  /// bench gate compares against).
  bool enabled = true;
  /// Token rate bounds (requests/second). The initial rate is deliberately
  /// "effectively open": the controller's job is to discover the real
  /// capacity, not ours to guess it.
  double initial_rate = 1e6;
  double min_rate = 200.0;
  double max_rate = 2e6;
  /// Multiplicative decrease on an overloaded tick / increase on a healthy
  /// streak (AIMD with a multiplicative probe up — the service-capacity
  /// clamp below makes the decrease converge in one tick).
  double decrease = 0.7;
  double increase = 1.10;
  /// Bucket burst: this many seconds worth of tokens may accumulate.
  double burst_s = 0.05;

  /// SLO on the admitted-traffic p99 (nanoseconds). Overload is declared
  /// when the *window* p99 exceeds it; recovery needs p99 back under
  /// half of it (hysteresis).
  std::uint64_t slo_p99_ns = 100'000'000;  // 100 ms
  /// Conflict+deadline share of attempts above which the taxonomy alone
  /// declares overload (abort-retry livelock territory).
  double abort_share_high = 0.5;
  /// Commit-spine depth overload thresholds. The spine is sharded
  /// (stm/commit_spine.hpp), so the controller reads TWO depths: the sum
  /// across stripes (stm.commit.queue_depth — total commit work in flight)
  /// and the hottest single stripe. A skewed keyspace can pile one stripe
  /// to a harmful depth while the sum still looks comfortable, so either
  /// bound tripping declares overload.
  std::int64_t commit_depth_high = 64;
  std::int64_t commit_stripe_depth_high = 48;
  /// Dispatch-backlog overload threshold (requests admitted but not yet
  /// executing).
  std::uint64_t backlog_high = 256;
  /// Consecutive overloaded ticks before the shed level rises another
  /// step, and consecutive healthy ticks before it drops one.
  std::uint32_t escalate_after = 2;
  std::uint32_t relax_after = 6;
};

/// Token-bucket gate + class shedding mask. Thread contract: admit() is
/// called by one thread (the load generator); set_rate()/set_shed_level()
/// by the controller; shed_level()/rate() by anyone.
class AdmissionGate {
 public:
  explicit AdmissionGate(const AdmissionConfig& cfg)
      : cfg_(cfg), rate_mhz_(to_mhz(cfg.initial_rate)) {}

  /// Should this arrival be admitted? `now_ns` is the driver's monotonic
  /// clock. Refills the bucket, applies the class mask, then spends one
  /// token. Never blocks: an open-loop generator drops, it does not queue.
  bool admit(RequestClass cls, std::uint64_t now_ns);

  /// Shed level L drops the L highest-numbered request classes (kMulti
  /// first). Level 0 admits everything.
  void set_shed_level(std::uint32_t level) noexcept {
    shed_level_.store(level, std::memory_order_relaxed);
  }
  std::uint32_t shed_level() const noexcept {
    return shed_level_.load(std::memory_order_relaxed);
  }
  static bool class_shed_at(RequestClass cls, std::uint32_t level) noexcept {
    return static_cast<std::uint32_t>(kRequestClassCount) -
               static_cast<std::uint32_t>(cls) <=
           level;
  }

  void set_rate(double per_s) noexcept {
    rate_mhz_.store(to_mhz(per_s), std::memory_order_relaxed);
  }
  double rate() const noexcept {
    return static_cast<double>(rate_mhz_.load(std::memory_order_relaxed)) /
           1e6;
  }

 private:
  /// Tokens-per-nanosecond needs fractions; store rate as integer
  /// micro-tokens-per-second so the hot path stays a relaxed atomic load.
  static std::uint64_t to_mhz(double per_s) noexcept {
    return static_cast<std::uint64_t>(std::max(per_s, 0.0) * 1e6);
  }

  const AdmissionConfig cfg_;
  std::atomic<std::uint64_t> rate_mhz_;
  std::atomic<std::uint32_t> shed_level_{0};
  // Bucket state: single-writer (the arrival thread).
  double tokens_ = 0.0;
  std::uint64_t last_refill_ns_ = 0;
};

/// Signals sampled once per controller tick. All deltas are over the tick
/// window; shares are computed here so tests can feed raw counts.
struct OverloadSignals {
  std::uint64_t window_p99_ns = 0;   // 0 = no completions this window
  std::uint64_t completed = 0;       // requests finished this window
  double window_s = 0.0;             // tick duration
  std::uint64_t attempts = 0;        // tx attempts this window (commits+fails)
  std::uint64_t conflict_aborts = 0; // conflict-shaped causes this window
  std::uint64_t deadline_aborts = 0; // deadline escalations this window
  std::int64_t commit_queue_depth = 0;      // sum across stripes
  std::int64_t commit_queue_depth_max = 0;  // hottest single stripe
  std::uint64_t backlog = 0;         // admitted-but-not-executing requests
};

/// The policy loop (threadless; see file comment).
class OverloadController {
 public:
  OverloadController(const AdmissionConfig& cfg, AdmissionGate& gate);

  /// One control decision. Returns true when this tick was classified as
  /// overloaded (the server uses it to trigger backlog revocation).
  bool tick(const OverloadSignals& s);

  std::uint64_t overload_ticks() const noexcept {
    return overload_ticks_.load();
  }
  std::uint64_t healthy_ticks() const noexcept { return healthy_ticks_.load(); }

 private:
  const AdmissionConfig cfg_;
  AdmissionGate& gate_;
  std::uint32_t overload_streak_ = 0;
  std::uint32_t healthy_streak_ = 0;

  obs::Counter overload_ticks_;
  obs::Counter healthy_ticks_;
  obs::Gauge rate_gauge_;
  obs::Gauge shed_level_gauge_;
  obs::Registration reg_;
};

}  // namespace txf::server
