#include "workloads/synthetic/synthetic.hpp"

#include <atomic>

namespace txf::workloads::synthetic {

namespace {

/// Sequential slice of the read-only body: `count` random reads through a
/// transactional context, `iter` CPU steps between accesses.
template <typename Ctx>
std::uint64_t read_slice_tx(Ctx& ctx, SyntheticArray& array,
                            std::uint64_t seed, std::size_t count,
                            std::uint64_t iter) {
  util::Xoshiro256 rng(seed);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t idx =
        static_cast<std::size_t>(rng.next_bounded(array.size()));
    sum += array.box(idx).get(ctx);
    sum += cpu_work(iter, sum);
  }
  return sum;
}

std::uint64_t read_slice_raw(SyntheticArray& array, std::uint64_t seed,
                             std::size_t count, std::uint64_t iter) {
  util::Xoshiro256 rng(seed);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t idx =
        static_cast<std::size_t>(rng.next_bounded(array.size()));
    sum += array.raw(idx);
    sum += cpu_work(iter, sum);
  }
  return sum;
}

}  // namespace

std::uint64_t run_readonly_tx(core::Runtime& rt, SyntheticArray& array,
                              util::Xoshiro256& rng,
                              const ReadOnlyParams& p) {
  const std::size_t jobs = p.jobs == 0 ? 1 : p.jobs;
  const std::size_t slice = p.txlen / jobs;
  // Fresh seeds per transaction; identical across retries is unnecessary
  // (reads are uniform either way).
  std::vector<std::uint64_t> seeds(jobs);
  for (auto& s : seeds) s = rng.next();

  return core::atomically(rt, [&](core::TxCtx& ctx) {
    std::uint64_t sum = 0;
    if (jobs == 1) {
      return read_slice_tx(ctx, array, seeds[0], p.txlen, p.iter);
    }
    std::vector<core::TxFuture<std::uint64_t>> futs;
    futs.reserve(jobs - 1);
    for (std::size_t j = 0; j + 1 < jobs; ++j) {
      futs.push_back(ctx.submit([&array, seed = seeds[j], slice,
                                 iter = p.iter](core::TxCtx& c) {
        return read_slice_tx(c, array, seed, slice, iter);
      }));
    }
    // The continuation executes the final slice itself.
    sum += read_slice_tx(ctx, array, seeds[jobs - 1],
                         p.txlen - slice * (jobs - 1), p.iter);
    for (auto& f : futs) sum += f.get(ctx);
    return sum;
  });
}

void run_update_tx(core::Runtime& rt, SyntheticArray& array,
                   util::Xoshiro256& rng, const UpdateParams& p) {
  const std::size_t jobs = p.jobs == 0 ? 1 : p.jobs;
  const std::size_t slice = p.prefix_len / jobs;
  std::vector<std::uint64_t> seeds(jobs);
  for (auto& s : seeds) s = rng.next();
  // Hot-spot targets chosen uniformly with replacement (paper §V); hot
  // items occupy the first `hot_items` slots of the array.
  std::vector<std::size_t> targets(p.hot_writes);
  for (auto& t : targets)
    t = static_cast<std::size_t>(rng.next_bounded(p.hot_items));

  core::atomically(rt, [&](core::TxCtx& ctx) {
    // Read prefix, parallelized across futures.
    std::uint64_t sum = 0;
    std::vector<core::TxFuture<std::uint64_t>> futs;
    if (jobs > 1) {
      futs.reserve(jobs - 1);
      for (std::size_t j = 0; j + 1 < jobs; ++j) {
        futs.push_back(ctx.submit([&array, seed = seeds[j], slice,
                                   iter = p.iter](core::TxCtx& c) {
          return read_slice_tx(c, array, seed, slice, iter);
        }));
      }
    }
    sum += read_slice_tx(ctx, array, seeds[jobs - 1],
                         p.prefix_len - slice * (jobs - 1), p.iter);
    for (auto& f : futs) sum += f.get(ctx);
    // Hot-spot update phase (continuation).
    for (const std::size_t t : targets) {
      array.box(t).put(ctx, array.box(t).get(ctx) + (sum | 1));
    }
  });
}

void run_siblings_collide_tx(core::Runtime& rt, SyntheticArray& array,
                             util::Xoshiro256& rng,
                             const SiblingsCollideParams& p) {
  const std::size_t jobs = p.jobs < 2 ? 2 : p.jobs;
  std::vector<std::uint64_t> seeds(jobs);
  for (auto& s : seeds) s = rng.next();

  // Every sibling's RMW slice over the shared hot set. Strong ordering
  // forces sibling i+1 to observe sibling i's writes, so letting them race
  // is almost guaranteed tree-order abort-retry; running them in pre-order
  // (or inline) makes the same accesses conflict-free.
  auto rmw_slice = [&array, hot = p.hot_items, writes = p.writes,
                    iter = p.iter](auto& ctx, std::uint64_t seed) {
    util::Xoshiro256 r(seed);
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < writes; ++i) {
      const std::size_t idx = static_cast<std::size_t>(r.next_bounded(hot));
      const std::uint64_t v = array.box(idx).get(ctx);
      sum += cpu_work(iter, v ^ seed);
      array.box(idx).put(ctx, v + (sum | 1));
    }
    return sum;
  };

  core::atomically(rt, [&](core::TxCtx& ctx) {
    std::vector<core::TxFuture<std::uint64_t>> futs;
    futs.reserve(jobs - 1);
    for (std::size_t j = 0; j + 1 < jobs; ++j) {
      futs.push_back(ctx.submit(
          [&rmw_slice, seed = seeds[j]](core::TxCtx& c) {
            return rmw_slice(c, seed);
          }));
    }
    std::uint64_t sum = rmw_slice(ctx, seeds[jobs - 1]);
    for (auto& f : futs) sum += f.get(ctx);
    (void)sum;
  });
}

std::uint64_t run_readonly_plain(sched::ThreadPool& pool,
                                 SyntheticArray& array,
                                 util::Xoshiro256& rng,
                                 const ReadOnlyParams& p) {
  const std::size_t jobs = p.jobs == 0 ? 1 : p.jobs;
  const std::size_t slice = p.txlen / jobs;
  std::vector<std::uint64_t> seeds(jobs);
  for (auto& s : seeds) s = rng.next();
  if (jobs == 1) return read_slice_raw(array, seeds[0], p.txlen, p.iter);

  std::vector<std::uint64_t> results(jobs - 1, 0);
  std::atomic<std::size_t> done{0};
  for (std::size_t j = 0; j + 1 < jobs; ++j) {
    pool.submit([&array, &results, &done, j, seed = seeds[j], slice,
                 iter = p.iter] {
      results[j] = read_slice_raw(array, seed, slice, iter);
      done.fetch_add(1, std::memory_order_acq_rel);
    });
  }
  std::uint64_t sum = read_slice_raw(array, seeds[jobs - 1],
                                     p.txlen - slice * (jobs - 1), p.iter);
  while (done.load(std::memory_order_acquire) != jobs - 1) {
    pool.try_run_one();
  }
  for (const auto r : results) sum += r;
  return sum;
}

std::uint64_t run_readonly_seq(SyntheticArray& array, util::Xoshiro256& rng,
                               const ReadOnlyParams& p) {
  return read_slice_raw(array, rng.next(), p.txlen, p.iter);
}

}  // namespace txf::workloads::synthetic
