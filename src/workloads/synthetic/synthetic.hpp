// Synthetic benchmark (paper §V, Figs. 5a-5c).
//
// Transactions perform a configurable number of read/write accesses over an
// array of VBoxes (1M elements in the paper), with a tunable CPU-bound loop
// of `iter` register operations between consecutive accesses. The
// conflict-prone variant appends 10 updates on a set of 20 hot-spot items.
// Each transaction can be parallelized over `jobs` ways (jobs-1 futures
// plus the continuation), and a non-transactional plain-future twin
// isolates the inherent cost of future-based parallelism (Fig. 5a).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/api.hpp"
#include "sched/thread_pool.hpp"
#include "stm/vbox.hpp"
#include "util/xoshiro.hpp"

namespace txf::workloads::synthetic {

/// CPU-bound filler: `iters` register-arithmetic steps. Returns a value the
/// caller must consume (defeats dead-code elimination).
inline std::uint64_t cpu_work(std::uint64_t iters,
                              std::uint64_t seed) noexcept {
  std::uint64_t x = seed | 1;
  for (std::uint64_t i = 0; i < iters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

class SyntheticArray {
 public:
  explicit SyntheticArray(std::size_t n) : raw_(n) {
    for (std::size_t i = 0; i < n; ++i) {
      boxes_.emplace_back(static_cast<std::uint64_t>(i));
      raw_[i] = static_cast<std::uint64_t>(i);
    }
  }

  std::size_t size() const noexcept { return raw_.size(); }
  stm::VBox<std::uint64_t>& box(std::size_t i) { return boxes_[i]; }
  /// Non-transactional mirror for the plain-future baseline.
  std::uint64_t raw(std::size_t i) const noexcept { return raw_[i]; }

 private:
  std::deque<stm::VBox<std::uint64_t>> boxes_;
  std::vector<std::uint64_t> raw_;
};

struct ReadOnlyParams {
  std::size_t txlen = 1000;  // memory accesses per transaction
  std::uint64_t iter = 0;    // CPU iterations between accesses
  std::size_t jobs = 1;      // 1 = no futures; j = j-1 futures + continuation
};

struct UpdateParams {
  std::size_t prefix_len = 1000;  // read prefix length
  std::uint64_t iter = 1000;      // CPU iterations between accesses
  std::size_t jobs = 1;
  std::size_t hot_items = 20;   // hot-spot set size
  std::size_t hot_writes = 10;  // updates per transaction
};

/// One read-only transaction (JTF). Returns a checksum.
std::uint64_t run_readonly_tx(core::Runtime& rt, SyntheticArray& array,
                              util::Xoshiro256& rng,
                              const ReadOnlyParams& p);

/// One conflict-prone update transaction (JTF).
void run_update_tx(core::Runtime& rt, SyntheticArray& array,
                   util::Xoshiro256& rng, const UpdateParams& p);

/// Siblings-collide workload: every sibling future (and the continuation)
/// read-modify-writes the same small hot set, with `iter` CPU steps of
/// padding, so parallel siblings conflict with near-certainty while the
/// bodies still look "profitable" to a body-size-only controller. This is
/// the shape where predefined-order serialization (the adaptive
/// controller's kOrdered lane) beats parallel abort-retry churn — and the
/// isolation bench for ISSUE 8's conflict-aware demotion.
struct SiblingsCollideParams {
  std::size_t jobs = 4;        // jobs-1 futures + continuation, all colliding
  std::size_t hot_items = 8;   // shared read-modify-write set
  std::size_t writes = 4;      // RMWs per sibling
  std::uint64_t iter = 2000;   // CPU padding between RMWs (body "size")
};
void run_siblings_collide_tx(core::Runtime& rt, SyntheticArray& array,
                             util::Xoshiro256& rng,
                             const SiblingsCollideParams& p);

/// One "transaction" using plain (non-transactional) futures over the raw
/// array — the Fig. 5a comparator that isolates inherent future overheads.
std::uint64_t run_readonly_plain(sched::ThreadPool& pool,
                                 SyntheticArray& array,
                                 util::Xoshiro256& rng,
                                 const ReadOnlyParams& p);

/// Purely sequential, non-transactional run (normalization baseline).
std::uint64_t run_readonly_seq(SyntheticArray& array, util::Xoshiro256& rng,
                               const ReadOnlyParams& p);

}  // namespace txf::workloads::synthetic
