// TPC-C (paper §V, Figs. 6d-6f): an OLTP warehouse-supplier workload
// rebuilt on txfutures.
//
// Scaled-down but structurally faithful schema: warehouses, 10 districts
// per warehouse, customers per district, an item catalog and per-warehouse
// stock. Five transaction profiles — NewOrder, Payment, OrderStatus,
// Delivery, StockLevel — plus the paper's adaptation: a long read-mostly
// analytics transaction ("total money raised by the warehouse", §V) whose
// scan cycle is parallelized with transactional futures.
//
// Contention characteristics mirror the original: Payment and NewOrder
// both hit the warehouse/district YTD and next-order-id boxes, which makes
// the workload inherently non-scalable with many concurrent top-level
// transactions — exactly the regime where the paper shows futures winning.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>

#include "containers/tx_btree.hpp"
#include "containers/tx_counter.hpp"
#include "core/api.hpp"
#include "util/zipf.hpp"

namespace txf::workloads::tpcc {

struct WarehouseRow {
  stm::VBox<long> ytd{0L};
};

struct DistrictRow {
  stm::VBox<long> ytd{0L};
  stm::VBox<int> next_o_id{1};
};

struct CustomerTRow {
  stm::VBox<long> balance{-10L};
  stm::VBox<long> ytd_payment{10L};
  stm::VBox<int> payment_cnt{1};
  stm::VBox<int> delivery_cnt{0};
};

struct ItemRow {
  int price = 0;  // immutable catalog data
};

struct StockRow {
  stm::VBox<int> quantity{0};
  stm::VBox<long> ytd{0L};
  stm::VBox<int> order_cnt{0};
};

inline constexpr int kMaxOrderLines = 15;

struct OrderRow {
  int w = 0, d = 0, o_id = 0, c_id = 0;  // immutable after insert
  int n_lines = 0;
  int line_item[kMaxOrderLines] = {};
  int line_qty[kMaxOrderLines] = {};
  stm::VBox<int> carrier_id{0};
  stm::VBox<long> total{0L};
};

struct TpccParams {
  int warehouses = 1;
  int districts = 10;
  int customers_per_district = 128;
  int items = 1024;
  std::size_t jobs = 1;       // futures parallelism of the analytics scan
  int analytics_pct = 10;     // % of transactions running the long scan
  std::size_t max_orders = 1 << 18;  // order-table capacity
};

class TpccDB {
 public:
  explicit TpccDB(const TpccParams& p);

  const TpccParams& params() const noexcept { return params_; }

  void populate(core::Runtime& rt, util::Xoshiro256& rng);

  /// The five classic profiles. Each runs one top-level transaction.
  void new_order(core::Runtime& rt, util::Xoshiro256& rng);
  void payment(core::Runtime& rt, util::Xoshiro256& rng);
  long order_status(core::Runtime& rt, util::Xoshiro256& rng);
  void delivery(core::Runtime& rt, util::Xoshiro256& rng);
  long stock_level(core::Runtime& rt, util::Xoshiro256& rng);

  /// StockLevel at a fixed (warehouse, district, threshold): the ordered
  /// district/stock join — scan the district's last 20 orders in the order
  /// B+-tree, collect their distinct item ids, count items whose stock is
  /// below the threshold. This is the TxBTree::scan path run_mix exercises.
  long stock_level_at(core::Runtime& rt, int w, int d, int threshold);

  /// Sequential oracle for stock_level_at: point-gets per order id, no
  /// range scan, no futures. Tests assert result-set equivalence.
  long stock_level_reference(core::Runtime& rt, int w, int d, int threshold);

  /// The paper's long transaction: total money raised by a warehouse
  /// (district YTDs + customer balances + payments), with the customer scan
  /// split across `params.jobs` ways via transactional futures.
  long warehouse_analytics(core::Runtime& rt, util::Xoshiro256& rng);

  /// One step of the standard mix (weights per TpccParams::analytics_pct).
  void run_mix(core::Runtime& rt, util::Xoshiro256& rng);

  /// Consistency audit for tests: warehouse YTD equals the sum of its
  /// district YTDs; every order id below next_o_id exists.
  bool audit(core::Runtime& rt);

  long committed_orders() const;

 private:
  std::size_t d_index(int w, int d) const {
    return static_cast<std::size_t>(w) * params_.districts + d;
  }
  std::size_t c_index(int w, int d, int c) const {
    return d_index(w, d) * params_.customers_per_district + c;
  }
  std::size_t s_index(int w, int i) const {
    return static_cast<std::size_t>(w) * params_.items + i;
  }
  static std::uint64_t order_key(int w, int d, int o_id) {
    return (static_cast<std::uint64_t>(w) << 40) |
           (static_cast<std::uint64_t>(d) << 32) |
           static_cast<std::uint32_t>(o_id);
  }

  OrderRow* alloc_order();

  TpccParams params_;
  std::deque<WarehouseRow> warehouses_;
  std::deque<DistrictRow> districts_;
  std::deque<CustomerTRow> customers_;
  std::deque<ItemRow> items_;
  std::deque<StockRow> stock_;
  // Order tables live in transactional B+-trees: order ids are dense and
  // ordered per district, so order_key() makes every district a contiguous
  // key range — StockLevel's last-20-orders join and Delivery's
  // oldest-undelivered lookup become range scans, and NewOrder's
  // insert-next-id pattern hits one leaf buffer per district.
  containers::TxBTree orders_;
  containers::TxBTree new_orders_;  // undelivered orders (key -> order ptr)

  std::mutex arena_mutex_;
  std::deque<OrderRow> order_arena_;

  util::NuRand nurand_item_{8191, 7911};
  util::NuRand nurand_cust_{1023, 259};
};

}  // namespace txf::workloads::tpcc
