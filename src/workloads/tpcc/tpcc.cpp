#include "workloads/tpcc/tpcc.hpp"

#include <algorithm>
#include <vector>

#include "core/adaptive.hpp"

namespace txf::workloads::tpcc {

TpccDB::TpccDB(const TpccParams& p) : params_(p) {
  const int w = params_.warehouses;
  for (int i = 0; i < w; ++i) warehouses_.emplace_back();
  for (int i = 0; i < w * params_.districts; ++i) districts_.emplace_back();
  for (int i = 0; i < w * params_.districts * params_.customers_per_district;
       ++i)
    customers_.emplace_back();
  for (int i = 0; i < params_.items; ++i) items_.emplace_back();
  for (int i = 0; i < w * params_.items; ++i) stock_.emplace_back();
}

OrderRow* TpccDB::alloc_order() {
  std::lock_guard<std::mutex> lock(arena_mutex_);
  order_arena_.emplace_back();
  return &order_arena_.back();
}

void TpccDB::populate(core::Runtime& rt, util::Xoshiro256& rng) {
  core::atomically(rt, [&](core::TxCtx& ctx) {
    for (auto& item : items_)
      item.price = 100 + static_cast<int>(rng.next_bounded(9900));
    for (auto& s : stock_) s.quantity.put(ctx, 10 + static_cast<int>(
                                                    rng.next_bounded(91)));
  });
}

void TpccDB::new_order(core::Runtime& rt, util::Xoshiro256& rng) {
  const int w = static_cast<int>(rng.next_bounded(params_.warehouses));
  const int d = static_cast<int>(rng.next_bounded(params_.districts));
  const int c = static_cast<int>(nurand_cust_.next(
      rng, 0, params_.customers_per_district - 1));
  const int n_lines = 5 + static_cast<int>(rng.next_bounded(11));
  int line_item[kMaxOrderLines];
  int line_qty[kMaxOrderLines];
  for (int i = 0; i < n_lines; ++i) {
    line_item[i] =
        static_cast<int>(nurand_item_.next(rng, 0, params_.items - 1));
    line_qty[i] = 1 + static_cast<int>(rng.next_bounded(10));
  }

  core::atomically(rt, [&](core::TxCtx& ctx) {
    DistrictRow& dist = districts_[d_index(w, d)];
    const int o_id = dist.next_o_id.get(ctx);
    dist.next_o_id.put(ctx, o_id + 1);

    OrderRow* order = alloc_order();
    order->w = w;
    order->d = d;
    order->o_id = o_id;
    order->c_id = c;
    order->n_lines = n_lines;

    long total = 0;
    for (int i = 0; i < n_lines; ++i) {
      order->line_item[i] = line_item[i];
      order->line_qty[i] = line_qty[i];
      StockRow& stock = stock_[s_index(w, line_item[i])];
      const int q = stock.quantity.get(ctx);
      stock.quantity.put(ctx, q >= line_qty[i] + 10 ? q - line_qty[i]
                                                    : q - line_qty[i] + 91);
      stock.ytd.put(ctx, stock.ytd.get(ctx) + line_qty[i]);
      stock.order_cnt.put(ctx, stock.order_cnt.get(ctx) + 1);
      total += static_cast<long>(items_[line_item[i]].price) * line_qty[i];
    }
    order->total.put(ctx, total);
    const std::uint64_t key = order_key(w, d, o_id);
    orders_.put(ctx, key, reinterpret_cast<uintptr_t>(order));
    new_orders_.put(ctx, key, reinterpret_cast<uintptr_t>(order));
    CustomerTRow& cust = customers_[c_index(w, d, c)];
    cust.balance.put(ctx, cust.balance.get(ctx) - total);
  });
}

void TpccDB::payment(core::Runtime& rt, util::Xoshiro256& rng) {
  const int w = static_cast<int>(rng.next_bounded(params_.warehouses));
  const int d = static_cast<int>(rng.next_bounded(params_.districts));
  const int c = static_cast<int>(
      nurand_cust_.next(rng, 0, params_.customers_per_district - 1));
  const long amount = 100 + static_cast<long>(rng.next_bounded(4900));

  core::atomically(rt, [&](core::TxCtx& ctx) {
    WarehouseRow& wh = warehouses_[static_cast<std::size_t>(w)];
    wh.ytd.put(ctx, wh.ytd.get(ctx) + amount);
    DistrictRow& dist = districts_[d_index(w, d)];
    dist.ytd.put(ctx, dist.ytd.get(ctx) + amount);
    CustomerTRow& cust = customers_[c_index(w, d, c)];
    cust.balance.put(ctx, cust.balance.get(ctx) + amount);
    cust.ytd_payment.put(ctx, cust.ytd_payment.get(ctx) + amount);
    cust.payment_cnt.put(ctx, cust.payment_cnt.get(ctx) + 1);
  });
}

long TpccDB::order_status(core::Runtime& rt, util::Xoshiro256& rng) {
  const int w = static_cast<int>(rng.next_bounded(params_.warehouses));
  const int d = static_cast<int>(rng.next_bounded(params_.districts));

  return core::atomically(rt, [&](core::TxCtx& ctx) {
    DistrictRow& dist = districts_[d_index(w, d)];
    const int next = dist.next_o_id.get(ctx);
    if (next <= 1) return 0L;
    const int o_id = next - 1;  // most recent order of the district
    std::uint64_t v = 0;
    if (!orders_.get(ctx, order_key(w, d, o_id), v)) return 0L;
    auto* order = reinterpret_cast<OrderRow*>(static_cast<uintptr_t>(v));
    return order->total.get(ctx);
  });
}

void TpccDB::delivery(core::Runtime& rt, util::Xoshiro256& rng) {
  const int w = static_cast<int>(rng.next_bounded(params_.warehouses));
  const int carrier = 1 + static_cast<int>(rng.next_bounded(10));

  core::atomically(rt, [&](core::TxCtx& ctx) {
    // Deliver the oldest undelivered order of each district: the district
    // is a contiguous key range of the new-order tree, so "oldest
    // undelivered" is the first key of a bounded range scan.
    for (int d = 0; d < params_.districts; ++d) {
      DistrictRow& dist = districts_[d_index(w, d)];
      const int next = dist.next_o_id.get(ctx);
      if (next <= 1) continue;
      std::uint64_t key = 0;
      std::uint64_t v = 0;
      bool found = false;
      new_orders_.scan(ctx, order_key(w, d, std::max(1, next - 20)),
                       order_key(w, d, next),
                       [&](std::uint64_t k, std::uint64_t val) {
                         if (found) return;
                         found = true;
                         key = k;
                         v = val;
                       });
      if (!found) continue;
      auto* order = reinterpret_cast<OrderRow*>(static_cast<uintptr_t>(v));
      new_orders_.erase(ctx, key);
      order->carrier_id.put(ctx, carrier);
      CustomerTRow& cust = customers_[c_index(w, d, order->c_id)];
      cust.balance.put(ctx, cust.balance.get(ctx) + order->total.get(ctx));
      cust.delivery_cnt.put(ctx, cust.delivery_cnt.get(ctx) + 1);
    }
  });
}

long TpccDB::stock_level(core::Runtime& rt, util::Xoshiro256& rng) {
  const int w = static_cast<int>(rng.next_bounded(params_.warehouses));
  const int d = static_cast<int>(rng.next_bounded(params_.districts));
  const int threshold = 10 + static_cast<int>(rng.next_bounded(11));
  return stock_level_at(rt, w, d, threshold);
}

long TpccDB::stock_level_at(core::Runtime& rt, int w, int d, int threshold) {
  return core::atomically(rt, [&](core::TxCtx& ctx) {
    // The TPC-C StockLevel join: the district's last 20 orders, the
    // distinct items on their order lines, and how many of those items are
    // below the stock threshold. The order window is one contiguous range
    // of the order B+-tree.
    DistrictRow& dist = districts_[d_index(w, d)];
    const int next = dist.next_o_id.get(ctx);
    if (next <= 1) return 0L;
    std::vector<char> seen(static_cast<std::size_t>(params_.items), 0);
    orders_.scan(
        ctx, order_key(w, d, std::max(1, next - 20)), order_key(w, d, next),
        [&](std::uint64_t, std::uint64_t v) {
          auto* order = reinterpret_cast<OrderRow*>(static_cast<uintptr_t>(v));
          for (int i = 0; i < order->n_lines; ++i)
            seen[static_cast<std::size_t>(order->line_item[i])] = 1;
        },
        TXF_SUBMIT_SITE);
    long n = 0;
    for (int i = 0; i < params_.items; ++i) {
      if (seen[static_cast<std::size_t>(i)] &&
          stock_[s_index(w, i)].quantity.get(ctx) < threshold)
        ++n;
    }
    return n;
  });
}

long TpccDB::stock_level_reference(core::Runtime& rt, int w, int d,
                                   int threshold) {
  return core::atomically(rt, [&](core::TxCtx& ctx) {
    // Oracle: identical semantics via point-gets on the order ids — no
    // range scan, no futures.
    DistrictRow& dist = districts_[d_index(w, d)];
    const int next = dist.next_o_id.get(ctx);
    if (next <= 1) return 0L;
    std::vector<char> seen(static_cast<std::size_t>(params_.items), 0);
    for (int o_id = std::max(1, next - 20); o_id < next; ++o_id) {
      std::uint64_t v = 0;
      if (!orders_.get(ctx, order_key(w, d, o_id), v)) continue;
      auto* order = reinterpret_cast<OrderRow*>(static_cast<uintptr_t>(v));
      for (int i = 0; i < order->n_lines; ++i)
        seen[static_cast<std::size_t>(order->line_item[i])] = 1;
    }
    long n = 0;
    for (int i = 0; i < params_.items; ++i) {
      if (seen[static_cast<std::size_t>(i)] &&
          stock_[s_index(w, i)].quantity.get(ctx) < threshold)
        ++n;
    }
    return n;
  });
}

long TpccDB::warehouse_analytics(core::Runtime& rt, util::Xoshiro256& rng) {
  const int w = static_cast<int>(rng.next_bounded(params_.warehouses));
  const std::size_t jobs = params_.jobs == 0 ? 1 : params_.jobs;
  const int n_cust = params_.districts * params_.customers_per_district;

  return core::atomically(rt, [&](core::TxCtx& ctx) {
    // "Total money raised by the warehouse" (paper §V): district YTDs plus
    // every customer's payment history. The customer scan is the long
    // cycle; it splits across futures.
    auto scan_customers = [this, w](core::TxCtx& c, int lo, int hi) {
      long sum = 0;
      const std::size_t base = static_cast<std::size_t>(w) *
                               params_.districts *
                               params_.customers_per_district;
      for (int i = lo; i < hi; ++i) {
        CustomerTRow& cust = customers_[base + static_cast<std::size_t>(i)];
        sum += cust.ytd_payment.get(c);
      }
      return sum;
    };
    long total = 0;
    for (int d = 0; d < params_.districts; ++d)
      total += districts_[d_index(w, d)].ytd.get(ctx);

    if (jobs <= 1) return total + scan_customers(ctx, 0, n_cust);
    const int slice =
        (n_cust + static_cast<int>(jobs) - 1) / static_cast<int>(jobs);
    std::vector<core::TxFuture<long>> futs;
    for (std::size_t j = 0; j + 1 < jobs; ++j) {
      const int lo = std::min(static_cast<int>(j) * slice, n_cust);
      const int hi = std::min(lo + slice, n_cust);
      futs.push_back(ctx.submit([scan_customers, lo, hi](core::TxCtx& c) {
        return scan_customers(c, lo, hi);
      }));
    }
    total += scan_customers(
        ctx, std::min(static_cast<int>(jobs - 1) * slice, n_cust), n_cust);
    for (auto& f : futs) total += f.get(ctx);
    return total;
  });
}

void TpccDB::run_mix(core::Runtime& rt, util::Xoshiro256& rng) {
  const auto roll = rng.next_bounded(100);
  const auto analytics =
      static_cast<std::uint64_t>(std::max(params_.analytics_pct, 0));
  if (roll < analytics) {
    warehouse_analytics(rt, rng);
    return;
  }
  // Remaining probability split following the classic TPC-C weights
  // (NewOrder 45 : Payment 43 : OrderStatus 4 : Delivery 4 : StockLevel 4).
  const auto r = rng.next_bounded(100);
  if (r < 45) {
    new_order(rt, rng);
  } else if (r < 88) {
    payment(rt, rng);
  } else if (r < 92) {
    order_status(rt, rng);
  } else if (r < 96) {
    delivery(rt, rng);
  } else {
    stock_level(rt, rng);
  }
}

bool TpccDB::audit(core::Runtime& rt) {
  return core::atomically(rt, [&](core::TxCtx& ctx) {
    bool ok = true;
    for (int w = 0; w < params_.warehouses; ++w) {
      long district_sum = 0;
      for (int d = 0; d < params_.districts; ++d)
        district_sum += districts_[d_index(w, d)].ytd.get(ctx);
      if (warehouses_[static_cast<std::size_t>(w)].ytd.get(ctx) !=
          district_sum)
        ok = false;
      // Every order id below next_o_id must exist in the order table: the
      // district's key range must contain exactly the dense id sequence.
      for (int d = 0; d < params_.districts; ++d) {
        const int next = districts_[d_index(w, d)].next_o_id.get(ctx);
        int expect = 1;
        orders_.scan(ctx, order_key(w, d, 1), order_key(w, d, next),
                     [&](std::uint64_t k, std::uint64_t) {
                       if (k != order_key(w, d, expect)) ok = false;
                       ++expect;
                     });
        if (expect != std::max(1, next)) ok = false;
      }
    }
    return ok;
  });
}

long TpccDB::committed_orders() const {
  long n = 0;
  for (const auto& d : districts_) n += d.next_o_id.peek_committed() - 1;
  return n;
}

}  // namespace txf::workloads::tpcc
