// Shared benchmark driver: worker orchestration, metric aggregation, flag
// parsing, and table printing for the paper-figure benchmarks.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/tx_tree.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"

namespace txf::workloads {

/// Per-worker metrics; merged by the driver after the run.
struct WorkerMetrics {
  std::uint64_t transactions = 0;   // committed top-level transactions
  util::LatencyHistogram latency;   // ns per committed transaction,
                                    // including retries (paper Figs. 5c/6b)
  void merge(const WorkerMetrics& other) {
    transactions += other.transactions;
    latency.merge(other.latency);
  }
};

/// Plain-value snapshot of the engine counters over a window.
struct StatsDelta {
  std::uint64_t top_commits = 0;
  std::uint64_t top_aborts = 0;
  std::uint64_t tree_restarts = 0;
  std::uint64_t fallback_restarts = 0;
  std::uint64_t future_reexecutions = 0;
  std::uint64_t futures_submitted = 0;
  std::uint64_t ro_validation_skips = 0;
  std::uint64_t serial_fallbacks = 0;
  std::uint64_t partial_rollbacks = 0;
};

/// Aggregated outcome of one measured configuration.
struct RunResult {
  double seconds = 0;
  WorkerMetrics metrics;
  StatsDelta stats_delta;  // engine counters over the window

  double throughput() const {
    return seconds > 0 ? static_cast<double>(metrics.transactions) / seconds
                       : 0;
  }
  /// Abort rate as aborted / started (paper Fig. 6c/6f).
  double abort_rate() const {
    const auto aborts = stats_delta.top_aborts + stats_delta.tree_restarts +
                        stats_delta.fallback_restarts;
    const auto started = stats_delta.top_commits + aborts;
    return started ? static_cast<double>(aborts) /
                         static_cast<double>(started)
                   : 0;
  }
  double mean_latency_us() const { return metrics.latency.mean() / 1000.0; }
  double p99_latency_us() const {
    return static_cast<double>(metrics.latency.p99()) / 1000.0;
  }
};

/// Run `body(worker_id, metrics)` on `threads` OS threads for
/// `duration_ms` (workers poll the stop flag via the returned lambda).
/// `body` receives a `keep_running` callable it must consult between
/// transactions. Captures the engine stats delta around the window.
RunResult run_for(core::Runtime& rt, std::size_t threads, int duration_ms,
                  const std::function<void(std::size_t worker,
                                           const std::function<bool()>& keep,
                                           WorkerMetrics& m)>& body);

/// Tiny command-line flag parser: --name=value / --name value / --flag.
class Args {
 public:
  Args(int argc, char** argv);
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  std::string get_str(const std::string& name, const std::string& def) const;
  bool has(const std::string& name) const;

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

/// Fixed-width table printing.
void print_header(const std::vector<std::string>& cols);
void print_row(const std::vector<std::string>& cells);
std::string fmt(double v, int precision = 2);

/// Parse a comma-separated list of non-negative integers ("1,2,4").
/// Malformed input prints a clear message naming the offending token and
/// exits with status 2 (benchmarks are CLIs; don't terminate() on typos).
std::vector<std::uint64_t> parse_u64_list(const std::string& flag_name,
                                          const std::string& value);
std::vector<std::size_t> parse_size_list(const std::string& flag_name,
                                         const std::string& value);

}  // namespace txf::workloads
