#include "workloads/common/driver.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/runtime.hpp"
#include "util/timing.hpp"

namespace txf::workloads {

namespace {

void snapshot_stats(const core::TxStats& s, std::uint64_t out[9]) {
  out[0] = s.top_commits.load();
  out[1] = s.top_aborts.load();
  out[2] = s.tree_restarts.load();
  out[3] = s.fallback_restarts.load();
  out[4] = s.future_reexecutions.load();
  out[5] = s.futures_submitted.load();
  out[6] = s.ro_validation_skips.load();
  out[7] = s.serial_fallbacks.load();
  out[8] = s.partial_rollbacks.load();
}

}  // namespace

RunResult run_for(core::Runtime& rt, std::size_t threads, int duration_ms,
                  const std::function<void(std::size_t,
                                           const std::function<bool()>&,
                                           WorkerMetrics&)>& body) {
  std::atomic<bool> stop{false};
  std::vector<WorkerMetrics> metrics(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);

  std::uint64_t before[9];
  snapshot_stats(rt.stats(), before);
  const std::uint64_t t0 = util::now_ns();

  for (std::size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      const std::function<bool()> keep = [&stop] {
        return !stop.load(std::memory_order_acquire);
      };
      body(w, keep, metrics[w]);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();

  RunResult result;
  result.seconds = static_cast<double>(util::now_ns() - t0) * 1e-9;
  for (auto& m : metrics) result.metrics.merge(m);
  std::uint64_t after[9];
  snapshot_stats(rt.stats(), after);
  result.stats_delta.top_commits = after[0] - before[0];
  result.stats_delta.top_aborts = after[1] - before[1];
  result.stats_delta.tree_restarts = after[2] - before[2];
  result.stats_delta.fallback_restarts = after[3] - before[3];
  result.stats_delta.future_reexecutions = after[4] - before[4];
  result.stats_delta.futures_submitted = after[5] - before[5];
  result.stats_delta.ro_validation_skips = after[6] - before[6];
  result.stats_delta.serial_fallbacks = after[7] - before[7];
  result.stats_delta.partial_rollbacks = after[8] - before[8];
  return result;
}

Args::Args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      kv_.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      kv_.emplace_back(arg, argv[++i]);
    } else {
      kv_.emplace_back(arg, "");
    }
  }
}

std::int64_t Args::get_int(const std::string& name, std::int64_t def) const {
  for (const auto& [k, v] : kv_)
    if (k == name && !v.empty()) return std::stoll(v);
  return def;
}

double Args::get_double(const std::string& name, double def) const {
  for (const auto& [k, v] : kv_)
    if (k == name && !v.empty()) return std::stod(v);
  return def;
}

std::string Args::get_str(const std::string& name,
                          const std::string& def) const {
  for (const auto& [k, v] : kv_)
    if (k == name) return v;
  return def;
}

bool Args::has(const std::string& name) const {
  for (const auto& [k, v] : kv_) {
    (void)v;
    if (k == name) return true;
  }
  return false;
}

void print_header(const std::vector<std::string>& cols) {
  for (const auto& c : cols) std::printf("%16s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%16s", "----");
  std::printf("\n");
}

void print_row(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("%16s", c.c_str());
  std::printf("\n");
  std::fflush(stdout);
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::vector<std::uint64_t> parse_u64_list(const std::string& flag_name,
                                          const std::string& value) {
  std::vector<std::uint64_t> out;
  std::stringstream ss(value);
  std::string item;
  while (std::getline(ss, item, ',')) {
    try {
      std::size_t used = 0;
      const auto v = std::stoull(item, &used);
      if (used != item.size()) throw std::invalid_argument(item);
      out.push_back(v);
    } catch (const std::exception&) {
      std::fprintf(stderr,
                   "error: --%s expects a comma-separated list of "
                   "non-negative integers; got \"%s\"\n",
                   flag_name.c_str(), item.c_str());
      std::exit(2);
    }
  }
  if (out.empty()) {
    std::fprintf(stderr, "error: --%s is empty\n", flag_name.c_str());
    std::exit(2);
  }
  return out;
}

std::vector<std::size_t> parse_size_list(const std::string& flag_name,
                                         const std::string& value) {
  std::vector<std::size_t> out;
  for (const auto v : parse_u64_list(flag_name, value))
    out.push_back(static_cast<std::size_t>(v));
  return out;
}

}  // namespace txf::workloads
