#include "workloads/vacation/vacation.hpp"

#include <algorithm>
#include <vector>

namespace txf::workloads::vacation {

namespace {

constexpr std::uint64_t pack_holding(ResourceKind k, std::uint64_t id) {
  return (static_cast<std::uint64_t>(k) << 56) | id;
}
constexpr ResourceKind holding_kind(std::uint64_t h) {
  return static_cast<ResourceKind>(h >> 56);
}
constexpr std::uint64_t holding_id(std::uint64_t h) {
  return h & ((std::uint64_t{1} << 56) - 1);
}

struct Candidate {
  std::uint64_t id = ~std::uint64_t{0};
  int price = INT32_MAX;
  bool found() const { return id != ~std::uint64_t{0}; }
};

}  // namespace

VacationDB::VacationDB(const VacationParams& params)
    : params_(params),
      tables_{containers::TxMap(params.relations * 2),
              containers::TxMap(params.relations * 2),
              containers::TxMap(params.relations * 2)},
      customers_(params.customers * 2),
      next_item_id_(params.relations) {}

ReservationRow* VacationDB::alloc_row(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(arena_mutex_);
  row_arena_.emplace_back();
  ReservationRow& r = row_arena_.back();
  r.id = id;
  return &r;
}

CustomerRow* VacationDB::alloc_customer(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(arena_mutex_);
  customer_arena_.emplace_back();
  CustomerRow& c = customer_arena_.back();
  c.id = id;
  return &c;
}

void VacationDB::populate(core::Runtime& rt, util::Xoshiro256& rng) {
  // Batch inserts to keep the populate transactions small.
  constexpr std::size_t kBatch = 128;
  for (int kind = 0; kind < kResourceKinds; ++kind) {
    for (std::size_t base = 0; base < params_.relations; base += kBatch) {
      core::atomically(rt, [&](core::TxCtx& ctx) {
        const std::size_t end = std::min(base + kBatch, params_.relations);
        for (std::size_t id = base; id < end; ++id) {
          ReservationRow* row = alloc_row(id);
          row->total.put(ctx, 1 + static_cast<int>(rng.next_bounded(5)));
          row->used.put(ctx, 0);
          row->price.put(ctx, 50 + static_cast<int>(rng.next_bounded(450)));
          tables_[kind].put(ctx, id,
                            static_cast<containers::TxMap::Value>(
                                reinterpret_cast<uintptr_t>(row)));
        }
      });
    }
  }
  for (std::size_t base = 0; base < params_.customers; base += kBatch) {
    core::atomically(rt, [&](core::TxCtx& ctx) {
      const std::size_t end = std::min(base + kBatch, params_.customers);
      for (std::size_t id = base; id < end; ++id) {
        CustomerRow* c = alloc_customer(id);
        c->bill.put(ctx, 0);
        customers_.put(ctx, id,
                       static_cast<containers::TxMap::Value>(
                           reinterpret_cast<uintptr_t>(c)));
      }
    });
  }
}

int VacationDB::make_reservation(core::Runtime& rt, util::Xoshiro256& rng) {
  const std::uint64_t cust_id = rng.next_bounded(params_.customers);
  // Pre-draw the query window per resource kind so retries are identical.
  std::vector<std::uint64_t> queried[kResourceKinds];
  for (int k = 0; k < kResourceKinds; ++k) {
    queried[k].resize(params_.query_window);
    for (auto& q : queried[k]) q = rng.next_bounded(params_.relations);
  }
  const std::size_t jobs = params_.jobs == 0 ? 1 : params_.jobs;
  // Lazily allocated at most once per call, reused across conflict
  // retries so aborted attempts don't grow the arena.
  CustomerRow* spare_customer = nullptr;

  return core::atomically(rt, [&](core::TxCtx& ctx) {
    int reserved = 0;
    for (int k = 0; k < kResourceKinds; ++k) {
      auto& tab = tables_[k];
      const auto& ids = queried[k];

      // The long query cycle: find the cheapest available item. Scan
      // slices in parallel via transactional futures (paper §V).
      auto scan = [&tab, &ids, this](core::TxCtx& c, std::size_t lo,
                                     std::size_t hi) {
        Candidate best;
        for (std::size_t i = lo; i < hi; ++i) {
          const auto v = tab.get(c, ids[i]);
          if (!v) continue;
          ReservationRow* row = row_from(*v);
          const int total = row->total.get(c);
          const int used = row->used.get(c);
          const int price = row->price.get(c);
          if (used < total && price < best.price) {
            best.price = price;
            best.id = ids[i];
          }
        }
        return best;
      };

      Candidate best;
      if (jobs <= 1) {
        best = scan(ctx, 0, ids.size());
      } else {
        const std::size_t slice = (ids.size() + jobs - 1) / jobs;
        std::vector<core::TxFuture<Candidate>> futs;
        for (std::size_t j = 0; j + 1 < jobs; ++j) {
          const std::size_t lo = std::min(j * slice, ids.size());
          const std::size_t hi = std::min(lo + slice, ids.size());
          futs.push_back(ctx.submit([scan, lo, hi](core::TxCtx& c) {
            return scan(c, lo, hi);
          }));
        }
        best = scan(ctx, std::min((jobs - 1) * slice, ids.size()),
                    ids.size());
        for (auto& f : futs) {
          const Candidate c = f.get(ctx);
          if (c.found() && c.price < best.price) best = c;
        }
      }

      if (!best.found()) continue;
      // Reserve in the continuation (serialized after all query futures).
      const auto v = tab.get(ctx, best.id);
      if (!v) continue;
      ReservationRow* row = row_from(*v);
      const int total = row->total.get(ctx);
      const int used = row->used.get(ctx);
      if (used >= total) continue;  // raced within the window: still exact
      row->used.put(ctx, used + 1);

      const auto cv = customers_.get(ctx, cust_id);
      CustomerRow* cust;
      if (cv) {
        cust = customer_from(*cv);
      } else {
        if (spare_customer == nullptr) spare_customer = alloc_customer(cust_id);
        cust = spare_customer;
        cust->id = cust_id;
        cust->bill.put(ctx, 0);
        customers_.put(ctx, cust_id,
                       static_cast<containers::TxMap::Value>(
                           reinterpret_cast<uintptr_t>(cust)));
      }
      cust->bill.put(ctx, cust->bill.get(ctx) + row->price.get(ctx));
      try {
        cust->holdings.push_back(
            ctx, pack_holding(static_cast<ResourceKind>(k), best.id));
      } catch (const containers::TxVector<std::uint64_t>::TxVectorFull&) {
        // Customer is full: undo this reservation within the transaction.
        row->used.put(ctx, used);
        cust->bill.put(ctx, cust->bill.get(ctx) - row->price.get(ctx));
        continue;
      }
      ++reserved;
    }
    return reserved;
  });
}

void VacationDB::delete_customer(core::Runtime& rt, util::Xoshiro256& rng) {
  const std::uint64_t cust_id = rng.next_bounded(params_.customers);
  core::atomically(rt, [&](core::TxCtx& ctx) {
    const auto cv = customers_.get(ctx, cust_id);
    if (!cv) return;
    CustomerRow* cust = customer_from(*cv);
    const long n = cust->holdings.size(ctx);
    for (long i = 0; i < n; ++i) {
      const std::uint64_t h =
          cust->holdings.at(ctx, static_cast<std::size_t>(i));
      auto& tab = tables_[static_cast<int>(holding_kind(h))];
      const auto rv = tab.get(ctx, holding_id(h));
      if (!rv) continue;  // item was removed from the table meanwhile
      ReservationRow* row = row_from(*rv);
      row->used.put(ctx, row->used.get(ctx) - 1);
    }
    while (cust->holdings.size(ctx) > 0) cust->holdings.pop_back(ctx);
    cust->bill.put(ctx, 0);
    customers_.erase(ctx, cust_id);
  });
}

void VacationDB::update_tables(core::Runtime& rt, util::Xoshiro256& rng) {
  struct Op {
    int kind;
    std::uint64_t id;
    bool add;       // add capacity / new item vs price change
    int new_price;
  };
  std::vector<Op> ops(static_cast<std::size_t>(params_.update_ops));
  for (auto& op : ops) {
    op.kind = static_cast<int>(rng.next_bounded(kResourceKinds));
    op.id = rng.next_bounded(params_.relations);
    op.add = rng.next_bounded(2) == 0;
    op.new_price = 50 + static_cast<int>(rng.next_bounded(450));
  }
  core::atomically(rt, [&](core::TxCtx& ctx) {
    for (const Op& op : ops) {
      auto& tab = tables_[op.kind];
      const auto v = tab.get(ctx, op.id);
      if (!v) continue;
      ReservationRow* row = row_from(*v);
      if (op.add) {
        row->total.put(ctx, row->total.get(ctx) + 1);
      } else {
        row->price.put(ctx, op.new_price);
      }
    }
  });
}

bool VacationDB::audit(core::Runtime& rt) {
  return core::atomically(rt, [&](core::TxCtx& ctx) {
    bool ok = true;
    long total_used_items = 0;
    for (int k = 0; k < kResourceKinds; ++k) {
      tables_[k].for_each(ctx, [&](std::uint64_t, std::uint64_t v) {
        ReservationRow* row = row_from(v);
        const int used = row->used.get(ctx);
        const int total = row->total.get(ctx);
        if (used < 0 || used > total) ok = false;
        total_used_items += used;
      });
    }
    long total_holdings = 0;
    customers_.for_each(ctx, [&](std::uint64_t, std::uint64_t v) {
      CustomerRow* cust = customer_from(v);
      total_holdings += cust->holdings.size(ctx);
      if (cust->bill.get(ctx) < 0) ok = false;
    });
    // Every live holding pins one `used` unit; deleted items may leave
    // used units unaccounted, so used >= holdings need not hold strictly —
    // but holdings never exceed used slots.
    if (total_holdings > total_used_items) ok = false;
    return ok;
  });
}

}  // namespace txf::workloads::vacation
