// Vacation: the STAMP travel-agency benchmark (paper §V, Figs. 6a-6c)
// rebuilt on txfutures.
//
// A Manager keeps four relations — cars, flights, rooms (reservable items)
// and customers. Clients run three transaction profiles: MakeReservation
// (query a window of items per resource type, pick the cheapest available,
// reserve it), DeleteCustomer (cancel everything a customer holds) and
// UpdateTables (add/remove items, change prices). Following the paper, the
// long query cycle inside MakeReservation is parallelized with
// transactional futures: each future scans a slice of the queried items
// and proposes the cheapest candidate; the continuation reserves the
// winner, preserving the sequential semantics.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>

#include "containers/tx_map.hpp"
#include "containers/tx_vector.hpp"
#include "core/api.hpp"
#include "util/xoshiro.hpp"

namespace txf::workloads::vacation {

enum class ResourceKind : std::uint8_t { kCar = 0, kFlight = 1, kRoom = 2 };
inline constexpr int kResourceKinds = 3;

struct ReservationRow {
  std::uint64_t id;
  stm::VBox<int> total;
  stm::VBox<int> used;
  stm::VBox<int> price;
};

struct CustomerRow {
  std::uint64_t id;
  stm::VBox<long> bill;
  /// Packed holdings: (kind << 56) | item id.
  containers::TxVector<std::uint64_t> holdings{32};
};

struct VacationParams {
  std::size_t relations = 1024;    // items per resource table
  std::size_t customers = 1024;
  std::size_t query_window = 64;   // items examined per MakeReservation
  std::size_t jobs = 1;            // futures parallelism of the query cycle
  int update_ops = 8;              // items touched per UpdateTables
};

class VacationDB {
 public:
  explicit VacationDB(const VacationParams& params);

  const VacationParams& params() const noexcept { return params_; }

  /// Populate tables (run once, single-threaded, transactional).
  void populate(core::Runtime& rt, util::Xoshiro256& rng);

  /// MakeReservation: reserves up to one item of each resource kind for a
  /// random customer. Returns the number of successful reservations.
  int make_reservation(core::Runtime& rt, util::Xoshiro256& rng);

  /// DeleteCustomer: release all holdings and zero the bill.
  void delete_customer(core::Runtime& rt, util::Xoshiro256& rng);

  /// UpdateTables: change prices / availability of random items.
  void update_tables(core::Runtime& rt, util::Xoshiro256& rng);

  /// Consistency audit (tests): for every table, used <= total and every
  /// customer holding refers to a live item. Returns true when consistent.
  bool audit(core::Runtime& rt);

 private:
  containers::TxMap& table(ResourceKind k) { return tables_[static_cast<int>(k)]; }

  ReservationRow* row_from(containers::TxMap::Value v) const {
    return reinterpret_cast<ReservationRow*>(static_cast<uintptr_t>(v));
  }
  CustomerRow* customer_from(containers::TxMap::Value v) const {
    return reinterpret_cast<CustomerRow*>(static_cast<uintptr_t>(v));
  }

  ReservationRow* alloc_row(std::uint64_t id);
  CustomerRow* alloc_customer(std::uint64_t id);

  VacationParams params_;
  containers::TxMap tables_[kResourceKinds];
  containers::TxMap customers_;

  std::mutex arena_mutex_;
  std::deque<ReservationRow> row_arena_;
  std::deque<CustomerRow> customer_arena_;
  std::uint64_t next_item_id_;
};

}  // namespace txf::workloads::vacation
