#include "obs/drift.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/trace.hpp"

namespace txf::obs {

namespace {

// Volume floors: below these a "share" or "skew" is mostly sampling noise,
// so the detector reports enough_data=false instead of a verdict.
constexpr double kMinConflictVolume = 50.0;   // commits + conflicts in window
constexpr double kMinStripeCommits = 64.0;    // commits across all stripes
constexpr double kMinHomeReadsPerHalf = 64.0; // reads per half-window

double window_seconds(const std::vector<TimelineFrame>& w) {
  double ns = 0.0;
  for (const TimelineFrame& f : w) ns += static_cast<double>(f.dt_ns);
  return ns / 1e9;
}

/// Sum of a delta series over the window (NaN slots — frames that predate
/// the series — contribute nothing).
double sum_series(const std::vector<TimelineFrame>& w, int idx) {
  double total = 0.0;
  for (const TimelineFrame& f : w) {
    const double v = MetricsTimeline::value(f, idx);
    if (!std::isnan(v)) total += v;
  }
  return total;
}

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

const char* drift_kind_name(DriftKind k) noexcept {
  switch (k) {
    case DriftKind::kSiteChurn: return "site_churn";
    case DriftKind::kConflictTrend: return "conflict_trend";
    case DriftKind::kEbrBacklog: return "ebr_backlog";
    case DriftKind::kStripeSkew: return "stripe_skew";
    case DriftKind::kHomeHitRate: return "home_hit_rate";
    case DriftKind::kCount: break;
  }
  return "unknown";
}

std::string DriftVerdict::to_json() const {
  std::ostringstream os;
  os << "{\"name\": \"" << drift_kind_name(kind) << "\", \"fired\": "
     << (fired ? "true" : "false")
     << ", \"enough_data\": " << (enough_data ? "true" : "false")
     << ", \"value\": " << value << ", \"threshold\": " << threshold
     << ", \"first_seq\": " << first_seq << ", \"last_seq\": " << last_seq
     << ", \"detail\": \"" << detail << "\"}";
  return os.str();
}

DriftMonitor::DriftMonitor(const DriftConfig& cfg,
                           const MetricsTimeline& timeline)
    : cfg_(cfg), timeline_(&timeline) {
  if (cfg_.window_frames < 2) cfg_.window_frames = 2;
  latest_.resize(static_cast<std::size_t>(DriftKind::kCount));
  for (std::size_t k = 0; k < latest_.size(); ++k)
    latest_[k].kind = static_cast<DriftKind>(k);
  reg_.counter("obs.drift.evaluations", evaluations_metric_)
      .counter("obs.drift.triggers", triggers_metric_);
  for (std::size_t k = 0; k < per_detector_.size(); ++k) {
    reg_.counter(std::string("obs.drift.") +
                     drift_kind_name(static_cast<DriftKind>(k)),
                 per_detector_[k]);
  }
}

std::vector<DriftVerdict> DriftMonitor::evaluate() {
  const std::vector<TimelineFrame> w = timeline_->last(cfg_.window_frames);

  std::vector<DriftVerdict> verdicts;
  verdicts.reserve(static_cast<std::size_t>(DriftKind::kCount));
  verdicts.push_back(detect_site_churn(w));
  verdicts.push_back(detect_conflict_trend(w));
  verdicts.push_back(detect_ebr_backlog(w));
  verdicts.push_back(detect_stripe_skew(w));
  verdicts.push_back(detect_home_hit_rate(w));
  if (!w.empty()) {
    for (DriftVerdict& v : verdicts) {
      v.first_seq = w.front().seq;
      v.last_seq = w.back().seq;
    }
  }

  evaluations_metric_.add();
  std::lock_guard<std::mutex> lock(mu_);
  for (const DriftVerdict& v : verdicts) {
    const std::size_t k = static_cast<std::size_t>(v.kind);
    if (v.fired && !latched_[k]) {
      // Rising edge: one trigger per excursion, not one per tick it lasts.
      triggers_metric_.add();
      per_detector_[k].add();
      trace::instant(trace::Ev::kDriftTrigger, static_cast<std::uint32_t>(k));
      if (history_.size() < kMaxHistory) history_.push_back(v);
    }
    latched_[k] = v.fired;
  }
  latest_ = verdicts;
  return verdicts;
}

std::vector<std::string> DriftMonitor::fired_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const DriftVerdict& v : latest_)
    if (v.fired) out.emplace_back(drift_kind_name(v.kind));
  return out;
}

std::vector<std::string> DriftMonitor::fired_ever_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const DriftVerdict& v : history_) {
    const std::string name = drift_kind_name(v.kind);
    if (std::find(out.begin(), out.end(), name) == out.end())
      out.push_back(name);
  }
  return out;
}

std::string DriftMonitor::verdicts_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"evaluations\": " << evaluations_metric_.value()
     << ", \"triggers\": " << triggers_metric_.value()
     << ", \"window_frames\": " << cfg_.window_frames << ",\n \"verdicts\": [";
  for (std::size_t i = 0; i < latest_.size(); ++i)
    os << (i ? ",\n  " : "\n  ") << latest_[i].to_json();
  os << "\n ],\n \"fired_history\": [";
  for (std::size_t i = 0; i < history_.size(); ++i)
    os << (i ? ",\n  " : "\n  ") << history_[i].to_json();
  os << "\n ]}\n";
  return os.str();
}

DriftVerdict DriftMonitor::detect_site_churn(
    const std::vector<TimelineFrame>& w) const {
  DriftVerdict v;
  v.kind = DriftKind::kSiteChurn;
  v.threshold = cfg_.churn_per_s;
  const int promos = timeline_->series_index("core.adaptive.promotions");
  const int demos = timeline_->series_index("core.adaptive.demotions");
  const double dur_s = window_seconds(w);
  if (w.size() < cfg_.window_frames || dur_s <= 0.0 || promos < 0 ||
      demos < 0) {
    v.detail = "window not full";
    return v;
  }
  const double transitions = sum_series(w, promos) + sum_series(w, demos);
  v.enough_data = true;
  v.value = transitions / dur_s;
  v.fired = v.value >= v.threshold;
  v.detail = "transitions=" + fmt(transitions) + " window_s=" + fmt(dur_s);
  return v;
}

DriftVerdict DriftMonitor::detect_conflict_trend(
    const std::vector<TimelineFrame>& w) const {
  DriftVerdict v;
  v.kind = DriftKind::kConflictTrend;
  v.threshold = cfg_.conflict_share;
  const int rv = timeline_->series_index("tx.abort.cause.read_validation");
  const int ww = timeline_->series_index("tx.abort.cause.write_write");
  const int to = timeline_->series_index("tx.abort.cause.tree_order");
  const int cm = timeline_->series_index("tx.commits");
  if (w.size() < cfg_.window_frames || cm < 0) {
    v.detail = "window not full";
    return v;
  }
  auto conflicts_of = [&](const std::vector<TimelineFrame>& part) {
    return sum_series(part, rv) + sum_series(part, ww) + sum_series(part, to);
  };
  const double conflicts = conflicts_of(w);
  const double attempts = conflicts + sum_series(w, cm);
  if (attempts < kMinConflictVolume) {
    v.detail = "low volume: attempts=" + fmt(attempts);
    return v;
  }
  v.enough_data = true;
  v.value = conflicts / attempts;
  v.fired = v.value >= v.threshold;
  // Direction for the log reader: share in each half of the window.
  const std::size_t half = w.size() / 2;
  const std::vector<TimelineFrame> h1(w.begin(), w.begin() + half);
  const std::vector<TimelineFrame> h2(w.begin() + half, w.end());
  const double c1 = conflicts_of(h1), a1 = c1 + sum_series(h1, cm);
  const double c2 = conflicts_of(h2), a2 = c2 + sum_series(h2, cm);
  v.detail = "share_first_half=" + fmt(a1 > 0 ? c1 / a1 : 0.0) +
             " share_second_half=" + fmt(a2 > 0 ? c2 / a2 : 0.0) +
             " attempts=" + fmt(attempts);
  return v;
}

DriftVerdict DriftMonitor::detect_ebr_backlog(
    const std::vector<TimelineFrame>& w) const {
  DriftVerdict v;
  v.kind = DriftKind::kEbrBacklog;
  v.threshold = cfg_.ebr_slope_per_s;
  const int idx = timeline_->series_index("ebr.pending");
  if (w.size() < cfg_.window_frames || idx < 0) {
    v.detail = idx < 0 ? "no ebr.pending provider" : "window not full";
    return v;
  }
  // Least-squares slope of the pending level against time: a sustained
  // positive slope is growth, where a single spike (which a last-minus-first
  // difference would over-weight) mostly cancels.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t n = 0;
  const double t0 = static_cast<double>(w.front().t_ns);
  for (const TimelineFrame& f : w) {
    const double y = MetricsTimeline::value(f, idx);
    if (std::isnan(y)) continue;
    const double x = (static_cast<double>(f.t_ns) - t0) / 1e9;
    sx += x; sy += y; sxx += x * x; sxy += x * y;
    ++n;
  }
  const double denom = n * sxx - sx * sx;
  if (n < 2 || denom <= 0.0) {
    v.detail = "too few points: n=" + fmt(static_cast<double>(n));
    return v;
  }
  v.enough_data = true;
  v.value = (n * sxy - sx * sy) / denom;
  v.fired = v.value >= v.threshold;
  v.detail = "first=" + fmt(MetricsTimeline::value(w.front(), idx)) +
             " last=" + fmt(MetricsTimeline::value(w.back(), idx)) +
             " points=" + fmt(static_cast<double>(n));
  return v;
}

DriftVerdict DriftMonitor::detect_stripe_skew(
    const std::vector<TimelineFrame>& w) const {
  DriftVerdict v;
  v.kind = DriftKind::kStripeSkew;
  v.threshold = cfg_.stripe_skew;
  const std::vector<std::string> names = timeline_->series_names();
  std::vector<std::pair<std::string, double>> stripes;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i].rfind("stm.commit.stripe.", 0) == 0)
      stripes.emplace_back(names[i], sum_series(w, static_cast<int>(i)));
  }
  if (w.size() < cfg_.window_frames || stripes.size() < 2) {
    v.detail = stripes.size() < 2 ? "fewer than 2 stripe series"
                                  : "window not full";
    return v;
  }
  double total = 0.0, hottest = 0.0;
  std::string hottest_name;
  for (const auto& [name, commits] : stripes) {
    total += commits;
    if (commits > hottest) {
      hottest = commits;
      hottest_name = name;
    }
  }
  if (total < kMinStripeCommits) {
    v.detail = "low volume: commits=" + fmt(total);
    return v;
  }
  const double mean = total / static_cast<double>(stripes.size());
  v.enough_data = true;
  v.value = hottest / mean;
  v.fired = v.value >= v.threshold;
  v.detail = "hottest=" + hottest_name + " hottest_commits=" + fmt(hottest) +
             " mean=" + fmt(mean) +
             " stripes=" + fmt(static_cast<double>(stripes.size()));
  return v;
}

DriftVerdict DriftMonitor::detect_home_hit_rate(
    const std::vector<TimelineFrame>& w) const {
  DriftVerdict v;
  v.kind = DriftKind::kHomeHitRate;
  v.threshold = cfg_.home_hit_drop;
  const int hits = timeline_->series_index("stm.read.home_hits");
  const int walks = timeline_->series_index("stm.read.list_walks");
  if (w.size() < cfg_.window_frames || hits < 0 || walks < 0) {
    v.detail = "window not full";
    return v;
  }
  const std::size_t half = w.size() / 2;
  const std::vector<TimelineFrame> h1(w.begin(), w.begin() + half);
  const std::vector<TimelineFrame> h2(w.begin() + half, w.end());
  const double hits1 = sum_series(h1, hits), walks1 = sum_series(h1, walks);
  const double hits2 = sum_series(h2, hits), walks2 = sum_series(h2, walks);
  const double reads1 = hits1 + walks1, reads2 = hits2 + walks2;
  if (reads1 < kMinHomeReadsPerHalf || reads2 < kMinHomeReadsPerHalf) {
    v.detail = "low volume: reads_first_half=" + fmt(reads1) +
               " reads_second_half=" + fmt(reads2);
    return v;
  }
  const double rate1 = hits1 / reads1, rate2 = hits2 / reads2;
  v.enough_data = true;
  v.value = rate1 - rate2;  // positive = regression
  v.fired = v.value >= v.threshold;
  v.detail = "hit_rate_first_half=" + fmt(rate1) +
             " hit_rate_second_half=" + fmt(rate2);
  return v;
}

}  // namespace txf::obs
