// Flight recorder: triggered postmortem bundles for long-running soaks.
//
// A soak that fails in hour three is only debuggable if the evidence was
// being collected all along. The recorder itself holds almost nothing — a
// ring of the last few status lines — because the expensive state already
// lives in the always-on collectors: the trace rings (obs/trace.hpp), the
// metrics timeline (obs/timeline.hpp) and the drift monitor's verdict
// history (obs/drift.hpp). `dump()` is the moment of assembly: on a
// watchdog trip, an SLO-breach streak, an end-of-soak invariant failure or
// an explicit request, it drains them all into one self-contained directory
//
//   <dir>/flight-<seq>-<reason>/
//     manifest.json     reason, wall time, file inventory
//     metrics.json      MetricsRegistry::snapshot_json()
//     trace.json        trace::drain_json() (Chrome trace_event format)
//     timeline.json     MetricsTimeline::timeline_json()
//     verdicts.json     DriftMonitor::verdicts_json()
//     config.json       the effective engine config (caller-rendered)
//     status_tail.txt   last kStatusLines periodic status lines
//
// that `scripts/check_trace.py --bundle` can validate and a human can read
// cold (docs/OBSERVABILITY.md walks one). Disabled (empty dir) it costs a
// branch per call.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace txf::obs {

class DriftMonitor;
class MetricsTimeline;

class FlightRecorder {
 public:
  /// Status lines retained for status_tail.txt.
  static constexpr std::size_t kStatusLines = 64;

  /// `dir` is the bundle parent (created on first dump); empty = disabled.
  explicit FlightRecorder(std::string dir);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  bool enabled() const noexcept { return !dir_.empty(); }

  /// Feed one periodic status line into the tail ring (cheap; call from the
  /// controller tick whether or not a dump ever happens).
  void note_status_line(const std::string& line);

  /// Assemble one bundle. `reason` becomes part of the directory name
  /// (sanitized to [a-z0-9_-]). `timeline` / `drift` may be null (the
  /// corresponding files are skipped); `config_json` is the caller's
  /// rendering of the effective config. Returns the bundle directory path,
  /// or empty when disabled or on I/O failure. Serialized internally.
  std::string dump(const std::string& reason, const MetricsTimeline* timeline,
                   const DriftMonitor* drift, const std::string& config_json);

  std::uint64_t dumps() const noexcept { return dumps_metric_.value(); }
  /// Paths of every bundle written so far (for reports / tests).
  std::vector<std::string> bundle_paths() const;

 private:
  std::string dir_;

  mutable std::mutex mu_;
  std::deque<std::string> status_tail_;
  std::vector<std::string> bundles_;
  std::uint64_t next_seq_ = 0;

  Counter dumps_metric_;
  Registration reg_;
};

}  // namespace txf::obs
