// Shared bucketed-percentile extraction.
//
// Every histogram in the tree is "counts per bucket + a static mapping from
// bucket index to an inclusive upper bound" — util::LatencyHistogram's
// 32-per-octave log buckets, obs::Histogram's power-of-two buckets. The
// quantile walk over such a shape is identical regardless of the bucket
// mapping, so it lives here once and both histogram types (and the metrics
// timeline's percentile cuts) call into it instead of each carrying its own
// copy of the scan.
#pragma once

#include <cstddef>
#include <cstdint>

namespace txf::obs {

/// Value at quantile `q` in [0, 1] over `n` buckets whose counts are read
/// through `count_of(i)` and whose inclusive upper bounds come from
/// `upper_bound(i)`. `total` is the number of recorded samples (the sum of
/// all counts); returns 0 when it is 0. The result is the upper bound of
/// the bucket containing the target rank — the same contract
/// util::LatencyHistogram::quantile has always had.
template <typename CountOf, typename UpperBound>
std::uint64_t quantile_from_buckets(std::size_t n, std::uint64_t total,
                                    double q, CountOf&& count_of,
                                    UpperBound&& upper_bound) noexcept {
  if (total == 0 || n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(total - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < n; ++i) {
    seen += count_of(i);
    if (seen >= target) return upper_bound(i);
  }
  return upper_bound(n - 1);
}

}  // namespace txf::obs
