#include "obs/trace.hpp"

#if defined(TXF_TRACE_ENABLED)

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>

#include "obs/abort_cause.hpp"
#include "util/cache_line.hpp"

namespace txf::obs::trace {

namespace detail {
std::atomic<bool> g_enabled{true};
}  // namespace detail

namespace {

std::uint64_t steady_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Record packing: word A is the raw start timestamp; word B packs
//   [63:58] event id   [57] span flag   [55:32] arg (24 bits)
//   [31:0]  duration in ticks, saturated (~1.4 s at 3 GHz — spans longer
//           than that clamp; see DESIGN.md).
std::uint64_t pack(Ev ev, bool span, std::uint32_t arg,
                   std::uint64_t dur) noexcept {
  if (dur > 0xFFFFFFFFull) dur = 0xFFFFFFFFull;
  return (static_cast<std::uint64_t>(ev) << 58) |
         (static_cast<std::uint64_t>(span ? 1 : 0) << 57) |
         (static_cast<std::uint64_t>(arg & 0xFFFFFFu) << 32) | dur;
}

struct Slot {
  std::atomic<std::uint64_t> a{0};
  std::atomic<std::uint64_t> b{0};
};

/// Single-writer ring. The owner thread stores both words relaxed, then
/// publishes with a release store of pos_; all stores are atomic, so a
/// concurrent drainer reading relaxed sees no data race (values from a
/// lapped slot are discarded by position arithmetic, not by inspection).
struct alignas(util::kCacheLineSize) TraceBuffer {
  std::atomic<std::uint64_t> pos{0};  // records ever written
  std::uint32_t tid = 0;
  char pad[util::kCacheLineSize - sizeof(std::atomic<std::uint64_t>) -
           sizeof(std::uint32_t)];
  Slot slots[kRingCapacity];

  void emit(std::uint64_t a, std::uint64_t b) noexcept {
    const std::uint64_t i = pos.load(std::memory_order_relaxed);
    Slot& s = slots[i & (kRingCapacity - 1)];
    s.a.store(a, std::memory_order_relaxed);
    s.b.store(b, std::memory_order_relaxed);
    pos.store(i + 1, std::memory_order_release);
  }
};

struct Domain {
  std::mutex mutex;
  std::vector<std::unique_ptr<TraceBuffer>> buffers;  // never shrinks
  std::uint64_t tsc0;
  std::uint64_t ns0;
  std::string out_path;

  Domain() {
    tsc0 = tsc_now();
    ns0 = steady_ns();
    if (const char* v = std::getenv("TXF_TRACE")) {
      if (std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
          std::strcmp(v, "OFF") == 0 || std::strcmp(v, "false") == 0) {
        detail::g_enabled.store(false, std::memory_order_relaxed);
      }
    }
    if (const char* p = std::getenv("TXF_TRACE_OUT")) {
      out_path = p;
      std::atexit([] {
        Domain& d = Domain::instance();
        if (d.out_path.empty()) return;
        if (write_json(d.out_path.c_str())) {
          std::fprintf(stderr, "txtrace: wrote %s\n", d.out_path.c_str());
        } else {
          std::fprintf(stderr, "txtrace: cannot write %s\n",
                       d.out_path.c_str());
        }
      });
    }
  }

  static Domain& instance() {
    // Leaked: buffers are drained from atexit and may be touched by
    // detached-thread destructors; teardown order must not matter.
    static Domain* d = new Domain();
    return *d;
  }

  TraceBuffer* claim() {
    std::lock_guard<std::mutex> lock(mutex);
    auto buf = std::make_unique<TraceBuffer>();
    buf->tid = static_cast<std::uint32_t>(buffers.size());
    buffers.push_back(std::move(buf));
    return buffers.back().get();
  }
};

/// Per-thread handle; the buffer stays in the domain (drainable) after the
/// thread exits.
struct ThreadHandle {
  TraceBuffer* buf = nullptr;
};

TraceBuffer* local_buffer() {
  static thread_local ThreadHandle handle;
  if (handle.buf == nullptr) handle.buf = Domain::instance().claim();
  return handle.buf;
}

}  // namespace

namespace detail {

void emit(Ev ev, bool span, std::uint32_t arg, std::uint64_t start_tsc,
          std::uint64_t dur_ticks) noexcept {
  if (start_tsc == 0) start_tsc = steady_ns();  // no TSC on this target
  local_buffer()->emit(start_tsc, pack(ev, span, arg, dur_ticks));
}

}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::uint32_t current_tid() { return local_buffer()->tid; }

std::vector<DrainedRecord> drain_records() {
  Domain& d = Domain::instance();
  std::vector<DrainedRecord> out;
  std::lock_guard<std::mutex> lock(d.mutex);
  for (const auto& buf : d.buffers) {
    // Drain protocol: copy the window [first, end), then re-read pos and
    // discard every index the writer may have lapped meanwhile. The +1
    // guards the slot the writer may be mid-way through overwriting before
    // its pos bump is visible.
    const std::uint64_t end = buf->pos.load(std::memory_order_acquire);
    const std::uint64_t first = end > kRingCapacity ? end - kRingCapacity : 0;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> copy;
    copy.reserve(static_cast<std::size_t>(end - first));
    for (std::uint64_t i = first; i < end; ++i) {
      const Slot& s = buf->slots[i & (kRingCapacity - 1)];
      copy.emplace_back(s.a.load(std::memory_order_relaxed),
                        s.b.load(std::memory_order_relaxed));
    }
    const std::uint64_t after = buf->pos.load(std::memory_order_acquire);
    const std::uint64_t min_valid =
        after + 1 > kRingCapacity ? after + 1 - kRingCapacity : 0;
    for (std::uint64_t i = first; i < end; ++i) {
      if (i < min_valid) continue;
      const auto& [a, b] = copy[static_cast<std::size_t>(i - first)];
      DrainedRecord r;
      r.tid = buf->tid;
      r.tsc = a;
      r.dur_ticks = b & 0xFFFFFFFFull;
      r.arg = static_cast<std::uint32_t>((b >> 32) & 0xFFFFFFu);
      r.ev = static_cast<Ev>((b >> 58) & 0x3Fu);
      r.span = ((b >> 57) & 1u) != 0;
      out.push_back(r);
    }
  }
  return out;
}

std::string drain_json() {
  Domain& d = Domain::instance();
  // Calibrate ticks -> microseconds against the wall time elapsed since
  // domain init; by drain time that window is long enough for a stable
  // ratio. Falls back to 1 tick = 1 ns when the counters are nanoseconds
  // already (non-x86 targets) or the window is degenerate.
  const std::uint64_t tsc1 = tsc_now() != 0 ? tsc_now() : steady_ns();
  const std::uint64_t ns1 = steady_ns();
  double ticks_per_us = 1000.0;
  if (ns1 > d.ns0 && tsc1 > d.tsc0) {
    ticks_per_us = static_cast<double>(tsc1 - d.tsc0) /
                   (static_cast<double>(ns1 - d.ns0) / 1000.0);
    if (ticks_per_us <= 0) ticks_per_us = 1000.0;
  }
  const std::uint64_t tsc0 = d.tsc0;
  auto to_us = [&](std::uint64_t ticks) {
    return static_cast<double>(ticks) / ticks_per_us;
  };

  const std::vector<DrainedRecord> records = drain_records();
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(3);
  out << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
  bool first = true;
  for (const auto& r : records) {
    if (r.ev == Ev::kNone || r.ev >= Ev::kCount) continue;
    if (!first) out << ",";
    first = false;
    const double ts = r.tsc >= tsc0 ? to_us(r.tsc - tsc0) : 0.0;
    out << "\n{\"name\": \"" << ev_name(r.ev) << "\", \"ph\": \""
        << (r.span ? 'X' : 'i') << "\", \"pid\": 1, \"tid\": " << r.tid
        << ", \"ts\": " << ts;
    if (r.span) {
      out << ", \"dur\": " << to_us(r.dur_ticks);
    } else {
      out << ", \"s\": \"t\"";
    }
    if (r.ev == Ev::kTxAbort) {
      out << ", \"args\": {\"cause\": \""
          << abort_cause_name(static_cast<AbortCause>(
                 r.arg < static_cast<std::uint32_t>(AbortCause::kCount)
                     ? r.arg
                     : static_cast<std::uint32_t>(AbortCause::kCount)))
          << "\"}";
    } else if (r.arg != 0) {
      out << ", \"args\": {\"arg\": " << r.arg << "}";
    }
    out << "}";
  }
  out << "\n]}\n";
  return out.str();
}

bool write_json(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  const std::string s = drain_json();
  const bool ok = std::fwrite(s.data(), 1, s.size(), f) == s.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace txf::obs::trace

#else  // !TXF_TRACE_ENABLED

// Everything is an inline no-op in the header; nothing to define.

#endif
