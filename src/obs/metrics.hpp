// Unified metrics registry — the process-wide home for every named counter,
// gauge and histogram the engine exports (read-path stats, commit-pipeline
// stage timings, scheduler steal/park counts, contention-manager totals,
// abort-cause taxonomy).
//
// Design:
//  * Metric types are owned by the component that updates them (StmEnv,
//    CommitQueue, ThreadPool, Runtime, ...), exactly where the old bespoke
//    atomics lived — hot paths never touch a lock or a map.
//  * Components register their instances under stable names via a RAII
//    `Registration` and deregister on destruction. Two live instances with
//    the same name (e.g. two StmEnvs in one test binary) are summed at
//    snapshot time; component-local reads (tests, per-run bench deltas)
//    keep their per-instance isolation.
//  * `txf::metrics::snapshot_json()` walks everything currently registered
//    and emits one JSON object — the single exporter every bench and test
//    can share instead of bespoke --json plumbing.
//
// Hot-path updates stay the pattern ReadPathStats established: per-owner
// plain accumulators flushed into these shared metrics at cold points
// (park, commit cascade, teardown); the shared Counter is additionally
// sharded across cache lines for writers that update it directly.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/percentile.hpp"
#include "util/cache_line.hpp"

namespace txf::obs {

/// Monotone counter, sharded across cache lines so unrelated writers do not
/// bounce one line. `load()` mirrors std::atomic so call sites that held a
/// plain atomic before the registry existed compile unchanged.
class Counter {
 public:
  static constexpr std::size_t kShards = 4;

  void add(std::uint64_t n = 1) noexcept {
    shards_[shard_index()].value.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t load(std::memory_order = std::memory_order_relaxed)
      const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_)
      total += s.value.load(std::memory_order_relaxed);
    return total;
  }
  std::uint64_t value() const noexcept { return load(); }

 private:
  static std::size_t shard_index() noexcept {
    static std::atomic<std::uint32_t> next{0};
    static thread_local std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id & (kShards - 1);
  }

  std::array<util::CacheAligned<std::atomic<std::uint64_t>>, kShards> shards_{};
};

/// Last-writer-wins instantaneous value (pool sizes, knob settings).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t load() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Power-of-two bucketed histogram: bucket 0 covers {0, 1}, bucket i
/// covers (2^(i-1), 2^i], the last bucket saturates. 32 buckets span the
/// full range benches care about (batch sizes, walk lengths, nanosecond
/// stage durations up to ~2s).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  static std::size_t bucket_of(std::uint64_t v) noexcept {
    if (v <= 1) return 0;
    const auto b = static_cast<std::size_t>(std::bit_width(v - 1));
    return b < kBuckets ? b : kBuckets - 1;
  }

  void record(std::uint64_t v) noexcept {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  /// Bulk add into an explicit bucket — the flush path for per-owner
  /// accumulators that bucket with their own mapping (read-path walk hist).
  void add_to_bucket(std::size_t i, std::uint64_t n,
                     std::uint64_t value_sum = 0) noexcept {
    buckets_[i < kBuckets ? i : kBuckets - 1].fetch_add(
        n, std::memory_order_relaxed);
    count_.fetch_add(n, std::memory_order_relaxed);
    if (value_sum != 0) sum_.fetch_add(value_sum, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket `i` under the power-of-two scheme.
  static std::uint64_t bucket_upper_bound(std::size_t i) noexcept {
    if (i == 0) return 1;
    if (i >= kBuckets - 1) return ~std::uint64_t{0};
    return std::uint64_t{1} << i;
  }
  /// Value at quantile q (bucket upper bound; shared scan in percentile.hpp
  /// — the same walk util::LatencyHistogram::quantile uses).
  std::uint64_t quantile(double q) const noexcept {
    return quantile_from_buckets(
        kBuckets, count(), q, [this](std::size_t i) { return bucket_count(i); },
        [](std::size_t i) { return bucket_upper_bound(i); });
  }
  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i < kBuckets ? i : kBuckets - 1].load(
        std::memory_order_relaxed);
  }
  /// atomic-array view kept for call sites that indexed the old bespoke
  /// `std::array<std::atomic, N>` histograms directly.
  const std::atomic<std::uint64_t>& operator[](std::size_t i) const noexcept {
    return buckets_[i < kBuckets ? i : kBuckets - 1];
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// One metric's value at a sampling instant (MetricsRegistry
/// ::snapshot_values — the structured sibling of snapshot_json, consumed by
/// the metrics timeline). Counters and gauges fill `value`; histograms fill
/// `value` with the sample count and carry sum + percentile cuts.
struct SampledMetric {
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  std::int64_t value = 0;    // counter/gauge value; histogram count
  std::uint64_t sum = 0;     // histograms only
  std::uint64_t p50 = 0;     // histograms only (bucket upper bounds)
  std::uint64_t p99 = 0;
};

/// Process-wide name -> metric registry. Registration/deregistration take a
/// mutex (cold: component construction); updates never touch the registry.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  void add_counter(const std::string& name, const Counter* c);
  void add_atomic(const std::string& name,
                  const std::atomic<std::uint64_t>* a);
  void add_gauge(const std::string& name, const Gauge* g);
  void add_histogram(const std::string& name, const Histogram* h);
  void remove(const std::string& name, const void* metric);

  /// Summed value of every live counter/atomic registered under `name`
  /// (0 when none is). Gauges sum too (they are per-instance values).
  std::uint64_t counter_value(const std::string& name) const;

  /// One JSON object: counters/gauges as integers, histograms as
  /// {"count", "sum", "buckets": [...]}. Names sorted; instances with the
  /// same name summed.
  std::string snapshot_json() const;

  /// Structured point-in-time cut of every registered metric, sorted by
  /// name, same-name instances summed (histogram percentiles computed over
  /// the merged buckets). One lock, one walk — the bounded per-sample cost
  /// the metrics timeline (obs/timeline.hpp) relies on.
  std::vector<SampledMetric> snapshot_values() const;

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl* impl();
  const Impl* impl() const;
};

/// RAII bundle of registrations; components hold one and chain add_* calls
/// in their constructor. Destruction deregisters everything.
class Registration {
 public:
  Registration() = default;
  ~Registration() { clear(); }
  Registration(const Registration&) = delete;
  Registration& operator=(const Registration&) = delete;

  Registration& counter(const std::string& name, const Counter& c) {
    MetricsRegistry::instance().add_counter(name, &c);
    entries_.push_back({name, &c});
    return *this;
  }
  Registration& atomic(const std::string& name,
                       const std::atomic<std::uint64_t>& a) {
    MetricsRegistry::instance().add_atomic(name, &a);
    entries_.push_back({name, &a});
    return *this;
  }
  Registration& gauge(const std::string& name, const Gauge& g) {
    MetricsRegistry::instance().add_gauge(name, &g);
    entries_.push_back({name, &g});
    return *this;
  }
  Registration& histogram(const std::string& name, const Histogram& h) {
    MetricsRegistry::instance().add_histogram(name, &h);
    entries_.push_back({name, &h});
    return *this;
  }

  void clear() {
    for (const auto& e : entries_)
      MetricsRegistry::instance().remove(e.name, e.metric);
    entries_.clear();
  }

 private:
  struct Entry {
    std::string name;
    const void* metric;
  };
  std::vector<Entry> entries_;
};

}  // namespace txf::obs

namespace txf::metrics {
/// The single exporter (see MetricsRegistry::snapshot_json).
inline std::string snapshot_json() {
  return obs::MetricsRegistry::instance().snapshot_json();
}
}  // namespace txf::metrics
