#include "obs/timeline.hpp"

#include <chrono>
#include <cmath>
#include <sstream>

#include "util/timing.hpp"

namespace txf::obs {

MetricsTimeline::MetricsTimeline(TimelineConfig cfg) : cfg_(cfg) {
  if (cfg_.interval_ms == 0) cfg_.interval_ms = 250;
  if (cfg_.capacity == 0) cfg_.capacity = 1;
  ring_.reserve(cfg_.capacity);
  reg_.counter("obs.timeline.frames", frames_metric_)
      .counter("obs.timeline.dropped", dropped_metric_);
}

MetricsTimeline::~MetricsTimeline() { stop(); }

void MetricsTimeline::add_provider(std::string name, SeriesKind kind,
                                   std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  providers_.push_back(Provider{std::move(name), kind, std::move(fn)});
}

void MetricsTimeline::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  sampler_ = std::thread([this] {
    const auto interval = std::chrono::milliseconds(cfg_.interval_ms);
    while (running_.load(std::memory_order_acquire)) {
      sample_now();
      // Sleep in small slices so stop() is prompt even at long intervals.
      const auto wake = std::chrono::steady_clock::now() + interval;
      while (std::chrono::steady_clock::now() < wake &&
             running_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
  });
}

void MetricsTimeline::stop() {
  running_.store(false, std::memory_order_release);
  if (sampler_.joinable()) sampler_.join();
}

std::size_t MetricsTimeline::series_slot(const std::string& name,
                                         SeriesKind kind) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const std::size_t slot = series_.size();
  series_.push_back(name);
  series_kind_.push_back(kind);
  index_.emplace(name, slot);
  return slot;
}

void MetricsTimeline::record_value(TimelineFrame& frame, std::size_t slot,
                                   double v) {
  if (frame.values.size() <= slot)
    frame.values.resize(slot + 1, std::numeric_limits<double>::quiet_NaN());
  frame.values[slot] = v;
}

void MetricsTimeline::sample_now() {
  // The registry walk happens outside our own mutex: snapshot_values takes
  // the registry's, and provider callbacks may touch arbitrary components.
  const std::vector<SampledMetric> cut =
      MetricsRegistry::instance().snapshot_values();

  std::lock_guard<std::mutex> lock(mu_);
  TimelineFrame frame;
  frame.seq = next_seq_++;
  frame.t_ns = util::now_ns();
  frame.dt_ns = last_t_ns_ == 0 ? 0 : frame.t_ns - last_t_ns_;
  last_t_ns_ = frame.t_ns;
  frame.values.reserve(series_.size());

  auto delta_of = [this](const std::string& name, double cumulative) {
    auto [it, fresh] = prev_.try_emplace(name, cumulative);
    // First observation: the series baseline, not a burst of activity —
    // report no delta rather than the whole history as one frame's worth.
    const double d = fresh ? 0.0 : cumulative - it->second;
    it->second = cumulative;
    return d;
  };

  for (const SampledMetric& m : cut) {
    switch (m.kind) {
      case SampledMetric::Kind::kCounter:
        record_value(frame, series_slot(m.name, SeriesKind::kDelta),
                     delta_of(m.name, static_cast<double>(m.value)));
        break;
      case SampledMetric::Kind::kGauge:
        record_value(frame, series_slot(m.name, SeriesKind::kLevel),
                     static_cast<double>(m.value));
        break;
      case SampledMetric::Kind::kHistogram: {
        const std::string count_name = m.name + ".count";
        record_value(frame, series_slot(count_name, SeriesKind::kDelta),
                     delta_of(count_name, static_cast<double>(m.value)));
        record_value(frame, series_slot(m.name + ".p50", SeriesKind::kLevel),
                     static_cast<double>(m.p50));
        record_value(frame, series_slot(m.name + ".p99", SeriesKind::kLevel),
                     static_cast<double>(m.p99));
        break;
      }
    }
  }
  for (const Provider& p : providers_) {
    const double v = p.fn();
    const std::size_t slot = series_slot(p.name, p.kind);
    record_value(frame, slot,
                 p.kind == SeriesKind::kDelta ? delta_of(p.name, v) : v);
  }

  if (ring_.size() < cfg_.capacity) {
    ring_.push_back(std::move(frame));
  } else {
    ring_[frame.seq % cfg_.capacity] = std::move(frame);
    dropped_metric_.add();
  }
  frames_metric_.add();
}

std::uint64_t MetricsTimeline::frame_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::uint64_t MetricsTimeline::total_frames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

std::uint64_t MetricsTimeline::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ > ring_.size() ? next_seq_ - ring_.size() : 0;
}

std::vector<std::string> MetricsTimeline::series_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_;
}

int MetricsTimeline::series_index(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(name);
  return it == index_.end() ? -1 : static_cast<int>(it->second);
}

std::vector<TimelineFrame> MetricsTimeline::last(std::size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TimelineFrame> out;
  const std::size_t have = ring_.size();
  const std::size_t take = n < have ? n : have;
  out.reserve(take);
  // Oldest retained seq first. The ring is positioned by seq % capacity.
  const std::uint64_t first = next_seq_ - have + (have - take);
  for (std::uint64_t s = first; s < next_seq_; ++s)
    out.push_back(ring_[have < cfg_.capacity ? s : s % cfg_.capacity]);
  return out;
}

std::string MetricsTimeline::timeline_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"interval_ms\": " << cfg_.interval_ms
     << ", \"capacity\": " << cfg_.capacity << ", \"dropped\": "
     << (next_seq_ > ring_.size() ? next_seq_ - ring_.size() : 0)
     << ",\n \"series\": [";
  for (std::size_t i = 0; i < series_.size(); ++i) {
    os << (i != 0 ? ", " : "") << "{\"name\": \"" << series_[i]
       << "\", \"kind\": \""
       << (series_kind_[i] == SeriesKind::kDelta ? "delta" : "level")
       << "\"}";
  }
  os << "],\n \"frames\": [";
  const std::size_t have = ring_.size();
  const std::uint64_t first = next_seq_ - have;
  for (std::uint64_t s = first; s < next_seq_; ++s) {
    const TimelineFrame& f =
        ring_[have < cfg_.capacity ? s : s % cfg_.capacity];
    os << (s != first ? ",\n  " : "\n  ") << "{\"seq\": " << f.seq
       << ", \"t_ns\": " << f.t_ns << ", \"dt_ns\": " << f.dt_ns
       << ", \"values\": [";
    for (std::size_t v = 0; v < f.values.size(); ++v) {
      os << (v != 0 ? ", " : "");
      if (std::isnan(f.values[v])) {
        os << "null";
      } else {
        os << f.values[v];
      }
    }
    os << "]}";
  }
  os << "\n]}\n";
  return os.str();
}

}  // namespace txf::obs
