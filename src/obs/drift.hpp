// Windowed drift detectors over the metrics timeline.
//
// The behaviors that decide whether the engine is healthy over minutes —
// adaptive site-state churn, conflict-share creep, EBR backlog pacing,
// per-stripe commit skew, home-slot hit-rate regression — are invisible to
// a point snapshot and to a 30 s CI smoke. Each detector here is a pure
// function of the last `window_frames` timeline frames: it computes one
// windowed statistic, compares it to its configured bar, and emits a
// structured DriftVerdict. Trigger edges (healthy -> fired) bump the
// `obs.drift.*` counters and emit a `drift.trigger` trace instant, so a
// postmortem trace shows *when* the drift began, and the flight recorder
// (obs/flight_recorder.hpp) embeds the full verdict history in its bundle.
//
// Detectors (names are the stable schema validated by
// scripts/check_trace.py --bundle):
//   site_churn     adaptive promotions+demotions per second. A converged
//                  controller is quiet; sustained churn means the
//                  hysteresis is thrashing between lanes.
//   conflict_trend chargeable-conflict aborts (read_validation +
//                  write_write + tree_order) as a share of window attempts
//                  — the aggregate signal behind the per-site conflict
//                  EWMA. The verdict reports the first-half/second-half
//                  split so a log reader sees the direction too.
//   ebr_backlog    linear slope of the `ebr.pending` level series (per
//                  second). A positive slope sustained across the window
//                  means reclamation is not keeping up with retirement.
//   stripe_skew    hottest / mean per-stripe commit rate over the
//                  `stm.commit.stripe.<s>.committed` provider series. A
//                  skewed spine serializes on one stripe's pipeline.
//   home_hit_rate  first-half vs second-half home-slot hit rate; a drop
//                  means reads are regressing onto the list-walk path.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace txf::obs {

/// Detector thresholds (embedded in core::Config as `drift`). Defaults are
/// deliberately loose — they mark "worth a human look", not SLO breaches —
/// and every soak entry point (txf_server flags, tests) can tighten them.
struct DriftConfig {
  /// Frames per evaluation window (x interval_ms = wall window). Detectors
  /// return unfired "insufficient data" verdicts until the timeline holds
  /// this many frames.
  std::uint32_t window_frames = 16;
  /// site_churn: adaptive state transitions (promotions + demotions) per
  /// second.
  double churn_per_s = 50.0;
  /// conflict_trend: chargeable-conflict share of window attempts.
  double conflict_share = 0.25;
  /// ebr_backlog: fitted growth of pending retirements, nodes per second.
  double ebr_slope_per_s = 4000.0;
  /// stripe_skew: hottest stripe commit rate over the mean stripe rate.
  double stripe_skew = 4.0;
  /// home_hit_rate: absolute hit-rate drop from first to second half.
  double home_hit_drop = 0.20;
};

enum class DriftKind : std::uint8_t {
  kSiteChurn = 0,
  kConflictTrend,
  kEbrBacklog,
  kStripeSkew,
  kHomeHitRate,
  kCount,
};

const char* drift_kind_name(DriftKind k) noexcept;

/// One detector's answer for one evaluation.
struct DriftVerdict {
  DriftKind kind = DriftKind::kCount;
  bool fired = false;
  bool enough_data = false;  // window full and volume floors met
  double value = 0.0;        // the windowed statistic
  double threshold = 0.0;    // the bar it was compared to
  std::uint64_t first_seq = 0;  // window bounds (timeline frame seqs)
  std::uint64_t last_seq = 0;
  std::string detail;  // human-readable supporting numbers

  std::string to_json() const;
};

class DriftMonitor {
 public:
  DriftMonitor(const DriftConfig& cfg, const MetricsTimeline& timeline);

  DriftMonitor(const DriftMonitor&) = delete;
  DriftMonitor& operator=(const DriftMonitor&) = delete;

  /// Run every detector over the latest window. Edge-triggered accounting:
  /// a detector that stays fired across consecutive evaluations counts one
  /// trigger (and one trace instant) until it goes quiet again. Call from
  /// one thread (the soak controller); read accessors are safe alongside.
  std::vector<DriftVerdict> evaluate();

  std::uint64_t evaluations() const noexcept {
    return evaluations_metric_.value();
  }
  std::uint64_t triggers() const noexcept { return triggers_metric_.value(); }
  /// Names of detectors fired in the most recent evaluation.
  std::vector<std::string> fired_names() const;
  /// Names of detectors that triggered at least once, in first-trigger
  /// order (the run-level summary for reports).
  std::vector<std::string> fired_ever_names() const;

  /// {"verdicts": [latest per detector], "fired_history": [...]} — the
  /// flight-recorder payload. History keeps the first verdict of each
  /// trigger edge (bounded at kMaxHistory).
  std::string verdicts_json() const;

 private:
  static constexpr std::size_t kMaxHistory = 256;

  DriftVerdict detect_site_churn(const std::vector<TimelineFrame>& w) const;
  DriftVerdict detect_conflict_trend(
      const std::vector<TimelineFrame>& w) const;
  DriftVerdict detect_ebr_backlog(const std::vector<TimelineFrame>& w) const;
  DriftVerdict detect_stripe_skew(const std::vector<TimelineFrame>& w) const;
  DriftVerdict detect_home_hit_rate(
      const std::vector<TimelineFrame>& w) const;

  DriftConfig cfg_;
  const MetricsTimeline* timeline_;

  mutable std::mutex mu_;
  std::vector<DriftVerdict> latest_;   // one per DriftKind
  std::vector<DriftVerdict> history_;  // trigger edges, in order
  std::array<bool, static_cast<std::size_t>(DriftKind::kCount)> latched_{};

  Counter evaluations_metric_;
  Counter triggers_metric_;
  std::array<Counter, static_cast<std::size_t>(DriftKind::kCount)>
      per_detector_;
  Registration reg_;
};

}  // namespace txf::obs
