#include "obs/metrics.hpp"

#include <map>
#include <mutex>
#include <sstream>
#include <vector>

namespace txf::obs {

namespace {

enum class Kind : std::uint8_t { kCounter, kAtomic, kGauge, kHistogram };

struct Entry {
  Kind kind;
  const void* metric;
};

}  // namespace

struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  // std::map: snapshot_json iterates in sorted name order for free, and
  // registration is cold (component construction only).
  std::map<std::string, std::vector<Entry>> by_name;

  void add(const std::string& name, Kind kind, const void* metric) {
    std::lock_guard<std::mutex> lock(mutex);
    by_name[name].push_back(Entry{kind, metric});
  }
};

MetricsRegistry& MetricsRegistry::instance() {
  // Leaked singleton: components may deregister from static destructors in
  // any order; the registry must outlive them all.
  static MetricsRegistry* reg = new MetricsRegistry();
  return *reg;
}

MetricsRegistry::Impl* MetricsRegistry::impl() {
  static Impl* i = new Impl();
  return i;
}

const MetricsRegistry::Impl* MetricsRegistry::impl() const {
  return const_cast<MetricsRegistry*>(this)->impl();
}

void MetricsRegistry::add_counter(const std::string& name, const Counter* c) {
  impl()->add(name, Kind::kCounter, c);
}
void MetricsRegistry::add_atomic(const std::string& name,
                                 const std::atomic<std::uint64_t>* a) {
  impl()->add(name, Kind::kAtomic, a);
}
void MetricsRegistry::add_gauge(const std::string& name, const Gauge* g) {
  impl()->add(name, Kind::kGauge, g);
}
void MetricsRegistry::add_histogram(const std::string& name,
                                    const Histogram* h) {
  impl()->add(name, Kind::kHistogram, h);
}

void MetricsRegistry::remove(const std::string& name, const void* metric) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mutex);
  auto it = i->by_name.find(name);
  if (it == i->by_name.end()) return;
  auto& v = it->second;
  for (auto e = v.begin(); e != v.end(); ++e) {
    if (e->metric == metric) {
      v.erase(e);
      break;
    }
  }
  if (v.empty()) i->by_name.erase(it);
}

namespace {

std::uint64_t scalar_value(const Entry& e) {
  switch (e.kind) {
    case Kind::kCounter:
      return static_cast<const Counter*>(e.metric)->load();
    case Kind::kAtomic:
      return static_cast<const std::atomic<std::uint64_t>*>(e.metric)->load(
          std::memory_order_relaxed);
    case Kind::kGauge:
      return static_cast<std::uint64_t>(
          static_cast<const Gauge*>(e.metric)->load());
    case Kind::kHistogram:
      return 0;
  }
  return 0;
}

}  // namespace

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  const Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mutex);
  auto it = i->by_name.find(name);
  if (it == i->by_name.end()) return 0;
  std::uint64_t total = 0;
  for (const auto& e : it->second) total += scalar_value(e);
  return total;
}

std::vector<SampledMetric> MetricsRegistry::snapshot_values() const {
  const Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mutex);
  std::vector<SampledMetric> out;
  out.reserve(i->by_name.size());
  for (const auto& [name, entries] : i->by_name) {
    if (entries.empty()) continue;
    SampledMetric m;
    m.name = name;
    if (entries.front().kind == Kind::kHistogram) {
      m.kind = SampledMetric::Kind::kHistogram;
      std::uint64_t count = 0;
      std::array<std::uint64_t, Histogram::kBuckets> buckets{};
      for (const auto& e : entries) {
        const auto* h = static_cast<const Histogram*>(e.metric);
        count += h->count();
        m.sum += h->sum();
        for (std::size_t b = 0; b < Histogram::kBuckets; ++b)
          buckets[b] += h->bucket_count(b);
      }
      m.value = static_cast<std::int64_t>(count);
      auto count_of = [&](std::size_t b) { return buckets[b]; };
      auto upper = [](std::size_t b) {
        return Histogram::bucket_upper_bound(b);
      };
      m.p50 = quantile_from_buckets(Histogram::kBuckets, count, 0.50,
                                    count_of, upper);
      m.p99 = quantile_from_buckets(Histogram::kBuckets, count, 0.99,
                                    count_of, upper);
    } else if (entries.front().kind == Kind::kGauge) {
      m.kind = SampledMetric::Kind::kGauge;
      for (const auto& e : entries)
        m.value += static_cast<const Gauge*>(e.metric)->load();
    } else {
      m.kind = SampledMetric::Kind::kCounter;
      std::uint64_t total = 0;
      for (const auto& e : entries) total += scalar_value(e);
      m.value = static_cast<std::int64_t>(total);
    }
    out.push_back(std::move(m));
  }
  return out;
}

std::string MetricsRegistry::snapshot_json() const {
  const Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mutex);
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [name, entries] : i->by_name) {
    if (entries.empty()) continue;
    if (!first) out << ",";
    first = false;
    out << "\n  \"" << name << "\": ";
    if (entries.front().kind == Kind::kHistogram) {
      std::uint64_t count = 0, sum = 0;
      std::array<std::uint64_t, Histogram::kBuckets> buckets{};
      for (const auto& e : entries) {
        const auto* h = static_cast<const Histogram*>(e.metric);
        count += h->count();
        sum += h->sum();
        for (std::size_t b = 0; b < Histogram::kBuckets; ++b)
          buckets[b] += h->bucket_count(b);
      }
      out << "{\"count\": " << count << ", \"sum\": " << sum
          << ", \"buckets\": [";
      for (std::size_t b = 0; b < buckets.size(); ++b)
        out << (b ? ", " : "") << buckets[b];
      out << "]}";
    } else if (entries.front().kind == Kind::kGauge) {
      // Gauges are signed; summing through uint64 would wrap negatives.
      std::int64_t total = 0;
      for (const auto& e : entries)
        total += static_cast<const Gauge*>(e.metric)->load();
      out << total;
    } else {
      std::uint64_t total = 0;
      for (const auto& e : entries) total += scalar_value(e);
      out << total;
    }
  }
  out << "\n}\n";
  return out.str();
}

}  // namespace txf::obs
