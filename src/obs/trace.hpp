// txtrace: always-on, per-thread, lock-free binary event tracing.
//
// Every thread that emits an event owns a cache-line-padded ring buffer of
// fixed 16-byte records (TSC timestamp + packed event/arg/duration). The
// owner writes with relaxed stores and publishes with one release store of
// the position — no CAS, no lock, no branch beyond one relaxed enabled()
// load. A drainer copies a buffer concurrently and discards any slot the
// writer may have lapped (see drain protocol in trace.cpp / DESIGN.md).
//
// Spans are emitted as single self-contained records at span END (start
// TSC + duration in ticks), so a wrapped ring never strands an unmatched
// begin: every retained record is a complete Chrome trace_event "X" (span)
// or "i" (instant) event.
//
// Compile-time gate: building with -DTXF_TRACE=OFF (CMake option, which
// defines TXF_TRACE_DISABLED) makes every emit below compile to an empty
// inline — true zero cost. Tracing is otherwise on by default, including
// for out-of-tree consumers of the umbrella header; a client must never
// have to define anything to get the always-on behaviour. With tracing
// compiled in, TXF_TRACE=0/off in the environment disables emission at
// runtime (one relaxed load per site), and TXF_TRACE_OUT=<path> dumps the
// drained Chrome trace_event JSON at process exit (loadable in Perfetto /
// about:tracing).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#if !defined(TXF_TRACE_DISABLED) && !defined(TXF_TRACE_ENABLED)
#define TXF_TRACE_ENABLED 1
#endif

namespace txf::obs::trace {

enum class Ev : std::uint8_t {
  kNone = 0,
  kTx,                 // span: one top-level attempt (flat or tree)
  kTxCommit,           // instant: the attempt committed
  kTxAbort,            // instant: attempt aborted; arg = AbortCause
  kFutureSubmit,       // instant: future submitted; arg = node index
  kFutureEval,         // span: future body execution; arg = node index
  kFutureJoin,         // span: TxFuture::get wait
  kTreeResolve,        // instant: tree read fell back to a list walk; arg = hops
  kReadWalk,           // instant: flat read fell back to a list walk; arg = hops
  kCommitPrevalidate,  // span: stage-1 pre-validation
  kCommitAssign,       // span: stage-2 batched version assignment pass
  kCommitWriteback,    // span: stage-3 write-back fan-out pass
  kSchedRun,           // span: one pool task execution
  kSchedSteal,         // instant: successful steal; arg = victim index
  kSchedPark,          // instant: worker parked
  kAdaptiveDecide,     // instant: submit-site scheduling decision;
                       //   arg: 0 = parallel, 1 = inline, 2 = probe
  kDriftTrigger,       // instant: a drift detector crossed its bar;
                       //   arg = obs::DriftKind
  kTest,               // unit tests only
  kCount
};

inline const char* ev_name(Ev e) noexcept {
  switch (e) {
    case Ev::kTx: return "tx";
    case Ev::kTxCommit: return "tx.commit";
    case Ev::kTxAbort: return "tx.abort";
    case Ev::kFutureSubmit: return "future.submit";
    case Ev::kFutureEval: return "future.eval";
    case Ev::kFutureJoin: return "future.join";
    case Ev::kTreeResolve: return "tree.resolve";
    case Ev::kReadWalk: return "read.walk";
    case Ev::kCommitPrevalidate: return "commit.prevalidate";
    case Ev::kCommitAssign: return "commit.assign";
    case Ev::kCommitWriteback: return "commit.writeback";
    case Ev::kSchedRun: return "sched.run";
    case Ev::kSchedSteal: return "sched.steal";
    case Ev::kSchedPark: return "sched.park";
    case Ev::kAdaptiveDecide: return "adaptive.decide";
    case Ev::kDriftTrigger: return "drift.trigger";
    case Ev::kTest: return "test";
    default: return "none";
  }
}

/// One decoded record (drain output; tests assert on these).
struct DrainedRecord {
  std::uint32_t tid;        // per-buffer (per-thread) id
  std::uint64_t tsc;        // start timestamp, raw ticks
  std::uint64_t dur_ticks;  // 0 for instants
  std::uint32_t arg;
  Ev ev;
  bool span;
};

#if defined(TXF_TRACE_ENABLED)

/// Records per thread ring (compile-time; 16 bytes each).
inline constexpr std::size_t kRingCapacity = std::size_t{1} << 13;

namespace detail {
extern std::atomic<bool> g_enabled;
void emit(Ev ev, bool span, std::uint32_t arg, std::uint64_t start_tsc,
          std::uint64_t dur_ticks) noexcept;
}  // namespace detail

inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Raw per-thread timestamp: invariant TSC on x86-64, the virtual counter
/// on aarch64, steady_clock ns elsewhere. Monotone per thread; calibrated
/// against steady_clock at drain time.
inline std::uint64_t tsc_now() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_ia32_rdtsc();
#elif defined(__aarch64__)
  std::uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return 0;  // trace.cpp falls back to steady_clock inside emit
#endif
}

inline void instant(Ev ev, std::uint32_t arg = 0) noexcept {
  if (enabled()) detail::emit(ev, false, arg, tsc_now(), 0);
}

/// Emit a complete span given its start timestamp (from tsc_now()).
inline void complete(Ev ev, std::uint64_t start_tsc,
                     std::uint32_t arg = 0) noexcept {
  if (enabled()) detail::emit(ev, true, arg, start_tsc, tsc_now() - start_tsc);
}

/// RAII span: stamps start on construction, emits one complete record on
/// destruction (exception-safe — an unwinding attempt still closes its
/// span). set_arg() lets the cause/index be decided mid-span.
class Span {
 public:
  explicit Span(Ev ev, std::uint32_t arg = 0) noexcept
      : ev_(ev), arg_(arg), armed_(enabled()) {
    if (armed_) t0_ = tsc_now();
  }
  ~Span() {
    if (armed_) detail::emit(ev_, true, arg_, t0_, tsc_now() - t0_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  void set_arg(std::uint32_t arg) noexcept { arg_ = arg; }

 private:
  std::uint64_t t0_ = 0;
  Ev ev_;
  std::uint32_t arg_;
  bool armed_;
};

/// Runtime toggle (tests; normal control is the TXF_TRACE env var).
void set_enabled(bool on) noexcept;

/// Ring-buffer id of the calling thread (claims a buffer if needed).
std::uint32_t current_tid();

/// Copy out every valid record from every buffer (live and retired),
/// in per-buffer write order. Safe to call while writers are running.
std::vector<DrainedRecord> drain_records();

/// Drained trace as Chrome trace_event JSON ({"traceEvents": [...]}).
std::string drain_json();

/// Write drain_json() to `path`. Returns false on I/O error.
bool write_json(const char* path);

#else  // !TXF_TRACE_ENABLED — every site compiles to nothing.

inline constexpr std::size_t kRingCapacity = 0;

inline bool enabled() noexcept { return false; }
inline std::uint64_t tsc_now() noexcept { return 0; }
inline void instant(Ev, std::uint32_t = 0) noexcept {}
inline void complete(Ev, std::uint64_t, std::uint32_t = 0) noexcept {}

class Span {
 public:
  explicit Span(Ev, std::uint32_t = 0) noexcept {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  void set_arg(std::uint32_t) noexcept {}
};

inline void set_enabled(bool) noexcept {}
inline std::uint32_t current_tid() { return 0; }
inline std::vector<DrainedRecord> drain_records() { return {}; }
inline std::string drain_json() { return "{\"traceEvents\": []}\n"; }
inline bool write_json(const char*) { return false; }

#endif  // TXF_TRACE_ENABLED

}  // namespace txf::obs::trace
