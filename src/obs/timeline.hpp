// MetricsTimeline: the time axis for the metrics registry.
//
// `MetricsRegistry::snapshot_json()` answers "where are the counters NOW";
// long soaks need "how did they MOVE" — adaptive site-state churn,
// conflict-share trends, EBR backlog pacing and per-stripe commit skew are
// all statements about windows of time, not instants. The timeline takes a
// periodic (default 250 ms) structured cut of the registry plus any
// caller-registered providers and folds it into a fixed-capacity ring of
// *delta frames*:
//
//   * counters  -> per-frame deltas (rates are delta / dt on demand)
//   * gauges    -> instantaneous levels
//   * histograms-> three series: `<name>.count` (delta), `<name>.p50` and
//                  `<name>.p99` (cumulative percentile cuts via the shared
//                  bucketed-quantile helper, obs/percentile.hpp)
//
// Per-sample cost is bounded: one registry walk under its mutex, one value
// per live series, no per-event work — a sampler at 4 Hz is invisible next
// to the traffic it observes (gated by scripts/bench_trace_overhead.sh).
// The ring holds the last `capacity` frames; `seq` is monotone and
// gap-free, so a drained timeline proves its own continuity (dropped
// frames are only ever the oldest, and `dropped()` counts them).
//
// Consumers: the drift detectors (obs/drift.hpp) evaluate windows of
// frames; the flight recorder (obs/flight_recorder.hpp) embeds
// `timeline_json()` in postmortem bundles; `txf_server` starts one through
// `Runtime` (`Config::timeline`, or `TXF_TIMELINE=1` in the environment
// for any binary).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace txf::obs {

/// Timeline knobs (embedded in core::Config as `timeline`).
struct TimelineConfig {
  /// Off by default: the timeline owns a sampling thread, and unit tests /
  /// short benches should not each grow one. txf_server enables it
  /// explicitly; TXF_TIMELINE=1 enables it for any Runtime.
  bool enabled = false;
  std::uint32_t interval_ms = 250;
  /// Frames retained (ring). 480 x 250 ms = the last two minutes.
  std::uint32_t capacity = 480;
};

/// How a series' per-frame value is produced from its source.
enum class SeriesKind : std::uint8_t {
  kDelta,  // cumulative source; frame carries the delta since prev frame
  kLevel,  // instantaneous source; frame carries the value itself
};

/// One sampling instant. `values` is indexed by the timeline's series
/// table; series discovered after this frame was taken simply have no slot
/// (values.size() < series().size()) and read as NaN.
struct TimelineFrame {
  std::uint64_t seq = 0;    // monotone, gap-free
  std::uint64_t t_ns = 0;   // util::now_ns() at the sample
  std::uint64_t dt_ns = 0;  // since the previous frame (0 for the first)
  std::vector<double> values;
};

class MetricsTimeline {
 public:
  explicit MetricsTimeline(TimelineConfig cfg);
  ~MetricsTimeline();  // stops the sampler thread if running

  MetricsTimeline(const MetricsTimeline&) = delete;
  MetricsTimeline& operator=(const MetricsTimeline&) = delete;

  /// Register an external scalar source sampled alongside the registry —
  /// the hook for signals that are deliberately *not* registry metrics
  /// (EBR pending count, per-stripe committed splits). kDelta providers
  /// return a cumulative value; the frame stores its delta. Call before
  /// start() or between samples; not thread-safe against a running
  /// sampler's tick (take your own turn via sample_now() in tests).
  void add_provider(std::string name, SeriesKind kind,
                    std::function<double()> fn);

  /// Spawn the periodic sampler thread (idempotent).
  void start();
  /// Stop and join the sampler (idempotent; also done by the destructor).
  void stop();

  /// Take one frame synchronously (the sampler's tick; public for tests
  /// and for callers that pace sampling themselves).
  void sample_now();

  // ---- read side (all snapshot under the mutex) -----------------------

  const TimelineConfig& config() const noexcept { return cfg_; }
  std::uint64_t frame_count() const;  // frames currently retained
  std::uint64_t total_frames() const; // frames ever sampled (== next seq)
  std::uint64_t dropped() const;      // frames overwritten by the ring

  /// Series table (append-only; index is stable for the timeline's life).
  std::vector<std::string> series_names() const;
  /// Index of `name` in the series table, or -1 if never seen.
  int series_index(const std::string& name) const;
  /// Last `n` frames, oldest first (fewer when the ring holds fewer).
  std::vector<TimelineFrame> last(std::size_t n) const;

  /// Value of series `idx` in `frame` (NaN when the frame predates the
  /// series or idx is out of range).
  static double value(const TimelineFrame& frame, int idx) noexcept {
    if (idx < 0 || static_cast<std::size_t>(idx) >= frame.values.size())
      return std::numeric_limits<double>::quiet_NaN();
    return frame.values[static_cast<std::size_t>(idx)];
  }

  /// The whole retained timeline as one JSON object:
  /// {"interval_ms", "capacity", "dropped", "series": [{"name","kind"}...],
  ///  "frames": [{"seq","t_ns","dt_ns","values":[...]}...]} — frames oldest
  /// first, values aligned to `series` (null where a frame predates a
  /// series). scripts/check_trace.py --bundle validates the shape.
  std::string timeline_json() const;

 private:
  struct Provider {
    std::string name;
    SeriesKind kind;
    std::function<double()> fn;
  };

  // Callers hold mu_.
  std::size_t series_slot(const std::string& name, SeriesKind kind);
  void record_value(TimelineFrame& frame, std::size_t slot, double v);

  TimelineConfig cfg_;

  mutable std::mutex mu_;
  std::vector<std::string> series_;      // append-only
  std::vector<SeriesKind> series_kind_;  // parallel to series_
  std::map<std::string, std::size_t> index_;
  std::map<std::string, double> prev_;   // last cumulative value per kDelta
  std::vector<Provider> providers_;
  std::vector<TimelineFrame> ring_;      // ring of cfg_.capacity frames
  std::uint64_t next_seq_ = 0;
  std::uint64_t last_t_ns_ = 0;

  std::thread sampler_;
  std::atomic<bool> running_{false};

  Counter frames_metric_;
  Counter dropped_metric_;
  Registration reg_;
};

}  // namespace txf::obs
