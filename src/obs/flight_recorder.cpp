#include "obs/flight_recorder.hpp"

#include <cctype>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/drift.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

namespace txf::obs {

namespace fs = std::filesystem;

namespace {

std::string sanitize(const std::string& reason) {
  std::string out;
  out.reserve(reason.size());
  for (char c : reason) {
    const auto u = static_cast<unsigned char>(c);
    if (std::isalnum(u)) {
      out.push_back(static_cast<char>(std::tolower(u)));
    } else if (!out.empty() && out.back() != '-') {
      out.push_back('-');
    }
  }
  while (!out.empty() && out.back() == '-') out.pop_back();
  return out.empty() ? "manual" : out;
}

bool write_file(const fs::path& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << body;
  return static_cast<bool>(out);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out.push_back(c);
  }
  return out;
}

}  // namespace

FlightRecorder::FlightRecorder(std::string dir) : dir_(std::move(dir)) {
  reg_.counter("obs.flight.dumps", dumps_metric_);
}

void FlightRecorder::note_status_line(const std::string& line) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  status_tail_.push_back(line);
  while (status_tail_.size() > kStatusLines) status_tail_.pop_front();
}

std::string FlightRecorder::dump(const std::string& reason,
                                 const MetricsTimeline* timeline,
                                 const DriftMonitor* drift,
                                 const std::string& config_json) {
  if (!enabled()) return {};

  // Drain the collectors before taking our own lock: drain_json and
  // timeline_json take theirs, and nothing here depends on the tail ring.
  const std::string metrics = MetricsRegistry::instance().snapshot_json();
  const std::string trace = trace::drain_json();
  const std::string timeline_body = timeline ? timeline->timeline_json() : "";
  const std::string verdicts = drift ? drift->verdicts_json() : "";

  std::lock_guard<std::mutex> lock(mu_);
  const std::string slug = sanitize(reason);
  const fs::path bundle =
      fs::path(dir_) / ("flight-" + std::to_string(next_seq_) + "-" + slug);
  std::error_code ec;
  fs::create_directories(bundle, ec);
  if (ec) return {};
  ++next_seq_;

  std::vector<std::string> files;
  auto emit = [&](const char* name, const std::string& body) {
    if (write_file(bundle / name, body)) files.emplace_back(name);
  };
  emit("metrics.json", metrics);
  emit("trace.json", trace);
  if (timeline) emit("timeline.json", timeline_body);
  if (drift) emit("verdicts.json", verdicts);
  if (!config_json.empty()) emit("config.json", config_json);
  {
    std::ostringstream tail;
    for (const std::string& line : status_tail_) tail << line << "\n";
    emit("status_tail.txt", tail.str());
  }

  const auto wall_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  std::ostringstream manifest;
  manifest << "{\"reason\": \"" << json_escape(reason) << "\", \"slug\": \""
           << slug << "\", \"seq\": " << (next_seq_ - 1)
           << ", \"wall_ms\": " << wall_ms << ", \"files\": [";
  for (std::size_t i = 0; i < files.size(); ++i)
    manifest << (i ? ", " : "") << "\"" << files[i] << "\"";
  manifest << "]}\n";
  if (!write_file(bundle / "manifest.json", manifest.str())) return {};

  dumps_metric_.add();
  bundles_.push_back(bundle.string());
  return bundles_.back();
}

std::vector<std::string> FlightRecorder::bundle_paths() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bundles_;
}

}  // namespace txf::obs
