// Abort-cause taxonomy: replaces the flat "aborted" counter with one cause
// per failed attempt, threaded through Transaction (flat STM), TxTree and
// the contention manager, counted in the MetricsRegistry and stamped on
// tx.abort trace events.
//
// Accounting contract (the double-count fix):
//  * `tx.abort.cause.*` and `tx.attempt_aborts` count once per FAILED
//    ATTEMPT — a transaction that aborts three times and then commits
//    contributes 3 to its causes and 0 to tx.aborted.
//  * `tx.commits` / `tx.aborted` count once per FINAL OUTCOME of an
//    atomically() call: commits on return, aborted only when an exception
//    propagates to the caller (the only way a call finally aborts).
//  * `tx.abort.cause.deadline` counts deadline-driven escalations to the
//    serial-irrevocable path; it marks the abandonment of the parallel
//    strategy and is deliberately NOT part of tx.attempt_aborts.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

namespace txf::obs {

enum class AbortCause : std::uint8_t {
  kReadValidation = 0,  // read set overtaken by a newer commit
  kWriteWrite,          // inter-tree write conflict (Alg. 1 owned-by-other)
  kStaleSnapshot,       // snapshot lost a race with version trimming
  kTreeOrder,           // strong-order violation: continuation conflict
  kFailpointInjected,   // a chaos-plan failure action forced the abort
  kDeadlineExceeded,    // Config::tx_deadline_us expired (escalation)
  kSerialPreempt,       // stalled while a serial-irrevocable txn was pending
  kStalled,             // stall detector fired (no pending escalation)
  kExplicitRetry,       // retry_now() / user RetryTransaction
  kUserException,       // user code threw out of the transaction
  kCount
};

inline const char* abort_cause_name(AbortCause c) noexcept {
  switch (c) {
    case AbortCause::kReadValidation: return "read_validation";
    case AbortCause::kWriteWrite: return "write_write";
    case AbortCause::kStaleSnapshot: return "stale_snapshot";
    case AbortCause::kTreeOrder: return "tree_order";
    case AbortCause::kFailpointInjected: return "failpoint_injected";
    case AbortCause::kDeadlineExceeded: return "deadline";
    case AbortCause::kSerialPreempt: return "serial_preempt";
    case AbortCause::kStalled: return "stalled";
    case AbortCause::kExplicitRetry: return "explicit_retry";
    case AbortCause::kUserException: return "user_exception";
    case AbortCause::kCount: break;
  }
  return "unknown";
}

/// Per-StmEnv abort accounting (one per Runtime via its env). Registered in
/// the MetricsRegistry; benches and tests may also read an env's instance
/// directly for per-run isolation.
struct AbortAccounting {
  std::array<Counter, static_cast<std::size_t>(AbortCause::kCount)> cause{};
  Counter attempt_aborts;  // any failed attempt, all causes
  Counter tx_commits;      // final outcome: committed
  Counter tx_aborted;      // final outcome: exception propagated
  Registration reg;

  AbortAccounting() {
    for (std::size_t i = 0; i < cause.size(); ++i) {
      reg.counter(std::string("tx.abort.cause.") +
                      abort_cause_name(static_cast<AbortCause>(i)),
                  cause[i]);
    }
    reg.counter("tx.attempt_aborts", attempt_aborts)
        .counter("tx.commits", tx_commits)
        .counter("tx.aborted", tx_aborted);
  }

  Counter& of(AbortCause c) noexcept {
    return cause[static_cast<std::size_t>(c)];
  }
  const Counter& of(AbortCause c) const noexcept {
    return cause[static_cast<std::size_t>(c)];
  }

  /// One failed attempt with cause `c` (see the accounting contract above).
  void on_attempt_abort(AbortCause c) noexcept {
    of(c).add();
    attempt_aborts.add();
  }
};

}  // namespace txf::obs
