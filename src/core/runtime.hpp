// Runtime: the engine object binding the STM environment, the future
// execution pool, configuration, and statistics. One per process is
// typical; tests create private instances.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/adaptive.hpp"
#include "core/config.hpp"
#include "core/tx_tree.hpp"
#include "sched/thread_pool.hpp"
#include "stm/transaction.hpp"
#include "util/failpoint.hpp"
#include "util/stats.hpp"

namespace txf::core {

class Runtime {
 public:
  explicit Runtime(Config config = {})
      : config_(std::move(config)),
        env_(validated_stripes(config_)),
        pool_(config_.pool_threads),
        adaptive_(config_, pool_) {
    // Arm the chaos plan (if any) for the lifetime of this runtime.
    if (!config_.chaos.rules.empty()) {
      util::fp::Controller::instance().arm(config_.chaos);
      armed_chaos_ = true;
    }
    maybe_start_timeline();
  }

  ~Runtime() {
    if (armed_chaos_) util::fp::Controller::instance().disarm();
  }

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  const Config& config() const noexcept { return config_; }
  stm::StmEnv& env() noexcept { return env_; }
  sched::ThreadPool& pool() noexcept { return pool_; }
  /// Per-submit-site inline-vs-parallel controller (core/adaptive.hpp).
  adaptive::AdaptiveScheduler& adaptive() noexcept { return adaptive_; }
  TxStats& stats() noexcept { return stats_; }
  util::RobustnessCounters& robustness() noexcept { return robustness_; }

  /// The periodic metrics timeline, or null when not enabled
  /// (Config::timeline.enabled, or TXF_TIMELINE=1 in the environment).
  obs::MetricsTimeline* timeline() noexcept { return timeline_.get(); }

  /// Serial-irrevocable token. Every top-level attempt holds it shared; an
  /// escalated attempt takes it exclusive, so while the escalated transaction
  /// runs no other top-level transaction can start or commit — the escalated
  /// tree executes its futures inline and cannot lose a conflict, which
  /// bounds every atomically() call (see api.hpp contention manager).
  std::shared_mutex& serial_token() noexcept { return serial_token_; }

  /// Escalations waiting for (or holding) the exclusive token. Normal
  /// attempts defer to pending escalations before taking the token shared,
  /// so writer acquisition cannot starve under a stream of readers
  /// (pthread rwlocks prefer readers by default).
  std::atomic<int>& serial_waiters() noexcept { return serial_waiters_; }

  /// Dump the engine counters (for debugging and example epilogues).
  void print_stats(std::FILE* out = stderr) const {
    std::fprintf(
        out,
        "txfutures stats: commits=%llu top_aborts=%llu tree_restarts=%llu "
        "fallback_restarts=%llu future_reexecs=%llu futures=%llu "
        "ro_skips=%llu serial_fallbacks=%llu partial_rollbacks=%llu\n",
        static_cast<unsigned long long>(stats_.top_commits.load()),
        static_cast<unsigned long long>(stats_.top_aborts.load()),
        static_cast<unsigned long long>(stats_.tree_restarts.load()),
        static_cast<unsigned long long>(stats_.fallback_restarts.load()),
        static_cast<unsigned long long>(stats_.future_reexecutions.load()),
        static_cast<unsigned long long>(stats_.futures_submitted.load()),
        static_cast<unsigned long long>(stats_.ro_validation_skips.load()),
        static_cast<unsigned long long>(stats_.serial_fallbacks.load()),
        static_cast<unsigned long long>(stats_.partial_rollbacks.load()));
    robustness_.print(out);
    print_commit_pipeline(out);
  }

  /// Commit-pipeline breakdown (sharded spine; see stm/commit_spine.hpp):
  /// stage-1 sheds, batch count and mean size, mean queue dwell time, and —
  /// when sharded — the per-stripe committed-writer split.
  void print_commit_pipeline(std::FILE* out = stderr) const {
    const stm::CommitSpine& q = env_.queue();
    const unsigned long long batches = q.batch_count();
    const unsigned long long batched = q.batched_requests();
    const unsigned long long samples = q.queue_dwell_samples();
    std::fprintf(
        out,
        "commit pipeline: committed=%llu aborted=%llu prevalidation_sheds=%llu "
        "batches=%llu avg_batch=%.2f avg_dwell_ns=%llu\n",
        static_cast<unsigned long long>(q.committed_count()),
        static_cast<unsigned long long>(q.aborted_count()),
        static_cast<unsigned long long>(q.prevalidation_sheds()), batches,
        batches != 0 ? static_cast<double>(batched) / static_cast<double>(batches)
                     : 0.0,
        samples != 0 ? static_cast<unsigned long long>(q.queue_dwell_ns() /
                                                       samples)
                     : 0ULL);
    std::fprintf(out, "batch size histogram (1,2,<=4,<=8,...,65+):");
    for (std::size_t i = 0; i < stm::CommitQueue::kBatchSizeBuckets; ++i) {
      std::fprintf(out, " %llu",
                   static_cast<unsigned long long>(q.batch_size_bucket(i)));
    }
    std::fprintf(out, "\n");
    if (q.stripes() > 1) {
      std::fprintf(out, "commit stripes (committed per stripe, %u stripes):",
                   q.stripes());
      for (unsigned s = 0; s < q.stripes(); ++s) {
        std::fprintf(out, " %llu",
                     static_cast<unsigned long long>(q.stripe_committed(s)));
      }
      std::fprintf(
          out, "  multi_commits=%llu multi_aborts=%llu\n",
          static_cast<unsigned long long>(q.multi_commits()),
          static_cast<unsigned long long>(q.multi_aborts()));
    }
  }

 private:
  /// Reject a malformed stripe count before the StmEnv is built: the stripe
  /// router masks with (stripes - 1), so anything that is not a power of
  /// two would silently alias stripes rather than misbehave loudly.
  static unsigned validated_stripes(const Config& config) {
    const unsigned n = config.commit_stripes;
    if (n == 0 || (n & (n - 1)) != 0 || n > stm::kMaxStripes) {
      throw std::invalid_argument(
          "Config::commit_stripes must be a power of two in [1, " +
          std::to_string(stm::kMaxStripes) +
          "], got " + std::to_string(n));
    }
    return n;
  }

  /// Start the timeline sampler when asked for by the config or the
  /// TXF_TIMELINE=1 / TXF_TIMELINE_MS environment overrides. Providers
  /// cover the drift signals that are deliberately not registry metrics:
  /// the EBR pending count (an accessor, sampled as a level) and the
  /// per-stripe committed splits (the registry sums the per-stripe
  /// `stm.commit.*` instances by design; skew needs them apart).
  void maybe_start_timeline() {
    obs::TimelineConfig tl = config_.timeline;
    if (const char* env = std::getenv("TXF_TIMELINE")) {
      tl.enabled = !(env[0] == '0' || env[0] == '\0');
    }
    if (const char* ms = std::getenv("TXF_TIMELINE_MS")) {
      const long v = std::strtol(ms, nullptr, 10);
      if (v > 0) tl.interval_ms = static_cast<std::uint32_t>(v);
    }
    if (!tl.enabled) return;
    timeline_ = std::make_unique<obs::MetricsTimeline>(tl);
    timeline_->add_provider("ebr.pending", obs::SeriesKind::kLevel, [this] {
      return static_cast<double>(env_.epochs().pending_count());
    });
    const stm::CommitSpine& q = env_.queue();
    if (q.stripes() > 1) {
      for (unsigned s = 0; s < q.stripes(); ++s) {
        timeline_->add_provider(
            "stm.commit.stripe." + std::to_string(s) + ".committed",
            obs::SeriesKind::kDelta,
            [&q, s] { return static_cast<double>(q.stripe_committed(s)); });
      }
    }
    timeline_->start();
  }

  Config config_;
  stm::StmEnv env_;
  sched::ThreadPool pool_;
  adaptive::AdaptiveScheduler adaptive_;  // must follow config_ and pool_
  TxStats stats_;
  util::RobustnessCounters robustness_;
  std::shared_mutex serial_token_;
  std::atomic<int> serial_waiters_{0};
  bool armed_chaos_ = false;
  /// Declared last: destroyed first, so the sampler thread (which reads
  /// env_ through the providers above) is joined before env_ goes away.
  std::unique_ptr<obs::MetricsTimeline> timeline_;
};

}  // namespace txf::core
