// Runtime: the engine object binding the STM environment, the future
// execution pool, configuration, and statistics. One per process is
// typical; tests create private instances.
#pragma once

#include <cstddef>
#include <cstdio>
#include <memory>

#include "core/config.hpp"
#include "core/tx_tree.hpp"
#include "sched/thread_pool.hpp"
#include "stm/transaction.hpp"

namespace txf::core {

class Runtime {
 public:
  explicit Runtime(Config config = {})
      : config_(config), pool_(config.pool_threads) {}

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  const Config& config() const noexcept { return config_; }
  stm::StmEnv& env() noexcept { return env_; }
  sched::ThreadPool& pool() noexcept { return pool_; }
  TxStats& stats() noexcept { return stats_; }

  /// Dump the engine counters (for debugging and example epilogues).
  void print_stats(std::FILE* out = stderr) const {
    std::fprintf(
        out,
        "txfutures stats: commits=%llu top_aborts=%llu tree_restarts=%llu "
        "fallback_restarts=%llu future_reexecs=%llu futures=%llu "
        "ro_skips=%llu serial_fallbacks=%llu partial_rollbacks=%llu\n",
        static_cast<unsigned long long>(stats_.top_commits.load()),
        static_cast<unsigned long long>(stats_.top_aborts.load()),
        static_cast<unsigned long long>(stats_.tree_restarts.load()),
        static_cast<unsigned long long>(stats_.fallback_restarts.load()),
        static_cast<unsigned long long>(stats_.future_reexecutions.load()),
        static_cast<unsigned long long>(stats_.futures_submitted.load()),
        static_cast<unsigned long long>(stats_.ro_validation_skips.load()),
        static_cast<unsigned long long>(stats_.serial_fallbacks.load()),
        static_cast<unsigned long long>(stats_.partial_rollbacks.load()));
  }

 private:
  Config config_;
  stm::StmEnv env_;
  sched::ThreadPool pool_;
  TxStats stats_;
};

}  // namespace txf::core
