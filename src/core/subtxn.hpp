// Sub-transaction nodes of a transaction tree (paper §II, Fig. 3a).
//
// Every submit point splits the current context into two children: the
// transactional future (left) and the continuation (right). The strong
// ordering semantics is the pre-order of this binary tree with the future
// subtree before the continuation subtree; `follows()` below decides that
// order for any two nodes from their root paths.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/fcc.hpp"
#include "core/future_state.hpp"
#include "core/orec.hpp"
#include "stm/read_stats.hpp"
#include "stm/versions.hpp"

namespace txf::stm {
class VBoxImpl;
}

namespace txf::core::adaptive {
struct SiteStats;  // defined in core/adaptive.hpp
}

namespace txf::core {

enum class SubTxnKind : std::uint8_t { kRoot, kFuture, kContinuation };

/// Re-executable body of a transactional future: invoked with the (fresh)
/// node index on first execution and on every re-execution after a
/// validation failure.
using NodeRunner = std::function<void(std::uint32_t node_idx)>;

/// Where a recorded read was served from; validation re-resolves the read
/// and compares provenance (DESIGN.md §2). Tentative and root-write-set
/// reads compare the provenance pointer; permanent reads compare the
/// committed VERSION NUMBER instead — versions are unique per box, and the
/// home-slot fast path serves permanent reads without ever materializing a
/// node pointer.
enum class ReadProvenance : std::uint8_t {
  kTentative,     // a TentativeVersion (in-box or tree-private chain)
  kRootWriteSet,  // the top-level transaction's private write set (Alg. 2)
  kPermanent,     // a committed version at the tree snapshot (home or list)
};

struct ReadEntry {
  stm::VBoxImpl* box;
  const void* provenance;        // kTentative only; null for home-slot reads
  stm::Version perm_version;     // kPermanent only
  ReadProvenance kind;
};

inline constexpr std::uint32_t kNoNode = ~std::uint32_t{0};

struct SubTxn {
  std::uint32_t idx = kNoNode;
  std::uint32_t parent = kNoNode;
  std::uint32_t child_future = kNoNode;        // left child
  std::uint32_t child_continuation = kNoNode;  // right child
  SubTxnKind kind = SubTxnKind::kRoot;
  std::uint32_t depth = 0;

  /// Root path: path[0] = root index, path[depth] = own index.
  std::vector<std::uint32_t> path;
  /// Stable pointers to the path nodes (deque-backed arena), for lock-free
  /// reads of ancestor nClocks.
  std::vector<SubTxn*> path_nodes;
  /// Kind of each node on the path (parallel to `path`); lets follows()
  /// run without arena lookups.
  std::vector<SubTxnKind> path_kinds;
  /// ancVer (paper §III-A): anc_clocks[i] = nClock of path[i] observed when
  /// this sub-transaction started. anc_clocks[depth] is 0 (self).
  std::vector<std::uint32_t> anc_clocks;

  Orec orec;
  /// Count of committed child subtrees (0..2). Written under the tree
  /// mutex; read lock-free when a new child snapshots its ancVer.
  std::atomic<std::uint32_t> nclock{0};

  std::vector<ReadEntry> reads;
  std::vector<stm::VBoxImpl*> written_boxes;
  /// Home-hit / list-walk tallies for this node's data reads (each node's
  /// body is single-threaded); flushed into the env's ReadPathStats by the
  /// tree at commit/teardown.
  stm::ReadPathCounters read_path;
  /// Orecs this node currently controls: its own plus everything absorbed
  /// from committed children. Re-owned upward wholesale on commit.
  std::vector<Orec*> owned_orecs;

  /// For futures: the result slot shared with TxFuture handles, and the
  /// type-erased body used for (re-)execution.
  std::shared_ptr<TxFutureStateBase> future_state;
  std::shared_ptr<NodeRunner> runner;
  /// For futures: the adaptive scheduler's stats slot of the submit site
  /// that created this node (null in fixed scheduling modes). The commit
  /// cascade charges re-executions and continuation conflicts to it; copied
  /// to replacement incarnations. Slot storage outlives every tree (it is
  /// owned by the Runtime's AdaptiveScheduler).
  adaptive::SiteStats* site = nullptr;

  /// For futures: set by the first thread to start the body (pool task or a
  /// waiter helping inline through TxTree::help_evaluate); every other
  /// starter backs off, so one incarnation's body runs at most once.
  std::atomic<bool> claimed{false};

  /// For continuations under RestartPolicy::kPartialRollback: the FCC
  /// captured at the submit point that created this continuation. Moved to
  /// the replacement node when the continuation is rolled back.
  std::unique_ptr<Checkpoint> checkpoint;

  /// True for replacement nodes created after a validation failure; used
  /// by failure injection to guarantee convergence.
  bool reincarnated = false;

  bool wrote_anything() const noexcept { return !written_boxes.empty(); }
};

/// True iff `a` is serialized after `b` under strong ordering semantics
/// (paper §IV-A, follows()). Both arguments are root paths with kinds.
/// Pre-order rule: at the divergence point, the branch through a
/// continuation child is the later one; if one node is an ancestor of the
/// other, the descendant is later (it runs within/after the ancestor's
/// prefix).
inline bool follows(const std::vector<std::uint32_t>& path_a,
                    const std::vector<SubTxnKind>& kinds_a,
                    const std::vector<std::uint32_t>& path_b) noexcept {
  const std::size_t common =
      path_a.size() < path_b.size() ? path_a.size() : path_b.size();
  std::size_t d = 0;
  while (d < common && path_a[d] == path_b[d]) ++d;
  if (d == common) {
    // One is an ancestor of (or equal to) the other.
    return path_a.size() >= path_b.size();
  }
  return kinds_a[d] == SubTxnKind::kContinuation;
}

}  // namespace txf::core
