// Result plumbing between a transactional future's sub-transaction and the
// TxFuture<T> handles that evaluate it.
//
// Evaluation semantics (paper §III): get() blocks until the future's
// sub-transaction *commits* (its whole subtree, under strong ordering), not
// merely until the code ran. The handle is shareable across threads and
// even across top-level transactions (Fig. 2); it outlives the tree, so the
// committed value is copied out at publish time.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

namespace txf::core {

namespace adaptive {
struct SiteStats;  // defined in core/adaptive.hpp
}

class TxFutureStateBase {
 public:
  virtual ~TxFutureStateBase() = default;

  /// Current node incarnation evaluating this future (kNoNode-equivalent
  /// ~0u until first scheduled). Lets a blocked evaluator help run exactly
  /// the body it waits on (TxTree::help_evaluate) instead of arbitrary pool
  /// tasks — targeted helping cannot recurse into a deadlock.
  void set_node_idx(std::uint32_t idx) noexcept {
    node_idx_.store(idx, std::memory_order_release);
  }
  std::uint32_t node_idx() const noexcept {
    return node_idx_.load(std::memory_order_acquire);
  }

  /// Adaptive-scheduler stats slot of the submit site that created this
  /// future (null in fixed modes). Written once, by the submitting thread,
  /// before the handle or any node can reference this state; read by
  /// evaluators to record their join-wait time. Slot storage is owned by
  /// the Runtime's AdaptiveScheduler and outlives every handle that could
  /// legally be evaluated.
  void set_site(adaptive::SiteStats* s) noexcept { site_ = s; }
  adaptive::SiteStats* site() const noexcept { return site_; }

  /// Called at subtree commit (under the tree's commit machinery): move the
  /// staged result of the current execution into the visible slot.
  void publish() {
    std::lock_guard<std::mutex> lock(mutex_);
    move_staged_to_value();
    ready_ = true;
    cv_.notify_all();
  }

  /// Called when the execution that staged a value is rolled back.
  void unpublish() {
    std::lock_guard<std::mutex> lock(mutex_);
    ready_ = false;
  }

  /// Called when the owning tree aborts for good without this future
  /// committing: wakes evaluators, which observe a stale handle.
  void mark_failed() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!ready_) failed_ = true;
    cv_.notify_all();
  }

  bool ready() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return ready_;
  }
  bool failed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return failed_;
  }

  /// Block until published (returns true) or failed (returns false),
  /// interleaving `help` (e.g. running pool tasks) so evaluation never
  /// deadlocks a small thread pool. `help` may throw to unwind the waiter.
  template <typename Help>
  bool wait_ready(Help&& help) {
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        if (ready_) return true;
        if (failed_) return false;
        // Short timed wait: helping must get a chance even if no publish
        // notification arrives (the work we would help with might be the
        // very future we are waiting on).
        cv_.wait_for(lock, std::chrono::microseconds(100),
                     [&] { return ready_ || failed_; });
        if (ready_) return true;
        if (failed_) return false;
      }
      help();
    }
  }

 protected:
  virtual void move_staged_to_value() = 0;

  std::atomic<std::uint32_t> node_idx_{~std::uint32_t{0}};
  adaptive::SiteStats* site_ = nullptr;  // see set_site()
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool ready_ = false;
  bool failed_ = false;
};

template <typename T>
class TxFutureState final : public TxFutureStateBase {
 public:
  /// Called by the future's body wrapper on the executing thread, before
  /// the sub-transaction commits. Not yet visible to evaluators.
  void stage(T value) {
    std::lock_guard<std::mutex> lock(mutex_);
    staged_ = std::move(value);
  }

  T value() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return value_;
  }

 private:
  void move_staged_to_value() override { value_ = std::move(staged_); }

  T staged_{};
  T value_{};
};

template <>
class TxFutureState<void> final : public TxFutureStateBase {
 public:
  void stage() {}
  void value() const {}

 private:
  void move_staged_to_value() override {}
};

}  // namespace txf::core
