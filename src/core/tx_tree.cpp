#include "core/tx_tree.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/runtime.hpp"
#include "obs/trace.hpp"
#include "stm/vbox.hpp"
#include "util/backoff.hpp"
#include "util/failpoint.hpp"

namespace txf::core {

namespace {

/// Is the tree owning this orec done (committed or aborted at top level)?
/// A tentative head owned by such a tree is a stale lock and may be stolen
/// (Alg. 1 line 10: status != RUNNING).
bool tree_inactive(const Orec& orec) noexcept {
  return orec.tree->status() != TxTree::TreeStatus::kActive;
}

/// The fiber hosting the transactional body currently running on this
/// thread (partial-rollback mode only).
thread_local Fiber* t_current_fiber = nullptr;

/// Attempt ids handed to TxTree::id(); 0 is reserved as "no owner".
std::atomic<std::uint64_t> g_next_tree_id{1};

}  // namespace

TxTree::TxTree(Runtime& runtime, bool fallback)
    : runtime_(runtime),
      env_(runtime.env()),
      id_(g_next_tree_id.fetch_add(1, std::memory_order_relaxed)),
      nstripes_(runtime.env().stripes()),
      stripe_mask_(runtime.env().stripes() - 1) {
  fallback_.store(fallback || runtime.config().write_mode == WriteMode::kLazy,
                  std::memory_order_relaxed);
  const std::size_t hint =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  registry_slot_ = env_.registry().claim(hint);
  // Publish-then-verify snapshot acquisition, per clock component (same
  // rationale as flat transactions: the GC must never trim a version we can
  // still read; see Transaction::begin_snapshot).
  if (registry_slot_ == stm::ActiveTxnRegistry::kNoSlot) {
    env_.clock().snapshot(snapshot_);
  } else {
    stm::ActiveTxnRegistry::Slot& sl = env_.registry().slot(registry_slot_);
    for (;;) {
      env_.clock().snapshot(snapshot_);
      for (unsigned s = 0; s < nstripes_; ++s) sl.publish(s, snapshot_.seq[s]);
      bool stable = true;
      for (unsigned s = 0; s < nstripes_; ++s) {
        if (env_.clock().current(s) != snapshot_.seq[s]) {
          stable = false;
          break;
        }
      }
      if (stable) break;
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  SubTxn& root = new_node_locked(kNoNode, SubTxnKind::kRoot);
  root_ = root.idx;
}

TxTree::~TxTree() {
  // Safety net for trees torn down without reaching do_top_commit or
  // abort_tree (cannot have published anything, so the abort flavour is
  // the correct one). Normally a no-op: both paths finalize first.
  run_attempt_finalizers(false);
  release_registry();
  // Residual read-path tallies from nodes that never reached a commit or
  // abort flush (e.g. a whole-tree failure skips per-node aborts). The tree
  // is quiescent by now (destroyed after the EBR grace period).
  for (SubTxn& s : subs_) s.read_path.flush_into(env_.read_stats());
}

void* TxTree::attempt_state(const void* key) noexcept {
  std::scoped_lock lock(attempt_states_lock_);
  for (const AttemptState& a : attempt_states_)
    if (a.key == key) return a.state;
  return nullptr;
}

void* TxTree::ensure_attempt_state(const void* key, void* (*create)(void*),
                                   void* create_arg, AttemptFinalizer fin) {
  std::scoped_lock lock(attempt_states_lock_);
  for (const AttemptState& a : attempt_states_)
    if (a.key == key) return a.state;
  void* state = create(create_arg);
  attempt_states_.push_back(AttemptState{key, state, fin});
  return state;
}

void TxTree::run_attempt_finalizers(bool committed) {
  if (finalized_.exchange(true, std::memory_order_acq_rel)) return;
  // No lock needed for the iteration itself: parking happens only from the
  // attempt's own (now drained) transactional code, and the finalized_ flag
  // makes this body run once. The lock guards against a stale reader racing
  // the vector growth, which cannot happen past drain_tasks().
  std::vector<AttemptState> states;
  {
    std::scoped_lock lock(attempt_states_lock_);
    states.swap(attempt_states_);
  }
  for (const AttemptState& a : states) a.fin(a.state, committed);
}

void TxTree::release_registry() {
  if (registry_released_.exchange(true, std::memory_order_acq_rel)) return;
  if (registry_slot_ != stm::ActiveTxnRegistry::kNoSlot) {
    env_.registry().release(registry_slot_);
  } else {
    env_.registry().release_unregistered();
  }
}

std::size_t TxTree::node_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return subs_.size();
}

SubTxn& TxTree::new_node_locked(std::uint32_t parent, SubTxnKind kind) {
  subs_.emplace_back();
  SubTxn& n = subs_.back();
  n.idx = static_cast<std::uint32_t>(subs_.size() - 1);
  n.parent = parent;
  n.kind = kind;
  n.orec.tree = this;
  if (parent == kNoNode) {
    n.depth = 0;
    n.path = {n.idx};
    n.path_nodes = {&n};
    n.path_kinds = {kind};
    n.anc_clocks = {0};
  } else {
    SubTxn& p = node(parent);
    n.depth = p.depth + 1;
    n.path = p.path;
    n.path.push_back(n.idx);
    n.path_nodes = p.path_nodes;
    n.path_nodes.push_back(&n);
    n.path_kinds = p.path_kinds;
    n.path_kinds.push_back(kind);
    // ancVer: the parent's map extended with the parent's current nClock
    // (paper §III-A). The parent's own placeholder is replaced.
    n.anc_clocks = p.anc_clocks;
    n.anc_clocks[p.depth] = p.nclock.load(std::memory_order_acquire);
    n.anc_clocks.push_back(0);
  }
  n.orec.set_ownership(n.idx, n.depth, 0);
  n.orec.status.store(SubTxnStatus::kRunning, std::memory_order_release);
  bump_progress();
  return n;
}

// --------------------------------------------------------------------------
// Data path
// --------------------------------------------------------------------------

void TxTree::check_alive(SubTxn& t) {
  if (failed_.load(std::memory_order_acquire)) throw TreeFailed{fail_reason_};
  if (t.orec.status.load(std::memory_order_acquire) == SubTxnStatus::kAborted)
    throw NodeCancelled{};
  // Lazy ancVer refresh: until this sub-transaction touches any data, its
  // visibility snapshot can be safely widened to the ancestors' current
  // nClocks. This lets the very common submit → get → read pattern observe
  // the evaluated future's writes directly instead of aborting the
  // continuation (which, without FCCs, would restart the whole tree).
  if (t.kind != SubTxnKind::kRoot && t.reads.empty() &&
      t.written_boxes.empty()) {
    // Double-scan for a consistent cut of the ancestors' clocks (tree
    // commits are serialized, so this stabilizes immediately).
    for (;;) {
      bool stable = true;
      for (std::uint32_t j = 0; j < t.depth; ++j) {
        const std::uint32_t c =
            t.path_nodes[j]->nclock.load(std::memory_order_acquire);
        if (t.anc_clocks[j] != c) {
          t.anc_clocks[j] = c;
          stable = false;
        }
      }
      if (stable) break;
    }
  }
}

bool TxTree::tentative_visible(const SubTxn& t, const TentativeVersion& v,
                               bool now, bool exclude_self) const {
  if (v.orec->status.load(std::memory_order_acquire) ==
      SubTxnStatus::kAborted) {
    return false;
  }
  const std::uint64_t w = v.orec->ownership.load(std::memory_order_acquire);
  const std::uint32_t idx = Ownership::idx(w);
  if (idx == t.idx) return !exclude_self;  // own write (current incarnation
                                           // only: re-executions get a fresh
                                           // node index)
  const std::uint32_t dep = Ownership::depth(w);
  if (dep < t.depth && t.path[dep] == idx) {
    // Owned by an ancestor: visible if the commit that moved it there was
    // already witnessed when t started (ancVer check, Alg. 2 lines 13-19),
    // or unconditionally during validation ("serialize as of now").
    return now || Ownership::ver(w) <= t.anc_clocks[dep];
  }
  return false;
}

TxTree::Resolved TxTree::resolve(const SubTxn& t, stm::VBoxImpl& box,
                                 bool now, bool exclude_self) const {
  // 1. Tree-private tentative chain (fallback / lazy mode).
  if (uses_private_.load(std::memory_order_acquire)) {
    TentativeVersion* v = private_head(box);
    for (; v != nullptr; v = v->next.load(std::memory_order_acquire)) {
      if (tentative_visible(t, *v, now, exclude_self))
        return {v->value.load(std::memory_order_acquire), v,
                ReadProvenance::kTentative};
    }
  }
  // 2. In-box tentative list — only meaningful if our tree holds it.
  TentativeVersion* h = box.tentative_head();
  if (h != nullptr && h->orec->tree == this) {
    for (TentativeVersion* v = h; v != nullptr;
         v = v->next.load(std::memory_order_acquire)) {
      if (v->orec->tree == this && tentative_visible(t, *v, now, exclude_self))
        return {v->value.load(std::memory_order_acquire), v,
                ReadProvenance::kTentative};
    }
  }
  // 3. Top-level transaction's private write set (Alg. 2 lines 21-22).
  if (const stm::Word* w = root_write_set_.find(&box))
    return {*w, nullptr, ReadProvenance::kRootWriteSet};
  // 4. Committed snapshot (Alg. 2 last resort): home slot first — the
  // newest committed version with zero pointer chases — then the list walk.
  // Versions are stripe-local: compare only against the component of this
  // box's stripe (global_clock.hpp).
  const stm::Version snap = snapshot_.seq[stm::stripe_of(&box, stripe_mask_)];
  {
    stm::Word val;
    stm::Version ver;
    if (box.try_read_home(snap, val, ver))
      return {val, nullptr, ReadProvenance::kPermanent, ver, 0, true};
  }
  std::size_t steps = 0;
  const stm::PermanentVersion* p = box.read_permanent(snap, &steps);
  if (p == nullptr) {
    // Snapshot lost a race with trimming (possible only for a slot-less
    // overflow tree the version GC could not see). Surface a distinguished
    // marker: read() fails the tree gracefully, validate_locked() treats it
    // as a mismatch. Never a crash.
    return {0, nullptr, ReadProvenance::kPermanent, stm::kNoVersion, steps,
            false};
  }
  return {p->value, p, ReadProvenance::kPermanent,
          p->version.load(std::memory_order_acquire), steps, false};
}

stm::Word TxTree::read(SubTxn& t, stm::VBoxImpl& box) {
  check_alive(t);
  const Resolved r = resolve(t, box, /*now=*/false);
  if (r.kind == ReadProvenance::kPermanent) {
    if (r.perm_version == stm::kNoVersion) {
      // Trimming outran this tree's snapshot: abort the whole tree and let
      // the atomically() driver retry at a fresh snapshot.
      {
        std::lock_guard<std::mutex> lock(mutex_);
        mark_tree_failed_locked(TreeFailed::Reason::kStaleSnapshot);
      }
      throw TreeFailed{TreeFailed::Reason::kStaleSnapshot};
    }
    if (r.home_hit) {
      t.read_path.note_home();
    } else {
      t.read_path.note_walk(r.walk_steps);
      obs::trace::instant(obs::trace::Ev::kTreeResolve,
                          static_cast<std::uint32_t>(r.walk_steps));
    }
  }
  t.reads.push_back(ReadEntry{&box, r.provenance, r.perm_version, r.kind});
  return r.value;
}

TentativeVersion* TxTree::alloc_tentative(SubTxn& t, stm::Word value) {
  std::lock_guard<std::mutex> lock(arena_mutex_);
  tentative_arena_.emplace_back(value, &t.orec);
  return &tentative_arena_.back();
}

TentativeVersion* TxTree::private_head(stm::VBoxImpl& box) const {
  std::scoped_lock lock(private_lock_);
  const stm::Word* w = private_store_.find(&box);
  return w == nullptr
             ? nullptr
             : reinterpret_cast<TentativeVersion*>(static_cast<uintptr_t>(*w));
}

void TxTree::insert_sorted(SubTxn& t,
                           std::atomic<TentativeVersion*>& head_slot,
                           TentativeVersion* v) {
  // mutex_ held: arena indexing and list mutation are serialized; readers
  // traverse lock-free, so stores publish with release ordering.
  TentativeVersion* prev = nullptr;
  TentativeVersion* cur = head_slot.load(std::memory_order_acquire);
  while (cur != nullptr) {
    const std::uint64_t w = cur->orec->ownership.load(std::memory_order_acquire);
    const SubTxn& owner = node(Ownership::idx(w));
    // Keep descending strong order: insert before the first version whose
    // writer we follow.
    if (follows(t.path, t.path_kinds, owner.path)) break;
    prev = cur;
    cur = cur->next.load(std::memory_order_acquire);
  }
  v->next.store(cur, std::memory_order_release);
  if (prev == nullptr) {
    head_slot.store(v, std::memory_order_release);
  } else {
    prev->next.store(v, std::memory_order_release);
  }
}

void TxTree::write_private(SubTxn& t, stm::VBoxImpl& box, stm::Word value) {
  uses_private_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mutex_);
  // Overwrite an existing version of ours, if any.
  {
    std::scoped_lock plock(private_lock_);
    const stm::Word* w = private_store_.find(&box);
    TentativeVersion* head =
        w ? reinterpret_cast<TentativeVersion*>(static_cast<uintptr_t>(*w))
          : nullptr;
    for (TentativeVersion* v = head; v != nullptr;
         v = v->next.load(std::memory_order_acquire)) {
      const std::uint64_t ow = v->orec->ownership.load(std::memory_order_acquire);
      if (Ownership::idx(ow) == t.idx &&
          v->orec->status.load(std::memory_order_acquire) !=
              SubTxnStatus::kAborted) {
        v->value.store(value, std::memory_order_release);
        return;
      }
    }
    // Insert a fresh version sorted into the chain; rewire the map head.
    TentativeVersion* n = alloc_tentative(t, value);
    std::atomic<TentativeVersion*> slot{head};
    insert_sorted(t, slot, n);
    private_store_.put(&box,
                       static_cast<stm::Word>(reinterpret_cast<uintptr_t>(
                           slot.load(std::memory_order_relaxed))));
  }
  t.written_boxes.push_back(&box);
}

void TxTree::write_eager(SubTxn& t, stm::VBoxImpl& box, stm::Word value) {
  util::Backoff backoff;
  for (;;) {
    TentativeVersion* h = box.tentative_head();
    if (h != nullptr && h->orec->tree == this) {
      // Fast path (Alg. 1 lines 5-8): we already own the head.
      {
        const std::uint64_t w =
            h->orec->ownership.load(std::memory_order_acquire);
        if (Ownership::idx(w) == t.idx &&
            h->orec->status.load(std::memory_order_acquire) !=
                SubTxnStatus::kAborted) {
          h->value.store(value, std::memory_order_release);
          return;
        }
      }
      // Same tree, different owner: overwrite-or-insert under the tree
      // mutex (Alg. 1 lines 24-34; serialized here — DESIGN.md §6).
      std::lock_guard<std::mutex> lock(mutex_);
      TentativeVersion* cur = box.tentative_head();
      if (cur == nullptr || cur->orec->tree != this) continue;  // raced
      for (TentativeVersion* v = cur; v != nullptr;
           v = v->next.load(std::memory_order_acquire)) {
        const std::uint64_t w =
            v->orec->ownership.load(std::memory_order_acquire);
        if (Ownership::idx(w) == t.idx &&
            v->orec->status.load(std::memory_order_acquire) !=
                SubTxnStatus::kAborted) {
          v->value.store(value, std::memory_order_release);
          return;
        }
      }
      TentativeVersion* n = alloc_tentative(t, value);
      std::atomic<TentativeVersion*> slot{cur};
      insert_sorted(t, slot, n);
      TentativeVersion* new_head = slot.load(std::memory_order_relaxed);
      if (new_head != cur) {
        // n became the newest version: it must take the box head. Nothing
        // else can move the head while we are active and hold mutex_; a
        // failed CAS here would mean silent lost writes, so check it even
        // in release builds.
        if (!box.cas_tentative_head(cur, new_head)) {
          std::fprintf(stderr,
                       "txfutures invariant violation: tentative head moved "
                       "under an active tree lock\n");
          std::abort();
        }
      }
      t.written_boxes.push_back(&box);
      return;
    }
    if (h == nullptr || tree_inactive(*h->orec)) {
      // Free (or stale) lock: try to acquire it for our tree with a fresh
      // node (Alg. 1 lines 10-13, with the head-pointer CAS substitution).
      TentativeVersion* n = alloc_tentative(t, value);
      if (box.cas_tentative_head(h, n)) {
        t.written_boxes.push_back(&box);
        return;
      }
      backoff.pause();
      continue;  // somebody else won; re-inspect
    }
    // Head locked by another active tree: inter-tree write-write conflict
    // (Alg. 1 line 19-22).
    if (runtime_.config().inter_tree == InterTreePolicy::kSwitchToPrivate) {
      write_private(t, box, value);
      return;
    }
    runtime_.stats().fallback_restarts.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      mark_tree_failed_locked(TreeFailed::Reason::kInterTreeConflict);
    }
    throw TreeFailed{TreeFailed::Reason::kInterTreeConflict};
  }
}

void TxTree::write(SubTxn& t, stm::VBoxImpl& box, stm::Word value) {
  check_alive(t);
  if (t.kind == SubTxnKind::kRoot) {
    // The paper's top-level transactions keep a traditional private write
    // set (§III-A); it freezes at the first submit, before any child runs.
    root_write_set_.put(&box, value);
    return;
  }
  if (fallback_.load(std::memory_order_acquire)) {
    write_private(t, box, value);
    return;
  }
  if (uses_private_.load(std::memory_order_acquire) &&
      private_head(box) != nullptr) {
    // This box already migrated to the private store for this tree.
    write_private(t, box, value);
    return;
  }
  write_eager(t, box, value);
}

// --------------------------------------------------------------------------
// Structure / submit
// --------------------------------------------------------------------------

std::pair<SubTxn*, SubTxn*> TxTree::submit_split(
    SubTxn& parent, std::shared_ptr<TxFutureStateBase> state,
    std::shared_ptr<NodeRunner> runner, adaptive::SiteStats* site,
    bool schedule) {
  check_alive(parent);
  SubTxn* future;
  SubTxn* cont;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    future = &new_node_locked(parent.idx, SubTxnKind::kFuture);
    future->future_state = std::move(state);
    future->runner = std::move(runner);
    future->site = site;
    cont = &new_node_locked(parent.idx, SubTxnKind::kContinuation);
    parent.child_future = future->idx;
    parent.child_continuation = cont->idx;
    // The parent's own code ends at the submit point; it becomes eligible
    // to commit once both children's subtrees have committed.
    parent.orec.status.store(SubTxnStatus::kFinished,
                             std::memory_order_release);
    finished_pending_.push_back(parent.idx);
  }
  // futures_submitted is counted once per submit() call in api.hpp (it also
  // covers elided and serial submits, which never reach this function).
  if (schedule) schedule_future(*future);
  return {future, cont};
}

void TxTree::adopt_state(std::shared_ptr<TxFutureStateBase> state) {
  std::lock_guard<std::mutex> lock(mutex_);
  adopted_states_.push_back(std::move(state));
}

namespace {
/// Depth of future bodies on the calling thread's stack. Frames inside a
/// body must not run *arbitrary* pool tasks while blocked: a picked-up body
/// can transitively wait on the continuation frame buried beneath it on this
/// very stack (the nested-helping deadlock). Targeted helping
/// (help_evaluate) stays safe at any depth.
thread_local int t_future_body_depth = 0;
}  // namespace

bool TxTree::in_future_body() noexcept { return t_future_body_depth > 0; }

void TxTree::task_done() {
  // Notify while holding the mutex. This runs outside run_future_body's
  // epoch guard, so the drain waiter is free to retire-and-free the tree
  // the moment it observes zero — and it cannot re-acquire drain_mutex_
  // (which its predicate check requires) until the broadcast has fully
  // left the condvar.
  std::lock_guard<std::mutex> lock(drain_mutex_);
  outstanding_tasks_.fetch_sub(1, std::memory_order_acq_rel);
  drain_cv_.notify_all();
}

void TxTree::schedule_future(SubTxn& f) {
  if (f.future_state) f.future_state->set_node_idx(f.idx);
  bump_progress();
  outstanding_tasks_.fetch_add(1, std::memory_order_acq_rel);
  // The task wrapper, not run_future_body, owns the outstanding-task
  // accounting: a waiter may claim and run the body inline first, in which
  // case the pool task is a no-op but must still balance the counter.
  runtime_.pool().submit([this, runner = f.runner, idx = f.idx] {
    (*runner)(idx);
    task_done();
  });
}

void TxTree::run_future_now(SubTxn& f) {
  // Ordered lane: the submitting thread runs the body itself, so no
  // outstanding-task accounting — there is no pool task to balance.
  // run_future_body's claim still guards the incarnation (a get() helper
  // racing us backs off), and reincarnations go back through the pool via
  // reincarnate_future_locked -> schedule_future as usual.
  std::shared_ptr<NodeRunner> runner;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (f.future_state) f.future_state->set_node_idx(f.idx);
    runner = f.runner;
  }
  bump_progress();
  if (runner) (*runner)(f.idx);
}

void TxTree::charge_conflict_aborts(obs::AbortCause cause) {
  // Only whole-tree conflict classes that bypass the per-node charging
  // paths: write-write (eager tentative-lock collisions) and top-level
  // read-validation failures. kTreeOrder is already charged precisely to
  // the offending sibling's site in fail_continuation_locked, and
  // chaos/user-abort causes are not conflicts at all.
  if (cause != obs::AbortCause::kWriteWrite &&
      cause != obs::AbortCause::kReadValidation) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (SubTxn& s : subs_) {
    if (s.kind == SubTxnKind::kFuture && s.site != nullptr &&
        s.claimed.load(std::memory_order_acquire)) {
      runtime_.adaptive().note_abort(s.site, cause);
    }
  }
}

bool TxTree::help_evaluate(const TxFutureStateBase& state) {
  const std::uint32_t idx = state.node_idx();
  std::shared_ptr<NodeRunner> runner;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (idx == kNoNode || idx >= subs_.size()) return false;
    SubTxn& f = node(idx);
    if (f.future_state.get() != &state) return false;  // foreign or stale
    if (failed_.load(std::memory_order_acquire)) return false;
    if (f.claimed.load(std::memory_order_acquire)) return false;
    if (f.orec.status.load(std::memory_order_acquire) !=
        SubTxnStatus::kRunning) {
      return false;
    }
    runner = f.runner;
  }
  if (!runner) return false;
  // The claim inside run_future_body makes racing with the pool task safe:
  // exactly one of the two actually executes the body.
  (*runner)(idx);
  return true;
}

void TxTree::run_future_body(std::uint32_t node_idx,
                             std::function<SubTxn*(SubTxn&)> body) {
  util::EpochDomain::Guard guard(env_.epochs());
  SubTxn* start;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    start = &node(node_idx);
  }
  // One execution per incarnation: the first starter (pool task or inline
  // helper) wins; everyone else backs off.
  if (start->claimed.exchange(true, std::memory_order_acq_rel)) return;
  bump_progress();
  const bool runnable =
      !failed_.load(std::memory_order_acquire) &&
      start->orec.status.load(std::memory_order_acquire) ==
          SubTxnStatus::kRunning;
  if (!runnable) return;
  const unsigned mask = TXF_FP_MASK("core.subtxn.start");
  if (mask & (util::fp::kFailBit | util::fp::kAbortTreeBit)) {
    // Chaos: spurious inter-tree conflict right as the body starts — the
    // tree restarts in fallback mode and must converge all the same.
    runtime_.robustness().failpoint_fires.fetch_add(1,
                                                    std::memory_order_relaxed);
    runtime_.stats().fallback_restarts.fetch_add(1, std::memory_order_relaxed);
    note_chaos_induced();
    std::lock_guard<std::mutex> lock(mutex_);
    mark_tree_failed_locked(TreeFailed::Reason::kInterTreeConflict);
    return;
  }
  obs::trace::Span eval_span(obs::trace::Ev::kFutureEval, node_idx);
  if (partial_rollback()) {
    // Host the body on a fiber so continuations created inside it can be
    // rolled back via FCC. The callable moves into fiber-stable storage —
    // restores may replay its tail long after this call returned.
    ++t_future_body_depth;
    run_body_on_fiber(
        [body = std::move(body), start]() -> SubTxn* { return body(*start); });
    --t_future_body_depth;
  } else {
    SubTxn* final_node = nullptr;
    ++t_future_body_depth;
    try {
      final_node = body(*start);
    } catch (const TreeFailed&) {
      // Tree is restarting; nothing to finish.
    } catch (const NodeCancelled&) {
      // Our subtree is being re-executed; this incarnation just exits.
    }
    --t_future_body_depth;
    if (final_node != nullptr) node_finished(*final_node);
  }
}

// --------------------------------------------------------------------------
// Commit machinery
// --------------------------------------------------------------------------

void TxTree::node_finished(SubTxn& t) {
  std::vector<SubTxn*> resubmit;
  std::vector<SubTxn*> resume;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (failed_.load(std::memory_order_acquire)) return;
    if (t.orec.status.load(std::memory_order_acquire) !=
        SubTxnStatus::kRunning) {
      return;  // aborted/cancelled while running
    }
    t.orec.status.store(SubTxnStatus::kFinished, std::memory_order_release);
    finished_pending_.push_back(t.idx);
    cascade_locked(resubmit, resume);
    bump_progress();
    // Notify under the lock: the owner in wait_and_commit_top may observe
    // top_ready_ and proceed to commit-and-retire the tree; holding mutex_
    // keeps the broadcast ordered before any destruction.
    cv_.notify_all();
  }
  for (SubTxn* f : resubmit) schedule_future(*f);
  for (SubTxn* c : resume) schedule_resume(*c);
}

bool TxTree::eligible_locked(const SubTxn& t) const {
  const auto committed = [&](std::uint32_t idx) {
    return idx == kNoNode || node(idx).orec.status.load(
                                 std::memory_order_acquire) ==
                                 SubTxnStatus::kCommitted;
  };
  if (!committed(t.child_future) || !committed(t.child_continuation))
    return false;
  switch (t.kind) {
    case SubTxnKind::kRoot:
      return true;
    case SubTxnKind::kContinuation:
      // waitTurn rule for continuations (Alg. 3): the sibling future's
      // subtree — serialized immediately before us — must have committed.
      return node(t.parent).nclock.load(std::memory_order_acquire) >= 1;
    case SubTxnKind::kFuture:
      // waitTurn rule for futures (Alg. 3): for every continuation on our
      // ancestor path, its sibling future subtree must have committed.
      for (std::uint32_t j = 1; j < t.depth; ++j) {
        if (t.path_kinds[j] == SubTxnKind::kContinuation &&
            node(t.path[j - 1]).nclock.load(std::memory_order_acquire) < 1)
          return false;
      }
      return true;
  }
  return false;
}

bool TxTree::validate_locked(SubTxn& t) {
  if (t.kind == SubTxnKind::kRoot) return true;  // no intra-tree predecessors
  // Chaos (tests): spuriously fail some validations; recovery must still
  // produce the sequential result. Never inject into a node that has already
  // been re-executed, and never into a serial-irrevocable tree, so injection
  // cannot livelock.
  if (!t.reincarnated && !serial()) {
    const unsigned mask = TXF_FP_MASK("core.subtxn.validate");
    if (mask != 0) {
      runtime_.robustness().failpoint_fires.fetch_add(
          1, std::memory_order_relaxed);
      if (mask & util::fp::kAbortTreeBit) {
        note_chaos_induced();
        mark_tree_failed_locked(TreeFailed::Reason::kInterTreeConflict);
        return false;
      }
      if (mask & util::fp::kFailBit) {
        // The injected failure may cascade into a tree restart (continuation
        // validation); classify any such abort of THIS attempt as injected.
        note_chaos_induced();
        return false;
      }
    }
  }
  if (runtime_.config().read_only_future_opt && t.written_boxes.empty() &&
      committed_rw_count_.load(std::memory_order_acquire) == 0) {
    // §IV-E: read-only sub-transaction with no committed read-write
    // predecessor in the tree — its snapshot cannot have been invalidated.
    runtime_.stats().ro_validation_skips.fetch_add(1,
                                                   std::memory_order_relaxed);
    return true;
  }
  for (const ReadEntry& e : t.reads) {
    // Reads that returned one of t's own writes cannot be invalidated.
    if (e.kind == ReadProvenance::kTentative) {
      const auto* v = static_cast<const TentativeVersion*>(e.provenance);
      if (v->orec == &t.orec) continue;
    }
    // Re-resolve excluding t's own writes: a read that preceded them must
    // still find the same predecessor/committed version.
    const Resolved r = resolve(t, *e.box, /*now=*/true, /*exclude_self=*/true);
    if (r.kind != e.kind) return false;
    if (e.kind == ReadProvenance::kPermanent) {
      // Committed reads compare by VERSION, not node pointer: the home slot
      // serves them without materializing a node, and versions are unique
      // per box so equality means "same committed write". A kNoVersion
      // re-resolve (trim raced us) can never equal a recorded version.
      if (r.perm_version != e.perm_version) return false;
    } else if (r.provenance != e.provenance) {
      return false;
    }
  }
  return true;
}

void TxTree::commit_node_locked(SubTxn& t) {
  t.read_path.flush_into(env_.read_stats());
  if (t.idx == root_) {
    t.orec.status.store(SubTxnStatus::kCommitted, std::memory_order_release);
    for (const ReadEntry& e : t.reads)
      if (e.kind == ReadProvenance::kPermanent)
        merged_permanent_reads_.push_back(e.box);
    top_ready_ = true;
    return;
  }
  SubTxn& p = node(t.parent);
  const std::uint32_t new_ver =
      p.nclock.load(std::memory_order_relaxed) + 1;
  // Re-own this node's orec and everything it absorbed from its subtree
  // (Alg. 4 lines 7-13). Publish ownership before bumping nClock so a child
  // started after the bump always sees the new owners.
  t.orec.set_ownership(p.idx, p.depth, new_ver);
  t.orec.status.store(SubTxnStatus::kCommitted, std::memory_order_release);
  for (Orec* o : t.owned_orecs) o->set_ownership(p.idx, p.depth, new_ver);
  p.owned_orecs.push_back(&t.orec);
  p.owned_orecs.insert(p.owned_orecs.end(), t.owned_orecs.begin(),
                       t.owned_orecs.end());
  t.owned_orecs.clear();
  p.nclock.store(new_ver, std::memory_order_release);

  for (const ReadEntry& e : t.reads)
    if (e.kind == ReadProvenance::kPermanent)
      merged_permanent_reads_.push_back(e.box);
  tree_written_boxes_.insert(tree_written_boxes_.end(),
                             t.written_boxes.begin(), t.written_boxes.end());
  if (t.wrote_anything())
    committed_rw_count_.fetch_add(1, std::memory_order_acq_rel);
  if (t.future_state) t.future_state->publish();
}

SubTxn* TxTree::reincarnate_future_locked(SubTxn& old_future) {
  abort_subtree_locked(old_future);
  SubTxn& p = node(old_future.parent);
  SubTxn& fresh = new_node_locked(p.idx, SubTxnKind::kFuture);
  p.child_future = fresh.idx;
  fresh.future_state = old_future.future_state;
  fresh.runner = old_future.runner;
  fresh.site = old_future.site;
  fresh.reincarnated = true;
  // Charge the submit site: a reincarnation means running this future in
  // parallel lost a read-validation race (O(1) relaxed atomics; safe under
  // mutex_).
  if (old_future.site != nullptr) {
    runtime_.adaptive().note_abort(old_future.site,
                                   obs::AbortCause::kReadValidation);
  }
  return &fresh;
}

SubTxn* TxTree::reincarnate_continuation_locked(SubTxn& old_cont) {
  abort_subtree_locked(old_cont);
  SubTxn& p = node(old_cont.parent);
  SubTxn& fresh = new_node_locked(p.idx, SubTxnKind::kContinuation);
  p.child_continuation = fresh.idx;
  // The fresh node inherits the FCC: the resumed code re-reads the current
  // continuation from the tree (submit_split_checkpointed's restored
  // branch), so the same checkpoint serves every incarnation.
  fresh.checkpoint = std::move(old_cont.checkpoint);
  fresh.reincarnated = true;
  return &fresh;
}

Fiber* TxTree::alloc_fiber() {
  std::lock_guard<std::mutex> lock(arena_mutex_);
  fibers_.push_back(std::make_unique<Fiber>());
  return fibers_.back().get();
}

bool TxTree::partial_rollback() const noexcept {
  return runtime_.config().restart == RestartPolicy::kPartialRollback &&
         !serial_;
}

void TxTree::schedule_resume(SubTxn& cont) {
  bump_progress();
  outstanding_tasks_.fetch_add(1, std::memory_order_acq_rel);
  runtime_.pool().submit([this, idx = cont.idx] { resume_continuation(idx); });
}

void TxTree::resume_continuation(std::uint32_t idx) {
  {
    util::EpochDomain::Guard guard(env_.epochs());
    Checkpoint* cp = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      SubTxn& c = node(idx);
      if (c.checkpoint && c.checkpoint->valid() &&
          c.orec.status.load(std::memory_order_acquire) ==
              SubTxnStatus::kRunning &&
          !failed_.load(std::memory_order_acquire)) {
        cp = c.checkpoint.get();
      }
    }
    if (cp != nullptr) {
      Fiber* fiber = cp->fiber();
      Fiber* prev = t_current_fiber;
      t_current_fiber = fiber;
      ++t_future_body_depth;
      fiber->restore(*cp);
      --t_future_body_depth;
      t_current_fiber = prev;
    }
  }
  task_done();
}

void TxTree::run_body_on_fiber(std::function<SubTxn*()> body) {
  Fiber* fiber = alloc_fiber();
  Fiber* prev = t_current_fiber;
  t_current_fiber = fiber;
  TxTree* const tree = this;
  // CAREFUL with captures: an FCC restore replays the tail of this wrapper
  // on the fiber stack long after the present host frame is gone. The
  // callable is therefore moved into the fiber's own (heap-stable) entry
  // slot; everything the replayed path dereferences — the wrapper closure,
  // `body`'s target, the tree pointer — lives there or on the fiber stack.
  fiber->run([tree, body = std::move(body)] {
    try {
      SubTxn* fin = body();
      if (fin != nullptr) tree->node_finished(*fin);
    } catch (const TreeFailed&) {
      // Tree already marked; hosts observe failed_.
    } catch (const NodeCancelled&) {
    } catch (...) {
      tree->fail_with_user_exception(std::current_exception());
    }
  });
  t_current_fiber = prev;
}

TxTree::SplitResult TxTree::submit_split_checkpointed(
    SubTxn& parent, std::shared_ptr<TxFutureStateBase> state,
    std::shared_ptr<NodeRunner> runner, adaptive::SiteStats* site,
    bool schedule) {
  check_alive(parent);
  assert(t_current_fiber != nullptr &&
         "partial-rollback submit outside a fiber-hosted body");
  SubTxn* future;
  SubTxn* cont;
  Checkpoint* cp;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    future = &new_node_locked(parent.idx, SubTxnKind::kFuture);
    future->future_state = std::move(state);
    future->runner = std::move(runner);
    future->site = site;
    cont = &new_node_locked(parent.idx, SubTxnKind::kContinuation);
    cont->checkpoint = std::make_unique<Checkpoint>();
    cp = cont->checkpoint.get();
    parent.child_future = future->idx;
    parent.child_continuation = cont->idx;
    parent.orec.status.store(SubTxnStatus::kFinished,
                             std::memory_order_release);
    finished_pending_.push_back(parent.idx);
  }
  // futures_submitted: counted once per submit() call in api.hpp.
  // The capture point: a rolled-back continuation resumes exactly here (on
  // whatever thread performs the restore) and takes the other branch. Note
  // the shared_ptr locals were moved into the tree *before* the capture, so
  // the restored stack only ever re-destroys empty handles.
  if (cp->capture(*t_current_fiber) == Checkpoint::CaptureResult::kRestored) {
    std::lock_guard<std::mutex> lock(mutex_);
    SubTxn& f2 = node(parent.child_future);
    SubTxn& c2 = node(parent.child_continuation);
    return SplitResult{&f2, &c2, true};
  }
  if (schedule) schedule_future(*future);
  return SplitResult{future, cont, false};
}

void TxTree::abort_subtree_locked(SubTxn& t) {
  if (t.child_future != kNoNode) abort_subtree_locked(node(t.child_future));
  if (t.child_continuation != kNoNode)
    abort_subtree_locked(node(t.child_continuation));
  t.orec.status.store(SubTxnStatus::kAborted, std::memory_order_release);
  t.read_path.flush_into(env_.read_stats());
  splice_node_writes(t);
  if (t.future_state) t.future_state->unpublish();
  finished_pending_.erase(
      std::remove(finished_pending_.begin(), finished_pending_.end(), t.idx),
      finished_pending_.end());
}

void TxTree::splice_node_writes(SubTxn& t) {
  for (stm::VBoxImpl* box : t.written_boxes) {
    // In-box list.
    TentativeVersion* head = box->tentative_head();
    if (head != nullptr && head->orec->tree == this) {
      // Drop aborted-of-t nodes; the head change must go through the box.
      while (head != nullptr && head->orec == &t.orec) {
        TentativeVersion* next = head->next.load(std::memory_order_acquire);
        if (!box->cas_tentative_head(head, next)) break;
        head = box->tentative_head();
        if (head == nullptr || head->orec->tree != this) break;
      }
      for (TentativeVersion* v = head; v != nullptr;) {
        TentativeVersion* next = v->next.load(std::memory_order_acquire);
        if (next != nullptr && next->orec == &t.orec) {
          v->next.store(next->next.load(std::memory_order_acquire),
                        std::memory_order_release);
          continue;  // re-check the same v against the new next
        }
        v = next;
      }
    }
    // Private chain.
    if (uses_private_.load(std::memory_order_acquire)) {
      std::scoped_lock plock(private_lock_);
      const stm::Word* w = private_store_.find(box);
      if (w != nullptr) {
        auto* chain =
            reinterpret_cast<TentativeVersion*>(static_cast<uintptr_t>(*w));
        while (chain != nullptr && chain->orec == &t.orec)
          chain = chain->next.load(std::memory_order_acquire);
        for (TentativeVersion* v = chain; v != nullptr;) {
          TentativeVersion* next = v->next.load(std::memory_order_acquire);
          if (next != nullptr && next->orec == &t.orec) {
            v->next.store(next->next.load(std::memory_order_acquire),
                          std::memory_order_release);
            continue;
          }
          v = next;
        }
        private_store_.put(box, static_cast<stm::Word>(
                                    reinterpret_cast<uintptr_t>(chain)));
      }
    }
  }
  t.written_boxes.clear();
}

void TxTree::mark_tree_failed_locked(TreeFailed::Reason reason) {
  if (failed_.load(std::memory_order_acquire)) return;
  fail_reason_ = reason;
  failed_.store(true, std::memory_order_release);
  bump_progress();
  // Wake external evaluators of futures that will never publish. (Internal
  // waiters unwind through check_alive in their help loops.)
  for (SubTxn& s : subs_) {
    if (s.future_state) s.future_state->mark_failed();
  }
  cv_.notify_all();
}

void TxTree::fail_continuation_locked(SubTxn& t) {
  // RestartPolicy::kTreeRestart — the FCC-free substitute (DESIGN.md,
  // substitution 2): restart the whole top-level transaction.
  // Charge the continuation conflict to the submit site whose future raced
  // this continuation (the sibling future of t's parent split): had that
  // submit been elided, the whole-tree restart could not have happened.
  if (t.parent != kNoNode) {
    SubTxn& p = node(t.parent);
    if (p.child_future != kNoNode) {
      if (adaptive::SiteStats* site = node(p.child_future).site) {
        runtime_.adaptive().note_abort(site, obs::AbortCause::kTreeOrder);
      }
    }
  }
  runtime_.stats().tree_restarts.fetch_add(1, std::memory_order_relaxed);
  mark_tree_failed_locked(TreeFailed::Reason::kContinuationConflict);
}

void TxTree::cascade_locked(std::vector<SubTxn*>& to_resubmit,
                            std::vector<SubTxn*>& to_resume) {
  bool progress = true;
  while (progress && !failed_.load(std::memory_order_acquire)) {
    progress = false;
    for (std::size_t i = 0; i < finished_pending_.size(); ++i) {
      SubTxn& t = node(finished_pending_[i]);
      if (t.orec.status.load(std::memory_order_acquire) !=
          SubTxnStatus::kFinished) {
        finished_pending_[i] = finished_pending_.back();
        finished_pending_.pop_back();
        progress = true;
        break;
      }
      if (!eligible_locked(t)) continue;
      if (!validate_locked(t)) {
        if (t.kind == SubTxnKind::kFuture) {
          runtime_.stats().future_reexecutions.fetch_add(
              1, std::memory_order_relaxed);
          SubTxn* fresh = reincarnate_future_locked(t);
          to_resubmit.push_back(fresh);
        } else if (t.kind == SubTxnKind::kContinuation && t.checkpoint &&
                   t.checkpoint->valid()) {
          // FCC partial rollback (paper §III): abort only the subtree
          // rooted at the continuation and replay from the submit point.
          runtime_.stats().partial_rollbacks.fetch_add(
              1, std::memory_order_relaxed);
          SubTxn* fresh = reincarnate_continuation_locked(t);
          to_resume.push_back(fresh);
        } else {
          fail_continuation_locked(t);
          return;
        }
      } else {
        commit_node_locked(t);
        finished_pending_.erase(std::remove(finished_pending_.begin(),
                                            finished_pending_.end(), t.idx),
                                finished_pending_.end());
      }
      progress = true;
      break;  // the pending list changed; rescan from the start
    }
  }
}

// --------------------------------------------------------------------------
// Top-level commit / abort
// --------------------------------------------------------------------------

void TxTree::debug_dump() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fprintf(stderr, "=== TxTree stuck: %zu nodes, pending=%zu, "
               "outstanding=%u failed=%d top_ready=%d ===\n", subs_.size(),
               finished_pending_.size(),
               outstanding_tasks_.load(std::memory_order_acquire),
               (int)failed_.load(std::memory_order_acquire), (int)top_ready_);
  for (const SubTxn& s : subs_) {
    std::fprintf(stderr,
                 "  node %u kind=%d parent=%d cf=%d cc=%d status=%d "
                 "nclock=%u reinc=%d reads=%zu writes=%zu eligible=%d "
                 "valid=%d\n",
                 s.idx, (int)s.kind, (int)s.parent, (int)s.child_future,
                 (int)s.child_continuation,
                 (int)s.orec.status.load(std::memory_order_acquire),
                 s.nclock.load(std::memory_order_acquire),
                 (int)s.reincarnated, s.reads.size(), s.written_boxes.size(),
                 (int)eligible_locked(s),
                 s.orec.status.load(std::memory_order_acquire) ==
                         SubTxnStatus::kFinished
                     ? (int)validate_locked(const_cast<SubTxn&>(s))
                     : -1);
  }
}

void TxTree::fail_stalled() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (failed_.load(std::memory_order_acquire)) return;
  runtime_.robustness().stall_aborts.fetch_add(1, std::memory_order_relaxed);
  mark_tree_failed_locked(TreeFailed::Reason::kStalled);
}

StallMonitor::StallMonitor(TxTree& tree)
    : tree_(tree),
      timeout_us_(tree.runtime().config().stall_timeout_us),
      last_epoch_(tree.progress_epoch()),
      since_(std::chrono::steady_clock::now()) {}

void StallMonitor::tick() {
  if (timeout_us_ == 0) return;
  const std::uint64_t epoch = tree_.progress_epoch();
  if (epoch != last_epoch_) {
    last_epoch_ = epoch;
    since_ = std::chrono::steady_clock::now();
    return;
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - since_);
  if (static_cast<std::uint64_t>(elapsed.count()) >= timeout_us_)
    tree_.fail_stalled();
}

void TxTree::wait_and_commit_top() {
  // Wait for the whole tree to commit, helping the pool so queued future
  // tasks cannot starve on small machines. The stall monitor turns any
  // residual wedge into a clean kStalled restart.
  StallMonitor stall(*this);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (top_ready_ || failed_.load(std::memory_order_acquire)) break;
      cv_.wait_for(lock, std::chrono::microseconds(200), [&] {
        return top_ready_ || failed_.load(std::memory_order_acquire);
      });
      if (top_ready_ || failed_.load(std::memory_order_acquire)) break;
    }
    runtime_.pool().try_run_one();
    stall.tick();
  }
  if (failed_.load(std::memory_order_acquire)) {
    const TreeFailed::Reason reason = fail_reason_;
    abort_tree(reason);
    throw TreeFailed{reason};
  }
  do_top_commit();
}

void TxTree::do_top_commit() {
  // Assemble the final write set: the root's private writes overlaid with
  // the newest committed tentative version per written box.
  stm::WriteSetMap final_writes;
  for (stm::VBoxImpl* box : root_write_set_.boxes())
    final_writes.put(box, root_write_set_.value_of(box));
  for (stm::VBoxImpl* box : tree_written_boxes_) {
    TentativeVersion* h = box->tentative_head();
    if (h != nullptr && h->orec->tree == this) {
      final_writes.put(box, h->value.load(std::memory_order_acquire));
      continue;
    }
    if (TentativeVersion* p = private_head(*box))
      final_writes.put(box, p->value.load(std::memory_order_acquire));
  }

  // Top-level tree commits ride the same group-commit pipeline as flat
  // transactions: pre-validate, then enqueue a pooled request into the
  // batched queue. A serial-irrevocable tree (api.hpp fallback) holds the
  // exclusive serial token here, so no other core commit can be advancing
  // the permanent state: its pre-validation passes vacuously and it flows
  // through as a batch of one — no special-casing needed.
  bool ok = true;
  if (!final_writes.empty()) {
    // Footprint attribution: tell every submit site in this tree how many
    // spine stripes the commit touches, so the adaptive controller can bias
    // wide-footprint sites toward co-located (single-stripe) execution.
    // Read-only trees skip this — they never enter the commit pipeline.
    {
      std::vector<adaptive::SiteStats*> sites;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        for (SubTxn& s : subs_) {
          if (s.kind == SubTxnKind::kFuture && s.site != nullptr &&
              std::find(sites.begin(), sites.end(), s.site) == sites.end()) {
            sites.push_back(s.site);
          }
        }
      }
      if (!sites.empty()) {
        const unsigned width = env_.queue().footprint_width(
            merged_permanent_reads_, final_writes.boxes());
        runtime_.adaptive().note_commit_footprint(sites, width);
      }
    }
    util::EpochDomain::Guard guard(env_.epochs());
    if (!env_.queue().prevalidate(merged_permanent_reads_, snapshot_)) {
      ok = false;
    } else {
      stm::CommitRequest* req = stm::CommitQueue::acquire_request();
      req->reads = merged_permanent_reads_;
      req->writes.reserve(final_writes.size());
      for (stm::VBoxImpl* box : final_writes.boxes()) {
        req->writes.push_back(stm::WriteBackEntry{
            box, stm::CommitQueue::acquire_node(final_writes.value_of(box))});
      }
      // The spine stamps req->snapshot with the footprint stripe's component
      // (or runs the synchronous multi-stripe protocol).
      ok = env_.queue().commit(req, snapshot_);
    }
  }

  status_.store(ok ? TreeStatus::kCommitted : TreeStatus::kAborted,
                std::memory_order_release);
  release_boxes();
  // Attempt finalizers need (a) no task of this tree still running — so
  // after drain_tasks() — and (b) on the commit path, this tree's registry
  // snapshot still published, so the versions it just committed cannot be
  // trimmed out from under the finalizers' version-list walks — so before
  // release_registry().
  drain_tasks();
  run_attempt_finalizers(ok);
  release_registry();
  if (!ok) {
    runtime_.stats().top_aborts.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      mark_tree_failed_locked(TreeFailed::Reason::kTopLevelConflict);
    }
    throw TreeFailed{TreeFailed::Reason::kTopLevelConflict};
  }
  runtime_.stats().top_commits.fetch_add(1, std::memory_order_relaxed);
}

void TxTree::release_boxes() {
  // Clear every tentative head this tree still holds; stale readers are
  // protected by EBR (the tree itself is retired through the domain).
  std::lock_guard<std::mutex> lock(mutex_);
  for (SubTxn& s : subs_) {
    for (stm::VBoxImpl* box : s.written_boxes) {
      TentativeVersion* h = box->tentative_head();
      if (h != nullptr && h->orec->tree == this)
        box->cas_tentative_head(h, nullptr);
    }
  }
  for (stm::VBoxImpl* box : tree_written_boxes_) {
    TentativeVersion* h = box->tentative_head();
    if (h != nullptr && h->orec->tree == this)
      box->cas_tentative_head(h, nullptr);
  }
}

void TxTree::drain_tasks() {
  while (outstanding_tasks_.load(std::memory_order_acquire) != 0) {
    if (runtime_.pool().try_run_one()) continue;
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drain_cv_.wait_for(lock, std::chrono::microseconds(100), [&] {
      return outstanding_tasks_.load(std::memory_order_acquire) == 0;
    });
  }
  // The zero may have been observed through the bare atomic above while the
  // final task_done() is still broadcasting under drain_mutex_. Our caller
  // is free to retire-and-free the tree the moment we return, so take the
  // mutex once: task_done() cannot release it mid-broadcast.
  std::lock_guard<std::mutex> lock(drain_mutex_);
}

void TxTree::fail_with_user_exception(std::exception_ptr e) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!user_exception_) user_exception_ = std::move(e);
  mark_tree_failed_locked(TreeFailed::Reason::kUserException);
}

std::exception_ptr TxTree::user_exception() {
  std::lock_guard<std::mutex> lock(mutex_);
  return user_exception_;
}

void TxTree::abort_tree(TreeFailed::Reason reason) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    mark_tree_failed_locked(reason);
  }
  drain_tasks();
  release_boxes();
  run_attempt_finalizers(false);
  status_.store(TreeStatus::kAborted, std::memory_order_release);
  release_registry();
}

}  // namespace txf::core
