#include "core/adaptive.hpp"

#include "obs/trace.hpp"
#include "util/failpoint.hpp"

namespace txf::core::adaptive {

namespace {
/// SplitMix64-style pointer mix: submit-site addresses share high bits and
/// alignment, so spread them before masking to the table size.
std::size_t mix_key(const void* key) noexcept {
  std::uint64_t x = static_cast<std::uint64_t>(
      reinterpret_cast<std::uintptr_t>(key));
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return static_cast<std::size_t>(x);
}
}  // namespace

namespace {
/// Config knobs are permille (0..1000); the EWMA runs in x1024 fixed point.
std::uint32_t permille_to_x1024(std::uint32_t pm) noexcept {
  return static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(pm) * 1024) / 1000);
}
}  // namespace

AdaptiveScheduler::AdaptiveScheduler(const Config& cfg,
                                     sched::ThreadPool& pool)
    : mode_(cfg.scheduling),
      params_{cfg.adaptive_inline_threshold_ns,
              cfg.adaptive_min_samples,
              cfg.adaptive_demote_after,
              cfg.adaptive_harden_after,
              cfg.adaptive_promote_after,
              cfg.adaptive_reprobe_period,
              permille_to_x1024(cfg.adaptive_conflict_demote_permille),
              permille_to_x1024(cfg.adaptive_conflict_promote_permille),
              cfg.adaptive_ordered_reprobe_period,
              cfg.adaptive_ordered_harden_after},
      pool_(&pool),
      table_(new SiteStats[kTableSize]) {
  reg_.counter("core.adaptive.parallel_decisions", parallel_decisions_)
      .counter("core.adaptive.inline_decisions", inline_decisions_)
      .counter("core.adaptive.ordered_decisions", ordered_decisions_)
      .counter("core.adaptive.probes", probes_)
      .counter("core.adaptive.demotions", demotions_)
      .counter("core.adaptive.conflict_demotions", conflict_demotions_)
      .counter("core.adaptive.promotions", promotions_)
      .counter("core.adaptive.footprint_single_stripe", footprint_single_)
      .counter("core.adaptive.footprint_multi_stripe", footprint_multi_)
      .histogram("core.adaptive.footprint_width", footprint_width_)
      .gauge("core.adaptive.sites", sites_);
}

SiteStats* AdaptiveScheduler::site_for(const void* key) noexcept {
  const std::size_t mask = kTableSize - 1;
  const std::size_t home = mix_key(key) & mask;
  for (std::size_t k = 0; k < kProbeLimit; ++k) {
    SiteStats& s = table_[(home + k) & mask];
    const void* cur = s.key.load(std::memory_order_acquire);
    if (cur == key) return &s;
    if (cur == nullptr) {
      const void* expected = nullptr;
      if (s.key.compare_exchange_strong(expected, key,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        sites_.add(1);
        return &s;
      }
      if (expected == key) return &s;
    }
  }
  // Probe window exhausted (pathological site count): share the home slot.
  // Blended statistics degrade the heuristic, never correctness.
  return &table_[home];
}

std::uint64_t AdaptiveScheduler::effective_threshold() const noexcept {
  std::uint64_t t = params_.inline_threshold_ns;
  if (pool_->queue_depth() > 0) {
    // Backlogged pool: raise the profitability bar with queue pressure
    // (each worker-multiple of backlog adds 1x, capped at 4x extra).
    t += t * pool_->backlog_factor(4);
    // No idle worker at all: a spawned body can only queue behind the
    // backlog, so inline is cheaper still.
    if (pool_->parked_workers() == 0) t += params_.inline_threshold_ns;
  }
  return t;
}

std::uint64_t AdaptiveScheduler::effective_threshold_for(
    const SiteStats* site) const noexcept {
  std::uint64_t t = effective_threshold();
  if (site != nullptr) {
    // Footprint bias: a W-stripe footprint serializes its commit through
    // the spine's multi-stripe path, so the site's bodies must be ~W times
    // bigger before parallel activation pays (x8 fixed point, capped 4x).
    std::uint64_t w8 = site->ewma_footprint_x8.load(std::memory_order_relaxed);
    if (w8 > 8) {
      if (w8 > 32) w8 = 32;
      t = t * w8 / 8;
    }
  }
  return t;
}

AdaptiveScheduler::Decision AdaptiveScheduler::decide(
    const void* site_key) noexcept {
  Decision d;
  switch (mode_) {
    case SchedulingMode::kAlwaysParallel:
      d.run_inline = false;
      break;
    case SchedulingMode::kAlwaysInline:
      d.run_inline = true;
      break;
    case SchedulingMode::kAlwaysOrdered:
      d.ordered = true;
      break;
    case SchedulingMode::kAdaptive: {
      d.site = site_for(site_key);
      const DecideResult r = d.site->decide(params_);
      d.run_inline = r.run_inline;
      d.probe = r.probe;
      d.sample = r.sample;
      d.ordered = r.ordered;
      break;
    }
  }
  // Chaos: flip the verdict (inline -> parallel, parallel -> inline,
  // ordered -> parallel). Strong ordering makes EVERY decision sequence
  // semantically correct, so a chaos run with this site armed proves the
  // engine cannot tell the difference (core_adaptive_test).
  if (TXF_FP_FIRES("core.adaptive.decide")) {
    d.run_inline = !(d.run_inline || d.ordered);
    d.ordered = false;
    d.probe = false;
    d.sample = true;
  }
  if (d.probe) probes_.add();
  if (d.run_inline) {
    inline_decisions_.add();
  } else if (d.ordered) {
    ordered_decisions_.add();
  } else {
    parallel_decisions_.add();
  }
  obs::trace::instant(
      obs::trace::Ev::kAdaptiveDecide,
      d.run_inline ? 1u : (d.probe ? 2u : (d.ordered ? 3u : 0u)));
  return d;
}

void AdaptiveScheduler::note_body_ns(SiteStats* site, std::uint64_t ns,
                                     RunKind kind) noexcept {
  if (site == nullptr) return;
  const Outcome out = site->note_body_sample(params_, ns, kind,
                                             effective_threshold_for(site));
  count_outcome(out);
}

void AdaptiveScheduler::note_abort(SiteStats* site,
                                   obs::AbortCause c) noexcept {
  if (site == nullptr) return;
  count_outcome(site->note_abort(params_, c));
}

void AdaptiveScheduler::note_commit_footprint(
    const std::vector<SiteStats*>& sites, unsigned width) noexcept {
  if (sites.empty()) return;
  footprint_width_.record(width);
  (width <= 1 ? footprint_single_ : footprint_multi_).add();
  for (SiteStats* s : sites) s->note_footprint(width);
}

}  // namespace txf::core::adaptive
