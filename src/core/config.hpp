// Runtime configuration knobs for the transactional-futures engine.
//
// The defaults follow the paper's JTF design; the alternatives exist for the
// ablation benchmarks (DESIGN.md experiments Abl. A/B/C).
#pragma once

#include <cstddef>
#include <cstdint>

#include "obs/drift.hpp"
#include "obs/timeline.hpp"
#include "util/failpoint.hpp"

namespace txf::core {

/// Where sub-transaction writes live.
enum class WriteMode {
  /// Paper default: tentative versions are linked into the VBox itself; the
  /// head of the tentative list acts as a tree-wide lock, so write-write
  /// conflicts between trees are detected eagerly (§IV-A).
  kEager,
  /// Ablation: writes always go to the tree-private store (the
  /// rootWriteSet generalized with per-owner tags). Inter-tree conflicts
  /// surface only at top-level validation.
  kLazy,
};

/// What happens when a sub-transaction hits a VBox whose tentative list is
/// locked by another transaction tree (Alg. 1, ownedbyAnotherTree).
enum class InterTreePolicy {
  /// Paper behaviour: abort up to the root and re-execute the tree in
  /// fallback mode, where writes go through the tree-private store.
  kAbortToRoot,
  /// Ablation: switch the running tree to the private store on the fly and
  /// continue without aborting.
  kSwitchToPrivate,
};

/// How a continuation that fails intra-tree validation recovers.
enum class RestartPolicy {
  /// Conservative substitute for JTF's first-class continuations: restart
  /// the whole top-level tree (DESIGN.md substitution 2).
  kTreeRestart,
  /// FCC analogue: restore the stack snapshot taken at the submit point and
  /// replay only the subtree rooted at the continuation. Requires bodies to
  /// run on fibers (see core/fcc.hpp) and locals that live across a submit
  /// to be trivially copyable.
  kPartialRollback,
};

/// How TxCtx::submit runs a transactional future. Strong ordering makes
/// inline elision (running the body synchronously at the submit point)
/// always semantically correct — the choice is pure scheduling, and every
/// mode passes the same ordering-semantics tests (core_adaptive_test).
enum class SchedulingMode {
  /// Every future spawns a parallel sibling sub-transaction (the
  /// pre-adaptive behaviour; kept for the ablation benches).
  kAlwaysParallel,
  /// Every future is elided inline at the submit point — the sequential
  /// execution the paper defines equivalence against.
  kAlwaysInline,
  /// Every future takes the ordered-execution lane: a real sibling
  /// sub-transaction (split structure, per-node validation, strong-order
  /// commit cascade all preserved) whose body runs synchronously on the
  /// submitting thread, in submission (pre-order) order — "Processing
  /// Transactions in a Predefined Order" applied to sibling subtrees.
  /// Siblings never race, so intra-tree conflict abort-retry vanishes.
  kAlwaysOrdered,
  /// Default: a per-submit-site profitability controller
  /// (core/adaptive.hpp) demotes sites whose bodies are too small — or
  /// too abort-prone — to pay for parallel activation, and periodically
  /// re-probes so sites can earn parallelism back. Fresh sites start
  /// parallel, so first executions behave exactly like kAlwaysParallel.
  kAdaptive,
};

/// Engine configuration, fixed for the lifetime of the Runtime constructed
/// from it. Plain aggregate: set fields, then pass to Runtime's
/// constructor; a copy is taken, later mutation of the original has no
/// effect. Every knob is safe to combine with every other unless noted.
struct Config {
  std::size_t pool_threads = 0;  // 0 = hardware concurrency
  /// Commit-spine stripes (stm/commit_spine.hpp): each VBox hashes to one
  /// of `commit_stripes` independent commit pipelines with its own clock
  /// component. Must be a power of two in [1, stm::kMaxStripes] — Runtime's
  /// constructor throws std::invalid_argument otherwise. 1 reproduces the
  /// unsharded single-pipeline engine exactly.
  unsigned commit_stripes = 8;
  WriteMode write_mode = WriteMode::kEager;
  InterTreePolicy inter_tree = InterTreePolicy::kAbortToRoot;
  RestartPolicy restart = RestartPolicy::kTreeRestart;
  /// §IV-E: skip validation of read-only futures when no read-write
  /// sub-transaction committed before them. Off switch is ablation Abl. C.
  bool read_only_future_opt = true;
  // --- future scheduling (core/adaptive.hpp) ---

  /// Inline-vs-parallel elision policy for TxCtx::submit (see
  /// SchedulingMode). Default adaptive.
  SchedulingMode scheduling = SchedulingMode::kAdaptive;
  /// Profitability bar: a site whose EWMA body runtime stays below this is
  /// too small to pay for parallel activation (node + pool hop + per-node
  /// validation) and demotes toward inline. Scaled up automatically under
  /// pool backlog (see AdaptiveScheduler::effective_threshold).
  std::uint64_t adaptive_inline_threshold_ns = 4000;
  /// Timed body samples a site must accumulate before its first demotion
  /// (guards one-shot call sites from ever leaving kParallel).
  std::uint32_t adaptive_min_samples = 8;
  /// Unprofitability score at which a parallel site enters probation.
  std::uint32_t adaptive_demote_after = 8;
  /// Score at which a probation site hardens to fully inline.
  std::uint32_t adaptive_harden_after = 12;
  /// Profitable-sample score that promotes a probation site back to
  /// parallel.
  std::uint32_t adaptive_promote_after = 4;
  /// Elided decisions between parallel re-probes of an inline site
  /// (0 = never re-probe; phase changes then cannot earn parallelism back).
  /// Kept sparse by default: for sub-threshold bodies one probe costs many
  /// elided runs, so the probe tax is what bounds how closely kAdaptive can
  /// track kAlwaysInline on unprofitable sites.
  std::uint32_t adaptive_reprobe_period = 256;
  /// Conflict-rate bar (permille of parallel runs ending in a chargeable
  /// conflict abort) at which a parallel site demotes to the ordered lane
  /// (SiteState::kOrdered) even when its body looks profitable — the
  /// conflict-aware half of the decision function (DESIGN.md §5e).
  std::uint32_t adaptive_conflict_demote_permille = 150;
  /// Conflict-rate floor below which an ordered site's parallel probes have
  /// proved the contention burst over and the site promotes back to
  /// kParallel. Must be below the demote bar (hysteresis).
  std::uint32_t adaptive_conflict_promote_permille = 60;
  /// Decision period between parallel re-probes for conflict-demoted sites
  /// (kOrdered, and kInline reached through the conflict path). Denser than
  /// adaptive_reprobe_period so a bursty-contention demotion is not a
  /// permanent blacklist: each clean probe decays the conflict EWMA.
  std::uint32_t adaptive_ordered_reprobe_period = 64;
  /// Chargeable conflict aborts observed while a site is kOrdered before it
  /// hardens to kInline — conflicts that survive sibling serialization are
  /// inter-tree, so ordering buys nothing and full co-location is cheaper.
  std::uint32_t adaptive_ordered_harden_after = 8;

  // --- contention manager (bounded retry + graceful degradation) ---

  /// Parallel attempts per atomically() before escalating to the
  /// serial-irrevocable fallback. The budget counts *failed* attempts of any
  /// kind (conflicts, stalls, chaos-induced aborts). 0 disables escalation
  /// (retry forever, the pre-robustness behaviour).
  std::uint32_t max_attempts = 16;
  /// Capped exponential backoff between attempts: attempt k waits a uniform
  /// random slice of [0, min(backoff_base_us << k, backoff_cap_us)] (full
  /// jitter, so colliding trees decorrelate).
  std::uint32_t backoff_base_us = 4;
  std::uint32_t backoff_cap_us = 1000;
  /// Optional wall-clock deadline for one atomically() call, in
  /// microseconds; when it expires the current attempt is abandoned and the
  /// call escalates straight to the serial-irrevocable fallback
  /// (0 = no deadline).
  std::uint64_t tx_deadline_us = 0;
  /// Stall detector: a thread waiting inside a transaction (future
  /// evaluation, top-commit wait) that observes no tree progress for this
  /// long declares the attempt wedged and fails it — the retry budget and
  /// serial fallback then guarantee termination. 0 disables detection.
  std::uint64_t stall_timeout_us = 250000;

  /// Chaos schedule armed for the lifetime of the Runtime (failpoint
  /// framework; see util/failpoint.hpp). Empty = disarmed. Failure
  /// injection goes through chaos rules only — e.g. the old validation
  /// knob is spelled
  ///   cfg.chaos.add("core.subtxn.validate", util::fp::Action::kFail, N);
  util::fp::ChaosPlan chaos;

  // --- drift observability (obs/timeline.hpp, obs/drift.hpp) ---

  /// Periodic metrics-timeline sampler owned by the Runtime. Disabled by
  /// default; txf_server enables it, and TXF_TIMELINE=1 in the environment
  /// (with optional TXF_TIMELINE_MS) overrides for any Runtime — that is
  /// how the trace-overhead bench turns it on without a code path.
  obs::TimelineConfig timeline;
  /// Thresholds for the drift detectors evaluated over the timeline.
  /// Consumed by whoever owns a DriftMonitor (txf_server's controller);
  /// carried here so one Config describes the whole soak.
  obs::DriftConfig drift;
};

}  // namespace txf::core
