// Runtime configuration knobs for the transactional-futures engine.
//
// The defaults follow the paper's JTF design; the alternatives exist for the
// ablation benchmarks (DESIGN.md experiments Abl. A/B/C).
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/failpoint.hpp"

namespace txf::core {

/// Where sub-transaction writes live.
enum class WriteMode {
  /// Paper default: tentative versions are linked into the VBox itself; the
  /// head of the tentative list acts as a tree-wide lock, so write-write
  /// conflicts between trees are detected eagerly (§IV-A).
  kEager,
  /// Ablation: writes always go to the tree-private store (the
  /// rootWriteSet generalized with per-owner tags). Inter-tree conflicts
  /// surface only at top-level validation.
  kLazy,
};

/// What happens when a sub-transaction hits a VBox whose tentative list is
/// locked by another transaction tree (Alg. 1, ownedbyAnotherTree).
enum class InterTreePolicy {
  /// Paper behaviour: abort up to the root and re-execute the tree in
  /// fallback mode, where writes go through the tree-private store.
  kAbortToRoot,
  /// Ablation: switch the running tree to the private store on the fly and
  /// continue without aborting.
  kSwitchToPrivate,
};

/// How a continuation that fails intra-tree validation recovers.
enum class RestartPolicy {
  /// Conservative substitute for JTF's first-class continuations: restart
  /// the whole top-level tree (DESIGN.md substitution 2).
  kTreeRestart,
  /// FCC analogue: restore the stack snapshot taken at the submit point and
  /// replay only the subtree rooted at the continuation. Requires bodies to
  /// run on fibers (see core/fcc.hpp) and locals that live across a submit
  /// to be trivially copyable.
  kPartialRollback,
};

struct Config {
  std::size_t pool_threads = 0;  // 0 = hardware concurrency
  WriteMode write_mode = WriteMode::kEager;
  InterTreePolicy inter_tree = InterTreePolicy::kAbortToRoot;
  RestartPolicy restart = RestartPolicy::kTreeRestart;
  /// §IV-E: skip validation of read-only futures when no read-write
  /// sub-transaction committed before them. Off switch is ablation Abl. C.
  bool read_only_future_opt = true;
  /// Legacy failure-injection knob, now folded into the failpoint framework:
  /// Runtime translates it into a `core.subtxn.validate` chaos rule firing
  /// every Nth validation (0 = off). Prefer `chaos` for new code.
  std::uint32_t inject_validation_failure_every = 0;

  // --- contention manager (bounded retry + graceful degradation) ---

  /// Parallel attempts per atomically() before escalating to the
  /// serial-irrevocable fallback. The budget counts *failed* attempts of any
  /// kind (conflicts, stalls, chaos-induced aborts). 0 disables escalation
  /// (retry forever, the pre-robustness behaviour).
  std::uint32_t max_attempts = 16;
  /// Capped exponential backoff between attempts: attempt k waits a uniform
  /// random slice of [0, min(backoff_base_us << k, backoff_cap_us)] (full
  /// jitter, so colliding trees decorrelate).
  std::uint32_t backoff_base_us = 4;
  std::uint32_t backoff_cap_us = 1000;
  /// Optional wall-clock deadline for one atomically() call, in
  /// microseconds; when it expires the current attempt is abandoned and the
  /// call escalates straight to the serial-irrevocable fallback
  /// (0 = no deadline).
  std::uint64_t tx_deadline_us = 0;
  /// Stall detector: a thread waiting inside a transaction (future
  /// evaluation, top-commit wait) that observes no tree progress for this
  /// long declares the attempt wedged and fails it — the retry budget and
  /// serial fallback then guarantee termination. 0 disables detection.
  std::uint64_t stall_timeout_us = 250000;

  /// Chaos schedule armed for the lifetime of the Runtime (failpoint
  /// framework; see util/failpoint.hpp). Empty = disarmed.
  util::fp::ChaosPlan chaos;
};

}  // namespace txf::core
