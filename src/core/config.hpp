// Runtime configuration knobs for the transactional-futures engine.
//
// The defaults follow the paper's JTF design; the alternatives exist for the
// ablation benchmarks (DESIGN.md experiments Abl. A/B/C).
#pragma once

#include <cstddef>
#include <cstdint>

namespace txf::core {

/// Where sub-transaction writes live.
enum class WriteMode {
  /// Paper default: tentative versions are linked into the VBox itself; the
  /// head of the tentative list acts as a tree-wide lock, so write-write
  /// conflicts between trees are detected eagerly (§IV-A).
  kEager,
  /// Ablation: writes always go to the tree-private store (the
  /// rootWriteSet generalized with per-owner tags). Inter-tree conflicts
  /// surface only at top-level validation.
  kLazy,
};

/// What happens when a sub-transaction hits a VBox whose tentative list is
/// locked by another transaction tree (Alg. 1, ownedbyAnotherTree).
enum class InterTreePolicy {
  /// Paper behaviour: abort up to the root and re-execute the tree in
  /// fallback mode, where writes go through the tree-private store.
  kAbortToRoot,
  /// Ablation: switch the running tree to the private store on the fly and
  /// continue without aborting.
  kSwitchToPrivate,
};

/// How a continuation that fails intra-tree validation recovers.
enum class RestartPolicy {
  /// Conservative substitute for JTF's first-class continuations: restart
  /// the whole top-level tree (DESIGN.md substitution 2).
  kTreeRestart,
  /// FCC analogue: restore the stack snapshot taken at the submit point and
  /// replay only the subtree rooted at the continuation. Requires bodies to
  /// run on fibers (see core/fcc.hpp) and locals that live across a submit
  /// to be trivially copyable.
  kPartialRollback,
};

struct Config {
  std::size_t pool_threads = 0;  // 0 = hardware concurrency
  WriteMode write_mode = WriteMode::kEager;
  InterTreePolicy inter_tree = InterTreePolicy::kAbortToRoot;
  RestartPolicy restart = RestartPolicy::kTreeRestart;
  /// §IV-E: skip validation of read-only futures when no read-write
  /// sub-transaction committed before them. Off switch is ablation Abl. C.
  bool read_only_future_opt = true;
  /// Failure injection for tests: make roughly one in
  /// `inject_validation_failure_every` sub-transaction validations fail
  /// spuriously (0 = off). The engine must recover with identical results
  /// — exercised by the failure-injection test suite.
  std::uint32_t inject_validation_failure_every = 0;
};

}  // namespace txf::core
