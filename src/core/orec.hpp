// Ownership records and tentative versions (paper §III-A, Fig. 3b).
//
// Every sub-transaction owns one orec, created with it. A tentative version
// (an entry of a VBox's tentative list, or of the tree-private store)
// points at the orec of the sub-transaction that wrote it. When a
// sub-transaction commits, ownership of all orecs it controls moves to its
// parent, stamped with the parent's child-commit clock (nClock) — that pair
// is what makes a version visible to later-started siblings (Fig. 4).
//
// The (owner, txTreeVer) pair is packed into one atomic word so readers see
// a consistent snapshot without locks. The owner is identified by its index
// in the tree's sub-transaction arena plus its depth; a reader T checks
// "owner is an ancestor of T" purely against T's own root path.
#pragma once

#include <atomic>
#include <cstdint>

#include "stm/versions.hpp"

namespace txf::core {

class TxTree;

enum class SubTxnStatus : std::uint8_t {
  kRunning,    // executing user code
  kFinished,   // code done (or halted at a submit point), not yet committed
  kCommitted,  // whole subtree committed and propagated to the parent
  kAborted,    // rolled back (validation failure / cascade / cancel)
};

/// Packed (owner index, owner depth, txTreeVer).
struct Ownership {
  static constexpr unsigned kIdxBits = 20;
  static constexpr unsigned kDepthBits = 20;
  static constexpr unsigned kVerBits = 24;

  static std::uint64_t pack(std::uint32_t idx, std::uint32_t depth,
                            std::uint32_t ver) noexcept {
    return (static_cast<std::uint64_t>(idx) << (kDepthBits + kVerBits)) |
           (static_cast<std::uint64_t>(depth) << kVerBits) | ver;
  }
  static std::uint32_t idx(std::uint64_t w) noexcept {
    return static_cast<std::uint32_t>(w >> (kDepthBits + kVerBits));
  }
  static std::uint32_t depth(std::uint64_t w) noexcept {
    return static_cast<std::uint32_t>(w >> kVerBits) &
           ((1u << kDepthBits) - 1);
  }
  static std::uint32_t ver(std::uint64_t w) noexcept {
    return static_cast<std::uint32_t>(w) & ((1u << kVerBits) - 1);
  }
};

struct Orec {
  TxTree* tree = nullptr;  // immutable: the tree this orec belongs to
  std::atomic<std::uint64_t> ownership{0};
  std::atomic<SubTxnStatus> status{SubTxnStatus::kRunning};

  void set_ownership(std::uint32_t idx, std::uint32_t depth,
                     std::uint32_t ver) noexcept {
    ownership.store(Ownership::pack(idx, depth, ver),
                    std::memory_order_release);
  }
};

/// One tentative write. Lives in the tree's arena; `next` links either the
/// in-VBox tentative list (eager mode) or a tree-private chain (lazy /
/// fallback mode), always in descending strong-ordering position.
struct TentativeVersion {
  std::atomic<stm::Word> value;
  Orec* orec;
  std::atomic<TentativeVersion*> next{nullptr};

  TentativeVersion(stm::Word v, Orec* o) noexcept : value(v), orec(o) {}
};

}  // namespace txf::core
