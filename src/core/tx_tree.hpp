// TxTree: one top-level transaction together with its tree of
// sub-transactions (futures and continuations). Implements the paper's
// concurrency control (§III-IV):
//
//  * reads per Alg. 2 — own/ancestor tentative versions (ancVer/nClock
//    visibility), then the root write set, then the committed snapshot;
//  * writes per Alg. 1 — tentative versions linked into the VBox whose head
//    doubles as a tree-wide lock (eager mode), with the tree-private store
//    as the fallback (rootWriteSet generalization) on inter-tree conflicts;
//  * commit ordering per Alg. 3/4 — nodes commit strictly in the pre-order
//    dictated by strong ordering semantics; commits cascade bottom-up,
//    re-owning orecs to the parent and bumping its nClock;
//  * top-level commit — merged read-set validation and write-back through
//    the STM's helped commit queue.
//
// Threading model: user code runs on the submitting thread (root +
// continuations) and on pool threads (futures). All tree-structure
// mutations and the commit cascade run under `mutex_`; the data fast paths
// (read/write on VBoxes) touch only atomics, the tree-private store's spin
// lock, and immutable node metadata.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/config.hpp"
#include "core/future_state.hpp"
#include "core/subtxn.hpp"
#include "obs/abort_cause.hpp"
#include "obs/metrics.hpp"
#include "stm/transaction.hpp"
#include "util/spin_lock.hpp"

namespace txf::core {

class Runtime;

/// Thrown (internally) to unwind user code when the whole tree must
/// restart; caught by the atomically() driver.
struct TreeFailed {
  enum class Reason : std::uint8_t {
    kContinuationConflict,  // intra-tree validation failure (TreeRestart)
    kInterTreeConflict,     // Alg. 1 ownedbyAnotherTree -> restart in fallback
    kTopLevelConflict,      // commit-queue validation failed
    kUserException,         // user code threw inside a future body
    kStalled,               // stall detector: no tree progress for too long
    kStaleSnapshot,         // snapshot lost a race with version trimming
  };
  Reason reason;
};

/// Thrown inside a future task whose sub-transaction was cancelled (its
/// subtree is being re-executed or the tree failed). Swallowed by the task
/// wrapper.
struct NodeCancelled {};

/// Per-runtime counters (shared by all trees; relaxed atomics).
struct TxStats {
  std::atomic<std::uint64_t> top_commits{0};
  std::atomic<std::uint64_t> top_aborts{0};          // commit-queue conflicts
  std::atomic<std::uint64_t> tree_restarts{0};       // continuation conflicts
  std::atomic<std::uint64_t> fallback_restarts{0};   // inter-tree conflicts
  std::atomic<std::uint64_t> future_reexecutions{0}; // future validation fail
  std::atomic<std::uint64_t> futures_submitted{0};
  std::atomic<std::uint64_t> ro_validation_skips{0}; // §IV-E fast path taken
  std::atomic<std::uint64_t> serial_fallbacks{0};    // convergence fallback
  std::atomic<std::uint64_t> partial_rollbacks{0};   // FCC continuation rolls

  TxStats() {
    reg_.atomic("core.top_commits", top_commits)
        .atomic("core.top_aborts", top_aborts)
        .atomic("core.tree_restarts", tree_restarts)
        .atomic("core.fallback_restarts", fallback_restarts)
        .atomic("core.future_reexecutions", future_reexecutions)
        .atomic("core.futures_submitted", futures_submitted)
        .atomic("core.ro_validation_skips", ro_validation_skips)
        .atomic("core.serial_fallbacks", serial_fallbacks)
        .atomic("core.partial_rollbacks", partial_rollbacks);
  }

  void reset() {
    top_commits = 0;
    top_aborts = 0;
    tree_restarts = 0;
    fallback_restarts = 0;
    future_reexecutions = 0;
    futures_submitted = 0;
    ro_validation_skips = 0;
    serial_fallbacks = 0;
    partial_rollbacks = 0;
  }

 private:
  obs::Registration reg_;  // "core.*" in the MetricsRegistry
};

class TxTree {
 public:
  enum class TreeStatus : std::uint8_t { kActive, kCommitted, kAborted };

  /// `fallback` starts the tree with all sub-transaction writes going to
  /// the tree-private store (set when restarting after an inter-tree
  /// conflict, per Alg. 1).
  TxTree(Runtime& runtime, bool fallback);
  ~TxTree();

  TxTree(const TxTree&) = delete;
  TxTree& operator=(const TxTree&) = delete;

  Runtime& runtime() noexcept { return runtime_; }
  /// The per-stripe snapshot vector this tree reads at.
  const stm::SnapshotVec& snapshot_vec() const noexcept { return snapshot_; }
  /// Sum of the snapshot components: a monotonic progress stamp used by
  /// retry_now() to park until any later commit (api.hpp).
  stm::Version snapshot_total() const noexcept {
    return snapshot_.total(nstripes_);
  }
  SubTxn* root() noexcept { return &node(root_); }
  TreeStatus status() const noexcept {
    return status_.load(std::memory_order_acquire);
  }
  bool in_fallback() const noexcept {
    return fallback_.load(std::memory_order_acquire);
  }

  /// Process-unique, never-reused attempt id (a global monotone counter;
  /// 0 is reserved as "no owner"). Containers use (tree id, node idx) as
  /// an ownership token for attempt-private structures — pointer identity
  /// alone is unsafe because a later tree can reuse this tree's address.
  std::uint64_t id() const noexcept { return id_; }

  // --- per-attempt container state (containers/tx_btree.hpp) ---
  //
  // A container may park one opaque object per (tree, container) pair and
  // have it finalized exactly once when the attempt's fate is known. The
  // finalizer runs with `committed` telling it whether the tree's final
  // write set was published; it runs after drain_tasks() (no task of this
  // tree can still touch attempt-private memory) and — on the commit path —
  // before release_registry(), so the tree's own snapshot still pins its
  // freshly committed versions against concurrent trims while the finalizer
  // walks version lists.

  /// Deleter/finalizer for a parked attempt state.
  using AttemptFinalizer = void (*)(void* state, bool committed);

  /// The state parked under `key`, or nullptr.
  void* attempt_state(const void* key) noexcept;

  /// Get-or-create: returns the state parked under `key` (a container
  /// instance address), calling `create(create_arg)` to build it on first
  /// use. Atomic against concurrent futures of this tree racing the first
  /// touch; `fin` is remembered from the creating call.
  void* ensure_attempt_state(const void* key, void* (*create)(void* arg),
                             void* create_arg, AttemptFinalizer fin);

  // --- data path (called via TxCtx) ---

  stm::Word read(SubTxn& t, stm::VBoxImpl& box);
  void write(SubTxn& t, stm::VBoxImpl& box, stm::Word value);

  /// Throws TreeFailed/NodeCancelled if this node must unwind, and lazily
  /// refreshes the node's ancVer while it has touched no data. Called at
  /// every transactional operation.
  void check_alive(SubTxn& t);

  /// Serial execution mode: futures run inline at the submit point —
  /// literally the sequential execution that strong ordering semantics is
  /// defined against. Used as the convergence fallback after repeated
  /// continuation conflicts (no FCC support; DESIGN.md substitution 2).
  bool serial() const noexcept { return serial_; }
  void set_serial() noexcept { serial_ = true; }

  // --- structure / lifecycle ---

  /// Split `parent` at a submit point: creates the future (returned) and
  /// continuation children. `state` and `runner` belong to the future.
  /// `site`, when non-null, is the adaptive scheduler's stats slot for the
  /// submit site; the commit cascade charges aborts against it.
  /// `schedule` = false skips the pool hand-off (the ordered-execution
  /// lane runs the body itself via run_future_now).
  /// Returns {future*, continuation*}.
  std::pair<SubTxn*, SubTxn*> submit_split(
      SubTxn& parent, std::shared_ptr<TxFutureStateBase> state,
      std::shared_ptr<NodeRunner> runner,
      adaptive::SiteStats* site = nullptr, bool schedule = true);

  /// Partial-rollback flavour of submit_split: additionally captures an FCC
  /// at the submit point (the calling code must be running on a fiber —
  /// see run_body_on_fiber). `restored` is true when this return is a
  /// rolled-back continuation resuming: the future already exists and ran;
  /// only the continuation node is fresh.
  struct SplitResult {
    SubTxn* future;
    SubTxn* continuation;
    bool restored;
  };
  SplitResult submit_split_checkpointed(
      SubTxn& parent, std::shared_ptr<TxFutureStateBase> state,
      std::shared_ptr<NodeRunner> runner,
      adaptive::SiteStats* site = nullptr, bool schedule = true);

  /// Keep `state` alive for the tree's lifetime. Used by inline elision in
  /// partial-rollback trees: an owning TxFuture handle on a fiber stack is
  /// unsafe across FCC restores (the restored frame re-destroys it), so the
  /// elided submit returns a non-owning handle and parks ownership here.
  void adopt_state(std::shared_ptr<TxFutureStateBase> state);

  /// True when this tree runs continuations on fibers with FCC rollback.
  bool partial_rollback() const noexcept;

  /// Execute `body` on a fresh tree-owned fiber with exception routing
  /// handled; `body` returns the node to finish (the context's current
  /// node after the user code). Used for the root body and future bodies
  /// in partial-rollback mode. By value: the callable moves into the
  /// fiber's stable storage (see run_future_body).
  void run_body_on_fiber(std::function<SubTxn*()> body);

  /// Schedule the future body of `f` on the pool.
  void schedule_future(SubTxn& f);

  /// Ordered-execution lane: run `f`'s body synchronously on the calling
  /// thread instead of handing it to the pool. The split structure —
  /// per-node validation, reincarnation, strong-order commit cascade — is
  /// identical to the scheduled path; only the racing is gone, so siblings
  /// execute in submission (pre-order) order. Pair with
  /// submit_split(..., /*schedule=*/false).
  void run_future_now(SubTxn& f);

  /// Charge a whole-tree conflict failure (`cause` kWriteWrite or
  /// kReadValidation) to the submit sites of every claimed parallel future
  /// in this tree, so the adaptive controller's conflict EWMA sees
  /// inter-tree conflicts that never surface as per-node aborts. Other
  /// causes (incl. kTreeOrder, already charged per-sibling at the
  /// fail-continuation site) are ignored.
  void charge_conflict_aborts(obs::AbortCause cause);

  /// Run one future body invocation on the current (pool) thread. `body`
  /// executes the user code starting at the given node and returns the node
  /// that was current when the code finished (the innermost continuation if
  /// the body submitted nested futures); that node is then finished.
  /// Taken by value: in partial-rollback mode the callable is moved into
  /// the fiber's stable storage, because FCC restores replay its tail long
  /// after the caller's frame is gone.
  void run_future_body(std::uint32_t node_idx,
                       std::function<SubTxn*(SubTxn&)> body);

  /// Mark `t`'s code complete and run the commit cascade.
  void node_finished(SubTxn& t);

  /// Body-thread epilogue: wait for the whole tree to commit, then perform
  /// the top-level commit. Throws TreeFailed when the tree must restart.
  void wait_and_commit_top();

  /// Abort the whole tree (driver saw the body throw, or restart path).
  /// Safe to call multiple times; drains outstanding future tasks.
  void abort_tree(TreeFailed::Reason reason);

  /// A future body threw a user exception: the transaction aborts and the
  /// exception resurfaces from atomically() — exactly what the equivalent
  /// sequential execution (future called at the submit point) would do.
  void fail_with_user_exception(std::exception_ptr e);
  std::exception_ptr user_exception();

  // --- robustness: targeted helping + stall detection ---

  /// If the future evaluating into `state` belongs to this tree and its body
  /// has not started anywhere yet, claim and run it on the calling thread.
  /// Safe from any waiter: the awaited future precedes the waiter in strong
  /// order, so inlining it reproduces the sequential execution and cannot
  /// close a wait cycle (unlike running *arbitrary* pool tasks, which can
  /// bury a continuation frame the picked-up body transitively waits on).
  /// Returns true when a body was actually run.
  bool help_evaluate(const TxFutureStateBase& state);

  /// True while the calling thread is inside a future body of any tree —
  /// such frames must not run arbitrary pool tasks (see help_evaluate).
  static bool in_future_body() noexcept;

  /// Monotone counter bumped on every tree state change (node created /
  /// finished / committed / rescheduled / failed). Stall detection watches
  /// it; see StallMonitor.
  std::uint64_t progress_epoch() const noexcept {
    return progress_epoch_.load(std::memory_order_acquire);
  }

  /// Stall detector verdict: fail the whole tree with Reason::kStalled so
  /// every blocked frame unwinds and atomically() retries (and eventually
  /// escalates to the serial-irrevocable fallback). Idempotent.
  void fail_stalled();

  /// A chaos failpoint's failure action fired during this attempt (one tree
  /// = one attempt). The abort-cause taxonomy reports such an attempt as
  /// kFailpointInjected regardless of which conflict shape the injection
  /// took, so chaos aborts never pollute the organic cause counters.
  void note_chaos_induced() noexcept {
    chaos_induced_.store(true, std::memory_order_relaxed);
  }
  bool chaos_induced() const noexcept {
    return chaos_induced_.load(std::memory_order_relaxed);
  }

  /// Debug: print the node table to stderr (diagnosing stuck cascades).
  void debug_dump();

  // --- helpers for tests ---
  std::uint32_t committed_rw_subtxns() const noexcept {
    return committed_rw_count_.load(std::memory_order_acquire);
  }
  std::size_t node_count() const;

 private:
  friend class TxCtx;

  struct Resolved {
    stm::Word value;
    const void* provenance;      // kTentative only; null for home-slot reads
    ReadProvenance kind;
    // kPermanent only: the committed version served (what validation
    // compares), how many list hops it cost (0 for the home slot), and
    // whether the home slot served it. perm_version == stm::kNoVersion
    // marks a read whose snapshot lost a race with trimming.
    stm::Version perm_version = 0;
    std::size_t walk_steps = 0;
    bool home_hit = false;
  };

  SubTxn& node(std::uint32_t idx) { return subs_[idx]; }
  const SubTxn& node(std::uint32_t idx) const { return subs_[idx]; }

  SubTxn& new_node_locked(std::uint32_t parent, SubTxnKind kind);

  /// Resolve a read for `t`. `now` = validation mode: every version owned
  /// by an ancestor (any txTreeVer) is visible — the "serialize as of now"
  /// view used by Alg. 4's validate(). `exclude_self` hides t's own writes,
  /// so validation can recompute what a read that *preceded* those writes
  /// would return.
  Resolved resolve(const SubTxn& t, stm::VBoxImpl& box, bool now,
                   bool exclude_self = false) const;

  bool tentative_visible(const SubTxn& t, const TentativeVersion& v,
                         bool now, bool exclude_self) const;

  void write_eager(SubTxn& t, stm::VBoxImpl& box, stm::Word value);
  void write_private(SubTxn& t, stm::VBoxImpl& box, stm::Word value);
  TentativeVersion* private_head(stm::VBoxImpl& box) const;
  /// Insert `v` (owned by t) into the list starting at `*head_slot`
  /// keeping descending strong order. Tree write lock must be held.
  void insert_sorted(SubTxn& t, std::atomic<TentativeVersion*>& head_slot,
                     TentativeVersion* v);
  TentativeVersion* alloc_tentative(SubTxn& t, stm::Word value);

  // Commit machinery (mutex_ held unless noted).
  bool eligible_locked(const SubTxn& t) const;
  void cascade_locked(std::vector<SubTxn*>& to_resubmit,
                      std::vector<SubTxn*>& to_resume);
  bool validate_locked(SubTxn& t);
  void commit_node_locked(SubTxn& t);
  void fail_continuation_locked(SubTxn& t);
  SubTxn* reincarnate_future_locked(SubTxn& old_future);
  SubTxn* reincarnate_continuation_locked(SubTxn& old_cont);
  void schedule_resume(SubTxn& cont);
  void resume_continuation(std::uint32_t idx);
  Fiber* alloc_fiber();
  void abort_subtree_locked(SubTxn& t);
  void mark_tree_failed_locked(TreeFailed::Reason reason);
  void splice_node_writes(SubTxn& t);

  void do_top_commit();  // body thread, mutex NOT held
  void release_boxes();  // clear tentative heads owned by this tree
  void drain_tasks();    // wait until no future task references the tree
  void release_registry();  // idempotent snapshot-slot release
  void run_attempt_finalizers(bool committed);  // idempotent, post-drain

  Runtime& runtime_;
  stm::StmEnv& env_;
  std::uint64_t id_;

  // Transaction-wide snapshot state (same role as a flat Transaction's).
  std::size_t registry_slot_;
  std::atomic<bool> registry_released_{false};
  stm::SnapshotVec snapshot_{};
  unsigned nstripes_ = 1;
  unsigned stripe_mask_ = 0;

  std::atomic<TreeStatus> status_{TreeStatus::kActive};
  bool serial_ = false;
  std::atomic<bool> failed_{false};
  std::atomic<bool> chaos_induced_{false};
  TreeFailed::Reason fail_reason_ = TreeFailed::Reason::kTopLevelConflict;
  std::exception_ptr user_exception_;  // guarded by mutex_
  std::atomic<bool> fallback_{false};

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<SubTxn> subs_;
  std::uint32_t root_ = kNoNode;
  std::vector<std::uint32_t> finished_pending_;
  bool top_ready_ = false;

  // Root (top-level) private write set — the paper's traditional write-set
  // for top-level transactions; frozen once the first future is submitted.
  stm::WriteSetMap root_write_set_;

  // Tree-private tentative store (fallback / lazy mode).
  mutable util::SpinLock private_lock_;
  stm::WriteSetMap private_store_;  // box -> head TentativeVersion* (as Word)
  std::atomic<bool> uses_private_{false};

  // Tentative node arena (nodes must outlive splices for lock-free readers).
  std::mutex arena_mutex_;
  std::deque<TentativeVersion> tentative_arena_;
  // Fibers hosting transactional bodies in partial-rollback mode; kept
  // alive for the tree's lifetime (late rollbacks re-enter them).
  std::deque<std::unique_ptr<Fiber>> fibers_;
  // Future states adopted from inline-elided submits (see adopt_state).
  std::vector<std::shared_ptr<TxFutureStateBase>> adopted_states_;

  // Parked per-attempt container states (attempt_state / set_attempt_state).
  struct AttemptState {
    const void* key;
    void* state;
    AttemptFinalizer fin;
  };
  mutable util::SpinLock attempt_states_lock_;
  std::vector<AttemptState> attempt_states_;
  std::atomic<bool> finalized_{false};

  // Aggregated at node commits (under mutex_).
  std::vector<stm::VBoxImpl*> merged_permanent_reads_;
  std::vector<stm::VBoxImpl*> tree_written_boxes_;
  std::atomic<std::uint32_t> committed_rw_count_{0};

  // Future-task accounting for safe teardown.
  std::atomic<std::uint32_t> outstanding_tasks_{0};
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;

  void bump_progress() noexcept {
    progress_epoch_.fetch_add(1, std::memory_order_release);
  }
  void task_done();  // outstanding_tasks_ decrement + drain notification
  std::atomic<std::uint64_t> progress_epoch_{0};
};

/// Watchdog held by a thread blocked on tree progress (future evaluation,
/// top-commit wait). tick() on every wait iteration; when the tree's
/// progress epoch stays unchanged for Config::stall_timeout_us the monitor
/// fails the tree (TreeFailed::Reason::kStalled), turning any residual wait
/// cycle — e.g. user-level cyclic future evaluation, or all threads buried
/// under out-of-order get()s — into a clean retry instead of a hang.
class StallMonitor {
 public:
  explicit StallMonitor(TxTree& tree);
  void tick();

 private:
  TxTree& tree_;
  std::uint64_t timeout_us_;
  std::uint64_t last_epoch_;
  std::chrono::steady_clock::time_point since_;
};

}  // namespace txf::core
