// First-class continuation (FCC) support — the C++ analogue of the
// OpenJDK HotSpot FCCs that JTF uses for partial rollback (paper §III).
//
// A Fiber runs a callable on its own stack (ucontext). From inside the
// fiber, `Checkpoint::capture` reifies the control state: the CPU context
// plus a copy of the live stack region. Restoring a checkpoint (from the
// host side) rewrites the fiber stack and jumps back to the capture point,
// which then reports kRestored — i.e. execution resumes "just after the
// submit", exactly what Alg. 4's continuation abort needs. Hosting is
// nestable: the adaptive controller's ordered lane runs a future body
// synchronously on the submitting thread, which may itself be executing a
// continuation fiber — the runner saves and restores the thread's current
// fiber around the nested body, so checkpoints captured on either side
// keep addressing their own stacks.
//
// RESTRICTIONS (documented in DESIGN.md substitution 2, mirroring what FCC
// rollback can and cannot undo in JTF): code between a checkpoint and a
// potential restore must keep its *non-transactional* side effects
// idempotent — heap containers must not grow across a checkpoint that can
// be restored, and locals that live across it must be trivially copyable.
// Transactional state (VBoxes) is rolled back by the TM itself.
#pragma once

#include <ucontext.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

// ThreadSanitizer cannot follow raw ucontext switches: its shadow stack and
// deadlock detector keep reading the host thread's state while execution is
// on the fiber stack, which crashes inside libtsan (historically a SEGV in
// the MurMur hash of the deadlock detector the moment a mutex is touched
// from a fiber). TSan ships a fiber API exactly for this; we annotate every
// stack switch when built with -fsanitize=thread.
#if defined(__SANITIZE_THREAD__)
#define TXF_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TXF_TSAN_FIBERS 1
#endif
#endif
#if defined(TXF_TSAN_FIBERS)
extern "C" {
void* __tsan_get_current_fiber(void);
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif

namespace txf::core {

// Even with the fiber annotations above, TSan cannot survive
// Checkpoint::restore: the memcpy stack rewrite re-enters frames whose
// shadow state TSan never saw pushed, and libtsan SEGVs in its MurMur
// shadow hashing. Fiber-dependent tests consult this to skip under TSan —
// the durable quarantine documented in tests/CMakeLists.txt.
inline constexpr bool kFibersUnsafeUnderTsan =
#if defined(TXF_TSAN_FIBERS)
    true;
#else
    false;
#endif

class Fiber;

/// A reified control state of a fiber: registers + live stack image.
class Checkpoint {
 public:
  enum class CaptureResult { kCaptured, kRestored };

  Checkpoint() = default;
  Checkpoint(const Checkpoint&) = delete;
  Checkpoint& operator=(const Checkpoint&) = delete;

  /// Must be called from code running inside `fiber`. Returns kCaptured on
  /// the initial pass and kRestored each time the checkpoint is restored.
  CaptureResult capture(Fiber& fiber);

  bool valid() const noexcept { return fiber_ != nullptr; }
  Fiber* fiber() const noexcept { return fiber_; }
  std::size_t stack_bytes() const noexcept { return stack_copy_.size(); }

 private:
  friend class Fiber;

  ucontext_t regs_;
  std::vector<char> stack_copy_;
  char* stack_at_ = nullptr;  // where the copy belongs in the fiber stack
  Fiber* fiber_ = nullptr;
  // Lives outside the saved stack region, so the resumed pass can tell it
  // is a resume. Incremented by restore().
  std::uint64_t restore_count_ = 0;
};

/// A one-shot coroutine with manual checkpoint/restore.
class Fiber {
 public:
  static constexpr std::size_t kDefaultStackSize = 256 * 1024;

  explicit Fiber(std::size_t stack_size = kDefaultStackSize);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Run `fn` on the fiber stack to completion (or until it suspends via a
  /// future extension; currently fibers run until return or restore).
  /// Returns when the fiber function finished. Any thread may call it, but
  /// only one at a time.
  void run(std::function<void()> fn);

  /// Rewrite the fiber stack from `cp` and re-enter it at the capture
  /// point; returns when the fiber function finishes again. Must be called
  /// from host code (never from inside this fiber). The calling thread
  /// becomes the new host.
  void restore(Checkpoint& cp);

  bool finished() const noexcept {
    return finished_.load(std::memory_order_acquire);
  }

  char* stack_base() const noexcept { return stack_.get(); }
  char* stack_top() const noexcept { return stack_.get() + stack_size_; }
  std::size_t stack_size() const noexcept { return stack_size_; }

 private:
  friend class Checkpoint;
  static void trampoline();
  static void cpu_relax_for_restore();

  std::unique_ptr<char[]> stack_;
  std::size_t stack_size_;
  ucontext_t fiber_ctx_;
  ucontext_t host_ctx_;
  std::function<void()> entry_;
  std::atomic<bool> finished_{true};
#if defined(TXF_TSAN_FIBERS)
  void* tsan_fiber_ = nullptr;  // TSan's state for the fiber stack
  void* tsan_host_ = nullptr;   // whoever entered last; exit switches back
#endif
};

}  // namespace txf::core
