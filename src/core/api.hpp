// Public programming interface of txfutures.
//
//   txf::core::Runtime rt;
//   txf::stm::VBox<long> balance(100);
//
//   long seen = txf::core::atomically(rt, [&](txf::core::TxCtx& ctx) {
//     auto audit = ctx.submit([&](txf::core::TxCtx& inner) {
//       return balance.get(inner);          // runs as a transactional future
//     });
//     balance.put(ctx, balance.get(ctx) - 10);  // continuation, in parallel
//     return audit.get(ctx);                // evaluate: serialized BEFORE
//   });                                     // the withdrawal (strong order)
//
// `atomically` runs the body as a top-level transaction; `TxCtx::submit`
// spawns a transactional future and switches the caller into the
// continuation sub-transaction; `TxFuture<T>::get` blocks until the future
// has committed (strong ordering semantics, paper §II).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>

#include "core/runtime.hpp"
#include "core/tx_tree.hpp"
#include "obs/abort_cause.hpp"
#include "obs/trace.hpp"
#include "stm/vbox.hpp"
#include "util/backoff.hpp"
#include "util/timing.hpp"
#include "util/xoshiro.hpp"

namespace txf::core {

template <typename T>
class TxFuture;

/// Handle to the current sub-transactional context. Passed by reference to
/// transaction bodies; after a submit() the same object denotes the
/// continuation sub-transaction.
class TxCtx {
 public:
  TxCtx(TxTree& tree, SubTxn* node) : tree_(&tree), node_(node) {}

  TxCtx(const TxCtx&) = delete;
  TxCtx& operator=(const TxCtx&) = delete;

  /// Transactional read of a box (use VBox<T>::get for typed access).
  stm::Word read(stm::VBoxImpl& box) { return tree_->read(*node_, box); }

  /// Transactional write (use VBox<T>::put for typed access).
  void write(stm::VBoxImpl& box, stm::Word value) {
    tree_->write(*node_, box, value);
  }

  /// Submit `fn` as a transactional future. The future is serialized at
  /// this point — before everything the continuation does — regardless of
  /// how it is scheduled. Under Config::scheduling == kAdaptive (the
  /// default) the runtime decides per submit site whether `fn` runs as a
  /// parallel child sub-transaction on a pool thread (the calling context
  /// becomes the continuation sibling) or is elided inline right here;
  /// both executions are semantically identical (result, exceptions,
  /// ordering), only the parallelism differs. The site is keyed by this
  /// call's return address; use submit_at with TXF_SUBMIT_SITE for a
  /// stable explicit key.
  template <typename F>
  auto submit(F&& fn) -> TxFuture<std::invoke_result_t<F&, TxCtx&>> {
    return submit_at(__builtin_return_address(0), std::forward<F>(fn));
  }

  /// submit() with an explicit site key for the adaptive scheduler's
  /// per-site statistics (see TXF_SUBMIT_SITE in core/adaptive.hpp).
  /// Distinct keys get independent inline-vs-parallel decisions.
  template <typename F>
  auto submit_at(const void* site_key, F&& fn)
      -> TxFuture<std::invoke_result_t<F&, TxCtx&>>;

  /// Cooperative cancellation / restart check; called implicitly by every
  /// transactional operation, exposed for long CPU-only loops.
  void poll() { tree_->check_alive(*node_); }

  /// Engine escape hatches (stable within one attempt; do not cache across
  /// retries — the tree and node are rebuilt on every restart).
  TxTree& tree() noexcept { return *tree_; }
  SubTxn* node() noexcept { return node_; }
  Runtime& runtime() noexcept { return tree_->runtime(); }

 private:
  template <typename T>
  friend class TxFuture;

  TxTree* tree_;
  SubTxn* node_;
};

/// Error reported when evaluating a future whose owning transaction was
/// torn down before the future ever committed (e.g. the tree restarted and
/// the handle was issued by a discarded execution).
struct StaleFuture : std::exception {
  const char* what() const noexcept override {
    return "transactional future abandoned by an aborted transaction";
  }
};

/// Composable blocking retry (Haskell-STM style): thrown by retry_now();
/// atomically() aborts the attempt, blocks until some transaction commits
/// (the global clock moves past this attempt's snapshot), and re-runs the
/// body. Use when the body discovers a precondition that only another
/// transaction can establish (queue non-empty, balance sufficient, ...).
struct BlockingRetry {};

/// Abort the current attempt and wait for the transactional state to
/// change before re-running. Valid anywhere inside an atomically() body,
/// including future code (the whole transaction waits).
[[noreturn]] inline void retry_now(TxCtx& ctx) {
  (void)ctx;  // requires a transactional context by signature
  throw BlockingRetry{};
}

template <typename T>
class TxFuture {
 public:
  TxFuture() = default;

  /// Handle that does not own the result state (the transaction tree
  /// does). Used in partial-rollback mode, where handles must be safe to
  /// duplicate bitwise across FCC stack restores; such handles must not
  /// outlive the atomically() call that produced them.
  static TxFuture non_owning(TxFutureState<T>* state) {
    TxFuture f;
    f.raw_ = state;
    return f;
  }

  /// Evaluate from inside a transactional context: helps while waiting and
  /// unwinds if the caller's own tree fails. The paper's evaluation
  /// semantics — blocks until the future's sub-transaction has committed.
  ///
  /// Helping discipline (robustness): first try to run exactly the body we
  /// are waiting on (targeted help — always deadlock-free, since the
  /// awaited future precedes this frame in strong order). Arbitrary pool
  /// tasks are only picked up by frames that are not themselves inside a
  /// future body; a body stacked on top of an unrelated continuation frame
  /// can transitively wait on it, which is how the nested-helping deadlock
  /// wedged. A stall monitor converts any residual wait cycle into a clean
  /// kStalled restart.
  T get(TxCtx& ctx) const {
    TxFutureState<T>* st = ptr();
    TxTree& tree = ctx.tree();
    auto& pool = ctx.runtime().pool();
    StallMonitor stall(tree);
    obs::trace::Span join_span(obs::trace::Ev::kFutureJoin);
    adaptive::SiteStats* site = st->site();
    const std::uint64_t t0 = site != nullptr ? util::now_ns() : 0;
    const bool ok = st->wait_ready([&] {
      ctx.poll();
      if (!tree.help_evaluate(*st) && !TxTree::in_future_body())
        pool.try_run_one();
      stall.tick();
    });
    if (site != nullptr)
      ctx.runtime().adaptive().note_join_ns(site, util::now_ns() - t0);
    if (!ok) {
      // If it is our own tree that failed, unwind with the retry protocol;
      // only a foreign tree's abandonment makes the handle stale.
      ctx.poll();
      throw StaleFuture{};
    }
    return st->value();
  }

  /// Evaluate from outside any transaction (Fig. 2 usage: the handle can be
  /// shipped to other threads). Purely blocking.
  T get() const {
    if (!ptr()->wait_ready([] {})) throw StaleFuture{};
    return ptr()->value();
  }

  /// Non-blocking: has the future committed?
  bool ready() const { return ptr()->ready(); }

  /// True while the handle refers to a future (default-constructed and
  /// moved-from handles are invalid; calling get()/ready() on them is UB).
  bool valid() const noexcept { return state_ != nullptr || raw_ != nullptr; }

 private:
  friend class TxCtx;
  explicit TxFuture(std::shared_ptr<TxFutureState<T>> state)
      : state_(std::move(state)) {}

  TxFutureState<T>* ptr() const {
    TxFutureState<T>* p = raw_ != nullptr ? raw_ : state_.get();
    if (p == nullptr)
      throw std::logic_error("TxFuture: no associated state (default-"
                             "constructed or moved-from handle)");
    return p;
  }

  std::shared_ptr<TxFutureState<T>> state_;
  TxFutureState<T>* raw_ = nullptr;
};

template <typename F>
auto TxCtx::submit_at(const void* site_key, F&& fn)
    -> TxFuture<std::invoke_result_t<F&, TxCtx&>> {
  using R = std::invoke_result_t<F&, TxCtx&>;
  obs::trace::instant(obs::trace::Ev::kFutureSubmit);
  Runtime& rt = tree_->runtime();
  // Counted here, once per submit, so serial/elided/parallel runs all show
  // up identically in core.futures_submitted.
  rt.stats().futures_submitted.fetch_add(1, std::memory_order_relaxed);
  bool elide = tree_->serial();
  bool ordered = false;
  bool sample = false;
  adaptive::SiteStats* site = nullptr;
  if (!elide) {
    const adaptive::AdaptiveScheduler::Decision d =
        rt.adaptive().decide(site_key);
    elide = d.run_inline;
    ordered = d.ordered;
    sample = d.sample;
    site = d.site;  // null in the fixed modes -> zero feedback overhead
  }
  auto state = std::make_shared<TxFutureState<R>>();
  state->set_site(site);
  if (elide) {
    // Inline elision (and the serial fallback): run the future
    // synchronously at the submit point in the current context — by
    // definition the sequential execution that strong ordering makes
    // parallel runs equivalent to. An exception from `fn` propagates from
    // right here, exactly as it would resurface from atomically() had the
    // body run on a pool thread.
    // Timing is sampled (Decision::sample): clocking every elided run would
    // tax exactly the tiny bodies elision exists to rescue.
    const bool timed = site != nullptr && sample;
    const std::uint64_t t0 = timed ? util::now_ns() : 0;
    if constexpr (std::is_void_v<R>) {
      fn(*this);
      state->stage();
    } else {
      state->stage(fn(*this));
    }
    state->publish();
    if (timed) {
      rt.adaptive().note_body_ns(site, util::now_ns() - t0,
                                 adaptive::RunKind::kInline);
    }
    if (tree_->partial_rollback()) {
      // Same FCC discipline as the parallel branch below: an owning handle
      // on a fiber stack is re-destroyed by restores, so the tree owns the
      // state and the caller gets a non-owning handle.
      auto* raw_state = state.get();
      tree_->adopt_state(std::move(state));
      return TxFuture<R>::non_owning(raw_state);
    }
    return TxFuture<R>(std::move(state));
  }
  auto body = std::make_shared<std::decay_t<F>>(std::forward<F>(fn));
  TxTree* tree = tree_;
  // kOrdered keeps the full split (per-node validation, reincarnation,
  // strong-order commit cascade) but runs the body synchronously on this
  // thread right after the split, so siblings execute in submission order.
  const adaptive::RunKind kind =
      ordered ? adaptive::RunKind::kOrdered : adaptive::RunKind::kParallel;
  auto runner = std::make_shared<NodeRunner>(
      [tree, state, body, site, kind](std::uint32_t node_idx) {
        // The inner callable captures by VALUE: in partial-rollback mode it
        // is moved into fiber-stable storage and its captures are read
        // again on FCC-replayed paths, after this frame is gone. `site`
        // points into Runtime-owned storage and outlives every tree.
        tree->run_future_body(node_idx, [tree, state, body, site,
                                         kind](SubTxn& start) -> SubTxn* {
          TxCtx inner(*tree, &start);
          const std::uint64_t t0 = site != nullptr ? util::now_ns() : 0;
          try {
            if constexpr (std::is_void_v<R>) {
              (*body)(inner);
              state->stage();
            } else {
              state->stage((*body)(inner));
            }
          } catch (const TreeFailed&) {
            throw;
          } catch (const NodeCancelled&) {
            throw;
          } catch (...) {
            // User exception in a future: abort the transaction and let it
            // resurface from atomically() — the sequential equivalent.
            tree->fail_with_user_exception(std::current_exception());
            throw TreeFailed{TreeFailed::Reason::kUserException};
          }
          if (site != nullptr) {
            tree->runtime().adaptive().note_body_ns(site, util::now_ns() - t0,
                                                    kind);
          }
          return inner.node();  // innermost continuation if `fn` submitted
        });
      });
  if (tree_->partial_rollback()) {
    // Partial-rollback mode: the state is owned by the tree and the handle
    // is non-owning (bitwise-safe across FCC restores). All owning locals
    // are surrendered *before* the checkpoint inside the call below, so a
    // restored stack only re-destroys empty handles.
    auto* raw_state = state.get();
    body.reset();  // the runner closure keeps body/state alive
    const TxTree::SplitResult split = tree_->submit_split_checkpointed(
        *node_, std::move(state), std::move(runner), site, !ordered);
    node_ = split.continuation;
    // A restored continuation's future already ran its incarnation; only a
    // fresh split needs the ordered synchronous run.
    if (ordered && !split.restored) tree_->run_future_now(*split.future);
    return TxFuture<R>::non_owning(raw_state);
  }
  auto [future_node, cont_node] =
      tree_->submit_split(*node_, state, std::move(runner), site, !ordered);
  if (ordered) tree_->run_future_now(*future_node);
  (void)future_node;
  node_ = cont_node;  // the caller continues as the continuation
  return TxFuture<R>(std::move(state));
}

/// Run `fn(TxCtx&)` as a top-level transaction with transactional-future
/// support, retrying on conflicts. Restarts triggered by inter-tree
/// conflicts re-run in fallback mode (Alg. 1's ownedbyAnotherTree).
namespace detail {
/// Park until some read-write transaction commits after `snapshot` (the
/// parked tree's snapshot_total(): the striped clock's component sum is
/// monotonic and advances on every committed writer, whichever stripe).
/// Polling (escalating to 2 ms) rather than a condition variable keeps the
/// commit hot path free of wakeup bookkeeping; a parked retry wakes at
/// most ~500 times/s once the wait is long.
inline void wait_for_clock_change(Runtime& rt, stm::Version snapshot) {
  util::Backoff backoff;
  std::chrono::microseconds nap(50);
  int step = 0;
  while (rt.env().clock().total() == snapshot) {
    if (step < 16) {
      backoff.pause();
      ++step;
      continue;
    }
    std::this_thread::sleep_for(nap);
    if (nap < std::chrono::microseconds(2000)) nap *= 2;
  }
}

/// Capped exponential backoff with full jitter between failed attempts
/// (attempt k sleeps uniform [0, min(base << k, cap)] µs). Returns the time
/// actually slept, in nanoseconds.
inline std::uint64_t backoff_sleep(const Config& cfg, std::uint32_t attempt,
                                   util::Xoshiro256& jitter) {
  const std::uint32_t shift = attempt < 20 ? attempt : 20;
  std::uint64_t cap = static_cast<std::uint64_t>(cfg.backoff_base_us) << shift;
  if (cap > cfg.backoff_cap_us) cap = cfg.backoff_cap_us;
  if (cap == 0) return 0;
  const std::uint64_t us = jitter.next_bounded(cap + 1);
  if (us == 0) return 0;
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::microseconds(us));
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

/// Map a tree failure onto the abort-cause taxonomy (obs/abort_cause.hpp).
/// A chaos-induced failure wins over its conflict shape so injected aborts
/// never pollute the organic cause counters; a stall observed while an
/// escalation was pending is attributed to the serial preemption that
/// starved it rather than to the stall detector.
inline obs::AbortCause classify_tree_failure(const TxTree& tree,
                                             TreeFailed::Reason reason,
                                             Runtime& rt) {
  if (tree.chaos_induced()) return obs::AbortCause::kFailpointInjected;
  switch (reason) {
    case TreeFailed::Reason::kContinuationConflict:
      return obs::AbortCause::kTreeOrder;
    case TreeFailed::Reason::kInterTreeConflict:
      return obs::AbortCause::kWriteWrite;
    case TreeFailed::Reason::kTopLevelConflict:
      return obs::AbortCause::kReadValidation;
    case TreeFailed::Reason::kStaleSnapshot:
      return obs::AbortCause::kStaleSnapshot;
    case TreeFailed::Reason::kStalled:
      return rt.serial_waiters().load(std::memory_order_acquire) != 0
                 ? obs::AbortCause::kSerialPreempt
                 : obs::AbortCause::kStalled;
    case TreeFailed::Reason::kUserException:
      return obs::AbortCause::kUserException;
  }
  return obs::AbortCause::kReadValidation;
}
}  // namespace detail

/// Contention-managed top-level transaction driver.
///
/// Every parallel attempt holds the runtime's serial token *shared*; after
/// Config::max_attempts failed attempts — or once Config::tx_deadline_us
/// expires — the call escalates: it takes the token *exclusively*, runs the
/// tree in serial mode (futures inline at the submit point), and therefore
/// cannot conflict with anything. Together with the stall detector (which
/// turns wedged waits into kStalled restarts) this bounds every
/// atomically() call: eventual termination is guaranteed, not just likely.
template <typename F>
auto atomically(Runtime& rt, F&& fn) {
  using R = std::invoke_result_t<F&, TxCtx&>;
  using Clock = std::chrono::steady_clock;
  const Config& cfg = rt.config();
  auto& rob = rt.robustness();
  // Abort taxonomy (obs/abort_cause.hpp): causes count once per failed
  // attempt, tx.commits / tx.aborted once per final outcome of this call.
  obs::AbortAccounting& acc = rt.env().abort_accounting();

  // Per-call jitter stream; a global counter keeps calls decorrelated
  // without any cross-call state.
  static std::atomic<std::uint64_t> call_counter{0};
  util::Xoshiro256 jitter(0x6a09e667f3bcc909ULL ^
                          call_counter.fetch_add(1, std::memory_order_relaxed));

  const bool has_deadline = cfg.tx_deadline_us != 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::microseconds(cfg.tx_deadline_us);

  std::uint32_t failed_attempts = 0;
  bool fallback = false;
  int continuation_conflicts = 0;
  bool serial_mode = false;
  bool deadline_counted = false;

  for (;;) {
    // Decide escalation *before* taking the token: the escalated attempt
    // needs it exclusive.
    bool escalate = serial_mode || continuation_conflicts >= 2;
    if (!escalate && cfg.max_attempts != 0 &&
        failed_attempts >= cfg.max_attempts) {
      escalate = true;
    }
    if (!escalate && has_deadline && failed_attempts > 0 &&
        Clock::now() >= deadline) {
      if (!deadline_counted) {
        rob.deadline_aborts.fetch_add(1, std::memory_order_relaxed);
        // Marks the escalation event, not a failed attempt — deliberately
        // not part of tx.attempt_aborts (see the accounting contract).
        acc.of(obs::AbortCause::kDeadlineExceeded).add();
        deadline_counted = true;
      }
      escalate = true;
    }

    stm::Version retry_snapshot = 0;
    bool wait_clock_change = false;
    bool do_backoff = false;
    {
      // Declaration order matters: the waiter gate unwinds after the locks,
      // so the "escalation pending" signal outlives the exclusive hold.
      struct WaiterGate {
        std::atomic<int>* w = nullptr;
        ~WaiterGate() {
          if (w != nullptr) w->fetch_sub(1, std::memory_order_acq_rel);
        }
      } gate;
      std::shared_lock<std::shared_mutex> shared_tok(rt.serial_token(),
                                                     std::defer_lock);
      std::unique_lock<std::shared_mutex> excl_tok(rt.serial_token(),
                                                   std::defer_lock);
      if (escalate) {
        serial_mode = true;  // sticky: once degraded, stay serial
        gate.w = &rt.serial_waiters();
        gate.w->fetch_add(1, std::memory_order_acq_rel);
        excl_tok.lock();
        rob.serial_irrevocable.fetch_add(1, std::memory_order_relaxed);
        rt.stats().serial_fallbacks.fetch_add(1, std::memory_order_relaxed);
      } else {
        // Defer to pending escalations (writer-starvation guard), then
        // enter as one of many parallel attempts.
        while (rt.serial_waiters().load(std::memory_order_acquire) != 0)
          std::this_thread::yield();
        shared_tok.lock();
      }

      util::EpochDomain::Guard guard(rt.env().epochs());
      // One attempt = one tree = one trace span (closed on any exit,
      // including unwinds; it always contains one tx.commit or tx.abort).
      obs::trace::Span attempt_span(obs::trace::Ev::kTx);
      auto* tree = new TxTree(rt, fallback);
      if (escalate) tree->set_serial();
      TxCtx ctx(*tree, tree->root());
      const bool on_fiber = tree->partial_rollback();
      try {
        if constexpr (std::is_void_v<R>) {
          if (on_fiber) {
            // Partial-rollback mode: the body runs on a fiber so FCC
            // checkpoints can rewind failed continuations. The wrapper's
            // captures reference this frame, which outlives every replay.
            tree->run_body_on_fiber([&fn, &ctx]() -> SubTxn* {
              fn(ctx);
              return ctx.node();
            });
          } else {
            fn(ctx);
            tree->node_finished(*ctx.node());
          }
          tree->wait_and_commit_top();
          rt.env().epochs().retire(tree);
          acc.tx_commits.add();
          obs::trace::instant(obs::trace::Ev::kTxCommit);
          return;
        } else if (on_fiber) {
          // Fiber-hosted bodies assign the result on (possibly replayed)
          // passes, so R must be default-constructible here; the default
          // policy below keeps direct initialization and has no such
          // requirement.
          R result{};
          tree->run_body_on_fiber([&fn, &ctx, &result]() -> SubTxn* {
            result = fn(ctx);
            return ctx.node();
          });
          tree->wait_and_commit_top();
          rt.env().epochs().retire(tree);
          acc.tx_commits.add();
          obs::trace::instant(obs::trace::Ev::kTxCommit);
          return result;
        } else {
          R result = fn(ctx);
          tree->node_finished(*ctx.node());
          tree->wait_and_commit_top();
          rt.env().epochs().retire(tree);
          acc.tx_commits.add();
          obs::trace::instant(obs::trace::Ev::kTxCommit);
          return result;
        }
      } catch (const BlockingRetry&) {
        // retry_now() from the body thread: wait for the world to change —
        // after releasing the token, or nothing could ever commit.
        retry_snapshot = tree->snapshot_total();
        tree->abort_tree(TreeFailed::Reason::kTopLevelConflict);
        rt.env().epochs().retire(tree);
        wait_clock_change = true;
        acc.on_attempt_abort(obs::AbortCause::kExplicitRetry);
        obs::trace::instant(
            obs::trace::Ev::kTxAbort,
            static_cast<std::uint32_t>(obs::AbortCause::kExplicitRetry));
      } catch (const TreeFailed& tf) {
        tree->abort_tree(tf.reason);
        if (tf.reason == TreeFailed::Reason::kUserException) {
          retry_snapshot = tree->snapshot_total();
          std::exception_ptr e = tree->user_exception();
          rt.env().epochs().retire(tree);
          try {
            std::rethrow_exception(e);
          } catch (const BlockingRetry&) {
            // retry_now() inside a future body: same wait-and-rerun.
            wait_clock_change = true;
            acc.on_attempt_abort(obs::AbortCause::kExplicitRetry);
            obs::trace::instant(
                obs::trace::Ev::kTxAbort,
                static_cast<std::uint32_t>(obs::AbortCause::kExplicitRetry));
          } catch (...) {
            // Any other user exception propagates: final outcome = aborted.
            acc.on_attempt_abort(obs::AbortCause::kUserException);
            acc.tx_aborted.add();
            obs::trace::instant(
                obs::trace::Ev::kTxAbort,
                static_cast<std::uint32_t>(obs::AbortCause::kUserException));
            throw;
          }
        } else {
          const obs::AbortCause cause =
              detail::classify_tree_failure(*tree, tf.reason, rt);
          // Whole-tree conflict failures never reach the per-node abort
          // charging, yet they ARE the price of speculative parallel
          // execution (fig5b: mostly inter-tree / top-level restarts) —
          // charge them to the tree's submit sites so the controller's
          // conflict EWMA sees them. Chaos-induced failures classify as
          // kFailpointInjected and are filtered inside.
          tree->charge_conflict_aborts(cause);
          fallback = tf.reason == TreeFailed::Reason::kInterTreeConflict;
          if (tf.reason == TreeFailed::Reason::kContinuationConflict)
            ++continuation_conflicts;
          rt.env().epochs().retire(tree);
          ++failed_attempts;
          rob.retries.fetch_add(1, std::memory_order_relaxed);
          do_backoff = !serial_mode;
          acc.on_attempt_abort(cause);
          obs::trace::instant(obs::trace::Ev::kTxAbort,
                              static_cast<std::uint32_t>(cause));
        }
      } catch (...) {
        // User exception: abort the transaction and propagate.
        tree->abort_tree(TreeFailed::Reason::kTopLevelConflict);
        rt.env().epochs().retire(tree);
        acc.on_attempt_abort(obs::AbortCause::kUserException);
        acc.tx_aborted.add();
        obs::trace::instant(
            obs::trace::Ev::kTxAbort,
            static_cast<std::uint32_t>(obs::AbortCause::kUserException));
        throw;
      }
    }  // token released here
    if (wait_clock_change) detail::wait_for_clock_change(rt, retry_snapshot);
    if (do_backoff) {
      const std::uint64_t ns =
          detail::backoff_sleep(cfg, failed_attempts, jitter);
      if (ns != 0) rob.backoff_ns.fetch_add(ns, std::memory_order_relaxed);
    }
  }
}

}  // namespace txf::core
