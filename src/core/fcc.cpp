#include "core/fcc.hpp"

#include <cassert>
#include <cstring>

namespace txf::core {

namespace {
// The fiber currently being entered on this thread; consumed by the
// trampoline (makecontext cannot portably pass pointers).
thread_local Fiber* t_entering = nullptr;
}  // namespace

Fiber::Fiber(std::size_t stack_size)
    : stack_(new char[stack_size]), stack_size_(stack_size) {
#if defined(TXF_TSAN_FIBERS)
  tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber() {
#if defined(TXF_TSAN_FIBERS)
  if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
}

void Fiber::trampoline() {
  Fiber* self = t_entering;
  t_entering = nullptr;
  self->entry_();
  // Returning lets ucontext follow uc_link back to the host, which then
  // marks the fiber finished (host-side, so a concurrent restore can never
  // observe "finished" while the exit path still runs on this stack).
  // This return is the single exit switch off the fiber stack — both for a
  // fresh run and for a restored pass unwinding back into this frame — so
  // TSan's switch-back annotation lives here. tsan_host_ is heap-stable
  // and re-set by whichever host entered last.
#if defined(TXF_TSAN_FIBERS)
  __tsan_switch_to_fiber(self->tsan_host_, 0);
#endif
}

void Fiber::run(std::function<void()> fn) {
  entry_ = std::move(fn);
  finished_.store(false, std::memory_order_release);
  getcontext(&fiber_ctx_);
  fiber_ctx_.uc_stack.ss_sp = stack_.get();
  fiber_ctx_.uc_stack.ss_size = stack_size_;
  fiber_ctx_.uc_link = &host_ctx_;
  makecontext(&fiber_ctx_, &Fiber::trampoline, 0);
  t_entering = this;
#if defined(TXF_TSAN_FIBERS)
  tsan_host_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
  swapcontext(&host_ctx_, &fiber_ctx_);
  finished_.store(true, std::memory_order_release);
}

Checkpoint::CaptureResult Checkpoint::capture(Fiber& fiber) {
  fiber_ = &fiber;
  const std::uint64_t count_at_capture = restore_count_;
  // Approximate the live stack pointer: everything from a margin below this
  // frame up to the top of the fiber stack is what a restore must bring
  // back. The margin must cover this whole frame (the compiler may place
  // locals anywhere within it) plus the getcontext call frame; 4 KiB is
  // far beyond any plausible layout and costs little per checkpoint.
  constexpr std::ptrdiff_t kFrameSlack = 4096;
  char probe;
  char* sp = &probe - kFrameSlack;
  if (sp < fiber.stack_base()) sp = fiber.stack_base();
  assert(&probe > fiber.stack_base() && &probe < fiber.stack_top() &&
         "Checkpoint::capture called outside the fiber");
  getcontext(&regs_);
  // Both the initial pass and every restored pass continue here. The
  // restore count lives in *this (heap/host-owned), outside the saved
  // stack, so it distinguishes the passes reliably.
  if (restore_count_ != count_at_capture) {
    return CaptureResult::kRestored;
  }
  stack_at_ = sp;
  stack_copy_.assign(sp, fiber.stack_top());
  return CaptureResult::kCaptured;
}

void Fiber::restore(Checkpoint& cp) {
  assert(cp.fiber_ == this && "checkpoint belongs to another fiber");
  // Wait until the previous host has fully exited the fiber: a restore
  // request can be raised by the fiber's own final bookkeeping (the commit
  // cascade runs inside the fiber in rollback mode), a moment before the
  // exit path unwinds.
  while (!finished_.load(std::memory_order_acquire)) {
    cpu_relax_for_restore();
  }
  finished_.store(false, std::memory_order_release);
  ++cp.restore_count_;
  std::memcpy(cp.stack_at_, cp.stack_copy_.data(), cp.stack_copy_.size());
  // Jump into the restored frame; uc_link in the original context still
  // routes the final return through host_ctx_, which we re-arm here by
  // being the swap target.
#if defined(TXF_TSAN_FIBERS)
  tsan_host_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
  swapcontext(&host_ctx_, &cp.regs_);
  finished_.store(true, std::memory_order_release);
}

void Fiber::cpu_relax_for_restore() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#endif
}

}  // namespace txf::core
