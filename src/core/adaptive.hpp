// Adaptive future scheduling: per-submit-site profitability control.
//
// Strong ordering semantics (paper §II) makes parallel evaluation of a
// transactional future *purely a scheduling decision*: running the body
// synchronously at the submit point is, by definition, the sequential
// execution every parallel run must be equivalent to. So the runtime is
// free to decide, per submit() call, whether spawning a sibling
// sub-transaction actually pays for its activation cost (node creation,
// pool hop, per-node validation, join wait) — and to elide the future
// inline when it does not. "On the Cost of Concurrency in Transactional
// Memory" formalizes exactly this regime; the paper itself notes futures
// only win when the spawned work outweighs the overhead.
//
// Mechanism: every submit call site owns a cache-padded SiteStats slot
// (keyed by the caller's return address, or an explicit TXF_SUBMIT_SITE
// tag) accumulating an EWMA of body runtime, join-wait time, and per-site
// abort counts split by AbortCause. A three-state hysteresis machine —
//
//      kParallel ──demote──▶ kProbation ──harden──▶ kInline
//          ▲                     │    ▲                │
//          └─────promote─────────┘    └──(re-)probe────┘
//
// — decides in O(1) on the submit fast path. Parallel sites demote when
// their EWMA body time stays under a load-scaled profitability threshold
// (or tree-order aborts pile up); probation runs inline but keeps sampling
// and either earns parallelism back or hardens to inline; inline sites
// periodically re-probe with one real parallel run so phase changes are
// never locked out. Decisions are instrumented with txtrace instants
// (adaptive.decide) and core.adaptive.* metrics, and the whole controller
// is the first consumer of the observability layer PR 4 built.
//
// Config: Config::scheduling selects kAlwaysParallel (pre-adaptive
// behaviour) / kAlwaysInline / kAdaptive (default); the adaptive_* knobs
// tune the thresholds. See docs/ARCHITECTURE.md and DESIGN.md §5e.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "core/config.hpp"
#include "obs/abort_cause.hpp"
#include "obs/metrics.hpp"
#include "sched/thread_pool.hpp"
#include "util/cache_line.hpp"

namespace txf::core::adaptive {

/// Hysteresis state of one submit site (stored as one byte in SiteStats).
enum class SiteState : std::uint8_t {
  kParallel = 0,   // futures spawn as parallel sibling sub-transactions
  kProbation = 1,  // elided inline, still sampling; can promote or harden
  kInline = 2,     // elided inline; re-probes parallel periodically
};

/// Tuning derived from Config (one copy per AdaptiveScheduler; SiteStats
/// methods take it by reference so unit tests can drive the state machine
/// with synthetic parameters and no Runtime).
struct Params {
  std::uint64_t inline_threshold_ns = 4000;
  std::uint32_t min_samples = 8;
  std::uint32_t demote_after = 8;
  std::uint32_t harden_after = 12;
  std::uint32_t promote_after = 4;
  std::uint32_t reprobe_period = 256;
};

/// What decide() told the submit path to do.
struct DecideResult {
  bool run_inline = false;
  bool probe = false;   // a parallel run issued from an elided state
  bool sample = true;   // time this body and feed the EWMA/score machine
};

/// State-transition report (feeds the demotion/promotion counters).
struct Outcome {
  bool demoted = false;   // moved one step toward inline
  bool promoted = false;  // moved one step toward parallel
};

/// Per-submit-site statistics and hysteresis state. All fields are relaxed
/// atomics: sites are updated from submit paths, pool workers and the
/// commit cascade concurrently, and the controller is a heuristic — a lost
/// increment or a stale EWMA read only delays a transition, never breaks
/// correctness (both decisions are always semantically valid).
struct alignas(util::kCacheLineSize) SiteStats {
  /// Timed-sample rate for hardened-inline bodies (power of two; see
  /// decide()). Probation and parallel runs are always timed.
  static constexpr std::uint32_t kInlineSamplePeriod = 8;

  /// Slot key (call-site address); claimed by CAS on first touch.
  std::atomic<const void*> key{nullptr};

  // --- accumulated signals ---
  std::atomic<std::uint64_t> ewma_body_ns{0};  // EWMA(α=1/8) body runtime
  std::atomic<std::uint64_t> ewma_join_ns{0};  // EWMA(α=1/8) join-wait time
  std::atomic<std::uint64_t> submits{0};       // decide() calls
  std::atomic<std::uint64_t> parallel_runs{0}; // timed sibling bodies
  std::atomic<std::uint64_t> inline_runs{0};   // timed elided bodies
                                               // (sampled once hardened)
  std::atomic<std::uint64_t> body_samples{0};  // timed body completions
  std::atomic<std::uint64_t> abort_total{0};
  /// Per-cause abort counts chargeable to this site (indexed by AbortCause).
  std::array<std::atomic<std::uint64_t>,
             static_cast<std::size_t>(obs::AbortCause::kCount)>
      aborts{};

  // --- hysteresis state ---
  std::atomic<std::int32_t> score{0};  // saturating profitability score
  std::atomic<std::uint8_t> state{static_cast<std::uint8_t>(
      SiteState::kParallel)};
  std::atomic<std::uint32_t> probe_clock{0};  // inline decisions since probe

  SiteState site_state() const noexcept {
    return static_cast<SiteState>(state.load(std::memory_order_relaxed));
  }

  /// O(1) submit fast path: no loops, no locks, at most three relaxed
  /// atomic ops. Fresh sites start kParallel, so a program's first
  /// executions always behave exactly as pre-adaptive builds did.
  DecideResult decide(const Params& p) noexcept {
    submits.fetch_add(1, std::memory_order_relaxed);
    switch (site_state()) {
      case SiteState::kParallel:
        return {false, false};
      case SiteState::kProbation:
      case SiteState::kInline: {
        // Periodic re-probe: one real parallel run every reprobe_period
        // elided decisions, so a site whose bodies grew (phase change) can
        // earn parallelism back instead of being locked inline forever.
        const std::uint32_t c =
            probe_clock.fetch_add(1, std::memory_order_relaxed) + 1;
        if (p.reprobe_period != 0 && c >= p.reprobe_period) {
          probe_clock.store(0, std::memory_order_relaxed);
          return {false, true, true};
        }
        // Hardened-inline bodies are timed only 1-in-kInlineSamplePeriod:
        // per-run clock reads would tax exactly the tiny bodies elision is
        // meant to rescue, and a sparse sample is plenty for the score to
        // crawl back up when bodies grow. Probation keeps per-run sampling —
        // it must decide quickly which way to move.
        const bool sample = site_state() == SiteState::kProbation ||
                            (c & (kInlineSamplePeriod - 1)) == 0;
        return {true, false, sample};
      }
    }
    return {false, false};
  }

  /// Record one timed body completion (parallel sibling or inline elision)
  /// and advance the hysteresis machine. `eff_threshold_ns` is the
  /// load-scaled profitability bar (AdaptiveScheduler::effective_threshold;
  /// tests pass it directly).
  Outcome note_body_sample(const Params& p, std::uint64_t ns, bool parallel,
                           std::uint64_t eff_threshold_ns) noexcept {
    (parallel ? parallel_runs : inline_runs)
        .fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t prev = ewma_body_ns.load(std::memory_order_relaxed);
    ewma_body_ns.store(prev == 0 ? ns : (prev * 7 + ns) / 8,
                       std::memory_order_relaxed);
    const std::uint64_t seen =
        body_samples.fetch_add(1, std::memory_order_relaxed) + 1;
    const bool profitable = ns >= eff_threshold_ns;
    return apply_signal(p, profitable ? +1 : -1, seen, parallel);
  }

  /// Record the continuation's wait inside TxFuture::get (EWMA only; the
  /// wait is informational — a long join means the sibling actually ran
  /// concurrently, a ~zero join means it was already done or elided).
  void note_join(std::uint64_t ns) noexcept {
    const std::uint64_t prev = ewma_join_ns.load(std::memory_order_relaxed);
    ewma_join_ns.store(prev == 0 ? ns : (prev * 7 + ns) / 8,
                       std::memory_order_relaxed);
  }

  /// Attribute one abort to this site. Order conflicts chargeable to
  /// parallel execution (a future re-executed after validation failure, a
  /// continuation conflict restarting the tree) carry a double
  /// unprofitability penalty: the spawned run was not just unhelpful, it
  /// cost a wasted execution.
  Outcome note_abort(const Params& p, obs::AbortCause c) noexcept {
    aborts[static_cast<std::size_t>(c)].fetch_add(1,
                                                  std::memory_order_relaxed);
    abort_total.fetch_add(1, std::memory_order_relaxed);
    if (c == obs::AbortCause::kTreeOrder ||
        c == obs::AbortCause::kReadValidation) {
      return apply_signal(p, -2, body_samples.load(std::memory_order_relaxed),
                          true);
    }
    return {};
  }

 private:
  /// Shared transition logic: clamp the score, then move between states.
  /// `parallel_sample` marks signals produced by a real parallel run (an
  /// inline site can only be promoted by a probe that proved itself, or by
  /// its score crawling back up as inline bodies grow).
  Outcome apply_signal(const Params& p, int delta, std::uint64_t samples_seen,
                       bool parallel_sample) noexcept {
    Outcome out;
    const int lo = -static_cast<int>(p.harden_after);
    const int hi = static_cast<int>(p.promote_after);
    int s = score.load(std::memory_order_relaxed) + delta;
    if (s < lo) s = lo;
    if (s > hi) s = hi;
    switch (site_state()) {
      case SiteState::kParallel:
        if (samples_seen >= p.min_samples &&
            s <= -static_cast<int>(p.demote_after)) {
          set_state(SiteState::kProbation);
          s = 0;
          out.demoted = true;
        }
        break;
      case SiteState::kProbation:
        if (s >= static_cast<int>(p.promote_after)) {
          set_state(SiteState::kParallel);
          s = 0;
          out.promoted = true;
        } else if (s <= -static_cast<int>(p.harden_after)) {
          set_state(SiteState::kInline);
          s = 0;
          out.demoted = true;
        }
        break;
      case SiteState::kInline:
        if ((parallel_sample && delta > 0) ||
            s >= static_cast<int>(p.promote_after)) {
          set_state(SiteState::kProbation);
          s = 0;
          out.promoted = true;
        }
        break;
    }
    score.store(s, std::memory_order_relaxed);
    return out;
  }

  void set_state(SiteState st) noexcept {
    state.store(static_cast<std::uint8_t>(st), std::memory_order_relaxed);
  }
};

/// The per-Runtime controller: owns the site table, reads scheduler load
/// from the thread pool, exports core.adaptive.* metrics, and applies
/// Config::scheduling. Thread-safe; every method is lock-free.
class AdaptiveScheduler {
 public:
  /// Site-table geometry. 256 slots comfortably covers real programs (one
  /// slot per static submit location); on (unlikely) saturation colliding
  /// sites share a slot — blended statistics, still-correct decisions.
  static constexpr std::size_t kTableSize = 256;
  static constexpr std::size_t kProbeLimit = 8;

  AdaptiveScheduler(const Config& cfg, sched::ThreadPool& pool);

  AdaptiveScheduler(const AdaptiveScheduler&) = delete;
  AdaptiveScheduler& operator=(const AdaptiveScheduler&) = delete;

  /// What a decide() call told one submit to do.
  struct Decision {
    bool run_inline = false;
    bool probe = false;
    bool sample = true;         // time the body (see SiteStats::decide)
    SiteStats* site = nullptr;  // null in the fixed (non-adaptive) modes
  };

  /// The submit fast path: map the call-site key to its SiteStats slot and
  /// run the O(1) state machine (fixed modes short-circuit). Emits an
  /// adaptive.decide trace instant and counts the decision; the
  /// core.adaptive.decide failpoint, when armed, flips the verdict — any
  /// decision sequence is semantically valid, which is exactly what the
  /// chaos tests assert.
  Decision decide(const void* site_key) noexcept;

  /// Feedback: one timed body completion at `site` (no-op for null).
  void note_body_ns(SiteStats* site, std::uint64_t ns,
                    bool parallel) noexcept;
  /// Feedback: continuation join-wait time (no-op for null).
  void note_join_ns(SiteStats* site, std::uint64_t ns) noexcept {
    if (site != nullptr) site->note_join(ns);
  }
  /// Feedback: abort chargeable to `site` (called from the commit cascade
  /// under the tree mutex — O(1), atomics only; no-op for null).
  void note_abort(SiteStats* site, obs::AbortCause c) noexcept;

  SchedulingMode mode() const noexcept { return mode_; }
  const Params& params() const noexcept { return params_; }

  /// Profitability bar for this instant: the configured threshold scaled
  /// up under pool backlog (deep queue / no parked worker means spawning
  /// buys little and costs contention).
  std::uint64_t effective_threshold() const noexcept;

  /// Slot lookup (claims on first touch). Exposed for tests.
  SiteStats* site_for(const void* key) noexcept;

  /// Claimed slots (mirrors the core.adaptive.sites gauge).
  std::uint64_t site_count() const noexcept {
    return static_cast<std::uint64_t>(sites_.load());
  }

 private:
  SchedulingMode mode_;
  Params params_;
  sched::ThreadPool* pool_;
  std::unique_ptr<SiteStats[]> table_;

  obs::Counter parallel_decisions_;
  obs::Counter inline_decisions_;
  obs::Counter probes_;
  obs::Counter demotions_;
  obs::Counter promotions_;
  obs::Gauge sites_;
  obs::Registration reg_;  // "core.adaptive.*" in the MetricsRegistry
};

}  // namespace txf::core::adaptive

/// Expands to a stable, unique submit-site key for TxCtx::submit_at —
/// use when the caller's return address is not a reliable site identity
/// (e.g. one dispatch helper submitting on behalf of many logical sites).
#define TXF_SUBMIT_SITE                               \
  ([]() noexcept -> const void* {                     \
    static const char txf_submit_site_tag = 0;        \
    return static_cast<const void*>(&txf_submit_site_tag); \
  }())
